# Development entry points. `make ci` is the full gate a change must pass;
# the individual targets exist for quick iteration.

GO ?= go
BENCH_JSON ?= BENCH_hotloop.json

.PHONY: all build vet test race race-harness bench bench-gate golden tracestat-golden resume-smoke ipexd-smoke dist-smoke obs-smoke remote-smoke lint fuzz ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the crash-safety layer (worker pool, supervisor,
# journal, cell plumbing), the distributed executor built on it, and the
# remote-execution client + chaos proxy (hedge races, breaker transitions,
# concurrent fault injection). `make race` covers these too; this is the
# quick iteration loop while touching the harness.
race-harness:
	$(GO) test -race -count=2 ./internal/harness ./internal/experiments ./internal/dist \
		./internal/remote ./internal/faultnet

# Regenerate the committed hot-loop record: the Fig10-class sweep benchmark
# plus the raw simulator-throughput probe, which writes $(BENCH_JSON) via
# bench_test.go when BENCH_HOTLOOP_JSON is set.
bench:
	BENCH_HOTLOOP_JSON=$(BENCH_JSON) $(GO) test -run=NONE \
		-bench='BenchmarkFig10|BenchmarkSimulatorThroughput' -benchtime=10x ./...

# Performance gate against the committed record: fails on a >10% hot-loop
# throughput regression or any steady-state allocation. Regenerate the
# record on the gating machine with `make bench` first — wall-clock
# throughput does not transfer between machines.
bench-gate:
	IPEX_BENCH_GATE=1 $(GO) test -run TestBenchGate -count=1 .

# The golden determinism gate: simulator results must stay bit-identical to
# testdata/golden_rfhome.json (captured before the hot-loop optimization).
golden:
	$(GO) test -run TestGoldenDeterminism .

# The trace-analyzer golden gate: tracestat's rendered report for a pinned
# traced run must stay byte-identical to its committed fixture (regenerate
# with `go test ./internal/tracestat -run TestGoldenReport -update`).
tracestat-golden:
	$(GO) test -run TestGoldenReport ./internal/tracestat

# Resume smoke: run–interrupt–resume–diff against the real binary. The
# resumed sweep's -json output must be byte-identical to an uninterrupted
# run (the tentpole guarantee of the crash-safe harness).
resume-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/experiments ./cmd/experiments || exit 1; \
	args="-exp fig11 -scale 0.02 -apps fft,gsme -json"; \
	$$tmp/experiments $$args >$$tmp/golden.json || exit 1; \
	$$tmp/experiments $$args -journal $$tmp/sweep.jsonl -interrupt-after 2 \
		>$$tmp/partial.json 2>$$tmp/interrupt.log; \
	status=$$?; \
	if [ $$status -ne 130 ]; then \
		echo "resume-smoke: interrupted run exited $$status, want 130"; \
		cat $$tmp/interrupt.log; exit 1; \
	fi; \
	$$tmp/experiments $$args -journal $$tmp/sweep.jsonl -resume >$$tmp/resumed.json || exit 1; \
	diff -u $$tmp/golden.json $$tmp/resumed.json \
		|| { echo "resume-smoke: resumed output differs from golden"; exit 1; }; \
	echo "resume-smoke: resumed sweep is byte-identical to the uninterrupted golden"

# Service smoke: start a real ipexd, prove the miss-then-hit contract over
# HTTP (second identical request is a cache hit, byte-identical to the fresh
# response, and survives in the disk tier), then SIGINT it and require a
# clean drain (exit 0).
ipexd-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/ipexd ./cmd/ipexd || exit 1; \
	$$tmp/ipexd -listen 127.0.0.1:0 -cache-dir $$tmp/cache 2>$$tmp/log & \
	pid=$$!; \
	addr=""; i=0; while [ $$i -lt 100 ]; do \
		addr=$$(sed -n 's#^ipexd listening on http://\([^ ]*\).*#\1#p' $$tmp/log); \
		[ -n "$$addr" ] && break; \
		kill -0 $$pid 2>/dev/null || { echo "ipexd-smoke: server died at startup:"; cat $$tmp/log; exit 1; }; \
		sleep 0.1; i=$$((i+1)); done; \
	[ -n "$$addr" ] || { echo "ipexd-smoke: server never announced its address"; cat $$tmp/log; exit 1; }; \
	req='{"app":"fft","scale":0.02,"config":{"ipex":"both"}}'; \
	curl -sfS -D $$tmp/h1 -o $$tmp/b1 -X POST "http://$$addr/v1/run" -d "$$req" \
		|| { echo "ipexd-smoke: fresh request failed"; exit 1; }; \
	grep -qi '^X-Ipex-Cache: miss' $$tmp/h1 \
		|| { echo "ipexd-smoke: fresh request was not a miss:"; cat $$tmp/h1; exit 1; }; \
	curl -sfS -D $$tmp/h2 -o $$tmp/b2 -X POST "http://$$addr/v1/run" -d "$$req" \
		|| { echo "ipexd-smoke: repeat request failed"; exit 1; }; \
	grep -qi '^X-Ipex-Cache: hit' $$tmp/h2 \
		|| { echo "ipexd-smoke: repeat request was not a hit:"; cat $$tmp/h2; exit 1; }; \
	cmp -s $$tmp/b1 $$tmp/b2 \
		|| { echo "ipexd-smoke: cache hit is not byte-identical to the fresh response"; exit 1; }; \
	[ -n "$$(ls $$tmp/cache 2>/dev/null)" ] \
		|| { echo "ipexd-smoke: disk tier is empty after a computed result"; exit 1; }; \
	kill -INT $$pid; wait $$pid; status=$$?; \
	if [ $$status -ne 0 ]; then \
		echo "ipexd-smoke: drain exited $$status, want 0"; cat $$tmp/log; exit 1; \
	fi; \
	echo "ipexd-smoke: miss-then-hit byte-identical; SIGINT drained cleanly"

# Distributed smoke: a real coordinator sharding a sweep over two real
# worker processes, one of which is SIGKILLed mid-sweep. The coordinator
# must reshard the dead worker's cells, finish, and print output
# byte-identical to the serial golden — and a -resume of the merged journal
# must re-execute zero cells.
dist-smoke:
	@tmp=$$(mktemp -d); w1=; w2=; \
	trap 'kill -9 $$w1 $$w2 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/experiments ./cmd/experiments || exit 1; \
	args="-exp fig11 -scale 0.02 -apps fft,gsme -json"; \
	$$tmp/experiments $$args >$$tmp/golden.json || exit 1; \
	$$tmp/experiments $$args -worker -listen 127.0.0.1:0 2>$$tmp/w1.log & w1=$$!; \
	$$tmp/experiments $$args -worker -listen 127.0.0.1:0 2>$$tmp/w2.log & w2=$$!; \
	a1=""; a2=""; i=0; while [ $$i -lt 100 ]; do \
		a1=$$(sed -n 's#^worker listening on \(http://[^ ]*\).*#\1#p' $$tmp/w1.log); \
		a2=$$(sed -n 's#^worker listening on \(http://[^ ]*\).*#\1#p' $$tmp/w2.log); \
		[ -n "$$a1" ] && [ -n "$$a2" ] && break; \
		sleep 0.1; i=$$((i+1)); done; \
	[ -n "$$a1" ] && [ -n "$$a2" ] \
		|| { echo "dist-smoke: workers never announced their addresses"; cat $$tmp/w1.log $$tmp/w2.log; exit 1; }; \
	$$tmp/experiments $$args -coordinator "$$a1,$$a2" -journal $$tmp/merged.jsonl \
		-dist-poll 25ms -dist-timeout 500ms -dist-retries 2 \
		>$$tmp/dist.json 2>$$tmp/coord.log & cpid=$$!; \
	i=0; while [ $$i -lt 200 ]; do \
		n=$$(wc -l 2>/dev/null <$$tmp/merged.jsonl) || n=0; \
		[ "$$n" -ge 2 ] && break; \
		kill -0 $$cpid 2>/dev/null || break; \
		sleep 0.05; i=$$((i+1)); done; \
	kill -9 $$w1 2>/dev/null; \
	wait $$cpid; status=$$?; \
	if [ $$status -ne 0 ]; then \
		echo "dist-smoke: coordinator exited $$status"; cat $$tmp/coord.log; exit 1; \
	fi; \
	diff -u $$tmp/golden.json $$tmp/dist.json \
		|| { echo "dist-smoke: distributed output differs from serial golden"; cat $$tmp/coord.log; exit 1; }; \
	$$tmp/experiments $$args -journal $$tmp/merged.jsonl -resume \
		>$$tmp/resumed.json 2>$$tmp/resume.log || { cat $$tmp/resume.log; exit 1; }; \
	diff -u $$tmp/golden.json $$tmp/resumed.json \
		|| { echo "dist-smoke: resume of the merged journal differs from golden"; exit 1; }; \
	grep -q 'supervision: 0 cell(s) executed' $$tmp/resume.log \
		|| { echo "dist-smoke: resume re-executed cells the fleet completed:"; cat $$tmp/resume.log; exit 1; }; \
	echo "dist-smoke: fleet survived a SIGKILL; merged output and resume byte-identical to serial"

# Observability smoke: a real sweep under -listen and a real ipexd, scraped
# live over HTTP. The sweep's /metrics must expose the cell-lifecycle
# latency histograms and render through ipextop; its -json output must stay
# byte-identical to a run with telemetry off (observing a sweep never
# perturbs its results). ipexd's /metrics must expose request-latency
# buckets and the derived cache gauges after a miss-then-hit pair.
obs-smoke:
	@tmp=$$(mktemp -d); pid=; dpid=; \
	trap 'kill -9 $$pid $$dpid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/experiments ./cmd/experiments || exit 1; \
	$(GO) build -o $$tmp/ipextop ./cmd/ipextop || exit 1; \
	$(GO) build -o $$tmp/ipexd ./cmd/ipexd || exit 1; \
	args="-exp fig11 -scale 0.02 -apps fft,gsme -json"; \
	$$tmp/experiments $$args >$$tmp/golden.json || exit 1; \
	$$tmp/experiments $$args -listen 127.0.0.1:0 -telemetry-linger 5s \
		>$$tmp/observed.json 2>$$tmp/sweep.log & pid=$$!; \
	addr=""; i=0; while [ $$i -lt 100 ]; do \
		addr=$$(sed -n 's#^telemetry listening on http://\([^/ ]*\)/metrics.*#\1#p' $$tmp/sweep.log); \
		[ -n "$$addr" ] && break; \
		kill -0 $$pid 2>/dev/null || { echo "obs-smoke: sweep died at startup:"; cat $$tmp/sweep.log; exit 1; }; \
		sleep 0.1; i=$$((i+1)); done; \
	[ -n "$$addr" ] || { echo "obs-smoke: sweep never announced its telemetry address"; cat $$tmp/sweep.log; exit 1; }; \
	$$tmp/ipextop -n 1 "$$addr" >$$tmp/frame.txt \
		|| { echo "obs-smoke: ipextop scrape failed"; cat $$tmp/sweep.log; exit 1; }; \
	grep -q 'harness_attempt_seconds' $$tmp/frame.txt \
		|| { echo "obs-smoke: ipextop frame missing the attempt latency row:"; cat $$tmp/frame.txt; exit 1; }; \
	curl -sfS "http://$$addr/metrics" >$$tmp/scrape.txt \
		|| { echo "obs-smoke: telemetry scrape failed"; exit 1; }; \
	grep -q '^# TYPE ipex_harness_attempt_seconds histogram' $$tmp/scrape.txt \
		|| { echo "obs-smoke: /metrics missing the attempt histogram"; exit 1; }; \
	grep -q '^# TYPE ipex_harness_queue_wait_seconds histogram' $$tmp/scrape.txt \
		|| { echo "obs-smoke: /metrics missing the queue-wait histogram"; exit 1; }; \
	wait $$pid || { echo "obs-smoke: observed sweep failed:"; cat $$tmp/sweep.log; exit 1; }; \
	diff -u $$tmp/golden.json $$tmp/observed.json \
		|| { echo "obs-smoke: telemetry perturbed the sweep results"; exit 1; }; \
	$$tmp/ipexd -listen 127.0.0.1:0 -cache-dir $$tmp/cache 2>$$tmp/ipexd.log & dpid=$$!; \
	daddr=""; i=0; while [ $$i -lt 100 ]; do \
		daddr=$$(sed -n 's#^ipexd listening on http://\([^ ]*\).*#\1#p' $$tmp/ipexd.log); \
		[ -n "$$daddr" ] && break; \
		kill -0 $$dpid 2>/dev/null || { echo "obs-smoke: ipexd died at startup:"; cat $$tmp/ipexd.log; exit 1; }; \
		sleep 0.1; i=$$((i+1)); done; \
	[ -n "$$daddr" ] || { echo "obs-smoke: ipexd never announced its address"; cat $$tmp/ipexd.log; exit 1; }; \
	req='{"app":"fft","scale":0.02,"config":{"ipex":"both"}}'; \
	curl -sfS -o /dev/null -X POST "http://$$daddr/v1/run" -d "$$req" || exit 1; \
	curl -sfS -o /dev/null -X POST "http://$$daddr/v1/run" -d "$$req" || exit 1; \
	curl -sfS "http://$$daddr/metrics" >$$tmp/dscrape.txt || exit 1; \
	grep -q '^ipex_ipexd_run_seconds_bucket{le="+Inf"} 2' $$tmp/dscrape.txt \
		|| { echo "obs-smoke: ipexd run latency buckets wrong after 2 requests:"; grep run_seconds $$tmp/dscrape.txt; exit 1; }; \
	grep -q '^ipex_ipexd_cache_hit_ratio 0.5' $$tmp/dscrape.txt \
		|| { echo "obs-smoke: ipexd hit ratio not 0.5 after miss+hit:"; grep hit_ratio $$tmp/dscrape.txt; exit 1; }; \
	kill -INT $$dpid; wait $$dpid \
		|| { echo "obs-smoke: ipexd drain failed"; cat $$tmp/ipexd.log; exit 1; }; \
	echo "obs-smoke: live latency histograms on both endpoints; telemetry left sweep results byte-identical"

# Short fuzzing passes over the untrusted-input surfaces: the simulator
# configuration validator, the harvest-trace parser, the journal line
# parser behind -resume and the distributed segment merge, and the /v1/run
# request decoder every ipexd exposes to the network. `go test -fuzz`
# accepts one target per invocation, hence one line each.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzConfigValidate -fuzztime=$(FUZZTIME) ./internal/nvp/
	$(GO) test -run=NONE -fuzz=FuzzHarvestTraceParse -fuzztime=$(FUZZTIME) ./internal/power/
	$(GO) test -run=NONE -fuzz=FuzzJournalLine -fuzztime=$(FUZZTIME) ./internal/harness/
	$(GO) test -run=NONE -fuzz=FuzzRunRequest -fuzztime=$(FUZZTIME) ./internal/remote/

# Determinism lint: simulator internals must not read the wall clock (Now,
# Since, After, Sleep, or timer construction) or the global math/rand stream
# — both would break replayable, seed-stable results. The documented
# exceptions: internal/benchio (benchmark records carry their generation
# time), internal/harness/watchdog.go (the wall-clock cell backstop and
# retry backoff), internal/trace/clock.go (the one wall-clock Clock
# implementation everything observable injects), internal/dist/clock.go
# (the coordinator's context-aware poll sleep), internal/remote/clock.go
# (backoff sleeps and the hedge timer), and internal/faultnet/clock.go
# (blackhole hold timing). None of them touch simulated results.
lint: vet
	@bad=$$(grep -rnE 'time\.(Now|Since|After|Sleep|NewTimer|NewTicker)' internal/ --include='*.go' \
		| grep -v '^internal/benchio/' | grep -v '^internal/harness/watchdog\.go:' \
		| grep -v '^internal/trace/clock\.go:' | grep -v '^internal/dist/clock\.go:' \
		| grep -v '^internal/remote/clock\.go:' | grep -v '^internal/faultnet/clock\.go:' \
		| grep -v '_test\.go'); \
	if [ -n "$$bad" ]; then \
		echo "lint: wall-clock use in simulator internals (only internal/benchio, the harness watchdog, and the per-package clock.go files may):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn '"math/rand"' internal/ --include='*.go'); \
	if [ -n "$$bad" ]; then \
		echo "lint: math/rand import in internal/ (use the seeded PRNGs in internal/power):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn '"net/http"\|"expvar"' internal/ *.go --include='*.go' \
		| grep -v '^internal/dist/' | grep -v '^internal/remote/'); \
	if [ -n "$$bad" ]; then \
		echo "lint: net/http or expvar outside cmd/, internal/dist, and internal/remote (servers and process vars belong to the command layer; the dist executor and the fleet client are the two libraries whose job is the wire):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rnE 'time\.(Now|Since|After|Sleep|NewTimer|NewTicker)' cmd/ --include='*.go' \
		| grep -v '_test\.go' \
		| grep -vE '^cmd/[a-z]+/main\.go:'); \
	if [ -n "$$bad" ]; then \
		echo "lint: wall-clock use in cmd/ outside process mains (uptime, poll intervals, drain deadlines live in main.go and never touch simulated results; everything else takes a trace.Clock):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rnE 'http\.Server|ListenAndServe' internal/ cmd/ *.go --include='*.go' \
		| grep -v '_test\.go' | grep -v '^cmd/internal/httpd/'); \
	if [ -n "$$bad" ]; then \
		echo "lint: http.Server construction outside cmd/internal/httpd (every listener shares its timeouts and graceful-drain contract):"; \
		echo "$$bad"; exit 1; \
	fi

# Remote-execution smoke: a real sweep farmed to a real two-server ipexd
# fleet, each server behind a seeded faultnet chaos proxy (blackholes, 429
# storms, truncation, corruption), with one server SIGKILLed mid-sweep. The
# sweep output must stay byte-identical to the purely local golden, with
# zero failed cells, and the remote summary must show the resilience
# machinery actually fired (hedges under blackholes, remote cells despite
# the kill). A second pass against a dead fleet must degrade every cell to
# local execution — same bytes again.
remote-smoke:
	@tmp=$$(mktemp -d); d1=; d2=; f1=; f2=; \
	trap 'kill -9 $$d1 $$d2 $$f1 $$f2 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/experiments ./cmd/experiments || exit 1; \
	$(GO) build -o $$tmp/ipexd ./cmd/ipexd || exit 1; \
	$(GO) build -o $$tmp/faultnet ./cmd/faultnet || exit 1; \
	args="-exp fig11 -scale 0.02 -apps fft,gsme -json"; \
	$$tmp/experiments $$args >$$tmp/golden.json || exit 1; \
	$$tmp/ipexd -listen 127.0.0.1:0 -cache-dir $$tmp/c1 2>$$tmp/d1.log & d1=$$!; \
	$$tmp/ipexd -listen 127.0.0.1:0 -cache-dir $$tmp/c2 2>$$tmp/d2.log & d2=$$!; \
	a1=""; a2=""; i=0; while [ $$i -lt 100 ]; do \
		a1=$$(sed -n 's#^ipexd listening on http://\([^ ]*\).*#\1#p' $$tmp/d1.log); \
		a2=$$(sed -n 's#^ipexd listening on http://\([^ ]*\).*#\1#p' $$tmp/d2.log); \
		[ -n "$$a1" ] && [ -n "$$a2" ] && break; \
		sleep 0.1; i=$$((i+1)); done; \
	[ -n "$$a1" ] && [ -n "$$a2" ] \
		|| { echo "remote-smoke: ipexd servers never announced their addresses"; cat $$tmp/d1.log $$tmp/d2.log; exit 1; }; \
	$$tmp/faultnet -listen 127.0.0.1:0 -upstream "$$a1" -seed 11 \
		-blackhole 0.25 -max-hold 2s -reject429 0.15 -truncate 0.1 -corrupt 0.1 2>$$tmp/f1.log & f1=$$!; \
	$$tmp/faultnet -listen 127.0.0.1:0 -upstream "$$a2" -seed 12 \
		-blackhole 0.25 -max-hold 2s -reject429 0.15 -truncate 0.1 -corrupt 0.1 2>$$tmp/f2.log & f2=$$!; \
	p1=""; p2=""; i=0; while [ $$i -lt 100 ]; do \
		p1=$$(sed -n 's#^faultnet listening on \([^ ]*\).*#\1#p' $$tmp/f1.log); \
		p2=$$(sed -n 's#^faultnet listening on \([^ ]*\).*#\1#p' $$tmp/f2.log); \
		[ -n "$$p1" ] && [ -n "$$p2" ] && break; \
		sleep 0.1; i=$$((i+1)); done; \
	[ -n "$$p1" ] && [ -n "$$p2" ] \
		|| { echo "remote-smoke: faultnet proxies never announced their addresses"; cat $$tmp/f1.log $$tmp/f2.log; exit 1; }; \
	$$tmp/experiments $$args -servers "http://$$p1,http://$$p2" \
		-remote-retries 8 -hedge-after 100ms -journal $$tmp/sweep.jsonl \
		>$$tmp/remote.json 2>$$tmp/sweep.log & spid=$$!; \
	i=0; while [ $$i -lt 200 ]; do \
		n=$$(wc -l 2>/dev/null <$$tmp/sweep.jsonl) || n=0; \
		[ "$$n" -ge 2 ] && break; \
		kill -0 $$spid 2>/dev/null || break; \
		sleep 0.05; i=$$((i+1)); done; \
	kill -9 $$d1 2>/dev/null; \
	wait $$spid; status=$$?; \
	if [ $$status -ne 0 ]; then \
		echo "remote-smoke: chaos sweep exited $$status"; cat $$tmp/sweep.log; exit 1; \
	fi; \
	diff -u $$tmp/golden.json $$tmp/remote.json \
		|| { echo "remote-smoke: chaos sweep output differs from local golden"; cat $$tmp/sweep.log; exit 1; }; \
	grep -Eq '^remote: cells=[1-9]' $$tmp/sweep.log \
		|| { echo "remote-smoke: no cell executed remotely under chaos:"; grep '^remote:' $$tmp/sweep.log; exit 1; }; \
	grep -Eq ' failed=0 ' $$tmp/sweep.log \
		|| { echo "remote-smoke: chaos sweep failed cells:"; grep '^remote:' $$tmp/sweep.log; exit 1; }; \
	grep -Eq ' hedges=[1-9]' $$tmp/sweep.log \
		|| { echo "remote-smoke: blackholes never triggered a hedge:"; grep '^remote:' $$tmp/sweep.log; exit 1; }; \
	$$tmp/experiments $$args -servers http://127.0.0.1:1 -remote-retries 1 \
		>$$tmp/down.json 2>$$tmp/down.log \
		|| { echo "remote-smoke: dead-fleet sweep failed"; cat $$tmp/down.log; exit 1; }; \
	diff -u $$tmp/golden.json $$tmp/down.json \
		|| { echo "remote-smoke: dead-fleet sweep output differs from local golden"; exit 1; }; \
	grep -Eq '^remote: cells=0 (fallback=[1-9]|fallback=0 unroutable=[1-9])' $$tmp/down.log \
		|| { echo "remote-smoke: dead fleet did not degrade to local:"; grep '^remote:' $$tmp/down.log; exit 1; }; \
	echo "remote-smoke: chaos + SIGKILL sweep byte-identical to local; dead fleet degraded cleanly"

ci: build lint race golden tracestat-golden resume-smoke ipexd-smoke dist-smoke obs-smoke remote-smoke fuzz bench-gate
	$(GO) test -run=NONE -bench=BenchmarkFig10 -benchtime=1x ./...

clean:
	$(GO) clean -testcache
