# Development entry points. `make ci` is the full gate a change must pass;
# the individual targets exist for quick iteration.

GO ?= go
BENCH_JSON ?= BENCH_hotloop.json

.PHONY: all build vet test race bench golden tracestat-golden lint fuzz ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the committed hot-loop record: the Fig10-class sweep benchmark
# plus the raw simulator-throughput probe, which writes $(BENCH_JSON) via
# bench_test.go when BENCH_HOTLOOP_JSON is set.
bench:
	BENCH_HOTLOOP_JSON=$(BENCH_JSON) $(GO) test -run=NONE \
		-bench='BenchmarkFig10|BenchmarkSimulatorThroughput' -benchtime=10x ./...

# The golden determinism gate: simulator results must stay bit-identical to
# testdata/golden_rfhome.json (captured before the hot-loop optimization).
golden:
	$(GO) test -run TestGoldenDeterminism .

# The trace-analyzer golden gate: tracestat's rendered report for a pinned
# traced run must stay byte-identical to its committed fixture (regenerate
# with `go test ./internal/tracestat -run TestGoldenReport -update`).
tracestat-golden:
	$(GO) test -run TestGoldenReport ./internal/tracestat

# Short fuzzing passes over the two untrusted-input surfaces: the simulator
# configuration validator and the harvest-trace parser. `go test -fuzz`
# accepts one target per invocation, hence two lines.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzConfigValidate -fuzztime=$(FUZZTIME) ./internal/nvp/
	$(GO) test -run=NONE -fuzz=FuzzHarvestTraceParse -fuzztime=$(FUZZTIME) ./internal/power/

# Determinism lint: simulator internals must not read the wall clock or the
# global math/rand stream — both would break replayable, seed-stable results.
# internal/benchio is the one documented exception (it stamps benchmark
# records with their generation time; nothing simulated depends on it).
lint: vet
	@bad=$$(grep -rn 'time\.Now' internal/ --include='*.go' \
		| grep -v '^internal/benchio/' | grep -v '_test\.go'); \
	if [ -n "$$bad" ]; then \
		echo "lint: wall-clock read in simulator internals (only internal/benchio may):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn '"math/rand"' internal/ --include='*.go'); \
	if [ -n "$$bad" ]; then \
		echo "lint: math/rand import in internal/ (use the seeded PRNGs in internal/power):"; \
		echo "$$bad"; exit 1; \
	fi
	@bad=$$(grep -rn '"net/http"\|"expvar"' internal/ *.go --include='*.go'); \
	if [ -n "$$bad" ]; then \
		echo "lint: net/http or expvar outside cmd/ (servers and process vars belong to the command layer; libraries stay host-agnostic):"; \
		echo "$$bad"; exit 1; \
	fi

ci: build lint race golden tracestat-golden fuzz
	$(GO) test -run=NONE -bench=BenchmarkFig10 -benchtime=1x ./...

clean:
	$(GO) clean -testcache
