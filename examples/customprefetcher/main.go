// Customprefetcher: §5.2 of the paper argues IPEX "can seamlessly integrate
// with any hardware prefetcher" because it only manipulates the degree
// register. This example demonstrates exactly that: it implements a small
// region-bitmap data prefetcher (an AMPM-flavoured design the paper cites),
// plugs it into the simulator through Config.DPrefetcherFactory, and then
// attaches IPEX to it — no changes to the prefetcher required.
//
//	go run ./examples/customprefetcher
package main

import (
	"fmt"
	"log"

	"ipex"
)

// bitmapPrefetcher is a compact Access-Map-Pattern-Matching-style data
// prefetcher: memory is split into 512 B regions, each tracked by a 32-bit
// block bitmap. On a miss, the prefetcher checks whether the region's
// recent access map extends in the +1 or -1 block direction and proposes
// the blocks ahead of the moving front.
type bitmapPrefetcher struct {
	regions    map[uint64]uint32 // region base -> accessed-block bitmap
	order      []uint64          // FIFO of region bases for bounded capacity
	maxRegions int
}

func newBitmapPrefetcher() *bitmapPrefetcher {
	return &bitmapPrefetcher{regions: make(map[uint64]uint32), maxRegions: 64}
}

// Name implements ipex.Prefetcher.
func (p *bitmapPrefetcher) Name() string { return "ampm-bitmap" }

// OnAccess implements ipex.Prefetcher.
func (p *bitmapPrefetcher) OnAccess(dst []uint64, ev ipex.PrefetchEvent) []uint64 {
	const regionBytes = 512
	region := ev.Block &^ (regionBytes - 1)
	blockIdx := (ev.Block - region) / ev.BlockSize

	bm, ok := p.regions[region]
	if !ok {
		if len(p.order) >= p.maxRegions {
			oldest := p.order[0]
			p.order = p.order[1:]
			delete(p.regions, oldest)
		}
		p.order = append(p.order, region)
	}
	bm |= 1 << blockIdx
	p.regions[region] = bm

	if !ev.Miss && !ev.BufHit {
		return dst
	}
	// Pattern match: if the two blocks behind the current one were
	// accessed, the region is being swept upward — propose the blocks
	// ahead. Mirror for downward sweeps.
	blocksPerRegion := regionBytes / ev.BlockSize
	up := blockIdx >= 2 && bm&(1<<(blockIdx-1)) != 0 && bm&(1<<(blockIdx-2)) != 0
	down := blockIdx+2 < blocksPerRegion && bm&(1<<(blockIdx+1)) != 0 && bm&(1<<(blockIdx+2)) != 0
	for k := uint64(1); k <= ipex.MaxPrefetchDegree; k++ {
		switch {
		case up:
			next := ev.Block + k*ev.BlockSize
			if next < region+regionBytes {
				dst = append(dst, next)
			}
		case down:
			next := ev.Block - k*ev.BlockSize
			if next >= region {
				dst = append(dst, next)
			}
		}
	}
	return dst
}

// Reset implements ipex.Prefetcher: all state is volatile hardware.
func (p *bitmapPrefetcher) Reset() {
	p.regions = make(map[uint64]uint32)
	p.order = nil
}

func main() {
	trace := ipex.GenerateTrace(ipex.RFOffice, 0, 3)

	run := func(label string, cfg ipex.Config) ipex.Result {
		r, err := ipex.Run("susane", 1.0, trace, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s time=%7.2f ms  dcache-prefetches=%6d  d-accuracy=%5.1f%%  d-coverage=%5.1f%%\n",
			label, r.Seconds()*1e3, r.Data.PrefetchIssued,
			100*r.Data.Accuracy(), 100*r.Data.Coverage())
		return r
	}

	// The stock stride prefetcher, for reference.
	stock := run("stock stride prefetcher", ipex.DefaultConfig())

	// The custom prefetcher, installed via factory so every run gets a
	// fresh instance.
	cfg := ipex.DefaultConfig()
	cfg.DPrefetcherFactory = func() ipex.Prefetcher { return newBitmapPrefetcher() }
	custom := run("custom AMPM bitmap", cfg)

	// The same custom prefetcher with IPEX layered on top: the controller
	// only gates the issue degree, so integration is one flag.
	withIPEX := run("custom AMPM bitmap + IPEX", cfg.WithIPEXData())

	fmt.Printf("\ncustom vs stock speedup : %.3f\n", ipex.Speedup(stock, custom))
	fmt.Printf("IPEX on custom speedup  : %.3f (energy %.3f)\n",
		ipex.Speedup(custom, withIPEX), withIPEX.Energy.Total()/custom.Energy.Total())
	fmt.Printf("IPEX throttled %d data-prefetch requests\n", withIPEX.Data.PrefetchThrottled)
}
