// Powertraces: inspect how the four ambient-energy sources shape
// intermittent execution. The example generates each synthetic trace,
// prints its power statistics, runs the same benchmark on every source, and
// round-trips a trace through the paper's text format — everything needed
// to substitute a real harvester log for the synthetic ones.
//
//	go run ./examples/powertraces
package main

import (
	"bytes"
	"fmt"
	"log"

	"ipex"
	"ipex/internal/stats"
)

func main() {
	sources := []ipex.Source{ipex.Thermal, ipex.Solar, ipex.RFOffice, ipex.RFHome}

	fmt.Println("source characteristics (0.5 s of harvesting each)")
	fmt.Printf("%-10s %10s %10s %10s  %s\n", "source", "mean(mW)", "max(mW)", ">22mW", "character")
	character := map[ipex.Source]string{
		ipex.Thermal:  "steady, moderate",
		ipex.Solar:    "slow drift + shading dips",
		ipex.RFOffice: "bursty",
		ipex.RFHome:   "bursty, long quiet gaps",
	}
	for _, src := range sources {
		tr := ipex.GenerateTrace(src, 0, 1)
		above := 0
		for _, v := range tr.Samples {
			if v > 22e-3 {
				above++
			}
		}
		fmt.Printf("%-10s %10.2f %10.2f %9.1f%%  %s\n",
			tr.Name, 1e3*tr.MeanPower(), 1e3*stats.Max(tr.Samples),
			100*float64(above)/float64(len(tr.Samples)), character[src])
	}

	fmt.Println("\nsame program (jpegd), same system, different energy (Fig. 23's setup):")
	fmt.Printf("%-10s %10s %9s %12s %12s\n", "source", "time(ms)", "outages", "on-time%", "ipex-speedup")
	for _, src := range sources {
		tr := ipex.GenerateTrace(src, 0, 1)
		base, err := ipex.Run("jpegd", 1.0, tr, ipex.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		with, err := ipex.Run("jpegd", 1.0, tr, ipex.DefaultConfig().WithIPEX())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.2f %9d %11.1f%% %12.3f\n",
			tr.Name, base.Seconds()*1e3, base.Outages,
			100*float64(base.OnCycles)/float64(base.Cycles),
			ipex.Speedup(base, with))
	}

	// Round-trip through the digitized text format the paper's harvester
	// logger produces: any real log in this format drops straight in.
	tr := ipex.GenerateTrace(ipex.RFHome, 2000, 1)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := ipex.LoadTrace("reloaded", &buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntext-format round trip: %d samples saved, %d loaded, mean %.3f mW -> %.3f mW\n",
		len(tr.Samples), len(loaded.Samples), 1e3*tr.MeanPower(), 1e3*loaded.MeanPower())
}
