// Quickstart: simulate one benchmark on the default energy-harvesting NVP,
// with and without IPEX, under the same recorded input energy — the paper's
// core comparison (Figure 10) on a single app.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -app pegwitd -trace solar
package main

import (
	"flag"
	"fmt"
	"log"

	"ipex"
)

func main() {
	app := flag.String("app", "jpegd", "benchmark name (see ipex.Workloads())")
	traceName := flag.String("trace", "RFHome", "power trace: RFHome, RFOffice, solar, thermal")
	flag.Parse()

	// A power trace is a replayable recording of harvested energy: every
	// configuration below receives exactly the same input energy, which is
	// what makes the comparison fair.
	var src ipex.Source
	switch *traceName {
	case "RFHome":
		src = ipex.RFHome
	case "RFOffice":
		src = ipex.RFOffice
	case "solar":
		src = ipex.Solar
	case "thermal":
		src = ipex.Thermal
	default:
		log.Fatalf("unknown trace %q", *traceName)
	}
	trace := ipex.GenerateTrace(src, 0, 1)

	// Three systems: no prefetching, conventional prefetching (sequential
	// ICache prefetcher + stride DCache prefetcher at degree 2), and the
	// same prefetchers throttled by IPEX.
	noPf, err := ipex.Run(*app, 1.0, trace, ipex.DefaultConfig().WithoutPrefetch())
	if err != nil {
		log.Fatal(err)
	}
	base, err := ipex.Run(*app, 1.0, trace, ipex.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	with, err := ipex.Run(*app, 1.0, trace, ipex.DefaultConfig().WithIPEX())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("app=%s trace=%s insts=%d\n\n", *app, trace.Name, base.Insts)
	show := func(label string, r ipex.Result) {
		fmt.Printf("%-22s time=%7.2f ms  outages=%4d  energy=%8.1f nJ  prefetches=%6d\n",
			label, r.Seconds()*1e3, r.Outages, r.Energy.Total(), r.PrefetchesIssued())
	}
	show("no prefetching", noPf)
	show("conventional (deg 2)", base)
	show("+ IPEX (both caches)", with)

	fmt.Printf("\nprefetching speedup over none : %.3f\n", ipex.Speedup(noPf, base))
	fmt.Printf("IPEX speedup over conventional: %.3f\n", ipex.Speedup(base, with))
	fmt.Printf("IPEX energy vs conventional   : %.3f\n", with.Energy.Total()/base.Energy.Total())
	fmt.Printf("IPEX throttled %d of %d prefetch requests (%.1f%%)\n",
		with.Inst.PrefetchThrottled+with.Data.PrefetchThrottled,
		with.PrefetchesIssued()+with.Inst.PrefetchThrottled+with.Data.PrefetchThrottled,
		100*float64(with.Inst.PrefetchThrottled+with.Data.PrefetchThrottled)/
			float64(with.PrefetchesIssued()+with.Inst.PrefetchThrottled+with.Data.PrefetchThrottled))
}
