// Sensorlogger: a domain scenario from the paper's motivation — a
// batteryless environmental sensor node that samples a peripheral, filters
// the reading, and appends compressed records to an NVM log.
//
// The example shows two things a system designer would actually do with
// this library:
//
//  1. model their own firmware as a custom Workload (a deterministic
//     access-stream generator) instead of using the bundled benchmarks, and
//
//  2. run a capacitor-sizing study: how do outage rate and IPEX's benefit
//     change from 0.47 µF to 100 µF (the paper's Figure 22 trade-off)?
//
//     go run ./examples/sensorlogger
package main

import (
	"fmt"
	"log"

	"ipex"
)

// sensorWorkload models the firmware's steady state: an acquisition loop
// (sample + filter, code-heavy, stack traffic) followed by a log-append
// burst (sequential stores through the record buffer).
//
// It implements ipex.Workload directly, which is all the simulator needs.
type sensorWorkload struct {
	insts    int
	produced int

	pc        uint64
	logCursor uint64
	phase     int // position within one acquire+append period
}

const (
	swCodeBase  = 0x0002_0000
	swLoopBytes = 1024 // acquisition + filter loop
	swLogBase   = 0x0020_0000
	swLogBytes  = 256 << 10 // NVM-backed record buffer (streams through cache)
	swStackBase = 0x0018_0000
	swPeriod    = 400 // instructions per acquire+append period
	swAppendAt  = 320 // append burst occupies the period's tail
)

func newSensorWorkload(insts int) *sensorWorkload {
	return &sensorWorkload{insts: insts}
}

func (w *sensorWorkload) Name() string { return "sensorlogger" }
func (w *sensorWorkload) Len() int     { return w.insts }

func (w *sensorWorkload) Reset() {
	w.produced = 0
	w.pc = 0
	w.logCursor = 0
	w.phase = 0
}

func (w *sensorWorkload) Next() (ipex.Access, bool) {
	if w.produced >= w.insts {
		return ipex.Access{}, false
	}
	w.produced++

	var a ipex.Access
	a.PC = swCodeBase + w.pc
	w.pc = (w.pc + 4) % swLoopBytes

	switch {
	case w.phase >= swAppendAt:
		// Log append: every other instruction stores the next record word
		// sequentially — exactly the stream a stride prefetcher covers and
		// exactly the blocks a power failure wipes when fetched too early.
		if w.phase%2 == 0 {
			a.HasData = true
			a.Write = true
			a.DataAddr = swLogBase + w.logCursor
			w.logCursor = (w.logCursor + 4) % swLogBytes
		}
	case w.phase%5 == 2:
		// Acquisition/filter phase: stack and coefficient traffic that
		// stays cache-resident.
		a.HasData = true
		a.DataAddr = swStackBase + uint64((w.phase*28)%768)
	}
	w.phase++
	if w.phase == swPeriod {
		w.phase = 0
	}
	return a, true
}

func main() {
	trace := ipex.GenerateTrace(ipex.RFHome, 0, 1)

	fmt.Println("capacitor sizing study for a sensor-logger node (RFHome harvesting)")
	fmt.Println()
	fmt.Printf("%-10s  %-22s  %-22s  %s\n", "capacitor", "baseline", "+IPEX", "IPEX effect")
	fmt.Printf("%-10s  %-11s %-10s  %-11s %-10s  %s\n",
		"", "time(ms)", "outages", "time(ms)", "outages", "speedup / energy")

	for _, uF := range []float64{0.47, 1, 4.7, 10, 47, 100} {
		base := ipex.DefaultConfig()
		base.Capacitor.CapacitanceFarads = uF * 1e-6

		b, err := ipex.RunWorkload(newSensorWorkload(250_000), trace, base)
		if err != nil {
			log.Fatal(err)
		}
		w, err := ipex.RunWorkload(newSensorWorkload(250_000), trace, base.WithIPEX())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.2fµF  %11.2f %10d  %11.2f %10d  %.3f / %.3f\n",
			uF, b.Seconds()*1e3, b.Outages, w.Seconds()*1e3, w.Outages,
			ipex.Speedup(b, w), w.Energy.Total()/b.Energy.Total())
	}

	fmt.Println()
	fmt.Println("Larger capacitors mean fewer outages and longer power cycles, which")
	fmt.Println("shrinks IPEX's opportunity to suppress doomed prefetches — the")
	fmt.Println("paper's Figure 22 trend. The 0.47 µF default is the typical compact")
	fmt.Println("EHS design point where intermittence-aware prefetching matters.")
}
