package ipex_test

import (
	"bytes"
	"fmt"

	"ipex"
)

// The basic flow: run a benchmark with and without IPEX under the same
// recorded input energy.
func Example() {
	trace := ipex.GenerateTrace(ipex.RFHome, 20000, 1)

	base, _ := ipex.Run("gsme", 0.1, trace, ipex.DefaultConfig())
	with, _ := ipex.Run("gsme", 0.1, trace, ipex.DefaultConfig().WithIPEX())

	fmt.Println("completed:", base.Completed && with.Completed)
	fmt.Println("baseline throttled anything:", base.Inst.PrefetchThrottled > 0)
	fmt.Println("ipex throttled anything:", with.Inst.PrefetchThrottled+with.Data.PrefetchThrottled > 0)
	// Output:
	// completed: true
	// baseline throttled anything: false
	// ipex throttled anything: true
}

// Access traces recorded from one run (or from outside the simulator)
// replay bit-identically.
func Example_accessTrace() {
	wl, _ := ipex.NewWorkload("fft", 0.01)
	var buf bytes.Buffer
	_ = ipex.WriteAccessTrace(wl, &buf)

	replay, _ := ipex.ReadAccessTrace(&buf)
	fmt.Println(replay.Name(), replay.Len() == wl.Len())
	// Output:
	// fft true
}

// The hardware-overhead report reproduces §6.1 of the paper.
func ExampleOverhead() {
	r := ipex.Overhead(2)
	fmt.Printf("%d bits per cache, %d total, %.4f%% of core area\n",
		r.BitsPerCache, r.TotalBits, 100*r.AreaFraction)
	// Output:
	// 99 bits per cache, 198 total, 0.0018% of core area
}

// AnalyzeTrace gives a fast capacitor-only view of a power trace.
func ExampleAnalyzeTrace() {
	dead := &ipex.Trace{Name: "dead", Samples: make([]float64, 1000)}
	est, _ := ipex.AnalyzeTrace(dead, 0.020)
	fmt.Println("outages:", est.Outages)
	// Output:
	// outages: 1
}
