// Command tracegen emits synthetic harvested-power traces in the paper's
// digitized text format (one average-power sample in watts per 10 µs line),
// for replaying identical input energy across simulator configurations.
//
//	tracegen -source RFHome -out rfhome.txt
//	tracegen -source solar -samples 100000 -seed 7 -out solar.txt
//	tracegen -source thermal            # writes to stdout
//	tracegen -stats -source RFHome      # print summary statistics only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ipex/internal/power"
	"ipex/internal/stats"
)

func main() {
	var (
		source  = flag.String("source", "RFHome", "source: RFHome, RFOffice, solar, thermal")
		samples = flag.Int("samples", power.DefaultTraceSamples, "number of 10µs samples")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
		doStats = flag.Bool("stats", false, "print summary statistics instead of samples")
	)
	flag.Parse()

	src, err := power.ParseSource(*source)
	if err != nil {
		fatalf("%v", err)
	}
	tr := power.Generate(src, *samples, *seed)

	if *doStats {
		printStats(tr)
		return
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *out, err)
			}
		}()
		w = f
	}
	if err := tr.Save(w); err != nil {
		fatalf("%v", err)
	}
}

func printStats(tr *power.Trace) {
	vals := tr.Samples
	fmt.Printf("source=%s samples=%d duration=%.3fs\n", tr.Name, len(vals), tr.Duration())
	fmt.Printf("power (mW): mean=%.3f median=%.3f min=%.3f max=%.3f\n",
		1e3*tr.MeanPower(), 1e3*stats.Median(vals), 1e3*stats.Min(vals), 1e3*stats.Max(vals))
	above := 0
	for _, v := range vals {
		if v > 22e-3 { // the default system's approximate run-mode draw
			above++
		}
	}
	fmt.Printf("samples above 22mW draw: %s\n", stats.Pct(float64(above)/float64(len(vals))))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
