package main

import (
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ipex/internal/dist"
	"ipex/internal/experiments"
	"ipex/internal/harness"
	"ipex/internal/trace"
)

// telemetry serves a running sweep's live state: Prometheus text exposition
// on /metrics (sweep progress gauges + the shared metrics registry) and Go
// expvar on /debug/vars. The sweep itself never blocks on a scrape — the
// handlers only read atomic counters — and results are unaffected by whether
// anyone is listening.
type telemetry struct {
	start time.Time
	prog  *experiments.Progress
	reg   *trace.Registry
	sup   *harness.Supervisor
	coord *dist.Coordinator
}

// counters reads the supervision counters (zero when no supervisor).
func (t *telemetry) counters() harness.CounterSnapshot {
	if t.sup == nil {
		return harness.CounterSnapshot{}
	}
	return t.sup.Counters.Snapshot()
}

// curTelemetry backs the process-wide expvar publication (expvar allows one
// Publish per name per process; tests build several handlers).
var (
	curTelemetry atomic.Pointer[telemetry]
	expvarOnce   sync.Once
)

// newTelemetryHandler builds the HTTP handler for -listen. sup may be nil
// (unsupervised sweep); the supervision gauges then read zero.
func newTelemetryHandler(start time.Time, prog *experiments.Progress, reg *trace.Registry, sup *harness.Supervisor) http.Handler {
	return newTelemetryHandlerDist(start, prog, reg, sup, nil)
}

// newTelemetryHandlerDist additionally exports fleet gauges when the sweep
// runs under a distributed coordinator (nil otherwise): merge/dedup
// totals, re-shard and steal counts, and per-worker liveness.
func newTelemetryHandlerDist(start time.Time, prog *experiments.Progress, reg *trace.Registry, sup *harness.Supervisor, coord *dist.Coordinator) http.Handler {
	t := &telemetry{start: start, prog: prog, reg: reg, sup: sup, coord: coord}
	curTelemetry.Store(t)
	expvarOnce.Do(func() {
		expvar.Publish("ipex_sweep", expvar.Func(func() any {
			cur := curTelemetry.Load()
			done, total, insts := cur.prog.Snapshot()
			cs := cur.counters()
			return map[string]any{
				"cells_done":      done,
				"cells_total":     total,
				"insts":           insts,
				"elapsed_seconds": time.Since(cur.start).Seconds(),
				"cells_replayed":  cs.Replayed,
				"cells_retried":   cs.Retried,
				"cell_timeouts":   cs.Timeouts,
				"cell_panics":     cs.Panics,
				"cell_failures":   cs.Failures,
			}
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.metrics)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// metrics writes Prometheus text exposition format 0.0.4: the sweep-progress
// gauges first, then the metrics registry (counters accumulated across every
// simulation so far).
func (t *telemetry) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	done, total, insts := t.prog.Snapshot()
	elapsed := time.Since(t.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := 0.0
	if rate > 0 && total > done {
		eta = float64(total-done) / rate
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("ipex_sweep_cells_total", "sweep cells enqueued so far", float64(total))
	gauge("ipex_sweep_cells_done", "sweep cells completed", float64(done))
	gauge("ipex_sweep_insts_total", "instructions simulated so far", float64(insts))
	gauge("ipex_sweep_elapsed_seconds", "wall-clock time since the sweep started", elapsed)
	gauge("ipex_sweep_cells_per_second", "completed cells per wall-clock second", rate)
	gauge("ipex_sweep_eta_seconds", "estimated seconds until the enqueued cells finish", eta)
	// Supervision counters (crash-safe harness): journal replays, retries,
	// watchdog timeouts, isolated panics, and journaled failures.
	cs := t.counters()
	gauge("ipex_sweep_cells_replayed", "cells answered from the resume journal without simulating", float64(cs.Replayed))
	gauge("ipex_sweep_cells_retried", "cell re-runs after a transient failure", float64(cs.Retried))
	gauge("ipex_sweep_cell_timeouts", "wall-clock backstop expiries", float64(cs.Timeouts))
	gauge("ipex_sweep_cell_panics", "isolated cell panics (journaled, soft-failed)", float64(cs.Panics))
	gauge("ipex_sweep_cell_failures", "cells journaled as failed (panics + exhausted retries)", float64(cs.Failures))
	// Fleet gauges: only present when this process coordinates workers.
	if t.coord != nil {
		s := t.coord.Snapshot()
		gauge("ipex_dist_merged_cells", "worker journal entries merged into the authoritative journal", float64(s.Merged))
		gauge("ipex_dist_duplicate_cells", "duplicate worker entries dropped at merge (double-assigned or stolen cells)", float64(s.Duplicates))
		gauge("ipex_dist_resharded", "ranges and keys re-assigned from dead workers to survivors", float64(s.Resharded))
		gauge("ipex_dist_stolen_cells", "straggler cells stolen for idle workers", float64(s.Stolen))
		gauge("ipex_dist_dead_workers", "workers declared dead after repeated failed health checks", float64(s.DeadWorkers))
		live := 0
		for _, ws := range s.Workers {
			up := 1.0
			if ws.Dead {
				up = 0
			} else {
				live++
			}
			fmt.Fprintf(w, "ipex_dist_worker_up{worker=%q} %g\n", ws.Addr, up)
			fmt.Fprintf(w, "ipex_dist_worker_done{worker=%q} %d\n", ws.Addr, ws.Done)
			fmt.Fprintf(w, "ipex_dist_worker_remaining{worker=%q} %d\n", ws.Addr, ws.Remaining)
		}
		gauge("ipex_dist_live_workers", "workers currently believed alive", float64(live))
	}
	// A scrape racing a disconnect can fail mid-write; there is no one to
	// report that to, so the error is dropped.
	_ = t.reg.WriteProm(w)
}
