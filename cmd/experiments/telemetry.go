package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"ipex/internal/dist"
	"ipex/internal/experiments"
	"ipex/internal/harness"
	"ipex/internal/remote"
	"ipex/internal/trace"
)

// telemetry serves a running sweep's live state: Prometheus text exposition
// on /metrics (sweep progress gauges + the shared metrics registry), the
// aggregated fleet view as JSON on /dist/v1/fleet (coordinator only), and Go
// expvar on /debug/vars. The sweep itself never blocks on a scrape — the
// handlers only read atomic counters — and results are unaffected by whether
// anyone is listening. The clock is injected so the only wall-time read in
// the sweep path stays inside trace.NewWallClock; its epoch is construction
// time, so Now() is directly the elapsed sweep duration.
type telemetry struct {
	clock  trace.Clock
	prog   *experiments.Progress
	reg    *trace.Registry
	sup    *harness.Supervisor
	coord  *dist.Coordinator
	remote *remote.Client
}

// counters reads the supervision counters (zero when no supervisor).
func (t *telemetry) counters() harness.CounterSnapshot {
	if t.sup == nil {
		return harness.CounterSnapshot{}
	}
	return t.sup.Counters.Snapshot()
}

// elapsed is the wall-clock seconds since the handler (≈ sweep) started.
func (t *telemetry) elapsed() float64 {
	if t.clock == nil {
		return 0
	}
	return t.clock.Now().Seconds()
}

// curTelemetry backs the process-wide expvar publication (expvar allows one
// Publish per name per process; tests build several handlers).
var (
	curTelemetry atomic.Pointer[telemetry]
	expvarOnce   sync.Once
)

// newTelemetryHandler builds the HTTP handler for -listen. sup may be nil
// (unsupervised sweep); the supervision gauges then read zero.
func newTelemetryHandler(clock trace.Clock, prog *experiments.Progress, reg *trace.Registry, sup *harness.Supervisor) http.Handler {
	return newTelemetryHandlerDist(clock, prog, reg, sup, nil, nil)
}

// newTelemetryHandlerDist additionally exports the fleet when the sweep runs
// under a distributed coordinator (nil otherwise): merge/dedup totals,
// re-shard and steal counts, and per-worker liveness, throughput, and
// straggler flags — as typed ipex_fleet_* series on /metrics and as JSON on
// /dist/v1/fleet. rc, when non-nil, adds the remote-execution client's
// per-server series (ipex_remote_breaker_state and friends).
func newTelemetryHandlerDist(clock trace.Clock, prog *experiments.Progress, reg *trace.Registry, sup *harness.Supervisor, coord *dist.Coordinator, rc *remote.Client) http.Handler {
	t := &telemetry{clock: clock, prog: prog, reg: reg, sup: sup, coord: coord, remote: rc}
	curTelemetry.Store(t)
	expvarOnce.Do(func() {
		expvar.Publish("ipex_sweep", expvar.Func(func() any {
			cur := curTelemetry.Load()
			done, total, insts := cur.prog.Snapshot()
			cs := cur.counters()
			return map[string]any{
				"cells_done":      done,
				"cells_total":     total,
				"insts":           insts,
				"elapsed_seconds": cur.elapsed(),
				"cells_replayed":  cs.Replayed,
				"cells_remote":    cs.Remote,
				"cells_retried":   cs.Retried,
				"cell_timeouts":   cs.Timeouts,
				"cell_panics":     cs.Panics,
				"cell_failures":   cs.Failures,
			}
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", t.metrics)
	mux.Handle("/debug/vars", expvar.Handler())
	if coord != nil {
		mux.HandleFunc("/dist/v1/fleet", t.fleet)
	}
	return mux
}

// fleet serves the coordinator's aggregated per-worker view as JSON — the
// same data ipextop renders live.
func (t *telemetry) fleet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(t.coord.Fleet()); err != nil {
		// A scrape racing a disconnect can fail mid-write; nobody to tell.
		_ = err
	}
}

// metrics writes Prometheus text exposition format 0.0.4: the sweep-progress
// gauges first, the fleet series when coordinating, then the metrics registry
// (counters and latency histograms accumulated across every simulation so
// far).
func (t *telemetry) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	done, total, insts := t.prog.Snapshot()
	elapsed := t.elapsed()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := 0.0
	if rate > 0 && total > done {
		eta = float64(total-done) / rate
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("ipex_sweep_cells_total", "sweep cells enqueued so far", float64(total))
	gauge("ipex_sweep_cells_done", "sweep cells completed", float64(done))
	gauge("ipex_sweep_insts_total", "instructions simulated so far", float64(insts))
	gauge("ipex_sweep_elapsed_seconds", "wall-clock time since the sweep started", elapsed)
	gauge("ipex_sweep_cells_per_second", "completed cells per wall-clock second", rate)
	gauge("ipex_sweep_eta_seconds", "estimated seconds until the enqueued cells finish", eta)
	// Supervision counters (crash-safe harness): journal replays, retries,
	// watchdog timeouts, isolated panics, and journaled failures.
	cs := t.counters()
	gauge("ipex_sweep_cells_replayed", "cells answered from the resume journal without simulating", float64(cs.Replayed))
	gauge("ipex_sweep_cells_remote", "cells executed on the ipexd fleet (verified remote results)", float64(cs.Remote))
	gauge("ipex_sweep_cells_retried", "cell re-runs after a transient failure", float64(cs.Retried))
	gauge("ipex_sweep_cell_timeouts", "wall-clock backstop expiries", float64(cs.Timeouts))
	gauge("ipex_sweep_cell_panics", "isolated cell panics (journaled, soft-failed)", float64(cs.Panics))
	gauge("ipex_sweep_cell_failures", "cells journaled as failed (panics + exhausted retries)", float64(cs.Failures))
	// Fleet series: only present when this process coordinates workers. The
	// coordinator renders them itself so /metrics and /dist/v1/fleet always
	// agree on liveness, throughput, and straggler calls.
	if t.coord != nil {
		_ = t.coord.WriteFleetProm(w)
	}
	// Remote-execution series: per-server breaker states and attempt counts,
	// only present when the sweep runs against an ipexd fleet. The remote.*
	// counters themselves live in the shared registry below.
	if t.remote != nil {
		_ = t.remote.WriteProm(w)
	}
	// A scrape racing a disconnect can fail mid-write; there is no one to
	// report that to, so the error is dropped.
	_ = t.reg.WriteProm(w)
}
