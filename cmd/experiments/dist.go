package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"ipex/cmd/internal/httpd"
	"ipex/internal/dist"
	"ipex/internal/experiments"
	"ipex/internal/harness"
)

// splitList parses a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runWorker is the -worker main loop: serve the dist protocol on
// listenAddr, and run the sweep definition repeatedly with the worker's
// shard filter — one enumeration pass, then execution passes over whatever
// the coordinator assigns. The worker's rendered output is discarded
// (skipped cells return placeholders); the journal entries streamed to the
// coordinator are the product. Returns the process exit code; a SIGINT or
// SIGTERM drain is the normal way to stop a worker (exit 0).
func runWorker(o experiments.Options, sup *harness.Supervisor, ids []string, sweepKey, listenAddr string, segment *harness.Journal, drainCtx context.Context) int {
	w := dist.NewWorker(sweepKey)
	sup.Skip = w.Skip
	if segment != nil {
		// -journal on a worker keeps a durable local segment next to the
		// coordinator-facing log; a dead coordinator can later merge it
		// with MergeSegments semantics instead of re-running the shard.
		sup.Journal = dist.Tee(w.Sink(), segment)
	} else {
		sup.Journal = w.Sink()
	}

	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -listen: %v\n", err)
		return 1
	}
	// Scripts (make dist-smoke) parse this line for the bound port.
	fmt.Fprintf(os.Stderr, "worker listening on http://%s\n", ln.Addr())
	srv := httpd.New(dist.NewHandler(w, sup, o.Metrics))
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "experiments: worker server: %v\n", err)
		}
	}()

	pass := func(ctx context.Context) {
		po := o
		po.Ctx = ctx
		for _, id := range ids {
			if ctx.Err() != nil {
				return
			}
			po.Cells.SetLabel(id)
			if _, err := registry[id](po); err != nil {
				if errors.Is(err, harness.ErrInterrupted) {
					return
				}
				// A failing experiment poisons only its own cells; the
				// coordinator re-shards or simulates them locally.
				fmt.Fprintf(os.Stderr, "experiments: worker: %s: %v\n", id, err)
			}
		}
	}
	werr := w.Run(drainCtx, pass)

	if err := httpd.Shutdown(srv, 2*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: worker shutdown: %v\n", err)
	}
	if segment != nil {
		segment.Close()
	}
	st := w.Status()
	cs := sup.Counters.Snapshot()
	fmt.Fprintf(os.Stderr, "worker drained: %d/%d assigned cell(s) done over %d pass(es); %d executed, %d skipped\n",
		st.Done, st.Assigned, st.Passes, cs.Executed, cs.Skipped)
	if werr != nil && !errors.Is(werr, context.Canceled) {
		fmt.Fprintf(os.Stderr, "experiments: worker: %v\n", werr)
		return 1
	}
	return 0
}
