package main

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// workerProc is a real -worker subprocess plus its captured stderr.
type workerProc struct {
	cmd  *exec.Cmd
	addr string
	mu   sync.Mutex
	errb bytes.Buffer
}

func (w *workerProc) stderr() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.errb.String()
}

// startWorkerProc launches the experiments binary in -worker mode and
// waits for its "worker listening on" announcement.
func startWorkerProc(t *testing.T, base []string) *workerProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], append(base, "-worker", "-listen", "127.0.0.1:0")...)
	cmd.Env = append(os.Environ(), "IPEX_EXPERIMENTS_MAIN=1")
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	w := &workerProc{cmd: cmd}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			w.mu.Lock()
			fmt.Fprintln(&w.errb, line)
			w.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "worker listening on "); ok {
				select {
				case addrc <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	select {
	case w.addr = <-addrc:
	case <-time.After(30 * time.Second):
		t.Fatalf("worker never announced its address; stderr:\n%s", w.stderr())
	}
	return w
}

// stalledListener accepts connections and swallows bytes without ever
// responding: the network-partition chaos case.
func stalledListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	return "http://" + ln.Addr().String()
}

// waitForJournalLines blocks until path holds at least n newline-terminated
// lines (header included).
func waitForJournalLines(t *testing.T, path string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		b, _ := os.ReadFile(path)
		if bytes.Count(b, []byte("\n")) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal %s never reached %d lines", path, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDistributedChaosSubprocess is the fleet chaos gate: a sweep sharded
// across two real workers and one partitioned (stalled) address, with one
// worker SIGKILLed mid-sweep, must still produce stdout byte-identical to
// the serial run — and the merged journal must then -resume with zero
// re-executed cells.
func TestDistributedChaosSubprocess(t *testing.T) {
	base := []string{"-exp", "fig11", "-scale", "0.02", "-apps", "fft,gsme", "-json"}
	golden, _, code := runMain(t, base...)
	if code != 0 {
		t.Fatalf("golden run exited %d", code)
	}

	w1 := startWorkerProc(t, base)
	w2 := startWorkerProc(t, base)
	stalled := stalledListener(t)

	j := filepath.Join(t.TempDir(), "merged.jsonl")
	coordArgs := append(base,
		"-coordinator", w1.addr+","+w2.addr+","+stalled,
		"-journal", j,
		"-dist-poll", "25ms", "-dist-timeout", "300ms", "-dist-retries", "2")
	coord := exec.Command(os.Args[0], coordArgs...)
	coord.Env = append(os.Environ(), "IPEX_EXPERIMENTS_MAIN=1")
	var out, errb bytes.Buffer
	coord.Stdout, coord.Stderr = &out, &errb
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}

	// SIGKILL one worker as soon as the fleet has journaled anything —
	// a genuine kill -9 mid-sweep, no drain, no goodbye.
	waitForJournalLines(t, j, 2)
	if err := w2.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\nstderr:\n%s", err, errb.String())
	}
	if out.String() != golden {
		t.Fatalf("distributed stdout differs from serial golden:\n got %s\nwant %s\ncoordinator stderr:\n%s",
			out.String(), golden, errb.String())
	}
	// The stalled address must have been declared dead, not waited on
	// forever; the SIGKILLed worker's shard must have moved.
	if s := errb.String(); !strings.Contains(s, "declared dead") {
		t.Errorf("no worker was declared dead despite a SIGKILL and a stall:\n%s", s)
	}

	// Fleet-wide resume: the merged journal replays every cell; nothing
	// that completed anywhere may re-execute.
	resumed, errOut, code := runMain(t, append(base, "-journal", j, "-resume")...)
	if code != 0 {
		t.Fatalf("resume exited %d\nstderr:\n%s", code, errOut)
	}
	if resumed != golden {
		t.Fatalf("resume of the merged journal differs from golden:\n got %s\nwant %s", resumed, golden)
	}
	if !strings.Contains(errOut, "supervision: 0 cell(s) executed") {
		t.Fatalf("resume re-executed cells the fleet already completed:\n%s", errOut)
	}
}

// TestCoordinatorSIGINTResume: SIGINT on the coordinator mid-fleet must
// drain to exit 130 with a resumable merged journal, and the resume must
// replay every merged cell (zero re-executions of completed cells) and
// match the serial golden byte for byte.
func TestCoordinatorSIGINTResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess SIGINT test needs a multi-second sweep")
	}
	base := []string{"-exp", "fig11", "-scale", "10", "-apps", "fft,gsme", "-parallelism", "1", "-json"}
	golden, _, code := runMain(t, base...)
	if code != 0 {
		t.Fatalf("golden run exited %d", code)
	}

	w1 := startWorkerProc(t, base)

	j := filepath.Join(t.TempDir(), "merged.jsonl")
	coordArgs := append(base, "-coordinator", w1.addr, "-journal", j, "-dist-poll", "25ms")
	coord := exec.Command(os.Args[0], coordArgs...)
	coord.Env = append(os.Environ(), "IPEX_EXPERIMENTS_MAIN=1")
	var out, errb bytes.Buffer
	coord.Stdout, coord.Stderr = &out, &errb
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}

	// Interrupt once at least two cells are merged — mid-fleet, with the
	// worker still crunching.
	waitForJournalLines(t, j, 3)
	if err := coord.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := coord.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("SIGINT coordinator: err=%v\nstderr:\n%s", err, errb.String())
	}
	if s := errb.String(); !strings.Contains(s, "resumable") {
		t.Fatalf("coordinator drain did not leave a resumable journal:\n%s", s)
	}

	// Resume locally (the fleet is gone). Journaled cells replay; the rest
	// simulate — and the output still matches the serial run exactly.
	resumed, errOut, code := runMain(t, append(base, "-journal", j, "-resume")...)
	if code != 0 {
		t.Fatalf("resume exited %d\nstderr:\n%s", code, errOut)
	}
	if resumed != golden {
		t.Fatalf("resume after coordinator SIGINT differs from golden:\n got %s\nwant %s", resumed, golden)
	}
	// "N journaled cell(s) will replay" + supervision "N replayed" proves
	// zero re-execution of completed cells.
	idx := strings.Index(errOut, "resuming")
	if idx < 0 {
		t.Fatalf("resume announcement missing:\n%s", errOut)
	}
	var n int
	if _, serr := fmt.Sscanf(errOut[idx:], "resuming %s %d journaled", new(string), &n); serr != nil || n < 2 {
		t.Fatalf("resume announced %d journaled cells (err %v):\n%s", n, serr, errOut)
	}
	if !strings.Contains(errOut, fmt.Sprintf("%d replayed", n)) {
		t.Fatalf("resume did not replay all %d journaled cells:\n%s", n, errOut)
	}
}

// TestDistFlagValidation pins the flag contract: the dist modes refuse
// nonsensical combinations with a clear one-line error.
func TestDistFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-exp", "fig11", "-worker"}, "-worker needs -listen"},
		{[]string{"-exp", "fig11", "-worker", "-listen", ":0", "-coordinator", "http://x"}, "mutually exclusive"},
		{[]string{"-exp", "fig11", "-worker", "-listen", ":0", "-resume", "-journal", "x"}, "coordinator-side"},
		{[]string{"-exp", "fig11", "-coordinator", "http://x"}, "-coordinator needs -journal"},
	}
	for _, c := range cases {
		_, errOut, code := runMain(t, c.args...)
		if code != 1 || !strings.Contains(errOut, c.want) {
			t.Errorf("%v: exit %d, stderr %q; want exit 1 mentioning %q", c.args, code, errOut, c.want)
		}
	}
}
