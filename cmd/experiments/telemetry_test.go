package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ipex/internal/experiments"
	"ipex/internal/harness"
	"ipex/internal/promtext"
	"ipex/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestTelemetryEndpoints drives the -listen handler over real HTTP: /metrics
// must expose the sweep-progress gauges and the shared registry in valid
// Prometheus text format, /debug/vars the expvar JSON.
func TestTelemetryEndpoints(t *testing.T) {
	prog := &experiments.Progress{}
	reg := trace.NewRegistry()
	// Sentinel metrics with names no simulation touches, so their exact
	// values survive the sweep below.
	reg.Counter("test.sentinel").Add(5)
	reg.Gauge("test.sentinel_gauge").Add(12.5)

	// Run a real (tiny) sweep through the progress counters so the gauges
	// carry live values, exactly as a sweep under -listen would.
	sup := &harness.Supervisor{}
	o := experiments.Options{Scale: 0.02, Apps: []string{"fft", "gsme"}, Progress: prog, Metrics: reg, Sup: sup}
	if _, err := experiments.Fig11(o); err != nil {
		t.Fatal(err)
	}
	done, total, insts := prog.Snapshot()
	if done == 0 || done != total || insts == 0 {
		t.Fatalf("sweep progress = %d/%d insts=%d", done, total, insts)
	}

	srv := httptest.NewServer(newTelemetryHandler(trace.NewWallClock(), prog, reg, sup))
	defer srv.Close()

	body := get(t, srv, "/metrics")
	for _, want := range []string{
		"# TYPE ipex_sweep_cells_total gauge",
		"# TYPE ipex_sweep_cells_done gauge",
		"# TYPE ipex_sweep_insts_total gauge",
		"# TYPE ipex_sweep_elapsed_seconds gauge",
		"# TYPE ipex_sweep_cells_per_second gauge",
		"# TYPE ipex_sweep_eta_seconds gauge",
		// Supervision counters from the crash-safe harness ride along; this
		// unsupervised-but-counted sweep executed every cell and replayed,
		// retried, and panicked none.
		"# TYPE ipex_sweep_cells_replayed gauge",
		"ipex_sweep_cells_replayed 0",
		"# TYPE ipex_sweep_cells_retried gauge",
		"# TYPE ipex_sweep_cell_timeouts gauge",
		"# TYPE ipex_sweep_cell_panics gauge",
		"ipex_sweep_cell_panics 0",
		"# TYPE ipex_sweep_cell_failures gauge",
		// The shared registry rides along, counters typed as counters, with
		// live simulation metrics next to the sentinels.
		"# TYPE ipex_test_sentinel counter",
		"ipex_test_sentinel 5",
		"ipex_test_sentinel_gauge 12.5",
		"# TYPE ipex_run_outages counter",
		"# TYPE ipex_energy_total_nj gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	// Every line is a comment or "name value" — the text exposition shape.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if f := strings.Fields(line); len(f) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
	// The progress gauges reflect the sweep that ran.
	if !strings.Contains(body, "ipex_sweep_cells_done "+itoa(done)) {
		t.Errorf("/metrics does not report %d done cells:\n%s", done, body)
	}

	vars := get(t, srv, "/debug/vars")
	var decoded map[string]any
	if err := json.Unmarshal([]byte(vars), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	sweep, ok := decoded["ipex_sweep"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing ipex_sweep: %v", decoded)
	}
	if got := sweep["cells_done"].(float64); uint64(got) != done {
		t.Errorf("expvar cells_done = %v, want %d", got, done)
	}
}

// TestTelemetryConformance runs a tiny supervised sweep with lifecycle spans
// on — exactly the -listen wiring — and lints the full /metrics exposition:
// every family typed, histogram buckets cumulative with +Inf, no duplicate
// series. This is the conformance gate for the experiments endpoint.
func TestTelemetryConformance(t *testing.T) {
	prog := &experiments.Progress{}
	reg := trace.NewRegistry()
	clock := trace.NewWallClock()
	sup := &harness.Supervisor{Obs: harness.NewObs(clock, reg)}
	o := experiments.Options{Scale: 0.02, Apps: []string{"fft"}, Progress: prog, Metrics: reg, Sup: sup}
	if _, err := experiments.Fig11(o); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(newTelemetryHandler(clock, prog, reg, sup))
	defer srv.Close()
	body := get(t, srv, "/metrics")
	if errs := promtext.Lint(body, "ipex_"); len(errs) != 0 {
		t.Errorf("/metrics failed conformance lint: %v\n%s", errs, body)
	}
	// The lifecycle histograms ride along once spans are on.
	for _, want := range []string{
		"# TYPE ipex_harness_attempt_seconds histogram",
		"ipex_harness_attempt_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	exp, err := promtext.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	fam := exp.Family("ipex_harness_attempt_seconds")
	if fam == nil {
		t.Fatal("no ipex_harness_attempt_seconds family parsed")
	}
	done, _, _ := prog.Snapshot()
	bs := promtext.Buckets(fam)
	if len(bs) == 0 || bs[len(bs)-1].CumCount != float64(done) {
		t.Errorf("attempt histogram +Inf count = %v buckets, want %d attempts", bs, done)
	}
}

func itoa(n uint64) string {
	var b [20]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			return string(b[i:])
		}
	}
}
