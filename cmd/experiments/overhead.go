package main

import (
	"fmt"

	"ipex/internal/core"
)

// overheadReport renders §6.1's hardware-overhead analysis.
func overheadReport() string {
	r := core.Overhead(2)
	return fmt.Sprintf(
		"Section 6.1: hardware overhead\n"+
			"  registers per cache : R_throttled(32b) + R_total(32b) + R_tr(32b) + R_ipd(3b) = %d bits\n"+
			"  caches              : %d (ICache + DCache)\n"+
			"  total               : %d bits\n"+
			"  core area (45 nm)   : %.2f mm²\n"+
			"  area fraction       : %.4f%% (paper: 0.0018%%)",
		r.BitsPerCache, r.Caches, r.TotalBits, r.CoreAreaMM2, 100*r.AreaFraction)
}
