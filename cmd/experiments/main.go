// Command experiments regenerates the paper's evaluation: every figure and
// table of §6 plus the DESIGN.md ablations.
//
//	experiments -all             # everything (full workload lengths)
//	experiments -exp fig10       # one experiment
//	experiments -all -scale 0.1  # quick pass at 10% workload length
//	experiments -list            # show available experiment ids
//
// Output is the textual form of each figure's series / table's rows;
// EXPERIMENTS.md records these next to the paper's published values.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"ipex/cmd/internal/httpd"
	"ipex/internal/benchio"
	"ipex/internal/dist"
	"ipex/internal/experiments"
	"ipex/internal/harness"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/remote"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

type runner func(experiments.Options) (fmt.Stringer, error)

func wrap[T fmt.Stringer](f func(experiments.Options) (T, error)) runner {
	return func(o experiments.Options) (fmt.Stringer, error) {
		r, err := f(o)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

var registry = map[string]runner{
	"fig01":  wrap(experiments.Fig01),
	"fig02":  wrap(experiments.Fig02),
	"fig04":  wrap(experiments.Fig04),
	"fig10":  wrap(experiments.Fig10),
	"fig11":  wrap(experiments.Fig11),
	"fig12":  wrap(experiments.Fig12),
	"fig13":  wrap(experiments.Fig13),
	"fig14":  wrap(experiments.Fig14),
	"fig15":  wrap(experiments.Fig15),
	"table2": wrap(experiments.Table2),
	"table3": wrap(experiments.Table3),
	"table4": wrap(experiments.Table4),
	"fig16":  wrap(experiments.Fig16),
	"fig17":  wrap(experiments.Fig17),
	"fig18":  wrap(experiments.Fig18),
	"fig19":  wrap(experiments.Fig19),
	"fig20":  wrap(experiments.Fig20),
	"fig21":  wrap(experiments.Fig21),
	"fig22":  wrap(experiments.Fig22),
	"fig23":  wrap(experiments.Fig23),
	"fig24":  wrap(experiments.Fig24),
	"fig25":  wrap(experiments.Fig25),

	"robust-sensor": wrap(experiments.RobustSensor),
	"robust-ckpt":   wrap(experiments.RobustCkpt),

	"ablation-degree":   wrap(experiments.AblationDegreePolicy),
	"ablation-adaptive": wrap(experiments.AblationAdaptive),
	"ablation-dup":      wrap(experiments.AblationDupSuppress),
	"ablation-dest":     wrap(experiments.AblationPrefetchDest),
	"ext-reissue":       wrap(experiments.AblationReissue),
	"ext-addrgen":       wrap(experiments.AblationAddressGen),
}

// order fixes the -all sequence to the paper's presentation order.
var order = []string{
	"fig01", "fig02", "fig04",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	"table2", "table3", "table4",
	"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22", "fig23",
	"fig24", "fig25",
	"robust-sensor", "robust-ckpt",
	"ablation-degree", "ablation-adaptive", "ablation-dup", "ablation-dest",
	"ext-reissue", "ext-addrgen",
}

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		exp      = flag.String("exp", "", "run one experiment (see -list)")
		list     = flag.Bool("list", false, "list experiment ids")
		scale    = flag.Float64("scale", 1.0, "workload length multiplier")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of tables")
		apps     = flag.String("apps", "", "comma-separated app subset (default all 20)")
		seed     = flag.Uint64("seed", 1, "power-trace seed")
		parallel = flag.Int("parallelism", 0, "max concurrent simulations (0 = NumCPU; tracing forces 1)")
		paranoid = flag.Bool("paranoid", false, "run every simulation with the runtime invariant checker; a dirty report fails the run")

	genericRun = flag.Bool("generic-loop", false, "force the generic interpreter loop in every cell (disable the specialized fast paths; results are bit-identical either way)")

		tracePath  = flag.String("trace", "", "stream a JSONL event trace of every run to this file (serializes the sweep)")
		traceDir   = flag.String("tracedir", "", "write one JSONL trace file per sweep cell into this directory (keeps -parallelism; analyze with tracestat)")
		metricsOut = flag.String("metrics", "", "write an aggregate JSON metrics dump of the sweep to this file")
		listenAddr = flag.String("listen", "", "serve live sweep telemetry on this address (Prometheus text on /metrics, expvar on /debug/vars), e.g. :9090")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchJSON  = flag.String("benchjson", "", "write hot-loop + per-experiment timings to this JSON file (e.g. BENCH_hotloop.json)")

		journalPath = flag.String("journal", "", "journal every completed sweep cell to this JSONL file; an interrupted sweep resumes with -resume")
		resume      = flag.Bool("resume", false, "resume the -journal file: journaled cells replay bit-identically instead of re-simulating")
		maxRetries  = flag.Int("max-retries", 0, "re-run a cell up to N times after a transient failure (paranoid-flagged or timed-out run)")
		backoff     = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay of the deterministic exponential backoff between cell retries")
		cellTimeout = flag.Duration("cell-timeout", 0, "wall-clock backstop per cell: a run stuck past this is cancelled at its next power-cycle boundary and retried (0 = off; never affects results)")
		cellBudget  = flag.Uint64("cell-budget", 0, "deterministic per-cell deadline in simulated cycles: clamps each cell's MaxCycles (0 = off)")
		stopAfter   = flag.Uint64("interrupt-after", 0, "deterministically drain the sweep after admitting N cells, as if interrupted (for resume tests)")

		telemetryLinger = flag.Duration("telemetry-linger", 0, "keep the -listen telemetry server up this long after the sweep finishes (so scrapers catch the final state; used by make obs-smoke)")

		worker       = flag.Bool("worker", false, "run as a distributed sweep worker: serve shard assignments on -listen, execute only assigned cells, stream journal entries to the coordinator (see EXPERIMENTS.md)")
		coordinator  = flag.String("coordinator", "", "comma-separated worker base URLs (http://host:port); shard the sweep across them and merge their journal streams into -journal")
		distPoll     = flag.Duration("dist-poll", 200*time.Millisecond, "coordinator health-check and journal-pull interval")
		distTimeout  = flag.Duration("dist-timeout", 5*time.Second, "per-request deadline for coordinator→worker calls")
		distRetries  = flag.Int("dist-retries", 3, "consecutive failed health checks before a worker is declared dead and its shard re-assigned to survivors")
		distStealMin = flag.Int("dist-steal-min", 4, "minimum remaining cells a straggler must hold before an idle worker steals the tail half of them")

		servers         = flag.String("servers", "", "comma-separated ipexd base URLs (http://host:port); remotable cells execute on the fleet behind retries, hedging, and per-server circuit breakers, and degrade to local simulation when the fleet cannot answer")
		remoteRetries   = flag.Int("remote-retries", 3, "fleet attempts per cell beyond the first before degrading to local execution")
		remoteTimeout   = flag.Duration("remote-timeout", 15*time.Second, "per-attempt HTTP deadline for fleet requests")
		hedgeAfter      = flag.Duration("hedge-after", 250*time.Millisecond, "race a second fleet replica when an attempt has not answered within this duration (0 disables hedging)")
		noLocalFallback = flag.Bool("no-local-fallback", false, "fail a cell whose fleet retry budget is exhausted instead of simulating it locally")
	)
	flag.Parse()

	// Validate flags up front: a bad value should die with one clear line
	// here, not as a panic or library error deep inside a sweep.
	// "!(x > 0)" also catches NaN.
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fmt.Fprintf(os.Stderr, "experiments: -scale must be a positive finite number, got %g\n", *scale)
		os.Exit(1)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -parallelism must be >= 0, got %d\n", *parallel)
		os.Exit(1)
	}
	if *apps != "" {
		known := make(map[string]bool, len(workload.Names()))
		for _, n := range workload.Names() {
			known[n] = true
		}
		for _, a := range strings.Split(*apps, ",") {
			if !known[a] {
				fmt.Fprintf(os.Stderr, "experiments: unknown app %q in -apps (want a subset of %s)\n",
					a, strings.Join(workload.Names(), ", "))
				os.Exit(1)
			}
		}
	}
	if *maxRetries < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -max-retries must be >= 0, got %d\n", *maxRetries)
		os.Exit(1)
	}
	if *resume && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume needs -journal <file> (the journal to replay)")
		os.Exit(1)
	}
	if *worker && *coordinator != "" {
		fmt.Fprintln(os.Stderr, "experiments: -worker and -coordinator are mutually exclusive (a process is one or the other)")
		os.Exit(1)
	}
	if *worker && *listenAddr == "" {
		fmt.Fprintln(os.Stderr, "experiments: -worker needs -listen <addr> (the coordinator connects there)")
		os.Exit(1)
	}
	if *worker && *resume {
		fmt.Fprintln(os.Stderr, "experiments: -resume is coordinator-side; a worker holds no authoritative journal (its -journal, if any, is a local segment)")
		os.Exit(1)
	}
	if *coordinator != "" && *journalPath == "" {
		fmt.Fprintln(os.Stderr, "experiments: -coordinator needs -journal <file> (the authoritative merged journal)")
		os.Exit(1)
	}
	if *servers == "" {
		remoteFlagSet := false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "remote-retries", "remote-timeout", "hedge-after", "no-local-fallback":
				remoteFlagSet = true
			}
		})
		if remoteFlagSet {
			fmt.Fprintln(os.Stderr, "experiments: -remote-retries/-remote-timeout/-hedge-after/-no-local-fallback need -servers <urls>")
			os.Exit(1)
		}
	} else {
		if *remoteRetries < 0 {
			fmt.Fprintf(os.Stderr, "experiments: -remote-retries must be >= 0, got %d\n", *remoteRetries)
			os.Exit(1)
		}
		// A remote cell produces no local trace events, and -generic-loop's
		// A/B point is exercising the local interpreter; both contradict
		// farming the cell out.
		if *tracePath != "" || *traceDir != "" {
			fmt.Fprintln(os.Stderr, "experiments: -servers is incompatible with -trace/-tracedir (remote cells emit no local trace events)")
			os.Exit(1)
		}
		if *genericRun {
			fmt.Fprintln(os.Stderr, "experiments: -servers is incompatible with -generic-loop (the fleet runs the fast paths; the A/B must run locally)")
			os.Exit(1)
		}
	}

	if *cpuProfile != "" {
		a, err := benchio.NewAtomicFile(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(a); err != nil {
			a.Discard()
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := a.Commit(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			a, err := benchio.NewAtomicFile(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(a); err != nil {
				a.Discard()
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			if err := a.Commit(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
		}()
	}

	if *list {
		ids := make([]string, 0, len(registry))
		for id := range registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	o := experiments.Options{Scale: *scale, TraceSeed: *seed, Parallelism: *parallel, Paranoid: *paranoid, GenericLoop: *genericRun}
	if *apps != "" {
		o.Apps = strings.Split(*apps, ",")
	}

	// The supervisor is shared by every experiment of this invocation: its
	// StopAfter budget, retry policy, and counters span the whole sweep.
	sup := &harness.Supervisor{
		MaxRetries:   *maxRetries,
		BackoffBase:  *backoff,
		WallBackstop: *cellTimeout,
		StopAfter:    *stopAfter,
	}
	o.Sup = sup
	o.CellBudget = *cellBudget

	// SIGINT/SIGTERM drain the sweep gracefully: dispatch stops, in-flight
	// cells finish and are journaled, artifacts flush atomically, and the
	// process exits with a resumable journal. A second signal kills.
	drainCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	o.Ctx = drainCtx
	var sweepDone atomic.Bool
	go func() {
		<-drainCtx.Done()
		if sweepDone.Load() {
			return
		}
		fmt.Fprintln(os.Stderr, "experiments: interrupt received; finishing in-flight cells and flushing artifacts (interrupt again to kill)")
		// Restore default signal disposition so an impatient second ^C
		// terminates immediately.
		stopSignals()
	}()

	var tracerOut *benchio.AtomicFile
	if *tracePath != "" {
		if *traceDir != "" {
			fmt.Fprintln(os.Stderr, "experiments: -trace and -tracedir are mutually exclusive (one shared stream vs one file per cell)")
			os.Exit(1)
		}
		a, err := benchio.NewAtomicFile(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		tracerOut = a
		o.Tracer = trace.NewJSONL(a)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		o.Cells = experiments.NewCellTracing(*traceDir)
	}
	if *metricsOut != "" || *listenAddr != "" {
		o.Metrics = trace.NewRegistry()
	}
	// Lifecycle spans only under -listen: live telemetry wants latency
	// histograms, while a -metrics-only run stays span-free so its JSON
	// dump holds nothing wall-clock-dependent. The injected clock is the
	// only wall-time source the observability layer ever sees.
	var telClock trace.Clock
	if *listenAddr != "" {
		telClock = trace.NewWallClock()
		sup.Obs = harness.NewObs(telClock, o.Metrics)
	}

	// Remote execution: remotable cells are encoded declaratively
	// (remote.EncodeCell proves the fleet reconstructs the exact cell key)
	// and handed to the resilient client; everything else — and every cell
	// the fleet cannot answer — runs locally as before.
	var rc *remote.Client
	if *servers != "" {
		var err error
		rc, err = remote.NewClient(remote.Options{
			Servers:         splitList(*servers),
			Retries:         *remoteRetries,
			Timeout:         *remoteTimeout,
			HedgeAfter:      *hedgeAfter,
			NoLocalFallback: *noLocalFallback,
			BaseContext:     drainCtx,
			Clock:           telClock,
			Metrics:         o.Metrics,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -servers: %v\n", err)
			os.Exit(1)
		}
		o.RemoteEncode = remote.EncodeCell
		sup.Remote = rc
		fmt.Fprintf(os.Stderr, "remote execution: %d server(s), retries=%d, timeout=%v, hedge-after=%v, local-fallback=%v\n",
			len(splitList(*servers)), *remoteRetries, *remoteTimeout, *hedgeAfter, !*noLocalFallback)
	}

	var ids []string
	switch {
	case *all:
		ids = order
	case *exp != "":
		if _, ok := registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		ids = []string{*exp}
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -all, -exp <id>, or -list")
		os.Exit(1)
	}

	// The sweep hash covers everything that changes any cell's identity; a
	// -resume against a journal hashed from a different command line is
	// rejected before a single cell runs, and a worker whose command line
	// hashes differently from its coordinator's rejects every assignment.
	appsList := o.Apps
	if len(appsList) == 0 {
		appsList = workload.Names()
	}
	sweepKey := harness.Key(experiments.SweepIdentity{
		Experiments: ids,
		Scale:       *scale,
		Apps:        appsList,
		TraceSeed:   *seed,
		Paranoid:    *paranoid,
		CellBudget:  *cellBudget,
	})

	// journal is the durable journal of this process: authoritative for a
	// serial or coordinator run, a local segment for a worker. sup.Journal
	// may wrap it (worker mode tees into the coordinator-facing log).
	var journal *harness.Journal
	if *journalPath != "" {
		if *resume {
			j, replay, warns, err := harness.ResumeJournal(*journalPath, sweepKey)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			for _, w := range warns {
				fmt.Fprintf(os.Stderr, "experiments: warning: %s\n", w)
			}
			replayable := 0
			for _, e := range replay {
				if e.Kind == harness.KindCell {
					replayable++
				}
			}
			fmt.Fprintf(os.Stderr, "resuming %s: %d journaled cell(s) will replay without re-simulating\n", *journalPath, replayable)
			journal, sup.Replay = j, replay
		} else {
			j, err := harness.CreateJournal(*journalPath, sweepKey)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			journal = j
		}
		sup.Journal = journal
		defer journal.Close()
	}

	// Coordinator mode: shard the sweep across the fleet and merge worker
	// journal streams into the authoritative journal before rendering.
	var coord *dist.Coordinator
	if *coordinator != "" {
		merger := dist.NewMerger(journal, sup.Replay)
		// The rendering pass below replays everything the fleet computed;
		// the merger extends the same map the resume path seeded.
		sup.Replay = merger.Replay()
		coord = dist.NewCoordinator(dist.Options{
			Workers:     splitList(*coordinator),
			Sweep:       sweepKey,
			Merger:      merger,
			Poll:        *distPoll,
			Timeout:     *distTimeout,
			MaxFailures: *distRetries,
			StealMin:    *distStealMin,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			},
			Clock:   telClock,
			Metrics: o.Metrics,
		})
	}

	// telemetryShutdown drains the -listen server on every exit path after
	// the sweep: a bare http.Serve would leave the listener up through the
	// SIGINT drain and let one stalled client pin a goroutine forever.
	// (A -worker process serves the dist protocol on -listen instead.)
	telemetryShutdown := func() {}
	if *listenAddr != "" && !*worker {
		o.Progress = &experiments.Progress{}
		ln, err := net.Listen("tcp", *listenAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -listen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry listening on http://%s/metrics\n", ln.Addr())
		srv := httpd.New(newTelemetryHandlerDist(telClock, o.Progress, o.Metrics, sup, coord, rc))
		telemetryShutdown = func() {
			if err := httpd.Shutdown(srv, 2*time.Second); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: telemetry shutdown: %v\n", err)
			}
		}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "experiments: telemetry server: %v\n", err)
			}
		}()
	}

	if *worker {
		os.Exit(runWorker(o, sup, ids, sweepKey, *listenAddr, journal, drainCtx))
	}

	if coord != nil {
		fmt.Fprintf(os.Stderr, "coordinating %d worker(s) for sweep %s\n", len(splitList(*coordinator)), sweepKey)
		switch err := coord.Run(drainCtx); {
		case err == nil:
			s := coord.Snapshot()
			fmt.Fprintf(os.Stderr, "fleet complete: %d cell(s) merged, %d duplicate(s) dropped, %d range(s)/key(s) re-sharded, %d cell(s) stolen, %d worker death(s)\n",
				s.Merged, s.Duplicates, s.Resharded, s.Stolen, s.DeadWorkers)
		case errors.Is(err, context.Canceled):
			// SIGINT drain: the rendering loop below sees the cancelled
			// context immediately and exits 130 with a resumable journal.
			fmt.Fprintln(os.Stderr, "experiments: coordinator interrupted; the merged journal is resumable")
		default:
			// ErrNoWorkers or a broken fleet: the sweep is not lost — the
			// rendering pass replays whatever merged and simulates the rest.
			fmt.Fprintf(os.Stderr, "experiments: %v; continuing with local execution\n", err)
		}
	}

	// §6.1's overhead analysis is pure arithmetic; print it with -all.
	if *all {
		fmt.Println(overheadReport())
		fmt.Println()
	}

	var timings []benchio.Experiment
	var failures []string
	interrupted := false
	for _, id := range ids {
		if o.Tracer != nil {
			// A mark event separates the experiments in the shared stream.
			o.Tracer.Emit(trace.Event{Kind: trace.KindMark, Detail: id})
		}
		// Per-cell trace files embed the experiment id in their names.
		o.Cells.SetLabel(id)
		start := time.Now()
		r, err := registry[id](o)
		if errors.Is(err, harness.ErrInterrupted) {
			// Graceful drain: in-flight cells already finished and were
			// journaled; stop dispatching the remaining experiments too and
			// fall through to flush every artifact atomically.
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			interrupted = true
			break
		}
		if err != nil {
			// One failing experiment must not abort the rest of -all; record
			// it and keep sweeping. A single -exp run still exits on the spot.
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			if !*all {
				os.Exit(1)
			}
			failures = append(failures, fmt.Sprintf("%s: %v", id, err))
			continue
		}
		elapsed := time.Since(start).Seconds()
		timings = append(timings, benchio.Experiment{ID: id, WallSeconds: elapsed})
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]any{"experiment": id, "result": r}); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: encoding %s: %v\n", id, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(r.String())
		fmt.Printf("(%s took %.1fs)\n\n", id, elapsed)
	}

	sweepDone.Store(true)

	if o.Tracer != nil {
		if err := o.Tracer.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := tracerOut.Commit(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", o.Tracer.Events(), *tracePath)
	}
	if o.Cells != nil {
		fmt.Fprintf(os.Stderr, "wrote %d cell trace files to %s\n", o.Cells.Files(), *traceDir)
	}
	if *metricsOut != "" {
		a, err := benchio.NewAtomicFile(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := o.Metrics.WriteJSON(a); err != nil {
			a.Discard()
			fmt.Fprintf(os.Stderr, "experiments: writing metrics: %v\n", err)
			os.Exit(1)
		}
		if err := a.Commit(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", *metricsOut)
	}

	if *benchJSON != "" && !interrupted {
		rec := benchio.NewRecord()
		rec.Scale = *scale
		hl, err := probeHotloop(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		rec.Hotloop = hl
		rec.Experiments = timings
		if err := benchio.Write(*benchJSON, rec); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%.1f ns/inst, %d experiments)\n",
			*benchJSON, rec.Hotloop.NsPerInst, len(timings))
	}

	// The sweep is over and its artifacts are flushed; the graceful drain
	// includes the telemetry listener on every exit path below. An optional
	// linger keeps the final state scrapeable for a moment first.
	if *listenAddr != "" && *telemetryLinger > 0 && !interrupted {
		time.Sleep(*telemetryLinger)
	}
	telemetryShutdown()

	if cs := sup.Counters.Snapshot(); cs != (harness.CounterSnapshot{}) && (journal != nil || interrupted || rc != nil || cs.Retried+cs.Panics+cs.Timeouts > 0) {
		fmt.Fprintf(os.Stderr, "supervision: %d cell(s) executed, %d replayed, %d remote, %d retried, %d timeouts, %d panics, %d failed\n",
			cs.Executed, cs.Replayed, cs.Remote, cs.Retried, cs.Timeouts, cs.Panics, cs.Failures)
	}
	if rc != nil {
		fmt.Fprintln(os.Stderr, rc.Summary())
	}
	if interrupted {
		if journal != nil {
			fmt.Fprintf(os.Stderr, "experiments: interrupted; journal %s is resumable — rerun the same command line with -resume\n", journal.Path())
		} else {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; rerun with -journal <file> to make sweeps resumable")
		}
		journal.Close()
		os.Exit(130)
	}

	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiment(s) failed:\n", len(failures), len(ids))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
}

// probeHotloop measures the simulator core the way bench_test.go's
// BenchmarkSimulatorThroughput does: repeated nvp.Run of one memoized
// workload on the default configuration, normalized per instruction.
func probeHotloop(scale float64) (*benchio.Hotloop, error) {
	const app = "gsme"
	tr := power.Generate(power.RFHome, power.DefaultTraceSamples, 1)
	cfg := nvp.DefaultConfig()
	wl, err := workload.Shared().Get(app, scale)
	if err != nil {
		return nil, err
	}
	insts := uint64(wl.Len())

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			wl, err := workload.Shared().Get(app, scale)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := nvp.Run(wl, tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	nsPerRun := float64(res.NsPerOp())
	return &benchio.Hotloop{
		App:          app,
		Scale:        scale,
		Insts:        insts,
		NsPerInst:    nsPerRun / float64(insts),
		InstsPerSec:  float64(insts) / (nsPerRun / 1e9),
		AllocsPerRun: res.AllocsPerOp(),
		BytesPerRun:  res.AllocedBytesPerOp(),
	}, nil
}
