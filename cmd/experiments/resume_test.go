package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMain re-execs the test binary as the experiments command when the
// driver env var is set: subprocess tests exercise the real main() — flag
// parsing, journal setup, signal handling, exit codes — without a separate
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("IPEX_EXPERIMENTS_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runMain runs this test binary as the experiments command and returns its
// stdout, stderr, and exit code.
func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "IPEX_EXPERIMENTS_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	var ee *exec.ExitError
	switch {
	case err == nil:
	case errors.As(err, &ee):
		code = ee.ExitCode()
	default:
		t.Fatalf("running %v: %v", args, err)
	}
	return out.String(), errb.String(), code
}

// TestInterruptResumeSubprocess drives the full command-line round trip with
// a deterministic interrupt: run to a golden, interrupt after 2 cells with a
// journal (exit 130), resume, and require byte-identical stdout.
func TestInterruptResumeSubprocess(t *testing.T) {
	base := []string{"-exp", "fig11", "-scale", "0.02", "-apps", "fft,gsme", "-json"}
	golden, _, code := runMain(t, base...)
	if code != 0 {
		t.Fatalf("golden run exited %d", code)
	}

	j := filepath.Join(t.TempDir(), "sweep.jsonl")
	_, errOut, code := runMain(t, append(base, "-journal", j, "-interrupt-after", "2")...)
	if code != 130 {
		t.Fatalf("interrupted run exited %d, want 130\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "resumable") || !strings.Contains(errOut, "-resume") {
		t.Fatalf("interrupted run did not point at -resume:\n%s", errOut)
	}

	out, errOut, code := runMain(t, append(base, "-journal", j, "-resume")...)
	if code != 0 {
		t.Fatalf("resume exited %d\nstderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "2 journaled cell(s) will replay") {
		t.Fatalf("resume did not announce the replay:\n%s", errOut)
	}
	if out != golden {
		t.Fatalf("resumed stdout differs from uninterrupted golden:\n got %s\nwant %s", out, golden)
	}
}

// TestSIGINTGracefulDrain sends a real SIGINT to a running sweep: the
// process must drain (exit 130, journal intact) and a -resume run must be
// byte-identical to an uninterrupted golden.
func TestSIGINTGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess SIGINT test needs a multi-second sweep")
	}
	base := []string{"-exp", "fig11", "-scale", "10", "-apps", "fft,gsme", "-parallelism", "1", "-json"}
	golden, _, code := runMain(t, base...)
	if code != 0 {
		t.Fatalf("golden run exited %d", code)
	}

	j := filepath.Join(t.TempDir(), "sweep.jsonl")
	cmd := exec.Command(os.Args[0], append(base, "-journal", j)...)
	cmd.Env = append(os.Environ(), "IPEX_EXPERIMENTS_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait until at least one cell entry landed in the journal (header line
	// plus one cell line), then interrupt mid-sweep.
	deadline := time.Now().Add(30 * time.Second)
	for {
		b, _ := os.ReadFile(j)
		if bytes.Count(b, []byte("\n")) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("no cell journaled within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("SIGINT run: err=%v\nstderr:\n%s", err, errb.String())
	}
	if s := errb.String(); !strings.Contains(s, "interrupt received") || !strings.Contains(s, "resumable") {
		t.Fatalf("drain messages missing from stderr:\n%s", s)
	}

	resumed, errOut, code := runMain(t, append(base, "-journal", j, "-resume")...)
	if code != 0 {
		t.Fatalf("resume exited %d\nstderr:\n%s", code, errOut)
	}
	if resumed != golden {
		t.Fatalf("resume after SIGINT differs from golden:\n got %s\nwant %s", resumed, golden)
	}
}
