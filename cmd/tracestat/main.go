// Command tracestat analyzes the simulator's JSONL event traces offline:
// per-power-cycle timelines, prefetch coverage/accuracy/timeliness, wiped-
// prefetch waste, and IPEX degree trajectories, reconstructed from the event
// stream alone.
//
//	ipexsim -app gsme -trace run.jsonl && tracestat run.jsonl
//	experiments -exp fig10 -trace sweep.jsonl && tracestat -cycles 0 sweep.jsonl
//	tracestat -json run.jsonl          # full reconstruction as JSON
//	cat run.jsonl | tracestat          # reads stdin without an argument
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ipex/internal/benchio"
	"ipex/internal/tracestat"
)

func main() {
	var (
		asJSON  = flag.Bool("json", false, "emit the reconstruction as JSON instead of tables")
		cycles  = flag.Int("cycles", 20, "per-power-cycle table rows per run (0 = all)")
		readNJ  = flag.Float64("readnj", 0, "per-block prefetch NVM read energy in nJ for the waste numbers (0 = default ReRAM)")
		outPath = flag.String("o", "", "write the report to this file (atomically: temp + rename) instead of stdout")
	)
	flag.Parse()

	if *cycles < 0 {
		fatalf("-cycles must be >= 0, got %d", *cycles)
	}
	if *readNJ < 0 {
		fatalf("-readnj must be >= 0, got %g", *readNJ)
	}

	var in io.Reader = os.Stdin
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		in = f
	default:
		fatalf("at most one trace file argument (got %d)", flag.NArg())
	}

	rep, err := tracestat.Analyze(in, tracestat.Options{PrefetchReadNJ: *readNJ})
	if err != nil {
		fatalf("%v", err)
	}

	var out io.Writer = os.Stdout
	var atomic *benchio.AtomicFile
	if *outPath != "" {
		a, err := benchio.NewAtomicFile(*outPath)
		if err != nil {
			fatalf("%v", err)
		}
		atomic = a
		out = a
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			if atomic != nil {
				atomic.Discard()
			}
			fatalf("encoding report: %v", err)
		}
	} else if _, err := io.WriteString(out, rep.Render(*cycles)); err != nil {
		if atomic != nil {
			atomic.Discard()
		}
		fatalf("writing report: %v", err)
	}
	if atomic != nil {
		if err := atomic.Commit(); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote report to %s\n", *outPath)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracestat: "+format+"\n", args...)
	os.Exit(1)
}
