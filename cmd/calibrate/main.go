// Command calibrate prints the per-app texture of the synthetic workloads
// under the default system: stall and miss ratios without prefetching
// (paper Fig. 2), plus baseline-vs-IPEX summaries. It exists to check the
// workload generators against the published characteristics when tuning
// internal/workload/specs.go.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/stats"
	"ipex/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload length multiplier")
	flag.Parse()
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fatalf("-scale must be a positive finite number, got %g", *scale)
	}

	trace := power.Generate(power.RFHome, power.DefaultTraceSamples, 1)

	var t stats.Table
	t.Header("app", "istall%", "dstall%", "imiss%", "dmiss%", "outages",
		"pf:spd", "ipex:spd", "iacc%", "dacc%", "ipf", "dpf", "thr%", "e:ipex/base")
	var spdPf, spdIpex []float64
	for _, app := range workload.Names() {
		base := nvp.DefaultConfig()

		noPf, err := runOne(app, *scale, trace, base.WithoutPrefetch())
		check(err)
		pf, err := runOne(app, *scale, trace, base)
		check(err)
		ipex, err := runOne(app, *scale, trace, base.WithIPEX())
		check(err)

		spd1 := stats.Speedup(float64(noPf.Cycles), float64(pf.Cycles))
		spd2 := stats.Speedup(float64(pf.Cycles), float64(ipex.Cycles))
		spdPf = append(spdPf, spd1)
		spdIpex = append(spdIpex, spd2)
		thr := float64(ipex.Inst.PrefetchThrottled + ipex.Data.PrefetchThrottled)
		tot := thr + float64(ipex.Inst.PrefetchIssued+ipex.Data.PrefetchIssued)
		t.Row(app,
			fmt.Sprintf("%.1f", 100*float64(noPf.Inst.StallCycles)/float64(noPf.OnCycles)),
			fmt.Sprintf("%.1f", 100*float64(noPf.Data.StallCycles)/float64(noPf.OnCycles)),
			fmt.Sprintf("%.2f", 100*noPf.Inst.Cache.MissRate()),
			fmt.Sprintf("%.2f", 100*noPf.Data.Cache.MissRate()),
			fmt.Sprintf("%d", pf.Outages),
			fmt.Sprintf("%.3f", spd1),
			fmt.Sprintf("%.3f", spd2),
			fmt.Sprintf("%.1f", 100*pf.Inst.Accuracy()),
			fmt.Sprintf("%.1f", 100*pf.Data.Accuracy()),
			fmt.Sprintf("%d", pf.Inst.PrefetchIssued),
			fmt.Sprintf("%d", pf.Data.PrefetchIssued),
			fmt.Sprintf("%.1f", 100*stats.Ratio(thr, tot)),
			fmt.Sprintf("%.3f", ipex.Energy.Total()/pf.Energy.Total()),
		)
	}
	fmt.Print(t.String())
	fmt.Printf("gmean speedup: prefetch/nopf=%.4f  ipex/prefetch=%.4f\n",
		stats.Geomean(spdPf), stats.Geomean(spdIpex))
}

// runOne builds the workload and runs it, surfacing errors instead of
// panicking on a bad app name or scale.
func runOne(app string, scale float64, trace *power.Trace, cfg nvp.Config) (nvp.Result, error) {
	wl, err := workload.New(app, scale)
	if err != nil {
		return nvp.Result{}, err
	}
	return nvp.Run(wl, trace, cfg)
}

func check(err error) {
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "calibrate: "+format+"\n", args...)
	os.Exit(1)
}
