package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"ipex/internal/dist"
	"ipex/internal/promtext"
)

// snapshot is one poll of an endpoint: the parsed /metrics scrape plus, when
// the endpoint coordinates a fleet, the /dist/v1/fleet view.
type snapshot struct {
	Exp   *promtext.Exposition
	Fleet *dist.FleetView
}

var client = &http.Client{Timeout: 5 * time.Second}

// poll scrapes base/metrics (required) and base/dist/v1/fleet (optional —
// a 404 just means the endpoint is not a coordinator).
func poll(base string) (*snapshot, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	exp, err := promtext.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("/metrics: %v", err)
	}
	s := &snapshot{Exp: exp}

	fresp, err := client.Get(base + "/dist/v1/fleet")
	if err == nil {
		if fresp.StatusCode == http.StatusOK {
			var v dist.FleetView
			if json.NewDecoder(fresp.Body).Decode(&v) == nil {
				s.Fleet = &v
			}
		}
		fresp.Body.Close()
	}
	return s, nil
}

// gauge returns the value of an unlabelled sample, or NaN when absent.
func (s *snapshot) gauge(name string) float64 {
	f := s.Exp.Family(name)
	if f == nil {
		return math.NaN()
	}
	for _, sm := range f.Samples {
		if sm.Name == name && len(sm.Labels) == 0 {
			return sm.Value
		}
	}
	return math.NaN()
}

// render writes one frame: a sweep header when the endpoint exports the
// ipex_sweep_* gauges, the fleet table when it coordinates workers, latency
// quantiles for every exported histogram, and the remaining scalar series.
func render(w io.Writer, base string, s *snapshot) {
	fmt.Fprintf(w, "ipextop — %s\n", base)

	if total := s.gauge("ipex_sweep_cells_total"); !math.IsNaN(total) {
		done := s.gauge("ipex_sweep_cells_done")
		pct := 0.0
		if total > 0 {
			pct = 100 * done / total
		}
		fmt.Fprintf(w, "sweep: %.0f/%.0f cells (%.1f%%)  %.1f cells/s  elapsed %s  eta %s\n",
			done, total, pct,
			s.gauge("ipex_sweep_cells_per_second"),
			fmtSeconds(s.gauge("ipex_sweep_elapsed_seconds")),
			fmtSeconds(s.gauge("ipex_sweep_eta_seconds")))
	}

	if s.Fleet != nil {
		renderFleet(w, s.Fleet)
	}
	renderHistograms(w, s.Exp)
	renderScalars(w, s.Exp)
}

// renderFleet writes the per-worker table: liveness, progress, throughput,
// and the coordinator's straggler call.
func renderFleet(w io.Writer, v *dist.FleetView) {
	fmt.Fprintf(w, "\nfleet %q: %d live, %d remaining, %d merged (%d dup), %d resharded, %d stolen, %d dead\n",
		v.Sweep, v.Live, v.Remaining, v.Merged, v.Duplicates, v.Resharded, v.Stolen, v.DeadWorkers)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  WORKER\tSTATE\tDONE\tASSIGNED\tREMAINING\tCELLS/S\tFAILS\t")
	for _, fw := range v.Workers {
		state := "up"
		switch {
		case fw.Dead:
			state = "dead"
		case !fw.Up:
			state = "down"
		case fw.Straggler:
			state = "straggler"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%d\t%d\t%.1f\t%d\t\n",
			fw.Addr, state, fw.Done, fw.Assigned, fw.Remaining, fw.RateCellsPerSec, fw.Fails)
	}
	tw.Flush()
}

// renderHistograms writes one row per histogram family: observation count,
// mean, and interpolated p50/p95/p99.
func renderHistograms(w io.Writer, exp *promtext.Exposition) {
	var hs []*promtext.Family
	for _, f := range exp.Families {
		if f.Type == "histogram" {
			hs = append(hs, f)
		}
	}
	if len(hs) == 0 {
		return
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].Name < hs[j].Name })
	fmt.Fprintln(w, "\nlatency:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  SPAN\tCOUNT\tMEAN\tP50\tP95\tP99\t")
	for _, f := range hs {
		bs := promtext.Buckets(f)
		var count, sum float64
		for _, sm := range f.Samples {
			if len(sm.Labels) != 0 {
				continue
			}
			switch sm.Name {
			case f.Name + "_count":
				count = sm.Value
			case f.Name + "_sum":
				sum = sm.Value
			}
		}
		mean := math.NaN()
		if count > 0 {
			mean = sum / count
		}
		fmt.Fprintf(tw, "  %s\t%.0f\t%s\t%s\t%s\t%s\t\n",
			strings.TrimPrefix(f.Name, "ipex_"), count, fmtSeconds(mean),
			fmtSeconds(promtext.Quantile(0.50, bs)),
			fmtSeconds(promtext.Quantile(0.95, bs)),
			fmtSeconds(promtext.Quantile(0.99, bs)))
	}
	tw.Flush()
}

// renderScalars writes the remaining unlabelled counter/gauge samples —
// cache ratios, queue depths, supervision counters — skipping the sweep
// header gauges already shown and any labelled series (the fleet table
// covers those).
func renderScalars(w io.Writer, exp *promtext.Exposition) {
	type kv struct {
		name string
		val  float64
	}
	var rows []kv
	for _, f := range exp.Families {
		if f.Type == "histogram" || strings.HasPrefix(f.Name, "ipex_sweep_") ||
			strings.HasPrefix(f.Name, "ipex_fleet_") {
			continue
		}
		for _, sm := range f.Samples {
			if len(sm.Labels) == 0 && sm.Name == f.Name {
				rows = append(rows, kv{sm.Name, sm.Value})
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Fprintln(w, "\ncounters:")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i := 0; i < len(rows); i += 2 {
		if i+1 < len(rows) {
			fmt.Fprintf(tw, "  %s\t%g\t  %s\t%g\t\n", rows[i].name, rows[i].val, rows[i+1].name, rows[i+1].val)
		} else {
			fmt.Fprintf(tw, "  %s\t%g\t\t\t\n", rows[i].name, rows[i].val)
		}
	}
	tw.Flush()
}

// fmtSeconds renders a duration-in-seconds with a unit fitted to its size
// (µs/ms/s/m), and "-" for NaN (empty histogram or absent gauge).
func fmtSeconds(s float64) string {
	switch {
	case math.IsNaN(s):
		return "-"
	case s < 0.001:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.1fm", s/60)
	}
}
