package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ipex/internal/dist"
	"ipex/internal/promtext"
	"ipex/internal/trace"
)

// fixtureScrape builds a realistic /metrics body from the real registry
// renderer, so the test pins ipextop against what the endpoints emit.
func fixtureScrape(t *testing.T) string {
	t.Helper()
	reg := trace.NewRegistry()
	reg.Counter("ipexd.cache_hits").Add(6)
	reg.Gauge("ipexd.queue_depth").Set(3)
	h := reg.Histogram("ipexd.run_seconds", []float64{0.01, 0.1, 1})
	for i := 0; i < 8; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	h.Observe(0.5)
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRenderHistogramQuantiles(t *testing.T) {
	exp, err := promtext.Parse(fixtureScrape(t))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	render(&b, "http://x", &snapshot{Exp: exp})
	out := b.String()

	// 8 of 10 observations land in the 0.1 bucket → p50 interpolates inside
	// (0.01, 0.1]; p95 and p99 inside (0.1, 1]. The mean is exactly 0.14s.
	for _, want := range []string{
		"ipexd_run_seconds", // span row, prefix-stripped
		"10",                // count
		"140.00ms",          // mean 1.4/10
		"ipex_ipexd_cache_hits  6",
		"ipex_ipexd_queue_depth  3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	bs := promtext.Buckets(exp.Family("ipex_ipexd_run_seconds"))
	if p50 := promtext.Quantile(0.5, bs); p50 < 0.01 || p50 > 0.1 {
		t.Errorf("p50 = %g, want inside (0.01, 0.1]", p50)
	}
	if p99 := promtext.Quantile(0.99, bs); p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %g, want inside (0.1, 1]", p99)
	}
}

func TestRenderFleetTable(t *testing.T) {
	v := &dist.FleetView{
		Sweep: "s", Live: 2, Remaining: 20, Merged: 80, Duplicates: 3,
		Workers: []dist.FleetWorker{
			{Addr: "http://a:1", Up: true, Done: 2, Assigned: 20, Remaining: 18, RateCellsPerSec: 1.5, Straggler: true},
			{Addr: "http://b:2", Up: true, Done: 18, Assigned: 20, Remaining: 2, RateCellsPerSec: 9},
			{Addr: "http://c:3", Dead: true},
		},
	}
	exp, err := promtext.Parse("")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	render(&b, "http://x", &snapshot{Exp: exp, Fleet: v})
	out := b.String()
	for _, want := range []string{
		`fleet "s": 2 live, 20 remaining, 80 merged (3 dup)`,
		"straggler", "dead",
		"http://a:1", "http://b:2", "http://c:3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet frame missing %q:\n%s", want, out)
		}
	}
	// Worker b is healthy: its row says up, not straggler.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "http://b:2") && !strings.Contains(line, "up") {
			t.Errorf("healthy worker row %q not marked up", line)
		}
	}
}

// TestPollEndToEnd scrapes a real HTTP server shaped like a coordinator:
// /metrics from the registry renderer, /dist/v1/fleet as JSON.
func TestPollEndToEnd(t *testing.T) {
	scrape := fixtureScrape(t)
	fleet := dist.FleetView{Sweep: "e2e", Live: 1, Workers: []dist.FleetWorker{{Addr: "w", Up: true}}}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(scrape))
	})
	mux.HandleFunc("/dist/v1/fleet", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(fleet)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	s, err := poll(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if s.Fleet == nil || s.Fleet.Sweep != "e2e" || len(s.Fleet.Workers) != 1 {
		t.Fatalf("fleet = %+v, want the served view", s.Fleet)
	}
	if f := s.Exp.Family("ipex_ipexd_run_seconds"); f == nil || f.Type != "histogram" {
		t.Fatalf("scrape did not parse the histogram family: %+v", f)
	}

	// A fleet-less endpoint (404 on /dist/v1/fleet) still polls fine.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(scrape))
	}))
	defer plain.Close()
	s2, err := poll(plain.URL)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Fleet != nil {
		t.Error("poll invented a fleet view for a non-coordinator endpoint")
	}
}
