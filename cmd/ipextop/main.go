// Command ipextop is a live terminal view over any ipex metrics endpoint: a
// sweep under `experiments -listen`, an ipexd service, or a dist worker. It
// polls /metrics (Prometheus text format), renders latency quantiles from
// the exported histograms, and — when the endpoint is a coordinator — shows
// the per-worker fleet table from /dist/v1/fleet.
//
//	ipextop localhost:9090                 # refresh every 2s until ^C
//	ipextop -interval 500ms localhost:9090
//	ipextop -n 1 localhost:9090            # one frame, no clearing (scripts)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

func main() {
	var (
		interval = flag.Duration("interval", 2*time.Second, "delay between refreshes")
		count    = flag.Int("n", 0, "number of refreshes before exiting (0 = until interrupted)")
		noClear  = flag.Bool("no-clear", false, "append frames instead of clearing the terminal")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ipextop [flags] host:port")
		flag.PrintDefaults()
		os.Exit(2)
	}
	base := strings.TrimRight(flag.Arg(0), "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	clear := !*noClear && *count != 1
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		snap, err := poll(base)
		if clear {
			// Home the cursor and clear to end so a shrinking frame leaves
			// no stale rows behind.
			fmt.Print("\x1b[H\x1b[2J")
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipextop: %s: %v\n", base, err)
			if *count == 1 {
				os.Exit(1)
			}
			continue
		}
		render(os.Stdout, base, snap)
	}
}
