package httpd

import (
	"errors"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestTimeoutsConfigured pins the whole point of this package: every server
// built here has slow-client protection, unlike a bare http.Serve.
func TestTimeoutsConfigured(t *testing.T) {
	srv := New(http.NotFoundHandler())
	if srv.ReadHeaderTimeout != ReadHeaderTimeout || srv.ReadHeaderTimeout <= 0 {
		t.Fatalf("ReadHeaderTimeout = %v, want %v", srv.ReadHeaderTimeout, ReadHeaderTimeout)
	}
	if srv.IdleTimeout != IdleTimeout || srv.IdleTimeout <= 0 {
		t.Fatalf("IdleTimeout = %v, want %v", srv.IdleTimeout, IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Fatal("WriteTimeout must stay 0: a large simulation response may legitimately take long to stream")
	}
}

// TestServeAndShutdown runs one request through a New server and drains it:
// Shutdown returns nil and Serve exits with ErrServerClosed.
func TestServeAndShutdown(t *testing.T) {
	srv := New(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "pong")
	}))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}

	if err := Shutdown(srv, 5*time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}
