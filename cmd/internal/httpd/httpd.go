// Package httpd is the shared HTTP-server construction for the command
// layer (cmd/experiments -listen, cmd/ipexd). It exists because a bare
// http.Serve has no read-header or idle timeout — one slow or stalled
// client pins a goroutine and an open connection forever — and no shutdown
// hook, so a graceful drain leaves the listener up. Every server in this
// repository goes through New so those protections cannot be forgotten.
//
// This package lives under cmd/ deliberately: the determinism lint bans
// net/http from internal/ (servers belong to the command layer; libraries
// stay host-agnostic).
package httpd

import (
	"context"
	"net/http"
	"time"
)

// Timeouts every server gets. ReadHeaderTimeout bounds how long a client
// may dribble its request head; IdleTimeout reaps keep-alive connections
// between requests. There is deliberately no WriteTimeout and no whole-body
// ReadTimeout: a simulation request legitimately waits (queued behind the
// worker pool) far longer than any fixed deadline, and a scrape response to
// a slow reader is bounded by the kernel's send buffer, not worth killing.
const (
	ReadHeaderTimeout = 10 * time.Second
	IdleTimeout       = 120 * time.Second
)

// New returns an http.Server for handler with the package's timeouts
// applied. Callers serve it on their own listener (srv.Serve(ln)) and drain
// it with Shutdown.
func New(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: ReadHeaderTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// Shutdown drains srv gracefully, bounded by timeout: the listener closes
// immediately (no new connections), in-flight requests get until the
// deadline to finish, then remaining connections are force-closed. It
// returns nil on a clean drain.
func Shutdown(srv *http.Server, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err != nil {
		// The deadline expired with requests still in flight; cut them off
		// rather than hang the process exit.
		closeErr := srv.Close()
		if err == context.DeadlineExceeded && closeErr == nil {
			return err
		}
	}
	return err
}
