package main

// The chaos suite is the tentpole's end-to-end proof: a sweep farmed to an
// ipexd fleet through hostile networks — drops, resets, truncation,
// corruption, 429 storms, a server killed mid-flight, or no fleet at all —
// produces output byte-identical to the purely local sweep, with zero
// failed cells. The faultnet proxies are seeded, so each run replays the
// same hostility schedule.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipex/internal/experiments"
	"ipex/internal/faultnet"
	"ipex/internal/harness"
	"ipex/internal/remote"
)

// fig11Sweep runs the suite's reference sweep: Figure 11 over two apps at a
// tiny scale — 8 cells (4 configurations × 2 apps), all remotable.
func fig11Sweep(t *testing.T, sup *harness.Supervisor, enc experiments.RemoteEncoder) *experiments.Fig11Result {
	t.Helper()
	res, err := experiments.Fig11(experiments.Options{
		Scale:        0.02,
		Apps:         []string{"fft", "gsme"},
		Parallelism:  4,
		Sup:          sup,
		RemoteEncode: enc,
	})
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	return res
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// goldenFig11 is the local ground truth every remote variant must
// reproduce byte for byte.
func goldenFig11(t *testing.T) string {
	t.Helper()
	return asJSON(t, fig11Sweep(t, &harness.Supervisor{PropagatePanics: true}, nil))
}

// chaosProxy puts a seeded faultnet proxy in front of an httptest server.
func chaosProxy(t *testing.T, ts *httptest.Server, cfg faultnet.Config) *faultnet.Proxy {
	t.Helper()
	p, err := faultnet.Listen("127.0.0.1:0", strings.TrimPrefix(ts.URL, "http://"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// freshConns forces one TCP connection per request so every attempt draws
// its own faultnet verdict (keep-alives would let one lucky connection
// carry the whole sweep).
func freshConns() http.RoundTripper {
	return &http.Transport{DisableKeepAlives: true}
}

func checkAttemptPartition(t *testing.T, s remote.Snapshot) {
	t.Helper()
	if got := s.OK + s.StatusErrors + s.NetErrors + s.VerifyErrors + s.Cancelled; got != s.Attempts {
		t.Fatalf("attempt buckets do not partition: %+v", s)
	}
}

func TestHealthzDraining(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), 1, 4)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("live healthz = %s %q, want 200 ok", resp.Status, body)
	}
	s.beginDrain()
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("draining healthz = %s %q, want 503 draining", resp.Status, body)
	}
}

// TestRemoteSweepChaosByteIdentical farms the sweep to a 2-server fleet
// behind aggressive chaos (drops, resets, 429 storms, truncation,
// corruption, blackholes) and requires the output bytes of the purely
// local sweep, with every cell accounted for and none failed.
func TestRemoteSweepChaosByteIdentical(t *testing.T) {
	golden := goldenFig11(t)

	_, tsA := newTestServer(t, t.TempDir(), 2, 16)
	_, tsB := newTestServer(t, t.TempDir(), 2, 16)
	chaos := faultnet.Config{
		DropProb:       0.15,
		ResetProb:      0.10,
		BlackholeProb:  0.05,
		MaxHold:        200 * time.Millisecond,
		Reject429Prob:  0.10,
		RetryAfterSecs: 1,
		TruncateProb:   0.10,
		CorruptProb:    0.10,
	}
	a, b := chaos, chaos
	a.Seed, b.Seed = 11, 12
	pA := chaosProxy(t, tsA, a)
	pB := chaosProxy(t, tsB, b)

	rc, err := remote.NewClient(remote.Options{
		Servers:    []string{"http://" + pA.Addr(), "http://" + pB.Addr()},
		Retries:    8,
		Timeout:    10 * time.Second,
		HedgeAfter: 50 * time.Millisecond,
		// Real sleeps, but scaled down so the chaos retries don't dominate
		// the suite's wall clock.
		BackoffBase:   time.Millisecond,
		RetryAfterCap: 10 * time.Millisecond,
		// Chaos is line noise, not server death: a huge threshold keeps the
		// breakers out of the way so the retry/verify machinery is what's
		// under test. Breaker-driven degradation is pinned separately.
		FailThreshold: 1 << 20,
		Transport:     freshConns(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup := &harness.Supervisor{PropagatePanics: true, Remote: rc}
	got := asJSON(t, fig11Sweep(t, sup, remote.EncodeCell))
	if got != golden {
		t.Fatalf("remote sweep under chaos diverged from local golden:\nremote %s\nlocal  %s", got, golden)
	}

	s := rc.Snapshot()
	checkAttemptPartition(t, s)
	if s.CellsFailed != 0 {
		t.Fatalf("chaos failed %d cells: %+v", s.CellsFailed, s)
	}
	if s.CellsRemote == 0 {
		t.Fatalf("no cell survived remotely under chaos (all fell back): %+v", s)
	}
	if s.CellsRemote+s.CellsLocalFallback+s.CellsUnroutable != 8 {
		t.Fatalf("cell buckets do not cover the 8-cell sweep: %+v", s)
	}
	cs := sup.Counters.Snapshot()
	if cs.Failures != 0 || cs.Remote != s.CellsRemote {
		t.Fatalf("supervisor counters disagree with the client: sup %+v, client %+v", cs, s)
	}
	if pA.Counters.Snapshot().Injected()+pB.Counters.Snapshot().Injected() == 0 {
		t.Fatal("the chaos proxies injected nothing; the test proved nothing")
	}
}

// TestRemoteServerKilledMidSweep kills one of two servers after its second
// request — in-flight connections die abruptly and later dials are refused,
// the remote-execution equivalent of kill -9 — and requires the sweep to
// finish byte-identical on the survivor plus local fallback.
func TestRemoteServerKilledMidSweep(t *testing.T) {
	golden := goldenFig11(t)

	sA, _ := newTestServer(t, t.TempDir(), 2, 16)
	sB, _ := newTestServer(t, t.TempDir(), 2, 16)

	// Whichever server receives the sweep's first request becomes the
	// victim: its in-flight connection dies abruptly and its listener
	// closes, so later dials are refused — deterministic regardless of how
	// rendezvous hashing splits the cells across the (random) test ports.
	var (
		victimIdx atomic.Int32 // 0 = nobody dead yet
		killOnce  sync.Once
		wrapped   [3]*httptest.Server
	)
	killable := func(idx int32, s *server) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if victimIdx.CompareAndSwap(0, idx) || victimIdx.Load() == idx {
				killOnce.Do(func() { _ = wrapped[idx].Listener.Close() })
				// Drop the connection mid-response, like a process that died.
				panic(http.ErrAbortHandler)
			}
			s.mux().ServeHTTP(w, r)
		}))
		wrapped[idx] = ts
		t.Cleanup(ts.Close)
		return ts
	}
	tsA := killable(1, sA)
	tsB := killable(2, sB)

	rc, err := remote.NewClient(remote.Options{
		Servers:     []string{tsA.URL, tsB.URL},
		Retries:     6,
		Timeout:     10 * time.Second,
		BackoffBase: time.Millisecond,
		Transport:   freshConns(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sup := &harness.Supervisor{PropagatePanics: true, Remote: rc}
	got := asJSON(t, fig11Sweep(t, sup, remote.EncodeCell))
	if got != golden {
		t.Fatalf("sweep with a killed server diverged from local golden:\nremote %s\nlocal  %s", got, golden)
	}
	s := rc.Snapshot()
	checkAttemptPartition(t, s)
	if s.CellsFailed != 0 {
		t.Fatalf("server death failed %d cells: %+v", s.CellsFailed, s)
	}
	if s.CellsRemote == 0 {
		t.Fatalf("survivor served nothing: %+v", s)
	}
	if victimIdx.Load() == 0 {
		t.Fatal("no server was ever killed; the test proved nothing")
	}
	if s.NetErrors == 0 {
		t.Fatalf("killing a server mid-sweep produced no net errors: %+v", s)
	}
}

// TestRemoteAllServersDown points the sweep at a dead fleet: every cell
// must degrade to local execution and the output must not change at all.
func TestRemoteAllServersDown(t *testing.T) {
	golden := goldenFig11(t)

	rc, err := remote.NewClient(remote.Options{
		Servers:     []string{"http://127.0.0.1:1"},
		Retries:     1,
		BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup := &harness.Supervisor{PropagatePanics: true, Remote: rc}
	got := asJSON(t, fig11Sweep(t, sup, remote.EncodeCell))
	if got != golden {
		t.Fatalf("dead-fleet sweep diverged from local golden:\nremote %s\nlocal  %s", got, golden)
	}
	s := rc.Snapshot()
	checkAttemptPartition(t, s)
	if s.CellsRemote != 0 || s.CellsFailed != 0 {
		t.Fatalf("dead fleet executed cells remotely?! %+v", s)
	}
	if s.CellsLocalFallback+s.CellsUnroutable != 8 {
		t.Fatalf("8 cells must all degrade locally: %+v", s)
	}
	if cs := sup.Counters.Snapshot(); cs.Remote != 0 || cs.Failures != 0 {
		t.Fatalf("supervisor saw remote cells or failures against a dead fleet: %+v", cs)
	}
}

// TestRemoteNoLocalFallbackFails pins the strict mode: with local fallback
// disabled, a dead fleet is a sweep error, not a silent local run.
func TestRemoteNoLocalFallbackFails(t *testing.T) {
	rc, err := remote.NewClient(remote.Options{
		Servers:         []string{"http://127.0.0.1:1"},
		Retries:         1,
		BackoffBase:     time.Millisecond,
		NoLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sup := &harness.Supervisor{PropagatePanics: true, Remote: rc}
	_, err = experiments.Fig11(experiments.Options{
		Scale:        0.02,
		Apps:         []string{"fft"},
		Parallelism:  2,
		Sup:          sup,
		RemoteEncode: remote.EncodeCell,
	})
	if err == nil {
		t.Fatal("sweep succeeded against a dead fleet with local fallback disabled")
	}
	if !strings.Contains(err.Error(), "local fallback disabled") {
		t.Fatalf("error does not name the failure mode: %v", err)
	}
	if s := rc.Snapshot(); s.CellsFailed == 0 {
		t.Fatalf("no cell recorded as failed: %+v", s)
	}
}

// TestRemoteFleetDedupe pins the fleet-wide cache effect rendezvous routing
// exists for: a second identical sweep against the same server re-simulates
// nothing — every cell is answered from the content-addressed result cache.
func TestRemoteFleetDedupe(t *testing.T) {
	s, ts := newTestServer(t, t.TempDir(), 2, 16)

	runOnce := func() (string, remote.Snapshot) {
		rc, err := remote.NewClient(remote.Options{
			Servers:     []string{ts.URL},
			Retries:     2,
			BackoffBase: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sup := &harness.Supervisor{PropagatePanics: true, Remote: rc}
		return asJSON(t, fig11Sweep(t, sup, remote.EncodeCell)), rc.Snapshot()
	}

	first, s1 := runOnce()
	executedAfterFirst := s.sup.Counters.Snapshot().Executed
	if s1.CellsRemote != 8 {
		t.Fatalf("first sweep: %d/8 cells remote: %+v", s1.CellsRemote, s1)
	}
	if executedAfterFirst == 0 {
		t.Fatal("first sweep simulated nothing on the server")
	}

	second, s2 := runOnce()
	if second != first {
		t.Fatalf("second sweep's output diverged:\nfirst  %s\nsecond %s", first, second)
	}
	if s2.CellsRemote != 8 {
		t.Fatalf("second sweep: %d/8 cells remote: %+v", s2.CellsRemote, s2)
	}
	if executedNow := s.sup.Counters.Snapshot().Executed; executedNow != executedAfterFirst {
		t.Fatalf("second sweep re-simulated: %d cells executed, want still %d (cache hits)",
			executedNow, executedAfterFirst)
	}
}
