package main

import (
	"fmt"
	"math"
	"strings"

	"ipex/internal/energy"
	"ipex/internal/experiments"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/workload"
)

// RunRequest is the declarative body of POST /v1/run: one simulation,
// described entirely by value — no callbacks, no host state — so every
// request has a complete content identity and can be served from the
// result cache. Omitted fields take the paper's Table-1 defaults
// (nvp.DefaultConfig). Unknown fields are rejected, not ignored: a typo'd
// knob that silently fell back to its default would hash to the wrong
// cell key and return a "hit" for a configuration the caller never asked
// for.
type RunRequest struct {
	// App names the workload (one of the 20 benchmarks).
	App string `json:"app"`
	// Scale multiplies the workload's instruction count; 0 means 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Source selects the synthetic power source (RFHome, RFOffice, solar,
	// thermal); empty means RFHome.
	Source string `json:"source,omitempty"`
	// TraceSeed seeds the synthetic power trace; 0 means 1.
	TraceSeed uint64 `json:"trace_seed,omitempty"`
	// Config overrides parts of the default system configuration.
	Config *ConfigRequest `json:"config,omitempty"`
}

// ConfigRequest is the declarative subset of nvp.Config a request may
// override. Pointer fields distinguish "leave the default" from an
// explicit false/zero.
type ConfigRequest struct {
	IPrefetcher string `json:"iprefetch,omitempty"` // sequential, markov, tifs, ampm, none
	DPrefetcher string `json:"dprefetch,omitempty"` // stride, ghb, bo, ampm, none
	Degree      int    `json:"degree,omitempty"`
	// IPEX attaches the controller: "off", "data", or "both".
	IPEX            string `json:"ipex,omitempty"`
	PrefetchToCache *bool  `json:"prefetch_to_cache,omitempty"`
	DupSuppress     *bool  `json:"dup_suppress,omitempty"`
	Ideal           bool   `json:"ideal,omitempty"`
	ReissueOnExit   bool   `json:"reissue_on_exit,omitempty"`
	GateAddressGen  bool   `json:"gate_address_gen,omitempty"`
	RecordCycles    bool   `json:"record_cycles,omitempty"`
	Paranoid        bool   `json:"paranoid,omitempty"`
	Profile         bool   `json:"profile,omitempty"`
	// MaxCycles caps simulated wall-clock time; 0 keeps the default budget.
	// The server's -cell-budget clamps it further.
	MaxCycles uint64 `json:"max_cycles,omitempty"`

	ICacheSize         int `json:"icache_bytes,omitempty"`
	DCacheSize         int `json:"dcache_bytes,omitempty"`
	Ways               int `json:"ways,omitempty"`
	PrefetchBufEntries int `json:"prefetch_buf_entries,omitempty"`

	// NVM selects the main-memory technology (ReRAM, STTRAM, PCM) and
	// capacity; zero values keep 16 MB ReRAM.
	NVM      string `json:"nvm,omitempty"`
	NVMBytes int64  `json:"nvm_bytes,omitempty"`

	// CapacitanceFarads overrides the storage capacitor (default 0.47e-6).
	CapacitanceFarads float64 `json:"capacitance_farads,omitempty"`
}

// limits are the server-side bounds a request must fit in (backstops
// against one request monopolizing the worker pool).
type limits struct {
	// maxScale bounds RunRequest.Scale (0 = unbounded).
	maxScale float64
	// cellBudget clamps every run's MaxCycles (0 = off), exactly like
	// cmd/experiments -cell-budget: a deterministic deadline inside
	// simulated time, part of the cell's identity.
	cellBudget uint64
}

// runSpec is a validated, normalized request: the effective observer-free
// config, its content identity, and the trace coordinates.
type runSpec struct {
	app      string
	scale    float64
	source   power.Source
	seed     uint64
	cfg      nvp.Config
	identity experiments.ConfigIdentity
}

// build validates the request against the server limits and derives its
// runSpec. Every error is a client error (HTTP 400).
func (rq RunRequest) build(lim limits) (runSpec, error) {
	var sp runSpec

	if rq.App == "" {
		return sp, fmt.Errorf("missing app (want one of %s)", strings.Join(workload.Names(), ", "))
	}
	found := false
	for _, n := range workload.Names() {
		if n == rq.App {
			found = true
			break
		}
	}
	if !found {
		return sp, fmt.Errorf("unknown app %q (want one of %s)", rq.App, strings.Join(workload.Names(), ", "))
	}
	sp.app = rq.App

	sp.scale = rq.Scale
	if sp.scale == 0 {
		sp.scale = 1
	}
	if !(sp.scale > 0) || math.IsInf(sp.scale, 0) {
		return sp, fmt.Errorf("scale must be a positive finite number, got %g", rq.Scale)
	}
	if lim.maxScale > 0 && sp.scale > lim.maxScale {
		return sp, fmt.Errorf("scale %g exceeds this server's -max-scale %g", sp.scale, lim.maxScale)
	}

	srcName := rq.Source
	if srcName == "" {
		srcName = "RFHome"
	}
	src, err := power.ParseSource(srcName)
	if err != nil {
		return sp, err
	}
	sp.source = src

	sp.seed = rq.TraceSeed
	if sp.seed == 0 {
		sp.seed = 1
	}

	cfg := nvp.DefaultConfig()
	if c := rq.Config; c != nil {
		if c.IPrefetcher != "" {
			if _, err := prefetch.New(prefetch.Kind(c.IPrefetcher)); err != nil {
				return sp, err
			}
			cfg.IPrefetcher = prefetch.Kind(c.IPrefetcher)
		}
		if c.DPrefetcher != "" {
			if _, err := prefetch.New(prefetch.Kind(c.DPrefetcher)); err != nil {
				return sp, err
			}
			cfg.DPrefetcher = prefetch.Kind(c.DPrefetcher)
		}
		if c.Degree != 0 {
			cfg.InitialDegree = c.Degree
		}
		switch c.IPEX {
		case "", "off":
		case "data":
			cfg = cfg.WithIPEXData()
		case "both":
			cfg = cfg.WithIPEX()
		default:
			return sp, fmt.Errorf("unknown ipex mode %q (want off, data, both)", c.IPEX)
		}
		if c.PrefetchToCache != nil {
			cfg.PrefetchToCache = *c.PrefetchToCache
		}
		if c.DupSuppress != nil {
			cfg.DupSuppress = *c.DupSuppress
		}
		cfg.Ideal = c.Ideal
		cfg.ReissueOnExit = c.ReissueOnExit
		cfg.GateAddressGen = c.GateAddressGen
		cfg.RecordCycles = c.RecordCycles
		cfg.Paranoid = c.Paranoid
		cfg.Profile = c.Profile
		if c.MaxCycles != 0 {
			cfg.MaxCycles = c.MaxCycles
		}
		if c.ICacheSize != 0 {
			cfg.ICacheSize = c.ICacheSize
		}
		if c.DCacheSize != 0 {
			cfg.DCacheSize = c.DCacheSize
		}
		if c.Ways != 0 {
			cfg.Ways = c.Ways
		}
		if c.PrefetchBufEntries != 0 {
			cfg.PrefetchBufEntries = c.PrefetchBufEntries
		}
		if c.NVM != "" || c.NVMBytes != 0 {
			tech := energy.ReRAM
			switch c.NVM {
			case "", "ReRAM":
			case "STTRAM":
				tech = energy.STTRAM
			case "PCM":
				tech = energy.PCM
			default:
				return sp, fmt.Errorf("unknown nvm technology %q (want ReRAM, STTRAM, PCM)", c.NVM)
			}
			size := c.NVMBytes
			if size == 0 {
				size = 16 << 20
			}
			cfg.NVM = energy.NVMFor(tech, size)
		}
		if c.CapacitanceFarads != 0 {
			cfg.Capacitor.CapacitanceFarads = c.CapacitanceFarads
		}
	}
	// The server's deterministic cycle budget clamps — and therefore enters
	// — the cell's identity, exactly like a sweep's -cell-budget.
	if lim.cellBudget > 0 && (cfg.MaxCycles == 0 || cfg.MaxCycles > lim.cellBudget) {
		cfg.MaxCycles = lim.cellBudget
	}
	if err := cfg.Validate(); err != nil {
		return sp, err
	}
	sp.cfg = cfg

	// Declarative requests cannot install factories, so this only fails if
	// the schema above ever grows one — at which point the refusal (HTTP
	// 400, never cached) is exactly what key soundness demands.
	sp.identity, err = experiments.NewConfigIdentity(cfg)
	if err != nil {
		return sp, err
	}
	return sp, nil
}
