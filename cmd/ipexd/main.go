// Command ipexd is the long-lived simulation service: NVP simulations over
// HTTP, backed by a content-addressed result cache. Identical requests
// dedupe to one simulation — concurrent ones coalesce in flight, repeated
// ones are cache hits served byte-identical to the fresh result — because
// every request is keyed by the same content identity the sweep journal
// uses (internal/experiments.CellIdentity: everything that determines the
// result, and nothing else).
//
//	ipexd -listen :8375 -cache-dir /var/cache/ipexd
//
//	curl -s -X POST localhost:8375/v1/run \
//	    -d '{"app":"fft","scale":0.05,"config":{"ipex":"both"}}'
//
// Endpoints: POST /v1/run (simulate or serve cached), GET /v1/result/<key>
// (cache probe, no simulation), /metrics (Prometheus text), /debug/vars
// (expvar), /healthz (200 while serving, 503 once draining). Responses
// carry X-Ipex-Key (the cell key), X-Ipex-Cache (hit, hit-disk, miss, or
// coalesced), and X-Ipex-Sha256 (body checksum, verified by fleet clients).
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight requests
// (and their simulations) finish, the worker pool exits, and the process
// returns 0. A second signal kills.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ipex/cmd/internal/httpd"
	"ipex/internal/harness"
	"ipex/internal/remote"
	"ipex/internal/resultstore"
	"ipex/internal/trace"
)

func main() {
	var (
		listenAddr   = flag.String("listen", ":8375", "address to serve on")
		cacheDir     = flag.String("cache-dir", "", "disk tier of the result cache (empty = in-memory only; results do not survive restarts)")
		cacheEntries = flag.Int("cache-entries", 4096, "in-memory result-cache capacity (bodies); evicted entries remain on the disk tier")
		cacheMaxB    = flag.Int64("cache-max-bytes", 0, "disk-tier byte budget, enforced once at startup by evicting oldest results first (0 = unbounded)")
		workers      = flag.Int("workers", 0, "simulation worker pool size (0 = NumCPU)")
		queueDepth   = flag.Int("queue", 64, "bounded simulation queue depth; a full queue answers 429 + Retry-After")
		maxScale     = flag.Float64("max-scale", 1.0, "largest accepted workload scale (0 = unbounded)")
		cellBudget   = flag.Uint64("cell-budget", 0, "deterministic per-run deadline in simulated cycles: clamps each request's MaxCycles (0 = off)")
		maxRetries   = flag.Int("max-retries", 1, "re-run a simulation up to N times after a transient failure before answering 500")
		backoff      = flag.Duration("retry-backoff", 100*time.Millisecond, "base delay of the deterministic exponential backoff between retries")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain waits for in-flight requests before force-closing")
	)
	flag.Parse()

	if *queueDepth < 1 {
		fmt.Fprintf(os.Stderr, "ipexd: -queue must be >= 1, got %d\n", *queueDepth)
		os.Exit(1)
	}
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "ipexd: -workers must be >= 0, got %d\n", *workers)
		os.Exit(1)
	}
	if *maxRetries < 0 {
		fmt.Fprintf(os.Stderr, "ipexd: -max-retries must be >= 0, got %d\n", *maxRetries)
		os.Exit(1)
	}
	if *maxScale < 0 {
		fmt.Fprintf(os.Stderr, "ipexd: -max-scale must be >= 0, got %g\n", *maxScale)
		os.Exit(1)
	}
	if *cacheMaxB < 0 {
		fmt.Fprintf(os.Stderr, "ipexd: -cache-max-bytes must be >= 0, got %d\n", *cacheMaxB)
		os.Exit(1)
	}
	nWorkers := *workers
	if nWorkers == 0 {
		nWorkers = runtime.NumCPU()
	}

	reg := trace.NewRegistry()
	store, err := resultstore.New(*cacheDir, *cacheEntries, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipexd: %v\n", err)
		os.Exit(1)
	}
	if *cacheMaxB > 0 {
		evicted, freed, err := store.EvictDiskOver(*cacheMaxB)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipexd: cache eviction: %v\n", err)
			os.Exit(1)
		}
		if evicted > 0 {
			fmt.Fprintf(os.Stderr, "ipexd: disk cache over %d bytes; evicted %d oldest result(s) (%d bytes)\n",
				*cacheMaxB, evicted, freed)
		}
	}
	// One monotonic clock feeds every latency histogram in the process:
	// per-endpoint request spans, store compute/disk-read spans, and the
	// harness lifecycle spans. A service's metrics are live telemetry, so
	// unlike the sweep commands there is no deterministic-dump mode to
	// protect here.
	clock := trace.NewWallClock()
	store.SetClock(clock)
	sup := &harness.Supervisor{
		MaxRetries:  *maxRetries,
		BackoffBase: *backoff,
		// A panicking simulation must surface as a 500, never as a zero
		// result a client (or the cache) could mistake for one.
		PropagatePanics: true,
		Obs:             harness.NewObs(clock, reg),
	}
	srv := newServer(store, reg, sup, clock, remote.Limits{MaxScale: *maxScale, CellBudget: *cellBudget}, nWorkers, *queueDepth)

	start := time.Now()
	expvar.Publish("ipexd", expvar.Func(func() any {
		snap := reg.Snapshot()
		snap["inflight"] = srv.inflight.Load()
		snap["queue_depth"] = len(srv.queue)
		snap["uptime_seconds"] = time.Since(start).Seconds()
		return snap
	}))

	ln, err := net.Listen("tcp", *listenAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipexd: -listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ipexd listening on http://%s (workers=%d queue=%d cache=%d entries, disk=%s)\n",
		ln.Addr(), nWorkers, *queueDepth, *cacheEntries, diskLabel(*cacheDir))

	httpSrv := httpd.New(srv.mux())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "ipexd: %v\n", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}
	// Restore default signal disposition so an impatient second ^C
	// terminates immediately, then drain: listener closed, in-flight
	// requests finish (bounded by -drain-timeout), worker pool exits.
	stopSignals()
	fmt.Fprintln(os.Stderr, "ipexd: interrupt received; draining in-flight requests (interrupt again to kill)")
	// Fail /healthz first so fleet clients stop routing new cells here while
	// the listener finishes its in-flight requests.
	srv.beginDrain()
	if err := httpd.Shutdown(httpSrv, *drainTimeout); err != nil {
		fmt.Fprintf(os.Stderr, "ipexd: drain: %v\n", err)
	}
	srv.close()
	fmt.Fprintln(os.Stderr, "ipexd: drained")
}

func diskLabel(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}
