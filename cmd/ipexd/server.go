package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipex/internal/harness"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/remote"
	"ipex/internal/resultstore"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

var (
	// errBusy is the backpressure signal: the bounded queue is full, so the
	// request is refused (429 + Retry-After) instead of piling up.
	errBusy = errors.New("simulation queue is full; retry shortly")
	// errDraining refuses work that races the graceful shutdown.
	errDraining = errors.New("server is draining")
)

// retryAfterSecs picks the Retry-After delay for a 429: 1–4 seconds, seeded
// by the cell key so a given request always hears the same delay (replayable
// under test) while different requests spread out instead of stampeding back
// in lockstep when the queue frees up.
func retryAfterSecs(key string) string {
	h := fnv.New32a()
	io.WriteString(h, key)
	return strconv.Itoa(1 + int(h.Sum32()%4))
}

// testRunHook, when non-nil, runs at the start of every simulation on the
// worker goroutine. Tests use it to hold a worker mid-cell and observe the
// queue/backpressure behaviour deterministically; production never sets it.
var testRunHook func(app string)

// task is one queued simulation with its reply channel (buffered, so a
// worker never blocks on a departed waiter).
type task struct {
	cell harness.Cell
	done chan taskResult
}

type taskResult struct {
	res nvp.Result
	err error
}

// server is the simulation service: a content-addressed result store in
// front of a bounded worker pool. Request flow for POST /v1/run:
//
//	parse → cell key → store.GetOrCompute
//	  memory hit  → cached bytes               (X-Ipex-Cache: hit)
//	  disk hit    → verified bytes, promoted   (X-Ipex-Cache: hit-disk)
//	  in flight   → wait for the leader        (X-Ipex-Cache: coalesced)
//	  miss        → enqueue on the worker pool (X-Ipex-Cache: miss)
//
// The queue is bounded; a full queue refuses the request with 429 and
// Retry-After rather than queueing unboundedly — callers see backpressure,
// not latency collapse.
type server struct {
	store     *resultstore.Store
	reg       *trace.Registry
	sup       *harness.Supervisor
	workloads *workload.Store
	lim       remote.Limits
	workers   int

	queue    chan task
	qmu      sync.RWMutex
	qclosed  bool
	wg       sync.WaitGroup
	draining atomic.Bool

	inflight atomic.Int64
	requests *trace.Counter
	errs     *trace.Counter

	// clock feeds the per-endpoint latency histograms (nil = silent, for
	// tests that want deterministic scrapes).
	clock         trace.Clock
	runSeconds    *trace.Histogram
	resultSeconds *trace.Histogram

	traces sync.Map // traceKey → *power.Trace
}

type traceKey struct {
	src  power.Source
	seed uint64
}

// newServer wires the store, registry, and supervisor together and starts
// the worker pool: `workers` goroutines, each owning one nvp.Arena so
// steady-state simulations allocate nothing, consuming the bounded queue.
func newServer(store *resultstore.Store, reg *trace.Registry, sup *harness.Supervisor, clock trace.Clock, lim remote.Limits, workers, queueDepth int) *server {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	s := &server{
		store:     store,
		reg:       reg,
		sup:       sup,
		workloads: workload.Shared(),
		lim:       lim,
		workers:   workers,
		queue:     make(chan task, queueDepth),
		requests:  reg.Counter("ipexd.requests"),
		errs:      reg.Counter("ipexd.errors"),

		clock:         clock,
		runSeconds:    reg.Histogram("ipexd.run_seconds", nil),
		resultSeconds: reg.Histogram("ipexd.result_seconds", nil),
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// One arena per worker, reused across every simulation this
			// worker runs (same discipline as harness.Pool workers).
			arena := nvp.NewArena()
			for t := range s.queue {
				res, err, _ := s.sup.RunCell(t.cell, arena)
				t.done <- taskResult{res: res, err: err}
			}
		}()
	}
	return s
}

// enqueue hands a task to the pool without ever blocking: a full queue is
// backpressure (errBusy), a closed one is the drain (errDraining). The
// read-lock makes send-vs-close race-free.
func (s *server) enqueue(t task) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.qclosed {
		return errDraining
	}
	select {
	case s.queue <- t:
		return nil
	default:
		return errBusy
	}
}

// beginDrain flips /healthz to 503 before the HTTP listener shuts down:
// fleet clients health-probe a server before re-admitting it through a
// half-open breaker, so a draining server announces its exit instead of
// absorbing (and 503-failing) a last wave of requests.
func (s *server) beginDrain() {
	s.draining.Store(true)
}

// close drains the worker pool: no further enqueues, queued tasks finish,
// workers exit. Call after the HTTP server has shut down (so no handler is
// mid-enqueue).
func (s *server) close() {
	s.draining.Store(true)
	s.qmu.Lock()
	if !s.qclosed {
		s.qclosed = true
		close(s.queue)
	}
	s.qmu.Unlock()
	s.wg.Wait()
}

// trace returns the memoized synthetic power trace for (source, seed) —
// generation is deterministic and traces are read-only, so every request
// for the pair shares one instance.
func (s *server) trace(src power.Source, seed uint64) *power.Trace {
	key := traceKey{src: src, seed: seed}
	if v, ok := s.traces.Load(key); ok {
		return v.(*power.Trace)
	}
	v, _ := s.traces.LoadOrStore(key, power.Generate(src, power.DefaultTraceSamples, seed))
	return v.(*power.Trace)
}

// mux builds the server's routing table.
func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("/v1/result/", s.handleResult)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		// A draining server must fail its health check: the answer is read
		// by fleet clients deciding whether to route new work here, and a
		// server about to close its listener is not a routable destination
		// even though this handler can still answer.
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	})
	return mux
}

// now reads the injected clock (0 when none — latency spans off).
func (s *server) now() time.Duration {
	if s.clock == nil {
		return 0
	}
	return s.clock.Now()
}

// observe records now-start into h when a clock is installed.
func (s *server) observe(h *trace.Histogram, start time.Duration) {
	if s.clock == nil {
		return
	}
	h.ObserveDuration(s.clock.Now() - start)
}

// fail counts and writes one error response. Every counted request ends in
// exactly one bucket — a store outcome or this error counter — so the
// /metrics sums stay exact: requests = mem_hits + disk_hits + computed +
// coalesced + errors.
func (s *server) fail(w http.ResponseWriter, code int, msg string) {
	s.errs.Inc()
	http.Error(w, msg, code)
}

// handleRun serves POST /v1/run.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Inc()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := s.now()
	defer func() { s.observe(s.runSeconds, start) }()

	rq, err := remote.DecodeRunRequest(r.Body)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	sp, err := rq.Build(s.lim)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	tr := s.trace(sp.Source, sp.Seed)
	key := sp.Key(tr.Name, len(tr.Samples))

	body, outcome, err := s.store.GetOrCompute(key, func() ([]byte, error) {
		return s.simulate(key, sp, tr)
	})
	if err != nil {
		switch {
		case errors.Is(err, errBusy):
			w.Header().Set("Retry-After", retryAfterSecs(key))
			s.fail(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, errDraining):
			s.fail(w, http.StatusServiceUnavailable, err.Error())
		default:
			s.fail(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.serveBody(w, key, outcome, body)
}

// handleResult serves GET /v1/result/<key>: cache tiers only, never a
// simulation — a cheap existence probe for a key returned earlier.
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.requests.Inc()
	start := s.now()
	defer func() { s.observe(s.resultSeconds, start) }()
	key := strings.TrimPrefix(r.URL.Path, "/v1/result/")
	if key == "" || strings.ContainsAny(key, "/.") {
		s.fail(w, http.StatusBadRequest, "want /v1/result/<cell key>")
		return
	}
	body, outcome, ok := s.store.Get(key)
	if !ok {
		s.fail(w, http.StatusNotFound, "result not cached")
		return
	}
	s.serveBody(w, key, outcome, body)
}

func (s *server) serveBody(w http.ResponseWriter, key string, outcome resultstore.Outcome, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Ipex-Key", key)
	h.Set("X-Ipex-Cache", outcome.String())
	// The body checksum lets clients commit a result only after verifying it
	// arrived intact — a truncated or proxy-mangled response must be a retry
	// on their side, never a mis-filed cell.
	sum := sha256.Sum256(body)
	h.Set("X-Ipex-Sha256", hex.EncodeToString(sum[:]))
	// A response write failure means the client went away; the result is
	// cached regardless, so there is nothing to recover.
	_, _ = w.Write(body)
}

// simulate runs one cell on the worker pool and serializes its result —
// the bytes that enter the store and therefore the bytes every future hit
// serves. Only called inside the store's singleflight, so concurrent
// identical requests cost exactly one queue slot and one simulation.
func (s *server) simulate(key string, sp remote.Spec, tr *power.Trace) ([]byte, error) {
	t := task{
		cell: harness.Cell{
			Key:   key,
			Label: sp.App,
			Run: func(ctx context.Context, a *nvp.Arena) (nvp.Result, error) {
				if testRunHook != nil {
					testRunHook(sp.App)
				}
				st, err := s.workloads.Stream(sp.App, sp.Scale)
				if err != nil {
					return nvp.Result{}, err
				}
				cfg := sp.Config
				cfg.Metrics = s.reg
				res, err := a.RunStreamContext(ctx, st, tr, cfg)
				if err == nil && cfg.Paranoid && !res.Invariants.Clean() {
					// Worth the supervisor's bounded retries before the
					// request fails — never cached either way.
					err = harness.Transient(fmt.Errorf("%s: %s", sp.App, res.Invariants.Summary()))
				}
				return res, err
			},
		},
		done: make(chan taskResult, 1),
	}
	if err := s.enqueue(t); err != nil {
		return nil, err
	}
	out := <-t.done
	if out.err != nil {
		return nil, out.err
	}
	body, err := json.Marshal(out.res)
	if err != nil {
		return nil, fmt.Errorf("encoding result: %w", err)
	}
	return body, nil
}

// handleMetrics writes Prometheus text exposition 0.0.4: the server-level
// gauges first, then the shared registry (request/hit/miss/coalesced/
// evicted counters plus every simulator counter accumulated so far).
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("ipex_ipexd_inflight", "requests currently being served", float64(s.inflight.Load()))
	gauge("ipex_ipexd_queue_depth", "simulations waiting for a worker", float64(len(s.queue)))
	gauge("ipex_ipexd_queue_capacity", "bounded queue size (backpressure threshold)", float64(cap(s.queue)))
	gauge("ipex_ipexd_workers", "simulation worker pool size", float64(s.workers))
	// Derived at scrape time from the store's outcome counters.
	hit, co := s.store.Rates()
	gauge("ipex_ipexd_cache_hit_ratio", "fraction of served requests answered from a cache tier", hit)
	gauge("ipex_ipexd_coalesce_rate", "fraction of served requests coalesced onto an in-flight computation", co)
	cs := s.sup.Counters.Snapshot()
	gauge("ipex_ipexd_cells_executed", "simulations run by the worker pool", float64(cs.Executed))
	gauge("ipex_ipexd_cells_retried", "simulation re-runs after a transient failure", float64(cs.Retried))
	gauge("ipex_ipexd_cell_panics", "isolated simulation panics (propagated as 500s)", float64(cs.Panics))
	// A scrape racing a disconnect can fail mid-write; there is no one to
	// report that to, so the error is dropped.
	_ = s.reg.WriteProm(w)
}
