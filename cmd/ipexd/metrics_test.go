package main

import (
	"net/http"
	"strings"
	"testing"

	"ipex/internal/promtext"
)

// TestMetricsConformance lints the live /metrics scrape: valid exposition
// text, the ipex_ prefix on every family, no duplicate series, wellformed
// histograms, and the 0.0.4 content type. A request is served first so the
// latency histograms and cache-ratio gauges carry real state.
func TestMetricsConformance(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 2, 8)
	readAll(t, postRun(t, ts, smallRun))
	readAll(t, postRun(t, ts, smallRun)) // second hit moves the hit ratio off zero

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want text exposition 0.0.4", ct)
	}
	if errs := promtext.Lint(body, "ipex_"); len(errs) != 0 {
		t.Errorf("/metrics failed conformance lint: %v", errs)
	}
	for _, want := range []string{
		"# TYPE ipex_ipexd_run_seconds histogram",
		`ipex_ipexd_run_seconds_bucket{le="+Inf"} 2`,
		"# TYPE ipex_store_compute_seconds histogram",
		"ipex_ipexd_cache_hit_ratio 0.5",
		"ipex_ipexd_coalesce_rate 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
