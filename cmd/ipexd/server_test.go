package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ipex/internal/harness"
	"ipex/internal/nvp"
	"ipex/internal/remote"
	"ipex/internal/resultstore"
	"ipex/internal/trace"
)

// newTestServer builds a full server (store, registry, supervisor, worker
// pool) behind an httptest listener. The returned server is the package
// struct, so tests can reach its queue and counters directly.
func newTestServer(t *testing.T, dir string, workers, queueDepth int) (*server, *httptest.Server) {
	t.Helper()
	reg := trace.NewRegistry()
	store, err := resultstore.New(dir, 64, reg)
	if err != nil {
		t.Fatal(err)
	}
	sup := &harness.Supervisor{PropagatePanics: true}
	// A FakeClock (never advanced unless a test advances it) keeps latency
	// histograms present-but-deterministic in scrape assertions.
	s := newServer(store, reg, sup, &trace.FakeClock{}, remote.Limits{MaxScale: 1}, workers, queueDepth)
	ts := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		ts.Close()
		s.close()
	})
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

const smallRun = `{"app":"fft","scale":0.02}`

// TestMissThenHitByteIdentical pins the service's core guarantee end to end:
// the second identical request is a cache hit whose body is byte-for-byte
// the first (fresh) response, and a separate server simulating from scratch
// produces those same bytes — a hit stands in for a fresh simulation.
func TestMissThenHitByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 2, 8)

	fresh := postRun(t, ts, smallRun)
	if fresh.StatusCode != http.StatusOK {
		t.Fatalf("fresh run: %s: %s", fresh.Status, readAll(t, fresh))
	}
	if c := fresh.Header.Get("X-Ipex-Cache"); c != "miss" {
		t.Fatalf("fresh run X-Ipex-Cache = %q, want miss", c)
	}
	key := fresh.Header.Get("X-Ipex-Key")
	if key == "" {
		t.Fatal("fresh run has no X-Ipex-Key")
	}
	freshBody := readAll(t, fresh)
	var res nvp.Result
	if err := json.Unmarshal(freshBody, &res); err != nil {
		t.Fatalf("response is not an nvp.Result: %v", err)
	}

	hit := postRun(t, ts, smallRun)
	if hit.StatusCode != http.StatusOK || hit.Header.Get("X-Ipex-Cache") != "hit" {
		t.Fatalf("repeat run: %s, X-Ipex-Cache=%q, want 200 hit", hit.Status, hit.Header.Get("X-Ipex-Cache"))
	}
	if hit.Header.Get("X-Ipex-Key") != key {
		t.Fatal("repeat run keyed differently")
	}
	if hitBody := readAll(t, hit); !bytes.Equal(hitBody, freshBody) {
		t.Fatal("cache hit is not byte-identical to the fresh response")
	}

	// An independent server (cold cache, own worker pool) must simulate to
	// the same bytes: the cache can only ever substitute, never drift.
	_, ts2 := newTestServer(t, t.TempDir(), 2, 8)
	fresh2 := postRun(t, ts2, smallRun)
	if fresh2.Header.Get("X-Ipex-Key") != key {
		t.Fatal("second server derived a different cell key for the same request")
	}
	if body2 := readAll(t, fresh2); !bytes.Equal(body2, freshBody) {
		t.Fatal("independent fresh simulation differs from the cached bytes")
	}

	// The probe endpoint serves the same bytes without simulating.
	probe, err := ts.Client().Get(ts.URL + "/v1/result/" + key)
	if err != nil {
		t.Fatal(err)
	}
	if probe.StatusCode != http.StatusOK {
		t.Fatalf("result probe: %s", probe.Status)
	}
	if probeBody := readAll(t, probe); !bytes.Equal(probeBody, freshBody) {
		t.Fatal("result probe differs from the fresh response")
	}
}

// TestSingleflightConcurrent proves N concurrent identical requests cost one
// simulation: the worker holds the leader's cell (via testRunHook) until all
// requests are in the handler, then everyone completes with the same body
// and the supervisor has executed exactly one cell.
func TestSingleflightConcurrent(t *testing.T) {
	const n = 6
	gate := make(chan struct{})
	testRunHook = func(string) { <-gate }
	t.Cleanup(func() { testRunHook = nil })

	s, ts := newTestServer(t, "", 2, 8)

	type reply struct {
		status  int
		outcome string
		body    []byte
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postRun(t, ts, smallRun)
			replies[i] = reply{resp.StatusCode, resp.Header.Get("X-Ipex-Cache"), readAll(t, resp)}
		}(i)
	}
	// Release the held cell only once every request is inside the handler,
	// so none of them can miss the in-flight window by arriving late.
	for s.inflight.Load() < n {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	misses := 0
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, replies[0].body) {
			t.Fatalf("request %d body differs", i)
		}
		switch r.outcome {
		case "miss":
			misses++
		case "coalesced", "hit":
			// Shared the leader's computation (or its just-published body).
		default:
			t.Fatalf("request %d: X-Ipex-Cache = %q", i, r.outcome)
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1 (the leader)", misses)
	}
	if ex := s.sup.Counters.Snapshot().Executed; ex != 1 {
		t.Fatalf("supervisor executed %d cells for %d identical requests, want 1", ex, n)
	}
}

// TestBackpressure429 pins the bounded-queue contract: with one worker held
// mid-cell and the single queue slot occupied, a third distinct request is
// refused with 429 + Retry-After instead of queueing unboundedly — and
// succeeds after the backlog drains.
func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan string, 8)
	testRunHook = func(app string) { entered <- app; <-gate }
	t.Cleanup(func() { testRunHook = nil })

	s, ts := newTestServer(t, "", 1, 1)

	// Three distinct cell keys over the same workload: the trace seed is
	// part of the identity.
	body := func(seed int) string {
		return `{"app":"fft","scale":0.02,"trace_seed":` + strconv.Itoa(seed) + `}`
	}

	type out struct {
		status int
		body   []byte
	}
	results := make(chan out, 2)
	post := func(seed int) {
		resp := postRun(t, ts, body(seed))
		results <- out{resp.StatusCode, readAll(t, resp)}
	}
	go post(1)
	<-entered // the only worker now holds request 1's cell
	go post(2)
	for len(s.queue) < 1 { // request 2 occupies the single queue slot
		time.Sleep(time.Millisecond)
	}

	refused := postRun(t, ts, body(3))
	if refused.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: %s: %s", refused.Status, readAll(t, refused))
	}
	if ra := refused.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	readAll(t, refused)

	close(gate)
	for i := 0; i < 2; i++ {
		if r := <-results; r.status != http.StatusOK {
			t.Fatalf("backlogged request: status %d: %s", r.status, r.body)
		}
	}
	<-entered // request 2's cell ran once the worker freed up

	// The refused request goes through untouched now.
	retried := postRun(t, ts, body(3))
	if retried.StatusCode != http.StatusOK || retried.Header.Get("X-Ipex-Cache") != "miss" {
		t.Fatalf("retry after backpressure: %s, X-Ipex-Cache=%q", retried.Status, retried.Header.Get("X-Ipex-Cache"))
	}
	readAll(t, retried)
}

// promValue extracts one sample value from Prometheus text exposition.
func promValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition:\n%s", name, text)
	return 0
}

// TestMetricsPartition pins the accounting invariant: every counted request
// lands in exactly one bucket, so requests = mem_hits + disk_hits +
// computed + coalesced + errors on the /metrics endpoint.
func TestMetricsPartition(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 2, 8)

	fresh := postRun(t, ts, smallRun) // computed
	key := fresh.Header.Get("X-Ipex-Key")
	readAll(t, fresh)
	readAll(t, postRun(t, ts, smallRun)) // mem hit

	bad := postRun(t, ts, `{"app":"fft","no_such_knob":true}`) // error (400)
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %s", bad.Status)
	}
	readAll(t, bad)

	missing, err := ts.Client().Get(ts.URL + "/v1/result/0000000000000000") // error (404)
	if err != nil {
		t.Fatal(err)
	}
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("uncached probe: %s", missing.Status)
	}
	readAll(t, missing)

	probe, err := ts.Client().Get(ts.URL + "/v1/result/" + key) // mem hit
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, probe)

	metrics, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readAll(t, metrics))

	requests := promValue(t, text, "ipex_ipexd_requests")
	sum := promValue(t, text, "ipex_store_mem_hits") +
		promValue(t, text, "ipex_store_disk_hits") +
		promValue(t, text, "ipex_store_computed") +
		promValue(t, text, "ipex_store_coalesced") +
		promValue(t, text, "ipex_ipexd_errors")
	if requests != 5 {
		t.Fatalf("ipex_ipexd_requests = %g, want 5", requests)
	}
	if requests != sum {
		t.Fatalf("partition broken: requests=%g but hit+miss+coalesced+errors=%g\n%s", requests, sum, text)
	}
	if got := promValue(t, text, "ipex_ipexd_cells_executed"); got != 1 {
		t.Fatalf("cells_executed = %g, want 1", got)
	}
}

// TestBadRequests pins the client-error surface: unknown fields, unknown
// apps, bad scales, and bad modes are all 400s (never simulated, never
// cached).
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, "", 1, 2)
	for name, body := range map[string]string{
		"unknown-field": `{"app":"fft","turbo":true}`,
		"missing-app":   `{"scale":0.02}`,
		"unknown-app":   `{"app":"doom"}`,
		"bad-scale":     `{"app":"fft","scale":-1}`,
		"over-scale":    `{"app":"fft","scale":50}`,
		"bad-source":    `{"app":"fft","source":"mains"}`,
		"bad-ipex":      `{"app":"fft","config":{"ipex":"sideways"}}`,
		"bad-nvm":       `{"app":"fft","config":{"nvm":"DRAM"}}`,
		"bad-prefetch":  `{"app":"fft","config":{"dprefetch":"psychic"}}`,
		"not-json":      `not even json`,
	} {
		resp := postRun(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %s, want 400 (%s)", name, resp.Status, readAll(t, resp))
			continue
		}
		readAll(t, resp)
	}
	// Wrong methods.
	resp, err := ts.Client().Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: %s, want 405", resp.Status)
	}
	readAll(t, resp)
	resp = postRun(t, ts, "") // to /v1/run is fine; POST to result is not
	readAll(t, resp)
	resp2, err := ts.Client().Post(ts.URL+"/v1/result/abc", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/result: %s, want 405", resp2.Status)
	}
	readAll(t, resp2)
}

// TestDrainRefusal pins the shutdown path: once the pool is closed, a new
// simulation is refused as 503 (draining) rather than deadlocking, and
// close() is idempotent.
func TestDrainRefusal(t *testing.T) {
	s, ts := newTestServer(t, "", 1, 2)
	s.close()
	resp := postRun(t, ts, smallRun)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run after drain: %s, want 503", resp.Status)
	}
	readAll(t, resp)
	s.close() // second close must be a no-op, not a double-close panic
}

// TestConfigAffectsKey pins that distinct configurations produce distinct
// cells end to end: an IPEX run and a baseline run must not share a key (or
// a cached body).
func TestConfigAffectsKey(t *testing.T) {
	_, ts := newTestServer(t, "", 2, 8)
	base := postRun(t, ts, smallRun)
	ipex := postRun(t, ts, `{"app":"fft","scale":0.02,"config":{"ipex":"both"}}`)
	if base.StatusCode != http.StatusOK || ipex.StatusCode != http.StatusOK {
		t.Fatalf("runs failed: %s / %s", base.Status, ipex.Status)
	}
	if base.Header.Get("X-Ipex-Key") == ipex.Header.Get("X-Ipex-Key") {
		t.Fatal("baseline and IPEX configurations share a cell key")
	}
	if ipex.Header.Get("X-Ipex-Cache") != "miss" {
		t.Fatal("distinct configuration was served from cache")
	}
	readAll(t, base)
	readAll(t, ipex)
}

// TestRetryAfterJitter pins the 429 backoff contract: the Retry-After delay
// is deterministic per key (same request, same answer — replayable), stays
// inside [1,4] seconds, and spreads across keys so refused clients do not
// stampede back in lockstep.
func TestRetryAfterJitter(t *testing.T) {
	distinct := map[string]bool{}
	for i := 0; i < 64; i++ {
		key := harness.Key(i)
		ra := retryAfterSecs(key)
		if got := retryAfterSecs(key); got != ra {
			t.Fatalf("retryAfterSecs(%q) flapped: %s then %s", key, ra, got)
		}
		n, err := strconv.Atoi(ra)
		if err != nil || n < 1 || n > 4 {
			t.Fatalf("retryAfterSecs(%q) = %q, want an integer in [1,4]", key, ra)
		}
		distinct[ra] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("64 keys produced %d distinct delays; jitter is not jittering", len(distinct))
	}
}
