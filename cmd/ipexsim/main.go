// Command ipexsim runs one NVP simulation and prints its statistics.
//
// Examples:
//
//	ipexsim -app fft                         # baseline prefetchers, RFHome
//	ipexsim -app fft -ipex both              # with IPEX on both caches
//	ipexsim -app pegwitd -iprefetch none -dprefetch none
//	ipexsim -app gsme -trace solar -capacitor 4.7e-6
//	ipexsim -app qsort -tracefile mylog.txt  # replay a recorded power log
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/stats"
	"ipex/internal/workload"
)

func main() {
	var (
		app        = flag.String("app", "fft", "workload: one of "+strings.Join(workload.Names(), ", "))
		scale      = flag.Float64("scale", 1.0, "workload length multiplier")
		traceName  = flag.String("trace", "RFHome", "power trace: RFHome, RFOffice, solar, thermal")
		traceFile  = flag.String("tracefile", "", "replay a recorded power-trace text file instead of a synthetic source")
		ipexMode   = flag.String("ipex", "off", "IPEX attachment: off, data, both")
		iPf        = flag.String("iprefetch", "sequential", "instruction prefetcher: sequential, markov, tifs, ampm, none")
		dPf        = flag.String("dprefetch", "stride", "data prefetcher: stride, ghb, bo, ampm, none")
		degree     = flag.Int("degree", 2, "initial prefetch degree (R_ipd)")
		icache     = flag.Int("icache", energy.DefaultCacheSize, "ICache bytes")
		dcache     = flag.Int("dcache", energy.DefaultCacheSize, "DCache bytes")
		ways       = flag.Int("ways", 4, "cache associativity")
		bufEntries = flag.Int("pbuf", 4, "prefetch buffer entries (16 B each)")
		nvmTech    = flag.String("nvm", "ReRAM", "NVM technology: ReRAM, STTRAM, PCM")
		nvmSize    = flag.Int64("nvmsize", 16<<20, "NVM bytes")
		capF       = flag.Float64("capacitor", 0.47e-6, "capacitance in farads")
		thresholds = flag.Int("thresholds", 2, "IPEX voltage threshold count")
		stepV      = flag.Float64("step", 0.05, "IPEX threshold adaptation step (V)")
		trigger    = flag.Float64("trigger", 0.05, "IPEX throttling-rate trigger")
		ideal      = flag.Bool("ideal", false, "zero backup/restore cost (NVSRAMCache ideal)")
		reissue    = flag.Bool("reissue", false, "reissue throttled prefetches on mode exit (§5.1 extension)")
		bufferMode = flag.Bool("buffermode", false, "keep prefetches in the buffer until use instead of filling the cache")
		cycles     = flag.Int("cycles", 0, "print per-power-cycle telemetry for the first N cycles")
		saveTrace  = flag.String("savetrace", "", "record the workload's access trace to this file and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipexsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ipexsim: %v\n", err)
			}
		}()
	}

	cfg := nvp.DefaultConfig()
	cfg.ICacheSize = *icache
	cfg.DCacheSize = *dcache
	cfg.Ways = *ways
	cfg.PrefetchBufEntries = *bufEntries
	cfg.IPrefetcher = prefetch.Kind(*iPf)
	cfg.DPrefetcher = prefetch.Kind(*dPf)
	cfg.InitialDegree = *degree
	cfg.Ideal = *ideal
	cfg.ReissueOnExit = *reissue
	cfg.PrefetchToCache = !*bufferMode
	cfg.Capacitor.CapacitanceFarads = *capF

	var tech energy.NVMTech
	switch *nvmTech {
	case "ReRAM":
		tech = energy.ReRAM
	case "STTRAM":
		tech = energy.STTRAM
	case "PCM":
		tech = energy.PCM
	default:
		fatalf("unknown NVM technology %q", *nvmTech)
	}
	cfg.NVM = energy.NVMFor(tech, *nvmSize)

	cfg.IPEX.Thresholds = nil
	cfg.IPEX.StepV = *stepV
	cfg.IPEX.ThrottleRateTrigger = *trigger
	switch *ipexMode {
	case "off":
	case "data":
		cfg = cfg.WithIPEXData()
	case "both":
		cfg = cfg.WithIPEX()
	default:
		fatalf("unknown -ipex mode %q (want off, data, both)", *ipexMode)
	}
	if cfg.IPEXInst || cfg.IPEXData {
		cfg.IPEX.Thresholds = nvpThresholds(*thresholds, cfg)
	}

	var trace *power.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		trace, err = power.Load(*traceFile, f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		src, err := power.ParseSource(*traceName)
		if err != nil {
			fatalf("%v", err)
		}
		trace = power.Generate(src, power.DefaultTraceSamples, 1)
	}

	wl, err := workload.New(*app, *scale)
	if err != nil {
		fatalf("%v", err)
	}

	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatalf("%v", err)
		}
		if err := workload.WriteTrace(wl, f); err != nil {
			fatalf("recording trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", *saveTrace, err)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", wl.Len(), *app, *saveTrace)
		return
	}

	cfg.RecordCycles = *cycles > 0
	res, err := nvp.Run(wl, trace, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	printResult(res)
	if *cycles > 0 {
		printCycles(res, *cycles)
	}
}

// printCycles renders the first n power cycles of the telemetry log.
func printCycles(r nvp.Result, n int) {
	var t stats.Table
	t.Header("cycle", "start", "onCycles", "insts", "pf", "throttled", "wiped", "dirty@bk")
	for i, pc := range r.PowerCycleLog {
		if i >= n {
			break
		}
		t.Row(fmt.Sprintf("%d", i), fmt.Sprintf("%d", pc.StartCycle),
			fmt.Sprintf("%d", pc.OnCycles), fmt.Sprintf("%d", pc.Insts),
			fmt.Sprintf("%d", pc.PrefetchIssued), fmt.Sprintf("%d", pc.PrefetchThrottled),
			fmt.Sprintf("%d", pc.WipedUnused), fmt.Sprintf("%d", pc.DirtyAtBackup))
	}
	fmt.Printf("\nper-power-cycle telemetry (%d of %d cycles):\n%s",
		min(n, len(r.PowerCycleLog)), len(r.PowerCycleLog), t.String())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func nvpThresholds(k int, cfg nvp.Config) []float64 {
	return core.ThresholdsFor(k, cfg.Capacitor.Vbackup, cfg.Capacitor.Von)
}

func printResult(r nvp.Result) {
	fmt.Printf("app=%s trace=%s completed=%v\n", r.App, r.Trace, r.Completed)
	fmt.Printf("insts=%d cycles=%d (on=%d off=%d) time=%.3f ms outages=%d\n",
		r.Insts, r.Cycles, r.OnCycles, r.OffCycles, r.Seconds()*1e3, r.Outages)
	fmt.Printf("CPI(on)=%.3f stall%%: icache=%s dcache=%s\n",
		float64(r.OnCycles)/float64(r.Insts),
		stats.Pct(stats.Ratio(float64(r.Inst.StallCycles), float64(r.OnCycles))),
		stats.Pct(stats.Ratio(float64(r.Data.StallCycles), float64(r.OnCycles))))
	fmt.Printf("miss%%: icache=%s dcache=%s  bufhit: i=%d d=%d\n",
		stats.Pct(r.Inst.Cache.MissRate()), stats.Pct(r.Data.Cache.MissRate()),
		r.Inst.Cache.BufHits, r.Data.Cache.BufHits)
	fmt.Printf("prefetch issued: i=%d d=%d  throttled: i=%d d=%d  reissued: i=%d d=%d\n",
		r.Inst.PrefetchIssued, r.Data.PrefetchIssued,
		r.Inst.PrefetchThrottled, r.Data.PrefetchThrottled,
		r.Inst.PrefetchReissued, r.Data.PrefetchReissued)
	fmt.Printf("wiped-unused prefetches: i=%d d=%d  addr-gen gated: i=%d d=%d\n",
		r.Inst.WipedUnused(), r.Data.WipedUnused(),
		r.Inst.AddressGenGated, r.Data.AddressGenGated)
	fmt.Printf("accuracy: i=%s d=%s  coverage: i=%s d=%s\n",
		stats.Pct(r.Inst.Accuracy()), stats.Pct(r.Data.Accuracy()),
		stats.Pct(r.Inst.Coverage()), stats.Pct(r.Data.Coverage()))
	e := r.Energy
	fmt.Printf("energy (nJ): total=%.1f cache=%.1f memory=%.1f compute=%.1f bk+rst=%.1f\n",
		e.Total(), e.Cache, e.Memory, e.Compute, e.BkRst)
	fmt.Printf("nvm traffic: demand=%d prefetch=%d wb=%d ckpt=%d restore=%d\n",
		r.NVM.DemandReads, r.NVM.PrefetchReads, r.NVM.WritebackWrites,
		r.NVM.CheckpointWrites, r.NVM.RestoreReads)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ipexsim: "+format+"\n", args...)
	os.Exit(1)
}
