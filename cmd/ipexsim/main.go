// Command ipexsim runs one NVP simulation and prints its statistics.
//
// Examples:
//
//	ipexsim -app fft                         # baseline prefetchers, RFHome
//	ipexsim -app fft -ipex both              # with IPEX on both caches
//	ipexsim -app pegwitd -iprefetch none -dprefetch none
//	ipexsim -app gsme -source solar -capacitor 4.7e-6
//	ipexsim -app qsort -tracefile mylog.txt  # replay a recorded power log
//	ipexsim -app fft -scale 0.1 -trace events.jsonl -metrics metrics.json
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ipex/internal/benchio"
	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/fault"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/stats"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

func main() {
	var (
		app        = flag.String("app", "fft", "workload: one of "+strings.Join(workload.Names(), ", "))
		scale      = flag.Float64("scale", 1.0, "workload length multiplier")
		sourceName = flag.String("source", "RFHome", "synthetic power source: RFHome, RFOffice, solar, thermal")
		traceFile  = flag.String("tracefile", "", "replay a recorded power-trace text file instead of a synthetic source")
		tracePath  = flag.String("trace", "", "stream a JSONL event trace of the run to this file")
		metricsOut = flag.String("metrics", "", "write an end-of-run metrics dump to this file")
		metricsFmt = flag.String("metrics-format", "json", "metrics dump format: json or prom (Prometheus text exposition)")
		profileRun = flag.Bool("profile", false, "attribute every cycle and nanojoule to a category and print the report")
		ipexMode   = flag.String("ipex", "off", "IPEX attachment: off, data, both")
		iPf        = flag.String("iprefetch", "sequential", "instruction prefetcher: sequential, markov, tifs, ampm, none")
		dPf        = flag.String("dprefetch", "stride", "data prefetcher: stride, ghb, bo, ampm, none")
		degree     = flag.Int("degree", 2, "initial prefetch degree (R_ipd)")
		icache     = flag.Int("icache", energy.DefaultCacheSize, "ICache bytes")
		dcache     = flag.Int("dcache", energy.DefaultCacheSize, "DCache bytes")
		ways       = flag.Int("ways", 4, "cache associativity")
		bufEntries = flag.Int("pbuf", 4, "prefetch buffer entries (16 B each)")
		nvmTech    = flag.String("nvm", "ReRAM", "NVM technology: ReRAM, STTRAM, PCM")
		nvmSize    = flag.Int64("nvmsize", 16<<20, "NVM bytes")
		capF       = flag.Float64("capacitor", 0.47e-6, "capacitance in farads")
		thresholds = flag.Int("thresholds", 2, "IPEX voltage threshold count")
		stepV      = flag.Float64("step", 0.05, "IPEX threshold adaptation step (V)")
		trigger    = flag.Float64("trigger", 0.05, "IPEX throttling-rate trigger")
		ideal      = flag.Bool("ideal", false, "zero backup/restore cost (NVSRAMCache ideal)")
		reissue    = flag.Bool("reissue", false, "reissue throttled prefetches on mode exit (§5.1 extension)")
		bufferMode = flag.Bool("buffermode", false, "keep prefetches in the buffer until use instead of filling the cache")
		cycles     = flag.Int("cycles", 0, "print per-power-cycle telemetry for the first N cycles")
		paranoid   = flag.Bool("paranoid", false, "run the runtime invariant checker and print its report")
		genericRun = flag.Bool("generic-loop", false, "force the generic interpreter loop (disable the specialized fast paths; results are bit-identical either way)")

		faultSeed     = flag.Uint64("fault-seed", fault.DefaultSeed, "fault-injection seed (same seed + config = identical schedule)")
		adcBits       = flag.Int("adc-bits", 0, "quantize IPEX voltage sensing to an N-bit ADC (0 = ideal analog)")
		sensorNoise   = flag.Float64("sensor-noise", 0, "Gaussian sensor noise stddev in volts")
		sensorDropout = flag.Float64("sensor-dropout", 0, "per-sample probability a sensor reading is lost")
		ckptFail      = flag.Float64("ckpt-fail", 0, "per-block probability a checkpoint write tears and must retry")
		harvestDrop   = flag.Float64("harvest-dropout", 0, "per-sample probability a harvest sample is zeroed")
		harvestSpike  = flag.Float64("harvest-spike", 0, "per-sample probability a harvest sample spikes 4x")
		harvestStorm  = flag.Float64("harvest-storm", 0, "per-sample probability a multi-sample brownout storm begins")
		saveTrace  = flag.String("savetrace", "", "record the workload's access trace to this file and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	// Validate every numeric flag up front: a nonsense value should die with
	// one clear line here, not as a library error (or NaN-poisoned run)
	// after the workload has been generated. "!(x > 0)" also catches NaN.
	if !(*scale > 0) || math.IsInf(*scale, 0) {
		fatalf("-scale must be a positive finite number, got %g", *scale)
	}
	if !validApp(*app) {
		fatalf("unknown -app %q (want one of %s)", *app, strings.Join(workload.Names(), ", "))
	}
	if *degree < 1 || *degree > prefetch.MaxDegree {
		fatalf("-degree %d out of range [1,%d]", *degree, prefetch.MaxDegree)
	}
	if *icache <= 0 || *dcache <= 0 {
		fatalf("-icache/-dcache must be positive, got %d/%d", *icache, *dcache)
	}
	if *ways <= 0 {
		fatalf("-ways must be positive, got %d", *ways)
	}
	if *bufEntries <= 0 {
		fatalf("-pbuf must be positive, got %d", *bufEntries)
	}
	if *nvmSize <= 0 {
		fatalf("-nvmsize must be positive, got %d", *nvmSize)
	}
	if !(*capF > 0) || math.IsInf(*capF, 0) {
		fatalf("-capacitor must be a positive finite capacitance, got %g", *capF)
	}
	if *thresholds < 1 {
		fatalf("-thresholds must be at least 1, got %d", *thresholds)
	}
	if !(*stepV > 0) || math.IsInf(*stepV, 0) {
		fatalf("-step must be a positive finite voltage, got %g", *stepV)
	}
	if !(*trigger > 0) || math.IsInf(*trigger, 0) {
		fatalf("-trigger must be a positive finite rate, got %g", *trigger)
	}
	if *metricsFmt != "json" && *metricsFmt != "prom" {
		fatalf("unknown -metrics-format %q (want json or prom)", *metricsFmt)
	}

	if *cpuProfile != "" {
		a, err := benchio.NewAtomicFile(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(a); err != nil {
			a.Discard()
			fatalf("%v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := a.Commit(); err != nil {
				fmt.Fprintf(os.Stderr, "ipexsim: %v\n", err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			a, err := benchio.NewAtomicFile(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ipexsim: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(a); err != nil {
				a.Discard()
				fmt.Fprintf(os.Stderr, "ipexsim: %v\n", err)
				return
			}
			if err := a.Commit(); err != nil {
				fmt.Fprintf(os.Stderr, "ipexsim: %v\n", err)
			}
		}()
	}

	cfg := nvp.DefaultConfig()
	cfg.ICacheSize = *icache
	cfg.DCacheSize = *dcache
	cfg.Ways = *ways
	cfg.PrefetchBufEntries = *bufEntries
	cfg.IPrefetcher = prefetch.Kind(*iPf)
	cfg.DPrefetcher = prefetch.Kind(*dPf)
	cfg.InitialDegree = *degree
	cfg.Ideal = *ideal
	cfg.ReissueOnExit = *reissue
	cfg.PrefetchToCache = !*bufferMode
	cfg.DisableFastPaths = *genericRun
	cfg.Capacitor.CapacitanceFarads = *capF

	var tech energy.NVMTech
	switch *nvmTech {
	case "ReRAM":
		tech = energy.ReRAM
	case "STTRAM":
		tech = energy.STTRAM
	case "PCM":
		tech = energy.PCM
	default:
		fatalf("unknown NVM technology %q", *nvmTech)
	}
	cfg.NVM = energy.NVMFor(tech, *nvmSize)

	cfg.IPEX.Thresholds = nil
	cfg.IPEX.StepV = *stepV
	cfg.IPEX.ThrottleRateTrigger = *trigger
	switch *ipexMode {
	case "off":
	case "data":
		cfg = cfg.WithIPEXData()
	case "both":
		cfg = cfg.WithIPEX()
	default:
		fatalf("unknown -ipex mode %q (want off, data, both)", *ipexMode)
	}
	if cfg.IPEXInst || cfg.IPEXData {
		cfg.IPEX.Thresholds = nvpThresholds(*thresholds, cfg)
	}

	var ptrace *power.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		ptrace, err = power.Load(*traceFile, f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		src, err := power.ParseSource(*sourceName)
		if err != nil {
			fatalf("%v", err)
		}
		ptrace = power.Generate(src, power.DefaultTraceSamples, 1)
	}

	wl, err := workload.New(*app, *scale)
	if err != nil {
		fatalf("%v", err)
	}

	if *saveTrace != "" {
		a, err := benchio.NewAtomicFile(*saveTrace)
		if err != nil {
			fatalf("%v", err)
		}
		if err := workload.WriteTrace(wl, a); err != nil {
			a.Discard()
			fatalf("recording trace: %v", err)
		}
		if err := a.Commit(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", wl.Len(), *app, *saveTrace)
		return
	}

	var tracerOut *benchio.AtomicFile
	if *tracePath != "" {
		a, err := benchio.NewAtomicFile(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		tracerOut = a
		cfg.Tracer = trace.NewJSONL(a)
	}
	if *metricsOut != "" {
		cfg.Metrics = trace.NewRegistry()
	}

	cfg.RecordCycles = *cycles > 0
	cfg.Paranoid = *paranoid
	cfg.Profile = *profileRun
	fc := &fault.Config{
		Seed: *faultSeed,
		Sensor: fault.SensorConfig{
			ADCBits:     *adcBits,
			NoiseV:      *sensorNoise,
			DropoutProb: *sensorDropout,
		},
		Checkpoint: fault.CheckpointConfig{WriteFailProb: *ckptFail},
		Harvest: fault.HarvestConfig{
			DropoutProb: *harvestDrop,
			SpikeProb:   *harvestSpike,
			StormProb:   *harvestStorm,
		},
	}
	if fc.Active() {
		// Validate up front so a bad fault flag dies with one clear line
		// instead of a library error mid-setup.
		if err := fc.Validate(); err != nil {
			fatalf("%v", err)
		}
		cfg.Faults = fc
	}
	res, err := nvp.Run(wl, ptrace, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if cfg.Tracer != nil {
		if err := cfg.Tracer.Flush(); err != nil {
			fatalf("%v", err)
		}
		if err := tracerOut.Commit(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %d trace events to %s\n", cfg.Tracer.Events(), *tracePath)
	}
	if cfg.Metrics != nil {
		a, err := benchio.NewAtomicFile(*metricsOut)
		if err != nil {
			fatalf("%v", err)
		}
		dump := cfg.Metrics.WriteJSON
		if *metricsFmt == "prom" {
			dump = cfg.Metrics.WriteProm
		}
		if err := dump(a); err != nil {
			a.Discard()
			fatalf("writing metrics: %v", err)
		}
		if err := a.Commit(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s metrics to %s\n", *metricsFmt, *metricsOut)
	}
	printResult(res)
	if *cycles > 0 {
		printCycles(res, *cycles)
	}
	if p := res.Profile; p != nil {
		fmt.Printf("\n%s", p.String())
		n := *cycles
		if n <= 0 {
			n = 10
		}
		fmt.Printf("\nper-power-cycle attribution:\n%s", p.CycleTable(n))
	}
}

// validApp reports whether name is a known workload.
func validApp(name string) bool {
	for _, n := range workload.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// printCycles renders the first n power cycles of the telemetry log.
func printCycles(r nvp.Result, n int) {
	var t stats.Table
	t.Header("cycle", "start", "onCycles", "insts", "pf", "throttled", "wiped", "dirty@bk")
	for i, pc := range r.PowerCycleLog {
		if i >= n {
			break
		}
		t.Row(fmt.Sprintf("%d", i), fmt.Sprintf("%d", pc.StartCycle),
			fmt.Sprintf("%d", pc.OnCycles), fmt.Sprintf("%d", pc.Insts),
			fmt.Sprintf("%d", pc.PrefetchIssued), fmt.Sprintf("%d", pc.PrefetchThrottled),
			fmt.Sprintf("%d", pc.WipedUnused), fmt.Sprintf("%d", pc.DirtyAtBackup))
	}
	fmt.Printf("\nper-power-cycle telemetry (%d of %d cycles):\n%s",
		min(n, len(r.PowerCycleLog)), len(r.PowerCycleLog), t.String())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func nvpThresholds(k int, cfg nvp.Config) []float64 {
	return core.ThresholdsFor(k, cfg.Capacitor.Vbackup, cfg.Capacitor.Von)
}

func printResult(r nvp.Result) {
	fmt.Printf("app=%s trace=%s completed=%v\n", r.App, r.Trace, r.Completed)
	fmt.Printf("insts=%d cycles=%d (on=%d off=%d) time=%.3f ms outages=%d\n",
		r.Insts, r.Cycles, r.OnCycles, r.OffCycles, r.Seconds()*1e3, r.Outages)
	fmt.Printf("CPI(on)=%.3f stall%%: icache=%s dcache=%s\n",
		float64(r.OnCycles)/float64(r.Insts),
		stats.Pct(stats.Ratio(float64(r.Inst.StallCycles), float64(r.OnCycles))),
		stats.Pct(stats.Ratio(float64(r.Data.StallCycles), float64(r.OnCycles))))
	fmt.Printf("miss%%: icache=%s dcache=%s  bufhit: i=%d d=%d\n",
		stats.Pct(r.Inst.Cache.MissRate()), stats.Pct(r.Data.Cache.MissRate()),
		r.Inst.Cache.BufHits, r.Data.Cache.BufHits)
	fmt.Printf("prefetch issued: i=%d d=%d  throttled: i=%d d=%d  reissued: i=%d d=%d\n",
		r.Inst.PrefetchIssued, r.Data.PrefetchIssued,
		r.Inst.PrefetchThrottled, r.Data.PrefetchThrottled,
		r.Inst.PrefetchReissued, r.Data.PrefetchReissued)
	fmt.Printf("wiped-unused prefetches: i=%d d=%d  addr-gen gated: i=%d d=%d\n",
		r.Inst.WipedUnused(), r.Data.WipedUnused(),
		r.Inst.AddressGenGated, r.Data.AddressGenGated)
	fmt.Printf("accuracy: i=%s d=%s  coverage: i=%s d=%s\n",
		stats.Pct(r.Inst.Accuracy()), stats.Pct(r.Data.Accuracy()),
		stats.Pct(r.Inst.Coverage()), stats.Pct(r.Data.Coverage()))
	e := r.Energy
	fmt.Printf("energy (nJ): total=%.1f cache=%.1f memory=%.1f compute=%.1f bk+rst=%.1f\n",
		e.Total(), e.Cache, e.Memory, e.Compute, e.BkRst)
	fmt.Printf("nvm traffic: demand=%d prefetch=%d wb=%d ckpt=%d restore=%d\n",
		r.NVM.DemandReads, r.NVM.PrefetchReads, r.NVM.WritebackWrites,
		r.NVM.CheckpointWrites, r.NVM.RestoreReads)
	if fs := r.Faults; fs != nil {
		fmt.Printf("faults: sensor samples=%d dropouts=%d stuck=%d  ckpt fails=%d retries=%d rollbacks=%d forced=%d\n",
			fs.SensorSamples, fs.SensorDropouts, fs.SensorStuck,
			fs.CheckpointWriteFailures, fs.CheckpointRetries, fs.CheckpointRollbacks, fs.CheckpointForced)
		fmt.Printf("        harvest dropouts=%d spikes=%d storms=%d  retry cost: %d cycles %.1f nJ\n",
			fs.HarvestDropouts, fs.HarvestSpikes, fs.HarvestStorms, fs.RetryCycles, fs.RetryNJ)
	}
	if rep := r.Invariants; rep != nil {
		fmt.Printf("%s\n", rep.Summary())
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v.String())
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ipexsim: "+format+"\n", args...)
	os.Exit(1)
}
