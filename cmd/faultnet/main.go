// Command faultnet runs the deterministic chaos proxy from
// internal/faultnet as a standalone process: put it between a fleet client
// and an ipexd server and it injects latency, drops, resets, truncated and
// corrupted bodies, 429 storms, and blackholes — all drawn from a seeded
// rng, so a chaos run replays identically.
//
//	faultnet -listen 127.0.0.1:8475 -upstream 127.0.0.1:8375 \
//	    -seed 7 -drop 0.1 -truncate 0.1 -corrupt 0.1 -reject429 0.1
//
// On SIGINT/SIGTERM the proxy stops accepting, waits for in-flight
// connections, prints the injected-fault summary to stderr, and exits 0.
// `make remote-smoke` drives two of these in front of a two-server ipexd
// fleet and asserts the sweep output stays byte-identical to local.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipex/internal/faultnet"
)

func main() {
	var (
		listenAddr = flag.String("listen", "127.0.0.1:0", "address to accept client connections on")
		upstream   = flag.String("upstream", "", "upstream host:port to relay to (required)")
		seed       = flag.Uint64("seed", 1, "seed for every fault decision (same seed + same connection order = same faults)")
		drop       = flag.Float64("drop", 0, "probability a connection is dropped before reading a byte")
		reset      = flag.Float64("reset", 0, "probability the client connection is reset mid-response")
		blackhole  = flag.Float64("blackhole", 0, "probability a request is read and never answered")
		maxHold    = flag.Duration("max-hold", 2*time.Second, "how long a blackhole holds the connection")
		reject     = flag.Float64("reject429", 0, "probability of a canned 429 + Retry-After instead of proxying")
		retryAfter = flag.Int("retry-after", 1, "Retry-After seconds on injected 429s")
		latencyP   = flag.Float64("latency", 0, "probability a request is delayed before relaying")
		latencyD   = flag.Duration("latency-delay", 50*time.Millisecond, "injected delay when -latency fires")
		truncate   = flag.Float64("truncate", 0, "probability the response body is cut in half")
		corrupt    = flag.Float64("corrupt", 0, "probability response-body bytes are flipped (headers intact)")
	)
	flag.Parse()
	if *upstream == "" {
		fmt.Fprintln(os.Stderr, "faultnet: -upstream is required")
		os.Exit(1)
	}

	p, err := faultnet.Listen(*listenAddr, *upstream, faultnet.Config{
		Seed:           *seed,
		DropProb:       *drop,
		ResetProb:      *reset,
		BlackholeProb:  *blackhole,
		MaxHold:        *maxHold,
		Reject429Prob:  *reject,
		RetryAfterSecs: *retryAfter,
		LatencyProb:    *latencyP,
		Latency:        *latencyD,
		TruncateProb:   *truncate,
		CorruptProb:    *corrupt,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultnet: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "faultnet listening on %s -> %s (seed=%d)\n", p.Addr(), *upstream, *seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	p.Close()
	fmt.Fprintln(os.Stderr, p.Counters.Snapshot().String())
}
