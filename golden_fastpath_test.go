package ipex

import (
	"reflect"
	"testing"

	"ipex/internal/power"
)

// TestGoldenFastPaths cross-checks the specialized hot loops against the
// generic interpreter loop, one named case per dispatch corner:
//
//	default        — observers off, prefetchers on → the runFast loop
//	ipex-both      — runFast with both IPEX controllers live
//	no-prefetch    — both prefetchers off → the runFastNoPF loop
//	buffer-mode    — PrefetchToCache=false is ineligible, pinning that the
//	                 dispatcher really falls back to the generic loop
//
// Each case simulates with the fast paths enabled and disabled
// (Config.DisableFastPaths) and requires bit-identical Results. The golden
// suite (TestGoldenDeterminism) pins the generic loop against the seed
// simulator, so together the two tests anchor the fast paths to the seed.
func TestGoldenFastPaths(t *testing.T) {
	trace := power.Generate(power.RFHome, power.DefaultTraceSamples, 1)
	bufferMode := DefaultConfig()
	bufferMode.PrefetchToCache = false
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"ipex-both", DefaultConfig().WithIPEX()},
		{"no-prefetch", DefaultConfig().WithoutPrefetch()},
		{"buffer-mode", bufferMode},
	}
	apps := []string{"gsme", "qsort", "jpegd"}
	const scale = 0.25

	arena := NewArena()
	for _, tc := range cases {
		for _, app := range apps {
			generic := tc.cfg
			generic.DisableFastPaths = true
			want, err := Run(app, scale, trace, generic)
			if err != nil {
				t.Fatalf("%s/%s generic: %v", tc.name, app, err)
			}

			fast := tc.cfg
			fast.DisableFastPaths = false
			got, err := Run(app, scale, trace, fast)
			if err != nil {
				t.Fatalf("%s/%s fast: %v", tc.name, app, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: fast loop diverged from generic\nfast:    %s\ngeneric: %s",
					tc.name, app, mustJSON(got), mustJSON(want))
			}

			// The same configuration through a reused arena — the recycled-
			// state path the sweep harness takes — must also match.
			got, err = arena.Run(app, scale, trace, fast)
			if err != nil {
				t.Fatalf("%s/%s arena: %v", tc.name, app, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: arena run diverged from generic\narena:   %s\ngeneric: %s",
					tc.name, app, mustJSON(got), mustJSON(want))
			}
		}
	}
}
