module ipex

go 1.22
