// Package ipex is the public API of the IPEX reproduction: a trace-driven
// simulator of a batteryless, energy-harvesting nonvolatile processor (NVP)
// with volatile caches, hardware prefetchers, and the paper's
// Intermittence-aware Prefetching EXtension ("Rethinking Prefetching for
// Intermittent Computing", ISCA 2025).
//
// Quickstart:
//
//	trace := ipex.GenerateTrace(ipex.RFHome, 0, 1)
//	base, _ := ipex.Run("fft", 1.0, trace, ipex.DefaultConfig())
//	with, _ := ipex.Run("fft", 1.0, trace, ipex.DefaultConfig().WithIPEX())
//	fmt.Printf("IPEX speedup: %.3f\n", float64(base.Cycles)/float64(with.Cycles))
//
// The package re-exports the simulator's configuration and result types; the
// paper's full evaluation lives in cmd/experiments, and DESIGN.md maps every
// figure and table to its generator.
package ipex

import (
	"context"
	"io"

	"ipex/internal/capacitor"
	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/experiments"
	"ipex/internal/fault"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/profile"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

// Config assembles one simulated system; see DefaultConfig for the paper's
// Table-1 defaults and the WithIPEX/WithIPEXData/WithoutPrefetch helpers for
// the evaluated variants.
type Config = nvp.Config

// IPEXConfig parameterises the IPEX controller inside a Config.
type IPEXConfig = core.Config

// Result is the outcome of one simulation run.
type Result = nvp.Result

// SideStats carries the per-cache-side statistics of a Result.
type SideStats = nvp.SideStats

// Breakdown is the consumed-energy split (cache/memory/compute/backup).
type Breakdown = energy.Breakdown

// Trace is a replayable harvested-power recording (one average-power sample
// per 10 µs).
type Trace = power.Trace

// Source selects a synthetic ambient-energy source.
type Source = power.Source

// The four synthetic sources the paper evaluates.
const (
	RFHome   = power.RFHome
	RFOffice = power.RFOffice
	Solar    = power.Solar
	Thermal  = power.Thermal
)

// NVMTech selects the main-memory technology.
type NVMTech = energy.NVMTech

// The three NVM technologies of the paper's Figure 21.
const (
	ReRAM  = energy.ReRAM
	STTRAM = energy.STTRAM
	PCM    = energy.PCM
)

// Workload is a deterministic application access-stream generator.
// Implement it to simulate your own firmware (see examples/sensorlogger).
type Workload = workload.Generator

// Access is one committed instruction of a Workload stream.
type Access = workload.Access

// Prefetcher is the degree-controlled prefetcher interface; implement it
// and install a factory in Config.IPrefetcherFactory/DPrefetcherFactory to
// run (and IPEX-throttle) a custom prefetcher. Name the factory with
// Config.IPrefetcherID/DPrefetcherID (and version the name when its
// behaviour changes) if its runs should be journalable and cacheable;
// unnamed factories have no stable content identity and always simulate.
type Prefetcher = prefetch.Prefetcher

// PrefetchEvent is the demand-access observation a Prefetcher receives.
type PrefetchEvent = prefetch.Event

// MaxPrefetchDegree is the architectural cap on the prefetch degree.
const MaxPrefetchDegree = prefetch.MaxDegree

// PrefetcherKind names a built-in prefetcher for Config.IPrefetcher /
// Config.DPrefetcher.
type PrefetcherKind = prefetch.Kind

// The built-in prefetchers: the paper's six (Tables 1, 3, 4) plus AMPM
// from its related work.
const (
	NoPrefetcher         PrefetcherKind = prefetch.KindNone
	SequentialPrefetcher PrefetcherKind = prefetch.KindSequential
	StridePrefetcher     PrefetcherKind = prefetch.KindStride
	MarkovPrefetcher     PrefetcherKind = prefetch.KindMarkov
	TIFSPrefetcher       PrefetcherKind = prefetch.KindTIFS
	GHBPrefetcher        PrefetcherKind = prefetch.KindGHB
	BOPrefetcher         PrefetcherKind = prefetch.KindBO
	AMPMPrefetcher       PrefetcherKind = prefetch.KindAMPM
)

// DefaultConfig returns the paper's Table-1 system: 2 kB 4-way caches,
// 4-entry prefetch buffers, sequential + stride prefetchers at degree 2,
// 16 MB ReRAM, a 0.47 µF capacitor, and IPEX disabled.
func DefaultConfig() Config { return nvp.DefaultConfig() }

// NVMFor returns main-memory parameters for a technology and capacity,
// usable as Config.NVM.
func NVMFor(tech NVMTech, sizeBytes int64) energy.NVMParams {
	return energy.NVMFor(tech, sizeBytes)
}

// Workloads lists the 20 benchmark names.
func Workloads() []string { return workload.Names() }

// NewWorkload builds the named benchmark's generator; scale multiplies its
// instruction count (<= 0 means 1.0).
func NewWorkload(name string, scale float64) (Workload, error) {
	return workload.New(name, scale)
}

// GenerateTrace synthesizes a power trace for a source; n <= 0 uses the
// default length (0.5 s). The same (source, n, seed) always produces the
// identical trace.
func GenerateTrace(src Source, n int, seed uint64) *Trace {
	return power.Generate(src, n, seed)
}

// LoadTrace reads a recorded power log in the paper's text format (one
// average-power value in watts per line; '#' comments allowed).
func LoadTrace(name string, r io.Reader) (*Trace, error) {
	return power.Load(name, r)
}

// OutageEstimate is the capacitor-only outage analysis of a power trace.
type OutageEstimate = power.OutageEstimate

// AnalyzeTrace estimates outage behaviour for a trace against the given
// constant running draw (watts) and the default capacitor — a fast sizing
// tool; the full simulator refines it with the workload's real draw.
func AnalyzeTrace(tr *Trace, drawWatts float64) (OutageEstimate, error) {
	return power.Analyze(tr, drawWatts, capacitor.DefaultConfig())
}

// PowerCycleStats is one entry of Result.PowerCycleLog (Config.RecordCycles).
type PowerCycleStats = nvp.PowerCycleStats

// EventTracer streams per-power-cycle simulator events (outage checkpoints,
// prefetch issue/throttle/wipe/first-use, IPEX decisions) as JSON Lines.
// Install one via Config.Tracer; a nil tracer costs nothing. One tracer
// serves one run at a time — it carries the run's cycle clock.
type EventTracer = trace.Tracer

// TraceEvent is one record of an EventTracer stream.
type TraceEvent = trace.Event

// TraceEventKind names a TraceEvent type (the "ev" JSON field).
type TraceEventKind = trace.Kind

// NewEventTracer returns a tracer writing one JSON object per line to w.
// Call Flush when the run(s) finish to drain its buffer.
func NewEventTracer(w io.Writer) *EventTracer { return trace.NewJSONL(w) }

// MetricsRegistry accumulates named end-of-run counters and energy gauges.
// Install one via Config.Metrics; sharing a registry across runs aggregates
// a sweep. Dump it with its WriteJSON method.
type MetricsRegistry = trace.Registry

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return trace.NewRegistry() }

// WriteAccessTrace records a workload's complete access stream in the
// repository's text trace format (see internal/workload); ReadAccessTrace
// replays such a file, including traces captured outside this simulator.
func WriteAccessTrace(wl Workload, w io.Writer) error {
	return workload.WriteTrace(wl, w)
}

// ReadAccessTrace parses an access-trace file into a replayable Workload.
func ReadAccessTrace(r io.Reader) (Workload, error) {
	return workload.ReadTrace(r)
}

// AccessTraceFromSlice wraps a pre-built access sequence as a Workload.
func AccessTraceFromSlice(name string, accesses []Access) Workload {
	return workload.FromAccesses(name, accesses)
}

// Run simulates one workload under one power trace and configuration. The
// app's access stream is generated once per (app, scale) pair and memoized
// process-wide, so comparing configurations over the same workload replays
// an identical, cheap-to-read stream (see EvictWorkloadCache to release the
// memory).
func Run(app string, scale float64, trace *Trace, cfg Config) (Result, error) {
	wl, err := workload.Shared().Get(app, scale)
	if err != nil {
		return Result{}, err
	}
	return nvp.Run(wl, trace, cfg)
}

// EvictWorkloadCache drops every memoized workload access stream. A
// full-length 20-app sweep holds on the order of a hundred megabytes; call
// this between sweeps of distinct scales in long-lived processes.
func EvictWorkloadCache() { workload.Shared().Evict() }

// RunWorkload simulates a caller-provided workload generator (e.g. a custom
// application model) under one power trace and configuration.
func RunWorkload(wl Workload, trace *Trace, cfg Config) (Result, error) {
	return nvp.Run(wl, trace, cfg)
}

// RunContext is Run with cooperative cancellation. When ctx is cancelled the
// simulation stops cleanly at the next power-cycle boundary — after the JIT
// checkpoint, outage, and reboot complete — and returns the partial result
// with Completed=false and a nil error, the same contract as a run that
// exhausted its cycle budget. Check ctx.Err() to tell the two apart. A nil
// ctx behaves exactly like Run. Cancellation latency is one power cycle: the
// per-instruction hot loop never inspects the context.
func RunContext(ctx context.Context, app string, scale float64, trace *Trace, cfg Config) (Result, error) {
	wl, err := workload.Shared().Get(app, scale)
	if err != nil {
		return Result{}, err
	}
	return nvp.RunContext(ctx, wl, trace, cfg)
}

// RunWorkloadContext is RunWorkload with cooperative cancellation; see
// RunContext for the cancellation contract.
func RunWorkloadContext(ctx context.Context, wl Workload, trace *Trace, cfg Config) (Result, error) {
	return nvp.RunContext(ctx, wl, trace, cfg)
}

// Arena is reusable simulation state for repeated Runs. A Run allocates its
// caches, buffers, prefetchers, and controllers fresh every call; an Arena
// recycles them between calls whenever the next configuration permits, so a
// steady-state run on a stable configuration allocates nothing, and the
// workload is read straight from the process-wide memoized stream without a
// per-run generator. Results are bit-identical to the package-level Run
// functions.
//
// An Arena is NOT safe for concurrent use: create one per goroutine (the
// sweep harness keeps one per worker).
type Arena struct{ a *nvp.Arena }

// NewArena returns an empty arena; the first Run populates it.
func NewArena() *Arena { return &Arena{a: nvp.NewArena()} }

// Run is the package-level Run through the arena's reusable state.
func (ar *Arena) Run(app string, scale float64, trace *Trace, cfg Config) (Result, error) {
	return ar.RunContext(nil, app, scale, trace, cfg)
}

// RunContext is Run with cooperative cancellation; see the package-level
// RunContext for the contract.
func (ar *Arena) RunContext(ctx context.Context, app string, scale float64, trace *Trace, cfg Config) (Result, error) {
	st, err := workload.Shared().Stream(app, scale)
	if err != nil {
		return Result{}, err
	}
	return ar.a.RunStreamContext(ctx, st, trace, cfg)
}

// Speedup returns how much faster b completed than a (wall-clock cycles,
// including recharge time — the paper's performance metric).
func Speedup(a, b Result) float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(a.Cycles) / float64(b.Cycles)
}

// Overhead reports IPEX's hardware cost (§6.1 of the paper: 99 bits per
// cache, 0.0018 % of the core area for the default two caches).
func Overhead(caches int) core.OverheadReport { return core.Overhead(caches) }

// FaultConfig describes a deterministic fault-injection schedule for
// Config.Faults: a non-ideal voltage sensor feeding IPEX, tearing
// checkpoint writes, and harvest-trace anomalies. The same seed and config
// always replay the identical schedule; a nil or all-disabled config is
// bit-identical to a fault-free run.
type FaultConfig = fault.Config

// SensorFaultConfig models the voltage sensor between the capacitor and
// the IPEX controller (ADC quantization, Gaussian noise, dropouts,
// stuck-at windows).
type SensorFaultConfig = fault.SensorConfig

// CheckpointFaultConfig models torn checkpoint block writes with bounded
// detect-and-retry and rollback.
type CheckpointFaultConfig = fault.CheckpointConfig

// HarvestFaultConfig models input-energy anomalies: sample dropouts,
// spikes, and multi-sample brownout storms.
type HarvestFaultConfig = fault.HarvestConfig

// FaultStats counts the faults a schedule actually injected
// (Result.Faults; nil on fault-free runs).
type FaultStats = fault.Stats

// InvariantReport is the runtime invariant checker's verdict
// (Result.Invariants when Config.Paranoid is set). Its Clean method is
// nil-safe.
type InvariantReport = fault.Report

// InvariantViolation is one failed runtime check inside an InvariantReport.
type InvariantViolation = fault.Violation

// ProfileReport is the cycle/energy attribution report (Result.Profile when
// Config.Profile is set): per-category cycle and energy totals, the
// capacitor drain ledger, the prefetch outcome split, and one CycleRecord
// per power cycle. Its cycle attribution sums exactly to Result.Cycles, and
// its drain ledger is bit-identical to the paranoid shadow ledger when
// Config.Paranoid is also set.
type ProfileReport = profile.Report

// ProfileCycleRecord is one power cycle's attribution inside a
// ProfileReport.
type ProfileCycleRecord = profile.CycleRecord

// PrefetchOutcomes splits issued prefetches by fate (useful / wiped by an
// outage / inaccurate).
type PrefetchOutcomes = profile.PrefetchOutcomes

// The profiler's attribution categories; index ProfileReport.Cycles and
// ProfileReport.EnergyNJ with them (names in profile.CycleCatNames /
// profile.EnergyCatNames).
type (
	ProfileCycleCat  = profile.CycleCat
	ProfileEnergyCat = profile.EnergyCat
)

// ExperimentOptions controls the paper-evaluation sweeps re-exported below.
type ExperimentOptions = experiments.Options

// Experiment entry points: each regenerates one figure or table of the
// paper (see DESIGN.md's experiment index). They are thin re-exports of
// internal/experiments for programmatic use; cmd/experiments drives them
// from the command line.
var (
	Fig01  = experiments.Fig01
	Fig02  = experiments.Fig02
	Fig04  = experiments.Fig04
	Fig10  = experiments.Fig10
	Fig11  = experiments.Fig11
	Fig12  = experiments.Fig12
	Fig13  = experiments.Fig13
	Fig14  = experiments.Fig14
	Fig15  = experiments.Fig15
	Table2 = experiments.Table2
	Table3 = experiments.Table3
	Table4 = experiments.Table4
	Fig16  = experiments.Fig16
	Fig17  = experiments.Fig17
	Fig18  = experiments.Fig18
	Fig19  = experiments.Fig19
	Fig20  = experiments.Fig20
	Fig21  = experiments.Fig21
	Fig22  = experiments.Fig22
	Fig23  = experiments.Fig23
	Fig24  = experiments.Fig24
	Fig25  = experiments.Fig25

	// The robustness sweeps (EXPERIMENTS.md "Robustness sweep"): IPEX's
	// gain under a degrading voltage sensor and under failing checkpoint
	// writes, every run checked by the paranoid invariant checker.
	RobustSensor = experiments.RobustSensor
	RobustCkpt   = experiments.RobustCkpt
)
