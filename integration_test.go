package ipex

import (
	"testing"
)

// Integration tests asserting the cross-cutting behaviours the paper's
// story depends on, at a moderate scale that keeps them robust.

func run(t *testing.T, app string, trace *Trace, mut func(*Config)) Result {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	r, err := Run(app, 0.3, trace, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Completed {
		t.Fatalf("%s did not complete", app)
	}
	return r
}

// Fair-comparison methodology: the same trace supplies the same input
// energy to any configuration, so wall-clock time differences reflect the
// systems, not luck.
func TestSameInputEnergyMethodology(t *testing.T) {
	tr := GenerateTrace(RFHome, 20000, 9)
	a := run(t, "fft", tr, nil)
	b := run(t, "fft", tr, nil)
	if a.Cycles != b.Cycles || a.Energy != b.Energy {
		t.Error("identical runs diverged")
	}
}

// The paper's premise (Fig. 5): power failures wipe prefetched-but-unused
// blocks; the waste must be visible in the baseline and reduced by IPEX.
func TestIPEXReducesDoomedPrefetches(t *testing.T) {
	tr := GenerateTrace(RFHome, 0, 1)
	base := run(t, "jpegd", tr, nil)
	with := run(t, "jpegd", tr, func(c *Config) { *c = c.WithIPEX() })

	if base.Outages == 0 {
		t.Skip("no outages on this slice")
	}
	baseWiped := base.Inst.WipedUnused() + base.Data.WipedUnused()
	withWiped := with.Inst.WipedUnused() + with.Data.WipedUnused()
	if baseWiped == 0 {
		t.Fatal("baseline lost no unused prefetches to outages — the premise is absent")
	}
	// IPEX must reduce total prefetch operations (Fig. 12)...
	if with.PrefetchesIssued() >= base.PrefetchesIssued() {
		t.Errorf("no prefetch reduction: %d vs %d", with.PrefetchesIssued(), base.PrefetchesIssued())
	}
	// ...without increasing the doomed losses.
	if withWiped > baseWiped*3/2 {
		t.Errorf("IPEX raised doomed prefetches: %d vs %d", withWiped, baseWiped)
	}
}

// Fig. 15's claim: IPEX's miss-rate impact is negligible (well under a
// percentage point).
func TestIPEXMissRateImpactNegligible(t *testing.T) {
	tr := GenerateTrace(RFHome, 0, 1)
	for _, app := range []string{"gsme", "qsort"} {
		base := run(t, app, tr, nil)
		with := run(t, app, tr, func(c *Config) { *c = c.WithIPEX() })
		dI := with.Inst.Cache.MissRate() - base.Inst.Cache.MissRate()
		dD := with.Data.Cache.MissRate() - base.Data.Cache.MissRate()
		if dI > 0.01 || dD > 0.01 {
			t.Errorf("%s: miss-rate increase too large: I %+0.4f D %+0.4f", app, dI, dD)
		}
	}
}

// §6.2's observation: instruction accesses dominate data accesses ~4:1,
// giving the instruction prefetcher more IPEX opportunities.
func TestInstructionSideDominatesPrefetching(t *testing.T) {
	tr := GenerateTrace(RFHome, 0, 1)
	totalI, totalD := uint64(0), uint64(0)
	for _, app := range []string{"gsme", "jpegd", "basicm"} {
		r := run(t, app, tr, nil)
		totalI += r.Inst.Cache.Accesses
		totalD += r.Data.Cache.Accesses
	}
	ratio := float64(totalI) / float64(totalD)
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("I:D access ratio = %.2f, want ≈4", ratio)
	}
}

// The crash-consistency contract: every instruction commits exactly once
// across arbitrary outage patterns (JIT checkpointing resumes at the
// failure point).
func TestForwardProgressAcrossOutages(t *testing.T) {
	tr := GenerateTrace(RFHome, 0, 3)
	for _, app := range []string{"pegwitd", "unepic"} {
		r := run(t, app, tr, nil)
		wl, _ := NewWorkload(app, 0.3)
		if r.Insts != uint64(wl.Len()) {
			t.Errorf("%s: committed %d of %d instructions", app, r.Insts, wl.Len())
		}
		if r.Outages == 0 {
			t.Errorf("%s: expected outages under RFHome", app)
		}
	}
}

// Fig. 22's physics: a larger capacitor means fewer outages for the same
// program and trace.
func TestLargerCapacitorFewerOutages(t *testing.T) {
	tr := GenerateTrace(RFHome, 0, 1)
	small := run(t, "rijndaeld", tr, nil)
	big := run(t, "rijndaeld", tr, func(c *Config) {
		c.Capacitor.CapacitanceFarads = 10e-6
	})
	if big.Outages >= small.Outages {
		t.Errorf("10µF outages (%d) not below 0.47µF (%d)", big.Outages, small.Outages)
	}
}

// §6.7.9's trace characterization: the stable sources keep the system
// powered a larger fraction of wall-clock time than RF.
func TestStableTracesMoreOnTime(t *testing.T) {
	onShare := func(src Source) float64 {
		r := run(t, "fft", GenerateTrace(src, 0, 1), nil)
		return float64(r.OnCycles) / float64(r.Cycles)
	}
	if onShare(Thermal) <= onShare(RFHome) {
		t.Error("thermal should keep the system on a larger share of time than RFHome")
	}
}

// Table 2's signature: IPEX raises prefetch accuracy while coverage moves
// only slightly.
func TestIPEXAccuracyCoverageSignature(t *testing.T) {
	tr := GenerateTrace(RFHome, 0, 1)
	var accBase, accIPEX, covBase, covIPEX float64
	apps := []string{"jpegd", "gsme", "rijndaeld", "unepic"}
	for _, app := range apps {
		b := run(t, app, tr, nil)
		w := run(t, app, tr, func(c *Config) { *c = c.WithIPEX() })
		accBase += b.Inst.Accuracy()
		accIPEX += w.Inst.Accuracy()
		covBase += b.Inst.Coverage()
		covIPEX += w.Inst.Coverage()
	}
	n := float64(len(apps))
	if accIPEX/n < accBase/n-0.01 {
		t.Errorf("IPEX lowered accuracy: %.3f -> %.3f", accBase/n, accIPEX/n)
	}
	if covIPEX/n < covBase/n-0.10 {
		t.Errorf("IPEX coverage cost too large: %.3f -> %.3f", covBase/n, covIPEX/n)
	}
}
