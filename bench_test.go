// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation, as indexed in DESIGN.md. Each bench regenerates its
// experiment end-to-end (workload generation, full NVP simulation sweep,
// aggregation) at a reduced workload scale so the whole suite stays
// tractable; `cmd/experiments -all` produces the full-scale numbers that
// EXPERIMENTS.md records.
package ipex

import (
	"os"
	"runtime"
	"testing"
	"time"

	"ipex/internal/benchio"
	"ipex/internal/experiments"
)

// benchOpts keeps a single benchmark iteration around a few hundred
// milliseconds: three representative apps (one stream-heavy, one
// irregular, one balanced) at 10% workload length.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale: 0.1,
		Apps:  []string{"gsme", "pegwitd", "jpegd"},
	}
}

func benchRun[T any](b *testing.B, f func(experiments.Options) (T, error)) {
	b.Helper()
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig01CacheSizeLeakage regenerates Figure 1: speedup and cache
// leakage share across 256 B – 8 kB caches, prefetchers off.
func BenchmarkFig01CacheSizeLeakage(b *testing.B) { benchRun(b, experiments.Fig01) }

// BenchmarkFig02StallBreakdown regenerates Figure 2: per-app pipeline-stall
// shares from ICache and DCache misses.
func BenchmarkFig02StallBreakdown(b *testing.B) { benchRun(b, experiments.Fig02) }

// BenchmarkFig04MinUsefulProbability regenerates Figure 4: the Inequality-4
// minimum useful-prefetch probability curves.
func BenchmarkFig04MinUsefulProbability(b *testing.B) { benchRun(b, experiments.Fig04) }

// BenchmarkSec61HardwareOverhead regenerates §6.1: IPEX's register count
// and area fraction.
func BenchmarkSec61HardwareOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Overhead(2).TotalBits != 198 {
			b.Fatal("overhead changed")
		}
	}
}

// BenchmarkFig10Speedup regenerates Figure 10: speedups over the
// NVSRAMCache baseline (no-prefetch / +IPEX data / +IPEX both), RFHome.
func BenchmarkFig10Speedup(b *testing.B) { benchRun(b, experiments.Fig10) }

// BenchmarkFig11IdealSpeedup regenerates Figure 11: the same comparison
// against the zero-checkpoint-cost NVSRAMCache (ideal).
func BenchmarkFig11IdealSpeedup(b *testing.B) { benchRun(b, experiments.Fig11) }

// BenchmarkFig12PrefetchReduction regenerates Figure 12: prefetch-operation
// reduction under IPEX.
func BenchmarkFig12PrefetchReduction(b *testing.B) { benchRun(b, experiments.Fig12) }

// BenchmarkFig13TrafficEnergy regenerates Figure 13: main-memory traffic
// reduction and normalized energy.
func BenchmarkFig13TrafficEnergy(b *testing.B) { benchRun(b, experiments.Fig13) }

// BenchmarkFig14EnergyBreakdown regenerates Figure 14: normalized energy
// breakdowns (cache/memory/compute/bk+rst) for the three configurations.
func BenchmarkFig14EnergyBreakdown(b *testing.B) { benchRun(b, experiments.Fig14) }

// BenchmarkFig15MissRates regenerates Figure 15: cache miss rates with and
// without IPEX.
func BenchmarkFig15MissRates(b *testing.B) { benchRun(b, experiments.Fig15) }

// BenchmarkTable2AccuracyCoverage regenerates Table 2: prefetch accuracy
// and coverage with and without IPEX.
func BenchmarkTable2AccuracyCoverage(b *testing.B) { benchRun(b, experiments.Table2) }

// BenchmarkTable3InstPrefetchers regenerates Table 3: IPEX's speedup with
// sequential, Markov, and TIFS instruction prefetchers.
func BenchmarkTable3InstPrefetchers(b *testing.B) { benchRun(b, experiments.Table3) }

// BenchmarkTable4DataPrefetchers regenerates Table 4: IPEX's speedup with
// stride, GHB, and best-offset data prefetchers.
func BenchmarkTable4DataPrefetchers(b *testing.B) { benchRun(b, experiments.Table4) }

// BenchmarkFig16ThresholdCounts regenerates Figure 16: the voltage
// threshold count sweep (1–3).
func BenchmarkFig16ThresholdCounts(b *testing.B) { benchRun(b, experiments.Fig16) }

// BenchmarkFig17PrefetchBuffers regenerates Figure 17: the prefetch-buffer
// size sweep (32/64/128 B).
func BenchmarkFig17PrefetchBuffers(b *testing.B) { benchRun(b, experiments.Fig17) }

// BenchmarkFig18CacheSizes regenerates Figure 18: the cache-size sweep with
// IPEX (256 B – 8 kB).
func BenchmarkFig18CacheSizes(b *testing.B) { benchRun(b, experiments.Fig18) }

// BenchmarkFig19Associativity regenerates Figure 19: the associativity
// sweep (1/2/4/8 ways).
func BenchmarkFig19Associativity(b *testing.B) { benchRun(b, experiments.Fig19) }

// BenchmarkFig20MemorySizes regenerates Figure 20: the main-memory size
// sweep (2–32 MB).
func BenchmarkFig20MemorySizes(b *testing.B) { benchRun(b, experiments.Fig20) }

// BenchmarkFig21NVMTech regenerates Figure 21: the ReRAM/STT-RAM/PCM sweep.
func BenchmarkFig21NVMTech(b *testing.B) { benchRun(b, experiments.Fig21) }

// BenchmarkFig22CapacitorSizes regenerates Figure 22: the capacitor-size
// sweep (0.47–1000 µF).
func BenchmarkFig22CapacitorSizes(b *testing.B) { benchRun(b, experiments.Fig22) }

// BenchmarkFig23PowerTraces regenerates Figure 23: the
// thermal/solar/RFOffice/RFHome sweep.
func BenchmarkFig23PowerTraces(b *testing.B) { benchRun(b, experiments.Fig23) }

// BenchmarkFig24VoltageSteps regenerates Figure 24: the threshold
// adaptation step-size sweep (0.05–0.15 V).
func BenchmarkFig24VoltageSteps(b *testing.B) { benchRun(b, experiments.Fig24) }

// BenchmarkFig25ThrottleRates regenerates Figure 25: the throttle-rate
// trigger sweep (1–20%).
func BenchmarkFig25ThrottleRates(b *testing.B) { benchRun(b, experiments.Fig25) }

// BenchmarkSimulatorThroughput measures the raw simulator speed (committed
// instructions per second) on the default configuration — the figure that
// bounds every sweep above. Runs go through a per-benchmark Arena, the way
// the sweep harness executes cells.
func BenchmarkSimulatorThroughput(b *testing.B) {
	trace := GenerateTrace(RFHome, 0, 1)
	cfg := DefaultConfig()
	ar := NewArena()
	// Warm up outside the timed region: the first run generates and
	// memoizes the gsme access stream and populates the arena — one-time
	// costs that would otherwise bias short benchmark runs (the historical
	// numbers at -benchtime=10x carried ~10% of stream generation).
	if _, err := ar.Run("gsme", 1.0, trace, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r, err := ar.Run("gsme", 1.0, trace, cfg)
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Insts
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")

	// With BENCH_HOTLOOP_JSON set (the Makefile's bench target), persist
	// the hot-loop figures so performance travels with the commit. An
	// existing record is updated in place — its experiment timings and
	// notes (the seed baseline) are preserved.
	if path := os.Getenv("BENCH_HOTLOOP_JSON"); path != "" {
		perRun := insts / uint64(b.N)
		nsPerRun := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if _, err := ar.Run("gsme", 1.0, trace, cfg); err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&m1)

		rec := benchio.NewRecord()
		if old, err := benchio.Read(path); err == nil {
			rec.Scale = old.Scale
			rec.Experiments = old.Experiments
			rec.Notes = old.Notes
		}
		rec.Hotloop = &benchio.Hotloop{
			App: "gsme", Scale: 1, Insts: perRun,
			NsPerInst:    nsPerRun / float64(perRun),
			InstsPerSec:  float64(insts) / b.Elapsed().Seconds(),
			AllocsPerRun: int64(m1.Mallocs - m0.Mallocs),
			BytesPerRun:  int64(m1.TotalAlloc - m0.TotalAlloc),
			FastPaths: []benchio.FastPath{
				measureFastPath(b, "generic", trace, true, false),
				measureFastPath(b, "fast", trace, false, false),
				measureFastPath(b, "fast-nopf", trace, false, true),
			},
		}
		if err := benchio.Write(path, rec); err != nil {
			b.Logf("writing %s: %v", path, err)
		}
	}
}

// measureFastPath times one loop variant through a warmed arena: the
// generic interpreter loop, the default-configuration specialized loop, or
// the no-prefetch specialized loop.
func measureFastPath(tb testing.TB, name string, trace *Trace, generic, nopf bool) benchio.FastPath {
	cfg := DefaultConfig()
	if nopf {
		cfg = cfg.WithoutPrefetch()
	}
	cfg.DisableFastPaths = generic
	ar := NewArena()
	if _, err := ar.Run("gsme", 1.0, trace, cfg); err != nil {
		tb.Fatal(err)
	}
	// Timed by hand: testing.Benchmark deadlocks when invoked from inside a
	// running benchmark, and this helper serves both the bench's record
	// writer and TestBenchGate.
	const runs = 10
	var insts uint64
	start := time.Now()
	for i := 0; i < runs; i++ {
		r, err := ar.Run("gsme", 1.0, trace, cfg)
		if err != nil {
			tb.Fatal(err)
		}
		insts = r.Insts
	}
	elapsed := time.Since(start)
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := ar.Run("gsme", 1.0, trace, cfg); err != nil {
			tb.Fatal(err)
		}
	})
	nsPerOp := float64(elapsed.Nanoseconds()) / runs
	return benchio.FastPath{
		Name:         name,
		InstsPerSec:  float64(insts) * 1e9 / nsPerOp,
		NsPerInst:    nsPerOp / float64(insts),
		AllocsPerRun: int64(allocs),
	}
}

// TestBenchGate fails when the live simulator regresses against the
// committed BENCH_hotloop.json: default-configuration throughput more than
// 10% below the recorded figure, or any steady-state allocation at all.
// Wall-clock throughput is machine-dependent, so the gate is opt-in via
// IPEX_BENCH_GATE=1 (`make bench-gate`) and only means something against a
// record generated on a comparable machine (`make bench`).
func TestBenchGate(t *testing.T) {
	if os.Getenv("IPEX_BENCH_GATE") != "1" {
		t.Skip("set IPEX_BENCH_GATE=1 (make bench-gate) to enable")
	}
	rec, err := benchio.Read("BENCH_hotloop.json")
	if err != nil {
		t.Fatalf("reading committed record (regenerate with `make bench`): %v", err)
	}
	if rec.Hotloop == nil {
		t.Fatal("committed record has no hotloop section; regenerate with `make bench`")
	}
	trace := GenerateTrace(RFHome, 0, 1)

	fp := measureFastPath(t, "fast", trace, false, false)
	if fp.AllocsPerRun > 0 {
		t.Errorf("steady-state run allocates %d times, want 0", fp.AllocsPerRun)
	}
	// Best of three against the 10%-regression floor: a shared machine
	// swings individual measurements far more than a real regression, and
	// a best-of can only hide noise, not a slowdown.
	best := fp.InstsPerSec
	floor := rec.Hotloop.InstsPerSec * 0.9
	for i := 0; i < 2 && best < floor; i++ {
		if again := measureFastPath(t, "fast", trace, false, false); again.InstsPerSec > best {
			best = again.InstsPerSec
		}
	}
	if best < floor {
		t.Errorf("throughput %.3gM insts/s is >10%% below the committed %.3gM insts/s",
			best/1e6, rec.Hotloop.InstsPerSec/1e6)
	}
}
