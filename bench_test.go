// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation, as indexed in DESIGN.md. Each bench regenerates its
// experiment end-to-end (workload generation, full NVP simulation sweep,
// aggregation) at a reduced workload scale so the whole suite stays
// tractable; `cmd/experiments -all` produces the full-scale numbers that
// EXPERIMENTS.md records.
package ipex

import (
	"os"
	"runtime"
	"testing"

	"ipex/internal/benchio"
	"ipex/internal/experiments"
)

// benchOpts keeps a single benchmark iteration around a few hundred
// milliseconds: three representative apps (one stream-heavy, one
// irregular, one balanced) at 10% workload length.
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale: 0.1,
		Apps:  []string{"gsme", "pegwitd", "jpegd"},
	}
}

func benchRun[T any](b *testing.B, f func(experiments.Options) (T, error)) {
	b.Helper()
	o := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig01CacheSizeLeakage regenerates Figure 1: speedup and cache
// leakage share across 256 B – 8 kB caches, prefetchers off.
func BenchmarkFig01CacheSizeLeakage(b *testing.B) { benchRun(b, experiments.Fig01) }

// BenchmarkFig02StallBreakdown regenerates Figure 2: per-app pipeline-stall
// shares from ICache and DCache misses.
func BenchmarkFig02StallBreakdown(b *testing.B) { benchRun(b, experiments.Fig02) }

// BenchmarkFig04MinUsefulProbability regenerates Figure 4: the Inequality-4
// minimum useful-prefetch probability curves.
func BenchmarkFig04MinUsefulProbability(b *testing.B) { benchRun(b, experiments.Fig04) }

// BenchmarkSec61HardwareOverhead regenerates §6.1: IPEX's register count
// and area fraction.
func BenchmarkSec61HardwareOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Overhead(2).TotalBits != 198 {
			b.Fatal("overhead changed")
		}
	}
}

// BenchmarkFig10Speedup regenerates Figure 10: speedups over the
// NVSRAMCache baseline (no-prefetch / +IPEX data / +IPEX both), RFHome.
func BenchmarkFig10Speedup(b *testing.B) { benchRun(b, experiments.Fig10) }

// BenchmarkFig11IdealSpeedup regenerates Figure 11: the same comparison
// against the zero-checkpoint-cost NVSRAMCache (ideal).
func BenchmarkFig11IdealSpeedup(b *testing.B) { benchRun(b, experiments.Fig11) }

// BenchmarkFig12PrefetchReduction regenerates Figure 12: prefetch-operation
// reduction under IPEX.
func BenchmarkFig12PrefetchReduction(b *testing.B) { benchRun(b, experiments.Fig12) }

// BenchmarkFig13TrafficEnergy regenerates Figure 13: main-memory traffic
// reduction and normalized energy.
func BenchmarkFig13TrafficEnergy(b *testing.B) { benchRun(b, experiments.Fig13) }

// BenchmarkFig14EnergyBreakdown regenerates Figure 14: normalized energy
// breakdowns (cache/memory/compute/bk+rst) for the three configurations.
func BenchmarkFig14EnergyBreakdown(b *testing.B) { benchRun(b, experiments.Fig14) }

// BenchmarkFig15MissRates regenerates Figure 15: cache miss rates with and
// without IPEX.
func BenchmarkFig15MissRates(b *testing.B) { benchRun(b, experiments.Fig15) }

// BenchmarkTable2AccuracyCoverage regenerates Table 2: prefetch accuracy
// and coverage with and without IPEX.
func BenchmarkTable2AccuracyCoverage(b *testing.B) { benchRun(b, experiments.Table2) }

// BenchmarkTable3InstPrefetchers regenerates Table 3: IPEX's speedup with
// sequential, Markov, and TIFS instruction prefetchers.
func BenchmarkTable3InstPrefetchers(b *testing.B) { benchRun(b, experiments.Table3) }

// BenchmarkTable4DataPrefetchers regenerates Table 4: IPEX's speedup with
// stride, GHB, and best-offset data prefetchers.
func BenchmarkTable4DataPrefetchers(b *testing.B) { benchRun(b, experiments.Table4) }

// BenchmarkFig16ThresholdCounts regenerates Figure 16: the voltage
// threshold count sweep (1–3).
func BenchmarkFig16ThresholdCounts(b *testing.B) { benchRun(b, experiments.Fig16) }

// BenchmarkFig17PrefetchBuffers regenerates Figure 17: the prefetch-buffer
// size sweep (32/64/128 B).
func BenchmarkFig17PrefetchBuffers(b *testing.B) { benchRun(b, experiments.Fig17) }

// BenchmarkFig18CacheSizes regenerates Figure 18: the cache-size sweep with
// IPEX (256 B – 8 kB).
func BenchmarkFig18CacheSizes(b *testing.B) { benchRun(b, experiments.Fig18) }

// BenchmarkFig19Associativity regenerates Figure 19: the associativity
// sweep (1/2/4/8 ways).
func BenchmarkFig19Associativity(b *testing.B) { benchRun(b, experiments.Fig19) }

// BenchmarkFig20MemorySizes regenerates Figure 20: the main-memory size
// sweep (2–32 MB).
func BenchmarkFig20MemorySizes(b *testing.B) { benchRun(b, experiments.Fig20) }

// BenchmarkFig21NVMTech regenerates Figure 21: the ReRAM/STT-RAM/PCM sweep.
func BenchmarkFig21NVMTech(b *testing.B) { benchRun(b, experiments.Fig21) }

// BenchmarkFig22CapacitorSizes regenerates Figure 22: the capacitor-size
// sweep (0.47–1000 µF).
func BenchmarkFig22CapacitorSizes(b *testing.B) { benchRun(b, experiments.Fig22) }

// BenchmarkFig23PowerTraces regenerates Figure 23: the
// thermal/solar/RFOffice/RFHome sweep.
func BenchmarkFig23PowerTraces(b *testing.B) { benchRun(b, experiments.Fig23) }

// BenchmarkFig24VoltageSteps regenerates Figure 24: the threshold
// adaptation step-size sweep (0.05–0.15 V).
func BenchmarkFig24VoltageSteps(b *testing.B) { benchRun(b, experiments.Fig24) }

// BenchmarkFig25ThrottleRates regenerates Figure 25: the throttle-rate
// trigger sweep (1–20%).
func BenchmarkFig25ThrottleRates(b *testing.B) { benchRun(b, experiments.Fig25) }

// BenchmarkSimulatorThroughput measures the raw simulator speed (committed
// instructions per second) on the default configuration — the figure that
// bounds every sweep above.
func BenchmarkSimulatorThroughput(b *testing.B) {
	trace := GenerateTrace(RFHome, 0, 1)
	cfg := DefaultConfig()
	b.ReportAllocs()
	var insts uint64
	for i := 0; i < b.N; i++ {
		r, err := Run("gsme", 1.0, trace, cfg)
		if err != nil {
			b.Fatal(err)
		}
		insts += r.Insts
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "insts/s")

	// With BENCH_HOTLOOP_JSON set (the Makefile's bench target), persist
	// the hot-loop figures so performance travels with the commit. An
	// existing record is updated in place — its experiment timings and
	// notes (the seed baseline) are preserved.
	if path := os.Getenv("BENCH_HOTLOOP_JSON"); path != "" {
		perRun := insts / uint64(b.N)
		nsPerRun := float64(b.Elapsed().Nanoseconds()) / float64(b.N)

		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if _, err := Run("gsme", 1.0, trace, cfg); err != nil {
			b.Fatal(err)
		}
		runtime.ReadMemStats(&m1)

		rec := benchio.NewRecord()
		if old, err := benchio.Read(path); err == nil {
			rec.Scale = old.Scale
			rec.Experiments = old.Experiments
			rec.Notes = old.Notes
		}
		rec.Hotloop = &benchio.Hotloop{
			App: "gsme", Scale: 1, Insts: perRun,
			NsPerInst:    nsPerRun / float64(perRun),
			InstsPerSec:  float64(insts) / b.Elapsed().Seconds(),
			AllocsPerRun: int64(m1.Mallocs - m0.Mallocs),
			BytesPerRun:  int64(m1.TotalAlloc - m0.TotalAlloc),
		}
		if err := benchio.Write(path, rec); err != nil {
			b.Logf("writing %s: %v", path, err)
		}
	}
}
