package ipex

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	trace := GenerateTrace(RFHome, 20000, 1)
	base, err := Run("fft", 0.05, trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run("fft", 0.05, trace, DefaultConfig().WithIPEX())
	if err != nil {
		t.Fatal(err)
	}
	if !base.Completed || !with.Completed {
		t.Fatal("runs did not complete")
	}
	s := Speedup(base, with)
	if s < 0.5 || s > 2 {
		t.Errorf("implausible IPEX speedup %v", s)
	}
}

func TestWorkloadsList(t *testing.T) {
	if len(Workloads()) != 20 {
		t.Errorf("Workloads() = %d names", len(Workloads()))
	}
	if _, err := NewWorkload("nosuch", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunWorkloadCustomGenerator(t *testing.T) {
	wl, err := NewWorkload("qsort", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunWorkload(wl, GenerateTrace(Solar, 20000, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.App != "qsort" {
		t.Errorf("App = %q", r.App)
	}
}

func TestLoadTrace(t *testing.T) {
	tr, err := LoadTrace("log", strings.NewReader("0.001\n0.002\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 2 {
		t.Errorf("samples = %d", len(tr.Samples))
	}
}

func TestOverheadExported(t *testing.T) {
	r := Overhead(2)
	if r.TotalBits != 198 {
		t.Errorf("TotalBits = %d", r.TotalBits)
	}
}

func TestNVMForExported(t *testing.T) {
	p := NVMFor(PCM, 16<<20)
	if p.Tech != PCM {
		t.Errorf("tech = %v", p.Tech)
	}
}

func TestSpeedupZeroGuard(t *testing.T) {
	if Speedup(Result{Cycles: 10}, Result{}) != 0 {
		t.Error("zero-cycle divisor not guarded")
	}
}

func TestExperimentReexports(t *testing.T) {
	o := ExperimentOptions{Scale: 0.02, Apps: []string{"fft"}}
	r, err := Fig04(o)
	if err != nil || len(r.Points) == 0 {
		t.Fatalf("Fig04: %v", err)
	}
	f2, err := Fig02(o)
	if err != nil || len(f2.Rows) != 1 {
		t.Fatalf("Fig02: %v", err)
	}
}
