package ipex

import (
	"math"
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	trace := GenerateTrace(RFHome, 20000, 1)
	base, err := Run("fft", 0.05, trace, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run("fft", 0.05, trace, DefaultConfig().WithIPEX())
	if err != nil {
		t.Fatal(err)
	}
	if !base.Completed || !with.Completed {
		t.Fatal("runs did not complete")
	}
	s := Speedup(base, with)
	if s < 0.5 || s > 2 {
		t.Errorf("implausible IPEX speedup %v", s)
	}
}

func TestWorkloadsList(t *testing.T) {
	if len(Workloads()) != 20 {
		t.Errorf("Workloads() = %d names", len(Workloads()))
	}
	if _, err := NewWorkload("nosuch", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunWorkloadCustomGenerator(t *testing.T) {
	wl, err := NewWorkload("qsort", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunWorkload(wl, GenerateTrace(Solar, 20000, 2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.App != "qsort" {
		t.Errorf("App = %q", r.App)
	}
}

func TestLoadTrace(t *testing.T) {
	tr, err := LoadTrace("log", strings.NewReader("0.001\n0.002\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 2 {
		t.Errorf("samples = %d", len(tr.Samples))
	}
}

func TestOverheadExported(t *testing.T) {
	r := Overhead(2)
	if r.TotalBits != 198 {
		t.Errorf("TotalBits = %d", r.TotalBits)
	}
}

func TestNVMForExported(t *testing.T) {
	p := NVMFor(PCM, 16<<20)
	if p.Tech != PCM {
		t.Errorf("tech = %v", p.Tech)
	}
}

func TestSpeedupZeroGuard(t *testing.T) {
	if Speedup(Result{Cycles: 10}, Result{}) != 0 {
		t.Error("zero-cycle divisor not guarded")
	}
}

// TestRunRejectsBadInputs pins the API-boundary contract: invalid workloads
// and configurations come back as descriptive errors, never panics.
func TestRunRejectsBadInputs(t *testing.T) {
	trace := GenerateTrace(RFHome, 20000, 1)
	cases := []struct {
		name string
		app  string
		sc   float64
		mut  func(*Config)
		want string // substring of the error
	}{
		{"unknown app", "nosuch", 1, nil, "nosuch"},
		{"NaN scale", "fft", math.NaN(), nil, "scale"},
		{"Inf scale", "fft", math.Inf(1), nil, "scale"},
		{"NaN capacitance", "fft", 0.05,
			func(c *Config) { c.Capacitor.CapacitanceFarads = math.NaN() }, "capacitance"},
		{"negative capacitance", "fft", 0.05,
			func(c *Config) { c.Capacitor.CapacitanceFarads = -1 }, "capacitance"},
		{"NaN threshold voltage", "fft", 0.05,
			func(c *Config) { c.Capacitor.Von = math.NaN() }, "finite"},
		{"zero NVM", "fft", 0.05,
			func(c *Config) { c.NVM.SizeBytes = 0 }, "NVM size"},
		{"degree too small", "fft", 0.05,
			func(c *Config) { c.InitialDegree = 0 }, "degree"},
		{"degree too large", "fft", 0.05,
			func(c *Config) { c.InitialDegree = MaxPrefetchDegree + 1 }, "degree"},
		{"NaN IPEX step", "fft", 0.05,
			func(c *Config) { *c = c.WithIPEX(); c.IPEX.StepV = math.NaN() }, "step"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			_, err := Run(tc.app, tc.sc, trace, cfg)
			if err == nil {
				t.Fatal("invalid input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestEventTracerAndMetricsExported exercises the public tracing surface
// end to end: events stream as JSONL and the registry matches the Result.
func TestEventTracerAndMetricsExported(t *testing.T) {
	var sb strings.Builder
	cfg := DefaultConfig()
	cfg.Tracer = NewEventTracer(&sb)
	cfg.Metrics = NewMetricsRegistry()
	r, err := Run("fft", 0.05, GenerateTrace(RFHome, 20000, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace stream has %d lines", len(lines))
	}
	if uint64(len(lines)) != cfg.Tracer.Events() {
		t.Errorf("Events() = %d, stream has %d lines", cfg.Tracer.Events(), len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("line is not a JSON object: %q", l)
		}
	}
	if got := cfg.Metrics.Counter("run.insts").Load(); got != r.Insts {
		t.Errorf("run.insts metric = %d, Result.Insts = %d", got, r.Insts)
	}
}

func TestExperimentReexports(t *testing.T) {
	o := ExperimentOptions{Scale: 0.02, Apps: []string{"fft"}}
	r, err := Fig04(o)
	if err != nil || len(r.Points) == 0 {
		t.Fatalf("Fig04: %v", err)
	}
	f2, err := Fig02(o)
	if err != nil || len(f2.Rows) != 1 {
		t.Fatalf("Fig02: %v", err)
	}
}
