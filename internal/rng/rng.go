// Package rng provides a tiny, fully deterministic pseudo-random number
// generator (splitmix64 seeding a xorshift64* core) used by the synthetic
// power-trace and workload generators.
//
// Determinism across platforms and Go versions is a correctness requirement
// here — the paper's methodology replays the exact same input energy and the
// exact same access stream for every configuration — so the simulator does
// not depend on math/rand's sequence stability.
package rng

// RNG is a deterministic generator. The zero value is NOT valid; use New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical sequences forever.
func New(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 scrambling so that nearby seeds yield unrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	r.state = z ^ (z >> 31)
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next 64 random bits (xorshift64*).
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns an approximately standard-normal value using the sum of 12
// uniforms (Irwin–Hall); cheap and deterministic, accurate enough for the
// noise terms the generators need.
func (r *RNG) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}
