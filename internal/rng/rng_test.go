package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	f := func(s1, s2 uint64) bool {
		if s1 == s2 {
			return true
		}
		a, b := New(s1), New(s2)
		// Two different seeds agreeing on 4 consecutive outputs would be
		// astronomically unlikely for a healthy generator.
		same := 0
		for i := 0; i < 4; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		return same < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNearbySeedsUncorrelated(t *testing.T) {
	// splitmix64 scrambling should decorrelate adjacent seeds.
	a, b := New(1), New(2)
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64()>>63 == b.Uint64()>>63 {
			matches++
		}
	}
	if matches < 400 || matches > 600 {
		t.Errorf("adjacent seeds look correlated: %d/1000 top-bit matches", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("Intn(10) never produced %d in 10000 draws", i)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(11)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a stuck generator")
	}
}
