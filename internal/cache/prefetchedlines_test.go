package cache

import (
	"testing"
	"testing/quick"

	"ipex/internal/energy"
)

// Tests for the prefetch-into-cache organization (FillPrefetched and the
// prefetched-line outcome statistics).

func TestFillPrefetchedBasic(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.FillPrefetched(0x100)
	if !c.Contains(0x100) {
		t.Fatal("prefetched block not resident")
	}
	if c.DirtyBlocks() != 0 {
		t.Error("prefetched fill must be clean")
	}
	s := c.Stats()
	if s.PrefetchedUseful != 0 || s.PrefetchedUseless != 0 {
		t.Errorf("fresh prefetched line already classified: %+v", s)
	}
}

func TestPrefetchedLineUsefulOnFirstHit(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.FillPrefetched(0x100)
	if !c.Access(0x104, false) {
		t.Fatal("prefetched block did not serve the demand hit")
	}
	s := c.Stats()
	if s.PrefetchedUseful != 1 {
		t.Errorf("useful = %d, want 1", s.PrefetchedUseful)
	}
	// Only the FIRST hit classifies.
	c.Access(0x108, false)
	if c.Stats().PrefetchedUseful != 1 {
		t.Error("second hit reclassified the line")
	}
}

func TestPrefetchedLineUselessOnEviction(t *testing.T) {
	c := newCache(t, 2048, 4)
	// Fill a set's 4 ways: the prefetched line first (it becomes LRU).
	c.FillPrefetched(0x0)
	for i := 1; i < 4; i++ {
		c.Fill(uint64(i)*0x200, false)
	}
	c.Fill(4*0x200, false) // evicts the unused prefetched line
	s := c.Stats()
	if s.PrefetchedUseless != 1 || s.PrefetchedWiped != 0 {
		t.Errorf("eviction classification wrong: %+v", s)
	}
}

func TestPrefetchedLineWipedOnOutage(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.FillPrefetched(0x100)
	c.FillPrefetched(0x200)
	c.Access(0x100, false) // one used
	c.Wipe()
	s := c.Stats()
	if s.PrefetchedUseful != 1 {
		t.Errorf("useful = %d", s.PrefetchedUseful)
	}
	if s.PrefetchedUseless != 1 || s.PrefetchedWiped != 1 {
		t.Errorf("wipe classification wrong: %+v", s)
	}
}

func TestPrefetchedRefillDoesNotDowngrade(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.Fill(0x100, true) // demand line, dirty
	c.FillPrefetched(0x100)
	if c.DirtyBlocks() != 1 {
		t.Error("prefetched refill cleaned a dirty demand line")
	}
	c.Wipe()
	if c.Stats().PrefetchedWiped != 0 {
		t.Error("demand line counted as wiped prefetch after redundant refill")
	}
}

func TestDemandFillClearsPrefetchFlag(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.FillPrefetched(0x100)
	// A demand write to the same block (hit path) uses it.
	c.Access(0x100, true)
	c.Wipe()
	s := c.Stats()
	if s.PrefetchedWiped != 0 {
		t.Error("used prefetched line counted as wiped")
	}
}

func TestDrainPrefetchStats(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.FillPrefetched(0x100)
	c.FillPrefetched(0x200)
	c.Access(0x200, false)
	c.DrainPrefetchStats()
	s := c.Stats()
	if s.PrefetchedUseful != 1 || s.PrefetchedUseless != 1 {
		t.Errorf("drain classification wrong: %+v", s)
	}
	if s.PrefetchedWiped != 0 {
		t.Error("drain counted as wiped")
	}
	// Lines stay valid and are not double-classified later.
	if !c.Contains(0x100) {
		t.Error("drain invalidated lines")
	}
	c.Wipe()
	if c.Stats().PrefetchedUseless != 1 {
		t.Error("wipe double-classified a drained line")
	}
}

// Property: prefetched-line classification is complete and non-duplicating
// under arbitrary operation sequences.
func TestPrefetchedClassificationInvariant(t *testing.T) {
	type op struct {
		Kind uint8
		Addr uint16
	}
	f := func(ops []op) bool {
		c, err := New(energy.CacheFor(512, 2))
		if err != nil {
			return false
		}
		prefetchedFills := uint64(0)
		for _, o := range ops {
			addr := uint64(o.Addr) % 4096
			switch o.Kind % 4 {
			case 0:
				if !c.Contains(addr) {
					c.FillPrefetched(addr)
					prefetchedFills++
				}
			case 1:
				c.Access(addr, o.Kind%8 >= 4)
			case 2:
				c.Fill(addr, false)
			case 3:
				c.Wipe()
			}
		}
		c.DrainPrefetchStats()
		s := c.Stats()
		return s.PrefetchedUseful+s.PrefetchedUseless == prefetchedFills &&
			s.PrefetchedWiped <= s.PrefetchedUseless
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
