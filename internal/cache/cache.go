// Package cache implements the volatile SRAM caches of the NVP: small
// set-associative write-back caches with LRU replacement, plus the per-cache
// prefetch buffer that holds prefetched blocks so they do not pollute the
// cache (the NVSRAMCache baseline organization the paper evaluates).
//
// Caches are volatile: a power failure wipes every block. The dirty blocks
// are JIT-checkpointed to NVM right before the outage, so the simulator asks
// the cache for its dirty count at backup time and wipes it at reboot.
package cache

import (
	"fmt"

	"ipex/internal/energy"
	"ipex/internal/trace"
)

// Stats counts cache activity.
type Stats struct {
	Accesses       uint64 // demand accesses (reads + writes)
	Misses         uint64 // demand misses (after prefetch-buffer lookup)
	BufHits        uint64 // demand misses served by the prefetch buffer
	Evictions      uint64
	DirtyEvictions uint64
	// Prefetched-line outcomes (prefetch-into-cache mode): a line filled
	// by FillPrefetched is "useful" on its first demand hit and "useless"
	// if evicted or wiped before one. PrefetchedWiped counts the subset
	// of useless lines lost to a power failure — the waste IPEX targets.
	PrefetchedUseful  uint64
	PrefetchedUseless uint64
	PrefetchedWiped   uint64
}

// MissRate returns Misses/Accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// pfUnused marks a prefetched line that has not yet served a demand
	// access; cleared on first hit, classified on eviction/wipe.
	pfUnused bool
	used     uint64 // LRU timestamp
}

// Cache is one set-associative write-back SRAM cache.
type Cache struct {
	params energy.CacheParams
	// lines is the flat line array: set s occupies
	// lines[s*ways : (s+1)*ways]. One flat slice instead of a [][]line
	// keeps the per-access probe to a single dependent load — the set
	// lookup is an index computation, not a slice-header fetch.
	lines   []line
	ways    int
	nsets   int
	blockLg uint
	setLg   uint // log2(nsets), precomputed for the per-access tag shift
	setMask uint64
	// hint[set] is the way of that set's last hit or fill. Demand streams
	// re-touch the same line often, so probing it first usually resolves
	// the tag match in one compare instead of a full way scan. Purely a
	// search-order optimization: a set holds at most one line per tag, so
	// hit/miss outcomes, LRU updates, and statistics are unchanged.
	hint  []uint32
	tick  uint64
	stats Stats
	// tr, when non-nil, receives prefetched-line lifecycle events
	// (first use, wiped by outage); side labels them. Both emission
	// sites live on already-rare branches, so tracing off costs nothing.
	tr   *trace.Tracer
	side string
}

// New builds a cache from the given geometry. Size must be a multiple of
// ways*blockSize and the set count a power of two.
func New(params energy.CacheParams) (*Cache, error) {
	if params.BlockSize <= 0 || params.Ways <= 0 || params.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: invalid geometry %+v", params)
	}
	blocks := params.SizeBytes / params.BlockSize
	if blocks*params.BlockSize != params.SizeBytes {
		return nil, fmt.Errorf("cache: size %dB not a multiple of block size %dB", params.SizeBytes, params.BlockSize)
	}
	if blocks%params.Ways != 0 {
		return nil, fmt.Errorf("cache: %d blocks not divisible by %d ways", blocks, params.Ways)
	}
	nsets := blocks / params.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", nsets)
	}
	blockLg := uint(0)
	for 1<<blockLg < params.BlockSize {
		blockLg++
	}
	if 1<<blockLg != params.BlockSize {
		return nil, fmt.Errorf("cache: block size %d is not a power of two", params.BlockSize)
	}
	return &Cache{
		params:  params,
		lines:   make([]line, nsets*params.Ways),
		ways:    params.Ways,
		nsets:   nsets,
		blockLg: blockLg,
		setLg:   uintLog2(nsets),
		setMask: uint64(nsets - 1),
		hint:    make([]uint32, nsets),
	}, nil
}

// MustNew is New for geometries known to be valid.
func MustNew(params energy.CacheParams) *Cache {
	c, err := New(params)
	if err != nil {
		panic(err)
	}
	return c
}

// Params returns the cache geometry and energy parameters.
func (c *Cache) Params() energy.CacheParams { return c.params }

// SetTracer attaches an event tracer; side ("icache"/"dcache") labels the
// emitted events. A nil tracer disables emission.
func (c *Cache) SetTracer(t *trace.Tracer, side string) {
	c.tr = t
	c.side = side
}

// blockOf reconstructs the block address of the line at (set, way) — the
// inverse of index(), used only on trace-emission paths.
func (c *Cache) blockOf(set int, l *line) uint64 {
	return (l.tag<<c.setLg | uint64(set)) << c.blockLg
}

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockAddr returns the block-aligned address containing addr.
func (c *Cache) BlockAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.params.BlockSize) - 1)
}

func (c *Cache) index(block uint64) (set int, tag uint64) {
	b := block >> c.blockLg
	return int(b & c.setMask), b >> c.setLg
}

func uintLog2(n int) uint {
	lg := uint(0)
	for 1<<lg < n {
		lg++
	}
	return lg
}

// Access performs a demand access to addr. It returns whether it hit. On a
// write hit the line is marked dirty. A miss does NOT fill the cache; the
// caller decides how the fill happens (from the prefetch buffer or NVM) and
// calls Fill.
//
// The body is just the hinted-way probe — small enough to inline into the
// simulator's hot loops, so the dominant re-touch-the-same-line case costs
// no call at all; everything else lives in accessSlow. index(addr) needs no
// prior block alignment: the block-offset bits are shifted away anyway.
func (c *Cache) Access(addr uint64, write bool) bool {
	c.stats.Accesses++
	c.tick++
	set, tag := c.index(addr)
	h := int(c.hint[set])
	if l := &c.lines[set*c.ways+h]; l.valid && l.tag == tag && !l.pfUnused {
		l.used = c.tick
		if write {
			l.dirty = true
		}
		return true
	}
	// The hinted way either missed or holds a prefetched line awaiting its
	// first-use classification; both are rare enough for the out-of-line
	// path.
	return c.accessSlow(set, tag, h, write)
}

// accessSlow finishes an access the inlined hinted probe could not: it
// re-examines the hinted way (it may have matched but needed first-use
// bookkeeping), then scans the remaining ways.
func (c *Cache) accessSlow(set int, tag uint64, h int, write bool) bool {
	lines := c.lines[set*c.ways : set*c.ways+c.ways]
	if l := &lines[h]; l.valid && l.tag == tag {
		if c.touch(l, write) && c.tr != nil {
			c.traceFirstUse(set, l)
		}
		return true
	}
	for i := range lines {
		if i == h {
			continue
		}
		l := &lines[i]
		if l.valid && l.tag == tag {
			c.hint[set] = uint32(i)
			if c.touch(l, write) && c.tr != nil {
				c.traceFirstUse(set, l)
			}
			return true
		}
	}
	c.stats.Misses++
	return false
}

// touch applies a demand hit to a resident line and reports whether this
// was the first use of a prefetched line. Emission lives in the caller so
// touch stays within the inlining budget — it runs on every cache hit.
func (c *Cache) touch(l *line, write bool) bool {
	l.used = c.tick
	if write {
		l.dirty = true
	}
	if l.pfUnused {
		l.pfUnused = false
		c.stats.PrefetchedUseful++
		return true
	}
	return false
}

// traceFirstUse emits the first-use event for a prefetched line; only
// reached with a tracer attached.
func (c *Cache) traceFirstUse(set int, l *line) {
	c.tr.Emit(trace.Event{Kind: trace.KindPrefetchFirstUse,
		Side: c.side, Block: c.blockOf(set, l), Detail: "cache"})
}

// NoteBufHit records that the miss just reported by Access was served from
// the prefetch buffer (Stats bookkeeping only).
func (c *Cache) NoteBufHit() { c.stats.BufHits++ }

// Contains reports whether the block containing addr is present, without
// touching statistics or LRU state.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	lines := c.lines[set*c.ways : set*c.ways+c.ways]
	if l := &lines[c.hint[set]]; l.valid && l.tag == tag {
		return true
	}
	for i := range lines {
		l := &lines[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts the block containing addr, evicting the LRU line of its set
// if needed. It returns whether a dirty victim was evicted (the caller must
// write it back to NVM). If write is true the new line starts dirty.
func (c *Cache) Fill(addr uint64, write bool) (evictedDirty bool) {
	return c.fill(addr, write, false)
}

// FillPrefetched inserts a prefetched block (clean, marked unused) — the
// prefetch-into-cache organization of the paper's Figures 5/6, where a
// power failure wipes not-yet-used prefetched blocks out of the cache. The
// return value reports a dirty eviction exactly like Fill.
func (c *Cache) FillPrefetched(addr uint64) (evictedDirty bool) {
	return c.fill(addr, false, true)
}

func (c *Cache) fill(addr uint64, write, prefetched bool) (evictedDirty bool) {
	c.tick++
	set, tag := c.index(addr)
	lines := c.lines[set*c.ways : set*c.ways+c.ways]
	victim := 0
	for i := range lines {
		l := &lines[i]
		if l.valid && l.tag == tag {
			// Already present (e.g. filled by an overlapping path); just
			// refresh. A prefetched refill never downgrades a demand line
			// to unused.
			c.hint[set] = uint32(i)
			l.used = c.tick
			if write {
				l.dirty = true
			}
			return false
		}
		if !l.valid {
			victim = i
			break
		}
		if lines[i].used < lines[victim].used {
			victim = i
		}
	}
	v := &lines[victim]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.DirtyEvictions++
			evictedDirty = true
		}
		if v.pfUnused {
			c.stats.PrefetchedUseless++
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, pfUnused: prefetched, used: c.tick}
	c.hint[set] = uint32(victim)
	return evictedDirty
}

// DirtyCount returns the number of dirty lines currently resident without
// allocating — what the outage path needs when only the checkpoint size
// matters (ideal mode, telemetry).
func (c *Cache) DirtyCount() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			n++
		}
	}
	return n
}

// DirtyBlocks returns the number of dirty lines currently resident; the JIT
// checkpoint must write each of them to NVM.
func (c *Cache) DirtyBlocks() int { return c.DirtyCount() }

// ValidBlocks returns the number of valid lines currently resident.
func (c *Cache) ValidBlocks() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// DirtyAddrs returns the block addresses of all dirty lines; the JIT
// checkpoint writes each to NVM and the reboot path restores them.
func (c *Cache) DirtyAddrs() []uint64 {
	return c.DirtyAddrsAppend(nil)
}

// DirtyAddrsAppend appends the dirty block addresses to dst (in the same
// set-major order DirtyAddrs uses) and returns the extended slice. Passing
// a reused scratch buffer makes the per-outage checkpoint allocation-free.
func (c *Cache) DirtyAddrsAppend(dst []uint64) []uint64 {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			si := i / c.ways
			block := (c.lines[i].tag<<c.setLg | uint64(si)) << c.blockLg
			dst = append(dst, block)
		}
	}
	return dst
}

// AppendResidentBlocks appends the block addresses of every valid line to
// dst (set-major order) and returns the extended slice. The attribution
// profiler snapshots a cache with it right before an outage wipe to learn
// which later demand misses are re-execution backfill.
func (c *Cache) AppendResidentBlocks(dst []uint64) []uint64 {
	for i := range c.lines {
		if c.lines[i].valid {
			dst = append(dst, c.blockOf(i/c.ways, &c.lines[i]))
		}
	}
	return dst
}

// DrainPrefetchStats classifies still-resident prefetched-unused lines as
// useless (end-of-run accounting; they are not wiped). Lines stay valid.
func (c *Cache) DrainPrefetchStats() {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].pfUnused {
			c.lines[i].pfUnused = false
			c.stats.PrefetchedUseless++
		}
	}
}

// CleanDirty marks every line clean; called after a JIT checkpoint has
// persisted the dirty blocks.
func (c *Cache) CleanDirty() {
	for i := range c.lines {
		c.lines[i].dirty = false
	}
}

// Reset restores the cache to its just-constructed state — every line
// invalid, hints and the LRU clock zeroed, statistics cleared — without
// touching the backing arrays. The run arena recycles caches of identical
// geometry with it, so a steady-state run allocates nothing. The tracer
// attachment is cleared too; the next run re-attaches its own (or none).
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.hint {
		c.hint[i] = 0
	}
	c.tick = 0
	c.stats = Stats{}
	c.tr = nil
	c.side = ""
}

// Wipe invalidates every line: the effect of a power failure on volatile
// SRAM. Prefetched-but-unused lines lost here are the energy waste IPEX
// exists to prevent; they are counted as both useless and wiped.
func (c *Cache) Wipe() {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].pfUnused {
			c.stats.PrefetchedUseless++
			c.stats.PrefetchedWiped++
			if c.tr != nil {
				c.tr.Emit(trace.Event{Kind: trace.KindPrefetchWipe,
					Side: c.side, Block: c.blockOf(i/c.ways, &c.lines[i]), Detail: "cache"})
			}
		}
		c.lines[i] = line{}
	}
}
