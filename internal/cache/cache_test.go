package cache

import (
	"testing"
	"testing/quick"

	"ipex/internal/energy"
)

func newCache(t *testing.T, size, ways int) *Cache {
	t.Helper()
	c, err := New(energy.CacheFor(size, ways))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []energy.CacheParams{
		{SizeBytes: 0, Ways: 4, BlockSize: 16},
		{SizeBytes: 2048, Ways: 0, BlockSize: 16},
		{SizeBytes: 2048, Ways: 4, BlockSize: 0},
		{SizeBytes: 2047, Ways: 4, BlockSize: 16},       // not block multiple
		{SizeBytes: 2048, Ways: 3, BlockSize: 16},       // blocks not divisible by ways
		{SizeBytes: 2048, Ways: 4, BlockSize: 24},       // block not power of two
		{SizeBytes: 16 * 3 * 4, Ways: 4, BlockSize: 16}, // 3 sets: not power of two
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("geometry %d accepted: %+v", i, p)
		}
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := newCache(t, 2048, 4)
	if c.Access(0x100, false) {
		t.Error("cold access hit")
	}
	c.Fill(0x100, false)
	if !c.Access(0x100, false) {
		t.Error("access after fill missed")
	}
	if !c.Access(0x10f, false) {
		t.Error("same-block access missed")
	}
	if c.Access(0x110, false) {
		t.Error("next-block access hit without fill")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWriteMakesDirty(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.Fill(0x200, false)
	if c.DirtyBlocks() != 0 {
		t.Error("clean fill reported dirty")
	}
	c.Access(0x200, true)
	if c.DirtyBlocks() != 1 {
		t.Errorf("dirty blocks = %d, want 1", c.DirtyBlocks())
	}
	c.Fill(0x300, true)
	if c.DirtyBlocks() != 2 {
		t.Errorf("dirty blocks = %d, want 2", c.DirtyBlocks())
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2kB 4-way, 16B blocks: 32 sets; addresses with the same set index
	// are 512 bytes apart.
	c := newCache(t, 2048, 4)
	addrs := []uint64{0x0, 0x200, 0x400, 0x600, 0x800} // 5 blocks, same set
	for _, a := range addrs[:4] {
		c.Fill(a, false)
	}
	// Touch 0x0 so it becomes MRU; LRU is then 0x200.
	c.Access(0x0, false)
	c.Fill(addrs[4], false)
	if !c.Contains(0x0) {
		t.Error("recently used line evicted")
	}
	if c.Contains(0x200) {
		t.Error("LRU line survived")
	}
	if !c.Contains(0x800) {
		t.Error("filled line absent")
	}
}

func TestFillReportsDirtyEviction(t *testing.T) {
	c := newCache(t, 2048, 4)
	for i := 0; i < 4; i++ {
		c.Fill(uint64(i)*0x200, i == 0) // first one dirty (it is also LRU)
	}
	if evictedDirty := c.Fill(4*0x200, false); !evictedDirty {
		t.Error("dirty LRU eviction not reported")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.DirtyEvictions != 1 {
		t.Errorf("eviction stats: %+v", s)
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.Fill(0x100, false)
	if evicted := c.Fill(0x100, true); evicted {
		t.Error("refilling resident block reported eviction")
	}
	if c.DirtyBlocks() != 1 {
		t.Error("refill with write=true should dirty the line")
	}
	if c.ValidBlocks() != 1 {
		t.Errorf("ValidBlocks = %d, want 1 (no duplicate)", c.ValidBlocks())
	}
}

func TestDirtyAddrsRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		c, err := New(energy.CacheFor(512, 2))
		if err != nil {
			return false
		}
		written := map[uint64]bool{}
		for _, r := range raw {
			addr := uint64(r) * 8
			c.Fill(addr, true)
			written[c.BlockAddr(addr)] = true
		}
		// Every reported dirty address must be block-aligned, resident,
		// and one we actually wrote.
		for _, a := range c.DirtyAddrs() {
			if a != c.BlockAddr(a) {
				return false
			}
			if !c.Contains(a) {
				return false
			}
			if !written[a] {
				return false
			}
		}
		if len(c.DirtyAddrs()) != c.DirtyBlocks() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCleanDirty(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.Fill(0x100, true)
	c.Fill(0x200, true)
	c.CleanDirty()
	if c.DirtyBlocks() != 0 {
		t.Error("CleanDirty left dirty lines")
	}
	if !c.Contains(0x100) || !c.Contains(0x200) {
		t.Error("CleanDirty invalidated lines")
	}
}

func TestWipe(t *testing.T) {
	c := newCache(t, 2048, 4)
	for i := 0; i < 20; i++ {
		c.Fill(uint64(i)*16, i%2 == 0)
	}
	c.Wipe()
	if c.ValidBlocks() != 0 || c.DirtyBlocks() != 0 {
		t.Error("Wipe left valid lines")
	}
	if c.Access(0x0, false) {
		t.Error("access hit after wipe")
	}
}

func TestContainsDoesNotTouchState(t *testing.T) {
	c := newCache(t, 2048, 4)
	c.Fill(0x100, false)
	before := c.Stats()
	c.Contains(0x100)
	c.Contains(0x999)
	if c.Stats() != before {
		t.Error("Contains modified statistics")
	}
}

func TestBlockAddr(t *testing.T) {
	c := newCache(t, 2048, 4)
	if c.BlockAddr(0x123) != 0x120 {
		t.Errorf("BlockAddr(0x123) = %#x", c.BlockAddr(0x123))
	}
	if c.BlockAddr(0x120) != 0x120 {
		t.Error("aligned address changed")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("zero-access miss rate should be 0")
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

func TestDirectMappedCache(t *testing.T) {
	c := newCache(t, 256, 1)
	c.Fill(0x0, false)
	// 256B direct-mapped, 16B blocks: 16 sets; 0x100 conflicts with 0x0.
	c.Fill(0x100, false)
	if c.Contains(0x0) {
		t.Error("direct-mapped conflict did not evict")
	}
	if !c.Contains(0x100) {
		t.Error("new line missing")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	f := func(raw []uint32) bool {
		c, err := New(energy.CacheFor(512, 4))
		if err != nil {
			return false
		}
		for _, r := range raw {
			c.Fill(uint64(r%8192), r%3 == 0)
			if c.ValidBlocks() > 512/16 {
				return false
			}
		}
		return c.DirtyBlocks() <= c.ValidBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDirtyCountAndAppendMatchDirtyAddrs(t *testing.T) {
	c := MustNew(energy.CacheFor(512, 4))
	for i := 0; i < 40; i++ {
		addr := uint64(i * 48)
		if !c.Access(addr, i%3 == 0) {
			c.Fill(addr, i%3 == 0)
		}
	}
	addrs := c.DirtyAddrs()
	if got := c.DirtyCount(); got != len(addrs) {
		t.Errorf("DirtyCount = %d, want %d", got, len(addrs))
	}
	if got := c.DirtyBlocks(); got != len(addrs) {
		t.Errorf("DirtyBlocks = %d, want %d", got, len(addrs))
	}
	scratch := make([]uint64, 0, 8)
	appended := c.DirtyAddrsAppend(scratch[:0])
	if len(appended) != len(addrs) {
		t.Fatalf("DirtyAddrsAppend returned %d addrs, want %d", len(appended), len(addrs))
	}
	for i := range addrs {
		if appended[i] != addrs[i] {
			t.Errorf("addr %d: append order %x differs from DirtyAddrs %x", i, appended[i], addrs[i])
		}
	}
	// Reuse must not allocate once capacity suffices.
	appended = c.DirtyAddrsAppend(appended[:0])
	allocs := testing.AllocsPerRun(100, func() {
		appended = c.DirtyAddrsAppend(appended[:0])
	})
	if allocs != 0 {
		t.Errorf("DirtyAddrsAppend with reused scratch allocates %v per run", allocs)
	}
}
