package cache

import (
	"testing"
	"testing/quick"
)

func TestPBInsertAndLookup(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(0x100, 50)
	e := b.Lookup(0x100)
	if e == nil || e.ReadyAt != 50 || e.Used {
		t.Fatalf("Lookup after Insert = %+v", e)
	}
	if b.Lookup(0x200) != nil {
		t.Error("Lookup of absent block succeeded")
	}
}

func TestPBFIFOEviction(t *testing.T) {
	b := NewPrefetchBuffer(2)
	b.Insert(0x100, 0)
	b.Insert(0x200, 0)
	b.Insert(0x300, 0) // evicts 0x100 (oldest)
	if b.Lookup(0x100) != nil {
		t.Error("oldest entry survived FIFO eviction")
	}
	if b.Lookup(0x200) == nil || b.Lookup(0x300) == nil {
		t.Error("newer entries missing")
	}
	s := b.Stats()
	if s.Inserted != 3 || s.UselessEvicted != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPBDuplicateInsertIgnored(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(0x100, 10)
	b.Insert(0x100, 99)
	if b.Stats().Inserted != 1 {
		t.Errorf("duplicate insert counted: %+v", b.Stats())
	}
	if e := b.Lookup(0x100); e.ReadyAt != 10 {
		t.Errorf("duplicate insert overwrote ReadyAt: %d", e.ReadyAt)
	}
}

func TestPBTakeMarksUseful(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(0x100, 0)
	b.Take(0x100)
	if b.Lookup(0x100) != nil {
		t.Error("Take left the entry resident")
	}
	s := b.Stats()
	if s.UsefulEvicted != 1 || s.UselessEvicted != 0 {
		t.Errorf("stats after Take = %+v", s)
	}
	// Taking an absent block is a no-op.
	b.Take(0x999)
	if b.Stats().UsefulEvicted != 1 {
		t.Error("Take of absent block changed stats")
	}
}

func TestPBDropMarksUseless(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(0x100, 0)
	b.Drop(0x100)
	s := b.Stats()
	if s.UselessEvicted != 1 || s.UsefulEvicted != 0 {
		t.Errorf("stats after Drop = %+v", s)
	}
}

func TestPBWipeClassifiesAndCountsWiped(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(0x100, 0)
	b.Insert(0x200, 0)
	b.Take(0x100) // used and gone
	b.Insert(0x300, 0)
	b.Wipe()
	s := b.Stats()
	if s.UsefulEvicted != 1 {
		t.Errorf("useful = %d, want 1", s.UsefulEvicted)
	}
	if s.UselessEvicted != 2 || s.WipedUnused != 2 {
		t.Errorf("useless = %d wiped = %d, want 2/2", s.UselessEvicted, s.WipedUnused)
	}
	if b.Lookup(0x200) != nil || b.Lookup(0x300) != nil {
		t.Error("Wipe left entries resident")
	}
}

func TestPBDrainCoversResidents(t *testing.T) {
	b := NewPrefetchBuffer(4)
	b.Insert(0x100, 0)
	b.Insert(0x200, 0)
	b.Drain()
	s := b.Stats()
	if s.UsefulEvicted+s.UselessEvicted != s.Inserted {
		t.Errorf("after Drain, classified (%d) != inserted (%d)",
			s.UsefulEvicted+s.UselessEvicted, s.Inserted)
	}
	if s.WipedUnused != 0 {
		t.Error("Drain must not count as wiped")
	}
}

func TestPBMinimumSize(t *testing.T) {
	b := NewPrefetchBuffer(0)
	if b.Size() != 1 {
		t.Errorf("Size = %d, want clamped to 1", b.Size())
	}
}

// Property: every inserted block is eventually classified exactly once as
// useful or useless; the accounting identity Inserted == Useful + Useless
// holds after Drain, for any operation sequence.
func TestPBAccountingInvariant(t *testing.T) {
	type op struct {
		Kind  uint8
		Block uint16
	}
	f := func(ops []op, sizeRaw uint8) bool {
		b := NewPrefetchBuffer(int(sizeRaw%8) + 1)
		for _, o := range ops {
			block := uint64(o.Block) &^ 15
			switch o.Kind % 4 {
			case 0:
				b.Insert(block, 0)
			case 1:
				b.Take(block)
			case 2:
				b.Drop(block)
			case 3:
				b.Wipe()
			}
		}
		b.Drain()
		s := b.Stats()
		return s.UsefulEvicted+s.UselessEvicted == s.Inserted &&
			s.WipedUnused <= s.UselessEvicted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
