package cache

import "ipex/internal/trace"

// PrefetchBuffer holds prefetched blocks outside the cache proper so that
// speculative fills do not pollute it (the organization the paper's baseline
// uses: "prefetched blocks are placed in prefetcher buffers"). Entries are
// block-sized; replacement is FIFO. An entry is "pending" until its NVM read
// completes at ReadyAt, which lets the miss path detect an in-flight
// prefetch for the same block and wait instead of issuing a duplicate NVM
// request (§5.1 of the paper).
type PrefetchBuffer struct {
	entries []PBEntry
	next    int // FIFO insertion cursor
	stats   PBStats
	// tr, when non-nil, receives outage-wipe events for buffered
	// prefetches; side labels them. First-use events are emitted by the
	// caller on the buffer-hit path, keeping Take inlinable.
	tr   *trace.Tracer
	side string
}

// PBEntry is one prefetch-buffer slot.
type PBEntry struct {
	Block   uint64
	ReadyAt uint64 // absolute cycle when the NVM read completes
	Valid   bool
	Used    bool // the block served at least one demand access
}

// PBStats counts prefetch-buffer outcomes. "Useful" and "useless" follow the
// paper's accuracy definition: a prefetched block is useful if it receives a
// demand hit before it is evicted or wiped by an outage.
type PBStats struct {
	Inserted       uint64 // prefetched blocks placed in the buffer
	UsefulEvicted  uint64 // evicted or wiped after serving a demand access
	UselessEvicted uint64 // evicted or wiped without ever being used
	// WipedUnused counts the subset of UselessEvicted lost to a power
	// failure before their first use — the waste IPEX exists to prevent.
	WipedUnused uint64
}

// NewPrefetchBuffer returns a buffer with n block entries (paper default 4).
func NewPrefetchBuffer(n int) *PrefetchBuffer {
	if n < 1 {
		n = 1
	}
	return &PrefetchBuffer{entries: make([]PBEntry, n)}
}

// Size returns the entry count.
func (b *PrefetchBuffer) Size() int { return len(b.entries) }

// SetTracer attaches an event tracer; side ("icache"/"dcache") labels the
// emitted events. A nil tracer disables emission.
func (b *PrefetchBuffer) SetTracer(t *trace.Tracer, side string) {
	b.tr = t
	b.side = side
}

// Stats returns a copy of the outcome counters. Note that blocks still
// resident are not yet classified; call Drain first for end-of-run totals.
func (b *PrefetchBuffer) Stats() PBStats { return b.stats }

// Lookup finds the entry holding block, or nil.
func (b *PrefetchBuffer) Lookup(block uint64) *PBEntry {
	for i := range b.entries {
		e := &b.entries[i]
		if e.Valid && e.Block == block {
			return e
		}
	}
	return nil
}

// Insert places a prefetched block with the given completion time, evicting
// the oldest entry (FIFO). Inserting a block already present refreshes
// nothing and is ignored.
func (b *PrefetchBuffer) Insert(block, readyAt uint64) {
	if b.Lookup(block) != nil {
		return
	}
	e := &b.entries[b.next]
	if e.Valid {
		b.classify(*e)
	}
	*e = PBEntry{Block: block, ReadyAt: readyAt, Valid: true}
	b.next = (b.next + 1) % len(b.entries)
	b.stats.Inserted++
}

// Take removes block from the buffer (after it has been promoted into the
// cache by a demand access) and records it as useful.
func (b *PrefetchBuffer) Take(block uint64) {
	for i := range b.entries {
		e := &b.entries[i]
		if e.Valid && e.Block == block {
			e.Used = true
			b.classify(*e)
			*e = PBEntry{}
			return
		}
	}
}

// Drop removes block from the buffer without marking it used: the demand
// path bypassed it (duplicate-request ablation), so the prefetch ends its
// life wasted.
func (b *PrefetchBuffer) Drop(block uint64) {
	for i := range b.entries {
		e := &b.entries[i]
		if e.Valid && e.Block == block {
			b.classify(*e)
			*e = PBEntry{}
			return
		}
	}
}

// Wipe invalidates the whole buffer (power failure), classifying every
// resident block: any unused block becomes a useless prefetch — this is
// exactly the energy-waste mechanism IPEX targets.
func (b *PrefetchBuffer) Wipe() {
	for i := range b.entries {
		if b.entries[i].Valid {
			if !b.entries[i].Used {
				b.stats.WipedUnused++
				if b.tr != nil {
					b.tr.Emit(trace.Event{Kind: trace.KindPrefetchWipe,
						Side: b.side, Block: b.entries[i].Block, Detail: "buffer"})
				}
			}
			b.classify(b.entries[i])
			b.entries[i] = PBEntry{}
		}
	}
	b.next = 0
}

// Reset restores the buffer to its just-constructed state (all slots
// empty, statistics cleared, tracer detached) without reallocating the
// entry array; the run arena recycles buffers of identical depth with it.
func (b *PrefetchBuffer) Reset() {
	for i := range b.entries {
		b.entries[i] = PBEntry{}
	}
	b.next = 0
	b.stats = PBStats{}
	b.tr = nil
	b.side = ""
}

// Drain classifies all still-resident blocks without invalidating them;
// call once at end of run so Stats covers every inserted block.
func (b *PrefetchBuffer) Drain() {
	for i := range b.entries {
		if b.entries[i].Valid {
			b.classify(b.entries[i])
			b.entries[i].Valid = false
		}
	}
}

func (b *PrefetchBuffer) classify(e PBEntry) {
	if e.Used {
		b.stats.UsefulEvicted++
	} else {
		b.stats.UselessEvicted++
	}
}
