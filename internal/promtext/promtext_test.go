package promtext

import (
	"math"
	"strings"
	"testing"

	"ipex/internal/trace"
)

const goodScrape = `# HELP ipex_requests total requests
# TYPE ipex_requests counter
ipex_requests 42
# HELP ipex_depth queue depth
# TYPE ipex_depth gauge
ipex_depth 3
# HELP ipex_lat_seconds request latency
# TYPE ipex_lat_seconds histogram
ipex_lat_seconds_bucket{le="0.01"} 2
ipex_lat_seconds_bucket{le="0.1"} 5
ipex_lat_seconds_bucket{le="+Inf"} 6
ipex_lat_seconds_sum 1.5
ipex_lat_seconds_count 6
`

func TestParseGood(t *testing.T) {
	e, err := Parse(goodScrape)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Families) != 3 {
		t.Fatalf("parsed %d families, want 3", len(e.Families))
	}
	f := e.Family("ipex_requests")
	if f == nil || f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != 42 {
		t.Fatalf("ipex_requests family parsed wrong: %+v", f)
	}
	h := e.Family("ipex_lat_seconds")
	if h == nil || h.Type != "histogram" || len(h.Samples) != 5 {
		t.Fatalf("histogram family parsed wrong: %+v", h)
	}
	if errs := Lint(goodScrape, "ipex_"); len(errs) != 0 {
		t.Fatalf("clean scrape linted dirty: %v", errs)
	}
}

func TestParseLabels(t *testing.T) {
	e, err := Parse("# TYPE ipex_up gauge\nipex_up{worker=\"w-1\",addr=\"a \\\"b\\\"\\n\"} 1\n")
	if err != nil {
		t.Fatal(err)
	}
	s := e.Family("ipex_up").Samples[0]
	if s.Labels["worker"] != "w-1" || s.Labels["addr"] != "a \"b\"\n" {
		t.Fatalf("labels parsed wrong: %#v", s.Labels)
	}
}

func TestLintCatches(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"syntax", "ipex_x oops\n# TYPE ipex_x counter\n", "bad value"},
		{"prefix", "# TYPE other_x counter\nother_x 1\n", "lacks the \"ipex_\" prefix"},
		{"untyped", "ipex_x 1\n", "no TYPE declaration"},
		{"dup-series", "# TYPE ipex_x counter\nipex_x 1\nipex_x 2\n", "duplicate series"},
		{"dup-type", "# TYPE ipex_x counter\n# TYPE ipex_x gauge\nipex_x 1\n", "duplicate TYPE"},
		{"type-after", "# HELP ipex_x h\nipex_x 1\n# TYPE ipex_x counter\n", "after its samples"},
		{"no-inf", "# TYPE ipex_h histogram\nipex_h_bucket{le=\"1\"} 2\nipex_h_sum 1\nipex_h_count 2\n", "+Inf"},
		{"not-cumulative", "# TYPE ipex_h histogram\nipex_h_bucket{le=\"1\"} 5\nipex_h_bucket{le=\"+Inf\"} 2\nipex_h_sum 1\nipex_h_count 2\n", "not cumulative"},
		{"count-mismatch", "# TYPE ipex_h histogram\nipex_h_bucket{le=\"+Inf\"} 2\nipex_h_sum 1\nipex_h_count 9\n", "_count 9 != +Inf bucket 2"},
		{"no-sum", "# TYPE ipex_h histogram\nipex_h_bucket{le=\"+Inf\"} 2\nipex_h_count 2\n", "_sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint(tc.text, "ipex_")
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					return
				}
			}
			t.Fatalf("lint missed %q; got %v", tc.want, errs)
		})
	}
}

// TestLintAcceptsRegistryOutput pins the contract between trace.Registry's
// renderer and this linter: whatever WriteProm emits must lint clean.
func TestLintAcceptsRegistryOutput(t *testing.T) {
	r := trace.NewRegistry()
	r.Counter("store.mem_hits").Add(7)
	r.Gauge("queue_depth").Set(2)
	h := r.Histogram("run_seconds", nil)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 1e-3)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(b.String(), "ipex_"); len(errs) != 0 {
		t.Fatalf("registry output failed lint: %v\n%s", errs, b.String())
	}
}

func TestQuantile(t *testing.T) {
	e, err := Parse(goodScrape)
	if err != nil {
		t.Fatal(err)
	}
	bs := Buckets(e.Family("ipex_lat_seconds"))
	if len(bs) != 3 {
		t.Fatalf("extracted %d buckets, want 3", len(bs))
	}
	// rank(0.5) = 3 of 6 → one third into (0.01, 0.1]: 0.01 + 0.09*(3-2)/3.
	if got, want := Quantile(0.5, bs), 0.04; math.Abs(got-want) > 1e-9 {
		t.Errorf("p50 = %g, want %g", got, want)
	}
	// rank(1.0) = 6 lands in +Inf → clamp to highest finite bound.
	if got := Quantile(1, bs); got != 0.1 {
		t.Errorf("p100 = %g, want 0.1", got)
	}
	if !math.IsNaN(Quantile(0.5, nil)) {
		t.Error("empty histogram quantile is not NaN")
	}
}
