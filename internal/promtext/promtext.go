// Package promtext parses and lints the Prometheus text exposition format
// (version 0.0.4). It is the conformance oracle for every /metrics endpoint
// in the repository: the endpoint tests feed their scrape output through
// Lint, and cmd/ipextop uses Parse plus Quantile to render live summaries.
// It understands exactly the subset the repo emits — HELP/TYPE comments,
// un-timestamped samples with optional labels, and the histogram
// _bucket/_sum/_count convention — and rejects everything malformed rather
// than guessing.
package promtext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one exposition line: a metric name, its label set, and a value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	Line   int // 1-based line number in the scraped text
}

// LabelKey returns the sample's identity — name plus sorted labels — used
// to detect duplicate series.
func (s Sample) LabelKey() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Family groups the samples of one declared metric: the TYPE name plus, for
// histograms, the derived _bucket/_sum/_count series.
type Family struct {
	Name    string
	Type    string // counter, gauge, histogram, summary, or untyped
	Help    string
	Samples []Sample
}

// Exposition is a parsed scrape.
type Exposition struct {
	Families []*Family // declaration order
	byName   map[string]*Family
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *Family {
	return e.byName[name]
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// familyNameOf maps a sample name onto its declaring family: itself, or —
// when a histogram (or summary) family is declared under the base name —
// the name with the _bucket/_sum/_count suffix stripped.
func (e *Exposition) familyNameOf(sample string) string {
	if _, ok := e.byName[sample]; ok {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base == sample {
			continue
		}
		if f, ok := e.byName[base]; ok && (f.Type == "histogram" || f.Type == "summary") {
			return base
		}
	}
	return sample
}

// Parse reads a full scrape body. It returns the parsed exposition and the
// first syntax error (the exposition is still populated with everything
// parsed before the error).
func Parse(text string) (*Exposition, error) {
	e := &Exposition{byName: make(map[string]*Family)}
	var firstErr error
	fail := func(line int, format string, args ...any) {
		if firstErr == nil {
			firstErr = fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
		}
	}
	family := func(name string) *Family {
		if f, ok := e.byName[name]; ok {
			return f
		}
		f := &Family{Name: name, Type: "untyped"}
		e.byName[name] = f
		e.Families = append(e.Families, f)
		return f
	}
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				name := fields[2]
				if !validName(name) {
					fail(ln, "invalid metric name %q in HELP", name)
					continue
				}
				f := family(name)
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) != 4 {
					fail(ln, "malformed TYPE line %q", line)
					continue
				}
				name, typ := fields[2], fields[3]
				if !validName(name) {
					fail(ln, "invalid metric name %q in TYPE", name)
					continue
				}
				if !validTypes[typ] {
					fail(ln, "unknown metric type %q for %s", typ, name)
					continue
				}
				f := family(name)
				if f.Type != "untyped" {
					fail(ln, "duplicate TYPE declaration for %s", name)
					continue
				}
				if len(f.Samples) > 0 {
					fail(ln, "TYPE for %s appears after its samples", name)
				}
				f.Type = typ
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			fail(ln, "%v", err)
			continue
		}
		s.Line = ln
		f := family(e.familyNameOf(s.Name))
		f.Samples = append(f.Samples, s)
	}
	return e, firstErr
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("sample line %q has no value", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels, rest = labels, tail
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parseLabels consumes a `{name="value",...}` block (escapes \\, \", \n)
// and returns the map plus the unconsumed tail.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest := in[1:] // past '{'
	for {
		rest = strings.TrimLeft(rest, " ")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", in)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validLabelName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if rest == "" || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %s value is not quoted", name)
		}
		var val strings.Builder
		i := 1
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				i++
				if i >= len(rest) {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch rest[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %s", rest[i], name)
				}
			} else {
				val.WriteByte(c)
			}
			i++
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimLeft(rest, " ")
		if rest != "" && rest[0] == ',' {
			rest = rest[1:]
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Lint runs the full conformance pass over a scrape body: syntax, metric
// name validity, the given name prefix on every family (pass "" to skip),
// a TYPE declaration before every sample, no duplicate series, and
// histogram shape (cumulative non-decreasing buckets, a +Inf bucket,
// _count equal to the +Inf bucket, exactly one _sum). It returns every
// problem found, or nil for a clean scrape.
func Lint(text, prefix string) []error {
	var errs []error
	e, err := Parse(text)
	if err != nil {
		errs = append(errs, err)
	}
	seen := make(map[string]int) // series identity -> first line
	for _, f := range e.Families {
		if prefix != "" && !strings.HasPrefix(f.Name, prefix) {
			errs = append(errs, fmt.Errorf("metric %s lacks the %q prefix", f.Name, prefix))
		}
		if f.Type == "untyped" && len(f.Samples) > 0 {
			errs = append(errs, fmt.Errorf("metric %s has samples but no TYPE declaration", f.Name))
		}
		for _, s := range f.Samples {
			key := s.LabelKey()
			if prev, dup := seen[key]; dup {
				errs = append(errs, fmt.Errorf("line %d: duplicate series %s (first at line %d)", s.Line, key, prev))
				continue
			}
			seen[key] = s.Line
		}
		if f.Type == "histogram" {
			errs = append(errs, lintHistogram(f)...)
		}
	}
	return errs
}

// lintHistogram checks one histogram family's shape. Bucket samples are
// grouped by their non-le labels so a labelled histogram (one series per
// worker, say) is checked per group.
func lintHistogram(f *Family) []error {
	var errs []error
	type group struct {
		buckets  []Bucket
		sum      int
		count    float64
		hasCount bool
	}
	groups := make(map[string]*group)
	grp := func(s Sample) *group {
		rest := make(map[string]string, len(s.Labels))
		for k, v := range s.Labels {
			if k != "le" {
				rest[k] = v
			}
		}
		key := Sample{Name: f.Name, Labels: rest}.LabelKey()
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				errs = append(errs, fmt.Errorf("line %d: %s without an le label", s.Line, s.Name))
				continue
			}
			ub, err := parseValue(le)
			if err != nil {
				errs = append(errs, fmt.Errorf("line %d: bad le bound %q", s.Line, le))
				continue
			}
			grp(s).buckets = append(grp(s).buckets, Bucket{Upper: ub, CumCount: s.Value})
		case f.Name + "_sum":
			grp(s).sum++
		case f.Name + "_count":
			g := grp(s)
			g.count, g.hasCount = s.Value, true
		default:
			errs = append(errs, fmt.Errorf("line %d: %s inside histogram %s", s.Line, s.Name, f.Name))
		}
	}
	for key, g := range groups {
		name := f.Name
		if key != f.Name {
			name = key
		}
		if len(g.buckets) == 0 {
			errs = append(errs, fmt.Errorf("histogram %s has no buckets", name))
			continue
		}
		last := g.buckets[len(g.buckets)-1]
		if !math.IsInf(last.Upper, 1) {
			errs = append(errs, fmt.Errorf("histogram %s is missing the le=\"+Inf\" bucket", name))
		}
		for i := 1; i < len(g.buckets); i++ {
			if g.buckets[i].Upper <= g.buckets[i-1].Upper {
				errs = append(errs, fmt.Errorf("histogram %s bucket bounds not increasing", name))
			}
			if g.buckets[i].CumCount < g.buckets[i-1].CumCount {
				errs = append(errs, fmt.Errorf("histogram %s bucket counts not cumulative", name))
			}
		}
		if !g.hasCount {
			errs = append(errs, fmt.Errorf("histogram %s is missing _count", name))
		} else if math.IsInf(last.Upper, 1) && g.count != last.CumCount {
			errs = append(errs, fmt.Errorf("histogram %s _count %g != +Inf bucket %g", name, g.count, last.CumCount))
		}
		if g.sum != 1 {
			errs = append(errs, fmt.Errorf("histogram %s has %d _sum series, want 1", name, g.sum))
		}
	}
	return errs
}

// Bucket is one cumulative histogram bucket: everything observed at or
// below Upper.
type Bucket struct {
	Upper    float64
	CumCount float64
}

// Buckets extracts the (sorted) cumulative buckets of an unlabelled
// histogram family, for feeding Quantile.
func Buckets(f *Family) []Bucket {
	if f == nil {
		return nil
	}
	var bs []Bucket
	for _, s := range f.Samples {
		if s.Name != f.Name+"_bucket" {
			continue
		}
		ub, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		bs = append(bs, Bucket{Upper: ub, CumCount: s.Value})
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].Upper < bs[j].Upper })
	return bs
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from cumulative buckets,
// interpolating linearly within the target bucket the way PromQL's
// histogram_quantile does. It returns NaN for an empty histogram and the
// highest finite bound when the target falls in the +Inf bucket.
func Quantile(q float64, bs []Bucket) float64 {
	if len(bs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	total := bs[len(bs)-1].CumCount
	if total == 0 {
		return math.NaN()
	}
	rank := q * total
	var prevUpper, prevCum float64
	for i, b := range bs {
		if b.CumCount >= rank {
			if math.IsInf(b.Upper, 1) {
				if i > 0 {
					return bs[i-1].Upper
				}
				return math.NaN()
			}
			inBucket := b.CumCount - prevCum
			if inBucket == 0 {
				return b.Upper
			}
			return prevUpper + (b.Upper-prevUpper)*(rank-prevCum)/inBucket
		}
		if !math.IsInf(b.Upper, 1) {
			prevUpper = b.Upper
		}
		prevCum = b.CumCount
	}
	return bs[len(bs)-1].Upper
}
