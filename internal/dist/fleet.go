package dist

import (
	"fmt"
	"io"
)

// FleetWorker is one worker's row in the aggregated fleet view.
type FleetWorker struct {
	Addr string `json:"addr"`
	// Up: the worker has answered at least one sync and is not dead.
	Up   bool `json:"up"`
	Dead bool `json:"dead"`

	Assigned  int `json:"assigned"`
	Done      int `json:"done"`
	Remaining int `json:"remaining"`
	Seq       int `json:"seq"`
	Fails     int `json:"fails"`

	// RateCellsPerSec is the throughput EWMA (0 until Options.Clock has
	// seen two syncs of this worker).
	RateCellsPerSec float64 `json:"rate_cells_per_sec"`
	// Straggler flags the worker holding a disproportionate share of the
	// fleet's remaining work: live, at least StealMin cells remaining, more
	// than half the fleet-wide remainder, with at least one other live
	// worker to compare against. The same shape the steal heuristic hunts,
	// surfaced for operators.
	Straggler bool `json:"straggler"`
}

// FleetView is the coordinator-aggregated state of a running sweep: what
// GET /dist/v1/fleet serves and the ipex_fleet_* Prometheus series render.
type FleetView struct {
	Sweep       string        `json:"sweep"`
	Live        int           `json:"live"`
	Remaining   int           `json:"remaining"`
	Merged      uint64        `json:"merged"`
	Duplicates  uint64        `json:"duplicates"`
	Resharded   uint64        `json:"resharded"`
	Stolen      uint64        `json:"stolen"`
	DeadWorkers uint64        `json:"dead_workers"`
	Workers     []FleetWorker `json:"workers"`
}

// Fleet returns the aggregated fleet view. Safe to call concurrently with
// Run; it takes one snapshot under the coordinator lock and derives the
// straggler flags outside it.
func (c *Coordinator) Fleet() FleetView {
	c.mu.Lock()
	v := FleetView{
		Sweep:       c.o.Sweep,
		Resharded:   c.resharded,
		Stolen:      c.stolenN,
		DeadWorkers: c.deadN,
	}
	if c.o.Merger != nil {
		v.Merged = c.o.Merger.Merged()
		v.Duplicates = c.o.Merger.Duplicates()
	}
	for _, ws := range c.workers {
		fw := FleetWorker{
			Addr:            ws.addr,
			Up:              ws.everUp && !ws.dead,
			Dead:            ws.dead,
			Assigned:        ws.last.Assigned,
			Done:            ws.last.Done,
			Remaining:       ws.last.Remaining,
			Seq:             ws.seq,
			Fails:           ws.fails,
			RateCellsPerSec: ws.rate,
		}
		if !ws.dead {
			v.Live++
			v.Remaining += fw.Remaining
		}
		v.Workers = append(v.Workers, fw)
	}
	stealMin := c.o.StealMin
	c.mu.Unlock()

	for i := range v.Workers {
		w := &v.Workers[i]
		w.Straggler = !w.Dead && v.Live > 1 &&
			w.Remaining >= stealMin && w.Remaining*2 > v.Remaining
	}
	return v
}

// WriteFleetProm renders the fleet view as ipex_fleet_* Prometheus series:
// fleet-level totals plus one worker-labelled sample per live-or-dead
// worker for liveness, progress, throughput, and the straggler flag.
func (c *Coordinator) WriteFleetProm(w io.Writer) error {
	v := c.Fleet()
	b01 := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	if _, err := fmt.Fprintf(w,
		"# HELP ipex_fleet_workers_live workers currently alive\n# TYPE ipex_fleet_workers_live gauge\nipex_fleet_workers_live %d\n"+
			"# HELP ipex_fleet_remaining cells remaining across live workers\n# TYPE ipex_fleet_remaining gauge\nipex_fleet_remaining %d\n"+
			"# HELP ipex_fleet_merged_total journal entries merged\n# TYPE ipex_fleet_merged_total counter\nipex_fleet_merged_total %d\n"+
			"# HELP ipex_fleet_duplicates_total duplicate journal entries discarded by merge\n# TYPE ipex_fleet_duplicates_total counter\nipex_fleet_duplicates_total %d\n"+
			"# HELP ipex_fleet_resharded_total ranges and keys re-sharded off dead workers\n# TYPE ipex_fleet_resharded_total counter\nipex_fleet_resharded_total %d\n"+
			"# HELP ipex_fleet_stolen_total cells stolen from stragglers\n# TYPE ipex_fleet_stolen_total counter\nipex_fleet_stolen_total %d\n"+
			"# HELP ipex_fleet_workers_dead_total workers declared dead\n# TYPE ipex_fleet_workers_dead_total counter\nipex_fleet_workers_dead_total %d\n",
		v.Live, v.Remaining, v.Merged, v.Duplicates, v.Resharded, v.Stolen, v.DeadWorkers); err != nil {
		return err
	}
	series := []struct {
		name, help string
		val        func(FleetWorker) string
	}{
		{"ipex_fleet_worker_up", "worker answered its last sync and is not dead", func(w FleetWorker) string { return fmt.Sprint(b01(w.Up)) }},
		{"ipex_fleet_worker_assigned", "cells assigned to the worker", func(w FleetWorker) string { return fmt.Sprint(w.Assigned) }},
		{"ipex_fleet_worker_done", "cells the worker has completed", func(w FleetWorker) string { return fmt.Sprint(w.Done) }},
		{"ipex_fleet_worker_remaining", "cells the worker has not completed", func(w FleetWorker) string { return fmt.Sprint(w.Remaining) }},
		{"ipex_fleet_worker_rate_cells_per_sec", "throughput EWMA between syncs", func(w FleetWorker) string { return fmt.Sprintf("%g", w.RateCellsPerSec) }},
		{"ipex_fleet_worker_fails", "consecutive failed syncs", func(w FleetWorker) string { return fmt.Sprint(w.Fails) }},
		{"ipex_fleet_worker_straggler", "worker holds more than half the fleet's remaining cells", func(w FleetWorker) string { return fmt.Sprint(b01(w.Straggler)) }},
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", s.name, s.help, s.name); err != nil {
			return err
		}
		for _, fw := range v.Workers {
			if _, err := fmt.Fprintf(w, "%s{worker=%q} %s\n", s.name, fw.Addr, s.val(fw)); err != nil {
				return err
			}
		}
	}
	return nil
}
