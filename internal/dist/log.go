package dist

import (
	"sync"

	"ipex/internal/harness"
)

// Log is a worker's in-memory, append-only journal entry log: the
// Supervisor streams finished cells into it (it is a harness.Sink), and
// the coordinator drains it over HTTP with Since. Entries are kept for the
// worker's lifetime — a sweep's entry set is far smaller than the
// simulation state that produced it, and keeping everything lets a
// coordinator that lost its own progress (restart, partition heal)
// re-pull from zero.
type Log struct {
	mu      sync.Mutex
	entries []harness.Entry
}

// Append records one entry. Implements harness.Sink; never fails.
func (l *Log) Append(e harness.Entry) error {
	l.mu.Lock()
	l.entries = append(l.entries, e)
	l.mu.Unlock()
	return nil
}

// Len returns the number of entries appended so far.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Since returns a copy of the entries from sequence number n (0-based) on,
// and the next sequence number. Out-of-range n yields an empty batch.
func (l *Log) Since(n int) ([]harness.Entry, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(l.entries) {
		return nil, len(l.entries)
	}
	out := make([]harness.Entry, len(l.entries)-n)
	copy(out, l.entries[n:])
	return out, len(l.entries)
}

// Tee fans one journal stream out to several sinks (the worker's in-memory
// log plus, optionally, its own durable segment file). The first error
// wins but every sink still sees the entry — a failing local file must not
// stop entries from reaching the coordinator.
func Tee(sinks ...harness.Sink) harness.Sink {
	return teeSink(sinks)
}

type teeSink []harness.Sink

func (t teeSink) Append(e harness.Entry) error {
	var first error
	for _, s := range t {
		if s == nil {
			continue
		}
		if err := s.Append(e); err != nil && first == nil {
			first = err
		}
	}
	return first
}
