package dist

import (
	"fmt"
	"testing"

	"ipex/internal/harness"
)

// TestSplitPartitionsSpace: for a spread of fleet sizes, the ranges must
// be contiguous, disjoint, and collectively exhaustive, and every real
// cell key must land in exactly one range.
func TestSplitPartitionsSpace(t *testing.T) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = harness.Key(struct{ I int }{i})
	}
	for _, n := range []int{1, 2, 3, 5, 7, 16} {
		ranges := Split(n)
		if len(ranges) != n {
			t.Fatalf("Split(%d) = %d ranges", n, len(ranges))
		}
		if ranges[0].Lo != zeroKey() {
			t.Errorf("Split(%d): first range starts at %s", n, ranges[0].Lo)
		}
		if ranges[n-1].Hi != "" {
			t.Errorf("Split(%d): last range ends at %q, want open end", n, ranges[n-1].Hi)
		}
		for i := 1; i < n; i++ {
			if ranges[i].Lo != ranges[i-1].Hi {
				t.Errorf("Split(%d): gap between %s and %s", n, ranges[i-1], ranges[i])
			}
			if len(ranges[i].Lo) != keyBits/4 {
				t.Errorf("Split(%d): boundary %q is not %d hex digits", n, ranges[i].Lo, keyBits/4)
			}
		}
		for _, k := range keys {
			owners := 0
			for _, r := range ranges {
				if r.Contains(k) {
					owners++
				}
			}
			if owners != 1 {
				t.Errorf("Split(%d): key %s has %d owners", n, k, owners)
			}
		}
	}
	if got := Split(0); len(got) != 1 {
		t.Errorf("Split(0) = %d ranges, want 1", len(got))
	}
}

func TestKeyRangeContains(t *testing.T) {
	r := KeyRange{Lo: "40000000000000000000000000000000", Hi: "80000000000000000000000000000000"}
	for key, want := range map[string]bool{
		"40000000000000000000000000000000": true,  // Lo inclusive
		"7fffffffffffffffffffffffffffffff": true,
		"80000000000000000000000000000000": false, // Hi exclusive
		"3fffffffffffffffffffffffffffffff": false,
		"ffffffffffffffffffffffffffffffff": false,
	} {
		if got := r.Contains(key); got != want {
			t.Errorf("%s.Contains(%s) = %v, want %v", r, key, got, want)
		}
	}
	open := KeyRange{Lo: "c0000000000000000000000000000000"}
	if !open.Contains("ffffffffffffffffffffffffffffffff") {
		t.Error("open-ended range must contain the top of the space")
	}
	if open.Contains("00000000000000000000000000000000") {
		t.Error("open-ended range must still respect Lo")
	}
}

func TestInAssignment(t *testing.T) {
	ranges := []KeyRange{{Lo: "00000000000000000000000000000000", Hi: "10000000000000000000000000000000"}}
	keys := map[string]bool{"deadbeefdeadbeefdeadbeefdeadbeef": true}
	cases := []struct {
		key  string
		want bool
	}{
		{"0abc0000000000000000000000000000", true},  // in range
		{"deadbeefdeadbeefdeadbeefdeadbeef", true},  // explicit key
		{"20000000000000000000000000000000", false}, // neither
	}
	for _, c := range cases {
		if got := inAssignment(c.key, ranges, keys); got != c.want {
			t.Errorf("inAssignment(%s) = %v, want %v", c.key, got, c.want)
		}
	}
}

func TestSplitBalance(t *testing.T) {
	// Hash keys are uniform, so a 4-way split of 400 keys should put
	// roughly 100 in each range; a wildly skewed split would mean broken
	// boundary math. Allow a generous ±50%.
	ranges := Split(4)
	counts := make([]int, len(ranges))
	for i := 0; i < 400; i++ {
		k := harness.Key(fmt.Sprintf("cell-%d", i))
		for j, r := range ranges {
			if r.Contains(k) {
				counts[j]++
			}
		}
	}
	for j, c := range counts {
		if c < 50 || c > 150 {
			t.Errorf("range %d holds %d of 400 keys; boundaries look skewed: %v", j, c, counts)
		}
	}
}
