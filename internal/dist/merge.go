package dist

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"sync"

	"ipex/internal/harness"
)

// Merger folds journal entries from many sources — worker HTTP streams,
// worker-local segment files, a resumed coordinator journal — into the one
// authoritative journal and its replay map. The merge discipline is
// per-key, success-wins:
//
//   - The first KindCell entry for a key is appended to the authoritative
//     journal and installed in the replay map. Later KindCell entries for
//     the same key are duplicates (double-assigned or stolen cells execute
//     more than once); cells are deterministic, so the bodies are
//     bit-identical and the duplicate is simply dropped — the journal
//     stays free of redundant lines.
//   - A KindCell entry replaces a previously merged KindFail for its key
//     (a cell that failed on one worker and succeeded elsewhere, or
//     succeeded on retry): that is the "later entry wins" rule the serial
//     journal already applies to retried cells, and the append preserves
//     it for a future resume, where the file is replayed in order.
//   - A KindFail never displaces a KindCell: a success, once durable, is
//     final.
//
// All methods are safe for concurrent use.
type Merger struct {
	mu      sync.Mutex
	journal harness.Sink
	replay  map[string]*harness.Entry
	merged  uint64
	dups    uint64
}

// NewMerger wraps the authoritative journal sink (nil for a map-only
// merge, as in tests) and the replay map it extends. replay may hold a
// resumed coordinator journal's entries; nil allocates fresh.
func NewMerger(journal harness.Sink, replay map[string]*harness.Entry) *Merger {
	if replay == nil {
		replay = make(map[string]*harness.Entry)
	}
	return &Merger{journal: journal, replay: replay}
}

// Merge folds one entry in, returning true when it changed the replay map
// (false for duplicates and non-cell kinds). A journal append failure is
// reported but the replay map is still updated — the merge must not lose
// an entry the fleet already paid to compute.
func (m *Merger) Merge(e harness.Entry) (bool, error) {
	if e.Key == "" {
		return false, nil
	}
	switch e.Kind {
	case harness.KindCell, harness.KindFail:
	default:
		return false, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.replay[e.Key]; ok {
		// Success is final; a duplicate of anything is dropped.
		if prev.Kind == harness.KindCell || e.Kind == harness.KindFail {
			m.dups++
			return false, nil
		}
	}
	ec := e
	m.replay[e.Key] = &ec
	m.merged++
	var err error
	if m.journal != nil {
		if aerr := m.journal.Append(e); aerr != nil {
			err = fmt.Errorf("dist: appending merged entry to authoritative journal: %w", aerr)
		}
	}
	return true, err
}

// Replay returns the merge target map (live, not a copy): hand it to the
// final rendering pass's Supervisor after the fleet is done.
func (m *Merger) Replay() map[string]*harness.Entry { return m.replay }

// Merged and Duplicates report how many entries changed the replay map vs.
// were dropped as duplicates.
func (m *Merger) Merged() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.merged
}

func (m *Merger) Duplicates() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dups
}

// DoneWithin lists merged keys covered by the given assignment (ranges ∪
// keys): the Done list a fresh assignment carries so the assignee skips
// already-merged cells.
func (m *Merger) DoneWithin(ranges []KeyRange, keys []string) []string {
	set := make(map[string]bool, len(keys))
	for _, k := range keys {
		set[k] = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var done []string
	for k := range m.replay {
		if inAssignment(k, ranges, set) {
			done = append(done, k)
		}
	}
	return done
}

// MergeSegment folds one worker-local journal segment file into the
// merger. A segment is a complete ipex-journal/v1 file (header line first);
// a segment whose header is missing, speaks a different schema, or hashes
// a different sweep is rejected whole — the error condemns only that
// segment, never the sweep, and the merger is untouched by it. Inside an
// accepted segment, corrupted or truncated lines are skipped with warnings
// (their cells simply re-run), matching the tolerance of a serial resume.
func MergeSegment(m *Merger, path, sweepKey string) (merged int, warns []string, err error) {
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		return 0, nil, fmt.Errorf("dist: reading segment: %w", rerr)
	}
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		e, perr := harness.ParseLine(raw)
		if !sawHeader {
			// The first non-empty line must be a valid header for this
			// sweep; anything else condemns the segment before any entry
			// of it is merged.
			if perr != nil || e.Kind != harness.KindHeader {
				return 0, nil, fmt.Errorf("dist: segment %s has no valid header line; not a journal segment", path)
			}
			if e.Schema != harness.Schema {
				return 0, nil, fmt.Errorf("dist: segment %s has schema %q, this binary merges %q", path, e.Schema, harness.Schema)
			}
			if e.Sweep != sweepKey {
				return 0, nil, fmt.Errorf("dist: segment %s was written for sweep %s, merging sweep %s; segment rejected", path, e.Sweep, sweepKey)
			}
			sawHeader = true
			continue
		}
		if perr != nil {
			warns = append(warns, fmt.Sprintf("%s:%d: skipping corrupted segment line (%v); its cell, if any, will be re-run", path, line, perr))
			continue
		}
		if changed, merr := m.Merge(e); merr != nil {
			warns = append(warns, merr.Error())
		} else if changed {
			merged++
		}
	}
	if serr := sc.Err(); serr != nil {
		return merged, warns, fmt.Errorf("dist: reading segment %s: %w", path, serr)
	}
	if !sawHeader {
		return 0, warns, fmt.Errorf("dist: segment %s has no valid header line; not a journal segment", path)
	}
	return merged, warns, nil
}

// MergeSegments folds every segment in, independently: one rejected or
// unreadable segment (stale sweep hash, foreign schema, missing header)
// contributes an error and nothing else, while the remaining segments
// still merge — losing one worker's local file must never cost the fleet's
// progress.
func MergeSegments(m *Merger, paths []string, sweepKey string) (merged int, warns []string, errs []error) {
	for _, p := range paths {
		n, w, err := MergeSegment(m, p, sweepKey)
		merged += n
		warns = append(warns, w...)
		if err != nil {
			errs = append(errs, err)
		}
	}
	return merged, warns, errs
}
