// Package dist is the fault-tolerant distributed sweep executor built on
// the crash-safe harness: a coordinator shards a sweep's cells by their
// content-hash key range across N worker processes, workers execute only
// their shard and stream ipex-journal/v1 entries back over HTTP, and the
// coordinator folds every stream into the single authoritative journal
// with later-entry-wins merge — so `-resume` works across the whole fleet
// exactly as it does for a serial sweep.
//
// The failure discipline mirrors the simulated domain: like the
// intermittent device the simulator models, any participant may die at any
// instant, and correctness must not depend on it surviving. Every cell is
// idempotent (content-hash keyed, deterministic result), so the only
// obligations are to never lose a journaled entry and to never serve a
// result under the wrong key. Concretely:
//
//   - A dead worker's unfinished shard is re-assigned to survivors after
//     bounded health-check failures (deadline per request, exponential
//     backoff between retries, reusing harness.BackoffDelay).
//   - A straggler's enumerated-but-unstarted cells can be stolen by idle
//     workers; double execution is harmless because duplicate keys merge
//     to bit-identical entries.
//   - If no worker is reachable (or the whole fleet dies) the sweep
//     degrades to local execution: the coordinator's final rendering pass
//     replays every merged cell and simulates whatever is missing, so the
//     distributed layer is an offload optimization with a local
//     correctness backstop — merged output is byte-identical to a serial
//     run by construction.
//   - SIGINT on the coordinator drains gracefully and leaves the
//     authoritative journal resumable; completed cells are never
//     re-executed on resume.
//
// The package is HTTP-facing by design (the one sanctioned exception to
// the no-net/http-in-internal lint), but all wall-clock use is confined to
// clock.go — health-check deadlines and retry spacing only, never
// anything that feeds a simulated result.
package dist

import (
	"fmt"

	"ipex/internal/harness"
)

// ProtoSchema identifies the coordinator↔worker wire protocol; bump on
// incompatible change. Both sides reject a peer speaking a different
// schema rather than guessing at field meanings.
const ProtoSchema = "ipex-dist/v1"

// Wire paths served by a worker (see Server) and called by the
// coordinator's client.
const (
	PathAssign    = "/dist/v1/assign"
	PathStatus    = "/dist/v1/status"
	PathJournal   = "/dist/v1/journal"
	PathRemaining = "/dist/v1/remaining"
)

// Assignment is the coordinator→worker work order: key ranges and/or
// explicit keys the worker becomes responsible for, plus the keys within
// them that are already merged (the worker skips those). Assignments are
// cumulative — a re-shard or steal adds to the worker's responsibility;
// nothing is ever revoked, because executing a cell twice is harmless and
// revocation protocols are where distributed executors grow their subtle
// bugs.
type Assignment struct {
	Schema string `json:"schema"`
	// Sweep is the content hash of the sweep definition. A worker whose
	// own command line hashes differently rejects the assignment outright:
	// its cells belong to a different experiment.
	Sweep string `json:"sweep"`
	// Gen is the coordinator's assignment generation for this worker,
	// strictly increasing; the worker ignores stale generations (a retried
	// POST that raced a newer one).
	Gen int64 `json:"gen"`
	// Ranges assigns contiguous key ranges; Keys assigns explicit cells
	// (re-sharded remainders, stolen stragglers).
	Ranges []KeyRange `json:"ranges,omitempty"`
	Keys   []string   `json:"keys,omitempty"`
	// Done lists keys inside the assignment that are already merged into
	// the authoritative journal; the worker marks them done unexecuted.
	Done []string `json:"done,omitempty"`
}

// Status is the worker→coordinator health and progress report.
type Status struct {
	Schema string `json:"schema"`
	Sweep  string `json:"sweep"`
	// Gen echoes the highest assignment generation applied so far.
	Gen int64 `json:"gen"`
	// Enumerated reports that the worker has completed its enumeration
	// pass and therefore knows the sweep's full cell universe; Universe is
	// that count (unique cell keys).
	Enumerated bool `json:"enumerated"`
	Universe   int  `json:"universe"`
	// Assigned/Done/Remaining count unique enumerated keys under the
	// worker's assignment (Remaining = Assigned - Done).
	Assigned  int `json:"assigned"`
	Done      int `json:"done"`
	Remaining int `json:"remaining"`
	// Seq is the length of the worker's journal entry log; the coordinator
	// pulls entries it has not merged yet with /dist/v1/journal?since=N.
	Seq int `json:"seq"`
	// Passes counts completed execution passes (diagnostics only).
	Passes int64 `json:"passes"`
}

// Complete reports whether this status describes a worker with nothing
// left to do: it knows the universe, every assigned cell is journaled, and
// the coordinator has nothing more to pull once it reaches Seq.
func (st Status) Complete() bool {
	return st.Enumerated && st.Remaining == 0
}

// RemainingKeys is the /dist/v1/remaining response body: the worker's
// enumerated, assigned, not-yet-done cell keys in enumeration order. The
// coordinator steals from the tail — the head is what the straggler's own
// pool dispatches next.
type RemainingKeys struct {
	Keys []string `json:"keys"`
}

// validate rejects a wire message from a different protocol or sweep.
func validate(kind, schema, sweep, wantSweep string) error {
	if schema != ProtoSchema {
		return fmt.Errorf("dist: %s speaks %q, this binary speaks %q", kind, schema, ProtoSchema)
	}
	if sweep != wantSweep {
		return fmt.Errorf("dist: %s is for sweep %s, this process runs sweep %s (command lines differ)", kind, sweep, wantSweep)
	}
	return nil
}

// interface conformance: the worker's in-memory entry log is a journal
// sink, so a Supervisor streams into it exactly as it would into a file.
var _ harness.Sink = (*Log)(nil)
