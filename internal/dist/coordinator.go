package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ipex/internal/harness"
	"ipex/internal/trace"
)

// ErrNoWorkers reports that every worker is dead or unreachable; the
// caller falls back to local execution (the merged journal so far is
// intact and replayable).
var ErrNoWorkers = errors.New("dist: every worker is dead or unreachable")

// Options configures a Coordinator.
type Options struct {
	// Workers are the base URLs of the worker processes
	// (e.g. http://127.0.0.1:8421).
	Workers []string
	// Sweep is the content hash of the sweep definition; workers hashing
	// differently are rejected as fatally misconfigured.
	Sweep string
	// Merger receives every pulled journal entry.
	Merger *Merger
	// Poll is the health-check/pull interval (default 200ms). Timeout is
	// the per-request deadline (default 5s). MaxFailures is how many
	// consecutive failed syncs a worker survives before being declared
	// dead and re-sharded (default 3); between failures the coordinator
	// backs off exponentially in units of Poll (harness.BackoffDelay).
	Poll        time.Duration
	Timeout     time.Duration
	MaxFailures int
	// StealMin is the minimum remaining-cell count a straggler must have
	// before an idle worker steals from it; the thief takes the tail half
	// of the straggler's remaining list (default 4).
	StealMin int
	// Logf, when set, receives human-readable progress and failure notes.
	Logf func(format string, a ...any)
	// Clock, when set, feeds per-worker throughput estimates (an EWMA of
	// cells completed per second between syncs) and the dist.sync_seconds
	// latency histogram. The coordinator never reads wall time itself —
	// the command layer injects trace.NewWallClock() (or a fake in tests),
	// keeping the determinism lint's no-wall-clock rule intact here.
	Clock trace.Clock
	// Metrics, when set, receives the coordinator's latency histograms.
	Metrics *trace.Registry
}

// workerState is the coordinator's view of one worker. All fields are
// guarded by Coordinator.mu; HTTP calls never hold the lock.
type workerState struct {
	addr    string
	ranges  []KeyRange // everything ever assigned (delivered or not)
	keys    []string
	gen     int64       // generation of the last acknowledged assignment
	pending *Assignment // queued work not yet acknowledged
	seq     int         // journal entries merged so far
	fails   int         // consecutive sync failures
	skip    int         // polls to skip (backoff)
	dead    bool
	everUp  bool
	last    Status

	// Throughput EWMA, updated on each successful sync when Options.Clock
	// is set: instantaneous rate Δdone/Δt blended half-and-half with the
	// previous estimate, so a straggler's slowdown shows within a few polls
	// without the series jittering tick to tick.
	rateSeen bool
	lastDone int
	lastT    time.Duration
	rate     float64 // cells per second
}

// Coordinator drives a fleet of workers through one sweep: it shards the
// key space, pushes assignments, polls health, pulls and merges journal
// streams, re-shards dead workers' cells, and steals from stragglers for
// idle workers. Run returns nil when every live worker is complete and
// fully drained; the caller then renders locally from the merged replay
// map (which also covers any cells the fleet never finished).
type Coordinator struct {
	o      Options
	client *http.Client

	mu        sync.Mutex
	workers   []*workerState
	gen       int64
	stolen    map[string]bool
	resharded uint64
	stolenN   uint64
	deadN     uint64

	syncSeconds *trace.Histogram // coordinator↔worker round-trip latency
}

// NewCoordinator applies defaults and builds the fleet's initial shard
// map: the 128-bit key space split into one equal range per worker.
func NewCoordinator(o Options) *Coordinator {
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxFailures <= 0 {
		o.MaxFailures = 3
	}
	if o.StealMin <= 0 {
		o.StealMin = 4
	}
	c := &Coordinator{
		o:      o,
		client: &http.Client{Timeout: o.Timeout},
		stolen: make(map[string]bool),
		// Nil-safe: no Metrics registry leaves the handle nil (discarding).
		syncSeconds: o.Metrics.Histogram("dist.sync_seconds", nil),
	}
	if n := len(o.Workers); n > 0 {
		for i, r := range Split(n) {
			ws := &workerState{addr: o.Workers[i]}
			c.workers = append(c.workers, ws)
			c.queueLocked(ws, []KeyRange{r}, nil)
		}
	}
	return c
}

// Run executes the fleet loop until the sweep's assigned work is done
// (nil), the fleet dies (ErrNoWorkers), or ctx is cancelled (its error;
// the merged journal stays resumable in every case).
func (c *Coordinator) Run(ctx context.Context) error {
	if len(c.workers) == 0 {
		return ErrNoWorkers
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, ws := range c.workers {
			c.mu.Lock()
			skip := ws.dead || ws.skip > 0
			if ws.skip > 0 {
				ws.skip--
			}
			c.mu.Unlock()
			if skip {
				continue
			}
			if err := c.sync(ctx, ws); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				c.noteFailure(ws, err)
			} else {
				c.mu.Lock()
				ws.fails = 0
				c.mu.Unlock()
			}
		}
		live, done := c.progress()
		if live == 0 {
			return ErrNoWorkers
		}
		if done {
			return nil
		}
		c.maybeSteal(ctx)
		if err := sleepCtx(ctx, c.o.Poll); err != nil {
			return err
		}
	}
}

// queueLocked records new responsibility for ws and folds it into the
// pending assignment (creating one if none is queued). Caller holds c.mu
// or has exclusive access (constructor).
func (c *Coordinator) queueLocked(ws *workerState, ranges []KeyRange, keys []string) {
	ws.ranges = append(ws.ranges, ranges...)
	ws.keys = append(ws.keys, keys...)
	c.gen++
	if ws.pending == nil {
		ws.pending = &Assignment{Schema: ProtoSchema, Sweep: c.o.Sweep}
	}
	ws.pending.Gen = c.gen
	ws.pending.Ranges = append(ws.pending.Ranges, ranges...)
	ws.pending.Keys = append(ws.pending.Keys, keys...)
}

// sync performs one round-trip with a worker: deliver the pending
// assignment (or just poll status), then pull any journal entries the
// coordinator has not merged yet.
func (c *Coordinator) sync(ctx context.Context, ws *workerState) error {
	if c.o.Clock != nil {
		start := c.o.Clock.Now()
		defer func() { c.syncSeconds.ObserveDuration(c.o.Clock.Now() - start) }()
	}
	return c.syncOnce(ctx, ws)
}

func (c *Coordinator) syncOnce(ctx context.Context, ws *workerState) error {
	c.mu.Lock()
	var a *Assignment
	if ws.pending != nil {
		cp := *ws.pending
		// The Done list is computed at send time over the worker's whole
		// assignment so a re-delivered or extended assignment also teaches
		// it which of its cells others have finished meanwhile.
		cp.Done = c.o.Merger.DoneWithin(ws.ranges, ws.keys)
		a = &cp
	}
	addr, seq := ws.addr, ws.seq
	c.mu.Unlock()

	var st Status
	var err error
	if a != nil {
		st, err = c.postAssign(ctx, addr, *a)
		if err == nil {
			c.mu.Lock()
			if ws.pending != nil && ws.pending.Gen == a.Gen {
				ws.pending = nil
				ws.gen = a.Gen
			}
			c.mu.Unlock()
		}
	} else {
		st, err = c.getStatus(ctx, addr)
	}
	if err != nil {
		return err
	}
	if verr := validate("status", st.Schema, st.Sweep, c.o.Sweep); verr != nil {
		return &fatalError{verr.Error()}
	}
	c.mu.Lock()
	ws.last = st
	ws.everUp = true
	c.updateRateLocked(ws, st)
	c.mu.Unlock()
	if st.Seq > seq {
		next, perr := c.pullJournal(ctx, addr, seq)
		if perr != nil {
			return perr
		}
		c.mu.Lock()
		if next > ws.seq {
			ws.seq = next
		}
		c.mu.Unlock()
	}
	return nil
}

// updateRateLocked folds one successful sync into the worker's throughput
// EWMA (see workerState). Caller holds c.mu. No Clock, no rates.
func (c *Coordinator) updateRateLocked(ws *workerState, st Status) {
	if c.o.Clock == nil {
		return
	}
	now := c.o.Clock.Now()
	if ws.rateSeen && now > ws.lastT && st.Done >= ws.lastDone {
		inst := float64(st.Done-ws.lastDone) / (now - ws.lastT).Seconds()
		if ws.rate == 0 {
			ws.rate = inst
		} else {
			ws.rate = 0.5*ws.rate + 0.5*inst
		}
	}
	ws.rateSeen, ws.lastT, ws.lastDone = true, now, st.Done
}

// noteFailure counts a failed sync against the worker: fatal errors
// (protocol/sweep conflicts) kill it immediately, repeated transient ones
// kill it after MaxFailures with exponential backoff in between. Death
// re-shards everything it was responsible for across the survivors.
func (c *Coordinator) noteFailure(ws *workerState, err error) {
	var fe *fatalError
	fatal := errors.As(err, &fe)
	c.mu.Lock()
	ws.fails++
	if !fatal && ws.fails <= c.o.MaxFailures {
		ws.skip = backoffPolls(ws.fails)
		c.mu.Unlock()
		c.logf("dist: worker %s sync failed (%d/%d): %v", ws.addr, ws.fails, c.o.MaxFailures, err)
		return
	}
	ws.dead = true
	c.deadN++
	ranges := ws.ranges
	keys := ws.keys
	var live []*workerState
	for _, other := range c.workers {
		if !other.dead {
			live = append(live, other)
		}
	}
	moved := 0
	if len(live) > 0 {
		i := 0
		rb := make([][]KeyRange, len(live))
		kb := make([][]string, len(live))
		for _, r := range ranges {
			rb[i%len(live)] = append(rb[i%len(live)], r)
			i++
		}
		for _, k := range keys {
			kb[i%len(live)] = append(kb[i%len(live)], k)
			i++
		}
		for j, other := range live {
			if len(rb[j]) > 0 || len(kb[j]) > 0 {
				c.queueLocked(other, rb[j], kb[j])
			}
		}
		moved = len(ranges) + len(keys)
		c.resharded += uint64(moved)
	}
	c.mu.Unlock()
	c.logf("dist: worker %s declared dead (%v); re-sharded %d ranges/keys across %d survivors",
		ws.addr, err, moved, len(live))
}

// progress reports how many workers are live and whether the fleet is
// completely done: every live worker acknowledged its latest assignment,
// reports Complete, and its journal is fully merged.
func (c *Coordinator) progress() (live int, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done = true
	for _, ws := range c.workers {
		if ws.dead {
			continue
		}
		live++
		if ws.pending != nil || !ws.everUp || ws.last.Gen != ws.gen ||
			!ws.last.Complete() || ws.seq < ws.last.Seq {
			done = false
		}
	}
	if live == 0 {
		done = false
	}
	return live, done
}

// maybeSteal moves the tail half of the worst straggler's remaining cells
// to an idle (complete) worker, at most one steal per poll tick. Nothing
// is revoked from the straggler: if it gets there first, the duplicate
// merges away.
func (c *Coordinator) maybeSteal(ctx context.Context) {
	c.mu.Lock()
	var idle, straggler *workerState
	for _, ws := range c.workers {
		if ws.dead || !ws.everUp || ws.pending != nil || ws.last.Gen != ws.gen {
			continue
		}
		if ws.last.Complete() {
			if idle == nil {
				idle = ws
			}
		} else if ws.last.Remaining >= c.o.StealMin {
			if straggler == nil || ws.last.Remaining > straggler.last.Remaining {
				straggler = ws
			}
		}
	}
	c.mu.Unlock()
	if idle == nil || straggler == nil || idle == straggler {
		return
	}
	keys, err := c.getRemaining(ctx, straggler.addr)
	if err != nil {
		return // transient; the regular sync path counts its failures
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var fresh []string
	for _, k := range keys {
		if !c.stolen[k] {
			fresh = append(fresh, k)
		}
	}
	if len(fresh) < c.o.StealMin {
		return
	}
	tail := fresh[len(fresh)-len(fresh)/2:]
	for _, k := range tail {
		c.stolen[k] = true
	}
	c.queueLocked(idle, nil, tail)
	c.stolenN += uint64(len(tail))
	c.logf("dist: stole %d cells from straggler %s for %s", len(tail), straggler.addr, idle.addr)
}

// WorkerSnapshot and Snapshot expose fleet state for telemetry.
type WorkerSnapshot struct {
	Addr      string `json:"addr"`
	Dead      bool   `json:"dead"`
	Assigned  int    `json:"assigned"`
	Done      int    `json:"done"`
	Remaining int    `json:"remaining"`
	Seq       int    `json:"seq"`
	Fails     int    `json:"fails"`
}

type Snapshot struct {
	Merged      uint64           `json:"merged"`
	Duplicates  uint64           `json:"duplicates"`
	Resharded   uint64           `json:"resharded"`
	Stolen      uint64           `json:"stolen"`
	DeadWorkers uint64           `json:"dead_workers"`
	Workers     []WorkerSnapshot `json:"workers"`
}

func (c *Coordinator) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Resharded:   c.resharded,
		Stolen:      c.stolenN,
		DeadWorkers: c.deadN,
	}
	if c.o.Merger != nil {
		s.Merged = c.o.Merger.Merged()
		s.Duplicates = c.o.Merger.Duplicates()
	}
	for _, ws := range c.workers {
		s.Workers = append(s.Workers, WorkerSnapshot{
			Addr:      ws.addr,
			Dead:      ws.dead,
			Assigned:  ws.last.Assigned,
			Done:      ws.last.Done,
			Remaining: ws.last.Remaining,
			Seq:       ws.seq,
			Fails:     ws.fails,
		})
	}
	return s
}

// fatalError marks a sync failure that retrying cannot fix (protocol or
// sweep mismatch): the worker is declared dead on the first occurrence.
type fatalError struct{ msg string }

func (e *fatalError) Error() string { return e.msg }

// backoffPolls converts consecutive-failure count into poll ticks to skip
// using the harness's exponential schedule with the poll interval as base.
func backoffPolls(fails int) int {
	d := harness.BackoffDelay(time.Duration(1), fails)
	return int(d) // 1, 2, 4, ... ticks, capped at 32 by BackoffDelay
}

func (c *Coordinator) logf(format string, a ...any) {
	if c.o.Logf != nil {
		c.o.Logf(format, a...)
	}
}

// --- HTTP client helpers (deadline = Options.Timeout via c.client) ---

func (c *Coordinator) postAssign(ctx context.Context, addr string, a Assignment) (Status, error) {
	body, err := json.Marshal(a)
	if err != nil {
		return Status{}, fmt.Errorf("dist: encoding assignment: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+PathAssign, bytes.NewReader(body))
	if err != nil {
		return Status{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return Status{}, &fatalError{fmt.Sprintf("worker %s rejected assignment: %s", addr, bytes.TrimSpace(msg))}
	}
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("dist: worker %s: assign returned %s", addr, resp.Status)
	}
	var st Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("dist: worker %s: bad assign response: %w", addr, err)
	}
	return st, nil
}

func (c *Coordinator) getStatus(ctx context.Context, addr string) (Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+PathStatus, nil)
	if err != nil {
		return Status{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Status{}, fmt.Errorf("dist: worker %s: status returned %s", addr, resp.Status)
	}
	var st Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return Status{}, fmt.Errorf("dist: worker %s: bad status body: %w", addr, err)
	}
	return st, nil
}

func (c *Coordinator) getRemaining(ctx context.Context, addr string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+PathRemaining, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("dist: worker %s: remaining returned %s", addr, resp.Status)
	}
	var rk RemainingKeys
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<26)).Decode(&rk); err != nil {
		return nil, fmt.Errorf("dist: worker %s: bad remaining body: %w", addr, err)
	}
	return rk.Keys, nil
}

// pullJournal streams entries from seq on, merging each; it returns the
// next sequence number to pull from. A worker serving a different sweep's
// journal is a fatal conflict.
func (c *Coordinator) pullJournal(ctx context.Context, addr string, seq int) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+PathJournal+"?since="+strconv.Itoa(seq), nil)
	if err != nil {
		return seq, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return seq, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return seq, fmt.Errorf("dist: worker %s: journal returned %s", addr, resp.Status)
	}
	if sw := resp.Header.Get(HeaderSweep); sw != "" && sw != c.o.Sweep {
		return seq, &fatalError{fmt.Sprintf("worker %s streams journal for sweep %s, expected %s", addr, sw, c.o.Sweep)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	merged := 0
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		e, perr := harness.ParseLine(raw)
		if perr != nil {
			// The in-memory log cannot corrupt; a bad line means the stream
			// itself broke mid-transfer. Keep what merged and re-pull.
			return seq + merged, fmt.Errorf("dist: worker %s: corrupt journal stream: %v", addr, perr)
		}
		if _, merr := c.o.Merger.Merge(e); merr != nil {
			c.logf("%v", merr)
		}
		merged++
	}
	if serr := sc.Err(); serr != nil {
		return seq + merged, fmt.Errorf("dist: worker %s: journal stream: %w", addr, serr)
	}
	next := seq + merged
	if h := resp.Header.Get(HeaderNext); h != "" {
		if n, nerr := strconv.Atoi(h); nerr == nil && n >= seq && n <= seq+merged {
			next = n
		}
	}
	return next, nil
}
