package dist

import (
	"context"
	"strings"
	"testing"
	"time"

	"ipex/internal/harness"
	"ipex/internal/promtext"
	"ipex/internal/trace"
)

// TestFleetViewAfterSweep runs a real two-worker sweep to completion and
// checks the aggregated view: both workers up with their done counts, no
// remaining work, and a conformant ipex_fleet_* rendering.
func TestFleetViewAfterSweep(t *testing.T) {
	s := newSweep()
	sweep := harness.Key("fleet-view-sweep")
	w1 := startWorker(t, s, sweep, nil)
	w2 := startWorker(t, s, sweep, nil)

	m := NewMerger(nil, nil)
	o := coordOptions([]string{w1.srv.URL, w2.srv.URL}, sweep, m)
	o.Clock = trace.NewWallClock()
	o.Metrics = trace.NewRegistry()
	coord := NewCoordinator(o)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.Run(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	v := coord.Fleet()
	if v.Sweep != sweep || v.Live != 2 || v.Remaining != 0 {
		t.Fatalf("fleet view sweep=%q live=%d remaining=%d, want %q/2/0", v.Sweep, v.Live, v.Remaining, sweep)
	}
	if v.Merged != nCells {
		t.Errorf("merged %d, want %d", v.Merged, nCells)
	}
	total := 0
	for _, w := range v.Workers {
		if !w.Up || w.Dead || w.Straggler {
			t.Errorf("worker %s: up=%v dead=%v straggler=%v after a clean sweep", w.Addr, w.Up, w.Dead, w.Straggler)
		}
		total += w.Done
	}
	if total < nCells {
		t.Errorf("workers report %d done in total, want >= %d", total, nCells)
	}
	if n := o.Metrics.Histogram("dist.sync_seconds", nil).Count(); n == 0 {
		t.Error("no dist.sync_seconds observations after a full sweep")
	}

	var b strings.Builder
	if err := coord.WriteFleetProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if errs := promtext.Lint(out, "ipex_"); len(errs) != 0 {
		t.Errorf("fleet series failed conformance lint: %v\n%s", errs, out)
	}
	for _, want := range []string{
		"ipex_fleet_workers_live 2",
		"ipex_fleet_remaining 0",
		`ipex_fleet_worker_up{worker=` + "\"" + w1.srv.URL + "\"" + `} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet series missing %q:\n%s", want, out)
		}
	}
}

// TestThroughputEWMA drives updateRateLocked with a fake clock: exact
// instantaneous rates, then the half-and-half blend.
func TestThroughputEWMA(t *testing.T) {
	clk := &trace.FakeClock{}
	c := NewCoordinator(Options{Sweep: "s", Clock: clk})
	ws := &workerState{addr: "w"}

	c.updateRateLocked(ws, Status{Done: 0})
	if ws.rate != 0 {
		t.Fatalf("rate after first sync = %g, want 0 (no interval yet)", ws.rate)
	}
	clk.Advance(time.Second)
	c.updateRateLocked(ws, Status{Done: 10}) // 10 cells/s over 1s
	if ws.rate != 10 {
		t.Fatalf("rate after second sync = %g, want 10", ws.rate)
	}
	clk.Advance(time.Second)
	c.updateRateLocked(ws, Status{Done: 30}) // inst 20 → blend (10+20)/2
	if ws.rate != 15 {
		t.Fatalf("rate after third sync = %g, want 15", ws.rate)
	}
	// A worker restart can report a lower Done; the sample is skipped, not
	// folded in as a negative rate.
	clk.Advance(time.Second)
	c.updateRateLocked(ws, Status{Done: 5})
	if ws.rate != 15 {
		t.Fatalf("rate after regressed sync = %g, want unchanged 15", ws.rate)
	}
}

// TestStragglerFlag pins the straggler rule on synthetic state: live, >=
// StealMin remaining, holding more than half the fleet remainder, and only
// when another live worker exists.
func TestStragglerFlag(t *testing.T) {
	c := NewCoordinator(Options{Sweep: "s", StealMin: 4})
	c.workers = []*workerState{
		{addr: "a", everUp: true, last: Status{Assigned: 20, Done: 2, Remaining: 18}},
		{addr: "b", everUp: true, last: Status{Assigned: 20, Done: 18, Remaining: 2}},
		{addr: "c", everUp: true, dead: true, last: Status{Assigned: 20, Remaining: 20}},
	}
	v := c.Fleet()
	if v.Live != 2 || v.Remaining != 20 {
		t.Fatalf("live=%d remaining=%d, want 2/20 (dead workers excluded)", v.Live, v.Remaining)
	}
	flags := map[string]bool{}
	for _, w := range v.Workers {
		flags[w.Addr] = w.Straggler
	}
	if !flags["a"] || flags["b"] || flags["c"] {
		t.Errorf("straggler flags = %v, want only a", flags)
	}

	// A lone live worker is never a straggler — there is nobody to lag.
	c2 := NewCoordinator(Options{Sweep: "s", StealMin: 4})
	c2.workers = []*workerState{
		{addr: "solo", everUp: true, last: Status{Assigned: 20, Remaining: 18}},
	}
	if w := c2.Fleet().Workers[0]; w.Straggler {
		t.Error("lone worker flagged as straggler")
	}
}
