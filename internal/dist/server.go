package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ipex/internal/harness"
)

// HeaderNext carries the next journal sequence number on a
// /dist/v1/journal response: the `since` value that continues the pull.
const HeaderNext = "X-Ipex-Dist-Next"

// HeaderSweep carries the worker's sweep hash on journal responses so a
// coordinator never merges a stream from the wrong sweep, even if routing
// goes sideways.
const HeaderSweep = "X-Ipex-Dist-Sweep"

// maxAssignmentBody bounds an assignment POST (ranges + keys + done lists;
// even a million-cell sweep's done list fits in a few tens of MB).
const maxAssignmentBody = 1 << 27

// NewHandler serves a worker's wire protocol. sup may be nil; when set,
// its counters are exported on /metrics alongside the worker's progress
// gauges.
func NewHandler(w *Worker, sup *harness.Supervisor) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathAssign, func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var a Assignment
		dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxAssignmentBody))
		if err := dec.Decode(&a); err != nil {
			http.Error(rw, fmt.Sprintf("bad assignment body: %v", err), http.StatusBadRequest)
			return
		}
		if err := w.Apply(a); err != nil {
			// Wrong protocol or wrong sweep: a hard conflict, not a retryable
			// failure — the coordinator should drop this worker, not back off.
			http.Error(rw, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(rw, w.Status())
	})
	mux.HandleFunc(PathStatus, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, w.Status())
	})
	mux.HandleFunc(PathJournal, func(rw http.ResponseWriter, r *http.Request) {
		since := 0
		if s := r.URL.Query().Get("since"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(rw, "since must be a non-negative integer", http.StatusBadRequest)
				return
			}
			since = n
		}
		entries, next := w.Log().Since(since)
		rw.Header().Set("Content-Type", "application/jsonl")
		rw.Header().Set(HeaderNext, strconv.Itoa(next))
		rw.Header().Set(HeaderSweep, w.sweep)
		enc := json.NewEncoder(rw)
		for _, e := range entries {
			if err := enc.Encode(e); err != nil {
				return // client gone; it will re-pull from its last seq
			}
		}
	})
	mux.HandleFunc(PathRemaining, func(rw http.ResponseWriter, r *http.Request) {
		max := 0
		if s := r.URL.Query().Get("max"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(rw, "max must be a non-negative integer", http.StatusBadRequest)
				return
			}
			max = n
		}
		writeJSON(rw, RemainingKeys{Keys: w.Remaining(max)})
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		st := w.Status()
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(rw, "ipex_dist_worker_universe %d\n", st.Universe)
		fmt.Fprintf(rw, "ipex_dist_worker_assigned %d\n", st.Assigned)
		fmt.Fprintf(rw, "ipex_dist_worker_done %d\n", st.Done)
		fmt.Fprintf(rw, "ipex_dist_worker_remaining %d\n", st.Remaining)
		fmt.Fprintf(rw, "ipex_dist_worker_seq %d\n", st.Seq)
		fmt.Fprintf(rw, "ipex_dist_worker_passes %d\n", st.Passes)
		fmt.Fprintf(rw, "ipex_dist_worker_gen %d\n", st.Gen)
		if sup != nil {
			cs := sup.Counters.Snapshot()
			fmt.Fprintf(rw, "ipex_cells_executed %d\n", cs.Executed)
			fmt.Fprintf(rw, "ipex_cells_replayed %d\n", cs.Replayed)
			fmt.Fprintf(rw, "ipex_cells_skipped %d\n", cs.Skipped)
			fmt.Fprintf(rw, "ipex_cell_retries %d\n", cs.Retried)
			fmt.Fprintf(rw, "ipex_cell_timeouts %d\n", cs.Timeouts)
			fmt.Fprintf(rw, "ipex_cell_panics %d\n", cs.Panics)
			fmt.Fprintf(rw, "ipex_cell_failures %d\n", cs.Failures)
		}
	})
	return mux
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}
