package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"ipex/internal/harness"
	"ipex/internal/trace"
)

// HeaderNext carries the next journal sequence number on a
// /dist/v1/journal response: the `since` value that continues the pull.
const HeaderNext = "X-Ipex-Dist-Next"

// HeaderSweep carries the worker's sweep hash on journal responses so a
// coordinator never merges a stream from the wrong sweep, even if routing
// goes sideways.
const HeaderSweep = "X-Ipex-Dist-Sweep"

// maxAssignmentBody bounds an assignment POST (ranges + keys + done lists;
// even a million-cell sweep's done list fits in a few tens of MB).
const maxAssignmentBody = 1 << 27

// NewHandler serves a worker's wire protocol. sup may be nil; when set,
// its counters are exported on /metrics alongside the worker's progress
// gauges. reg may be nil; when set, the whole registry — simulator
// counters and the harness lifecycle histograms — is appended to /metrics.
func NewHandler(w *Worker, sup *harness.Supervisor, reg *trace.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathAssign, func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(rw, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var a Assignment
		dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxAssignmentBody))
		if err := dec.Decode(&a); err != nil {
			http.Error(rw, fmt.Sprintf("bad assignment body: %v", err), http.StatusBadRequest)
			return
		}
		if err := w.Apply(a); err != nil {
			// Wrong protocol or wrong sweep: a hard conflict, not a retryable
			// failure — the coordinator should drop this worker, not back off.
			http.Error(rw, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(rw, w.Status())
	})
	mux.HandleFunc(PathStatus, func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, w.Status())
	})
	mux.HandleFunc(PathJournal, func(rw http.ResponseWriter, r *http.Request) {
		since := 0
		if s := r.URL.Query().Get("since"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(rw, "since must be a non-negative integer", http.StatusBadRequest)
				return
			}
			since = n
		}
		entries, next := w.Log().Since(since)
		rw.Header().Set("Content-Type", "application/jsonl")
		rw.Header().Set(HeaderNext, strconv.Itoa(next))
		rw.Header().Set(HeaderSweep, w.sweep)
		enc := json.NewEncoder(rw)
		for _, e := range entries {
			if err := enc.Encode(e); err != nil {
				return // client gone; it will re-pull from its last seq
			}
		}
	})
	mux.HandleFunc(PathRemaining, func(rw http.ResponseWriter, r *http.Request) {
		max := 0
		if s := r.URL.Query().Get("max"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(rw, "max must be a non-negative integer", http.StatusBadRequest)
				return
			}
			max = n
		}
		writeJSON(rw, RemainingKeys{Keys: w.Remaining(max)})
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
		st := w.Status()
		rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		gauge("ipex_dist_worker_universe", "cells in the sweep universe", int64(st.Universe))
		gauge("ipex_dist_worker_assigned", "cells assigned to this worker", int64(st.Assigned))
		gauge("ipex_dist_worker_done", "assigned cells completed", int64(st.Done))
		gauge("ipex_dist_worker_remaining", "assigned cells not yet completed", int64(st.Remaining))
		gauge("ipex_dist_worker_seq", "journal entries available to pull", int64(st.Seq))
		gauge("ipex_dist_worker_passes", "sweep passes run so far", int64(st.Passes))
		gauge("ipex_dist_worker_gen", "latest acknowledged assignment generation", st.Gen)
		if sup != nil {
			cs := sup.Counters.Snapshot()
			gauge("ipex_cells_executed", "cells simulated in this process", int64(cs.Executed))
			gauge("ipex_cells_replayed", "cells answered from the journal", int64(cs.Replayed))
			gauge("ipex_cells_skipped", "cells outside this worker's shard", int64(cs.Skipped))
			gauge("ipex_cell_retries", "re-runs after a transient failure", int64(cs.Retried))
			gauge("ipex_cell_timeouts", "wall-clock backstop expiries", int64(cs.Timeouts))
			gauge("ipex_cell_panics", "isolated cell panics", int64(cs.Panics))
			gauge("ipex_cell_failures", "cells journaled as failed", int64(cs.Failures))
		}
		if reg != nil {
			// A scrape racing a disconnect can fail mid-write; nothing to do.
			_ = reg.WriteProm(rw)
		}
	})
	return mux
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}
