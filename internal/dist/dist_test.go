package dist

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"ipex/internal/harness"
	"ipex/internal/nvp"
)

// The chaos tests run a synthetic sweep — nCells deterministic cells with
// content-hash keys, exactly like experiment cells — through real Workers
// served over real HTTP, and a real Coordinator, then compare the merged
// replay map against the serial expectation. Byte-identity of the final
// artifacts follows from this map being exact: the rendering pass replays
// it verbatim.
const nCells = 40

type syntheticSweep struct {
	keys    []string
	labels  []string
	results map[string]nvp.Result
}

func newSweep() *syntheticSweep {
	s := &syntheticSweep{results: make(map[string]nvp.Result)}
	for i := 0; i < nCells; i++ {
		label := fmt.Sprintf("cell%02d", i)
		key := harness.Key(struct {
			Cell  int
			Label string
		}{i, label})
		s.keys = append(s.keys, key)
		s.labels = append(s.labels, label)
		s.results[key] = nvp.Result{
			App: label, Completed: true,
			Insts: uint64(100 + i), Cycles: uint64(1000 + 7*i),
			OnCycles: uint64(600 + 3*i), OffCycles: uint64(400 + 4*i),
		}
	}
	return s
}

// checkMerged requires the replay map to hold every cell with its exact
// serial result — the package-level form of the byte-identity guarantee.
func (s *syntheticSweep) checkMerged(t *testing.T, replay map[string]*harness.Entry) {
	t.Helper()
	for i, k := range s.keys {
		e := replay[k]
		if e == nil {
			t.Fatalf("cell %s (%s) missing from merged replay", s.labels[i], k)
		}
		if e.Kind != harness.KindCell || e.Result == nil {
			t.Fatalf("cell %s merged as %s", s.labels[i], e.Kind)
		}
		if !reflect.DeepEqual(*e.Result, s.results[k]) {
			t.Fatalf("cell %s merged result %+v, want %+v", s.labels[i], *e.Result, s.results[k])
		}
	}
}

// testWorker is one in-process worker: state machine, supervisor, HTTP
// server, and pass loop, wired exactly as cmd/experiments -worker wires
// them. body, when set, runs inside each executed cell (chaos hooks).
type testWorker struct {
	w      *Worker
	sup    *harness.Supervisor
	srv    *httptest.Server
	cancel context.CancelFunc
	done   chan struct{}
}

func startWorker(t *testing.T, s *syntheticSweep, sweep string, body func(key string)) *testWorker {
	t.Helper()
	w := NewWorker(sweep)
	sup := &harness.Supervisor{Journal: w.Sink()}
	sup.Skip = w.Skip
	pass := func(ctx context.Context) {
		for i, k := range s.keys {
			if ctx.Err() != nil {
				return
			}
			k := k
			res := s.results[k]
			sup.RunCell(harness.Cell{
				Key:   k,
				Label: s.labels[i],
				Run: func(ctx context.Context, a *nvp.Arena) (nvp.Result, error) {
					if body != nil {
						body(k)
					}
					return res, nil
				},
			}, nil)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx, pass)
	}()
	srv := httptest.NewServer(NewHandler(w, sup, nil))
	tw := &testWorker{w: w, sup: sup, srv: srv, cancel: cancel, done: done}
	t.Cleanup(tw.stop)
	return tw
}

func (tw *testWorker) stop() {
	tw.srv.Close()
	tw.cancel()
	<-tw.done
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func coordOptions(addrs []string, sweep string, m *Merger) Options {
	return Options{
		Workers:     addrs,
		Sweep:       sweep,
		Merger:      m,
		Poll:        5 * time.Millisecond,
		Timeout:     2 * time.Second,
		MaxFailures: 2,
		StealMin:    2,
	}
}

// TestFleetCompletes: two healthy workers split the sweep and the merged
// replay matches the serial run exactly, with work on both sides.
func TestFleetCompletes(t *testing.T) {
	s := newSweep()
	sweep := harness.Key("fleet-sweep")
	w1 := startWorker(t, s, sweep, nil)
	w2 := startWorker(t, s, sweep, nil)

	m := NewMerger(nil, nil)
	coord := NewCoordinator(coordOptions([]string{w1.srv.URL, w2.srv.URL}, sweep, m))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.Run(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	s.checkMerged(t, m.Replay())
	snap := coord.Snapshot()
	if snap.Merged != nCells {
		t.Errorf("merged %d entries, want %d", snap.Merged, nCells)
	}
	for _, ws := range snap.Workers {
		if ws.Done == 0 {
			t.Errorf("worker %s did no cells; hash-range sharding should split a %d-cell sweep", ws.Addr, nCells)
		}
	}
}

// TestWorkerDeathResharded: one worker's cells wedge and its process dies
// mid-sweep (server torn down); the coordinator must declare it dead after
// bounded health-check failures, re-shard its range to the survivor, and
// still produce the exact serial result set.
func TestWorkerDeathResharded(t *testing.T) {
	s := newSweep()
	sweep := harness.Key("death-sweep")
	w1 := startWorker(t, s, sweep, nil)
	gate := make(chan struct{})
	defer close(gate)
	w2 := startWorker(t, s, sweep, func(string) { <-gate }) // wedged mid-cell, like a kill -9 victim

	m := NewMerger(nil, nil)
	coord := NewCoordinator(coordOptions([]string{w1.srv.URL, w2.srv.URL}, sweep, m))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- coord.Run(ctx) }()

	// Let the doomed worker receive its shard first — death mid-sweep, not
	// before it.
	waitFor(t, 30*time.Second, "worker 2 to ack its shard", func() bool {
		snap := coord.Snapshot()
		return len(snap.Workers) == 2 && snap.Workers[1].Assigned > 0
	})
	w2.srv.Close()

	if err := <-errc; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	s.checkMerged(t, m.Replay())
	snap := coord.Snapshot()
	if snap.DeadWorkers != 1 {
		t.Errorf("dead workers = %d, want 1", snap.DeadWorkers)
	}
	if snap.Resharded == 0 {
		t.Error("no ranges re-sharded after a worker death")
	}
}

// TestStalledWorkerTimesOut: a partitioned worker — accepts connections,
// never answers — must be cut off by the request deadline and declared
// dead, not hang the fleet.
func TestStalledWorkerTimesOut(t *testing.T) {
	s := newSweep()
	sweep := harness.Key("stall-sweep")
	w1 := startWorker(t, s, sweep, nil)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c) // swallow the request, never respond
		}
	}()

	m := NewMerger(nil, nil)
	o := coordOptions([]string{w1.srv.URL, "http://" + ln.Addr().String()}, sweep, m)
	o.Timeout = 100 * time.Millisecond
	coord := NewCoordinator(o)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := coord.Run(ctx); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	s.checkMerged(t, m.Replay())
	if snap := coord.Snapshot(); snap.DeadWorkers != 1 {
		t.Errorf("dead workers = %d, want 1 (the stalled one)", snap.DeadWorkers)
	}
}

// TestDoubleAssignDedup: both workers are (wrongly) assigned the whole key
// space; every cell executes twice, and the merge must keep exactly one
// bit-identical entry per cell.
func TestDoubleAssignDedup(t *testing.T) {
	s := newSweep()
	sweep := harness.Key("double-sweep")
	w1 := startWorker(t, s, sweep, nil)
	w2 := startWorker(t, s, sweep, nil)

	full := Assignment{Schema: ProtoSchema, Sweep: sweep, Gen: 1, Ranges: Split(1)}
	if err := w1.w.Apply(full); err != nil {
		t.Fatal(err)
	}
	if err := w2.w.Apply(full); err != nil {
		t.Fatal(err)
	}
	for _, tw := range []*testWorker{w1, w2} {
		tw := tw
		waitFor(t, 30*time.Second, "worker to finish the full sweep", func() bool {
			return tw.w.Status().Complete()
		})
	}

	m := NewMerger(nil, nil)
	for _, tw := range []*testWorker{w1, w2} {
		entries, _ := tw.w.Log().Since(0)
		for _, e := range entries {
			if _, err := m.Merge(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.checkMerged(t, m.Replay())
	if m.Merged() != nCells || m.Duplicates() != nCells {
		t.Errorf("merged/dups = %d/%d, want %d/%d", m.Merged(), m.Duplicates(), nCells, nCells)
	}
}

// TestWorkStealing: one worker wedges mid-shard; once the other is idle,
// the coordinator steals the straggler's tail. After the wedge clears the
// sweep completes with the exact serial results, stolen duplicates and all.
func TestWorkStealing(t *testing.T) {
	s := newSweep()
	sweep := harness.Key("steal-sweep")
	w1 := startWorker(t, s, sweep, nil)
	gate := make(chan struct{})
	var gateClosed bool
	defer func() {
		if !gateClosed {
			close(gate)
		}
	}()
	w2 := startWorker(t, s, sweep, func(string) { <-gate })

	m := NewMerger(nil, nil)
	coord := NewCoordinator(coordOptions([]string{w1.srv.URL, w2.srv.URL}, sweep, m))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- coord.Run(ctx) }()

	waitFor(t, 30*time.Second, "a steal from the straggler", func() bool {
		return coord.Snapshot().Stolen > 0
	})
	close(gate)
	gateClosed = true

	if err := <-errc; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	s.checkMerged(t, m.Replay())
	if snap := coord.Snapshot(); snap.Stolen == 0 {
		t.Error("no cells stolen")
	}
}

// TestNoWorkers: an unreachable fleet degrades cleanly — ErrNoWorkers,
// nothing merged, nothing hung — so the caller can fall back to local
// execution.
func TestNoWorkers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	ln.Close() // nothing listens there any more

	m := NewMerger(nil, nil)
	o := coordOptions([]string{addr}, harness.Key("ghost-sweep"), m)
	coord := NewCoordinator(o)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Run(ctx); err != ErrNoWorkers {
		t.Fatalf("Run = %v, want ErrNoWorkers", err)
	}

	if err := NewCoordinator(Options{Sweep: "s", Merger: m}).Run(context.Background()); err != ErrNoWorkers {
		t.Fatalf("empty fleet: Run = %v, want ErrNoWorkers", err)
	}
}

// TestSweepMismatchIsFatal: a worker started with a different command line
// (different sweep hash) must be rejected on first contact, not retried
// into the fleet.
func TestSweepMismatchIsFatal(t *testing.T) {
	s := newSweep()
	w1 := startWorker(t, s, harness.Key("sweep-A"), nil)

	m := NewMerger(nil, nil)
	coord := NewCoordinator(coordOptions([]string{w1.srv.URL}, harness.Key("sweep-B"), m))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Run(ctx); err != ErrNoWorkers {
		t.Fatalf("Run = %v, want ErrNoWorkers after the mismatch kills the only worker", err)
	}
	if snap := coord.Snapshot(); snap.DeadWorkers != 1 {
		t.Errorf("dead workers = %d, want 1", snap.DeadWorkers)
	}
	if m.Merged() != 0 {
		t.Errorf("merged %d entries from a mismatched sweep, want 0", m.Merged())
	}
}

// TestWorkerJournalEndpointPaging: the journal stream resumes exactly at
// `since`, entry-aligned.
func TestWorkerJournalEndpointPaging(t *testing.T) {
	s := newSweep()
	sweep := harness.Key("page-sweep")
	w1 := startWorker(t, s, sweep, nil)
	if err := w1.w.Apply(Assignment{Schema: ProtoSchema, Sweep: sweep, Gen: 1, Ranges: Split(1)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "full sweep", func() bool { return w1.w.Status().Complete() })

	m := NewMerger(nil, nil)
	c := NewCoordinator(coordOptions([]string{w1.srv.URL}, sweep, m))
	half := nCells / 2
	next, err := c.pullJournal(context.Background(), w1.srv.URL, half)
	if err != nil {
		t.Fatal(err)
	}
	if next != nCells {
		t.Fatalf("next = %d, want %d", next, nCells)
	}
	if got := int(m.Merged()); got != nCells-half {
		t.Fatalf("merged %d entries from since=%d, want %d", got, half, nCells-half)
	}
}
