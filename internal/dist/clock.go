package dist

import (
	"context"
	"time"
)

// This file is the package's only wall-clock touchpoint, mirroring
// internal/harness/watchdog.go: distributed execution needs real time for
// health-check pacing, but nothing that feeds a simulated result may ever
// observe it. The determinism lint pins wall-clock use in internal/ to
// exactly these two files.

// sleepCtx suspends for d or until ctx is cancelled, returning ctx's error
// in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
