package dist

import (
	"context"
	"sync"

	"ipex/internal/harness"
)

// Worker is the state machine of one distributed sweep worker. The driver
// (cmd/experiments -worker) wires it into a sweep in three places:
//
//   - Supervisor.Skip = w.Skip — the shard filter. The worker re-runs the
//     whole sweep definition locally, and the filter lets through only
//     cells inside its current assignment that are not yet done.
//   - Supervisor.Journal = w.Sink() — finished cells stream into the
//     in-memory Log the coordinator drains over HTTP.
//   - w.Run(ctx, pass) — the pass loop: one enumeration pass to learn the
//     sweep's cell universe (everything skipped, keys recorded), then an
//     execution pass whenever assigned undone cells exist.
//
// The enumeration pass is what makes key-range sharding workable without
// any central cell list: hashing every cell of the sweep costs milliseconds
// per thousand cells, after which the worker can answer exactly which keys
// of its assignment remain — the coordinator steals from that answer.
type Worker struct {
	sweep string
	log   *Log

	mu          sync.Mutex
	universe    []string // unique cell keys in first-seen order
	inUniverse  map[string]bool
	ranges      []KeyRange
	keys        map[string]bool
	done        map[string]bool
	gen         int64
	enumerating bool
	enumerated  bool
	passes      int64

	wake chan struct{}
}

// NewWorker builds a worker for the sweep identified by sweepKey (the
// same harness.Key hash the journal header carries; assignments for any
// other sweep are rejected).
func NewWorker(sweepKey string) *Worker {
	return &Worker{
		sweep:      sweepKey,
		log:        &Log{},
		inUniverse: make(map[string]bool),
		keys:       make(map[string]bool),
		done:       make(map[string]bool),
		wake:       make(chan struct{}, 1),
	}
}

// Log exposes the worker's journal entry log (the coordinator's pull
// source).
func (w *Worker) Log() *Log { return w.log }

// Sink returns the journal sink the sweep's Supervisor must write to:
// entries land in the log first, then mark the cell done — that order is
// what lets the coordinator trust "remaining == 0 at seq S" to mean every
// done cell's entry exists at a sequence number ≤ S.
func (w *Worker) Sink() harness.Sink { return workerSink{w} }

type workerSink struct{ w *Worker }

func (s workerSink) Append(e harness.Entry) error {
	err := s.w.log.Append(e)
	if e.Key != "" && (e.Kind == harness.KindCell || e.Kind == harness.KindFail) {
		s.w.mu.Lock()
		s.w.done[e.Key] = true
		s.w.mu.Unlock()
	}
	return err
}

// Skip is the Supervisor filter: record the key into the universe, then
// skip it unless it is assigned, undone, and this is an execution pass.
func (w *Worker) Skip(key string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.inUniverse[key] {
		w.inUniverse[key] = true
		w.universe = append(w.universe, key)
	}
	if w.enumerating || w.done[key] {
		return true
	}
	return !inAssignment(key, w.ranges, w.keys)
}

// Apply folds an assignment in (cumulative: ranges and keys union, done
// keys mark). Stale generations are ignored — a retried POST that raced a
// newer assignment must not regress anything — and a fresh one wakes the
// pass loop.
func (w *Worker) Apply(a Assignment) error {
	if err := validate("assignment", a.Schema, a.Sweep, w.sweep); err != nil {
		return err
	}
	w.mu.Lock()
	if a.Gen < w.gen {
		w.mu.Unlock()
		return nil
	}
	w.gen = a.Gen
	w.ranges = append(w.ranges, a.Ranges...)
	for _, k := range a.Keys {
		w.keys[k] = true
	}
	for _, k := range a.Done {
		w.done[k] = true
	}
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return nil
}

// Status reports health and progress. The journal sequence number is read
// after the remaining count on purpose: done implies appended, so a status
// with Remaining == 0 guarantees every assigned cell's entry sits at a
// sequence number ≤ Seq — the coordinator may stop pulling at Seq without
// losing an entry.
func (w *Worker) Status() Status {
	w.mu.Lock()
	st := Status{
		Schema:     ProtoSchema,
		Sweep:      w.sweep,
		Gen:        w.gen,
		Enumerated: w.enumerated,
		Universe:   len(w.universe),
		Passes:     w.passes,
	}
	for _, k := range w.universe {
		if inAssignment(k, w.ranges, w.keys) {
			st.Assigned++
			if w.done[k] {
				st.Done++
			} else {
				st.Remaining++
			}
		}
	}
	w.mu.Unlock()
	st.Seq = w.log.Len()
	return st
}

// Remaining lists assigned, enumerated, not-yet-done keys in enumeration
// order (at most max when max > 0). The tail of this list is what a
// coordinator steals: the head is what this worker's own pool dispatches
// next.
func (w *Worker) Remaining(max int) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, k := range w.universe {
		if !w.done[k] && inAssignment(k, w.ranges, w.keys) {
			out = append(out, k)
			if max > 0 && len(out) == max {
				break
			}
		}
	}
	return out
}

func (w *Worker) remainingCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, k := range w.universe {
		if !w.done[k] && inAssignment(k, w.ranges, w.keys) {
			n++
		}
	}
	return n
}

// Run drives the pass loop until ctx is cancelled: enumerate once, then
// execute whenever assigned undone cells exist, otherwise sleep until an
// assignment wakes it. pass runs the full sweep definition under the
// worker's filter; its rendered output is meaningless (skipped cells
// return placeholders) and the driver discards it — only the journaled
// entries matter.
func (w *Worker) Run(ctx context.Context, pass func(context.Context)) error {
	w.mu.Lock()
	w.enumerating = true
	w.mu.Unlock()
	pass(ctx)
	w.mu.Lock()
	w.enumerating = false
	w.enumerated = true
	w.mu.Unlock()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.remainingCount() > 0 {
			pass(ctx)
			w.mu.Lock()
			w.passes++
			w.mu.Unlock()
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.wake:
		}
	}
}
