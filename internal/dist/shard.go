package dist

import (
	"encoding/hex"
	"fmt"
	"math/big"
)

// keyBits is the width of a cell key: harness.Key truncates SHA-256 to 32
// hex digits, i.e. 128 bits. Keys are uniformly distributed (they are
// cryptographic hash prefixes), so splitting the 128-bit space into equal
// contiguous ranges balances cell counts across workers without anyone
// enumerating the universe first.
const keyBits = 128

// KeyRange is a half-open interval of the cell-key space: Lo inclusive, Hi
// exclusive, both 32-digit lowercase hex (equal-length strings compare
// correctly byte-wise). An empty Hi means "to the end of the space".
type KeyRange struct {
	Lo string `json:"lo"`
	Hi string `json:"hi,omitempty"`
}

// Contains reports whether key falls in the range.
func (r KeyRange) Contains(key string) bool {
	if key < r.Lo {
		return false
	}
	return r.Hi == "" || key < r.Hi
}

// String renders the range for logs.
func (r KeyRange) String() string {
	hi := r.Hi
	if hi == "" {
		hi = "∞"
	}
	return fmt.Sprintf("[%s, %s)", r.Lo, hi)
}

// Split partitions the whole key space into n contiguous, disjoint,
// collectively exhaustive ranges of equal width. n < 1 is treated as 1.
func Split(n int) []KeyRange {
	if n < 1 {
		n = 1
	}
	space := new(big.Int).Lsh(big.NewInt(1), keyBits)
	ranges := make([]KeyRange, n)
	for i := 0; i < n; i++ {
		lo := boundary(space, i, n)
		ranges[i] = KeyRange{Lo: lo}
		if i > 0 {
			ranges[i-1].Hi = lo
		}
	}
	ranges[0].Lo = zeroKey()
	return ranges
}

// boundary returns i*2^128/n as a 32-digit hex key.
func boundary(space *big.Int, i, n int) string {
	b := new(big.Int).Mul(space, big.NewInt(int64(i)))
	b.Div(b, big.NewInt(int64(n)))
	buf := make([]byte, keyBits/8)
	b.FillBytes(buf)
	return hex.EncodeToString(buf)
}

func zeroKey() string {
	return "00000000000000000000000000000000"
}

// inAssignment reports whether key is covered by any of the ranges or the
// explicit key set.
func inAssignment(key string, ranges []KeyRange, keys map[string]bool) bool {
	if keys[key] {
		return true
	}
	for _, r := range ranges {
		if r.Contains(key) {
			return true
		}
	}
	return false
}
