package dist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipex/internal/harness"
	"ipex/internal/nvp"
)

func cellEntry(key string, insts uint64) harness.Entry {
	return harness.Entry{
		Kind: harness.KindCell,
		Key:  key,
		App:  "app-" + key[:4],
		Result: &nvp.Result{
			App: "app-" + key[:4], Completed: true,
			Insts: insts, Cycles: insts * 2, OnCycles: insts, OffCycles: insts,
		},
	}
}

func failEntry(key string) harness.Entry {
	return harness.Entry{Kind: harness.KindFail, Key: key, App: "app", Error: "boom"}
}

func TestMergeSuccessWins(t *testing.T) {
	m := NewMerger(nil, nil)
	k := harness.Key("cell")

	if ch, _ := m.Merge(cellEntry(k, 10)); !ch {
		t.Fatal("first cell entry must merge")
	}
	if ch, _ := m.Merge(cellEntry(k, 10)); ch {
		t.Fatal("duplicate cell entry must drop")
	}
	if ch, _ := m.Merge(failEntry(k)); ch {
		t.Fatal("a fail must never displace a merged cell")
	}
	if got := m.Replay()[k]; got == nil || got.Kind != harness.KindCell {
		t.Fatalf("replay[%s] = %+v, want the cell entry", k, got)
	}

	k2 := harness.Key("cell2")
	if ch, _ := m.Merge(failEntry(k2)); !ch {
		t.Fatal("first fail entry must merge")
	}
	if ch, _ := m.Merge(cellEntry(k2, 7)); !ch {
		t.Fatal("a cell must replace a merged fail")
	}
	if got := m.Replay()[k2]; got.Kind != harness.KindCell {
		t.Fatalf("replay[%s].Kind = %s after success, want cell", k2, got.Kind)
	}
	if m.Merged() != 3 || m.Duplicates() != 2 {
		t.Fatalf("merged/dups = %d/%d, want 3/2", m.Merged(), m.Duplicates())
	}

	// Non-cell kinds and keyless entries are ignored outright.
	if ch, _ := m.Merge(harness.Entry{Kind: harness.KindHeader, Schema: harness.Schema}); ch {
		t.Fatal("header entries must not merge")
	}
	if ch, _ := m.Merge(harness.Entry{Kind: harness.KindCell}); ch {
		t.Fatal("keyless entries must not merge")
	}
}

// writeSegment builds a worker-local journal segment file: a header line
// for the given schema+sweep, then the entries as JSONL, then rawTail
// verbatim (for corruption tests).
func writeSegment(t *testing.T, dir, name, schema, sweep string, entries []harness.Entry, rawTail string) string {
	t.Helper()
	var b strings.Builder
	hdr, _ := json.Marshal(harness.Entry{Kind: harness.KindHeader, Schema: schema, Sweep: sweep})
	b.Write(hdr)
	b.WriteByte('\n')
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString(rawTail)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMergeSegmentsDuplicateKeys: the same cell journaled by two workers
// (double-assigned or stolen) must merge exactly once.
func TestMergeSegmentsDuplicateKeys(t *testing.T) {
	dir := t.TempDir()
	sweep := harness.Key("sweep")
	ka, kb := harness.Key("a"), harness.Key("b")
	s1 := writeSegment(t, dir, "w1.jsonl", harness.Schema, sweep,
		[]harness.Entry{cellEntry(ka, 10), cellEntry(kb, 20)}, "")
	s2 := writeSegment(t, dir, "w2.jsonl", harness.Schema, sweep,
		[]harness.Entry{cellEntry(kb, 20), cellEntry(ka, 10)}, "")

	m := NewMerger(nil, nil)
	merged, warns, errs := MergeSegments(m, []string{s1, s2}, sweep)
	if len(errs) != 0 || len(warns) != 0 {
		t.Fatalf("errs=%v warns=%v", errs, warns)
	}
	if merged != 2 || m.Duplicates() != 2 {
		t.Fatalf("merged=%d dups=%d, want 2 and 2", merged, m.Duplicates())
	}
	if len(m.Replay()) != 2 {
		t.Fatalf("replay holds %d keys, want 2", len(m.Replay()))
	}
}

// TestMergeSegmentCorruptedTail: a torn final line (the worker was killed
// mid-write) costs only that line, with a warning pointing at the re-run.
func TestMergeSegmentCorruptedTail(t *testing.T) {
	dir := t.TempDir()
	sweep := harness.Key("sweep")
	ka := harness.Key("a")
	path := writeSegment(t, dir, "torn.jsonl", harness.Schema, sweep,
		[]harness.Entry{cellEntry(ka, 5)}, `{"kind":"cell","key":"beef","result":{"app":"x`)

	m := NewMerger(nil, nil)
	merged, warns, err := MergeSegment(m, path, sweep)
	if err != nil {
		t.Fatalf("a torn tail must not condemn the segment: %v", err)
	}
	if merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "re-run") {
		t.Fatalf("warns = %v, want one pointing at the re-run", warns)
	}
	if m.Replay()[ka] == nil {
		t.Fatal("the intact entry before the torn line must merge")
	}
}

// TestMergeSegmentStaleSweep: a segment whose header hashes a different
// sweep is rejected whole — its entries belong to a different experiment —
// while sibling segments still merge.
func TestMergeSegmentStaleSweep(t *testing.T) {
	dir := t.TempDir()
	sweep := harness.Key("sweep")
	ka, kb := harness.Key("a"), harness.Key("b")
	good := writeSegment(t, dir, "good.jsonl", harness.Schema, sweep,
		[]harness.Entry{cellEntry(ka, 5)}, "")
	stale := writeSegment(t, dir, "stale.jsonl", harness.Schema, harness.Key("older sweep"),
		[]harness.Entry{cellEntry(kb, 9)}, "")

	m := NewMerger(nil, nil)
	merged, _, errs := MergeSegments(m, []string{stale, good}, sweep)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "sweep") {
		t.Fatalf("errs = %v, want exactly one sweep-mismatch rejection", errs)
	}
	if merged != 1 || len(m.Replay()) != 1 || m.Replay()[ka] == nil {
		t.Fatalf("good segment must merge despite the stale sibling: merged=%d replay=%v", merged, m.Replay())
	}
	if m.Replay()[kb] != nil {
		t.Fatal("no entry of the rejected segment may leak into the replay map")
	}
}

// TestMergeSegmentRejections: foreign schema and missing header condemn a
// segment before any entry merges.
func TestMergeSegmentRejections(t *testing.T) {
	dir := t.TempDir()
	sweep := harness.Key("sweep")
	ka := harness.Key("a")

	foreign := writeSegment(t, dir, "foreign.jsonl", "ipex-journal/v999", sweep,
		[]harness.Entry{cellEntry(ka, 5)}, "")
	m := NewMerger(nil, nil)
	if _, _, err := MergeSegment(m, foreign, sweep); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("foreign schema: err = %v", err)
	}

	headless := filepath.Join(dir, "headless.jsonl")
	line, _ := json.Marshal(cellEntry(ka, 5))
	if err := os.WriteFile(headless, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeSegment(m, headless, sweep); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("missing header: err = %v", err)
	}
	if len(m.Replay()) != 0 {
		t.Fatal("rejected segments must leave the merger untouched")
	}

	if _, _, err := MergeSegment(m, filepath.Join(dir, "absent.jsonl"), sweep); err == nil {
		t.Fatal("an unreadable segment must error")
	}
}
