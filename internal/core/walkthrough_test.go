package core

import (
	"math"
	"testing"
)

// TestFigure7Walkthrough replays the paper's Figure 7 scenario step by
// step and checks every register value the figure tabulates.
//
//	T0: reboot, V=3.4, R_ipd=2, V_thres=3.3  -> R_cpd=2, counters 0
//	T1: V=3.28 (crosses 3.3 down)            -> R_cpd=1; prefetch A issued,
//	    B suppressed: R_total=2, R_throttled=1
//	T2: V=3.22 (still below both... the figure uses one threshold)
//	T3: power failure: registers JIT-checkpointed
//	T4: reboot: R_tr=50%, R_cpd=2, V_thres lowered 3.3->3.25
func TestFigure7Walkthrough(t *testing.T) {
	cfg := DefaultConfig(3.18, 3.40)
	cfg.Thresholds = []float64{3.30} // the figure tracks a single threshold
	c := MustNewController(cfg)

	// T0: reboot at 3.4 V.
	c.Observe(3.40)
	if c.Degree() != 2 {
		t.Fatalf("T0: R_cpd = %d, want 2", c.Degree())
	}
	if th, tot := c.ThrottlingRegisters(); th != 0 || tot != 0 {
		t.Fatalf("T0: registers %d/%d, want 0/0", th, tot)
	}

	// T1: V drops to 3.28, crossing 3.3: degree halves to 1; the
	// prefetcher wanted 2 (A and B), issued 1 (A).
	c.Observe(3.28)
	if c.Degree() != 1 {
		t.Fatalf("T1: R_cpd = %d, want 1", c.Degree())
	}
	c.Record(2, 1)
	if th, tot := c.ThrottlingRegisters(); th != 1 || tot != 2 {
		t.Fatalf("T1: registers %d/%d, want 1/2", th, tot)
	}

	// T2: V keeps falling to 3.22; no further threshold, registers hold.
	c.Observe(3.22)
	if th, tot := c.ThrottlingRegisters(); th != 1 || tot != 2 {
		t.Fatalf("T2: registers %d/%d, want 1/2 (unchanged)", th, tot)
	}

	// T3: power failure; R_throttled and R_total are JIT-checkpointed.
	c.Backup()

	// T4: reboot. R_tr = 1/2 = 50% >= 5%: the threshold moves down by
	// 0.05 V (3.30 -> 3.25) and R_cpd resets to R_ipd = 2.
	c.OnReboot()
	if got := c.LastTR(); got != 0.5 {
		t.Errorf("T4: R_tr = %v, want 0.50", got)
	}
	if c.Degree() != 2 {
		t.Errorf("T4: R_cpd = %d, want reset to 2", c.Degree())
	}
	if th := c.Thresholds(); math.Abs(th[0]-3.25) > 1e-9 {
		t.Errorf("T4: V_thres = %v, want 3.25", th[0])
	}
}

// TestFigure9Walkthrough replays Figure 9's two-threshold degree schedule:
//
//	V: 3.35 -> 3.28 -> 3.35 -> 3.28 -> 3.22
//	R_cpd: 2  ->  1  ->  2  ->  1  ->  0
func TestFigure9Walkthrough(t *testing.T) {
	c := MustNewController(DefaultConfig(3.18, 3.40)) // thresholds 3.30/3.25
	steps := []struct {
		v    float64
		want int
	}{
		{3.35, 2}, // T1: above V1, high-performance mode
		{3.28, 1}, // T2: below V1, halve
		{3.35, 2}, // T3: back above V1, double
		{3.28, 1}, // T4: below V1 again
		{3.22, 0}, // T5: below V2, halve to 0
	}
	for i, st := range steps {
		c.Observe(st.v)
		if c.Degree() != st.want {
			t.Fatalf("T%d (V=%.2f): R_cpd = %d, want %d", i+1, st.v, c.Degree(), st.want)
		}
	}
}
