// Package core implements IPEX, the paper's contribution: an
// Intermittence-aware Prefetching EXtension that throttles the prefetch
// degree of an existing hardware prefetcher according to the capacitor
// voltage, so that blocks whose use would fall beyond the upcoming power
// failure are never fetched.
//
// One Controller instance manages one cache's prefetcher (the paper gives
// ICache and DCache independent register sets). The controller holds the
// paper's four registers:
//
//	R_throttled — prefetch operations suppressed this power cycle (32 bit)
//	R_total     — issued + throttled prefetch operations (32 bit)
//	R_tr        — the throttling rate computed at reboot (float)
//	R_ipd       — the initial prefetch degree (3 bit, reset target)
//
// plus the prefetcher's own R_cpd (current prefetch degree) register it
// manipulates. Crossing below a voltage threshold halves R_cpd; crossing
// back above doubles it (capped at MaxDegree). At reboot, R_throttled and
// R_total are restored from their JIT checkpoint, R_tr = R_throttled /
// R_total is computed, and every threshold moves one step down (more
// prefetching) if R_tr ≥ the trigger rate or one step up (more saving)
// otherwise.
package core

import (
	"fmt"
	"math"

	"ipex/internal/prefetch"
	"ipex/internal/trace"
)

// Config parameterises one IPEX controller.
type Config struct {
	// Enabled turns the extension on. A disabled controller behaves as the
	// conventional prefetcher: the degree is constant at InitialDegree and
	// nothing is ever throttled.
	Enabled bool
	// InitialDegree is R_ipd, the degree restored at every reboot
	// (paper default 2).
	InitialDegree int
	// MaxDegree caps R_cpd (paper: 4, from the 3-bit R_ipd encoding).
	MaxDegree int
	// Thresholds are the initial voltage thresholds in volts, strictly
	// descending (paper default {3.30, 3.25}). Their count is the paper's
	// "V_thres count" sensitivity knob (Fig. 16).
	Thresholds []float64
	// StepV is the adaptive threshold adjustment step (paper default
	// 0.05 V; Fig. 24 sweeps it).
	StepV float64
	// ThrottleRateTrigger is the R_tr value at or above which thresholds
	// are lowered (paper default 5%; Fig. 25 sweeps it).
	ThrottleRateTrigger float64
	// Adaptive enables the reboot-time threshold tuning; disabling it is
	// the fixed-threshold ablation.
	Adaptive bool
	// LinearAdjust switches the degree policy from the paper's
	// halve/double to ±1 per crossing — the degree-policy ablation
	// (DESIGN.md); off by default.
	LinearAdjust bool
	// MinV/MaxV clamp adapted thresholds to the system's live band
	// (Vbackup..Von); a threshold below the backup trigger could never
	// fire (the system checkpoints and dies at Vbackup) and one above the
	// reboot voltage would throttle from the first cycle.
	MinV, MaxV float64
}

// DefaultConfig returns the paper's IPEX configuration for a live band of
// (vbackup, von) volts.
func DefaultConfig(vbackup, von float64) Config {
	return Config{
		Enabled:             true,
		InitialDegree:       2,
		MaxDegree:           prefetch.MaxDegree,
		Thresholds:          []float64{3.30, 3.25},
		StepV:               0.05,
		ThrottleRateTrigger: 0.05,
		Adaptive:            true,
		MinV:                vbackup,
		MaxV:                von,
	}
}

// ThresholdsFor spreads k thresholds evenly through the upper part of the
// operating band, reproducing the defaults for k=2 (3.30, 3.25 inside a
// 3.0–3.4 band with the default 0.05 V spacing).
func ThresholdsFor(k int, vbackup, von float64) []float64 {
	if k <= 0 {
		return nil
	}
	top := von - 0.1
	step := 0.05
	ths := make([]float64, k)
	for i := 0; i < k; i++ {
		ths[i] = top - float64(i)*step
		if ths[i] <= vbackup {
			ths[i] = vbackup + 0.01
		}
	}
	return ths
}

// Validate reports configuration errors. The NaN checks matter: every
// comparison against NaN is false, so without them a NaN step, trigger, or
// threshold would sail through the range checks below and poison the
// controller's crossing decisions at run time.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.InitialDegree < 1 || c.InitialDegree > c.MaxDegree {
		return fmt.Errorf("core: initial degree %d out of range [1,%d]", c.InitialDegree, c.MaxDegree)
	}
	if len(c.Thresholds) == 0 {
		return fmt.Errorf("core: IPEX enabled with no voltage thresholds")
	}
	for i, t := range c.Thresholds {
		if math.IsNaN(t) || math.IsInf(t, 0) || t <= 0 {
			return fmt.Errorf("core: threshold %d must be a positive finite voltage, got %g", i, t)
		}
	}
	for i := 1; i < len(c.Thresholds); i++ {
		if c.Thresholds[i] >= c.Thresholds[i-1] {
			return fmt.Errorf("core: thresholds must be strictly descending, got %v", c.Thresholds)
		}
	}
	if math.IsNaN(c.StepV) || math.IsInf(c.StepV, 0) || c.StepV <= 0 {
		return fmt.Errorf("core: step must be positive and finite, got %g", c.StepV)
	}
	if math.IsNaN(c.ThrottleRateTrigger) || c.ThrottleRateTrigger < 0 || c.ThrottleRateTrigger > 1 {
		return fmt.Errorf("core: throttle-rate trigger %g out of [0,1]", c.ThrottleRateTrigger)
	}
	return nil
}

// Stats reports the controller's activity over a whole run.
type Stats struct {
	// Issued and Throttled count prefetch operations across all power
	// cycles (the per-cycle R registers are summed into these).
	Issued    uint64
	Throttled uint64
	// ThresholdMoves counts adaptive adjustments, split by direction.
	MovesDown uint64
	MovesUp   uint64
	// Halvings/Doublings count degree adjustments from threshold
	// crossings.
	Halvings  uint64
	Doublings uint64
}

// ThrottlingRate returns lifetime Throttled/(Issued+Throttled).
func (s Stats) ThrottlingRate() float64 {
	tot := s.Issued + s.Throttled
	if tot == 0 {
		return 0
	}
	return float64(s.Throttled) / float64(tot)
}

// Controller is one IPEX instance.
type Controller struct {
	cfg        Config
	thresholds []float64 // live (adapted) copies
	above      []bool    // V currently above thresholds[i]?
	haveV      bool
	cpd        int // R_cpd

	// energyOf converts a voltage threshold to its exact stored-energy
	// cutoff (capacitor.EnergyCutoffNJ); cuts caches the conversion of the
	// live thresholds so ObserveEnergy replaces the hot loop's
	// per-instruction sqrt with plain compares. Refreshed whenever the
	// thresholds adapt (OnReboot).
	energyOf func(v float64) float64
	cuts     []float64

	// Volatile per-power-cycle registers.
	rThrottled uint64 // R_throttled
	rTotal     uint64 // R_total
	rTR        float64

	// JIT-checkpointed copies (NVM-resident across the outage).
	savedThrottled uint64
	savedTotal     uint64

	// tr, when non-nil, receives threshold-crossing, degree-change, and
	// adaptation events; side labels them. Crossings are rare, so the
	// per-observation fast path is untouched when tracing is off.
	tr   *trace.Tracer
	side string

	stats Stats
}

// NewController builds a controller. For a disabled config it still
// returns a functioning pass-through controller.
func NewController(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitialDegree <= 0 {
		cfg.InitialDegree = 2
	}
	if cfg.MaxDegree <= 0 {
		cfg.MaxDegree = prefetch.MaxDegree
	}
	c := &Controller{
		cfg:        cfg,
		thresholds: append([]float64(nil), cfg.Thresholds...),
		above:      make([]bool, len(cfg.Thresholds)),
		cpd:        cfg.InitialDegree,
	}
	return c, nil
}

// MustNewController is NewController for configurations known to be valid.
func MustNewController(cfg Config) *Controller {
	c, err := NewController(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// SetTracer attaches an event tracer; side ("icache"/"dcache") labels the
// emitted events. A nil tracer disables emission.
func (c *Controller) SetTracer(t *trace.Tracer, side string) {
	c.tr = t
	c.side = side
}

// Reset restores the controller to its just-constructed state: pristine
// thresholds from the configuration, all registers and statistics zeroed,
// R_cpd back at R_ipd, the tracer detached, and the energy cutoffs (if an
// energyOf converter is installed) recomputed for the pristine thresholds.
// No slice is reallocated, so the run arena can recycle controllers whose
// configuration matches the next run's.
func (c *Controller) Reset() {
	copy(c.thresholds, c.cfg.Thresholds)
	for i := range c.above {
		c.above[i] = false
	}
	c.haveV = false
	c.cpd = c.cfg.InitialDegree
	c.rThrottled = 0
	c.rTotal = 0
	c.rTR = 0
	c.savedThrottled = 0
	c.savedTotal = 0
	c.stats = Stats{}
	c.tr = nil
	c.side = ""
	c.refreshCuts()
}

// Enabled reports whether the extension is active.
func (c *Controller) Enabled() bool { return c.cfg.Enabled }

// Degree returns R_cpd, the number of prefetch candidates the engine may
// issue right now.
func (c *Controller) Degree() int {
	if !c.cfg.Enabled {
		return c.cfg.InitialDegree
	}
	return c.cpd
}

// Thresholds returns the live (possibly adapted) thresholds.
func (c *Controller) Thresholds() []float64 {
	return append([]float64(nil), c.thresholds...)
}

// Stats returns a copy of the lifetime statistics.
func (c *Controller) Stats() Stats { return c.stats }

// ThrottlingRegisters returns the current power cycle's R_throttled and
// R_total values.
func (c *Controller) ThrottlingRegisters() (throttled, total uint64) {
	return c.rThrottled, c.rTotal
}

// LastTR returns R_tr, the throttling rate computed at the most recent
// reboot.
func (c *Controller) LastTR() float64 { return c.rTR }

// Observe feeds the controller a capacitor voltage sample. Each downward
// crossing of a threshold halves R_cpd (energy saving mode); each upward
// crossing doubles it, capped at MaxDegree (high performance mode).
func (c *Controller) Observe(v float64) {
	if !c.cfg.Enabled {
		return
	}
	if !c.haveV {
		// First sample of the power cycle just records position; the
		// system boots above the thresholds, so no crossing has happened.
		for i, t := range c.thresholds {
			c.above[i] = v >= t
		}
		c.haveV = true
		return
	}
	for i, t := range c.thresholds {
		nowAbove := v >= t
		if nowAbove == c.above[i] {
			continue
		}
		c.above[i] = nowAbove
		c.traceCrossing(t, nowAbove)
		if nowAbove {
			c.double()
		} else {
			c.halve()
		}
	}
}

// traceCrossing emits a threshold-crossing event (no-op without a tracer).
func (c *Controller) traceCrossing(threshold float64, up bool) {
	if c.tr == nil {
		return
	}
	dir := int64(-1)
	if up {
		dir = 1
	}
	c.tr.Emit(trace.Event{Kind: trace.KindThresholdCross,
		Side: c.side, Value: threshold, N: dir})
}

// UseEnergyCutoffs installs a voltage→energy-cutoff converter (typically
// capacitor.EnergyCutoffNJ) so the simulator can feed ObserveEnergy the
// capacitor's stored energy directly instead of computing a voltage every
// instruction. The converter must satisfy: Voltage(e) >= v iff
// e >= f(v) — the exact equivalence capacitor.EnergyCutoffNJ provides.
func (c *Controller) UseEnergyCutoffs(f func(v float64) float64) {
	c.energyOf = f
	c.refreshCuts()
}

// refreshCuts recomputes the per-threshold energy cutoffs after the
// thresholds change (installation and reboot-time adaptation).
func (c *Controller) refreshCuts() {
	if c.energyOf == nil {
		return
	}
	if len(c.cuts) != len(c.thresholds) {
		c.cuts = make([]float64, len(c.thresholds))
	}
	for i, t := range c.thresholds {
		c.cuts[i] = c.energyOf(t)
	}
}

// ObserveEnergy is Observe for a stored-energy sample (nJ). It requires
// UseEnergyCutoffs and makes exactly the same crossing decisions Observe
// would make for the corresponding voltage, with one float compare per
// threshold and no square root.
func (c *Controller) ObserveEnergy(e float64) {
	if !c.cfg.Enabled {
		return
	}
	if !c.haveV {
		for i, cut := range c.cuts {
			c.above[i] = e >= cut
		}
		c.haveV = true
		return
	}
	for i, cut := range c.cuts {
		nowAbove := e >= cut
		if nowAbove == c.above[i] {
			continue
		}
		c.above[i] = nowAbove
		c.traceCrossing(c.thresholds[i], nowAbove)
		if nowAbove {
			c.double()
		} else {
			c.halve()
		}
	}
}

func (c *Controller) halve() {
	if c.cfg.LinearAdjust {
		if c.cpd > 0 {
			c.cpd--
		}
	} else {
		c.cpd /= 2
	}
	c.stats.Halvings++
	if c.tr != nil {
		c.tr.Emit(trace.Event{Kind: trace.KindDegreeChange,
			Side: c.side, N: int64(c.cpd), Detail: "halve"})
	}
}

func (c *Controller) double() {
	if c.cfg.LinearAdjust {
		c.cpd++
	} else if c.cpd == 0 {
		c.cpd = 1
	} else {
		c.cpd *= 2
	}
	if c.cpd > c.cfg.MaxDegree {
		c.cpd = c.cfg.MaxDegree
	}
	c.stats.Doublings++
	if c.tr != nil {
		c.tr.Emit(trace.Event{Kind: trace.KindDegreeChange,
			Side: c.side, N: int64(c.cpd), Detail: "double"})
	}
}

// Record accounts one prefetch trigger: the prefetcher wanted `requested`
// operations at its natural degree, the engine issued `issued` of them.
// R_total counts both; the shortfall is R_throttled (Fig. 7's bookkeeping).
func (c *Controller) Record(requested, issued int) {
	if issued > requested {
		requested = issued
	}
	c.rTotal += uint64(requested)
	c.rThrottled += uint64(requested - issued)
	c.stats.Issued += uint64(issued)
	c.stats.Throttled += uint64(requested - issued)
}

// Backup JIT-checkpoints R_throttled and R_total (the simulator charges the
// energy; the registers are tiny and ride along with the register-file
// checkpoint).
func (c *Controller) Backup() {
	c.savedThrottled = c.rThrottled
	c.savedTotal = c.rTotal
}

// OnReboot restores the checkpointed registers, computes R_tr, adapts the
// thresholds, and resets R_cpd to R_ipd — the paper's reboot sequence.
func (c *Controller) OnReboot() {
	if !c.cfg.Enabled {
		return
	}
	c.rThrottled = c.savedThrottled
	c.rTotal = c.savedTotal
	if c.rTotal > 0 {
		c.rTR = float64(c.rThrottled) / float64(c.rTotal)
	} else {
		c.rTR = 0
	}

	if c.cfg.Adaptive && c.savedTotal > 0 {
		dir := int64(+1)
		if c.rTR >= c.cfg.ThrottleRateTrigger {
			c.shiftThresholds(-c.cfg.StepV)
			c.stats.MovesDown++
			dir = -1
		} else {
			c.shiftThresholds(+c.cfg.StepV)
			c.stats.MovesUp++
		}
		c.refreshCuts()
		if c.tr != nil {
			c.tr.Emit(trace.Event{Kind: trace.KindThresholdAdapt,
				Side: c.side, N: dir, Value: c.rTR})
		}
	}

	if c.tr != nil && c.cpd != c.cfg.InitialDegree {
		c.tr.Emit(trace.Event{Kind: trace.KindDegreeChange,
			Side: c.side, N: int64(c.cfg.InitialDegree), Detail: "reboot_reset"})
	}
	c.cpd = c.cfg.InitialDegree
	c.rThrottled = 0
	c.rTotal = 0
	c.savedThrottled = 0
	c.savedTotal = 0
	c.haveV = false
}

// shiftThresholds moves every threshold by dv, clamping each into the
// operating band while preserving strict descending order.
func (c *Controller) shiftThresholds(dv float64) {
	lo, hi := c.cfg.MinV, c.cfg.MaxV
	for i := range c.thresholds {
		t := c.thresholds[i] + dv
		if hi > lo {
			// Keep a small margin so a threshold never sits exactly at a
			// band edge where it could not fire.
			if t > hi-0.01 {
				t = hi - 0.01
			}
			if t < lo+0.01 {
				t = lo + 0.01
			}
		}
		c.thresholds[i] = t
	}
	// Restore strict ordering if clamping collapsed neighbours.
	for i := 1; i < len(c.thresholds); i++ {
		if c.thresholds[i] >= c.thresholds[i-1] {
			c.thresholds[i] = c.thresholds[i-1] - 0.001
		}
	}
}
