package core

// OverheadReport reproduces the paper's §6.1 hardware-cost analysis: IPEX
// adds four registers per cache — R_throttled (32 b), R_total (32 b), R_tr
// (32 b float), and R_ipd (3 b) — and reuses the prefetcher's existing
// R_cpd, for 99 bits per cache and 198 bits total with ICache and DCache.
type OverheadReport struct {
	BitsPerCache int
	Caches       int
	TotalBits    int
	CoreAreaMM2  float64 // core area incl. caches (CACTI, 45 nm)
	AreaFraction float64 // added-register area / core area
}

// Register widths from the paper.
const (
	bitsRThrottled = 32
	bitsRTotal     = 32
	bitsRTR        = 32
	bitsRIPD       = 3

	// coreAreaMM2 is the paper's CACTI 45 nm estimate of the core area
	// including ICache and DCache.
	coreAreaMM2 = 0.54

	// regBitAreaMM2 is the area of one register bit at 45 nm implied by
	// the paper's 0.0018 % figure for 198 bits of 0.54 mm²:
	// 0.54 mm² * 1.8e-5 / 198 bits.
	regBitAreaMM2 = coreAreaMM2 * 1.8e-5 / 198
)

// Overhead computes the report for a system with the given number of
// IPEX-managed caches (2 in the paper: ICache and DCache).
func Overhead(caches int) OverheadReport {
	if caches <= 0 {
		caches = 2
	}
	per := bitsRThrottled + bitsRTotal + bitsRTR + bitsRIPD
	total := per * caches
	return OverheadReport{
		BitsPerCache: per,
		Caches:       caches,
		TotalBits:    total,
		CoreAreaMM2:  coreAreaMM2,
		AreaFraction: float64(total) * regBitAreaMM2 / coreAreaMM2,
	}
}
