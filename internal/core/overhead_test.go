package core

import (
	"math"
	"testing"
)

func TestOverheadMatchesPaper(t *testing.T) {
	// §6.1: 99 bits per cache, 198 bits total, 0.0018% of a 0.54 mm² core.
	r := Overhead(2)
	if r.BitsPerCache != 99 {
		t.Errorf("BitsPerCache = %d, want 99", r.BitsPerCache)
	}
	if r.TotalBits != 198 {
		t.Errorf("TotalBits = %d, want 198", r.TotalBits)
	}
	if r.CoreAreaMM2 != 0.54 {
		t.Errorf("CoreAreaMM2 = %v, want 0.54", r.CoreAreaMM2)
	}
	if math.Abs(r.AreaFraction-1.8e-5) > 1e-12 {
		t.Errorf("AreaFraction = %v, want 1.8e-5 (0.0018%%)", r.AreaFraction)
	}
}

func TestOverheadScalesWithCaches(t *testing.T) {
	one := Overhead(1)
	four := Overhead(4)
	if one.TotalBits != 99 || four.TotalBits != 396 {
		t.Errorf("totals: %d, %d", one.TotalBits, four.TotalBits)
	}
	if math.Abs(four.AreaFraction-2*Overhead(2).AreaFraction) > 1e-12 {
		t.Error("area fraction should scale linearly with caches")
	}
}

func TestOverheadDefault(t *testing.T) {
	if Overhead(0).Caches != 2 || Overhead(-3).Caches != 2 {
		t.Error("non-positive cache count should default to 2")
	}
}
