package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"ipex/internal/capacitor"
	"ipex/internal/prefetch"
	"ipex/internal/rng"
)

func testConfig() Config {
	return DefaultConfig(3.18, 3.40)
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := testConfig()
	if cfg.InitialDegree != 2 || cfg.MaxDegree != 4 {
		t.Errorf("degree defaults wrong: %+v", cfg)
	}
	if len(cfg.Thresholds) != 2 || cfg.Thresholds[0] != 3.30 || cfg.Thresholds[1] != 3.25 {
		t.Errorf("thresholds = %v, want [3.30 3.25]", cfg.Thresholds)
	}
	if cfg.StepV != 0.05 || cfg.ThrottleRateTrigger != 0.05 {
		t.Errorf("step/trigger wrong: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := testConfig()

	c := base
	c.InitialDegree = 0
	if c.Validate() == nil {
		t.Error("degree 0 accepted")
	}
	c = base
	c.InitialDegree = 9
	if c.Validate() == nil {
		t.Error("degree above MaxDegree accepted")
	}
	c = base
	c.Thresholds = nil
	if c.Validate() == nil {
		t.Error("no thresholds accepted")
	}
	c = base
	c.Thresholds = []float64{3.25, 3.30}
	if c.Validate() == nil {
		t.Error("ascending thresholds accepted")
	}
	c = base
	c.StepV = 0
	if c.Validate() == nil {
		t.Error("zero step accepted")
	}
	c = base
	c.ThrottleRateTrigger = 1.5
	if c.Validate() == nil {
		t.Error("trigger > 1 accepted")
	}
	c = base
	c.Enabled = false
	c.Thresholds = nil
	if c.Validate() != nil {
		t.Error("disabled controller should skip validation")
	}
}

func TestDisabledControllerPassesThrough(t *testing.T) {
	cfg := testConfig()
	cfg.Enabled = false
	c := MustNewController(cfg)
	if c.Enabled() {
		t.Error("Enabled() true for disabled controller")
	}
	c.Observe(3.0)
	c.Observe(3.4)
	if c.Degree() != cfg.InitialDegree {
		t.Errorf("disabled degree = %d, want constant %d", c.Degree(), cfg.InitialDegree)
	}
}

func TestDownwardCrossingHalves(t *testing.T) {
	c := MustNewController(testConfig())
	c.Observe(3.40) // establish position: above both
	if c.Degree() != 2 {
		t.Fatalf("initial degree = %d", c.Degree())
	}
	c.Observe(3.28) // crosses 3.30 downward
	if c.Degree() != 1 {
		t.Errorf("after first crossing degree = %d, want 1", c.Degree())
	}
	c.Observe(3.22) // crosses 3.25 downward
	if c.Degree() != 0 {
		t.Errorf("after second crossing degree = %d, want 0", c.Degree())
	}
}

func TestUpwardCrossingDoubles(t *testing.T) {
	c := MustNewController(testConfig())
	c.Observe(3.40)
	c.Observe(3.22) // down through both: 2 -> 1 -> 0
	c.Observe(3.28) // up through 3.25: 0 -> 1
	if c.Degree() != 1 {
		t.Errorf("degree = %d, want 1", c.Degree())
	}
	c.Observe(3.35) // up through 3.30: 1 -> 2
	if c.Degree() != 2 {
		t.Errorf("degree = %d, want 2", c.Degree())
	}
}

func TestDegreeCapAtMax(t *testing.T) {
	c := MustNewController(testConfig())
	// Oscillate across the top threshold repeatedly; degree must cap at 4
	// (the paper's "2 initially and up to 4").
	c.Observe(3.40)
	for i := 0; i < 5; i++ {
		c.Observe(3.28)
		c.Observe(3.40)
	}
	if c.Degree() > prefetch.MaxDegree {
		t.Errorf("degree %d exceeds cap", c.Degree())
	}
}

func TestFirstObservationEstablishesPosition(t *testing.T) {
	// Booting with V already below a threshold must not count as a
	// crossing (Fig. 7: the reboot resets R_cpd to R_ipd).
	c := MustNewController(testConfig())
	c.Observe(3.20)
	if c.Degree() != 2 {
		t.Errorf("boot below thresholds halved degree to %d", c.Degree())
	}
	// But a subsequent rise above is a crossing.
	c.Observe(3.27)
	if c.Degree() != 4 {
		t.Errorf("after rise degree = %d, want doubled to 4", c.Degree())
	}
}

func TestRecordBookkeeping(t *testing.T) {
	c := MustNewController(testConfig())
	c.Record(2, 1) // one throttled (Fig. 7's T1 example)
	c.Record(2, 2)
	th, tot := c.ThrottlingRegisters()
	if th != 1 || tot != 4 {
		t.Errorf("registers = %d/%d, want 1/4", th, tot)
	}
	// issued > requested (high-performance boost): total counts issued.
	c.Record(2, 4)
	_, tot = c.ThrottlingRegisters()
	if tot != 8 {
		t.Errorf("total = %d, want 8", tot)
	}
	s := c.Stats()
	if s.Issued != 7 || s.Throttled != 1 {
		t.Errorf("lifetime stats = %+v", s)
	}
}

func TestRebootSequence(t *testing.T) {
	c := MustNewController(testConfig())
	c.Observe(3.40)
	c.Observe(3.22) // degree -> 0
	c.Record(2, 0)  // 2 throttled
	c.Record(2, 0)
	c.Backup()
	c.OnReboot()

	if c.Degree() != 2 {
		t.Errorf("degree after reboot = %d, want R_ipd=2", c.Degree())
	}
	if c.LastTR() != 1.0 {
		t.Errorf("R_tr = %v, want 1.0 (everything throttled)", c.LastTR())
	}
	th, tot := c.ThrottlingRegisters()
	if th != 0 || tot != 0 {
		t.Error("per-cycle registers not cleared at reboot")
	}
	// R_tr = 100% >= 5% trigger: thresholds must have moved DOWN by 0.05.
	ths := c.Thresholds()
	if math.Abs(ths[0]-3.25) > 1e-9 || math.Abs(ths[1]-3.20) > 1e-9 {
		t.Errorf("thresholds after high-R_tr reboot = %v, want [3.25 3.20]", ths)
	}
	if c.Stats().MovesDown != 1 {
		t.Errorf("MovesDown = %d", c.Stats().MovesDown)
	}
}

func TestRebootRaisesThresholdsOnLowTR(t *testing.T) {
	c := MustNewController(testConfig())
	c.Observe(3.40)
	for i := 0; i < 100; i++ {
		c.Record(2, 2) // nothing throttled
	}
	c.Record(2, 1) // ~0.5% throttling, below the 5% trigger
	c.Backup()
	c.OnReboot()
	ths := c.Thresholds()
	if math.Abs(ths[0]-3.35) > 1e-9 || math.Abs(ths[1]-3.30) > 1e-9 {
		t.Errorf("thresholds after low-R_tr reboot = %v, want [3.35 3.30]", ths)
	}
	if c.Stats().MovesUp != 1 {
		t.Errorf("MovesUp = %d", c.Stats().MovesUp)
	}
}

func TestRebootWithoutActivityLeavesThresholds(t *testing.T) {
	c := MustNewController(testConfig())
	c.Backup()
	c.OnReboot()
	ths := c.Thresholds()
	if ths[0] != 3.30 || ths[1] != 3.25 {
		t.Errorf("thresholds moved with no prefetch activity: %v", ths)
	}
}

func TestUncheckpointedRegistersLostAtReboot(t *testing.T) {
	// Registers are volatile: counts recorded after the last Backup are
	// lost by the power failure, exactly like real NVFF checkpointing.
	c := MustNewController(testConfig())
	c.Record(2, 0)
	// No Backup: the outage loses the counts.
	c.OnReboot()
	if c.LastTR() != 0 {
		t.Errorf("R_tr = %v, want 0 (registers lost)", c.LastTR())
	}
}

func TestThresholdClamping(t *testing.T) {
	cfg := testConfig()
	cfg.Thresholds = []float64{3.20, 3.19}
	c := MustNewController(cfg)
	// Drive thresholds down repeatedly; they must stay above MinV
	// (Vbackup) where they can still fire, and stay strictly ordered.
	for i := 0; i < 10; i++ {
		c.Record(10, 0)
		c.Backup()
		c.OnReboot()
	}
	ths := c.Thresholds()
	if ths[0] <= cfg.MinV || ths[1] <= cfg.MinV {
		t.Errorf("thresholds fell into the dead zone: %v (MinV %v)", ths, cfg.MinV)
	}
	if ths[1] >= ths[0] {
		t.Errorf("ordering lost: %v", ths)
	}

	// And repeatedly up: must stay below MaxV (Von).
	for i := 0; i < 10; i++ {
		c.Record(1000, 1000)
		c.Backup()
		c.OnReboot()
	}
	ths = c.Thresholds()
	if ths[0] >= cfg.MaxV {
		t.Errorf("threshold rose to the reboot voltage: %v", ths)
	}
}

func TestAdaptiveOff(t *testing.T) {
	cfg := testConfig()
	cfg.Adaptive = false
	c := MustNewController(cfg)
	c.Record(10, 0)
	c.Backup()
	c.OnReboot()
	ths := c.Thresholds()
	if ths[0] != 3.30 || ths[1] != 3.25 {
		t.Errorf("fixed mode moved thresholds: %v", ths)
	}
}

func TestThresholdsFor(t *testing.T) {
	ths := ThresholdsFor(2, 3.18, 3.40)
	if len(ths) != 2 || ths[0] != 3.30 || ths[1] != 3.25 {
		t.Errorf("ThresholdsFor(2) = %v, want paper defaults", ths)
	}
	for _, k := range []int{1, 2, 3, 4} {
		ths := ThresholdsFor(k, 3.18, 3.40)
		if len(ths) != k {
			t.Fatalf("k=%d: got %d thresholds", k, len(ths))
		}
		for i := 1; i < k; i++ {
			if ths[i] >= ths[i-1] {
				t.Errorf("k=%d: not descending: %v", k, ths)
			}
		}
		for _, v := range ths {
			if v <= 3.18 || v >= 3.40 {
				t.Errorf("k=%d: threshold %v outside live band", k, v)
			}
		}
	}
	if ThresholdsFor(0, 3.18, 3.4) != nil {
		t.Error("k=0 should return nil")
	}
}

// Property: under any voltage walk, the degree stays within [0, MaxDegree]
// and the register identity Issued+Throttled == sum(R_total) holds.
func TestControllerInvariants(t *testing.T) {
	f := func(walk []uint8, recs []uint8) bool {
		c := MustNewController(testConfig())
		var wantTotal uint64
		for i, w := range walk {
			v := 3.15 + float64(w%30)*0.01 // 3.15..3.44
			c.Observe(v)
			if c.Degree() < 0 || c.Degree() > prefetch.MaxDegree {
				return false
			}
			if i < len(recs) {
				req := int(recs[i]%3) + 1
				iss := c.Degree()
				if iss > req {
					iss = req
				}
				c.Record(req, iss)
				wantTotal += uint64(req)
			}
			if i%17 == 16 {
				c.Backup()
				c.OnReboot()
			}
		}
		s := c.Stats()
		return s.Issued+s.Throttled == wantTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestThrottlingRateStat(t *testing.T) {
	var s Stats
	if s.ThrottlingRate() != 0 {
		t.Error("empty stats rate should be 0")
	}
	s = Stats{Issued: 3, Throttled: 1}
	if s.ThrottlingRate() != 0.25 {
		t.Errorf("rate = %v", s.ThrottlingRate())
	}
}

func TestLinearAdjustPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.LinearAdjust = true
	c := MustNewController(cfg)
	c.Observe(3.40)
	c.Observe(3.28) // down through 3.30: 2 -> 1 (−1)
	if c.Degree() != 1 {
		t.Fatalf("linear down: degree = %d, want 1", c.Degree())
	}
	c.Observe(3.22) // down through 3.25: 1 -> 0
	if c.Degree() != 0 {
		t.Fatalf("linear down twice: degree = %d, want 0", c.Degree())
	}
	c.Observe(3.40) // up through both: 0 -> 1 -> 2
	if c.Degree() != 2 {
		t.Fatalf("linear up twice: degree = %d, want 2", c.Degree())
	}
	// Linear growth caps at MaxDegree like the default policy.
	for i := 0; i < 6; i++ {
		c.Observe(3.28)
		c.Observe(3.40)
	}
	if c.Degree() > cfg.MaxDegree {
		t.Errorf("linear policy exceeded cap: %d", c.Degree())
	}
}

// TestObserveEnergyMatchesObserve drives two identically configured
// controllers in lockstep — one fed voltages, one fed the capacitor's
// stored energy through the exact energy cutoffs — across many power
// cycles with reboot-time threshold adaptation, and requires identical
// degree decisions and statistics throughout.
func TestObserveEnergyMatchesObserve(t *testing.T) {
	capCfg := capacitor.DefaultConfig()
	cp := capacitor.MustNew(capCfg)
	cfg := testConfig()

	byV := MustNewController(cfg)
	byE := MustNewController(cfg)
	byE.UseEnergyCutoffs(cp.EnergyCutoffNJ)

	r := rng.New(7)
	cp.SetVoltage(capCfg.Von)
	for step := 0; step < 200_000; step++ {
		// Random walk of the stored charge through the operating band.
		if r.Float64() < 0.5 {
			cp.Harvest(r.Float64() * 2)
		} else {
			cp.Consume(r.Float64() * 2)
		}
		byV.Observe(cp.Voltage())
		byE.ObserveEnergy(cp.EnergyNJ())
		if byV.Degree() != byE.Degree() {
			t.Fatalf("step %d (V=%v E=%v): degree diverged: observe=%d energy=%d",
				step, cp.Voltage(), cp.EnergyNJ(), byV.Degree(), byE.Degree())
		}
		if byV.Degree() < cfg.MaxDegree && r.Float64() < 0.1 {
			byV.Record(2, byV.Degree())
			byE.Record(2, byE.Degree())
		}
		if cp.BelowBackup() {
			byV.Backup()
			byE.Backup()
			cp.SetVoltage(capCfg.Von)
			byV.OnReboot()
			byE.OnReboot()
			if fmt.Sprint(byV.Thresholds()) != fmt.Sprint(byE.Thresholds()) {
				t.Fatalf("step %d: thresholds diverged: %v vs %v",
					step, byV.Thresholds(), byE.Thresholds())
			}
		}
	}
	if byV.Stats() != byE.Stats() {
		t.Fatalf("stats diverged:\nobserve: %+v\nenergy:  %+v", byV.Stats(), byE.Stats())
	}
}
