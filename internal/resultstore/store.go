// Package resultstore is the content-addressed result cache behind the
// simulation server (cmd/ipexd): an in-memory LRU tier in front of a disk
// tier, addressed by the unified cell identity key (see
// internal/experiments.CellIdentity). Because a key hashes everything that
// determines a simulation's result, a stored body may stand in for a fresh
// simulation byte for byte — the soundness rule is entirely the key's, and
// the store never serves bytes whose integrity it cannot verify.
//
// GetOrCompute coalesces concurrent misses of one key onto a single
// computation (singleflight): N identical requests in flight cost one
// simulation, and the N-1 followers receive the leader's bytes.
//
// The package is deliberately clock-free and host-agnostic: recency is
// access order (not wall time), disk writes go through benchio.AtomicFile,
// and nothing here imports net/http — serving belongs to the command layer.
package resultstore

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ipex/internal/benchio"
	"ipex/internal/trace"
)

// EnvelopeSchema identifies the disk-entry layout; bump on incompatible
// change. An entry whose header names a different schema is a miss, never
// an error — the cell is simply re-simulated and the entry rewritten.
const EnvelopeSchema = "ipex-result/v1"

// Outcome classifies how a lookup was served.
type Outcome int

const (
	// OutcomeMemoryHit: the body came from the in-memory LRU tier.
	OutcomeMemoryHit Outcome = iota
	// OutcomeDiskHit: the body was read (and verified) from the disk tier
	// and promoted back into memory.
	OutcomeDiskHit
	// OutcomeComputed: both tiers missed; the caller's compute function ran
	// and its body was stored in both tiers.
	OutcomeComputed
	// OutcomeCoalesced: another caller was already computing this key; the
	// result is that computation's, shared without running compute again.
	OutcomeCoalesced
)

// String names the outcome for response headers and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeMemoryHit:
		return "hit"
	case OutcomeDiskHit:
		return "hit-disk"
	case OutcomeComputed:
		return "miss"
	case OutcomeCoalesced:
		return "coalesced"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Hit reports whether the outcome avoided a computation entirely.
func (o Outcome) Hit() bool { return o == OutcomeMemoryHit || o == OutcomeDiskHit }

// call is one in-flight computation; followers block on done.
type call struct {
	done chan struct{}
	body []byte
	err  error
}

// Store is the two-tier content-addressed cache. All methods are safe for
// concurrent use. Returned bodies are shared read-only slices: callers
// must not mutate them.
type Store struct {
	dir string // "" disables the disk tier
	cap int    // max in-memory entries (>= 1)

	mu       sync.Mutex
	lru      *list.List // of *entry; front = most recently used
	mem      map[string]*list.Element
	inflight map[string]*call

	// Counters are nil-safe handles; a Store built without a registry
	// discards them.
	memHits     *trace.Counter
	diskHits    *trace.Counter
	computed    *trace.Counter
	coalesced   *trace.Counter
	evicted     *trace.Counter
	diskEvicted *trace.Counter
	corrupt     *trace.Counter
	failures    *trace.Counter
	diskErrors  *trace.Counter

	// writeFile is the disk-tier writer, an injection seam for the
	// failing-disk tests (running as root defeats permission-based
	// injection). Production is always benchio.WriteFileAtomic.
	writeFile func(path string, data []byte, perm os.FileMode) error

	// clock, when installed via SetClock, feeds the latency histograms
	// below; nil leaves them silent, preserving the package's clock-free
	// default. Latencies go only to the registry, never into a body.
	clock           trace.Clock
	computeSeconds  *trace.Histogram
	diskReadSeconds *trace.Histogram
}

type entry struct {
	key  string
	body []byte
}

// New builds a store with an in-memory LRU of at most memEntries bodies
// (minimum 1) over a disk tier rooted at dir ("" keeps the store purely
// in-memory). The directory is created if missing. reg, when non-nil,
// receives the store.* counters (mem_hits, disk_hits, computed, coalesced,
// evicted, corrupt, failures, disk_errors).
func New(dir string, memEntries int, reg *trace.Registry) (*Store, error) {
	if memEntries < 1 {
		memEntries = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	return &Store{
		dir:      dir,
		cap:      memEntries,
		lru:      list.New(),
		mem:      make(map[string]*list.Element),
		inflight: make(map[string]*call),

		memHits:     reg.Counter("store.mem_hits"),
		diskHits:    reg.Counter("store.disk_hits"),
		computed:    reg.Counter("store.computed"),
		coalesced:   reg.Counter("store.coalesced"),
		evicted:     reg.Counter("store.evicted"),
		diskEvicted: reg.Counter("store.disk_evicted"),
		corrupt:     reg.Counter("store.corrupt"),
		failures:    reg.Counter("store.failures"),
		diskErrors:  reg.Counter("store.disk_errors"),

		writeFile: benchio.WriteFileAtomic,

		computeSeconds:  reg.Histogram("store.compute_seconds", nil),
		diskReadSeconds: reg.Histogram("store.disk_read_seconds", nil),
	}, nil
}

// SetClock installs the monotonic clock behind the store's latency
// histograms (store.compute_seconds, store.disk_read_seconds). Call it
// before serving traffic; it is not synchronized against in-flight
// requests. A nil clock (the default) keeps the store clock-free and the
// histograms silent.
func (s *Store) SetClock(c trace.Clock) { s.clock = c }

// now reads the injected clock, 0 when none is installed.
func (s *Store) now() time.Duration {
	if s.clock == nil {
		return 0
	}
	return s.clock.Now()
}

// observe records now-start into h when a clock is installed.
func (s *Store) observe(h *trace.Histogram, start time.Duration) {
	if s.clock == nil {
		return
	}
	h.ObserveDuration(s.clock.Now() - start)
}

// Rates derives the cache hit ratio and coalesce rate from the outcome
// counters, over successfully served requests (mem hits + disk hits +
// computed + coalesced). Both are 0 before the first serve. They are
// computed at read time — scrape-time gauges, not stored state.
func (s *Store) Rates() (hitRatio, coalesceRate float64) {
	mem, disk := s.memHits.Load(), s.diskHits.Load()
	co := s.coalesced.Load()
	total := mem + disk + co + s.computed.Load()
	if total == 0 {
		return 0, 0
	}
	return float64(mem+disk) / float64(total), float64(co) / float64(total)
}

// EvictDiskOver shrinks the disk tier to at most maxBytes by deleting
// entries oldest-first (modification time, then name for determinism when
// times tie). It is a startup-scan operation — the service calls it once
// before listening, so a node restarted with a smaller budget converges
// immediately — and it touches only the disk tier: the memory LRU is
// governed solely by its entry cap, so a body already promoted to memory
// keeps serving hits even after its disk entry is evicted. maxBytes <= 0
// means no cap (nothing is evicted). Dot-prefixed files (AtomicFile
// temporaries) and subdirectories are left alone.
func (s *Store) EvictDiskOver(maxBytes int64) (evicted int, freed int64, err error) {
	if s.dir == "" || maxBytes <= 0 {
		return 0, 0, nil
	}
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("resultstore: scanning disk tier: %w", err)
	}
	type diskEntry struct {
		name string
		size int64
		mod  int64
	}
	var entries []diskEntry
	var total int64
	for _, de := range dirents {
		if de.IsDir() || strings.HasPrefix(de.Name(), ".") {
			continue
		}
		info, ierr := de.Info()
		if ierr != nil {
			continue // raced with a concurrent delete; nothing to size
		}
		entries = append(entries, diskEntry{de.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mod != entries[j].mod {
			return entries[i].mod < entries[j].mod
		}
		return entries[i].name < entries[j].name
	})
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if rerr := os.Remove(filepath.Join(s.dir, e.name)); rerr != nil {
			if err == nil {
				err = fmt.Errorf("resultstore: evicting %s: %w", e.name, rerr)
			}
			continue
		}
		total -= e.size
		freed += e.size
		evicted++
		s.diskEvicted.Inc()
	}
	return evicted, freed, err
}

// MemLen returns the number of bodies currently in the memory tier.
func (s *Store) MemLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// DiskPath returns the disk-tier path of a key ("" when the disk tier is
// disabled). The file need not exist.
func (s *Store) DiskPath(key string) string {
	if s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, key)
}

// Get looks a key up in both tiers without computing anything: memory
// first, then a verified disk read (promoted into memory on success).
func (s *Store) Get(key string) ([]byte, Outcome, bool) {
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		body := el.Value.(*entry).body
		s.mu.Unlock()
		s.memHits.Inc()
		return body, OutcomeMemoryHit, true
	}
	s.mu.Unlock()
	if body, ok := s.readDisk(key); ok {
		s.insert(key, body)
		s.diskHits.Inc()
		return body, OutcomeDiskHit, true
	}
	return nil, OutcomeComputed, false
}

// GetOrCompute serves key from the memory tier, the disk tier, an already
// in-flight computation of the same key (coalesced), or — last — by running
// compute and storing its body in both tiers. A compute error is returned
// to the leader and every coalesced follower, and nothing is cached: the
// next request for the key computes again.
func (s *Store) GetOrCompute(key string, compute func() ([]byte, error)) ([]byte, Outcome, error) {
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.MoveToFront(el)
		body := el.Value.(*entry).body
		s.mu.Unlock()
		s.memHits.Inc()
		return body, OutcomeMemoryHit, nil
	}
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		// A failed leader's followers count as failures (each caller will
		// report its own error), not as coalesced serves — the counters
		// must partition requests exactly.
		if c.err != nil {
			s.failures.Inc()
			return nil, OutcomeCoalesced, c.err
		}
		s.coalesced.Inc()
		return c.body, OutcomeCoalesced, c.err
	}
	c := &call{done: make(chan struct{})}
	s.inflight[key] = c
	s.mu.Unlock()

	outcome := OutcomeDiskHit
	body, ok := s.readDisk(key)
	if !ok {
		outcome = OutcomeComputed
		start := s.now()
		body, c.err = compute()
		if c.err == nil {
			s.observe(s.computeSeconds, start)
		}
	}
	c.body = body
	if c.err == nil {
		if outcome == OutcomeComputed {
			// A disk-write failure (ENOSPC, permissions, dead disk) degrades
			// the entry to memory-only; the body itself is sound, so the
			// request still succeeds and is cached where it can be. It counts
			// as a disk error, not a failure — `failures` partitions request
			// outcomes, and this request succeeded.
			if werr := s.writeDisk(key, body); werr != nil {
				s.diskErrors.Inc()
			}
		}
		s.insert(key, body)
	}

	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	close(c.done)

	if c.err != nil {
		s.failures.Inc()
		return nil, outcome, c.err
	}
	switch outcome {
	case OutcomeDiskHit:
		s.diskHits.Inc()
	case OutcomeComputed:
		s.computed.Inc()
	}
	return body, outcome, nil
}

// Put stores a body in both tiers unconditionally (overwriting any previous
// entry for the key). A disk-tier write failure is counted and returned, but
// the memory tier is installed regardless — the entry degrades, it does not
// vanish.
func (s *Store) Put(key string, body []byte) error {
	err := s.writeDisk(key, body)
	if err != nil {
		s.diskErrors.Inc()
	}
	s.insert(key, body)
	return err
}

// insert adds (or refreshes) a memory-tier entry, evicting from the LRU
// tail past capacity. Evicted bodies survive on the disk tier.
func (s *Store) insert(key string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.mem[key]; ok {
		el.Value.(*entry).body = body
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(&entry{key: key, body: body})
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.mem, e.key)
		s.evicted.Inc()
	}
}

// writeDisk installs the enveloped body atomically; a crash mid-write
// leaves either the previous entry or the complete new one.
func (s *Store) writeDisk(key string, body []byte) error {
	if s.dir == "" {
		return nil
	}
	sum := sha256.Sum256(body)
	var buf bytes.Buffer
	buf.Grow(len(EnvelopeSchema) + len(key) + 2*len(sum) + 3 + len(body))
	fmt.Fprintf(&buf, "%s %s %s\n", EnvelopeSchema, key, hex.EncodeToString(sum[:]))
	buf.Write(body)
	return s.writeFile(s.DiskPath(key), buf.Bytes(), 0o644)
}

// readDisk fetches and verifies a disk-tier entry, timing the successful
// reads (a miss — usually a fast ENOENT — would only skew the latency
// series).
func (s *Store) readDisk(key string) ([]byte, bool) {
	start := s.now()
	body, ok := s.loadDisk(key)
	if ok {
		s.observe(s.diskReadSeconds, start)
	}
	return body, ok
}

// loadDisk fetches and verifies a disk-tier entry. Any defect — missing
// file, foreign schema, key mismatch, checksum mismatch, truncation — is a
// miss: the caller re-simulates and rewrites the entry. Corruption (a file
// that exists but fails verification) is counted separately.
func (s *Store) loadDisk(key string) ([]byte, bool) {
	if s.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(s.DiskPath(key))
	if err != nil {
		return nil, false
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		s.corrupt.Inc()
		return nil, false
	}
	var schema, k, sumHex string
	if _, err := fmt.Sscanf(string(raw[:nl]), "%s %s %s", &schema, &k, &sumHex); err != nil ||
		schema != EnvelopeSchema || k != key {
		s.corrupt.Inc()
		return nil, false
	}
	body := raw[nl+1:]
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != sumHex {
		s.corrupt.Inc()
		return nil, false
	}
	return body, true
}
