package resultstore

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"ipex/internal/trace"
)

// TestDiskWriteFailureDegradesToMemory pins the disk-failure contract: when
// the disk tier cannot be written (ENOSPC, permissions, dead disk), the
// request itself still succeeds, the body is cached in the memory tier, the
// store.disk_errors counter ticks, and — critically — store.failures does
// not, because `failures` partitions request outcomes and this request
// produced a sound result.
func TestDiskWriteFailureDegradesToMemory(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(t.TempDir(), 4, reg)
	if err != nil {
		t.Fatal(err)
	}
	diskErr := errors.New("no space left on device")
	s.writeFile = func(string, []byte, os.FileMode) error { return diskErr }

	want := []byte(`{"app":"fft"}`)
	calls := 0
	body, outcome, err := s.GetOrCompute("cafe", func() ([]byte, error) {
		calls++
		return want, nil
	})
	if err != nil || outcome != OutcomeComputed || !bytes.Equal(body, want) {
		t.Fatalf("GetOrCompute with failing disk: body=%q outcome=%v err=%v, want computed success", body, outcome, err)
	}
	if got := reg.Counter("store.disk_errors").Load(); got != 1 {
		t.Fatalf("store.disk_errors = %d, want 1", got)
	}
	if got := reg.Counter("store.failures").Load(); got != 0 {
		t.Fatalf("store.failures = %d, want 0 (the request succeeded)", got)
	}

	// The entry degraded to memory-only: a repeat is a memory hit, not a
	// recompute, and serves identical bytes.
	body2, outcome2, err := s.GetOrCompute("cafe", func() ([]byte, error) {
		calls++
		return nil, errors.New("must not recompute")
	})
	if err != nil || outcome2 != OutcomeMemoryHit || !bytes.Equal(body2, want) {
		t.Fatalf("repeat after disk failure: outcome=%v err=%v, want memory hit", outcome2, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}

	// Nothing reached the disk tier, so a fresh store over the same
	// directory recomputes (no mis-cached partial write to trip over).
	if _, err := os.Stat(s.DiskPath("cafe")); !os.IsNotExist(err) {
		t.Fatalf("disk entry exists after failed write (stat err=%v)", err)
	}
}

// TestPutDiskFailureStillServesMemory pins the same degradation for the
// unconditional Put path: the error is reported and counted, but the memory
// tier is installed regardless.
func TestPutDiskFailureStillServesMemory(t *testing.T) {
	reg := trace.NewRegistry()
	s, err := New(t.TempDir(), 4, reg)
	if err != nil {
		t.Fatal(err)
	}
	diskErr := errors.New("read-only file system")
	s.writeFile = func(string, []byte, os.FileMode) error { return diskErr }

	want := []byte(`{"app":"crc"}`)
	if err := s.Put("beef", want); !errors.Is(err, diskErr) {
		t.Fatalf("Put error = %v, want the injected disk error", err)
	}
	if got := reg.Counter("store.disk_errors").Load(); got != 1 {
		t.Fatalf("store.disk_errors = %d, want 1", got)
	}
	body, outcome, ok := s.Get("beef")
	if !ok || outcome != OutcomeMemoryHit || !bytes.Equal(body, want) {
		t.Fatalf("Get after failed Put: ok=%v outcome=%v, want memory hit", ok, outcome)
	}
}
