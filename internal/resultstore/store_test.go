package resultstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipex/internal/trace"
)

func mustStore(t *testing.T, dir string, cap int, reg *trace.Registry) *Store {
	t.Helper()
	s, err := New(dir, cap, reg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMissThenHitByteIdentical pins the service's core guarantee: the bytes
// a hit serves are exactly the bytes the fresh computation produced, through
// every tier (memory, disk, and a fresh store over the same directory).
func TestMissThenHitByteIdentical(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, dir, 8, nil)
	want := []byte(`{"app":"fft","cycles":12345}`)

	got, outcome, err := s.GetOrCompute("k1", func() ([]byte, error) { return want, nil })
	if err != nil || outcome != OutcomeComputed || !bytes.Equal(got, want) {
		t.Fatalf("fresh: got outcome=%v err=%v body=%q", outcome, err, got)
	}
	got, outcome, err = s.GetOrCompute("k1", func() ([]byte, error) {
		return nil, errors.New("compute must not run on a hit")
	})
	if err != nil || outcome != OutcomeMemoryHit || !bytes.Equal(got, want) {
		t.Fatalf("memory hit: got outcome=%v err=%v body=%q", outcome, err, got)
	}

	// A brand-new store over the same directory: the disk tier alone must
	// reproduce the fresh bytes (restart persistence).
	s2 := mustStore(t, dir, 8, nil)
	got, outcome, ok := s2.Get("k1")
	if !ok || outcome != OutcomeDiskHit || !bytes.Equal(got, want) {
		t.Fatalf("disk hit after restart: got ok=%v outcome=%v body=%q", ok, outcome, got)
	}
	// ...and the disk hit was promoted into memory.
	if _, outcome, _ := s2.Get("k1"); outcome != OutcomeMemoryHit {
		t.Fatalf("promotion: second lookup got %v, want memory hit", outcome)
	}
}

// TestSingleflight proves N concurrent identical requests cost exactly one
// computation: a leader runs compute while every follower blocks on its
// completion and shares the same body.
func TestSingleflight(t *testing.T) {
	s := mustStore(t, "", 8, trace.NewRegistry())
	const followers = 16

	var calls atomic.Int64
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	want := []byte("singleflight-body")

	results := make([][]byte, followers+1)
	outcomes := make([]Outcome, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body, o, err := s.GetOrCompute("k", func() ([]byte, error) {
			calls.Add(1)
			close(leaderIn) // inflight registration is visible from here on
			<-gate
			return want, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0], outcomes[0] = body, o
	}()
	<-leaderIn

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, o, err := s.GetOrCompute("k", func() ([]byte, error) {
				calls.Add(1)
				return nil, errors.New("follower compute must never run")
			})
			if err != nil {
				t.Errorf("follower %d: %v", i, err)
			}
			results[i], outcomes[i] = body, o
		}(i)
	}
	close(gate)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	computed, coalescedOrHit := 0, 0
	for i, o := range outcomes {
		if !bytes.Equal(results[i], want) {
			t.Fatalf("caller %d got %q, want %q", i, results[i], want)
		}
		switch o {
		case OutcomeComputed:
			computed++
		case OutcomeCoalesced, OutcomeMemoryHit:
			// A follower arriving after the leader published is a memory
			// hit; mid-flight it coalesces. Both avoid the computation.
			coalescedOrHit++
		default:
			t.Fatalf("caller %d got outcome %v", i, o)
		}
	}
	if computed != 1 || coalescedOrHit != followers {
		t.Fatalf("outcome partition: computed=%d shared=%d, want 1 and %d", computed, coalescedOrHit, followers)
	}
}

// TestLRUEvictionDiskRefill pins the two-tier interplay: eviction from the
// bounded memory tier loses nothing, because the disk tier refills (and
// re-promotes) the entry on the next lookup.
func TestLRUEvictionDiskRefill(t *testing.T) {
	reg := trace.NewRegistry()
	s := mustStore(t, t.TempDir(), 2, reg)
	body := func(k string) []byte { return []byte("body-of-" + k) }
	for _, k := range []string{"k1", "k2", "k3"} {
		k := k
		if _, _, err := s.GetOrCompute(k, func() ([]byte, error) { return body(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.MemLen(); n != 2 {
		t.Fatalf("memory tier holds %d entries, want 2 (cap)", n)
	}
	if reg.Counter("store.evicted").Load() != 1 {
		t.Fatalf("evicted counter = %d, want 1", reg.Counter("store.evicted").Load())
	}
	// k1 was the LRU victim: it must come back from disk, byte-identical.
	got, outcome, ok := s.Get("k1")
	if !ok || outcome != OutcomeDiskHit || !bytes.Equal(got, body("k1")) {
		t.Fatalf("evicted entry: ok=%v outcome=%v body=%q", ok, outcome, got)
	}
	// Refill evicted k2 (now the LRU tail); memory stays at capacity.
	if n := s.MemLen(); n != 2 {
		t.Fatalf("after refill memory tier holds %d entries, want 2", n)
	}
}

// TestCorruptDiskEntry pins the self-healing path: an entry that fails
// verification (here: one flipped body byte) is a miss, the cell is
// recomputed, and the rewritten entry verifies again.
func TestCorruptDiskEntry(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		"flipped-byte": func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0xFF
			return out
		},
		"truncated": func(raw []byte) []byte { return raw[:len(raw)-4] },
		"foreign-schema": func(raw []byte) []byte {
			return append([]byte("other-schema/v9 x y\n"), raw...)
		},
		"no-header": func([]byte) []byte { return []byte("no newline at all") },
	} {
		t.Run(name, func(t *testing.T) {
			reg := trace.NewRegistry()
			// cap 1 so inserting a second key evicts the first from memory,
			// forcing the corrupted disk read.
			s := mustStore(t, t.TempDir(), 1, reg)
			want := []byte("sound-body")
			if _, _, err := s.GetOrCompute("k", func() ([]byte, error) { return want, nil }); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.GetOrCompute("other", func() ([]byte, error) { return []byte("x"), nil }); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(s.DiskPath("k"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.DiskPath("k"), mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			var calls atomic.Int64
			got, outcome, err := s.GetOrCompute("k", func() ([]byte, error) {
				calls.Add(1)
				return want, nil
			})
			if err != nil || outcome != OutcomeComputed || calls.Load() != 1 {
				t.Fatalf("corrupt entry: outcome=%v err=%v calls=%d, want recompute", outcome, err, calls.Load())
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("recomputed body %q, want %q", got, want)
			}
			if reg.Counter("store.corrupt").Load() == 0 {
				t.Fatal("corrupt counter not bumped")
			}
			// The rewrite healed the entry: a fresh store verifies it.
			s2 := mustStore(t, s.dir, 1, nil)
			if got, outcome, ok := s2.Get("k"); !ok || outcome != OutcomeDiskHit || !bytes.Equal(got, want) {
				t.Fatalf("healed entry: ok=%v outcome=%v body=%q", ok, outcome, got)
			}
		})
	}
}

// TestComputeErrorNotCached pins the failure contract: a compute error is
// returned but never stored, so the next request runs compute again.
func TestComputeErrorNotCached(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, dir, 8, trace.NewRegistry())
	boom := errors.New("transient simulation failure")
	if _, _, err := s.GetOrCompute("k", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the compute error", err)
	}
	if s.MemLen() != 0 {
		t.Fatal("failed computation left a memory-tier entry")
	}
	if _, err := os.Stat(s.DiskPath("k")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed computation left a disk-tier entry: %v", err)
	}
	want := []byte("second-try")
	got, outcome, err := s.GetOrCompute("k", func() ([]byte, error) { return want, nil })
	if err != nil || outcome != OutcomeComputed || !bytes.Equal(got, want) {
		t.Fatalf("retry after failure: outcome=%v err=%v body=%q", outcome, err, got)
	}
}

// TestMemoryOnly pins the dir=="" mode: no disk tier, eviction is loss, and
// DiskPath reports the tier as absent.
func TestMemoryOnly(t *testing.T) {
	s := mustStore(t, "", 1, nil)
	if p := s.DiskPath("k"); p != "" {
		t.Fatalf("memory-only DiskPath = %q, want \"\"", p)
	}
	if _, _, err := s.GetOrCompute("k1", func() ([]byte, error) { return []byte("a"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetOrCompute("k2", func() ([]byte, error) { return []byte("b"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k1"); ok {
		t.Fatal("evicted memory-only entry still served")
	}
	if body, outcome, ok := s.Get("k2"); !ok || outcome != OutcomeMemoryHit || !bytes.Equal(body, []byte("b")) {
		t.Fatalf("resident entry: ok=%v outcome=%v body=%q", ok, outcome, body)
	}
}

// TestOutcomeStrings pins the response-header vocabulary.
func TestOutcomeStrings(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeMemoryHit: "hit",
		OutcomeDiskHit:   "hit-disk",
		OutcomeComputed:  "miss",
		OutcomeCoalesced: "coalesced",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if !OutcomeMemoryHit.Hit() || !OutcomeDiskHit.Hit() || OutcomeComputed.Hit() || OutcomeCoalesced.Hit() {
		t.Error("Hit() misclassifies an outcome")
	}
	if s := Outcome(99).String(); s != fmt.Sprintf("Outcome(%d)", 99) {
		t.Errorf("unknown outcome prints %q", s)
	}
}

// TestPutOverwrites pins Put's unconditional-overwrite contract on both
// tiers.
func TestPutOverwrites(t *testing.T) {
	s := mustStore(t, t.TempDir(), 4, nil)
	if err := s.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if body, _, ok := s.Get("k"); !ok || !bytes.Equal(body, []byte("v2")) {
		t.Fatalf("memory tier after overwrite: ok=%v body=%q", ok, body)
	}
	s2 := mustStore(t, s.dir, 4, nil)
	if body, _, ok := s2.Get("k"); !ok || !bytes.Equal(body, []byte("v2")) {
		t.Fatalf("disk tier after overwrite: ok=%v body=%q", ok, body)
	}
}

// TestEvictDiskOver: the startup scan must delete oldest-first until the
// tier fits the byte cap, skip AtomicFile temporaries, and leave newer
// entries untouched.
func TestEvictDiskOver(t *testing.T) {
	dir := t.TempDir()
	reg := trace.NewRegistry()
	s := mustStore(t, dir, 8, reg)

	body := bytes.Repeat([]byte("x"), 100)
	var sizes []int64
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := s.Put(key, body); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(s.DiskPath(key))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
		// Strictly increasing mtimes, oldest = k0, without sleeping.
		mt := time.Unix(1_700_000_000+int64(i), 0)
		if err := os.Chtimes(s.DiskPath(key), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// A dot-prefixed straggler temp must never be counted or deleted.
	tmp := filepath.Join(dir, ".k9.tmp123")
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		t.Fatal(err)
	}

	// Cap to exactly the three newest entries: k0 and k1 must go.
	cap3 := sizes[2] + sizes[3] + sizes[4]
	evicted, freed, err := s.EvictDiskOver(cap3)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 2 || freed != sizes[0]+sizes[1] {
		t.Fatalf("evicted %d (%d bytes), want 2 (%d bytes)", evicted, freed, sizes[0]+sizes[1])
	}
	for i, want := range []bool{false, false, true, true, true} {
		_, err := os.Stat(s.DiskPath(fmt.Sprintf("k%d", i)))
		if got := err == nil; got != want {
			t.Errorf("k%d on disk = %v, want %v", i, got, want)
		}
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Errorf("eviction deleted the AtomicFile temporary: %v", err)
	}
	if got := reg.Counter("store.disk_evicted").Load(); got != 2 {
		t.Errorf("store.disk_evicted = %d, want 2", got)
	}

	// Under the cap already: a second pass is a no-op.
	if n, b, err := s.EvictDiskOver(cap3); n != 0 || b != 0 || err != nil {
		t.Fatalf("second pass evicted %d (%d bytes), err %v; want a no-op", n, b, err)
	}
	// No cap means no eviction.
	if n, _, _ := s.EvictDiskOver(0); n != 0 {
		t.Fatalf("maxBytes=0 evicted %d entries, want none", n)
	}
}

// TestEvictDiskNeverTouchesMemory: a body living in the memory LRU must
// keep serving memory hits after its disk entry is evicted — the two tiers
// have independent retention policies.
func TestEvictDiskNeverTouchesMemory(t *testing.T) {
	dir := t.TempDir()
	s := mustStore(t, dir, 8, nil)
	want := []byte("resident body")
	if err := s.Put("hot", want); err != nil {
		t.Fatal(err)
	}
	memBefore := s.MemLen()

	// Evict everything from disk (cap of one byte).
	evicted, _, err := s.EvictDiskOver(1)
	if err != nil {
		t.Fatal(err)
	}
	if evicted != 1 {
		t.Fatalf("evicted %d disk entries, want 1", evicted)
	}
	if _, err := os.Stat(s.DiskPath("hot")); err == nil {
		t.Fatal("disk entry survived a 1-byte cap")
	}

	if got := s.MemLen(); got != memBefore {
		t.Fatalf("memory tier shrank from %d to %d during disk eviction", memBefore, got)
	}
	got, outcome, ok := s.Get("hot")
	if !ok || outcome != OutcomeMemoryHit || !bytes.Equal(got, want) {
		t.Fatalf("after disk eviction: ok=%v outcome=%v body=%q, want a memory hit with the original body", ok, outcome, got)
	}
}
