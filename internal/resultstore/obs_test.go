package resultstore

import (
	"testing"
	"time"

	"ipex/internal/trace"
)

// TestRatesAndLatencySpans drives the store with a FakeClock so the
// compute/disk-read latency histograms carry exact values, and checks the
// scrape-time hit/coalesce rates.
func TestRatesAndLatencySpans(t *testing.T) {
	dir := t.TempDir()
	reg := trace.NewRegistry()
	s, err := New(dir, 4, reg)
	if err != nil {
		t.Fatal(err)
	}
	clk := &trace.FakeClock{}
	s.SetClock(clk)

	if hit, co := s.Rates(); hit != 0 || co != 0 {
		t.Fatalf("fresh store rates = %g, %g, want 0, 0", hit, co)
	}

	compute := func() ([]byte, error) {
		clk.Advance(10 * time.Millisecond)
		return []byte("body"), nil
	}
	if _, out, err := s.GetOrCompute("k", compute); err != nil || out != OutcomeComputed {
		t.Fatalf("first lookup: %v, %v", out, err)
	}
	if _, out, err := s.GetOrCompute("k", compute); err != nil || out != OutcomeMemoryHit {
		t.Fatalf("second lookup: %v, %v", out, err)
	}

	hs := reg.Histogram("store.compute_seconds", nil).Snapshot()
	if hs.N != 1 || hs.Sum != 0.01 {
		t.Errorf("compute span n=%d sum=%g, want exactly one 10ms observation", hs.N, hs.Sum)
	}
	if hit, co := s.Rates(); hit != 0.5 || co != 0 {
		t.Errorf("rates after hit = %g, %g, want 0.5, 0", hit, co)
	}

	// A fresh store over the same dir has a cold memory tier: the next
	// lookup is a verified disk read, which must land in its own histogram.
	reg2 := trace.NewRegistry()
	s2, err := New(dir, 4, reg2)
	if err != nil {
		t.Fatal(err)
	}
	clk2 := &trace.FakeClock{}
	s2.SetClock(clk2)
	if _, out, ok := s2.Get("k"); !ok || out != OutcomeDiskHit {
		t.Fatalf("cold lookup: %v, %v", out, ok)
	}
	if n := reg2.Histogram("store.disk_read_seconds", nil).Count(); n != 1 {
		t.Errorf("disk-read spans = %d, want 1", n)
	}
}
