package profile

import (
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Report {
	r := &Report{
		Insts:          100,
		TotalCycles:    260,
		PrefetchReadNJ: 0.5,
		LedgerNJ:       42.0,
		Prefetch:       PrefetchOutcomes{Issued: 10, Useful: 5, Wiped: 3, Inaccurate: 1},
	}
	r.Cycles[CycCompute] = 100
	r.Cycles[CycIMissStall] = 50
	r.Cycles[CycDMissStall] = 30
	r.Cycles[CycBackfill] = 10
	r.Cycles[CycCheckpoint] = 20
	r.Cycles[CycRestore] = 15
	r.Cycles[CycOff] = 35
	r.EnergyNJ[ECompute] = 20
	r.EnergyNJ[EPrefetch] = 12
	r.EnergyNJ[ELeakage] = 10
	r.PowerCycles = []CycleRecord{
		{Index: 0, StartCycle: 0, Insts: 60, LedgerNJ: 30},
		{Index: 1, StartCycle: 200, Insts: 40, LedgerNJ: 12},
	}
	return r
}

func TestCategoryNamesComplete(t *testing.T) {
	for c := CycleCat(0); c < NumCycleCats; c++ {
		if CycleCatNames[c] == "" {
			t.Errorf("cycle category %d unnamed", c)
		}
	}
	for c := EnergyCat(0); c < NumEnergyCats; c++ {
		if EnergyCatNames[c] == "" {
			t.Errorf("energy category %d unnamed", c)
		}
	}
}

func TestTotalsAndOutcomes(t *testing.T) {
	r := sample()
	if got := r.CycleTotal(); got != 260 {
		t.Errorf("CycleTotal = %d, want 260", got)
	}
	if got := r.EnergyTotalNJ(); got != 42 {
		t.Errorf("EnergyTotalNJ = %v, want 42", got)
	}
	if got := r.Prefetch.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
	u, w, i := r.PrefetchEnergyNJ()
	if u != 2.5 || w != 1.5 || i != 0.5 {
		t.Errorf("PrefetchEnergyNJ = %v %v %v", u, w, i)
	}
	// Pending never underflows when counters over-resolve.
	o := PrefetchOutcomes{Issued: 2, Useful: 2, Inaccurate: 1}
	if o.Pending() != 0 {
		t.Errorf("Pending underflowed: %d", o.Pending())
	}
	d := PrefetchOutcomes{Issued: 10, Useful: 6, Wiped: 2}.Sub(PrefetchOutcomes{Issued: 4, Useful: 1, Wiped: 2})
	if d != (PrefetchOutcomes{Issued: 6, Useful: 5, Wiped: 0}) {
		t.Errorf("Sub = %+v", d)
	}
}

func TestRecordTotals(t *testing.T) {
	var c CycleRecord
	c.Cycles[CycCompute] = 7
	c.Cycles[CycOff] = 3
	c.EnergyNJ[ECompute] = 1.5
	c.EnergyNJ[ELeakage] = 0.5
	if c.TotalCycles() != 10 {
		t.Errorf("TotalCycles = %d", c.TotalCycles())
	}
	if c.TotalEnergyNJ() != 2 {
		t.Errorf("TotalEnergyNJ = %v", c.TotalEnergyNJ())
	}
}

func TestRenderings(t *testing.T) {
	r := sample()
	s := r.String()
	for _, want := range []string{"compute", "backfill", "leakage", "wiped=3", "drain ledger 42.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	tab := r.CycleTable(1)
	if !strings.Contains(tab, "(1 of 2 power cycles shown)") {
		t.Errorf("CycleTable(1) missing truncation note:\n%s", tab)
	}
	if strings.Contains(r.CycleTable(0), "shown") {
		t.Error("CycleTable(0) should render all records")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := sample()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.LedgerNJ != r.LedgerNJ || back.CycleTotal() != r.CycleTotal() || len(back.PowerCycles) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
}
