// Package profile defines the simulator's cycle and energy attribution
// vocabulary and report types.
//
// The paper's whole argument is an accounting argument — prefetches wiped
// before first use waste energy that would otherwise extend the power cycle —
// but an end-of-run Result only says *how much* was spent, not *where* it
// went inside a power cycle. The attribution profiler (nvp.Config.Profile)
// charges every simulated cycle and every nanojoule of consumed energy to a
// category at the moment it is spent, accumulated per power cycle and in
// aggregate, in the spirit of ETAP's energy/timing attribution for
// intermittent programs.
//
// Two invariants make the report trustworthy rather than indicative:
//
//   - Cycle attribution is exact by construction: the per-category cycle
//     counts of every power-cycle record sum to precisely the simulated time
//     the record spans, and the aggregate sums to Result.Cycles. Integers,
//     no tolerance.
//   - The energy ledger is exact against the paranoid checker: LedgerNJ
//     accumulates the identical chronological sequence of capacitor drain
//     requests that the paranoid shadow ledger (nvp.Config.Paranoid)
//     observes, so the two totals are bit-identical — per power cycle
//     (checked at every boundary when both are enabled) and overall. The
//     per-category energy split sums to the ledger up to float64
//     reassociation (the categories partition the same charges, accumulated
//     per category instead of chronologically).
//
// The profiler observes only: with Config.Profile off the simulator holds a
// nil pointer and every hook is one nil compare, preserving the golden
// byte-identical output; with it on, results are unchanged and only the
// report is added.
package profile

import (
	"fmt"
	"strings"
)

// CycleCat attributes one simulated cycle. Every cycle of a run belongs to
// exactly one category.
type CycleCat int

// The cycle categories.
const (
	// CycCompute is the one base pipeline cycle of each committed
	// instruction.
	CycCompute CycleCat = iota
	// CycIMissStall / CycDMissStall are pipeline stalls caused by
	// instruction/data cache misses (NVM demand reads, prefetch-buffer
	// promotion, waits on in-flight prefetches).
	CycIMissStall
	CycDMissStall
	// CycBackfill is the re-execution backfill tax of an outage: stall
	// cycles spent re-reading blocks from NVM that were resident in a cache
	// before the previous power failure wiped them. Without the outage these
	// reads would have been hits.
	CycBackfill
	// CycCheckpoint is the JIT backup walk at an outage (dirty blocks +
	// register file into NVFFs).
	CycCheckpoint
	// CycRestore is the reboot walk (checkpointed blocks + registers back).
	CycRestore
	// CycOff is dead time: the capacitor recharging below Von.
	CycOff

	NumCycleCats
)

// CycleCatNames indexes display names by CycleCat.
var CycleCatNames = [NumCycleCats]string{
	"compute", "imiss_stall", "dmiss_stall", "backfill",
	"checkpoint", "restore", "off",
}

// EnergyCat attributes one dynamic-energy charge. Every nanojoule drained
// from the capacitor belongs to exactly one category.
type EnergyCat int

// The energy categories.
const (
	// ECompute is core dynamic energy plus the base cache access of every
	// demand reference (the cost of executing the instruction itself).
	ECompute EnergyCat = iota
	// EIMiss / EDMiss are miss-path energies: demand NVM reads, refill
	// array writes, promotion accesses, and eviction writebacks.
	EIMiss
	EDMiss
	// EBackfill is the energy of demand NVM reads that re-fetch blocks a
	// power failure wiped (the miss-path energy an outage-free run would
	// not have spent).
	EBackfill
	// EPrefetch is all prefetch traffic: NVM prefetch reads, prefetcher
	// address generation, buffer/cache promotion, and prefetch-fill
	// writebacks. The outcome split (useful / wiped / inaccurate) is
	// derived in PrefetchOutcomes.
	EPrefetch
	// ECheckpoint is the JIT backup (checkpoint writes + register backup,
	// including fault-injected retry energy).
	ECheckpoint
	// ERestore is the reboot restore (restore reads + register restore).
	ERestore
	// ELeakage is static leakage of caches, NVM, and core over powered
	// cycles. It is attributed as its own category rather than smeared over
	// the activity that happened to be executing.
	ELeakage

	NumEnergyCats
)

// EnergyCatNames indexes display names by EnergyCat.
var EnergyCatNames = [NumEnergyCats]string{
	"compute", "imiss", "dmiss", "backfill",
	"prefetch", "checkpoint", "restore", "leakage",
}

// PrefetchOutcomes splits issued prefetches by fate. Wasted energy is
// outcome count × the per-block prefetch read energy (constant per
// configuration), so the split is exact given the counts.
type PrefetchOutcomes struct {
	// Issued counts prefetch reads put on the NVM bus.
	Issued uint64
	// Useful counts prefetched blocks that served a demand access.
	Useful uint64
	// Wiped counts prefetched blocks destroyed by a power failure before
	// first use — the paper's motivating waste.
	Wiped uint64
	// Inaccurate counts prefetched blocks that died useless for any other
	// reason: evicted or drained unused, or completed after a demand read
	// had already fetched the block (redundant).
	Inaccurate uint64
}

// Pending returns prefetches not yet resolved to an outcome (still resident
// unused, or still in flight) at the record boundary.
func (o PrefetchOutcomes) Pending() uint64 {
	done := o.Useful + o.Wiped + o.Inaccurate
	if done >= o.Issued {
		return 0
	}
	return o.Issued - done
}

// sub returns the per-interval delta o - prev (counter snapshots).
func (o PrefetchOutcomes) sub(prev PrefetchOutcomes) PrefetchOutcomes {
	return PrefetchOutcomes{
		Issued:     o.Issued - prev.Issued,
		Useful:     o.Useful - prev.Useful,
		Wiped:      o.Wiped - prev.Wiped,
		Inaccurate: o.Inaccurate - prev.Inaccurate,
	}
}

// Sub is the exported counter-delta helper (used by the nvp profiler).
func (o PrefetchOutcomes) Sub(prev PrefetchOutcomes) PrefetchOutcomes { return o.sub(prev) }

// CycleRecord is the attribution of one power cycle. A record spans from
// one reboot-complete point to the next: the cycle's powered execution, its
// terminating checkpoint, the dead recharge gap, and the restore walk that
// boots the successor. The final record of a run is the partial cycle the
// run ended in.
type CycleRecord struct {
	// Index is the 0-based power-cycle index.
	Index uint64
	// StartCycle is the absolute simulated cycle the record begins at.
	StartCycle uint64
	// Insts is the number of instructions the record committed.
	Insts uint64
	// Cycles is the per-category cycle attribution; it sums exactly to the
	// record's span.
	Cycles [NumCycleCats]uint64
	// EnergyNJ is the per-category energy attribution (nJ).
	EnergyNJ [NumEnergyCats]float64
	// LedgerNJ is the chronological sum of capacitor drain requests inside
	// this record — bit-identical to the paranoid shadow ledger's count of
	// the same interval.
	LedgerNJ float64
	// Prefetch is this record's prefetch-outcome delta.
	Prefetch PrefetchOutcomes
}

// TotalCycles returns the record's span: the sum of all cycle categories.
func (c *CycleRecord) TotalCycles() uint64 {
	var n uint64
	for _, v := range c.Cycles {
		n += v
	}
	return n
}

// TotalEnergyNJ returns the sum of the record's energy categories (equal to
// LedgerNJ up to float64 reassociation).
func (c *CycleRecord) TotalEnergyNJ() float64 {
	var e float64
	for _, v := range c.EnergyNJ {
		e += v
	}
	return e
}

// Report is the run-level attribution: aggregate category totals, the drain
// ledger, the prefetch-outcome split, and the per-power-cycle records.
type Report struct {
	// Insts and TotalCycles mirror the Result they were profiled from.
	Insts       uint64
	TotalCycles uint64
	// Cycles is the aggregate per-category cycle attribution; it sums
	// exactly to TotalCycles.
	Cycles [NumCycleCats]uint64
	// EnergyNJ is the aggregate per-category energy attribution.
	EnergyNJ [NumEnergyCats]float64
	// LedgerNJ is the run's chronological drain-request total —
	// bit-identical to the paranoid shadow ledger (fault.Report.LedgerNJ)
	// when both are enabled.
	LedgerNJ float64
	// PrefetchReadNJ is the per-block prefetch read energy of the profiled
	// configuration, used to convert outcome counts into nanojoules.
	PrefetchReadNJ float64
	// Prefetch is the aggregate outcome split.
	Prefetch PrefetchOutcomes
	// PowerCycles holds one record per power cycle (the last is the partial
	// cycle the run ended in).
	PowerCycles []CycleRecord
}

// CycleTotal returns the sum of the aggregate cycle categories.
func (r *Report) CycleTotal() uint64 {
	var n uint64
	for _, v := range r.Cycles {
		n += v
	}
	return n
}

// EnergyTotalNJ returns the sum of the aggregate energy categories (equal
// to LedgerNJ up to float64 reassociation).
func (r *Report) EnergyTotalNJ() float64 {
	var e float64
	for _, v := range r.EnergyNJ {
		e += v
	}
	return e
}

// PrefetchEnergyNJ returns the outcome split in nanojoules:
// useful, wiped, inaccurate (each outcome count × PrefetchReadNJ).
func (r *Report) PrefetchEnergyNJ() (useful, wiped, inaccurate float64) {
	return float64(r.Prefetch.Useful) * r.PrefetchReadNJ,
		float64(r.Prefetch.Wiped) * r.PrefetchReadNJ,
		float64(r.Prefetch.Inaccurate) * r.PrefetchReadNJ
}

// String renders the aggregate attribution as fixed-width ASCII tables.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attribution profile: %d insts, %d cycles, %d power cycle(s)\n",
		r.Insts, r.TotalCycles, len(r.PowerCycles))

	cycTotal := r.CycleTotal()
	b.WriteString("cycles:\n")
	for c := CycleCat(0); c < NumCycleCats; c++ {
		fmt.Fprintf(&b, "  %-12s %12d  %6.2f%%\n",
			CycleCatNames[c], r.Cycles[c], pct(float64(r.Cycles[c]), float64(cycTotal)))
	}
	fmt.Fprintf(&b, "  %-12s %12d\n", "total", cycTotal)

	eTotal := r.EnergyTotalNJ()
	b.WriteString("energy (nJ):\n")
	for c := EnergyCat(0); c < NumEnergyCats; c++ {
		fmt.Fprintf(&b, "  %-12s %14.1f  %6.2f%%\n",
			EnergyCatNames[c], r.EnergyNJ[c], pct(r.EnergyNJ[c], eTotal))
	}
	fmt.Fprintf(&b, "  %-12s %14.1f  (drain ledger %.1f)\n", "total", eTotal, r.LedgerNJ)

	u, w, i := r.PrefetchEnergyNJ()
	fmt.Fprintf(&b, "prefetch outcomes: issued=%d useful=%d wiped=%d inaccurate=%d pending=%d\n",
		r.Prefetch.Issued, r.Prefetch.Useful, r.Prefetch.Wiped,
		r.Prefetch.Inaccurate, r.Prefetch.Pending())
	fmt.Fprintf(&b, "prefetch read energy (nJ): useful=%.1f wiped=%.1f inaccurate=%.1f (%.3f nJ/read)\n",
		u, w, i, r.PrefetchReadNJ)
	return b.String()
}

// CycleTable renders the first n per-power-cycle records as an ASCII table
// (all of them when n <= 0).
func (r *Report) CycleTable(n int) string {
	if n <= 0 || n > len(r.PowerCycles) {
		n = len(r.PowerCycles)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %10s %8s %8s %7s %7s %7s %6s %6s %8s %8s %12s\n",
		"cycle", "start", "insts", "compute", "imiss", "dmiss", "backfil",
		"ckpt", "rstr", "off", "pf i/w", "energy nJ")
	for i := 0; i < n; i++ {
		c := &r.PowerCycles[i]
		fmt.Fprintf(&b, "%5d %10d %8d %8d %7d %7d %7d %6d %6d %8d %4d/%-3d %12.1f\n",
			c.Index, c.StartCycle, c.Insts,
			c.Cycles[CycCompute], c.Cycles[CycIMissStall], c.Cycles[CycDMissStall],
			c.Cycles[CycBackfill], c.Cycles[CycCheckpoint], c.Cycles[CycRestore],
			c.Cycles[CycOff], c.Prefetch.Issued, c.Prefetch.Wiped, c.LedgerNJ)
	}
	if n < len(r.PowerCycles) {
		fmt.Fprintf(&b, "(%d of %d power cycles shown)\n", n, len(r.PowerCycles))
	}
	return b.String()
}

func pct(part, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * part / total
}
