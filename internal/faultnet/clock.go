package faultnet

import "time"

// This file is the package's only wall-clock touchpoint, mirroring
// internal/remote/clock.go: a chaos proxy injects real latency and bounds
// real holds, but which faults fire is decided by the seeded rng alone —
// wall time never picks a fault, so a chaos run replays identically.

// holdSleep injects latency.
func holdSleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// holdDeadline bounds a blackhole hold or a drain read.
func holdDeadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}
