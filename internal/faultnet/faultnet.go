// Package faultnet is the network counterpart of internal/fault: a seeded,
// deterministic chaos proxy that sits between a fleet client and an ipexd
// server and injects the failures a real network delivers — added latency,
// dropped and reset connections, truncated and corrupted response bodies,
// 429 storms, and blackholes that accept a request and never answer.
//
// The proxy is a raw TCP relay, not an HTTP middleware: faults land at the
// byte level (a truncation cuts a response mid-body; a corruption flips
// bytes inside it), which is exactly what the client's envelope
// verification (key + sha256 + strict decode) must catch. Every fault
// decision is drawn from an rng seeded per accepted connection as
// seed ^ connection-index, so a chaos run replays identically: same seed,
// same workload order, same injected faults.
//
// The chaos suite (cmd/ipexd remote tests, `make remote-smoke`) pins the
// system-level contract: a sweep run through faultnet proxies is
// byte-identical to the local golden run with zero failed cells — every
// injected fault is absorbed by retries, hedging, breakers, or local
// fallback, never surfaced as a wrong result.
package faultnet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ipex/internal/rng"
)

// Config selects the fault mix. All probabilities are per accepted
// connection, drawn in the order declared here (drop, reset, blackhole,
// reject, latency, truncate, corrupt), so a given seed and connection index
// always produce the same fault. Zero values inject nothing: the proxy is a
// transparent relay.
type Config struct {
	// Seed drives every fault decision; connection i draws from
	// rng.New(Seed ^ i). Zero means 1.
	Seed uint64

	// DropProb closes the client connection immediately, before reading a
	// byte (connection refused, from the client's point of view).
	DropProb float64
	// ResetProb forwards the request but resets the client connection
	// before relaying the response (connection reset by peer mid-response).
	ResetProb float64
	// BlackholeProb reads the request and then holds the connection silent
	// for MaxHold without answering — the fault only a client-side timeout
	// or hedge can beat.
	BlackholeProb float64
	// MaxHold bounds a blackhole (default 2s; keep it above the client's
	// hedge delay and below its timeout to exercise hedging).
	MaxHold time.Duration
	// Reject429Prob answers a canned HTTP 429 with Retry-After instead of
	// proxying — a backpressure storm.
	Reject429Prob float64
	// RetryAfterSecs is the canned 429's Retry-After value (default 1).
	RetryAfterSecs int
	// LatencyProb delays relaying the request by Latency (default 50ms).
	LatencyProb float64
	Latency     time.Duration
	// TruncateProb cuts the relayed response after roughly half its bytes
	// and closes the connection (a torn body the sha256 check must catch).
	TruncateProb float64
	// CorruptProb flips bytes in the relayed response body, leaving headers
	// intact (a plausible-looking but wrong payload).
	CorruptProb float64
}

// Counters tallies injected faults, for asserting a chaos run actually
// exercised each path.
type Counters struct {
	Conns      atomic.Uint64
	Relayed    atomic.Uint64
	Drops      atomic.Uint64
	Resets     atomic.Uint64
	Blackholes atomic.Uint64
	Rejects    atomic.Uint64
	Delays     atomic.Uint64
	Truncates  atomic.Uint64
	Corrupts   atomic.Uint64
}

// Snapshot is a point-in-time copy of Counters.
type Snapshot struct {
	Conns, Relayed, Drops, Resets, Blackholes, Rejects, Delays, Truncates, Corrupts uint64
}

// Snapshot reads every counter (individually; not a consistent cut).
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		Conns:      c.Conns.Load(),
		Relayed:    c.Relayed.Load(),
		Drops:      c.Drops.Load(),
		Resets:     c.Resets.Load(),
		Blackholes: c.Blackholes.Load(),
		Rejects:    c.Rejects.Load(),
		Delays:     c.Delays.Load(),
		Truncates:  c.Truncates.Load(),
		Corrupts:   c.Corrupts.Load(),
	}
}

// Injected reports the total number of injected faults.
func (s Snapshot) Injected() uint64 {
	return s.Drops + s.Resets + s.Blackholes + s.Rejects + s.Delays + s.Truncates + s.Corrupts
}

// String renders the grep-able summary line cmd/faultnet prints on exit.
func (s Snapshot) String() string {
	return fmt.Sprintf("faultnet: conns=%d relayed=%d drops=%d resets=%d blackholes=%d rejects=%d delays=%d truncates=%d corrupts=%d",
		s.Conns, s.Relayed, s.Drops, s.Resets, s.Blackholes, s.Rejects, s.Delays, s.Truncates, s.Corrupts)
}

// fault is the per-connection verdict.
type fault int

const (
	faultNone fault = iota
	faultDrop
	faultReset
	faultBlackhole
	faultReject429
	faultTruncate
	faultCorrupt
)

// Proxy is one running chaos proxy: a listener relaying to a single
// upstream address with Config's fault mix.
type Proxy struct {
	cfg      Config
	upstream string
	ln       net.Listener
	connSeq  atomic.Uint64
	closed   atomic.Bool
	wg       sync.WaitGroup

	// Counters tallies injected faults; read it via Snapshot.
	Counters Counters
}

// Listen starts a proxy on addr (e.g. "127.0.0.1:0") relaying to upstream
// ("host:port"). Close it when done.
func Listen(addr, upstream string, cfg Config) (*Proxy, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxHold <= 0 {
		cfg.MaxHold = 2 * time.Second
	}
	if cfg.RetryAfterSecs <= 0 {
		cfg.RetryAfterSecs = 1
	}
	if cfg.Latency <= 0 {
		cfg.Latency = 50 * time.Millisecond
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("faultnet: %w", err)
	}
	p := &Proxy{cfg: cfg, upstream: upstream, ln: ln}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (dial this instead of the
// upstream).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting and waits for in-flight connections to finish.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		seq := p.connSeq.Add(1)
		p.Counters.Conns.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn, seq)
		}()
	}
}

// draw picks this connection's fault (and latency verdict) from its own
// seeded rng. Order is fixed; see Config.
func (p *Proxy) draw(seq uint64) (fault, bool) {
	r := rng.New(p.cfg.Seed ^ seq)
	switch {
	case r.Float64() < p.cfg.DropProb:
		return faultDrop, false
	case r.Float64() < p.cfg.ResetProb:
		return faultReset, false
	case r.Float64() < p.cfg.BlackholeProb:
		return faultBlackhole, false
	case r.Float64() < p.cfg.Reject429Prob:
		return faultReject429, false
	}
	delayed := r.Float64() < p.cfg.LatencyProb
	switch {
	case r.Float64() < p.cfg.TruncateProb:
		return faultTruncate, delayed
	case r.Float64() < p.cfg.CorruptProb:
		return faultCorrupt, delayed
	}
	return faultNone, delayed
}

// serve handles one client connection end to end.
func (p *Proxy) serve(client net.Conn, seq uint64) {
	defer client.Close()
	verdict, delayed := p.draw(seq)

	switch verdict {
	case faultDrop:
		p.Counters.Drops.Add(1)
		return
	case faultBlackhole:
		// Read (and discard) whatever the client sends, then hold the line
		// silent: the client's deadline or hedge must save it. The hold is
		// bounded so a proxy shutdown does not hang on blackholed conns.
		p.Counters.Blackholes.Add(1)
		_ = client.SetReadDeadline(holdDeadline(p.cfg.MaxHold))
		_, _ = io.Copy(io.Discard, client)
		return
	case faultReject429:
		p.Counters.Rejects.Add(1)
		p.reject429(client)
		return
	}

	if delayed {
		p.Counters.Delays.Add(1)
		holdSleep(p.cfg.Latency)
	}

	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		// Upstream genuinely down: indistinguishable from a drop for the
		// client, which is the point of the kill-a-server chaos tests.
		p.Counters.Drops.Add(1)
		return
	}
	defer up.Close()

	// Client → upstream relay runs concurrently (requests are small; the
	// interesting faults land on the response path below).
	go func() {
		_, _ = io.Copy(up, client)
		// Half-close so the upstream sees EOF on the request stream without
		// tearing down its response direction.
		if tc, ok := up.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	switch verdict {
	case faultReset:
		p.Counters.Resets.Add(1)
		// Relay a little of the response, then hard-reset the client so it
		// sees a mid-body connection reset rather than a clean close.
		_, _ = io.CopyN(client, up, 64)
		abort(client)
		return
	case faultTruncate:
		p.Counters.Truncates.Add(1)
		p.truncate(client, up)
		return
	case faultCorrupt:
		p.Counters.Corrupts.Add(1)
		p.corrupt(client, up, seq)
		return
	}
	p.Counters.Relayed.Add(1)
	_, _ = io.Copy(client, up)
}

// reject429 answers a canned backpressure storm response without touching
// the upstream. Connection: close keeps the exchange single-shot.
func (p *Proxy) reject429(client net.Conn) {
	// Drain the request first so the client does not see a reset while
	// still writing its body.
	_ = client.SetReadDeadline(holdDeadline(time.Second))
	buf := make([]byte, 4096)
	for {
		n, err := client.Read(buf)
		if err != nil || n == 0 {
			break
		}
		if endOfRequest(buf[:n]) {
			break
		}
	}
	body := "faultnet: injected 429 storm\n"
	fmt.Fprintf(client, "HTTP/1.1 429 Too Many Requests\r\nRetry-After: %d\r\nContent-Type: text/plain\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		p.cfg.RetryAfterSecs, len(body), body)
}

// endOfRequest detects a complete small JSON request heuristically: the
// /v1/run bodies this proxy fronts are single-line JSON objects, so a
// closing brace at the read tail is good enough for a chaos rig (a wrong
// guess only means the 429 races the tail of the upload, which real storms
// do too).
func endOfRequest(b []byte) bool {
	for i := len(b) - 1; i >= 0; i-- {
		switch b[i] {
		case '\n', '\r', ' ':
		case '}':
			return true
		default:
			return false
		}
	}
	return false
}

// truncate relays roughly half the upstream's response, then closes —
// a torn body with intact-looking headers.
func (p *Proxy) truncate(client net.Conn, up net.Conn) {
	data, _ := io.ReadAll(up)
	if len(data) == 0 {
		return
	}
	cut := len(data) / 2
	if cut == 0 {
		cut = 1
	}
	_, _ = client.Write(data[:cut])
}

// corrupt relays the full response with bytes flipped past the header
// block: headers (including the sha256 the client checks) arrive intact,
// the body does not.
func (p *Proxy) corrupt(client net.Conn, up net.Conn, seq uint64) {
	data, _ := io.ReadAll(up)
	if len(data) == 0 {
		return
	}
	// Find the end of the HTTP header block; corrupt only past it so the
	// fault reaches the client's envelope verification rather than breaking
	// HTTP framing (both are injected elsewhere via reset/truncate).
	start := headerEnd(data)
	if start >= len(data) {
		start = len(data) - 1
	}
	r := rng.New(p.cfg.Seed ^ seq ^ 0x9e3779b97f4a7c15)
	flips := 1 + int(r.Uint64()%8)
	for i := 0; i < flips; i++ {
		pos := start + int(r.Uint64()%uint64(len(data)-start))
		data[pos] ^= byte(1 + r.Uint64()%255)
	}
	_, _ = client.Write(data)
}

// headerEnd returns the index just past the first CRLFCRLF (or 0 when the
// response has no header block — then anything goes).
func headerEnd(b []byte) int {
	for i := 0; i+3 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' && b[i+2] == '\r' && b[i+3] == '\n' {
			return i + 4
		}
	}
	return 0
}

// abort hard-resets a TCP connection (SO_LINGER 0 → RST on close), so the
// peer sees "connection reset by peer" instead of a graceful EOF.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}
