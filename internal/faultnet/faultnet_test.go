package faultnet

// The tests drive the proxy over raw TCP with a canned HTTP upstream — no
// net/http anywhere, keeping the package inside the determinism lint's
// network budget. The envelope-level effects of each fault (does the fleet
// client retry, hedge, or fall back correctly) are pinned end to end by the
// cmd/ipexd chaos suite; here we pin the proxy's own contract: which bytes
// reach the client under each verdict, and that the seeded draws replay.

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// cannedResponse is what the upstream answers to every request.
const cannedResponse = "HTTP/1.1 200 OK\r\n" +
	"Content-Type: application/json\r\n" +
	"X-Ipex-Key: 0123456789abcdef\r\n" +
	"Content-Length: 26\r\n" +
	"Connection: close\r\n" +
	"\r\n" +
	`{"app":"fft","cycles":123}`

// cannedRequest is what the test client sends.
const cannedRequest = "POST /v1/run HTTP/1.1\r\n" +
	"Host: test\r\n" +
	"Content-Type: application/json\r\n" +
	"Content-Length: 13\r\n" +
	"\r\n" +
	`{"app":"fft"}`

// upstream runs a canned single-response TCP server and returns its
// address. Every accepted connection reads until the request body's closing
// brace (or a short deadline), writes cannedResponse, and closes.
func upstream(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
				buf := make([]byte, 4096)
				var got []byte
				for !bytes.Contains(got, []byte("}")) {
					n, err := c.Read(buf)
					if n > 0 {
						got = append(got, buf[:n]...)
					}
					if err != nil {
						break
					}
				}
				_, _ = io.WriteString(c, cannedResponse)
			}(c)
		}
	}()
	return ln.Addr().String()
}

// exchange dials the proxy, sends cannedRequest, and reads until EOF (or a
// read error, returned alongside whatever arrived).
func exchange(t *testing.T, addr string) ([]byte, error) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.WriteString(c, cannedRequest); err != nil {
		return nil, err
	}
	return io.ReadAll(c)
}

func proxyFor(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p, err := Listen("127.0.0.1:0", upstream(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestTransparentRelay(t *testing.T) {
	p := proxyFor(t, Config{Seed: 7})
	got, err := exchange(t, p.Addr())
	if err != nil {
		t.Fatalf("relay: %v", err)
	}
	if string(got) != cannedResponse {
		t.Fatalf("relayed bytes differ from upstream:\ngot  %q\nwant %q", got, cannedResponse)
	}
	s := p.Counters.Snapshot()
	if s.Relayed != 1 || s.Injected() != 0 {
		t.Fatalf("counters = %+v, want exactly one clean relay", s)
	}
}

func TestDrop(t *testing.T) {
	p := proxyFor(t, Config{Seed: 7, DropProb: 1})
	got, _ := exchange(t, p.Addr())
	if len(got) != 0 {
		t.Fatalf("dropped connection delivered %q, want nothing", got)
	}
	if s := p.Counters.Snapshot(); s.Drops != 1 {
		t.Fatalf("drops = %d, want 1", s.Drops)
	}
}

func TestReject429(t *testing.T) {
	p := proxyFor(t, Config{Seed: 7, Reject429Prob: 1, RetryAfterSecs: 3})
	got, err := exchange(t, p.Addr())
	if err != nil {
		t.Fatalf("429 exchange: %v", err)
	}
	head := string(got)
	if !strings.HasPrefix(head, "HTTP/1.1 429") {
		t.Fatalf("injected 429 status line missing:\n%q", head)
	}
	if !strings.Contains(head, "Retry-After: 3") {
		t.Fatalf("injected 429 lost its Retry-After:\n%q", head)
	}
	if s := p.Counters.Snapshot(); s.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", s.Rejects)
	}
}

func TestTruncate(t *testing.T) {
	p := proxyFor(t, Config{Seed: 7, TruncateProb: 1})
	got, _ := exchange(t, p.Addr())
	if len(got) == 0 || len(got) >= len(cannedResponse) {
		t.Fatalf("truncated response is %d bytes, want 0 < n < %d", len(got), len(cannedResponse))
	}
	if !strings.HasPrefix(cannedResponse, string(got)) {
		t.Fatalf("truncation altered bytes instead of cutting them: %q", got)
	}
	if s := p.Counters.Snapshot(); s.Truncates != 1 {
		t.Fatalf("truncates = %d, want 1", s.Truncates)
	}
}

func TestCorruptKeepsHeadersFlipsBody(t *testing.T) {
	p := proxyFor(t, Config{Seed: 7, CorruptProb: 1})
	got, err := exchange(t, p.Addr())
	if err != nil {
		t.Fatalf("corrupt exchange: %v", err)
	}
	if len(got) != len(cannedResponse) {
		t.Fatalf("corruption changed the length: got %d, want %d", len(got), len(cannedResponse))
	}
	cut := headerEnd([]byte(cannedResponse))
	if string(got[:cut]) != cannedResponse[:cut] {
		t.Fatalf("corruption touched the header block:\n%q", got[:cut])
	}
	if string(got[cut:]) == cannedResponse[cut:] {
		t.Fatal("corruption left the body intact")
	}
	if s := p.Counters.Snapshot(); s.Corrupts != 1 {
		t.Fatalf("corrupts = %d, want 1", s.Corrupts)
	}
}

func TestReset(t *testing.T) {
	p := proxyFor(t, Config{Seed: 7, ResetProb: 1})
	got, err := exchange(t, p.Addr())
	// A reset delivers at most a prefix; most stacks surface ECONNRESET on
	// the read, but a clean EOF after a short prefix is also acceptable —
	// the invariant is that the full response never arrives.
	if err == nil && string(got) == cannedResponse {
		t.Fatal("reset connection delivered the complete response")
	}
	if s := p.Counters.Snapshot(); s.Resets != 1 {
		t.Fatalf("resets = %d, want 1", s.Resets)
	}
}

func TestBlackholeHoldsThenCloses(t *testing.T) {
	p := proxyFor(t, Config{Seed: 7, BlackholeProb: 1, MaxHold: 50 * time.Millisecond})
	got, _ := exchange(t, p.Addr())
	if len(got) != 0 {
		t.Fatalf("blackhole delivered %q, want silence", got)
	}
	if s := p.Counters.Snapshot(); s.Blackholes != 1 {
		t.Fatalf("blackholes = %d, want 1", s.Blackholes)
	}
}

// TestDrawDeterminism pins that the fault schedule is a pure function of
// (seed, connection index): two proxies with the same Config draw the same
// verdict sequence, and a different seed draws a different one.
func TestDrawDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 42, DropProb: 0.1, ResetProb: 0.1, BlackholeProb: 0.1,
		Reject429Prob: 0.1, LatencyProb: 0.2, TruncateProb: 0.15, CorruptProb: 0.15,
	}
	a := &Proxy{cfg: cfg}
	b := &Proxy{cfg: cfg}
	diffSeed := cfg
	diffSeed.Seed = 43
	c := &Proxy{cfg: diffSeed}

	same, differ := true, false
	for seq := uint64(1); seq <= 512; seq++ {
		fa, da := a.draw(seq)
		fb, db := b.draw(seq)
		fc, dc := c.draw(seq)
		if fa != fb || da != db {
			same = false
		}
		if fa != fc || da != dc {
			differ = true
		}
	}
	if !same {
		t.Fatal("identical seeds drew different fault schedules")
	}
	if !differ {
		t.Fatal("different seeds drew identical fault schedules (rng not keyed by seed)")
	}
}

// TestConnectionsDrawIndependently pins that a probability mix actually
// mixes across connections rather than repeating one verdict.
func TestConnectionsDrawIndependently(t *testing.T) {
	p := &Proxy{cfg: Config{Seed: 1, DropProb: 0.5}}
	kinds := map[fault]int{}
	for seq := uint64(1); seq <= 256; seq++ {
		f, _ := p.draw(seq)
		kinds[f]++
	}
	if kinds[faultDrop] == 0 || kinds[faultNone] == 0 {
		t.Fatalf("256 draws at p=0.5 gave %v, want both verdicts present", kinds)
	}
}
