package nvp

import (
	"bytes"
	"reflect"
	"testing"

	"ipex/internal/fault"
	"ipex/internal/power"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

// faultedConfig is a schedule that exercises all three injector families.
func faultedConfig() *fault.Config {
	return &fault.Config{
		Seed: 11,
		Sensor: fault.SensorConfig{
			ADCBits: 8, NoiseV: 0.01, DropoutProb: 0.02, StuckProb: 0.002,
		},
		Checkpoint: fault.CheckpointConfig{WriteFailProb: 0.2},
		Harvest: fault.HarvestConfig{
			DropoutProb: 0.05, SpikeProb: 0.02, StormProb: 0.002, StormLen: 8,
		},
	}
}

// A Faults config with no active family must be bit-identical to no Faults
// config at all (the golden-output guarantee).
func TestInactiveFaultsAreIdentity(t *testing.T) {
	tr := power.Generate(power.RFHome, 20000, 1)
	wl := workload.MustNew("fft", 0.05)

	base, err := Run(wl, tr, DefaultConfig().WithIPEX())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().WithIPEX()
	cfg.Faults = &fault.Config{Seed: 12345} // seed alone activates nothing
	inert, err := Run(workload.MustNew("fft", 0.05), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inert.Faults != nil {
		t.Error("inactive fault config produced fault stats")
	}
	if !reflect.DeepEqual(base, inert) {
		t.Error("inactive fault config changed the result")
	}
}

// Same seed + same config → identical Result and byte-identical trace
// stream; a different seed must change the schedule.
func TestFaultDeterminism(t *testing.T) {
	tr := power.Generate(power.RFHome, 20000, 1)
	run := func(seed uint64) (Result, []byte) {
		cfg := DefaultConfig().WithIPEX()
		fc := faultedConfig()
		fc.Seed = seed
		cfg.Faults = fc
		cfg.Paranoid = true
		var buf bytes.Buffer
		cfg.Tracer = trace.NewJSONL(&buf)
		r, err := Run(workload.MustNew("susanc", 0.05), tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Tracer.Flush(); err != nil {
			t.Fatal(err)
		}
		return r, buf.Bytes()
	}
	r1, ev1 := run(11)
	r2, ev2 := run(11)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same-seed results differ:\n%+v\nvs\n%+v", r1.Faults, r2.Faults)
	}
	if !bytes.Equal(ev1, ev2) {
		t.Error("same-seed trace streams differ")
	}
	if r1.Faults == nil {
		t.Fatal("faulted run carries no fault stats")
	}
	if r1.Faults.SensorSamples == 0 {
		t.Error("sensor never sampled")
	}
	if !r1.Invariants.Clean() {
		t.Errorf("paranoid mode flagged a faulted run: %s", r1.Invariants.Summary())
	}

	r3, _ := run(99)
	if reflect.DeepEqual(r1.Faults, r3.Faults) {
		t.Error("different seeds produced the identical fault schedule")
	}
}

// WriteFailProb=1 is the bounded worst case: every unforced write tears,
// the rollback bound forces completion, and the retry cost shows up in both
// the fault stats and the NVM checkpoint-write count.
func TestCheckpointWorstCaseBounded(t *testing.T) {
	tr := power.Generate(power.RFHome, 20000, 1)
	cfg := DefaultConfig()
	cfg.Faults = &fault.Config{Checkpoint: fault.CheckpointConfig{WriteFailProb: 1}}
	cfg.Paranoid = true
	r, err := Run(workload.MustNew("qsort", 0.05), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outages == 0 {
		t.Skip("trace strong enough to avoid outages; nothing to checkpoint")
	}
	fs := r.Faults
	if fs == nil {
		t.Fatal("no fault stats")
	}
	if fs.CheckpointWriteFailures == 0 || fs.CheckpointForced == 0 {
		t.Errorf("worst case did not exercise failure+forcing: %+v", fs)
	}
	// Every outage rolls back exactly MaxRollbacks times before forcing.
	if want := r.Outages * fault.DefaultMaxRollbacks; fs.CheckpointRollbacks != want {
		t.Errorf("rollbacks = %d, want %d (%d outages x %d)",
			fs.CheckpointRollbacks, want, r.Outages, fault.DefaultMaxRollbacks)
	}
	// The write-count ledger must close: attempts = failures + discarded +
	// net commits, and the paranoid checker verifies net commits fit the
	// dirty capacity.
	net := r.NVM.CheckpointWrites - fs.CheckpointWriteFailures - fs.CheckpointDiscarded
	if net > r.Outages*uint64(cfg.DCacheSize/16) {
		t.Errorf("net checkpoint writes %d exceed dirty capacity", net)
	}
	if fs.RetryNJ <= 0 {
		t.Error("worst case charged no retry energy")
	}
	// Per outage: MaxRollbacks full walks were discarded, so the write
	// count must strictly exceed the final committed snapshot — the retry
	// energy is genuinely charged, not just counted.
	if r.NVM.CheckpointWrites <= net {
		t.Errorf("no extra checkpoint writes recorded (total %d, net %d)",
			r.NVM.CheckpointWrites, net)
	}
	if !r.Invariants.Clean() {
		t.Errorf("invariants: %s", r.Invariants.Summary())
	}
}

// Paranoid mode on an ordinary fault-free run: clean report, many checks,
// and no behavioural change to the simulated numbers.
func TestParanoidCleanOnNormalRuns(t *testing.T) {
	tr := power.Generate(power.RFOffice, 20000, 3)
	for _, build := range []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"ipex", DefaultConfig().WithIPEX()},
		{"ideal", func() Config { c := DefaultConfig(); c.Ideal = true; return c }()},
		{"buffer-mode", func() Config { c := DefaultConfig(); c.PrefetchToCache = false; return c }()},
	} {
		cfg := build.cfg
		plain, err := Run(workload.MustNew("patricia", 0.05), tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Paranoid = true
		r, err := Run(workload.MustNew("patricia", 0.05), tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Invariants == nil {
			t.Fatalf("%s: paranoid run carries no report", build.name)
		}
		if !r.Invariants.Clean() {
			t.Errorf("%s: %s", build.name, r.Invariants.Summary())
		}
		if r.Invariants.Checks == 0 {
			t.Errorf("%s: no checks ran", build.name)
		}
		// Identical numbers apart from the report itself.
		r.Invariants = nil
		if !reflect.DeepEqual(plain, r) {
			t.Errorf("%s: paranoid mode changed the simulation", build.name)
		}
	}
}

// A noisy sensor must actually perturb IPEX behaviour (otherwise the whole
// robustness sweep measures nothing).
func TestSensorFaultsPerturbIPEX(t *testing.T) {
	tr := power.Generate(power.RFHome, 20000, 1)
	run := func(noise float64) Result {
		cfg := DefaultConfig().WithIPEX()
		if noise > 0 {
			cfg.Faults = &fault.Config{Sensor: fault.SensorConfig{NoiseV: noise, ADCBits: 8}}
		}
		r, err := Run(workload.MustNew("qsort", 0.05), tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	clean := run(0)
	noisy := run(0.05)
	if clean.Outages == 0 {
		t.Skip("no outages; IPEX never engages on this trace")
	}
	ct, _ := clean.Inst.IPEX, clean.Data.IPEX
	nt := noisy.Inst.IPEX
	if clean.Cycles == noisy.Cycles && reflect.DeepEqual(ct, nt) &&
		clean.Inst.PrefetchThrottled == noisy.Inst.PrefetchThrottled &&
		clean.Data.PrefetchThrottled == noisy.Data.PrefetchThrottled {
		t.Error("50 mV of sensor noise left IPEX behaviour untouched")
	}
}

// Harvest anomalies only remove or add input energy; with dropouts and
// storms only, the run can never finish faster than the clean trace.
func TestHarvestAnomaliesCostTime(t *testing.T) {
	tr := power.Generate(power.RFHome, 20000, 1)
	clean, err := Run(workload.MustNew("fft", 0.05), tr, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Faults = &fault.Config{Harvest: fault.HarvestConfig{DropoutProb: 0.2, StormProb: 0.01}}
	cfg.Paranoid = true
	r, err := Run(workload.MustNew("fft", 0.05), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults.HarvestDropouts == 0 {
		t.Error("no dropouts injected")
	}
	if r.Cycles < clean.Cycles {
		t.Errorf("losing input energy sped the run up: %d < %d", r.Cycles, clean.Cycles)
	}
	if !r.Invariants.Clean() {
		t.Errorf("invariants: %s", r.Invariants.Summary())
	}
}
