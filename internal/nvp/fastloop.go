package nvp

import (
	"ipex/internal/energy"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/workload"
)

// This file holds the specialized hot loops. run() selects a variant ONCE at
// entry from the configuration instead of re-testing the same cold branches
// on every access: the generic interpreter loop carries nil checks and mode
// switches (tracer, profiler, paranoid ledger, fault injectors, ablation
// flags) that are loop-invariant, and it keeps every hot counter — clocks,
// pending energy, capacitor charge — in System fields, forcing a memory
// round-trip per update. Each fast loop is a hand-pruned replica of the
// generic path for one branch assignment with the hot counters promoted to
// locals (registers), synchronized with the System fields only at power-
// cycle boundaries and at exit.
//
// BIT-IDENTITY CONTRACT: every statement that touches simulated state keeps
// the generic loop's statement order and floating-point expression shapes,
// so results are bit-identical to the generic loop. Where a term is dropped
// (the BkRst pending bucket, identically zero between outages) the
// neutrality argument is written at the site. The equivalence is pinned by
// TestGoldenFastPaths, TestArenaMatchesFreshRuns and TestArenaRunStream;
// any edit here must keep the op sequence aligned with system.go or those
// tests (and the golden suite) will catch the divergence.
//
// Two variants exist:
//
//	runFast     — prefetchers attached; prunes observers and ablations.
//	runFastNoPF — both prefetchers nil (the no-prefetch sweep corner): no
//	              in-flight queue, no candidate generation, and — because a
//	              side's IPEX controller is only enabled when its prefetcher
//	              exists — no voltage observation at all.
//
// Anything outside the per-instruction path (outage, result assembly) is
// shared with the generic loop unchanged.

// canFastLoop reports whether the configuration is eligible for a
// specialized loop: every pruned branch must actually be off. The workload
// must additionally be a *workload.Cursor (checked by the caller) so the
// loop can walk the access slice directly.
func (s *System) canFastLoop() bool {
	return !s.cfg.DisableFastPaths &&
		s.tr == nil && s.prof == nil && s.par == nil && s.flt == nil &&
		!s.cfg.ReissueOnExit && !s.cfg.GateAddressGen &&
		s.cfg.DupSuppress && s.cfg.PrefetchToCache
}

// hotState carries the register-promoted counters of a fast loop: simulated
// clocks, the instruction count, the pending- and consumed-energy buckets
// (BkRst pends only inside outage(), which runs with the fields synced, so
// it needs no local), the capacitor charge, and the harvest sample cache.
type hotState struct {
	now      uint64
	onCycles uint64
	insts    uint64

	pCache, pMemory float64 // pending dynamic energy (drained every instruction)

	cCache, cMemory, cCompute float64 // consumed energy accumulators

	e         float64 // capacitor charge, nJ
	sampleEnd uint64
	samplePow float64
}

// load populates the locals from the System fields.
func (h *hotState) load(s *System) {
	h.now, h.onCycles, h.insts = s.now, s.onCycles, s.insts
	h.pCache, h.pMemory = s.pend.Cache, s.pend.Memory
	h.cCache, h.cMemory, h.cCompute = s.consumed.Cache, s.consumed.Memory, s.consumed.Compute
	h.e = s.cap.EnergyNJ()
	h.sampleEnd, h.samplePow = s.sampleEnd, s.samplePow
}

// sync writes the locals back so outage() / result() see current state.
func (h *hotState) sync(s *System) {
	s.now, s.onCycles, s.insts = h.now, h.onCycles, h.insts
	s.pend.Cache, s.pend.Memory = h.pCache, h.pMemory
	s.consumed.Cache, s.consumed.Memory, s.consumed.Compute = h.cCache, h.cMemory, h.cCompute
	s.cap.RestoreEnergyNJ(h.e)
	s.sampleEnd, s.samplePow = h.sampleEnd, h.samplePow
}

// runFast is the specialized loop for prefetching configurations.
func (s *System) runFast(cur *workload.Cursor) (Result, error) {
	acc := cur.Stream().Accesses()
	i := cur.Pos()
	completed := true
	inst, data := &s.inst, &s.data
	// A disabled controller's ObserveEnergy is a no-op, so when both are
	// disabled the capacitor read feeding them is dead too; hoisting the
	// check out of the loop removes both calls from every instruction of an
	// IPEX-off run without touching any simulated state.
	observe := inst.ctl.Enabled() || data.ctl.Enabled()
	maxCycles := s.maxCycles
	capMaxNJ := s.cap.CapacityNJ()
	backupCut := s.cap.BackupCutoffNJ()
	leakCache, leakMem, leakCompute := s.leakCacheNJ, s.leakMemNJ, s.leakComputeNJ

	var h hotState
	h.load(s)

	for i < len(acc) {
		a := acc[i]
		i++
		h.insts++

		// Instruction fetch; then data reference. Pending-energy adds keep
		// the generic order: I-side cache/memory, compute base, D-side,
		// leakage last.
		istall, pC, pM := s.fastSideAccess(inst, a.PC, a.PC, false, h.now, h.pCache, h.pMemory)
		cycles := uint64(1) + istall
		inst.stats.StallCycles += istall
		// pend.Compute starts every instruction at zero, so "0 +
		// ComputeNJPerInst" is the value itself.
		pCompute := energy.ComputeNJPerInst

		if a.HasData {
			var dstall uint64
			dstall, pC, pM = s.fastSideAccess(data, a.PC, a.DataAddr, a.Write, h.now, pC, pM)
			cycles += dstall
			data.stats.StallCycles += dstall
		}

		// advanceOn, inlined: harvest over [now, now+cycles), then leakage,
		// then drain the pending energy from the capacitor. The single-
		// window harvest case (the instruction ends inside the cached trace
		// sample) is lifted out of the window loop: it is the overwhelmingly
		// common one and evaluates exactly one energy integration with the
		// identical floating-point expression the loop would.
		t := h.now
		if t < h.sampleEnd && h.sampleEnd-t >= cycles {
			hv := power.EnergyNJ(h.samplePow, cycles)
			if hv > 0 { // Capacitor.Harvest's nj<=0 guard; hv is never negative
				if room := capMaxNJ - h.e; hv > room {
					hv = room
				}
				h.e += hv
			}
		} else {
			remaining := cycles
			for remaining > 0 {
				if t >= h.sampleEnd {
					h.samplePow = s.trace.PowerAt(t)
					h.sampleEnd = (t/power.SampleIntervalCycles + 1) * power.SampleIntervalCycles
				}
				chunk := h.sampleEnd - t
				if chunk > remaining {
					chunk = remaining
				}
				hv := power.EnergyNJ(h.samplePow, chunk)
				if hv > 0 {
					if room := capMaxNJ - h.e; hv > room {
						hv = room
					}
					h.e += hv
				}
				t += chunk
				remaining -= chunk
			}
		}
		fc := float64(cycles)
		pC += leakCache * fc
		pM += leakMem * fc
		pCompute += leakCompute * fc
		// Total() is ((Cache+Memory)+Compute)+BkRst; the pending BkRst
		// bucket is identically zero between outages and x+0.0 == x for the
		// non-negative energies here, so the term is dropped. Same for the
		// consumed.BkRst accumulation below.
		tot := pC + pM + pCompute
		if tot > 0 { // Capacitor.Consume's nj<=0 guard
			h.e -= tot
			if h.e < 0 {
				h.e = 0
			}
		}
		h.cCache += pC
		h.cMemory += pM
		h.cCompute += pCompute
		h.pCache, h.pMemory = 0, 0
		h.now += cycles
		h.onCycles += cycles

		// Voltage monitor: h.e is exactly what cap.EnergyNJ() would return.
		if observe {
			inst.ctl.ObserveEnergy(h.e)
			data.ctl.ObserveEnergy(h.e)
		}
		if h.e < backupCut { // cap.BelowBackup()
			cur.SetPos(i) // keep the generator honest across the boundary
			h.sync(s)
			s.outage()
			h.load(s)
			if s.ctx != nil && s.ctx.Err() != nil {
				completed = false
				break
			}
		}

		if h.now >= maxCycles {
			completed = false
			break
		}
	}
	cur.SetPos(i)
	h.sync(s)
	return s.result(completed), nil
}

// fastSideAccess is access() specialized for prefetch-to-cache + DupSuppress
// with every observer nil and GateAddressGen off. The pending-energy buckets
// and the clock travel through arguments and results so they stay in
// registers in the caller.
func (s *System) fastSideAccess(sd *side, pc, addr uint64, write bool, now uint64, pCache, pMemory float64) (stall uint64, pC, pM float64) {
	block := addr &^ (uint64(sd.params.BlockSize) - 1) // cache.BlockAddr
	if now >= sd.minReady {
		pCache, pMemory = s.fastDrain(sd, now, pCache, pMemory)
	}
	hit := sd.cache.Access(addr, write)
	pCache += sd.params.AccessNJ

	bufHit := false
	if !hit {
		if idx := sd.findInflight(block); idx >= 0 {
			// §5.1: an in-flight prefetch holds the block; wait for it
			// rather than issuing a duplicate NVM request.
			bufHit = true
			e := sd.inflight[idx]
			if e.readyAt > now {
				stall += e.readyAt - now
			}
			sd.removeInflight(idx)
			sd.stats.InflightServed++
			sd.cache.NoteBufHit()
			stall++ // promotion into the cache
			pCache += sd.params.AccessNJ
			if sd.cache.Fill(addr, write) {
				_, wnj := s.nvm.WriteWriteback()
				pMemory += wnj
			}
		} else {
			rc, rnj := s.nvm.ReadDemand()
			stall += rc
			pMemory += rnj
			pCache += sd.params.AccessNJ
			if sd.cache.Fill(addr, write) {
				_, wnj := s.nvm.WriteWriteback()
				pMemory += wnj
			}
		}
	}

	if sd.pf != nil {
		if hit && sd.pfSkipHits {
			return stall, pCache, pMemory
		}
		if sd.agNJ != 0 {
			pCache += sd.agNJ
		}
		sd.cands = sd.pf.OnAccess(sd.cands[:0], prefetch.Event{
			PC:        pc,
			Addr:      addr,
			Block:     block,
			Miss:      !hit,
			BufHit:    bufHit,
			BlockSize: uint64(sd.params.BlockSize),
		})
		if len(sd.cands) != 0 {
			pMemory = s.fastIssue(sd, stall, now, pMemory)
		}
	}
	return stall, pCache, pMemory
}

// fastDrain is drainPrefetches without the profiler hooks; the caller has
// already applied the minReady watermark check.
func (s *System) fastDrain(sd *side, now uint64, pCache, pMemory float64) (float64, float64) {
	min := uint64(noReady)
	for i := 0; i < len(sd.inflight); {
		e := sd.inflight[i]
		if e.readyAt > now {
			if e.readyAt < min {
				min = e.readyAt
			}
			i++
			continue
		}
		sd.removeInflight(i)
		if sd.cache.Contains(e.block) {
			sd.stats.InflightRedundant++
			continue
		}
		pCache += sd.params.AccessNJ // array write on promote
		if sd.cache.FillPrefetched(e.block) {
			_, wnj := s.nvm.WriteWriteback()
			pMemory += wnj
		}
	}
	sd.minReady = min
	return pCache, pMemory
}

// fastIssue is issuePrefetches specialized for prefetch-to-cache with the
// tracer, profiler, and ReissueOnExit queue pruned.
func (s *System) fastIssue(sd *side, busyCycles, now uint64, pMemory float64) float64 {
	memSize := uint64(s.cfg.NVM.SizeBytes)
	kept := sd.cands[:0]
candidates:
	for _, c := range sd.cands {
		b := c &^ (uint64(sd.params.BlockSize) - 1) // cache.BlockAddr
		if b >= memSize {
			continue
		}
		if sd.cache.Contains(b) {
			continue
		}
		if sd.findInflight(b) >= 0 {
			continue
		}
		for _, k := range kept {
			if k == b {
				continue candidates
			}
		}
		kept = append(kept, b)
	}
	if len(kept) == 0 {
		return pMemory
	}
	requested := len(kept)
	if requested > s.cfg.InitialDegree {
		requested = s.cfg.InitialDegree
	}
	granted := len(kept)
	if granted > sd.ctl.Degree() {
		granted = sd.ctl.Degree()
	}
	issue := granted
	if free := s.cfg.PrefetchBufEntries - len(sd.inflight); issue > free {
		issue = free
	}
	for i := 0; i < issue; i++ {
		rc, rnj := s.nvm.ReadPrefetch()
		pMemory += rnj
		rdy := now + busyCycles + rc
		sd.inflight = append(sd.inflight, pfReq{block: kept[i], readyAt: rdy})
		if rdy < sd.minReady {
			sd.minReady = rdy
		}
	}
	sd.ctl.Record(requested, granted)
	sd.stats.PrefetchIssued += uint64(issue)
	if requested > granted {
		sd.stats.PrefetchThrottled += uint64(requested - granted)
	}
	return pMemory
}

// runFastNoPF is the specialized loop for the no-prefetch corner (both
// prefetcher kinds none): the access path collapses to cache probe + demand
// fill, and the IPEX observation disappears entirely because a controller
// is only ever enabled together with its prefetcher.
func (s *System) runFastNoPF(cur *workload.Cursor) (Result, error) {
	acc := cur.Stream().Accesses()
	i := cur.Pos()
	completed := true
	inst, data := &s.inst, &s.data
	maxCycles := s.maxCycles
	capMaxNJ := s.cap.CapacityNJ()
	backupCut := s.cap.BackupCutoffNJ()
	leakCache, leakMem, leakCompute := s.leakCacheNJ, s.leakMemNJ, s.leakComputeNJ
	iAccessNJ := inst.params.AccessNJ
	dAccessNJ := data.params.AccessNJ

	var h hotState
	h.load(s)

	for i < len(acc) {
		a := acc[i]
		i++
		h.insts++

		pC, pM := h.pCache, h.pMemory

		var istall uint64
		hit := inst.cache.Access(a.PC, false)
		pC += iAccessNJ
		if !hit {
			rc, rnj := s.nvm.ReadDemand()
			istall = rc
			pM += rnj
			pC += iAccessNJ
			if inst.cache.Fill(a.PC, false) {
				_, wnj := s.nvm.WriteWriteback()
				pM += wnj
			}
		}
		cycles := uint64(1) + istall
		inst.stats.StallCycles += istall
		pCompute := energy.ComputeNJPerInst

		if a.HasData {
			var dstall uint64
			dhit := data.cache.Access(a.DataAddr, a.Write)
			pC += dAccessNJ
			if !dhit {
				rc, rnj := s.nvm.ReadDemand()
				dstall = rc
				pM += rnj
				pC += dAccessNJ
				if data.cache.Fill(a.DataAddr, a.Write) {
					_, wnj := s.nvm.WriteWriteback()
					pM += wnj
				}
			}
			cycles += dstall
			data.stats.StallCycles += dstall
		}

		// advanceOn, inlined — see runFast for the bit-identity notes.
		t := h.now
		if t < h.sampleEnd && h.sampleEnd-t >= cycles {
			hv := power.EnergyNJ(h.samplePow, cycles)
			if hv > 0 {
				if room := capMaxNJ - h.e; hv > room {
					hv = room
				}
				h.e += hv
			}
		} else {
			remaining := cycles
			for remaining > 0 {
				if t >= h.sampleEnd {
					h.samplePow = s.trace.PowerAt(t)
					h.sampleEnd = (t/power.SampleIntervalCycles + 1) * power.SampleIntervalCycles
				}
				chunk := h.sampleEnd - t
				if chunk > remaining {
					chunk = remaining
				}
				hv := power.EnergyNJ(h.samplePow, chunk)
				if hv > 0 {
					if room := capMaxNJ - h.e; hv > room {
						hv = room
					}
					h.e += hv
				}
				t += chunk
				remaining -= chunk
			}
		}
		fc := float64(cycles)
		pC += leakCache * fc
		pM += leakMem * fc
		pCompute += leakCompute * fc
		tot := pC + pM + pCompute
		if tot > 0 {
			h.e -= tot
			if h.e < 0 {
				h.e = 0
			}
		}
		h.cCache += pC
		h.cMemory += pM
		h.cCompute += pCompute
		h.pCache, h.pMemory = 0, 0
		h.now += cycles
		h.onCycles += cycles

		if h.e < backupCut { // cap.BelowBackup()
			cur.SetPos(i)
			h.sync(s)
			s.outage()
			h.load(s)
			if s.ctx != nil && s.ctx.Err() != nil {
				completed = false
				break
			}
		}

		if h.now >= maxCycles {
			completed = false
			break
		}
	}
	cur.SetPos(i)
	h.sync(s)
	return s.result(completed), nil
}
