package nvp

import (
	"testing"

	"ipex/internal/prefetch"
)

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.ICacheSize != 2048 || c.DCacheSize != 2048 || c.Ways != 4 {
		t.Errorf("cache geometry: %+v", c)
	}
	if c.PrefetchBufEntries != 4 {
		t.Errorf("prefetch buffer entries = %d, want 4 (64B)", c.PrefetchBufEntries)
	}
	if c.IPrefetcher != prefetch.KindSequential || c.DPrefetcher != prefetch.KindStride {
		t.Errorf("default prefetchers: %s/%s", c.IPrefetcher, c.DPrefetcher)
	}
	if c.InitialDegree != 2 {
		t.Errorf("initial degree = %d, want 2", c.InitialDegree)
	}
	if c.NVM.SizeBytes != 16<<20 {
		t.Errorf("NVM size = %d, want 16MB", c.NVM.SizeBytes)
	}
	if c.Capacitor.CapacitanceFarads != 0.47e-6 {
		t.Errorf("capacitance = %v, want 0.47µF", c.Capacitor.CapacitanceFarads)
	}
	if len(c.IPEX.Thresholds) != 2 {
		t.Errorf("threshold count = %d, want 2", len(c.IPEX.Thresholds))
	}
	if c.IPEXInst || c.IPEXData {
		t.Error("IPEX must default off (it is the evaluated addition)")
	}
	if !c.DupSuppress {
		t.Error("§5.1 duplicate suppression must default on")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigVariantHelpers(t *testing.T) {
	c := DefaultConfig()

	both := c.WithIPEX()
	if !both.IPEXInst || !both.IPEXData || !both.IPEX.Enabled {
		t.Errorf("WithIPEX: %+v", both)
	}
	data := c.WithIPEXData()
	if data.IPEXInst || !data.IPEXData {
		t.Errorf("WithIPEXData: %+v", data)
	}
	none := c.WithoutPrefetch()
	if none.IPrefetcher != prefetch.KindNone || none.DPrefetcher != prefetch.KindNone {
		t.Errorf("WithoutPrefetch: %+v", none)
	}
	if none.IPEXInst || none.IPEXData {
		t.Error("WithoutPrefetch must detach IPEX")
	}
	// Helpers are value-semantics: the original is untouched.
	if c.IPEXInst || c.IPrefetcher == prefetch.KindNone {
		t.Error("helpers mutated the receiver")
	}
}

func TestIPEXThresholdsInsideLiveBand(t *testing.T) {
	c := DefaultConfig()
	for _, v := range c.IPEX.Thresholds {
		if v <= c.Capacitor.Vbackup || v >= c.Capacitor.Von {
			t.Errorf("threshold %v outside live band (%v, %v): it could never fire",
				v, c.Capacitor.Vbackup, c.Capacitor.Von)
		}
	}
	if c.IPEX.MinV != c.Capacitor.Vbackup || c.IPEX.MaxV != c.Capacitor.Von {
		t.Errorf("adaptation clamps (%v, %v) must track the live band",
			c.IPEX.MinV, c.IPEX.MaxV)
	}
}
