package nvp

import (
	"context"

	"ipex/internal/cache"
	"ipex/internal/capacitor"
	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/mem"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/workload"
)

// Arena is a reusable bundle of per-run simulator state. A fresh System
// allocates its caches, buffers, prefetcher tables, controllers, capacitor
// and NVM on every run; an Arena keeps them alive between runs and recycles
// each component whenever the next run's configuration matches, resetting it
// to its just-constructed state instead of reallocating. A warmed arena
// running a steady configuration performs zero heap allocations per run —
// the property TestZeroAllocRun pins.
//
// Reuse is graded per component, so a sweep that varies one knob (say, the
// prefetcher kind) still recycles everything the knob does not touch.
// Results are bit-identical to fresh construction: the golden suite and the
// arena determinism tests cross-check the two paths.
//
// An Arena serves one run at a time and is not safe for concurrent use;
// give each worker goroutine its own (see internal/harness.Pool).
type Arena struct {
	sys System

	capCfg capacitor.Config
	cap    *capacitor.Capacitor
	// cutoff is the cached cp.EnergyCutoffNJ method value. Binding a
	// method value allocates its receiver closure, so it is captured once
	// per capacitor here rather than once per run.
	cutoff func(v float64) float64

	nvm *mem.NVM

	instSlot sideSlot
	dataSlot sideSlot

	// cursor lets RunStream iterate a shared immutable workload.Stream
	// without allocating a per-run Cursor.
	cursor workload.Cursor
}

// sideSlot caches one cache side's recyclable components together with the
// configuration each was built from.
type sideSlot struct {
	params energy.CacheParams
	cache  *cache.Cache

	buf *cache.PrefetchBuffer

	pfKind prefetch.Kind
	pf     prefetch.Prefetcher

	ctlCfg core.Config
	ctl    *core.Controller
}

// NewArena returns an empty arena; its first run populates it.
func NewArena() *Arena { return &Arena{} }

// Run simulates wl over trace exactly like the package-level Run, recycling
// this arena's components where the configuration allows.
func (a *Arena) Run(wl workload.Generator, trace *power.Trace, cfg Config) (Result, error) {
	return a.RunContext(context.Background(), wl, trace, cfg)
}

// RunContext is Run with cooperative cancellation, mirroring the
// package-level RunContext.
func (a *Arena) RunContext(ctx context.Context, wl workload.Generator, trace *power.Trace, cfg Config) (Result, error) {
	s, err := newSystem(a, wl, trace, cfg)
	if err != nil {
		return Result{}, err
	}
	s.ctx = ctx
	return s.run()
}

// RunStream runs a shared immutable trace stream (see workload.Store.Stream)
// through the arena's internal cursor, avoiding the per-run Generator
// allocation entirely.
func (a *Arena) RunStream(st *workload.Stream, trace *power.Trace, cfg Config) (Result, error) {
	return a.RunStreamContext(context.Background(), st, trace, cfg)
}

// RunStreamContext is RunStream with cooperative cancellation.
func (a *Arena) RunStreamContext(ctx context.Context, st *workload.Stream, trace *power.Trace, cfg Config) (Result, error) {
	a.cursor.Bind(st)
	return a.RunContext(ctx, &a.cursor, trace, cfg)
}

// ipexCfgEqual compares controller configurations field by field. It exists
// instead of reflect.DeepEqual because the assembly path must not allocate,
// and DeepEqual boxes its operands.
func ipexCfgEqual(a, b core.Config) bool {
	if a.Enabled != b.Enabled ||
		a.InitialDegree != b.InitialDegree ||
		a.MaxDegree != b.MaxDegree ||
		a.StepV != b.StepV ||
		a.ThrottleRateTrigger != b.ThrottleRateTrigger ||
		a.Adaptive != b.Adaptive ||
		a.LinearAdjust != b.LinearAdjust ||
		a.MinV != b.MinV ||
		a.MaxV != b.MaxV ||
		len(a.Thresholds) != len(b.Thresholds) {
		return false
	}
	for i := range a.Thresholds {
		if a.Thresholds[i] != b.Thresholds[i] {
			return false
		}
	}
	return true
}
