package nvp

import (
	"bufio"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ipex/internal/trace"
	"ipex/internal/workload"
)

// tracedRun executes one run with a tracer (and registry) attached and
// returns the result, the parsed event stream, and the registry.
func tracedRun(t *testing.T, app string, scale float64, mut func(*Config)) (Result, []trace.Event, *trace.Registry) {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	var sb strings.Builder
	cfg.Tracer = trace.NewJSONL(&sb)
	cfg.Metrics = trace.NewRegistry()
	r, err := Run(workload.MustNew(app, scale), testTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	var evs []trace.Event
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return r, evs, cfg.Metrics
}

func countKind(evs []trace.Event, k trace.Kind, detail string) uint64 {
	var n uint64
	for _, e := range evs {
		if e.Kind == k && (detail == "" || e.Detail == detail) {
			n++
		}
	}
	return n
}

// TestTracingDoesNotPerturbResult is the zero-interference contract: the
// same run with and without a tracer must produce a bit-identical Result.
func TestTracingDoesNotPerturbResult(t *testing.T) {
	plain := runApp(t, "fft", 0.1, func(c *Config) { *c = c.WithIPEX() })
	traced, _, _ := tracedRun(t, "fft", 0.1, func(c *Config) { *c = c.WithIPEX() })
	if !reflect.DeepEqual(plain, traced) {
		t.Errorf("tracing changed the result:\nplain:  %+v\ntraced: %+v", plain, traced)
	}
}

// TestTraceWipeEventsMatchAggregates pins the stream's decomposition of the
// headline statistic: summing pf_wipe events (per location, and per power
// cycle) must reproduce the end-of-run aggregates exactly.
func TestTraceWipeEventsMatchAggregates(t *testing.T) {
	r, evs, _ := tracedRun(t, "gsme", 0.1, nil)
	if r.Outages == 0 {
		t.Fatal("run saw no outages; the wipe paths were never exercised")
	}

	wantCache := r.Inst.Cache.PrefetchedWiped + r.Data.Cache.PrefetchedWiped
	if got := countKind(evs, trace.KindPrefetchWipe, "cache"); got != wantCache {
		t.Errorf("pf_wipe(cache) events = %d, want PrefetchedWiped sum %d", got, wantCache)
	}
	wantBuf := r.Inst.Buffer.WipedUnused + r.Data.Buffer.WipedUnused
	if got := countKind(evs, trace.KindPrefetchWipe, "buffer"); got != wantBuf {
		t.Errorf("pf_wipe(buffer) events = %d, want WipedUnused sum %d", got, wantBuf)
	}
	wantInflight := r.Inst.InflightWiped + r.Data.InflightWiped
	if got := countKind(evs, trace.KindPrefetchWipe, "inflight"); got != wantInflight {
		t.Errorf("pf_wipe(inflight) events = %d, want InflightWiped sum %d", got, wantInflight)
	}

	// Per-power-cycle decomposition: wipes grouped by pcycle stamp sum to
	// the same aggregate, and no wipe is stamped past the last outage.
	perCycle := map[uint64]uint64{}
	for _, e := range evs {
		if e.Kind == trace.KindPrefetchWipe && e.Detail == "cache" {
			perCycle[e.PowerCycle]++
		}
	}
	var sum uint64
	for pc, n := range perCycle {
		if pc >= r.Outages {
			t.Errorf("wipe stamped in power cycle %d, but only %d outages happened", pc, r.Outages)
		}
		sum += n
	}
	if sum != wantCache {
		t.Errorf("per-cycle wipe counts sum to %d, want %d", sum, wantCache)
	}
}

// TestTraceCycleStatsMatchAggregates pins the per-cycle demand-stream
// events: summing cycle_stats deltas per side must reproduce the end-of-run
// cache statistics exactly, and every power cycle (including the final
// partial one) must carry exactly one event per side.
func TestTraceCycleStatsMatchAggregates(t *testing.T) {
	r, evs, _ := tracedRun(t, "gsme", 0.1, nil)
	if r.Outages == 0 {
		t.Fatal("run saw no outages; per-cycle emission was never exercised")
	}
	var n, iacc, imiss, dacc, dmiss uint64
	for _, e := range evs {
		if e.Kind != trace.KindCycleStats {
			continue
		}
		n++
		switch e.Side {
		case "icache":
			iacc += e.Accesses
			imiss += e.Misses
		case "dcache":
			dacc += e.Accesses
			dmiss += e.Misses
		default:
			t.Fatalf("cycle_stats with unknown side: %+v", e)
		}
	}
	if want := 2 * (r.Outages + 1); n != want {
		t.Errorf("cycle_stats events = %d, want 2 per power cycle (%d)", n, want)
	}
	if iacc != r.Inst.Cache.Accesses || imiss != r.Inst.Cache.Misses {
		t.Errorf("icache deltas sum to %d/%d, want %d/%d",
			iacc, imiss, r.Inst.Cache.Accesses, r.Inst.Cache.Misses)
	}
	if dacc != r.Data.Cache.Accesses || dmiss != r.Data.Cache.Misses {
		t.Errorf("dcache deltas sum to %d/%d, want %d/%d",
			dacc, dmiss, r.Data.Cache.Accesses, r.Data.Cache.Misses)
	}
}

// TestTraceStreamStructure checks the bracketing and boundary events.
func TestTraceStreamStructure(t *testing.T) {
	r, evs, _ := tracedRun(t, "fft", 0.1, nil)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	if evs[0].Kind != trace.KindRunStart || evs[0].Run != "fft" {
		t.Errorf("stream does not open with run_start(fft): %+v", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Kind != trace.KindRunEnd || uint64(last.N) != r.Insts || last.Detail != "completed" {
		t.Errorf("stream does not close with run_end(insts=%d, completed): %+v", r.Insts, last)
	}
	if got := countKind(evs, trace.KindCycleEnd, ""); got != r.Outages {
		t.Errorf("cycle_end events = %d, want one per outage (%d)", got, r.Outages)
	}
	if got := countKind(evs, trace.KindCycleStart, ""); got != r.Outages+1 {
		t.Errorf("cycle_start events = %d, want outages+1 = %d", got, r.Outages+1)
	}
	if got := countKind(evs, trace.KindCheckpoint, ""); got != r.Outages {
		t.Errorf("checkpoint events = %d, want one per outage (%d)", got, r.Outages)
	}
	wantIssued := r.Inst.PrefetchIssued + r.Data.PrefetchIssued
	if got := countKind(evs, trace.KindPrefetchIssue, ""); got != wantIssued {
		t.Errorf("pf_issue events = %d, want PrefetchIssued sum %d", got, wantIssued)
	}
	// Cycle and power-cycle stamps never move backwards.
	var lastCycle, lastPC uint64
	for i, e := range evs {
		if e.Cycle < lastCycle || e.PowerCycle < lastPC {
			t.Fatalf("event %d moved backwards in time: %+v after cycle=%d pcycle=%d",
				i, e, lastCycle, lastPC)
		}
		lastCycle, lastPC = e.Cycle, e.PowerCycle
	}
}

// TestMetricsMatchResult pins the registry snapshot against the Result.
func TestMetricsMatchResult(t *testing.T) {
	r, _, reg := tracedRun(t, "gsme", 0.1, func(c *Config) { *c = c.WithIPEX() })
	checks := []struct {
		name string
		want uint64
	}{
		{"run.insts", r.Insts},
		{"run.outages", r.Outages},
		{"run.cycles", r.Cycles},
		{"icache.pf_issued", r.Inst.PrefetchIssued},
		{"dcache.pf_issued", r.Data.PrefetchIssued},
		{"icache.pf_throttled", r.Inst.PrefetchThrottled},
		{"dcache.pf_throttled", r.Data.PrefetchThrottled},
		{"icache.pf_wiped_cache", r.Inst.Cache.PrefetchedWiped},
		{"dcache.pf_wiped_cache", r.Data.Cache.PrefetchedWiped},
	}
	for _, c := range checks {
		if got := reg.Counter(c.name).Load(); got != c.want {
			t.Errorf("metric %s = %d, want %d", c.name, got, c.want)
		}
	}
	if got := reg.Gauge("energy.total_nj").Load(); got != r.Energy.Total() {
		t.Errorf("metric energy.total_nj = %g, want %g", got, r.Energy.Total())
	}
	// The prefetcher instrumentation wrapper must have observed accesses.
	if got := reg.Counter("dcache.stride.observes").Load(); got == 0 {
		t.Error("dcache.stride.observes = 0; Instrument wrapper not installed")
	}
}

// TestThrottledQueueDedupAndCap is the regression test for the ReissueOnExit
// FIFO: one power cycle must not enqueue the same block twice, and the queue
// must slide (oldest out) at throttledQCap.
func TestThrottledQueueDedupAndCap(t *testing.T) {
	cfg := DefaultConfig().WithIPEX()
	cfg.ReissueOnExit = true
	s, err := NewSystem(workload.MustNew("fft", 0.05), testTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sd := &s.data
	// Prime the controller (the first sample only records position), then
	// drain the observation below every threshold: two downward crossings
	// halve the degree 2 -> 1 -> 0, so every candidate throttles.
	sd.ctl.ObserveEnergy(s.cap.EnergyNJ())
	sd.ctl.ObserveEnergy(0)
	if sd.ctl.Degree() != 0 {
		t.Fatalf("degree = %d after observing zero energy, want 0", sd.ctl.Degree())
	}

	issue := func(block uint64) {
		sd.cands = append(sd.cands[:0], block)
		s.issuePrefetches(sd, 0)
	}

	issue(0x1000)
	issue(0x1000) // same block throttled again in the same power cycle
	if len(sd.throttledQ) != 1 {
		t.Fatalf("duplicate enqueue: throttledQ = %v", sd.throttledQ)
	}

	// Fill past the cap with distinct blocks; the FIFO slides.
	for i := 0; i < throttledQCap+4; i++ {
		issue(0x2000 + uint64(i)*64)
	}
	if len(sd.throttledQ) != throttledQCap {
		t.Fatalf("throttledQ length = %d, want cap %d", len(sd.throttledQ), throttledQCap)
	}
	// The oldest entries (0x1000 and the first distinct blocks) slid out;
	// the newest survives at the tail.
	for _, b := range sd.throttledQ {
		if b == 0x1000 {
			t.Error("oldest block still queued after cap overflow")
		}
	}
	if tail := sd.throttledQ[throttledQCap-1]; tail != 0x2000+uint64(throttledQCap+3)*64 {
		t.Errorf("tail = %#x, want the newest throttled block", tail)
	}

	// An outage clears the queue: throttled work does not survive a reboot.
	s.outage()
	if len(sd.throttledQ) != 0 {
		t.Errorf("throttledQ not cleared by outage: %v", sd.throttledQ)
	}
}
