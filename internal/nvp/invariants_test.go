package nvp

import (
	"testing"
	"testing/quick"

	"ipex/internal/power"
	"ipex/internal/workload"
)

// Property-based integration test: for arbitrary (small) configurations the
// simulator must uphold its accounting invariants.
func TestSystemInvariantsQuick(t *testing.T) {
	apps := workload.Names()
	trace := power.Generate(power.RFOffice, 20000, 3)

	f := func(appIdx, cacheSel, waySel, bufSel, degSel, extSel uint8, ipexOn, ideal bool) bool {
		cfg := DefaultConfig()
		cfg.ICacheSize = []int{512, 1024, 2048}[int(cacheSel)%3]
		cfg.DCacheSize = cfg.ICacheSize
		cfg.Ways = []int{1, 2, 4}[int(waySel)%3]
		cfg.PrefetchBufEntries = []int{1, 2, 4, 8}[int(bufSel)%4]
		cfg.InitialDegree = int(degSel)%4 + 1
		cfg.Ideal = ideal
		cfg.PrefetchToCache = extSel&1 == 0
		cfg.ReissueOnExit = extSel&2 != 0
		cfg.GateAddressGen = extSel&4 != 0
		cfg.DupSuppress = extSel&8 == 0
		cfg.RecordCycles = extSel&16 != 0
		if extSel&32 != 0 {
			cfg.IPrefetcher = "markov"
			cfg.DPrefetcher = "ampm"
		}
		if ipexOn {
			cfg = cfg.WithIPEX()
		}
		app := apps[int(appIdx)%len(apps)]
		wl := workload.MustNew(app, 0.02)
		r, err := Run(wl, trace, cfg)
		if err != nil {
			t.Logf("%s: %v", app, err)
			return false
		}
		// Invariant 1: wall time splits exactly into on and off.
		if r.Cycles != r.OnCycles+r.OffCycles {
			t.Logf("%s: cycle split broken", app)
			return false
		}
		// Invariant 2: a completed run commits every instruction.
		if r.Completed && r.Insts != uint64(wl.Len()) {
			t.Logf("%s: lost instructions", app)
			return false
		}
		// Invariant 3: every issued prefetch is accounted as an NVM read
		// and is eventually classified.
		if r.NVM.PrefetchReads != r.Inst.PrefetchIssued+r.Data.PrefetchIssued {
			t.Logf("%s: prefetch reads mismatch", app)
			return false
		}
		for _, sd := range []SideStats{r.Inst, r.Data} {
			if sd.Buffer.UsefulEvicted+sd.Buffer.UselessEvicted != sd.Buffer.Inserted {
				t.Logf("%s: buffer classification mismatch", app)
				return false
			}
			if sd.Cache.BufHits > sd.Cache.Misses {
				t.Logf("%s: more buffer hits than misses", app)
				return false
			}
			if sd.Cache.Misses > sd.Cache.Accesses {
				t.Logf("%s: more misses than accesses", app)
				return false
			}
		}
		// Invariant 4: energy buckets are non-negative; total positive.
		e := r.Energy
		if e.Cache < 0 || e.Memory < 0 || e.Compute < 0 || e.BkRst < 0 || e.Total() <= 0 {
			t.Logf("%s: bad energy %+v", app, e)
			return false
		}
		// Invariant 5: ideal mode never spends Bk+Rst energy.
		if ideal && e.BkRst != 0 {
			t.Logf("%s: ideal spent BkRst", app)
			return false
		}
		// Invariant 6: instruction side is read-only — no checkpoint
		// traffic can exceed what the data cache could possibly hold plus
		// registers, per outage.
		if !ideal && r.Outages > 0 {
			maxDirty := uint64(cfg.DCacheSize / 16)
			if r.NVM.CheckpointWrites > r.Outages*maxDirty {
				t.Logf("%s: checkpoint traffic exceeds dirty capacity", app)
				return false
			}
		}
		// Invariant 7: throttling only happens with IPEX attached.
		if !ipexOn && (r.Inst.PrefetchThrottled != 0 || r.Data.PrefetchThrottled != 0) {
			t.Logf("%s: baseline throttled", app)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The same configuration must yield bit-identical results regardless of how
// many other simulations ran before it (no hidden global state).
func TestNoHiddenGlobalState(t *testing.T) {
	trace := power.Generate(power.Solar, 20000, 5)
	run := func() Result {
		r, err := Run(workload.MustNew("susanc", 0.05), trace, DefaultConfig().WithIPEX())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	first := run()
	// Interleave unrelated runs.
	for _, app := range []string{"fft", "qsort"} {
		if _, err := Run(workload.MustNew(app, 0.02), trace, DefaultConfig()); err != nil {
			t.Fatal(err)
		}
	}
	second := run()
	if first.Cycles != second.Cycles || first.Energy != second.Energy ||
		first.Inst != second.Inst || first.Data != second.Data ||
		first.NVM != second.NVM || first.Outages != second.Outages {
		t.Error("results depend on unrelated prior runs")
	}
}
