package nvp

import (
	"ipex/internal/profile"
)

// profiler is the in-simulator attribution engine (Config.Profile): it
// charges every simulated cycle and every pending-energy charge to a
// profile category as the simulator spends it, closes one CycleRecord per
// power cycle, and keeps a chronological capacitor-drain ledger that is
// bit-identical to the paranoid shadow ledger by construction — both
// accumulate the identical applied-drain value sequence inside capConsume.
//
// Like the tracer, fault runtime, and paranoid checker, a nil *profiler
// means profiling is off and every integration site costs one nil compare;
// the profiler itself only observes (its wipe-sets are private bookkeeping),
// so enabling it never changes a Result.
type profiler struct {
	rep profile.Report   // aggregate under construction (PowerCycles grows per flush)
	cyc profile.CycleRecord // current power cycle's attribution

	// recStart is the absolute cycle the current record began at.
	recStart uint64
	// prevOut snapshots the prefetch-outcome counters at the last record
	// boundary so each record carries its own delta.
	prevOut profile.PrefetchOutcomes

	// accCat is the energy category of the demand access currently being
	// simulated: EIMiss/EDMiss by side, upgraded to EBackfill when the
	// access's NVM demand read re-fetches a block a power failure wiped.
	// Its miss-path charges and the access's stall cycles follow it.
	accCat profile.EnergyCat

	// wipe holds, per side (0=inst, 1=data), the blocks that were resident
	// in the cache when the last outage(s) wiped it and have not come back
	// since: the next demand NVM read of such a block is re-execution
	// backfill. Blocks leave the set when anything re-fills them — the
	// restore walk, a prefetch, or the classified demand read itself.
	wipe    [2]map[uint64]struct{}
	scratch []uint64 // reused resident-block buffer for captureWipe
}

func newProfiler() *profiler {
	return &profiler{
		wipe: [2]map[uint64]struct{}{make(map[uint64]struct{}), make(map[uint64]struct{})},
	}
}

// sideIdx maps a side to its wipe-set index.
func (s *System) sideIdx(sd *side) int {
	if sd == &s.inst {
		return 0
	}
	return 1
}

// energy charges nj to an energy category of the current record.
func (p *profiler) energy(cat profile.EnergyCat, nj float64) {
	p.cyc.EnergyNJ[cat] += nj
}

// noteDrain records one applied capacitor drain (the amount Consume
// actually removed) in the per-cycle and whole-run ledgers. Called from
// capConsume with exactly the value the paranoid shadow ledger adds, so the
// two stay bitwise equal at every boundary.
func (p *profiler) noteDrain(applied float64) {
	p.cyc.LedgerNJ += applied
	p.rep.LedgerNJ += applied
}

// beginAccess opens a demand access: the default miss category follows the
// side, and the base cache-array probe is execution cost (ECompute) — every
// access pays it, hit or miss.
func (p *profiler) beginAccess(s *System, sd *side) {
	if sd == &s.inst {
		p.accCat = profile.EIMiss
	} else {
		p.accCat = profile.EDMiss
	}
	p.cyc.EnergyNJ[profile.ECompute] += sd.params.AccessNJ
}

// accessNJ charges miss-path energy (promotion probes, fill writebacks) to
// the current access's category.
func (p *profiler) accessNJ(nj float64) {
	p.cyc.EnergyNJ[p.accCat] += nj
}

// noteDemandRead classifies the access's NVM demand read: re-fetching a
// block the last outage wiped is backfill, anything else stays a plain
// miss. The read energy (plus the fill probe) follows the classification.
func (p *profiler) noteDemandRead(s *System, sd *side, block uint64, nj float64) {
	w := p.wipe[s.sideIdx(sd)]
	if _, ok := w[block]; ok {
		delete(w, block)
		p.accCat = profile.EBackfill
	}
	p.cyc.EnergyNJ[p.accCat] += nj
}

// unwipe removes a block from a side's backfill candidates (it came back by
// some non-demand path: restore walk or a completed prefetch).
func (p *profiler) unwipe(s *System, sd *side, block uint64) {
	delete(p.wipe[s.sideIdx(sd)], block)
}

// endAccess attributes the access's stall cycles to the cycle category its
// energy classification selected.
func (p *profiler) endAccess(stall uint64) {
	if stall == 0 {
		return
	}
	switch p.accCat {
	case profile.EIMiss:
		p.cyc.Cycles[profile.CycIMissStall] += stall
	case profile.EDMiss:
		p.cyc.Cycles[profile.CycDMissStall] += stall
	default:
		p.cyc.Cycles[profile.CycBackfill] += stall
	}
}

// captureWipe snapshots both caches' resident blocks right before a power
// failure wipes them; those blocks become backfill candidates.
func (p *profiler) captureWipe(s *System) {
	for i, sd := range [2]*side{&s.inst, &s.data} {
		p.scratch = sd.cache.AppendResidentBlocks(p.scratch[:0])
		w := p.wipe[i]
		for _, b := range p.scratch {
			w[b] = struct{}{}
		}
	}
}

// profOutcomes totals the prefetch-outcome counters as they stand now, in a
// form valid for both prefetch organizations (the counters of the unused
// organization stay zero). Useless supersets wiped in both the cache and
// buffer stats, so "inaccurate" — dead-useless for any reason other than an
// outage — is the difference, plus late (redundant) completions.
func profOutcomes(s *System) profile.PrefetchOutcomes {
	var o profile.PrefetchOutcomes
	for _, sd := range [2]*side{&s.inst, &s.data} {
		cs, bs := sd.cache.Stats(), sd.buf.Stats()
		o.Issued += sd.stats.PrefetchIssued
		o.Useful += cs.PrefetchedUseful + sd.stats.InflightServed + bs.UsefulEvicted
		o.Wiped += cs.PrefetchedWiped + bs.WipedUnused + sd.stats.InflightWiped
		o.Inaccurate += cs.PrefetchedUseless - cs.PrefetchedWiped +
			bs.UselessEvicted - bs.WipedUnused + sd.stats.InflightRedundant
	}
	return o
}

// flushRecord closes the current power-cycle record. Called at the same
// boundary the paranoid checker closes its per-cycle ledger (after the
// successor's restore walk is charged) and once more for the final partial
// cycle, so record ledgers and shadow-ledger intervals coincide exactly.
func (p *profiler) flushRecord(s *System) {
	p.cyc.Index = uint64(len(p.rep.PowerCycles))
	p.cyc.StartCycle = p.recStart
	now := profOutcomes(s)
	p.cyc.Prefetch = now.Sub(p.prevOut)
	p.prevOut = now
	for i := range p.cyc.Cycles {
		p.rep.Cycles[i] += p.cyc.Cycles[i]
	}
	for i := range p.cyc.EnergyNJ {
		p.rep.EnergyNJ[i] += p.cyc.EnergyNJ[i]
	}
	p.rep.PowerCycles = append(p.rep.PowerCycles, p.cyc)
	p.recStart = s.now
	p.cyc = profile.CycleRecord{}
}

// finish flushes the final partial cycle and returns the completed report.
// Must run after the end-of-run stat drains so the aggregate outcome split
// matches the Result's counters.
func (p *profiler) finish(s *System) *profile.Report {
	p.flushRecord(s)
	rep := p.rep
	rep.Insts = s.insts
	rep.TotalCycles = s.now
	rep.Prefetch = p.prevOut
	rep.PrefetchReadNJ = s.cfg.NVM.ReadNJ
	return &rep
}
