package nvp

import (
	"ipex/internal/cache"
	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/fault"
	"ipex/internal/mem"
	"ipex/internal/profile"
)

// SideStats groups the per-cache-side (instruction or data) statistics.
type SideStats struct {
	Cache  cache.Stats
	Buffer cache.PBStats
	// ToCache records which prefetch organization produced these numbers
	// (Config.PrefetchToCache); it selects how Accuracy/Coverage are
	// derived.
	ToCache bool
	// Prefetch issue accounting (mirrors the IPEX R registers summed over
	// the whole run; for a conventional prefetcher Throttled is 0).
	PrefetchIssued    uint64
	PrefetchThrottled uint64
	// InflightServed counts demand misses served by waiting on an
	// in-flight prefetch of the same block (§5.1 suppression).
	InflightServed uint64
	// InflightWiped counts in-flight prefetches lost to an outage before
	// completion.
	InflightWiped uint64
	// InflightRedundant counts prefetches that completed after a demand
	// read had already fetched the block (late prefetches whose energy
	// was wasted; §5.1's DupSuppress=false ablation inflates this).
	InflightRedundant uint64
	// PrefetchReissued counts prefetches replayed by the ReissueOnExit
	// extension (subset of PrefetchIssued).
	PrefetchReissued uint64
	// AddressGenGated counts prefetcher triggers suppressed entirely by
	// the §5.2 address-generation gate (degree 0 in energy-saving mode).
	AddressGenGated uint64
	// StallCycles is pipeline stall time attributable to this cache's
	// misses (including waits on in-flight prefetches).
	StallCycles uint64
	// IPEX carries the controller statistics when one was attached.
	IPEX core.Stats
}

// usefulPrefetches returns prefetched blocks that served a demand access
// before being lost.
func (s SideStats) usefulPrefetches() uint64 {
	if s.ToCache {
		return s.Cache.PrefetchedUseful + s.InflightServed
	}
	return s.Buffer.UsefulEvicted
}

// Accuracy returns the fraction of issued prefetches that received a demand
// hit before being lost (the paper's Table 2 metric).
func (s SideStats) Accuracy() float64 {
	if s.PrefetchIssued == 0 {
		return 0
	}
	return float64(s.usefulPrefetches()) / float64(s.PrefetchIssued)
}

// Coverage returns the fraction of would-be misses served by prefetched
// blocks (Table 2): in prefetch-to-cache mode a timely prefetch turns the
// miss into a hit, so the denominator reconstructs the unprefetched miss
// count.
func (s SideStats) Coverage() float64 {
	if s.ToCache {
		den := s.Cache.PrefetchedUseful + s.Cache.Misses
		if den == 0 {
			return 0
		}
		return float64(s.usefulPrefetches()) / float64(den)
	}
	if s.Cache.Misses == 0 {
		return 0
	}
	return float64(s.Cache.BufHits) / float64(s.Cache.Misses)
}

// WipedUnused returns prefetched blocks lost to power failures before their
// first use — the paper's motivating waste.
func (s SideStats) WipedUnused() uint64 {
	if s.ToCache {
		return s.Cache.PrefetchedWiped + s.InflightWiped
	}
	return s.Buffer.WipedUnused
}

// PowerCycleStats describes one power cycle (reboot to outage) when
// Config.RecordCycles is set.
type PowerCycleStats struct {
	// StartCycle is the absolute cycle number at which the power cycle
	// began (0 for the first).
	StartCycle uint64
	// OnCycles and Insts are the powered duration and committed
	// instructions of this cycle.
	OnCycles uint64
	Insts    uint64
	// PrefetchIssued/PrefetchThrottled are this cycle's prefetch
	// operations (both cache sides).
	PrefetchIssued    uint64
	PrefetchThrottled uint64
	// WipedUnused counts prefetched blocks this cycle's terminating
	// outage destroyed before use.
	WipedUnused uint64
	// DirtyAtBackup is the number of dirty DCache blocks the JIT
	// checkpoint had to persist.
	DirtyAtBackup int
}

// Result is the outcome of one simulation run.
type Result struct {
	App   string
	Trace string

	// Completed is false when the run hit the MaxCycles budget before the
	// workload finished; timing results of incomplete runs are not
	// comparable.
	Completed bool

	// Insts is the number of committed instructions.
	Insts uint64
	// Cycles is total wall-clock time in cycles: OnCycles (powered
	// execution, incl. backup/restore) + OffCycles (dead, recharging).
	Cycles    uint64
	OnCycles  uint64
	OffCycles uint64

	// Outages counts power failures survived.
	Outages uint64

	// Energy is the consumed-energy breakdown (Fig. 14's buckets).
	Energy energy.Breakdown

	Inst SideStats
	Data SideStats

	// NVM is the main-memory traffic seen by this run.
	NVM mem.Stats

	// GuardViolations counts outages whose JIT checkpoint needed more
	// energy than the Vbackup→Voff guard band provides — a sign the
	// voltage monitor's backup threshold is set too low for the workload's
	// dirty-data volume. The simulator still completes the backup (the
	// paper assumes a correctly provisioned guard band), but the count
	// surfaces the misconfiguration.
	GuardViolations uint64

	// PowerCycleLog holds per-cycle statistics when Config.RecordCycles
	// was set (the final, interrupted cycle is included without a
	// terminating outage).
	PowerCycleLog []PowerCycleStats

	// Faults counts the injected faults when Config.Faults was active;
	// nil on fault-free runs (so fault-free Results marshal exactly as
	// before the fault layer existed).
	Faults *fault.Stats `json:",omitempty"`

	// Invariants is the paranoid checker's report when Config.Paranoid was
	// set; nil otherwise. A non-nil report with violations means the
	// simulator caught itself breaking an accounting invariant — treat the
	// run's numbers as suspect.
	Invariants *fault.Report `json:",omitempty"`

	// Profile is the cycle/energy attribution report when Config.Profile
	// was set; nil otherwise (so unprofiled Results marshal exactly as
	// before the profiler existed).
	Profile *profile.Report `json:",omitempty"`
}

// Seconds returns the wall-clock run time in seconds.
func (r Result) Seconds() float64 {
	return float64(r.Cycles) * energy.CycleSeconds
}

// StallFraction returns (istall+dstall)/OnCycles.
func (r Result) StallFraction() float64 {
	if r.OnCycles == 0 {
		return 0
	}
	return float64(r.Inst.StallCycles+r.Data.StallCycles) / float64(r.OnCycles)
}

// PrefetchesIssued returns total prefetch operations issued on both sides.
func (r Result) PrefetchesIssued() uint64 {
	return r.Inst.PrefetchIssued + r.Data.PrefetchIssued
}
