package nvp

import (
	"math"

	"ipex/internal/fault"
)

// paranoid is the runtime invariant checker (Config.Paranoid): it shadows
// the capacitor's energy ledger through the capHarvest/capConsume wrappers,
// closes the energy-conservation balance at every power-cycle boundary,
// watches for stalled forward progress, and replays the offline accounting
// invariants (internal/nvp/invariants_test.go) at end of run. It observes
// only — a violation lands in Result.Invariants, never changes behaviour.
type paranoid struct {
	rep fault.Report

	// Shadow ledger for the current power cycle: cycleStartE is the stored
	// energy when the cycle began; storedNJ/drainedNJ accumulate what
	// Harvest actually banked and Consume actually drained (post clamp and
	// floor), so the balance below is an identity, not an approximation.
	cycleStartE float64
	storedNJ    float64
	drainedNJ   float64
	// totalDrainedNJ is the whole-run drain ledger (never reset): the same
	// chronological applied-drain sequence the attribution profiler sums,
	// so the two totals are comparable bit-for-bit, not within a tolerance.
	totalDrainedNJ float64

	// zeroStreak counts consecutive power cycles that committed zero
	// instructions — the signature of a system looping boot → checkpoint
	// without ever making progress.
	zeroStreak int
}

// zeroProgressLimit is how many consecutive zero-instruction power cycles
// the checker tolerates before flagging stalled forward progress. Weak
// traces legitimately produce short zero-progress bursts (a reboot into an
// immediate re-outage); a run of this many in a row means the configuration
// can never finish and only the MaxCycles budget will stop it.
const zeroProgressLimit = 50

// balanceTol returns the energy-balance tolerance for the magnitudes
// involved: pure float64 summation reassociation, so a relative epsilon on
// the flows plus an absolute floor.
func balanceTol(a, b, c, d float64) float64 {
	m := math.Abs(a) + math.Abs(b) + math.Abs(c) + math.Abs(d)
	return 1e-9*m + 1e-9
}

// capHarvest is the capacitor Harvest wrapper: identical charging, plus the
// shadow ledger when paranoid mode is on.
func (s *System) capHarvest(nj float64) {
	stored := s.cap.Harvest(nj)
	if s.par != nil {
		s.par.storedNJ += stored
	}
}

// capConsume is the capacitor Consume wrapper: identical draining, plus the
// shadow ledger (the applied amount — Consume floors at zero charge) and
// the profiler's drain ledger. Both observers add the identical applied
// value at the identical point, which is what makes their ledgers bitwise
// comparable rather than merely close.
func (s *System) capConsume(nj float64) {
	if (s.par != nil || s.prof != nil) && nj > 0 {
		applied := nj
		if e := s.cap.EnergyNJ(); applied > e {
			applied = e
		}
		if s.par != nil {
			s.par.drainedNJ += applied
			s.par.totalDrainedNJ += applied
		}
		if s.prof != nil {
			s.prof.noteDrain(applied)
		}
	}
	s.cap.Consume(nj)
}

// endCycle closes the shadow ledger at a power-cycle boundary (the end of
// outage(), with the next cycle's restore already charged) and runs the
// per-cycle checks. insts is the instruction count the finished cycle
// committed.
func (p *paranoid) endCycle(s *System, insts uint64) {
	p.rep.Checks++
	now := s.cap.EnergyNJ()
	want := p.cycleStartE + p.storedNJ - p.drainedNJ
	if diff := math.Abs(now - want); diff > balanceTol(p.cycleStartE, p.storedNJ, p.drainedNJ, now) {
		p.rep.Add("energy_balance", s.now, s.pcIdx,
			"stored energy %.6f nJ, ledger expects %.6f (start %.6f + harvested %.6f - drained %.6f); off by %.3g",
			now, want, p.cycleStartE, p.storedNJ, p.drainedNJ, diff)
	}
	if s.prof != nil {
		// The profiler's open record spans exactly this shadow-ledger
		// interval and both summed the identical drain sequence, so the
		// comparison is bitwise — any difference means a charge was
		// attributed outside the capConsume path.
		p.rep.Checks++
		if s.prof.cyc.LedgerNJ != p.drainedNJ {
			p.rep.Add("profile_cycle_ledger", s.now, s.pcIdx,
				"profiler cycle ledger %.9f nJ != shadow drain ledger %.9f nJ",
				s.prof.cyc.LedgerNJ, p.drainedNJ)
		}
	}
	p.cycleStartE = now
	p.storedNJ, p.drainedNJ = 0, 0

	p.rep.Checks++
	if insts == 0 {
		p.zeroStreak++
		if p.zeroStreak == zeroProgressLimit {
			p.rep.Add("forward_progress", s.now, s.pcIdx,
				"%d consecutive power cycles committed zero instructions; the run cannot finish",
				p.zeroStreak)
		}
	} else {
		p.zeroStreak = 0
	}
}

// finalChecks replays the offline accounting invariants on the finished
// run's counters.
func (p *paranoid) finalChecks(s *System, r *Result) {
	check := func(ok bool, name, format string, args ...any) {
		p.rep.Checks++
		if !ok {
			p.rep.Add(name, s.now, s.pcIdx, format, args...)
		}
	}

	check(r.Cycles == r.OnCycles+r.OffCycles, "cycle_split",
		"cycles %d != on %d + off %d", r.Cycles, r.OnCycles, r.OffCycles)

	issued := r.Inst.PrefetchIssued + r.Data.PrefetchIssued
	check(r.NVM.PrefetchReads == issued, "prefetch_ledger",
		"NVM prefetch reads %d != issued %d", r.NVM.PrefetchReads, issued)

	for _, sd := range [2]*SideStats{&r.Inst, &r.Data} {
		check(sd.Buffer.UsefulEvicted+sd.Buffer.UselessEvicted == sd.Buffer.Inserted,
			"buffer_classification",
			"useful %d + useless %d != inserted %d",
			sd.Buffer.UsefulEvicted, sd.Buffer.UselessEvicted, sd.Buffer.Inserted)
		check(sd.Cache.Misses <= sd.Cache.Accesses, "cache_counts",
			"misses %d > accesses %d", sd.Cache.Misses, sd.Cache.Accesses)
	}

	e := r.Energy
	check(e.Cache >= 0 && e.Memory >= 0 && e.Compute >= 0 && e.BkRst >= 0 && e.Total() > 0,
		"energy_sign", "negative bucket or zero total in %+v", e)
	if s.cfg.Ideal {
		check(e.BkRst == 0, "ideal_bkrst", "ideal run spent %.3f nJ on backup/restore", e.BkRst)
	}

	// Checkpoint traffic is bounded by what the data cache can hold per
	// outage — after subtracting injected torn attempts and rollback
	// re-writes, which legitimately inflate the write count.
	if !s.cfg.Ideal && r.Outages > 0 {
		maxDirty := r.Outages * uint64(s.cfg.DCacheSize/16)
		writes := r.NVM.CheckpointWrites
		if s.flt != nil {
			writes -= s.flt.stats.CheckpointWriteFailures + s.flt.stats.CheckpointDiscarded
		}
		check(writes <= maxDirty, "checkpoint_traffic",
			"net checkpoint writes %d exceed %d outages x dirty capacity (%d)",
			writes, r.Outages, maxDirty)
	}

	if !(s.cfg.IPEXInst || s.cfg.IPEXData) {
		check(r.Inst.PrefetchThrottled == 0 && r.Data.PrefetchThrottled == 0,
			"throttle_without_ipex", "throttled %d/%d prefetches with IPEX detached",
			r.Inst.PrefetchThrottled, r.Data.PrefetchThrottled)
	}

	check(!r.Completed || r.Insts == uint64(s.wl.Len()), "lost_instructions",
		"completed run committed %d of %d instructions", r.Insts, s.wl.Len())

	// Attribution cross-checks (Config.Profile + Config.Paranoid): cycles
	// and the drain ledger must agree exactly; only the per-category energy
	// split is allowed float64 reassociation slack against the ledger.
	if pr := r.Profile; pr != nil {
		p.rep.LedgerNJ = p.totalDrainedNJ
		check(pr.TotalCycles == r.Cycles && pr.CycleTotal() == r.Cycles,
			"profile_cycle_total",
			"profiler cycles %d (categories sum %d) != run cycles %d",
			pr.TotalCycles, pr.CycleTotal(), r.Cycles)
		check(pr.Insts == r.Insts, "profile_insts",
			"profiler insts %d != run insts %d", pr.Insts, r.Insts)
		check(pr.LedgerNJ == p.totalDrainedNJ, "profile_ledger",
			"profiler drain ledger %.9f nJ != shadow ledger %.9f nJ",
			pr.LedgerNJ, p.totalDrainedNJ)
		et := pr.EnergyTotalNJ()
		check(math.Abs(et-pr.LedgerNJ) <= balanceTol(et, pr.LedgerNJ, 0, 0),
			"profile_energy_split",
			"energy categories sum %.9f nJ, drain ledger %.9f nJ", et, pr.LedgerNJ)
	}
}
