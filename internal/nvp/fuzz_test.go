package nvp

import (
	"testing"

	"ipex/internal/fault"
	"ipex/internal/prefetch"
)

// FuzzConfigValidate drives Config.Validate (including the capacitor and
// fault sub-configs) with arbitrary field values: it must never panic, must
// be deterministic, and must reject every configuration containing a
// non-finite probability or an unordered voltage monitor.
func FuzzConfigValidate(f *testing.F) {
	d := DefaultConfig()
	f.Add(d.ICacheSize, d.DCacheSize, d.Ways, d.InitialDegree,
		d.Capacitor.Vmax, d.Capacitor.Von, d.Capacitor.Vbackup, d.Capacitor.Voff,
		0.01, 0.2, 8, uint8(0))
	f.Add(0, -1, 99, 0, 3.5, 3.4, 3.18, 2.9, -0.5, 2.0, -3, uint8(1))
	f.Add(2048, 2048, 4, 2, 3.4, 3.4, 3.4, 3.4, 0.0, 0.0, 0, uint8(2))
	f.Fuzz(func(t *testing.T, icache, dcache, ways, degree int,
		vmax, von, vbackup, voff, noiseV, failProb float64, adcBits int, pf uint8) {
		cfg := DefaultConfig()
		cfg.ICacheSize = icache
		cfg.DCacheSize = dcache
		cfg.Ways = ways
		cfg.InitialDegree = degree
		cfg.Capacitor.Vmax = vmax
		cfg.Capacitor.Von = von
		cfg.Capacitor.Vbackup = vbackup
		cfg.Capacitor.Voff = voff
		kinds := []prefetch.Kind{prefetch.KindNone, prefetch.KindSequential,
			prefetch.KindStride, prefetch.Kind("warpdrive")}
		cfg.IPrefetcher = kinds[int(pf)%len(kinds)]
		cfg.Faults = &fault.Config{
			Sensor:     fault.SensorConfig{NoiseV: noiseV, ADCBits: adcBits},
			Checkpoint: fault.CheckpointConfig{WriteFailProb: failProb},
		}

		err1 := cfg.Validate()
		err2 := cfg.Validate()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Validate is nondeterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		// A configuration Validate blesses must satisfy the documented
		// envelope it claims to enforce.
		if failProb < 0 || failProb > 1 {
			t.Fatalf("accepted out-of-range WriteFailProb %g", failProb)
		}
		if !(vmax > von && von > vbackup && vbackup > voff && voff > 0) {
			t.Fatalf("accepted unordered voltage monitor %g/%g/%g/%g",
				vmax, von, vbackup, voff)
		}
	})
}
