package nvp

import (
	"ipex/internal/fault"
	"ipex/internal/mem"
	"ipex/internal/power"
	"ipex/internal/trace"
)

// faultRuntime bundles the per-run fault injectors (internal/fault) the
// system was configured with. A nil *faultRuntime means fault injection is
// off; every integration site in the simulator is guarded by that one nil
// compare, and a Config whose families are all inactive normalizes to nil —
// so a disabled fault layer is bit-identical to no fault layer at all.
type faultRuntime struct {
	stats  fault.Stats
	sensor *fault.Sensor      // nil unless the sensor family is active
	ckpt   *fault.Checkpointer // nil unless the checkpoint family is active
	harv   *fault.Harvester   // nil unless the harvest family is active
}

// newFaultRuntime builds the injectors for one run, or returns nil when the
// config injects nothing.
func newFaultRuntime(cfg *fault.Config, vmax float64, tr *trace.Tracer) *faultRuntime {
	if !cfg.Active() {
		return nil
	}
	rt := &faultRuntime{}
	seed := cfg.Seed
	if seed == 0 {
		seed = fault.DefaultSeed
	}
	if cfg.Sensor.Active() {
		rt.sensor = fault.NewSensor(cfg.Sensor, seed, vmax, tr, &rt.stats)
	}
	if cfg.Checkpoint.Active() {
		rt.ckpt = fault.NewCheckpointer(cfg.Checkpoint, seed, tr, &rt.stats)
	}
	if cfg.Harvest.Active() {
		rt.harv = fault.NewHarvester(cfg.Harvest, seed, tr, &rt.stats)
	}
	return rt
}

// powerAt maps a cycle to the harvested power the capacitor receives,
// applying harvest anomalies when configured. It replaces the simulator's
// direct trace.PowerAt reads.
func (s *System) powerAt(t uint64) float64 {
	p := s.trace.PowerAt(t)
	if s.flt != nil && s.flt.harv != nil {
		p = s.flt.harv.Power(t/power.SampleIntervalCycles, p)
	}
	return p
}

// observeSensor runs the IPEX observation through the faulted voltage
// monitor: the true capacitor voltage goes through the ADC model and the
// controllers see what it reports. This is the Observe (voltage-domain)
// path — exact for an ideal sensor, and the only correct path once readings
// no longer map one-to-one onto stored energy.
func (s *System) observeSensor() {
	v := s.flt.sensor.Read(s.cap.Voltage())
	if s.cfg.ReissueOnExit {
		for _, sd := range [2]*side{&s.inst, &s.data} {
			before := sd.ctl.Degree()
			sd.ctl.Observe(v)
			if sd.ctl.Degree() > before {
				s.reissueThrottled(sd)
			}
		}
		return
	}
	s.inst.ctl.Observe(v)
	s.data.ctl.Observe(v)
}

// checkpointWalk is the outage backup walk under checkpoint-write faults:
// every attempt (torn or not) costs full NVM write energy and cycles; a
// torn write is detected and retried up to the retry bound; a block that
// keeps tearing forces a rollback — the walk restarts so the committed
// snapshot is consistent — up to the rollback bound, past which writes are
// forced through so the run always terminates. Wasted cost (torn attempts
// plus rollback-discarded commits) is accumulated into the fault stats.
func (s *System) checkpointWalk() (cycles uint64, nj float64) {
	ck := s.flt.ckpt
	st := &s.flt.stats
	n := len(s.dirtyScratch)
	var passC uint64  // cost of this pass's committed (not yet safe) writes
	var passNJ float64
	rollbacks := 0
	forced := false
	retries := 0
	for i := 0; i < n; {
		wc, wnj := s.nvm.Write(mem.CheckpointWrite)
		cycles += wc
		nj += wnj
		if retries > 0 {
			ck.NoteRetry(wnj)
		}
		if ck.WriteFails(forced) {
			st.RetryCycles += wc
			st.RetryNJ += wnj
			retries++
			if retries > ck.MaxRetries() {
				ck.NoteRollback(i)
				st.RetryCycles += passC
				st.RetryNJ += passNJ
				passC, passNJ = 0, 0
				i, retries = 0, 0
				rollbacks++
				if rollbacks >= ck.MaxRollbacks() {
					forced = true
				}
			}
			continue
		}
		passC += wc
		passNJ += wnj
		retries = 0
		i++
	}
	return cycles, nj
}
