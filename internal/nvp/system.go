package nvp

import (
	"context"
	"fmt"

	"ipex/internal/cache"
	"ipex/internal/capacitor"
	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/mem"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/profile"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

// side bundles the per-cache-side hardware: cache, prefetch buffer,
// prefetcher, IPEX controller, and statistics.
type side struct {
	name   string
	cache  *cache.Cache
	buf    *cache.PrefetchBuffer
	pf     prefetch.Prefetcher
	ctl    *core.Controller
	params energy.CacheParams
	stats  SideStats
	cands  []uint64 // scratch candidate list, reused per access
	// inflight stages issued-but-incomplete prefetch reads in
	// prefetch-to-cache mode; its capacity is the prefetch buffer size.
	inflight []pfReq
	// agNJ is the prefetcher's per-trigger address-generation energy
	// (§5.2), zero for register-based prefetchers.
	agNJ float64
	// pfSkipHits marks a hit-indifferent, zero-address-gen-cost prefetcher
	// (prefetch.HitIndifferent): plain demand hits then bypass the
	// observation call without changing any simulated state or statistic.
	pfSkipHits bool
	// minReady is a watermark at or below the earliest readyAt in
	// inflight (noReady when empty). drainPrefetches returns in O(1)
	// while now < minReady — the common case, since it runs on every
	// access but prefetch reads take tens of cycles to complete. The
	// watermark may go stale-low after a removal (never stale-high), so
	// it only ever causes a redundant scan, never a missed drain.
	minReady uint64
	// throttledQ remembers IPEX-throttled candidate blocks for the
	// ReissueOnExit extension (bounded FIFO).
	throttledQ []uint64
}

// noReady is the minReady watermark of an empty in-flight queue.
const noReady = ^uint64(0)

// throttledQCap bounds the reissue queue (ReissueOnExit): roughly one
// power cycle's worth of suppressed stream heads.
const throttledQCap = 16

// pfReq is one outstanding prefetch read.
type pfReq struct {
	block   uint64
	readyAt uint64
}

// findInflight returns the index of block in the in-flight queue, or -1.
// The queue is bounded by Config.PrefetchBufEntries (≤ 8 in every evaluated
// configuration), so a linear scan beats a block→index map: no hashing, no
// allocation, and the whole queue fits in one cache line. The minReady
// watermark, not a map, is what makes the per-access drain O(1).
func (sd *side) findInflight(block uint64) int {
	for i := range sd.inflight {
		if sd.inflight[i].block == block {
			return i
		}
	}
	return -1
}

// removeInflight drops entry i, preserving order.
func (sd *side) removeInflight(i int) {
	sd.inflight = append(sd.inflight[:i], sd.inflight[i+1:]...)
}

// System is one assembled NVP simulation. Build with NewSystem, drive with
// Run (or Step for fine-grained tests).
type System struct {
	cfg   Config
	wl    workload.Generator
	trace *power.Trace

	cap  *capacitor.Capacitor
	nvm  *mem.NVM
	inst side
	data side

	// Absolute time in cycles and the accounting split.
	now       uint64
	onCycles  uint64
	offCycles uint64
	outages   uint64
	insts     uint64

	// Pending dynamic energy per bucket, drained by advanceOn.
	pend energy.Breakdown
	// Accumulated consumed energy.
	consumed energy.Breakdown

	// Per-cycle leakage constants (nJ/cycle), split by bucket.
	leakCacheNJ   float64
	leakMemNJ     float64
	leakComputeNJ float64

	// Harvest sample cache: samplePow is trace.PowerAt for the sample
	// window ending at cycle sampleEnd. The trace is piecewise-constant
	// over SampleIntervalCycles windows and simulated time is monotonic,
	// so one lookup per window replaces one per harvested chunk.
	sampleEnd uint64
	samplePow float64

	// dirtyScratch is the reused checkpoint address buffer; outage()
	// refills it instead of allocating a fresh DirtyAddrs slice per
	// power failure.
	dirtyScratch []uint64

	maxCycles uint64

	// Telemetry (Config.RecordCycles) and guard-band accounting.
	guardViolations uint64
	cycleLog        []PowerCycleStats
	mark            cycleMark

	// tr, when non-nil, receives the event stream (Config.Tracer); pcIdx is
	// the 0-based power-cycle index the tracer clock stamps on every event.
	tr    *trace.Tracer
	pcIdx uint64

	// flt holds the fault injectors (Config.Faults), par the runtime
	// invariant checker (Config.Paranoid), and prof the attribution
	// profiler (Config.Profile); all are nil when disabled and every
	// integration site costs one nil compare then.
	flt  *faultRuntime
	par  *paranoid
	prof *profiler

	// ctx, when non-nil (RunContext), is polled at power-cycle boundaries:
	// a cancelled run stops cleanly after the next reboot with
	// Completed=false, exactly like a run that exhausted its cycle budget.
	// Checking only at outages keeps the per-instruction hot loop free of
	// any context overhead; cancellation latency is one power cycle.
	ctx context.Context
}

// cycleMark snapshots the counters at the start of a power cycle so the
// per-cycle deltas can be computed at the outage.
type cycleMark struct {
	startCycle uint64
	onCycles   uint64
	insts      uint64
	issued     uint64
	throttled  uint64
	wiped      uint64
	// Per-side demand-stream snapshots for the cycle_stats trace event.
	instAccesses uint64
	instMisses   uint64
	dataAccesses uint64
	dataMisses   uint64
}

// NewSystem builds a system for one workload and power trace.
func NewSystem(wl workload.Generator, trace *power.Trace, cfg Config) (*System, error) {
	return newSystem(nil, wl, trace, cfg)
}

// newSystem assembles a system, recycling the arena's components where their
// configuration matches (a nil arena builds everything fresh — the classic
// NewSystem path). Every recycled component is Reset to its
// just-constructed state first, so an arena-assembled system starts
// bit-identical to a fresh one; the arena-vs-fresh determinism tests and
// the golden suite pin that equivalence.
func newSystem(a *Arena, wl workload.Generator, trace *power.Trace, cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if wl == nil {
		return nil, fmt.Errorf("nvp: nil workload")
	}
	if trace == nil {
		return nil, fmt.Errorf("nvp: nil power trace")
	}
	// The capacitor is pure value state: reusable whenever the
	// configuration matches (the boot SetVoltage below defines its whole
	// initial state). The energy-cutoff converter rides along — the method
	// value is the one closure allocation NewSystem cannot avoid, so the
	// arena caches it with the capacitor.
	var cp *capacitor.Capacitor
	var cutoff func(v float64) float64
	if a != nil && a.cap != nil && a.capCfg == cfg.Capacitor {
		cp, cutoff = a.cap, a.cutoff
	} else {
		var err error
		cp, err = capacitor.New(cfg.Capacitor)
		if err != nil {
			return nil, err
		}
		cutoff = cp.EnergyCutoffNJ
		if a != nil {
			a.cap, a.capCfg, a.cutoff = cp, cfg.Capacitor, cutoff
		}
	}

	buildSide := func(slot *sideSlot, prev *side, name string, size int, kind prefetch.Kind, factory func() prefetch.Prefetcher, ipexOn bool) (side, error) {
		params := energy.CacheFor(size, cfg.Ways)
		var c *cache.Cache
		if slot != nil && slot.cache != nil && slot.params == params {
			c = slot.cache
			c.Reset()
		} else {
			var err error
			c, err = cache.New(params)
			if err != nil {
				return side{}, err
			}
			if slot != nil {
				slot.cache, slot.params = c, params
			}
		}
		bufDepth := cfg.PrefetchBufEntries
		if bufDepth < 1 {
			bufDepth = 1 // NewPrefetchBuffer's clamp
		}
		var b *cache.PrefetchBuffer
		if slot != nil && slot.buf != nil && slot.buf.Size() == bufDepth {
			b = slot.buf
			b.Reset()
		} else {
			b = cache.NewPrefetchBuffer(cfg.PrefetchBufEntries)
			if slot != nil {
				slot.buf = b
			}
		}
		// A factory-built prefetcher is never recycled: the factory contract
		// is one fresh instance per run. Built-in kinds are recycled via
		// their Reset, which restores the virgin table state.
		var pf prefetch.Prefetcher
		if factory != nil {
			pf = factory()
		} else if slot != nil && slot.pf != nil && slot.pfKind == kind {
			pf = slot.pf
			pf.Reset()
		} else {
			var err error
			if pf, err = prefetch.New(kind); err != nil {
				return side{}, err
			}
			if slot != nil {
				slot.pf, slot.pfKind = pf, kind
			}
		}
		ipexCfg := cfg.IPEX
		ipexCfg.Enabled = ipexOn && pf != nil
		ipexCfg.InitialDegree = cfg.InitialDegree
		var ctl *core.Controller
		if slot != nil && slot.ctl != nil && ipexCfgEqual(slot.ctlCfg, ipexCfg) {
			ctl = slot.ctl
			ctl.Reset()
		} else {
			var err error
			ctl, err = core.NewController(ipexCfg)
			if err != nil {
				return side{}, err
			}
			if slot != nil {
				slot.ctl, slot.ctlCfg = ctl, ipexCfg
			}
		}
		// Let the controller compare capacitor energy against precomputed
		// per-threshold energy cutoffs instead of taking a square root per
		// observation; the cutoffs are exact (bit-identical decisions).
		ctl.UseEnergyCutoffs(cutoff)
		sd := side{
			name:     name,
			cache:    c,
			buf:      b,
			pf:       pf,
			ctl:      ctl,
			params:   params,
			minReady: noReady,
		}
		if coster, ok := pf.(prefetch.AddressGenCoster); ok {
			sd.agNJ = coster.AddressGenNJ()
		}
		// Hits may skip the observation only when the prefetcher ignores
		// them AND charges no per-access address-generation energy —
		// otherwise the skip would change the energy ledger.
		if hi, ok := pf.(prefetch.HitIndifferent); ok && hi.HitIndifferent() && sd.agNJ == 0 {
			sd.pfSkipHits = true
		}
		// Metrics wrapping happens after the interface probes above: the
		// wrapper intentionally hides AddressGenCoster/HitIndifferent, and
		// agNJ/pfSkipHits must describe the real prefetcher. The wrapper is
		// built per run; only the raw prefetcher lives in the arena slot.
		if pf != nil && cfg.Metrics != nil {
			sd.pf = prefetch.NewInstrument(pf, cfg.Metrics, name)
		}
		// Scratch buffers keep their previous run's capacity ([:0] reuse).
		if prev != nil {
			sd.cands = prev.cands[:0]
			sd.inflight = prev.inflight[:0]
			sd.throttledQ = prev.throttledQ[:0]
		}
		return sd, nil
	}

	var instSlot, dataSlot *sideSlot
	var prevInst, prevData *side
	var prevDirty []uint64
	if a != nil {
		instSlot, dataSlot = &a.instSlot, &a.dataSlot
		prevInst, prevData = &a.sys.inst, &a.sys.data
		prevDirty = a.sys.dirtyScratch
	}
	is, err := buildSide(instSlot, prevInst, "icache", cfg.ICacheSize, cfg.IPrefetcher, cfg.IPrefetcherFactory, cfg.IPEXInst)
	if err != nil {
		return nil, err
	}
	ds, err := buildSide(dataSlot, prevData, "dcache", cfg.DCacheSize, cfg.DPrefetcher, cfg.DPrefetcherFactory, cfg.IPEXData)
	if err != nil {
		return nil, err
	}

	var nv *mem.NVM
	if a != nil && a.nvm != nil {
		nv = a.nvm
		nv.Reset(cfg.NVM)
	} else {
		nv = mem.New(cfg.NVM)
		if a != nil {
			a.nvm = nv
		}
	}

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}

	var s *System
	if a != nil {
		s = &a.sys
	} else {
		s = &System{}
	}
	// Whole-struct assignment: every per-run field (clocks, pending energy,
	// telemetry, observers) restarts from its zero value exactly as a fresh
	// System would. cycleLog deliberately restarts nil, never [:0] — the
	// previous run's Result aliases its backing array via PowerCycleLog.
	*s = System{
		cfg:       cfg,
		wl:        wl,
		trace:     trace,
		cap:       cp,
		nvm:       nv,
		inst:      is,
		data:      ds,
		maxCycles: maxCycles,

		dirtyScratch: prevDirty[:0],

		leakCacheNJ:   energy.LeakNJPerCycle(is.params.LeakMW) + energy.LeakNJPerCycle(ds.params.LeakMW),
		leakMemNJ:     energy.LeakNJPerCycle(cfg.NVM.LeakMW),
		leakComputeNJ: energy.LeakNJPerCycle(energy.CoreLeakMW),
	}
	if cfg.Tracer != nil {
		s.tr = cfg.Tracer
		for _, sd := range [2]*side{&s.inst, &s.data} {
			sd.cache.SetTracer(cfg.Tracer, sd.name)
			sd.buf.SetTracer(cfg.Tracer, sd.name)
			sd.ctl.SetTracer(cfg.Tracer, sd.name)
		}
	}
	s.flt = newFaultRuntime(cfg.Faults, cfg.Capacitor.Vmax, s.tr)
	// The system boots with the capacitor at Von: the reboot threshold is
	// the defined start-of-power-cycle state.
	s.cap.SetVoltage(cfg.Capacitor.Von)
	if cfg.Paranoid {
		s.par = &paranoid{cycleStartE: s.cap.EnergyNJ()}
	}
	if cfg.Profile {
		s.prof = newProfiler()
	}
	return s, nil
}

// Run executes the workload to completion (or the cycle budget) and
// returns the result.
func Run(wl workload.Generator, trace *power.Trace, cfg Config) (Result, error) {
	s, err := NewSystem(wl, trace, cfg)
	if err != nil {
		return Result{}, err
	}
	return s.run()
}

// RunContext is Run with cooperative cancellation: when ctx is cancelled
// the simulation stops cleanly at the next power-cycle boundary (after the
// JIT checkpoint, outage, and reboot complete) and returns the partial
// result with Completed=false and a nil error — the same contract as a run
// that exhausted its MaxCycles budget, so every downstream consumer
// (skipped-app filtering, journaling) handles it identically. Inspect
// ctx.Err() to distinguish cancellation from budget truncation. A nil ctx
// behaves exactly like Run.
func RunContext(ctx context.Context, wl workload.Generator, trace *power.Trace, cfg Config) (Result, error) {
	s, err := NewSystem(wl, trace, cfg)
	if err != nil {
		return Result{}, err
	}
	s.ctx = ctx
	return s.run()
}

func (s *System) run() (Result, error) {
	// Per-configuration loop specialization: when every observer and
	// ablation the generic loop branches on is off AND the workload is a
	// replay cursor over a shared trace arena, hand control to a fast loop
	// compiled for that branch assignment (see fastloop.go). The selection
	// happens once here; the fast loops are bit-identical to the loop below.
	if cur, ok := s.wl.(*workload.Cursor); ok && s.canFastLoop() {
		if s.inst.pf == nil && s.data.pf == nil {
			return s.runFastNoPF(cur)
		}
		return s.runFast(cur)
	}
	wl := s.wl
	completed := true
	cancelled := false
	if s.tr != nil {
		s.tr.Begin(wl.Name(), func() (uint64, uint64) { return s.now, s.pcIdx })
		s.tr.Emit(trace.Event{Kind: trace.KindCycleStart})
	}
	for {
		a, ok := wl.Next()
		if !ok {
			break
		}
		s.insts++

		// Instruction fetch.
		istall := s.access(&s.inst, a.PC, a.PC, false)
		cycles := uint64(1) + istall
		s.inst.stats.StallCycles += istall
		s.pend.Compute += energy.ComputeNJPerInst
		if p := s.prof; p != nil {
			p.cyc.Insts++
			p.cyc.Cycles[profile.CycCompute]++
			p.cyc.EnergyNJ[profile.ECompute] += energy.ComputeNJPerInst
			p.endAccess(istall)
		}

		// Data reference.
		if a.HasData {
			dstall := s.access(&s.data, a.PC, a.DataAddr, a.Write)
			cycles += dstall
			s.data.stats.StallCycles += dstall
			if s.prof != nil {
				s.prof.endAccess(dstall)
			}
		}

		s.advanceOn(cycles)

		// Voltage monitor: IPEX observation and outage detection. The
		// monitor compares stored energy against precomputed cutoffs —
		// exactly equivalent to comparing Voltage() against thresholds,
		// without the per-instruction square roots. Under an injected
		// sensor fault the equivalence no longer holds (readings stop
		// mapping one-to-one onto stored energy), so that path feeds the
		// controllers the faulted voltage directly; the outage comparator
		// below stays exact either way — it models the dedicated analog
		// brown-out detector, not the ADC.
		if s.flt != nil && s.flt.sensor != nil {
			s.observeSensor()
		} else if s.cfg.ReissueOnExit {
			e := s.cap.EnergyNJ()
			for _, sd := range [2]*side{&s.inst, &s.data} {
				before := sd.ctl.Degree()
				sd.ctl.ObserveEnergy(e)
				if sd.ctl.Degree() > before {
					// Back toward high-performance mode: replay what was
					// throttled earlier in this power cycle.
					s.reissueThrottled(sd)
				}
			}
		} else {
			e := s.cap.EnergyNJ()
			s.inst.ctl.ObserveEnergy(e)
			s.data.ctl.ObserveEnergy(e)
		}
		if s.cap.BelowBackup() {
			s.outage()
			// Cooperative cancellation (RunContext) is honoured only here,
			// right after a reboot: the checkpoint is durable, no simulated
			// state is half-applied, and the hot loop never touches the
			// context. The partial result reports Completed=false exactly
			// like a budget-truncated run.
			if s.ctx != nil && s.ctx.Err() != nil {
				completed = false
				cancelled = true
				break
			}
		}

		if s.now >= s.maxCycles {
			completed = false
			break
		}
	}
	if s.tr != nil {
		// The final partial cycle gets its demand-stream deltas too, so the
		// offline analyzer's per-side totals match the Result aggregates.
		s.emitCycleStats()
		detail := "completed"
		if !completed {
			detail = "budget"
		}
		if cancelled {
			detail = "cancelled"
		}
		s.tr.Emit(trace.Event{Kind: trace.KindRunEnd, N: int64(s.insts), Detail: detail})
	}
	return s.result(completed), nil
}

// snapshotCycle re-marks the counters at a power-cycle boundary.
func (s *System) snapshotCycle() {
	ic, dc := s.inst.cache.Stats(), s.data.cache.Stats()
	s.mark = cycleMark{
		startCycle:   s.now,
		onCycles:     s.onCycles,
		insts:        s.insts,
		issued:       s.inst.stats.PrefetchIssued + s.data.stats.PrefetchIssued,
		throttled:    s.inst.stats.PrefetchThrottled + s.data.stats.PrefetchThrottled,
		wiped:        s.wipedUnusedNow(),
		instAccesses: ic.Accesses,
		instMisses:   ic.Misses,
		dataAccesses: dc.Accesses,
		dataMisses:   dc.Misses,
	}
}

// emitCycleStats streams each cache side's demand-stream deltas for the
// power cycle closing now; paired with the cycle_end (or run_end) event
// that follows it.
func (s *System) emitCycleStats() {
	if s.tr == nil {
		return
	}
	ic, dc := s.inst.cache.Stats(), s.data.cache.Stats()
	s.tr.Emit(trace.Event{Kind: trace.KindCycleStats, Side: s.inst.name,
		Accesses: ic.Accesses - s.mark.instAccesses, Misses: ic.Misses - s.mark.instMisses})
	s.tr.Emit(trace.Event{Kind: trace.KindCycleStats, Side: s.data.name,
		Accesses: dc.Accesses - s.mark.dataAccesses, Misses: dc.Misses - s.mark.dataMisses})
}

// wipedUnusedNow totals outage-destroyed unused prefetches so far.
func (s *System) wipedUnusedNow() uint64 {
	return s.inst.cache.Stats().PrefetchedWiped + s.data.cache.Stats().PrefetchedWiped +
		s.inst.buf.Stats().WipedUnused + s.data.buf.Stats().WipedUnused +
		s.inst.stats.InflightWiped + s.data.stats.InflightWiped
}

// flushCycle appends the finished (or final partial) power cycle to the
// telemetry log.
func (s *System) flushCycle(dirtyAtBackup int) {
	if !s.cfg.RecordCycles {
		return
	}
	s.cycleLog = append(s.cycleLog, PowerCycleStats{
		StartCycle:        s.mark.startCycle,
		OnCycles:          s.onCycles - s.mark.onCycles,
		Insts:             s.insts - s.mark.insts,
		PrefetchIssued:    s.inst.stats.PrefetchIssued + s.data.stats.PrefetchIssued - s.mark.issued,
		PrefetchThrottled: s.inst.stats.PrefetchThrottled + s.data.stats.PrefetchThrottled - s.mark.throttled,
		WipedUnused:       s.wipedUnusedNow() - s.mark.wiped,
		DirtyAtBackup:     dirtyAtBackup,
	})
}

// drainPrefetches moves completed in-flight prefetches into the cache
// (prefetch-to-cache mode). A block whose demand copy arrived first counts
// as a useless (redundant) prefetch.
func (s *System) drainPrefetches(sd *side) {
	if s.now < sd.minReady {
		// Watermark fast path: nothing in flight can be ready yet.
		return
	}
	min := uint64(noReady)
	for i := 0; i < len(sd.inflight); {
		e := sd.inflight[i]
		if e.readyAt > s.now {
			if e.readyAt < min {
				min = e.readyAt
			}
			i++
			continue
		}
		sd.removeInflight(i)
		if sd.cache.Contains(e.block) {
			// Redundant: a demand fill won the race; the read energy is
			// wasted (this is what §5.1's suppression avoids).
			sd.stats.InflightRedundant++
			continue
		}
		s.pend.Cache += sd.params.AccessNJ // array write on promote
		if p := s.prof; p != nil {
			p.energy(profile.EPrefetch, sd.params.AccessNJ)
			p.unwipe(s, sd, e.block)
		}
		if sd.cache.FillPrefetched(e.block) {
			_, wnj := s.nvm.Write(mem.WritebackWrite)
			s.pend.Memory += wnj
			if s.prof != nil {
				s.prof.energy(profile.EPrefetch, wnj)
			}
		}
	}
	sd.minReady = min
}

// access performs one demand access on a side and returns the stall cycles
// it caused beyond the base pipeline cycle.
func (s *System) access(sd *side, pc, addr uint64, write bool) (stall uint64) {
	block := sd.cache.BlockAddr(addr)
	if s.cfg.PrefetchToCache && s.now >= sd.minReady {
		// Watermark checked here so the common nothing-ready case costs a
		// compare instead of a function call.
		s.drainPrefetches(sd)
	}
	hit := sd.cache.Access(addr, write)
	s.pend.Cache += sd.params.AccessNJ
	if s.prof != nil {
		s.prof.beginAccess(s, sd)
	}

	bufHit := false
	switch {
	case hit:
		// Nothing to do; a first hit on a prefetched line was counted as
		// useful by the cache itself.
	case s.cfg.PrefetchToCache:
		if idx := sd.findInflight(block); idx >= 0 && s.cfg.DupSuppress {
			// §5.1: an in-flight prefetch holds the block; wait for it
			// rather than issuing a duplicate NVM request.
			bufHit = true
			e := sd.inflight[idx]
			if e.readyAt > s.now {
				stall += e.readyAt - s.now
			}
			sd.removeInflight(idx)
			sd.stats.InflightServed++
			sd.cache.NoteBufHit()
			stall++ // promotion into the cache
			s.pend.Cache += sd.params.AccessNJ
			if p := s.prof; p != nil {
				p.accessNJ(sd.params.AccessNJ)
				p.unwipe(s, sd, block)
			}
			s.fill(sd, addr, write)
		} else {
			// A duplicate in-flight copy (DupSuppress off) drains later
			// and is classified redundant by drainPrefetches.
			rc, rnj := s.nvm.Read(mem.DemandRead)
			stall += rc
			s.pend.Memory += rnj
			s.pend.Cache += sd.params.AccessNJ
			if s.prof != nil {
				s.prof.noteDemandRead(s, sd, block, rnj+sd.params.AccessNJ)
			}
			s.fill(sd, addr, write)
		}
	default:
		if e := sd.buf.Lookup(block); e != nil && s.cfg.DupSuppress {
			// Buffer mode §5.1: the prefetch buffer holds the block (or
			// its in-flight read); wait and promote.
			bufHit = true
			if e.ReadyAt > s.now {
				stall += e.ReadyAt - s.now
			}
			sd.buf.Take(block)
			if s.tr != nil {
				s.tr.Emit(trace.Event{Kind: trace.KindPrefetchFirstUse,
					Side: sd.name, Block: block, Detail: "buffer"})
			}
			sd.cache.NoteBufHit()
			stall++ // promotion into the cache
			s.pend.Cache += sd.params.AccessNJ
			if p := s.prof; p != nil {
				p.accessNJ(sd.params.AccessNJ)
				p.unwipe(s, sd, block)
			}
			s.fill(sd, addr, write)
		} else {
			if sd.buf.Lookup(block) != nil {
				// Ablation path (DupSuppress off): the duplicate demand
				// read is issued anyway; the buffered copy ends its life
				// unused.
				sd.buf.Drop(block)
			}
			rc, rnj := s.nvm.Read(mem.DemandRead)
			stall += rc
			s.pend.Memory += rnj
			s.pend.Cache += sd.params.AccessNJ
			if s.prof != nil {
				s.prof.noteDemandRead(s, sd, block, rnj+sd.params.AccessNJ)
			}
			s.fill(sd, addr, write)
		}
	}

	// Prefetcher observation and issue. Prefetch reads go on the bus
	// after the demand traffic of this access, so their completion time
	// includes the stall accrued so far — late prefetches (§5.1) arise
	// naturally from this serialization.
	if sd.pf != nil {
		if hit && sd.pfSkipHits {
			// The prefetcher neither trains nor emits on a plain hit and
			// costs nothing to consult: skip the call (bufHit implies a
			// miss, so this branch never hides a buffer-hit trigger).
			return stall
		}
		// §5.2: with IPEX holding the degree at zero, the prefetcher's
		// table-lookup address generation is powered down entirely.
		if s.cfg.GateAddressGen && sd.agNJ > 0 && sd.ctl.Enabled() && sd.ctl.Degree() == 0 {
			sd.stats.AddressGenGated++
			return stall
		}
		if sd.agNJ != 0 {
			s.pend.Cache += sd.agNJ
			if s.prof != nil {
				s.prof.energy(profile.EPrefetch, sd.agNJ)
			}
		}
		sd.cands = sd.pf.OnAccess(sd.cands[:0], prefetch.Event{
			PC:        pc,
			Addr:      addr,
			Block:     block,
			Miss:      !hit,
			BufHit:    bufHit,
			BlockSize: uint64(sd.params.BlockSize),
		})
		if len(sd.cands) != 0 {
			s.issuePrefetches(sd, stall)
		}
	}
	return stall
}

// fill inserts a block into a side's cache, handling dirty writeback. Only
// demand accesses reach it, so a writeback's energy follows the current
// access's attribution category.
func (s *System) fill(sd *side, addr uint64, write bool) {
	if sd.cache.Fill(addr, write) {
		// Posted writeback: energy and traffic, no pipeline stall.
		_, wnj := s.nvm.Write(mem.WritebackWrite)
		s.pend.Memory += wnj
		if s.prof != nil {
			s.prof.accessNJ(wnj)
		}
	}
}

// issuePrefetches filters a side's candidate list and issues up to the
// active degree, recording throttling against the conventional degree.
func (s *System) issuePrefetches(sd *side, busyCycles uint64) {
	// Filter candidates already covered or out of memory bounds, in place.
	memSize := uint64(s.cfg.NVM.SizeBytes)
	kept := sd.cands[:0]
candidates:
	for _, c := range sd.cands {
		b := sd.cache.BlockAddr(c)
		if b >= memSize {
			continue
		}
		if sd.cache.Contains(b) {
			continue
		}
		if s.cfg.PrefetchToCache {
			if sd.findInflight(b) >= 0 {
				continue
			}
		} else if sd.buf.Lookup(b) != nil {
			continue
		}
		for _, k := range kept {
			if k == b {
				continue candidates
			}
		}
		kept = append(kept, b)
	}
	if len(kept) == 0 {
		return
	}
	requested := len(kept)
	if requested > s.cfg.InitialDegree {
		requested = s.cfg.InitialDegree
	}
	// IPEX grants up to the current degree; the staging capacity then
	// bounds how many reads can actually be outstanding (that drop is a
	// structural limit, not IPEX throttling, and is not Recorded).
	granted := len(kept)
	if granted > sd.ctl.Degree() {
		granted = sd.ctl.Degree()
	}
	issue := granted
	if s.cfg.PrefetchToCache {
		if free := s.cfg.PrefetchBufEntries - len(sd.inflight); issue > free {
			issue = free
		}
	}
	for i := 0; i < issue; i++ {
		rc, rnj := s.nvm.Read(mem.PrefetchRead)
		s.pend.Memory += rnj
		if s.prof != nil {
			s.prof.energy(profile.EPrefetch, rnj)
		}
		start := s.now + busyCycles
		if s.cfg.PrefetchToCache {
			rdy := start + rc
			sd.inflight = append(sd.inflight, pfReq{block: kept[i], readyAt: rdy})
			if rdy < sd.minReady {
				sd.minReady = rdy
			}
		} else {
			sd.buf.Insert(kept[i], start+rc)
		}
	}
	sd.ctl.Record(requested, granted)
	sd.stats.PrefetchIssued += uint64(issue)
	if s.tr != nil {
		for i := 0; i < issue; i++ {
			s.tr.Emit(trace.Event{Kind: trace.KindPrefetchIssue,
				Side: sd.name, Block: kept[i]})
		}
	}
	if requested > granted {
		sd.stats.PrefetchThrottled += uint64(requested - granted)
		if s.tr != nil {
			for _, b := range kept[granted:requested] {
				s.tr.Emit(trace.Event{Kind: trace.KindPrefetchThrottle,
					Side: sd.name, Block: b})
			}
		}
		if s.cfg.ReissueOnExit {
		enqueue:
			for _, b := range kept[granted:requested] {
				// A block throttled twice in one power cycle (the stream
				// head barely moves while the degree is held down) must not
				// occupy two of the 16 FIFO slots: the duplicate reissue
				// would be filtered later anyway, but it evicts an older
				// block that would have been replayed.
				for _, q := range sd.throttledQ {
					if q == b {
						continue enqueue
					}
				}
				if len(sd.throttledQ) == throttledQCap {
					sd.throttledQ = sd.throttledQ[1:]
				}
				sd.throttledQ = append(sd.throttledQ, b)
			}
		}
	}
}

// reissueThrottled re-issues previously throttled prefetches after IPEX
// returns to high-performance mode — the §5.1 extension the paper leaves
// as future work (Config.ReissueOnExit).
func (s *System) reissueThrottled(sd *side) {
	memSize := uint64(s.cfg.NVM.SizeBytes)
	for len(sd.throttledQ) > 0 {
		b := sd.throttledQ[0]
		sd.throttledQ = sd.throttledQ[1:]
		if b >= memSize || sd.cache.Contains(b) {
			continue
		}
		if s.cfg.PrefetchToCache {
			if sd.findInflight(b) >= 0 {
				continue
			}
			if len(sd.inflight) >= s.cfg.PrefetchBufEntries {
				// No staging slot: put it back and stop for now.
				sd.throttledQ = append([]uint64{b}, sd.throttledQ...)
				return
			}
			rc, rnj := s.nvm.Read(mem.PrefetchRead)
			s.pend.Memory += rnj
			if s.prof != nil {
				s.prof.energy(profile.EPrefetch, rnj)
			}
			rdy := s.now + rc
			sd.inflight = append(sd.inflight, pfReq{block: b, readyAt: rdy})
			if rdy < sd.minReady {
				sd.minReady = rdy
			}
		} else {
			if sd.buf.Lookup(b) != nil {
				continue
			}
			rc, rnj := s.nvm.Read(mem.PrefetchRead)
			s.pend.Memory += rnj
			if s.prof != nil {
				s.prof.energy(profile.EPrefetch, rnj)
			}
			sd.buf.Insert(b, s.now+rc)
		}
		sd.stats.PrefetchIssued++
		sd.stats.PrefetchReissued++
		if s.tr != nil {
			s.tr.Emit(trace.Event{Kind: trace.KindPrefetchIssue,
				Side: sd.name, Block: b, Detail: "reissue"})
		}
	}
}

// advanceOn moves powered time forward by `cycles`, charging leakage,
// draining pending dynamic energy, and harvesting from the trace.
func (s *System) advanceOn(cycles uint64) {
	s.harvest(cycles)

	// Leakage added field-by-field in Breakdown.Add's order; skipping the
	// BkRst term (identically zero for leakage) is bitwise-neutral since
	// x + 0.0 == x for the non-negative energies accumulated here.
	fc := float64(cycles)
	s.pend.Cache += s.leakCacheNJ * fc
	s.pend.Memory += s.leakMemNJ * fc
	s.pend.Compute += s.leakComputeNJ * fc
	if s.prof != nil {
		s.prof.energy(profile.ELeakage, (s.leakCacheNJ+s.leakMemNJ+s.leakComputeNJ)*fc)
	}

	s.capConsume(s.pend.Total())
	s.consumed.Add(s.pend)
	s.pend = energy.Breakdown{}

	s.now += cycles
	s.onCycles += cycles
}

// harvest integrates the power trace over [now, now+cycles), honouring the
// 10 µs sample boundaries. The trace is constant within a sample window, so
// the power value is cached until simulated time crosses sampleEnd — time
// only moves forward, so a single monotonic check replaces the div+mod trace
// lookup on every call.
func (s *System) harvest(cycles uint64) {
	t := s.now
	remaining := cycles
	for remaining > 0 {
		if t >= s.sampleEnd {
			s.samplePow = s.powerAt(t)
			s.sampleEnd = (t/power.SampleIntervalCycles + 1) * power.SampleIntervalCycles
		}
		chunk := s.sampleEnd - t
		if chunk > remaining {
			chunk = remaining
		}
		s.capHarvest(power.EnergyNJ(s.samplePow, chunk))
		t += chunk
		remaining -= chunk
	}
}

// outage performs the JIT checkpoint, powers the system off, recharges,
// restores, and reboots.
func (s *System) outage() {
	s.outages++

	// 1. JIT checkpoint: dirty DCache blocks + all volatile registers.
	// The address list is only needed for the non-ideal backup/restore
	// walk; it goes into a reused scratch buffer so an outage allocates
	// nothing. Ideal mode needs just the count, and only for telemetry.
	dirty := 0
	var bkNJ float64
	if s.cfg.Ideal {
		if s.cfg.RecordCycles || s.tr != nil {
			dirty = s.data.cache.DirtyCount()
		}
	} else {
		s.dirtyScratch = s.data.cache.DirtyAddrsAppend(s.dirtyScratch[:0])
		dirty = len(s.dirtyScratch)

		var bkCycles uint64
		if s.flt != nil && s.flt.ckpt != nil {
			bkCycles, bkNJ = s.checkpointWalk()
		} else {
			for range s.dirtyScratch {
				wc, wnj := s.nvm.Write(mem.CheckpointWrite)
				bkCycles += wc
				bkNJ += wnj
			}
		}
		bkCycles += 16 // register file into NVFFs
		bkNJ += energy.RegisterBackupNJ
		if bkNJ > s.cap.GuardEnergyNJ() {
			// The guard band cannot fund this checkpoint: a real system
			// would brown out mid-backup. Count the misprovisioning; the
			// backup itself still completes (see Result.GuardViolations).
			s.guardViolations++
		}
		s.pend.BkRst += bkNJ
		if p := s.prof; p != nil {
			p.energy(profile.ECheckpoint, bkNJ)
			p.cyc.Cycles[profile.CycCheckpoint] += bkCycles
		}
		s.harvest(bkCycles)
		s.capConsume(s.pend.Total())
		s.consumed.Add(s.pend)
		s.pend = energy.Breakdown{}
		s.now += bkCycles
		s.onCycles += bkCycles
	}
	s.inst.ctl.Backup()
	s.data.ctl.Backup()
	if s.tr != nil {
		s.tr.Emit(trace.Event{Kind: trace.KindCheckpoint,
			N: int64(dirty), Value: bkNJ})
	}

	// 2. Power failure wipes all volatile state, including in-flight
	// prefetch reads (their energy is already spent — pure waste).
	if s.prof != nil {
		s.prof.captureWipe(s)
	}
	s.inst.cache.Wipe()
	s.data.cache.Wipe()
	s.inst.buf.Wipe()
	s.data.buf.Wipe()
	for _, sd := range [2]*side{&s.inst, &s.data} {
		if s.tr != nil {
			for _, r := range sd.inflight {
				s.tr.Emit(trace.Event{Kind: trace.KindPrefetchWipe,
					Side: sd.name, Block: r.block, Detail: "inflight"})
			}
		}
		sd.stats.InflightWiped += uint64(len(sd.inflight))
		sd.inflight = sd.inflight[:0]
		sd.minReady = noReady
		sd.throttledQ = sd.throttledQ[:0]
	}
	if s.inst.pf != nil {
		s.inst.pf.Reset()
	}
	if s.data.pf != nil {
		s.data.pf.Reset()
	}
	s.emitCycleStats()
	if s.tr != nil {
		s.tr.Emit(trace.Event{Kind: trace.KindCycleEnd,
			N: int64(s.insts - s.mark.insts)})
	}

	// 3. Dead until the capacitor recharges to Von. No consumption while
	// off; time passes in trace-sample steps.
	off0 := s.offCycles
	for !s.cap.AtOrAboveOn() && s.now < s.maxCycles {
		chunk := power.SampleIntervalCycles - s.now%power.SampleIntervalCycles
		s.capHarvest(power.EnergyNJ(s.powerAt(s.now), chunk))
		s.now += chunk
		s.offCycles += chunk
	}
	if s.prof != nil {
		s.prof.cyc.Cycles[profile.CycOff] += s.offCycles - off0
	}
	// Everything from the restore walk on belongs to the next power cycle.
	s.pcIdx++

	// 4. Reboot: restore registers and the checkpointed dirty blocks.
	if !s.cfg.Ideal {
		var rsCycles uint64
		var rsNJ float64
		for _, addr := range s.dirtyScratch {
			rc, rnj := s.nvm.Read(mem.RestoreRead)
			rsCycles += rc
			rsNJ += rnj
			// Restored blocks re-enter the cache clean (NVM now holds
			// their latest value).
			s.data.cache.Fill(addr, false)
			if s.prof != nil {
				s.prof.unwipe(s, &s.data, addr)
			}
		}
		rsCycles += 12
		rsNJ += energy.RegisterRestoreNJ
		s.pend.BkRst += rsNJ
		if p := s.prof; p != nil {
			p.energy(profile.ERestore, rsNJ)
			p.cyc.Cycles[profile.CycRestore] += rsCycles
		}
		s.harvest(rsCycles)
		s.capConsume(s.pend.Total())
		s.consumed.Add(s.pend)
		s.pend = energy.Breakdown{}
		s.now += rsCycles
		s.onCycles += rsCycles
	}
	s.inst.ctl.OnReboot()
	s.data.ctl.OnReboot()
	if s.tr != nil {
		s.tr.Emit(trace.Event{Kind: trace.KindCycleStart})
	}
	if s.par != nil {
		// s.mark still describes the finished cycle: snapshotCycle below is
		// what rolls it forward.
		s.par.endCycle(s, s.insts-s.mark.insts)
	}
	if s.prof != nil {
		// Closed at the same boundary the paranoid ledger closes (restore
		// already charged), so record and shadow intervals coincide.
		s.prof.flushRecord(s)
	}

	s.flushCycle(dirty)
	s.snapshotCycle()
}

// result finalizes statistics into a Result.
func (s *System) result(completed bool) Result {
	s.inst.buf.Drain()
	s.data.buf.Drain()
	s.inst.cache.DrainPrefetchStats()
	s.data.cache.DrainPrefetchStats()

	collect := func(sd *side) SideStats {
		st := sd.stats
		st.ToCache = s.cfg.PrefetchToCache
		// Still-in-flight reads at end of run never served anyone.
		st.Cache = sd.cache.Stats()
		st.Buffer = sd.buf.Stats()
		st.IPEX = sd.ctl.Stats()
		return st
	}
	s.flushCycle(s.data.cache.DirtyBlocks())
	if m := s.cfg.Metrics; m != nil {
		m.Counter("run.insts").Add(s.insts)
		m.Counter("run.cycles").Add(s.now)
		m.Counter("run.on_cycles").Add(s.onCycles)
		m.Counter("run.off_cycles").Add(s.offCycles)
		m.Counter("run.outages").Add(s.outages)
		m.Counter("run.guard_violations").Add(s.guardViolations)
		for _, sd := range [2]*side{&s.inst, &s.data} {
			p := sd.name + "."
			cs, bs := sd.cache.Stats(), sd.buf.Stats()
			m.Counter(p + "accesses").Add(cs.Accesses)
			m.Counter(p + "misses").Add(cs.Misses)
			m.Counter(p + "pf_issued").Add(sd.stats.PrefetchIssued)
			m.Counter(p + "pf_throttled").Add(sd.stats.PrefetchThrottled)
			m.Counter(p + "pf_reissued").Add(sd.stats.PrefetchReissued)
			m.Counter(p + "pf_useful").Add(cs.PrefetchedUseful + bs.UsefulEvicted)
			m.Counter(p + "pf_wiped_cache").Add(cs.PrefetchedWiped)
			m.Counter(p + "pf_wiped_buffer").Add(bs.WipedUnused)
			m.Counter(p + "pf_wiped_inflight").Add(sd.stats.InflightWiped)
		}
		m.Gauge("energy.total_nj").Add(s.consumed.Total())
		m.Gauge("energy.cache_nj").Add(s.consumed.Cache)
		m.Gauge("energy.memory_nj").Add(s.consumed.Memory)
		m.Gauge("energy.compute_nj").Add(s.consumed.Compute)
		m.Gauge("energy.bkrst_nj").Add(s.consumed.BkRst)
	}
	r := Result{
		App:             s.wl.Name(),
		Trace:           s.trace.Name,
		Completed:       completed,
		Insts:           s.insts,
		Cycles:          s.now,
		OnCycles:        s.onCycles,
		OffCycles:       s.offCycles,
		Outages:         s.outages,
		Energy:          s.consumed,
		Inst:            collect(&s.inst),
		Data:            collect(&s.data),
		NVM:             s.nvm.Stats(),
		GuardViolations: s.guardViolations,
		PowerCycleLog:   s.cycleLog,
	}
	if s.flt != nil {
		fs := s.flt.stats
		r.Faults = &fs
	}
	if s.prof != nil {
		// After the stat drains above, so the outcome split matches the
		// Result's counters; before finalChecks, which cross-checks it.
		r.Profile = s.prof.finish(s)
	}
	if s.par != nil {
		s.par.finalChecks(s, &r)
		rep := s.par.rep
		r.Invariants = &rep
	}
	return r
}
