// Package nvp implements the nonvolatile-processor system simulator: a
// single in-order core (200 MHz) with volatile ICache/DCache, per-cache
// hardware prefetchers and prefetch buffers, optional IPEX controllers, an
// on-chip NVM main memory, and a capacitor fed by a replayed power trace.
// The system JIT-checkpoints its volatile state when the voltage monitor
// fires and resumes from the failure point after recharging — the
// NVSRAMCache organization the paper builds on.
//
// The simulation is trace-driven and cycle-approximate: every committed
// instruction advances time by its base cycle plus any miss stalls, and
// energy is integrated per event (dynamic) and per elapsed on-cycle
// (leakage). Performance is wall-clock time — on-time plus recharge time —
// under a fixed input-energy trace, exactly the paper's methodology for
// fair cross-configuration comparison.
package nvp

import (
	"fmt"

	"ipex/internal/capacitor"
	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/fault"
	"ipex/internal/prefetch"
	"ipex/internal/trace"
)

// Config assembles one system. The zero value is not runnable; start from
// DefaultConfig.
type Config struct {
	// ICacheSize/DCacheSize are per-cache capacities in bytes (paper
	// default 2 kB each); Ways the associativity (default 4).
	ICacheSize int
	DCacheSize int
	Ways       int

	// PrefetchBufEntries is the per-cache prefetch buffer depth in 16 B
	// entries (paper default 4 = 64 B). In the default prefetch-to-cache
	// organization the buffer stages in-flight prefetch reads (bounding
	// the outstanding count); in buffer mode it also holds completed
	// blocks until use.
	PrefetchBufEntries int

	// PrefetchToCache selects where completed prefetches live. True (the
	// default) follows the paper's Figures 5/6: prefetched blocks are
	// loaded into the volatile cache, where an outage wipes the
	// not-yet-used ones — the energy waste IPEX targets. False keeps
	// completed blocks in the small prefetch buffer until first use
	// (§6's pollution-free variant), which bounds outage losses to the
	// buffer size; it is kept as an ablation.
	PrefetchToCache bool

	// IPrefetcher/DPrefetcher choose the per-cache prefetcher
	// (prefetch.KindNone disables one side).
	IPrefetcher prefetch.Kind
	DPrefetcher prefetch.Kind

	// IPrefetcherFactory/DPrefetcherFactory, when non-nil, override the
	// Kind selection with a caller-built prefetcher. A factory (rather
	// than an instance) keeps runs independent: every simulation gets a
	// fresh prefetcher. This is how user prefetchers integrate with IPEX
	// (see examples/customprefetcher).
	IPrefetcherFactory func() prefetch.Prefetcher
	DPrefetcherFactory func() prefetch.Prefetcher

	// IPrefetcherID/DPrefetcherID name the corresponding factory for
	// content-identity purposes: a func has no stable serializable
	// identity, so journaling and result caching key factory-built
	// prefetchers by this string instead. The name must change whenever
	// the factory's behaviour changes (treat it like a version tag, e.g.
	// "bitmap/v2"); two different factories under one ID would replay each
	// other's results. Cells whose factory is installed without an ID are
	// refused by the journal and the result cache — they always simulate.
	// Setting an ID without its factory is a configuration error.
	IPrefetcherID string
	DPrefetcherID string

	// InitialDegree is the conventional prefetch degree (R_ipd, default 2).
	InitialDegree int

	// IPEXInst/IPEXData attach an IPEX controller to the instruction/data
	// prefetcher. IPEX holds the controller parameters (shared by both).
	IPEXInst bool
	IPEXData bool
	IPEX     core.Config

	// NVM selects the main-memory technology/size parameters.
	NVM energy.NVMParams

	// Capacitor holds the storage and voltage-monitor parameters.
	Capacitor capacitor.Config

	// Ideal zeroes all backup/restore costs: the paper's NVSRAMCache
	// (ideal) upper bound (Fig. 11).
	Ideal bool

	// DupSuppress enables the §5.1 optimization: a miss that finds an
	// in-flight prefetch for its block waits for it instead of issuing a
	// duplicate NVM request. On by default; the ablation turns it off.
	DupSuppress bool

	// ReissueOnExit implements the extension §5.1 leaves as future work:
	// when IPEX returns to high-performance mode (an upward threshold
	// crossing), the prefetches it throttled earlier in the cycle are
	// reissued from a small queue. Off by default, like the paper.
	ReissueOnExit bool

	// GateAddressGen implements the §5.2 optimization for complex
	// prefetchers: when IPEX has throttled the degree to zero, the
	// prefetcher's energy-consuming address generation (table lookups) is
	// disabled entirely rather than merely discarding its candidates. It
	// only affects prefetchers that implement prefetch.AddressGenCoster
	// and only fires while an attached IPEX holds the degree at 0. Off by
	// default: the paper's evaluated system (Tables 3/4) does not include
	// it; §5.2 presents it as an integration opportunity.
	GateAddressGen bool

	// RecordCycles collects a per-power-cycle log in Result.PowerCycleLog
	// (cycle lengths, progress, prefetch/throttle counts, doomed
	// prefetches) for analyses like the paper's Figure 7 walkthrough. Off
	// by default: long weak-trace runs can accumulate thousands of cycles.
	RecordCycles bool

	// MaxCycles aborts a run that exceeds this wall-clock budget (e.g. a
	// power trace too weak to ever finish). 0 means the default cap.
	MaxCycles uint64

	// Tracer, when non-nil, receives the run's event stream (power-cycle
	// boundaries, checkpoints, prefetch lifecycle, IPEX decisions) as JSON
	// Lines. One tracer serves one run at a time: it carries the run's
	// cycle clock. Nil (the default) costs nothing — every emission site
	// is a single nil compare.
	Tracer *trace.Tracer

	// Metrics, when non-nil, accumulates named end-of-run counters
	// (prefetch outcomes, energy split, outage counts). A registry may be
	// shared across runs to aggregate a sweep. Nil costs nothing.
	Metrics *trace.Registry

	// Faults, when non-nil with at least one active injector family,
	// applies the deterministic fault schedule it describes: a non-ideal
	// voltage monitor feeding IPEX, failing checkpoint writes, and harvest
	// anomalies (see internal/fault). Nil — or a config with every family
	// disabled — leaves the simulation bit-identical to a fault-free run.
	// Result.Faults reports the injected-fault counts.
	Faults *fault.Config

	// Paranoid enables the runtime invariant checker: per-power-cycle
	// energy-conservation and forward-progress checks plus end-of-run stats
	// consistency, reported in Result.Invariants. It never alters simulated
	// behaviour — a violation is diagnosed, not repaired.
	Paranoid bool

	// DisableFastPaths forces the generic per-access interpreter loop even
	// for configurations eligible for a specialized fast path (see
	// fastloop.go). The fast paths are asserted bit-identical to the
	// generic loop by the golden suite; this knob exists for that
	// cross-check, for per-path benchmarking, and as an escape hatch while
	// diagnosing a suspected fast-path divergence. Off (fast paths on) by
	// default.
	DisableFastPaths bool

	// Profile enables the cycle/energy attribution profiler: every simulated
	// cycle and every nanojoule drained from the capacitor is charged to a
	// category (compute, miss stalls, checkpoint, restore, prefetch traffic,
	// outage backfill, leakage, dead time), accumulated per power cycle and
	// in aggregate in Result.Profile. Observer-only: results are unchanged
	// with it on, and off (the default) it costs one nil compare per hook.
	// Combine with Paranoid to cross-check the profiler's drain ledger
	// against the shadow energy ledger bit-for-bit.
	Profile bool
}

// DefaultMaxCycles is the default wall-clock abort budget (2.5 s of
// simulated time at 200 MHz).
const DefaultMaxCycles = 500_000_000

// DefaultConfig returns the paper's Table 1 system: 2 kB 4-way caches,
// 4-entry prefetch buffers, sequential + stride prefetchers at degree 2,
// 16 MB ReRAM, 0.47 µF capacitor, IPEX off.
func DefaultConfig() Config {
	capCfg := capacitor.DefaultConfig()
	return Config{
		ICacheSize:         energy.DefaultCacheSize,
		DCacheSize:         energy.DefaultCacheSize,
		Ways:               4,
		PrefetchBufEntries: 4,
		PrefetchToCache:    true,
		IPrefetcher:        prefetch.KindSequential,
		DPrefetcher:        prefetch.KindStride,
		InitialDegree:      2,
		IPEX:               core.DefaultConfig(capCfg.Vbackup, capCfg.Von),
		NVM:                energy.NVMFor(energy.ReRAM, 16<<20),
		Capacitor:          capCfg,
		DupSuppress:        true,
		MaxCycles:          DefaultMaxCycles,
	}
}

// WithIPEX returns a copy of c with IPEX attached to both prefetchers.
func (c Config) WithIPEX() Config {
	c.IPEXInst = true
	c.IPEXData = true
	c.IPEX.Enabled = true
	return c
}

// WithIPEXData returns a copy of c with IPEX attached to the data
// prefetcher only (the paper's "+IPEX for Default Data Prefetcher" bars).
func (c Config) WithIPEXData() Config {
	c.IPEXInst = false
	c.IPEXData = true
	c.IPEX.Enabled = true
	return c
}

// WithoutPrefetch returns a copy of c with both prefetchers disabled (the
// "NVSRAMCache (No Prefetcher)" bars).
func (c Config) WithoutPrefetch() Config {
	c.IPrefetcher = prefetch.KindNone
	c.DPrefetcher = prefetch.KindNone
	c.IPEXInst = false
	c.IPEXData = false
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.ICacheSize <= 0 || c.DCacheSize <= 0 {
		return fmt.Errorf("nvp: cache sizes must be positive")
	}
	if c.Ways <= 0 {
		return fmt.Errorf("nvp: associativity must be positive")
	}
	if c.PrefetchBufEntries <= 0 {
		return fmt.Errorf("nvp: prefetch buffer needs at least one entry")
	}
	if c.InitialDegree < 1 || c.InitialDegree > prefetch.MaxDegree {
		return fmt.Errorf("nvp: initial degree %d out of [1,%d]", c.InitialDegree, prefetch.MaxDegree)
	}
	// A factory ID without its factory would make two behaviourally
	// identical configs hash differently (and suggests the caller thinks a
	// factory is installed when it is not); reject it up front.
	if c.IPrefetcherID != "" && c.IPrefetcherFactory == nil {
		return fmt.Errorf("nvp: IPrefetcherID %q set without an IPrefetcherFactory", c.IPrefetcherID)
	}
	if c.DPrefetcherID != "" && c.DPrefetcherFactory == nil {
		return fmt.Errorf("nvp: DPrefetcherID %q set without a DPrefetcherFactory", c.DPrefetcherID)
	}
	if c.NVM.SizeBytes <= 0 {
		return fmt.Errorf("nvp: NVM size must be positive, got %d", c.NVM.SizeBytes)
	}
	if err := c.Capacitor.Validate(); err != nil {
		return err
	}
	if c.IPEXInst || c.IPEXData {
		if err := c.IPEX.Validate(); err != nil {
			return err
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}
