package nvp

import (
	"math"
	"reflect"
	"testing"

	"ipex/internal/prefetch"
	"ipex/internal/profile"
)

// profiledRun runs one app with the attribution profiler and the paranoid
// checker enabled, returning the Result (which carries both reports).
func profiledRun(t *testing.T, app string, scale float64, mut func(*Config)) Result {
	t.Helper()
	r := runApp(t, app, scale, func(c *Config) {
		c.Profile = true
		c.Paranoid = true
		if mut != nil {
			mut(c)
		}
	})
	if r.Profile == nil {
		t.Fatal("Config.Profile set but Result.Profile is nil")
	}
	if r.Invariants == nil {
		t.Fatal("Config.Paranoid set but Result.Invariants is nil")
	}
	return r
}

// checkAttribution asserts the profiler's hard invariants on one Result:
// cycle categories sum exactly to simulated time (per power cycle and in
// aggregate), the drain ledger matches the paranoid shadow ledger
// bit-for-bit (per power cycle via the runtime check, overall via
// Report.LedgerNJ), and the per-category energy split closes against the
// ledger up to float64 reassociation.
func checkAttribution(t *testing.T, label string, r Result) {
	t.Helper()
	p := r.Profile

	if !r.Invariants.Clean() {
		t.Errorf("%s: paranoid checker flagged violations: %s", label, r.Invariants.Summary())
	}

	// Aggregate cycle attribution: exact, no tolerance.
	if p.TotalCycles != r.Cycles {
		t.Errorf("%s: profile TotalCycles %d != Result.Cycles %d", label, p.TotalCycles, r.Cycles)
	}
	if got := p.CycleTotal(); got != r.Cycles {
		t.Errorf("%s: cycle categories sum to %d, want exactly %d", label, got, r.Cycles)
	}
	if p.Insts != r.Insts {
		t.Errorf("%s: profile insts %d != result insts %d", label, p.Insts, r.Insts)
	}

	// Per-power-cycle records: spans tile [0, Cycles) exactly and category
	// sums equal each span; record ledgers sum to... a reassociated total,
	// but each record's ledger was already compared bitwise against the
	// shadow ledger at runtime (profile_cycle_ledger check above).
	var prevEnd uint64
	for i := range p.PowerCycles {
		c := &p.PowerCycles[i]
		if c.Index != uint64(i) {
			t.Fatalf("%s: record %d has index %d", label, i, c.Index)
		}
		if c.StartCycle != prevEnd {
			t.Errorf("%s: record %d starts at %d, previous ended at %d", label, i, c.StartCycle, prevEnd)
		}
		prevEnd = c.StartCycle + c.TotalCycles()
	}
	if prevEnd != r.Cycles {
		t.Errorf("%s: records tile to %d cycles, want exactly %d", label, prevEnd, r.Cycles)
	}

	// Energy ledger: bitwise equal to the paranoid shadow ledger.
	if p.LedgerNJ != r.Invariants.LedgerNJ {
		t.Errorf("%s: profile ledger %v != shadow ledger %v (must be bit-identical)",
			label, p.LedgerNJ, r.Invariants.LedgerNJ)
	}
	// Category split closes against the ledger (summation reassociation
	// only — the same tolerance the runtime balance checks use).
	et := p.EnergyTotalNJ()
	if diff := math.Abs(et - p.LedgerNJ); diff > 1e-9*(et+p.LedgerNJ)+1e-9 {
		t.Errorf("%s: energy categories sum %.9f nJ vs ledger %.9f nJ (off by %.3g)",
			label, et, p.LedgerNJ, diff)
	}
	// And the ledger itself must account for (essentially all of) the
	// consumed energy the Result reports.
	if diff := math.Abs(p.LedgerNJ - r.Energy.Total()); diff > 1e-9*(p.LedgerNJ+r.Energy.Total())+1e-9 {
		t.Errorf("%s: ledger %.9f nJ vs consumed total %.9f nJ (off by %.3g)",
			label, p.LedgerNJ, r.Energy.Total(), diff)
	}

	// Prefetch outcomes resolve consistently.
	o := p.Prefetch
	if o.Useful+o.Wiped+o.Inaccurate+o.Pending() != o.Issued {
		t.Errorf("%s: outcomes don't partition issues: %+v", label, o)
	}
	if want := r.Inst.WipedUnused() + r.Data.WipedUnused(); o.Wiped != want {
		t.Errorf("%s: profile wiped %d != result wiped %d", label, o.Wiped, want)
	}
}

// TestAttributionInvariantsAcrossPrefetchers is the tentpole invariant
// sweep: for every baseline prefetcher (and both IPEX attachments), cycle
// attribution sums exactly to total simulated cycles and the energy ledger
// matches the paranoid shadow ledger exactly, per power cycle (runtime
// check) and overall.
func TestAttributionInvariantsAcrossPrefetchers(t *testing.T) {
	kinds := []prefetch.Kind{
		prefetch.KindNone, prefetch.KindSequential, prefetch.KindStride,
		prefetch.KindMarkov, prefetch.KindTIFS, prefetch.KindGHB,
		prefetch.KindBO, prefetch.KindAMPM,
	}
	for _, k := range kinds {
		k := k
		t.Run(string(k), func(t *testing.T) {
			r := profiledRun(t, "fft", 0.08, func(c *Config) {
				c.IPrefetcher = prefetch.KindSequential
				c.DPrefetcher = k
				if k == prefetch.KindNone {
					c.IPrefetcher = prefetch.KindNone
				}
			})
			checkAttribution(t, string(k), r)
		})
		t.Run(string(k)+"/ipex", func(t *testing.T) {
			r := profiledRun(t, "qsort", 0.08, func(c *Config) {
				c.DPrefetcher = k
				*c = c.WithIPEX()
			})
			checkAttribution(t, string(k)+"+ipex", r)
		})
	}
}

// TestAttributionBufferMode covers the prefetch-buffer organization and the
// ideal (free checkpoint) ablation.
func TestAttributionBufferMode(t *testing.T) {
	r := profiledRun(t, "gsme", 0.08, func(c *Config) {
		c.PrefetchToCache = false
	})
	checkAttribution(t, "buffer", r)

	r = profiledRun(t, "fft", 0.08, func(c *Config) {
		c.Ideal = true
	})
	checkAttribution(t, "ideal", r)
	if r.Profile.Cycles[profile.CycCheckpoint] != 0 || r.Profile.Cycles[profile.CycRestore] != 0 {
		t.Error("ideal run attributed cycles to checkpoint/restore")
	}
	if r.Profile.EnergyNJ[profile.ECheckpoint] != 0 || r.Profile.EnergyNJ[profile.ERestore] != 0 {
		t.Error("ideal run attributed energy to checkpoint/restore")
	}
}

// TestProfilingDoesNotPerturbResult: profiling is observer-only — the
// Result with it on must deep-equal the Result with it off, field for
// field, once the report itself is stripped.
func TestProfilingDoesNotPerturbResult(t *testing.T) {
	plain := runApp(t, "fft", 0.1, nil)
	prof := runApp(t, "fft", 0.1, func(c *Config) { c.Profile = true })
	if prof.Profile == nil {
		t.Fatal("no profile report")
	}
	prof.Profile = nil
	if !reflect.DeepEqual(plain, prof) {
		t.Errorf("profiling changed the result:\nplain %+v\nprofiled %+v", plain, prof)
	}
}

// TestAttributionCategoriesPopulated sanity-checks that a run with outages
// actually lands cycles and energy in the categories the paper's argument
// is about.
func TestAttributionCategoriesPopulated(t *testing.T) {
	r := profiledRun(t, "fft", 0.1, nil)
	p := r.Profile
	if r.Outages == 0 {
		t.Fatal("test trace produced no outages; attribution categories untestable")
	}
	if p.Cycles[profile.CycCompute] != r.Insts {
		t.Errorf("compute cycles %d != insts %d (1 base cycle per inst)", p.Cycles[profile.CycCompute], r.Insts)
	}
	if p.Cycles[profile.CycOff] != r.OffCycles {
		t.Errorf("off cycles %d != result OffCycles %d", p.Cycles[profile.CycOff], r.OffCycles)
	}
	for _, c := range []profile.CycleCat{profile.CycIMissStall, profile.CycCheckpoint, profile.CycRestore} {
		if p.Cycles[c] == 0 {
			t.Errorf("category %s got zero cycles", profile.CycleCatNames[c])
		}
	}
	for _, c := range []profile.EnergyCat{profile.ECompute, profile.EIMiss, profile.EPrefetch,
		profile.ECheckpoint, profile.ERestore, profile.ELeakage} {
		if p.EnergyNJ[c] <= 0 {
			t.Errorf("category %s got no energy", profile.EnergyCatNames[c])
		}
	}
	if len(p.PowerCycles) != int(r.Outages)+1 {
		t.Errorf("%d records for %d outages (want outages+1)", len(p.PowerCycles), r.Outages)
	}
	if p.String() == "" || p.CycleTable(5) == "" {
		t.Error("empty renderings")
	}
}

// TestBackfillAttribution: with outages and no prefetchers, some demand
// refetches must be classified as re-execution backfill.
func TestBackfillAttribution(t *testing.T) {
	r := profiledRun(t, "fft", 0.1, func(c *Config) { *c = c.WithoutPrefetch() })
	if r.Outages == 0 {
		t.Skip("no outages in test trace")
	}
	p := r.Profile
	if p.Cycles[profile.CycBackfill] == 0 {
		t.Error("no backfill stall cycles attributed despite outages")
	}
	if p.EnergyNJ[profile.EBackfill] <= 0 {
		t.Error("no backfill energy attributed despite outages")
	}
	if p.EnergyNJ[profile.EPrefetch] != 0 || p.Prefetch.Issued != 0 {
		t.Error("prefetch category populated with prefetchers disabled")
	}
	checkAttribution(t, "no-prefetch", r)
}
