package nvp

import (
	"testing"

	"ipex/internal/workload"
)

func TestPowerCycleLogDisabled(t *testing.T) {
	r := runApp(t, "gsme", 0.1, nil)
	if len(r.PowerCycleLog) != 0 {
		t.Errorf("telemetry recorded while disabled: %d entries", len(r.PowerCycleLog))
	}
}

func TestPowerCycleLogConsistency(t *testing.T) {
	r := runApp(t, "jpegd", 0.3, func(c *Config) { c.RecordCycles = true })
	if r.Outages == 0 {
		t.Skip("no outages at this scale")
	}
	// One entry per outage plus the final partial cycle.
	if got, want := uint64(len(r.PowerCycleLog)), r.Outages+1; got != want {
		t.Fatalf("log entries = %d, want %d (outages+1)", got, want)
	}

	var insts, on, issued, throttled, wiped uint64
	for i, pc := range r.PowerCycleLog {
		insts += pc.Insts
		on += pc.OnCycles
		issued += pc.PrefetchIssued
		throttled += pc.PrefetchThrottled
		wiped += pc.WipedUnused
		if pc.DirtyAtBackup < 0 || pc.DirtyAtBackup > DefaultConfig().DCacheSize/16 {
			t.Errorf("cycle %d: dirty count %d out of range", i, pc.DirtyAtBackup)
		}
		if i > 0 && pc.StartCycle <= r.PowerCycleLog[i-1].StartCycle {
			t.Errorf("cycle %d: start cycles not increasing", i)
		}
	}
	// Per-cycle deltas must sum to the run totals.
	if insts != r.Insts {
		t.Errorf("cycle insts sum %d != total %d", insts, r.Insts)
	}
	if on != r.OnCycles {
		t.Errorf("cycle on-cycles sum %d != total %d", on, r.OnCycles)
	}
	if issued != r.PrefetchesIssued() {
		t.Errorf("cycle issued sum %d != total %d", issued, r.PrefetchesIssued())
	}
	if throttled != r.Inst.PrefetchThrottled+r.Data.PrefetchThrottled {
		t.Errorf("cycle throttled sum %d != total", throttled)
	}
	if wiped != r.Inst.WipedUnused()+r.Data.WipedUnused() {
		t.Errorf("cycle wiped sum %d != total %d", wiped,
			r.Inst.WipedUnused()+r.Data.WipedUnused())
	}
}

func TestGuardViolationsDefaultZero(t *testing.T) {
	// The default guard band (Vbackup 3.18 → Voff 2.9) covers a full
	// 128-block checkpoint; no run should violate it.
	for _, app := range []string{"pegwite", "qsort"} {
		r := runApp(t, app, 0.2, nil)
		if r.GuardViolations != 0 {
			t.Errorf("%s: %d guard violations with the default band", app, r.GuardViolations)
		}
	}
}

func TestGuardViolationsDetected(t *testing.T) {
	// Shrink the guard band until a write-heavy checkpoint cannot fit.
	r := runApp(t, "pegwite", 0.2, func(c *Config) {
		c.Capacitor.Vbackup = 3.18
		c.Capacitor.Voff = 3.175
	})
	if r.Outages == 0 {
		t.Skip("no outages")
	}
	if r.GuardViolations == 0 {
		t.Error("a 0.005V guard band should not fund checkpoints, yet no violation was counted")
	}
}

func TestTelemetryDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordCycles = true
	a, err := Run(workload.MustNew("fft", 0.1), testTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(workload.MustNew("fft", 0.1), testTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.PowerCycleLog) != len(b.PowerCycleLog) {
		t.Fatal("log lengths differ")
	}
	for i := range a.PowerCycleLog {
		if a.PowerCycleLog[i] != b.PowerCycleLog[i] {
			t.Fatalf("cycle %d differs", i)
		}
	}
}
