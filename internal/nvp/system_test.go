package nvp

import (
	"testing"

	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/workload"
)

// testTrace returns a short deterministic RFHome trace shared by the tests.
func testTrace() *power.Trace {
	return power.Generate(power.RFHome, 20000, 1)
}

func runApp(t *testing.T, app string, scale float64, mut func(*Config)) Result {
	t.Helper()
	cfg := DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	r, err := Run(workload.MustNew(app, scale), testTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunCompletes(t *testing.T) {
	r := runApp(t, "fft", 0.1, nil)
	if !r.Completed {
		t.Fatal("run did not complete")
	}
	if r.Insts != uint64(workload.MustNew("fft", 0.1).Len()) {
		t.Errorf("insts = %d, want the workload length", r.Insts)
	}
	if r.Cycles != r.OnCycles+r.OffCycles {
		t.Errorf("cycle split inconsistent: %d != %d + %d", r.Cycles, r.OnCycles, r.OffCycles)
	}
	if r.OnCycles < r.Insts {
		t.Error("on-cycles below instruction count (CPI >= 1 on an in-order core)")
	}
	if r.App != "fft" || r.Trace != "RFHome" {
		t.Errorf("labels wrong: %q %q", r.App, r.Trace)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runApp(t, "qsort", 0.1, nil)
	b := runApp(t, "qsort", 0.1, nil)
	if a.Cycles != b.Cycles || a.Energy != b.Energy || a.Outages != b.Outages {
		t.Errorf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestEnergyBucketsPopulated(t *testing.T) {
	r := runApp(t, "gsme", 0.1, nil)
	e := r.Energy
	if e.Cache <= 0 || e.Memory <= 0 || e.Compute <= 0 {
		t.Errorf("energy buckets empty: %+v", e)
	}
	if r.Outages > 0 && e.BkRst <= 0 {
		t.Error("outages occurred but no backup/restore energy")
	}
	if e.Memory < e.Cache {
		t.Error("NVM (12.1 mW leak) must dominate cache energy in this system")
	}
}

func TestOutagesWipeProgressless(t *testing.T) {
	// More intense energy draw (PCM) must not lose instructions: JIT
	// checkpointing resumes from the failure point.
	r := runApp(t, "pegwitd", 0.1, nil)
	if r.Outages == 0 {
		t.Skip("trace too generous for outages at this scale")
	}
	if r.Insts != uint64(workload.MustNew("pegwitd", 0.1).Len()) {
		t.Error("instructions lost across outages")
	}
}

func TestIdealRunsFasterOrEqual(t *testing.T) {
	base := runApp(t, "jpegd", 0.1, nil)
	ideal := runApp(t, "jpegd", 0.1, func(c *Config) { c.Ideal = true })
	if ideal.Cycles > base.Cycles {
		t.Errorf("ideal (%d cycles) slower than non-ideal (%d)", ideal.Cycles, base.Cycles)
	}
	if ideal.Energy.BkRst != 0 {
		t.Errorf("ideal run charged Bk+Rst energy: %v", ideal.Energy.BkRst)
	}
	if base.Outages > 0 && base.Energy.BkRst == 0 {
		t.Error("non-ideal run has outages but no Bk+Rst energy")
	}
}

func TestNoPrefetchIssuesNothing(t *testing.T) {
	r := runApp(t, "fft", 0.1, func(c *Config) { *c = c.WithoutPrefetch() })
	if r.PrefetchesIssued() != 0 || r.NVM.PrefetchReads != 0 {
		t.Errorf("prefetch-free config issued prefetches: %d / %d",
			r.PrefetchesIssued(), r.NVM.PrefetchReads)
	}
	if r.Inst.Cache.BufHits != 0 || r.Data.Cache.BufHits != 0 {
		t.Error("buffer hits without prefetching")
	}
}

func TestPrefetchersIssueAndCover(t *testing.T) {
	r := runApp(t, "gsme", 0.2, nil)
	if r.Inst.PrefetchIssued == 0 {
		t.Error("instruction prefetcher idle")
	}
	if r.Data.PrefetchIssued == 0 {
		t.Error("data prefetcher idle")
	}
	if r.Inst.Coverage() <= 0 {
		t.Error("instruction prefetches never covered a miss")
	}
	if r.NVM.PrefetchReads != r.Inst.PrefetchIssued+r.Data.PrefetchIssued {
		t.Errorf("NVM prefetch reads (%d) != issued (%d)",
			r.NVM.PrefetchReads, r.Inst.PrefetchIssued+r.Data.PrefetchIssued)
	}
}

func TestPrefetchAccountingIdentity(t *testing.T) {
	// Default (prefetch-to-cache) mode: every issued prefetch ends as
	// useful, useless (incl. wiped), redundant, or served-while-in-flight;
	// at most a staging buffer's worth may remain unclassified in flight
	// at end of run.
	r := runApp(t, "rijndaeld", 0.2, nil)
	for _, sd := range []SideStats{r.Inst, r.Data} {
		classified := sd.Cache.PrefetchedUseful + sd.Cache.PrefetchedUseless +
			sd.InflightServed + sd.InflightRedundant + sd.InflightWiped
		if classified > sd.PrefetchIssued {
			t.Errorf("classified (%d) exceeds issued (%d)", classified, sd.PrefetchIssued)
		}
		if sd.PrefetchIssued-classified > 4 {
			t.Errorf("%d prefetches unaccounted (issued %d, classified %d)",
				sd.PrefetchIssued-classified, sd.PrefetchIssued, classified)
		}
	}

	// Buffer mode keeps the strict buffer identity.
	rb := runApp(t, "rijndaeld", 0.2, func(c *Config) { c.PrefetchToCache = false })
	for _, sd := range []SideStats{rb.Inst, rb.Data} {
		if sd.Buffer.UsefulEvicted+sd.Buffer.UselessEvicted != sd.Buffer.Inserted {
			t.Errorf("buffer classification incomplete: %+v", sd.Buffer)
		}
		if sd.Buffer.Inserted != sd.PrefetchIssued {
			t.Errorf("issued (%d) != inserted (%d)", sd.PrefetchIssued, sd.Buffer.Inserted)
		}
	}
}

func TestIPEXThrottlesAndAccounts(t *testing.T) {
	base := runApp(t, "jpegd", 0.2, nil)
	ipex := runApp(t, "jpegd", 0.2, func(c *Config) { *c = c.WithIPEX() })
	if base.Inst.PrefetchThrottled != 0 {
		t.Error("baseline should never throttle")
	}
	if ipex.Inst.PrefetchThrottled == 0 && ipex.Data.PrefetchThrottled == 0 {
		t.Error("IPEX never throttled anything")
	}
	if ipex.PrefetchesIssued() >= base.PrefetchesIssued() {
		t.Errorf("IPEX issued %d prefetches, baseline %d — no reduction",
			ipex.PrefetchesIssued(), base.PrefetchesIssued())
	}
	// IPEX stats must be wired through.
	if ipex.Inst.IPEX.Issued == 0 {
		t.Error("IPEX controller stats missing")
	}
}

func TestIPEXDataOnly(t *testing.T) {
	r := runApp(t, "qsort", 0.2, func(c *Config) { *c = c.WithIPEXData() })
	if r.Inst.PrefetchThrottled != 0 {
		t.Error("data-only IPEX throttled the instruction side")
	}
	if r.Data.IPEX.Issued+r.Data.IPEX.Throttled == 0 {
		t.Error("data-side controller inactive")
	}
}

func TestDupSuppressReducesDemandReads(t *testing.T) {
	with := runApp(t, "gsme", 0.2, nil)
	without := runApp(t, "gsme", 0.2, func(c *Config) { c.DupSuppress = false })
	if without.NVM.DemandReads <= with.NVM.DemandReads {
		t.Errorf("§5.1 suppression had no effect: %d vs %d demand reads",
			with.NVM.DemandReads, without.NVM.DemandReads)
	}
	if with.Inst.InflightServed == 0 {
		t.Error("suppression never served a miss from an in-flight prefetch")
	}
	if without.Inst.InflightRedundant <= with.Inst.InflightRedundant {
		t.Error("disabling suppression should inflate redundant prefetches")
	}
}

func TestLargerCacheFewerMisses(t *testing.T) {
	small := runApp(t, "jpegd", 0.1, func(c *Config) { c.ICacheSize = 512; c.DCacheSize = 512 })
	big := runApp(t, "jpegd", 0.1, func(c *Config) { c.ICacheSize = 8192; c.DCacheSize = 8192 })
	if big.Inst.Cache.MissRate() >= small.Inst.Cache.MissRate() {
		t.Errorf("8kB ICache missed more than 512B: %v vs %v",
			big.Inst.Cache.MissRate(), small.Inst.Cache.MissRate())
	}
}

func TestWeakTraceHitsBudget(t *testing.T) {
	// An all-zero power trace can never finish; the budget must stop the
	// run and mark it incomplete.
	cfg := DefaultConfig()
	cfg.MaxCycles = 3_000_000
	dead := &power.Trace{Name: "dead", Samples: []float64{0}}
	r, err := Run(workload.MustNew("fft", 0.1), dead, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed {
		t.Error("run completed with zero input energy")
	}
	if r.Cycles < cfg.MaxCycles {
		t.Errorf("stopped early: %d < %d", r.Cycles, cfg.MaxCycles)
	}
}

func TestTrickleHarvestHitsBudgetDuringRecharge(t *testing.T) {
	// 1 µW trickles in far less than the system draws: after the first
	// outage the recharge back to Von takes ~150M cycles, so a 3M budget
	// must expire inside the recharge loop (not hang, not complete).
	cfg := DefaultConfig()
	cfg.MaxCycles = 3_000_000
	trickle := &power.Trace{Name: "trickle", Samples: []float64{1e-6}}
	r, err := Run(workload.MustNew("fft", 0.1), trickle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed {
		t.Error("run completed on a 1 µW supply")
	}
	if r.Cycles < cfg.MaxCycles {
		t.Errorf("stopped early: %d < %d", r.Cycles, cfg.MaxCycles)
	}
	if r.Outages == 0 {
		t.Error("initial charge never ran out; trickle premise broken")
	}
	// The budget abort must still produce a self-consistent wall clock.
	if r.OnCycles+r.OffCycles != r.Cycles {
		t.Errorf("cycle split broken: %d + %d != %d", r.OnCycles, r.OffCycles, r.Cycles)
	}
}

func TestBudgetAbortKeepsParanoidClean(t *testing.T) {
	// A truncated run is incomplete, not corrupt: the runtime invariant
	// checker must stay clean when the budget expires mid-workload.
	cfg := DefaultConfig()
	cfg.MaxCycles = 3_000_000
	cfg.Paranoid = true
	trickle := &power.Trace{Name: "trickle", Samples: []float64{1e-6}}
	r, err := Run(workload.MustNew("fft", 0.1), trickle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed {
		t.Fatal("run completed; test premise broken")
	}
	if r.Invariants == nil {
		t.Fatal("paranoid run carries no report")
	}
	if !r.Invariants.Clean() {
		t.Errorf("budget abort flagged as corruption: %s", r.Invariants.Summary())
	}
}

func TestValidation(t *testing.T) {
	wl := workload.MustNew("fft", 0.01)
	tr := testTrace()

	if _, err := Run(nil, tr, DefaultConfig()); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Run(wl, nil, DefaultConfig()); err == nil {
		t.Error("nil trace accepted")
	}
	bad := DefaultConfig()
	bad.ICacheSize = 0
	if _, err := Run(wl, tr, bad); err == nil {
		t.Error("zero cache size accepted")
	}
	bad = DefaultConfig()
	bad.InitialDegree = 99
	if _, err := Run(wl, tr, bad); err == nil {
		t.Error("absurd degree accepted")
	}
	bad = DefaultConfig()
	bad.IPrefetcher = "warpdrive"
	if _, err := Run(wl, tr, bad); err == nil {
		t.Error("unknown prefetcher accepted")
	}
	bad = DefaultConfig().WithIPEX()
	bad.IPEX.Thresholds = nil
	if _, err := Run(wl, tr, bad); err == nil {
		t.Error("IPEX without thresholds accepted")
	}
}

func TestAllPrefetcherCombinations(t *testing.T) {
	for _, ip := range prefetch.InstructionKinds {
		for _, dp := range prefetch.DataKinds {
			r := runApp(t, "fft", 0.05, func(c *Config) {
				c.IPrefetcher = ip
				c.DPrefetcher = dp
			})
			if !r.Completed {
				t.Errorf("%s/%s did not complete", ip, dp)
			}
		}
	}
}

func TestStallAccounting(t *testing.T) {
	r := runApp(t, "pegwitd", 0.1, nil)
	if r.Inst.StallCycles+r.Data.StallCycles >= r.OnCycles {
		t.Error("stalls exceed on-time")
	}
	if r.Data.StallCycles == 0 {
		t.Error("pegwitd must have data stalls")
	}
	if r.StallFraction() <= 0 || r.StallFraction() >= 1 {
		t.Errorf("stall fraction = %v", r.StallFraction())
	}
}

func TestSecondsConversion(t *testing.T) {
	r := Result{Cycles: 200_000_000} // 1 second at 200 MHz
	if r.Seconds() != 1.0 {
		t.Errorf("Seconds = %v", r.Seconds())
	}
}

func TestSideStatsMetrics(t *testing.T) {
	var s SideStats
	if s.Accuracy() != 0 || s.Coverage() != 0 {
		t.Error("zero stats should yield zero metrics")
	}
	// Buffer mode.
	s.Buffer.Inserted = 10
	s.PrefetchIssued = 10
	s.Buffer.UsefulEvicted = 4
	s.Cache.Misses = 20
	s.Cache.BufHits = 5
	if s.Accuracy() != 0.4 {
		t.Errorf("buffer accuracy = %v", s.Accuracy())
	}
	if s.Coverage() != 0.25 {
		t.Errorf("buffer coverage = %v", s.Coverage())
	}
	// Prefetch-to-cache mode.
	c := SideStats{ToCache: true, PrefetchIssued: 10, InflightServed: 1}
	c.Cache.PrefetchedUseful = 4
	c.Cache.Misses = 15
	if c.Accuracy() != 0.5 {
		t.Errorf("cache accuracy = %v", c.Accuracy())
	}
	// covered = 5, would-be misses = useful(4) + misses(15) = 19
	if got := c.Coverage(); got < 0.262 || got > 0.264 {
		t.Errorf("cache coverage = %v", got)
	}
	// WipedUnused switches per mode.
	c.Cache.PrefetchedWiped = 3
	c.InflightWiped = 2
	if c.WipedUnused() != 5 {
		t.Errorf("WipedUnused = %d", c.WipedUnused())
	}
}
