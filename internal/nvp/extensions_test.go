package nvp

import (
	"testing"

	"ipex/internal/prefetch"
)

// The §5.1 future-work extension: throttled prefetches replay when IPEX
// returns to high-performance mode.
func TestReissueOnExit(t *testing.T) {
	base := runApp(t, "jpegd", 0.2, func(c *Config) { *c = c.WithIPEX() })
	re := runApp(t, "jpegd", 0.2, func(c *Config) {
		*c = c.WithIPEX()
		c.ReissueOnExit = true
	})
	if base.Inst.PrefetchReissued != 0 {
		t.Error("reissue counted with the extension off")
	}
	if re.Inst.PrefetchReissued+re.Data.PrefetchReissued == 0 {
		t.Error("extension on but nothing reissued")
	}
	// Reissues cannot exceed what was throttled plus the queue churn; the
	// counts must stay within the issued total.
	if re.Inst.PrefetchReissued > re.Inst.PrefetchIssued {
		t.Error("reissued exceeds issued")
	}
	// Reissues are NVM reads like any other prefetch.
	if re.NVM.PrefetchReads != re.Inst.PrefetchIssued+re.Data.PrefetchIssued {
		t.Errorf("NVM prefetch reads (%d) out of sync with issued (%d)",
			re.NVM.PrefetchReads, re.Inst.PrefetchIssued+re.Data.PrefetchIssued)
	}
}

func TestReissueWithoutIPEXIsInert(t *testing.T) {
	r := runApp(t, "gsme", 0.1, func(c *Config) { c.ReissueOnExit = true })
	if r.Inst.PrefetchReissued != 0 || r.Data.PrefetchReissued != 0 {
		t.Error("reissue fired without IPEX (nothing is ever throttled)")
	}
}

// The §5.2 extension: complex prefetchers' table lookups are gated when
// the degree is throttled to zero.
func TestAddressGenGating(t *testing.T) {
	cfgMut := func(c *Config) {
		*c = c.WithIPEX()
		c.IPrefetcher = prefetch.KindMarkov // table-based: costed + gateable
	}
	gated := runApp(t, "jpegd", 0.2, func(c *Config) {
		cfgMut(c)
		c.GateAddressGen = true
	})
	ungated := runApp(t, "jpegd", 0.2, cfgMut)
	if gated.Inst.AddressGenGated == 0 {
		t.Skip("degree never reached 0 on this trace slice; nothing to gate")
	}
	if ungated.Inst.AddressGenGated != 0 {
		t.Error("gating counted while disabled")
	}
}

func TestAddressGenGateNeverFiresOnBaseline(t *testing.T) {
	r := runApp(t, "jpegd", 0.1, func(c *Config) { c.IPrefetcher = prefetch.KindMarkov })
	if r.Inst.AddressGenGated != 0 {
		t.Error("baseline (no IPEX) gated address generation")
	}
}

func TestAddressGenGateSkipsRegisterPrefetchers(t *testing.T) {
	// Sequential/stride have no table cost; the gate must not suppress
	// them even at degree 0 (their training costs nothing and keeping it
	// preserves the paper's base IPEX behavior).
	r := runApp(t, "gsme", 0.2, func(c *Config) { *c = c.WithIPEX() })
	if r.Inst.AddressGenGated != 0 || r.Data.AddressGenGated != 0 {
		t.Error("gate fired for register-based prefetchers")
	}
}

func TestAMPMRunsInSystem(t *testing.T) {
	r := runApp(t, "susane", 0.1, func(c *Config) { c.DPrefetcher = prefetch.KindAMPM })
	if !r.Completed {
		t.Fatal("AMPM run did not complete")
	}
	if r.Data.PrefetchIssued == 0 {
		t.Error("AMPM issued nothing on a 2-D sweep workload")
	}
}

func TestBufferModeStillWorks(t *testing.T) {
	r := runApp(t, "gsme", 0.1, func(c *Config) { c.PrefetchToCache = false })
	if !r.Completed {
		t.Fatal("buffer-mode run did not complete")
	}
	if r.Inst.Buffer.Inserted == 0 {
		t.Error("buffer mode never inserted prefetches")
	}
	if r.Inst.Cache.PrefetchedUseful != 0 {
		t.Error("buffer mode marked cache lines prefetched")
	}
	if r.Inst.ToCache {
		t.Error("ToCache flag wrong in buffer mode")
	}
}

func TestPrefetchModesDiffer(t *testing.T) {
	// The two organizations are genuinely different machines; their
	// outage-doom profile must differ (cache mode exposes far more
	// unused prefetched state to a wipe).
	cacheMode := runApp(t, "jpegd", 0.3, nil)
	bufMode := runApp(t, "jpegd", 0.3, func(c *Config) { c.PrefetchToCache = false })
	if cacheMode.Outages == 0 || bufMode.Outages == 0 {
		t.Skip("no outages at this scale")
	}
	cw := cacheMode.Inst.WipedUnused() + cacheMode.Data.WipedUnused()
	bw := bufMode.Inst.WipedUnused() + bufMode.Data.WipedUnused()
	if cw == 0 {
		t.Error("cache mode wiped no unused prefetches despite outages")
	}
	// Buffer mode cannot lose more than 2 buffers per outage.
	if bw > bufMode.Outages*uint64(2*DefaultConfig().PrefetchBufEntries) {
		t.Errorf("buffer mode wiped %d > capacity bound", bw)
	}
	_ = cw
}
