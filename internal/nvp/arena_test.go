package nvp

import (
	"reflect"
	"testing"

	"ipex/internal/prefetch"
	"ipex/internal/workload"
)

// arenaTestConfigs is a mixed sequence of configurations deliberately
// ordered so consecutive runs sometimes reuse every arena component,
// sometimes only a few (geometry change, prefetcher change, IPEX toggle).
func arenaTestConfigs() []Config {
	base := DefaultConfig()
	small := DefaultConfig()
	small.ICacheSize = base.ICacheSize / 2
	small.DPrefetcher = prefetch.KindMarkov
	return []Config{
		base,
		base, // full reuse
		base.WithIPEX(),
		base.WithoutPrefetch(),
		small,
		base.WithIPEXData(),
		base, // back to the start
	}
}

// TestArenaMatchesFreshRuns pins the arena's core contract: a recycled
// system produces results bit-identical to a freshly constructed one, for
// every configuration transition in a mixed sweep.
func TestArenaMatchesFreshRuns(t *testing.T) {
	apps := []string{"gsme", "qsort"}
	a := NewArena()
	for _, app := range apps {
		for i, cfg := range arenaTestConfigs() {
			fresh, err := Run(workload.MustNew(app, 0.1), testTrace(), cfg)
			if err != nil {
				t.Fatalf("%s cfg %d fresh: %v", app, i, err)
			}
			recycled, err := a.Run(workload.MustNew(app, 0.1), testTrace(), cfg)
			if err != nil {
				t.Fatalf("%s cfg %d arena: %v", app, i, err)
			}
			if !reflect.DeepEqual(fresh, recycled) {
				t.Errorf("%s cfg %d: arena result diverged from fresh run\nfresh:  %+v\narena:  %+v",
					app, i, fresh, recycled)
			}
		}
	}
}

// TestZeroAllocRun pins the tentpole allocation contract: once the arena is
// warm, a steady-state run on a stable configuration allocates nothing — no
// per-run state, no workload copy, no result scaffolding.
func TestZeroAllocRun(t *testing.T) {
	var store workload.Store
	st, err := store.Stream("gsme", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tr := testTrace()
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"ipex-both", DefaultConfig().WithIPEX()},
		{"no-prefetch", DefaultConfig().WithoutPrefetch()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := NewArena()
			if _, err := a.RunStream(st, tr, tc.cfg); err != nil {
				t.Fatal(err)
			}
			n := testing.AllocsPerRun(5, func() {
				if _, err := a.RunStream(st, tr, tc.cfg); err != nil {
					t.Fatal(err)
				}
			})
			if n != 0 {
				t.Errorf("steady-state run allocated %v times, want 0", n)
			}
		})
	}
}

// TestArenaRunStream pins the cursor path: running a shared immutable
// Stream through the arena matches a plain Run over the same accesses.
func TestArenaRunStream(t *testing.T) {
	var store workload.Store
	st, err := store.Stream("gsme", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	fresh, err := Run(workload.MustNew("gsme", 0.1), testTrace(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena()
	for i := 0; i < 3; i++ {
		got, err := a.RunStream(st, testTrace(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, got) {
			t.Fatalf("iteration %d: stream run diverged from fresh run", i)
		}
	}
}
