package nvp

import (
	"testing"

	"ipex/internal/power"
	"ipex/internal/workload"
)

// benchStream returns the shared gsme trace arena at full scale, generated
// once per process so no benchmark iteration pays generation cost.
func benchStream(b *testing.B, scale float64) *workload.Stream {
	b.Helper()
	st, err := workload.Shared().Stream("gsme", scale)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkLoops compares the specialized fast loops against the generic
// interpreter loop on identical configurations (the bit-identity of their
// results is pinned by TestArenaRunStream and TestGoldenFastPaths; this
// benchmark measures what the specialization buys).
func BenchmarkLoops(b *testing.B) {
	tr := power.Generate(power.RFHome, 200000, 1)
	cases := []struct {
		name    string
		mut     func(*Config)
		generic bool
	}{
		{"fast", nil, false},
		{"generic", nil, true},
		{"fast-nopf", func(c *Config) { *c = c.WithoutPrefetch() }, false},
		{"generic-nopf", func(c *Config) { *c = c.WithoutPrefetch() }, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			cfg := DefaultConfig()
			if tc.mut != nil {
				tc.mut(&cfg)
			}
			cfg.DisableFastPaths = tc.generic
			st := benchStream(b, 1.0)
			a := NewArena()
			var insts uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := a.RunStream(st, tr, cfg)
				if err != nil {
					b.Fatal(err)
				}
				insts = r.Insts
			}
			b.StopTimer()
			if insts > 0 {
				b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "insts/s")
			}
		})
	}
}
