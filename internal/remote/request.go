// Package remote is the resilient client execution layer for farming sweep
// cells to an ipexd fleet: a sweep (cmd/experiments, serial or distributed
// worker) hands each remotable cell to a Client, which speculates on a
// remote result and commits it only after verification — key match and
// sha256 over the body, the same envelope discipline as the result store's
// disk tier. Any failure (network, backpressure, corruption, truncation) is
// a retry against the fleet, and an exhausted retry budget degrades the
// cell to local arena execution: the sweep's output is byte-identical
// whether the fleet answered every cell, some, or none.
//
// The package also owns the /v1/run wire schema (RunRequest and its
// builder), moved here from cmd/ipexd so the client encodes requests with
// the exact code the server decodes them with: EncodeCell round-trips each
// candidate request through Build and accepts it only when the
// reconstructed cell key equals the sweep's own — a request that would not
// hash to the same identity server-side is simply not remotable and runs
// locally.
//
// Resilience stack (see DESIGN.md "Remote execution"):
//   - per-server circuit breakers driven by saturating success/failure
//     counters (the prefetchers' confidence-counter idiom, not wall time),
//     with /healthz probes gating the open → half-open transition;
//   - bounded retry budgets with deterministic key-seeded jittered backoff
//     that honor the server's Retry-After on 429/503;
//   - hedged requests racing a second replica for straggler cells (first
//     verified response wins, the loser is cancelled);
//   - response envelope verification (key + sha256 + strict decode);
//   - graceful degradation: per-cell local fallback when the budget is
//     exhausted, fleet-wide when every breaker is open.
package remote

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"ipex/internal/energy"
	"ipex/internal/experiments"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/prefetch"
	"ipex/internal/workload"
)

// MaxRequestBody bounds a /v1/run body; a legitimate request is a few
// hundred bytes.
const MaxRequestBody = 1 << 20

// RunRequest is the declarative body of POST /v1/run: one simulation,
// described entirely by value — no callbacks, no host state — so every
// request has a complete content identity and can be served from the
// result cache. Omitted fields take the paper's Table-1 defaults
// (nvp.DefaultConfig). Unknown fields are rejected, not ignored: a typo'd
// knob that silently fell back to its default would hash to the wrong
// cell key and return a "hit" for a configuration the caller never asked
// for.
type RunRequest struct {
	// App names the workload (one of the 20 benchmarks).
	App string `json:"app"`
	// Scale multiplies the workload's instruction count; 0 means 1.0.
	Scale float64 `json:"scale,omitempty"`
	// Source selects the synthetic power source (RFHome, RFOffice, solar,
	// thermal); empty means RFHome.
	Source string `json:"source,omitempty"`
	// TraceSeed seeds the synthetic power trace; 0 means 1.
	TraceSeed uint64 `json:"trace_seed,omitempty"`
	// Config overrides parts of the default system configuration.
	Config *ConfigRequest `json:"config,omitempty"`
}

// ConfigRequest is the declarative subset of nvp.Config a request may
// override. Pointer fields distinguish "leave the default" from an
// explicit false/zero.
type ConfigRequest struct {
	IPrefetcher string `json:"iprefetch,omitempty"` // sequential, markov, tifs, ampm, none
	DPrefetcher string `json:"dprefetch,omitempty"` // stride, ghb, bo, ampm, none
	Degree      int    `json:"degree,omitempty"`
	// IPEX attaches the controller: "off", "data", or "both".
	IPEX            string `json:"ipex,omitempty"`
	PrefetchToCache *bool  `json:"prefetch_to_cache,omitempty"`
	DupSuppress     *bool  `json:"dup_suppress,omitempty"`
	Ideal           bool   `json:"ideal,omitempty"`
	ReissueOnExit   bool   `json:"reissue_on_exit,omitempty"`
	GateAddressGen  bool   `json:"gate_address_gen,omitempty"`
	RecordCycles    bool   `json:"record_cycles,omitempty"`
	Paranoid        bool   `json:"paranoid,omitempty"`
	Profile         bool   `json:"profile,omitempty"`
	// MaxCycles caps simulated wall-clock time; 0 keeps the default budget.
	// The server's -cell-budget clamps it further.
	MaxCycles uint64 `json:"max_cycles,omitempty"`

	ICacheSize         int `json:"icache_bytes,omitempty"`
	DCacheSize         int `json:"dcache_bytes,omitempty"`
	Ways               int `json:"ways,omitempty"`
	PrefetchBufEntries int `json:"prefetch_buf_entries,omitempty"`

	// NVM selects the main-memory technology (ReRAM, STTRAM, PCM) and
	// capacity; zero values keep 16 MB ReRAM.
	NVM      string `json:"nvm,omitempty"`
	NVMBytes int64  `json:"nvm_bytes,omitempty"`

	// CapacitanceFarads overrides the storage capacitor (default 0.47e-6).
	CapacitanceFarads float64 `json:"capacitance_farads,omitempty"`
}

// Limits are the server-side bounds a request must fit in (backstops
// against one request monopolizing the worker pool).
type Limits struct {
	// MaxScale bounds RunRequest.Scale (0 = unbounded).
	MaxScale float64
	// CellBudget clamps every run's MaxCycles (0 = off), exactly like
	// cmd/experiments -cell-budget: a deterministic deadline inside
	// simulated time, part of the cell's identity.
	CellBudget uint64
}

// Spec is a validated, normalized request: the effective observer-free
// config, its content identity, and the trace coordinates.
type Spec struct {
	App      string
	Scale    float64
	Source   power.Source
	Seed     uint64
	Config   nvp.Config
	Identity experiments.ConfigIdentity
}

// Key derives the cell key the server will file the result under, given
// the trace the spec's coordinates generate. It is the same
// experiments.CellIdentity construction the sweep journal uses — one key
// schema across journal, cache, and wire.
func (sp Spec) Key(traceName string, traceLen int) string {
	return experiments.CellIdentity{
		App:       sp.App,
		Scale:     sp.Scale,
		TraceSeed: sp.Seed,
		TraceName: traceName,
		TraceLen:  traceLen,
		Config:    sp.Identity,
	}.Key()
}

// DecodeRunRequest parses a /v1/run body: at most MaxRequestBody bytes,
// unknown fields rejected. It is the single decoder for the endpoint — the
// server calls it, and FuzzRunRequest fuzzes it.
func DecodeRunRequest(r io.Reader) (RunRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBody))
	// Unknown fields are a client error, not a default: a typo'd knob must
	// not silently hash to (and be served as) a different configuration.
	dec.DisallowUnknownFields()
	var rq RunRequest
	err := dec.Decode(&rq)
	return rq, err
}

// Build validates the request against the server limits and derives its
// Spec. Every error is a client error (HTTP 400).
func (rq RunRequest) Build(lim Limits) (Spec, error) {
	var sp Spec

	if rq.App == "" {
		return sp, fmt.Errorf("missing app (want one of %s)", strings.Join(workload.Names(), ", "))
	}
	found := false
	for _, n := range workload.Names() {
		if n == rq.App {
			found = true
			break
		}
	}
	if !found {
		return sp, fmt.Errorf("unknown app %q (want one of %s)", rq.App, strings.Join(workload.Names(), ", "))
	}
	sp.App = rq.App

	sp.Scale = rq.Scale
	if sp.Scale == 0 {
		sp.Scale = 1
	}
	if !(sp.Scale > 0) || math.IsInf(sp.Scale, 0) {
		return sp, fmt.Errorf("scale must be a positive finite number, got %g", rq.Scale)
	}
	if lim.MaxScale > 0 && sp.Scale > lim.MaxScale {
		return sp, fmt.Errorf("scale %g exceeds this server's -max-scale %g", sp.Scale, lim.MaxScale)
	}

	srcName := rq.Source
	if srcName == "" {
		srcName = "RFHome"
	}
	src, err := power.ParseSource(srcName)
	if err != nil {
		return sp, err
	}
	sp.Source = src

	sp.Seed = rq.TraceSeed
	if sp.Seed == 0 {
		sp.Seed = 1
	}

	cfg := nvp.DefaultConfig()
	if c := rq.Config; c != nil {
		if c.IPrefetcher != "" {
			if _, err := prefetch.New(prefetch.Kind(c.IPrefetcher)); err != nil {
				return sp, err
			}
			cfg.IPrefetcher = prefetch.Kind(c.IPrefetcher)
		}
		if c.DPrefetcher != "" {
			if _, err := prefetch.New(prefetch.Kind(c.DPrefetcher)); err != nil {
				return sp, err
			}
			cfg.DPrefetcher = prefetch.Kind(c.DPrefetcher)
		}
		if c.Degree != 0 {
			cfg.InitialDegree = c.Degree
		}
		switch c.IPEX {
		case "", "off":
		case "data":
			cfg = cfg.WithIPEXData()
		case "both":
			cfg = cfg.WithIPEX()
		default:
			return sp, fmt.Errorf("unknown ipex mode %q (want off, data, both)", c.IPEX)
		}
		if c.PrefetchToCache != nil {
			cfg.PrefetchToCache = *c.PrefetchToCache
		}
		if c.DupSuppress != nil {
			cfg.DupSuppress = *c.DupSuppress
		}
		cfg.Ideal = c.Ideal
		cfg.ReissueOnExit = c.ReissueOnExit
		cfg.GateAddressGen = c.GateAddressGen
		cfg.RecordCycles = c.RecordCycles
		cfg.Paranoid = c.Paranoid
		cfg.Profile = c.Profile
		if c.MaxCycles != 0 {
			cfg.MaxCycles = c.MaxCycles
		}
		if c.ICacheSize != 0 {
			cfg.ICacheSize = c.ICacheSize
		}
		if c.DCacheSize != 0 {
			cfg.DCacheSize = c.DCacheSize
		}
		if c.Ways != 0 {
			cfg.Ways = c.Ways
		}
		if c.PrefetchBufEntries != 0 {
			cfg.PrefetchBufEntries = c.PrefetchBufEntries
		}
		if c.NVM != "" || c.NVMBytes != 0 {
			tech := energy.ReRAM
			switch c.NVM {
			case "", "ReRAM":
			case "STTRAM":
				tech = energy.STTRAM
			case "PCM":
				tech = energy.PCM
			default:
				return sp, fmt.Errorf("unknown nvm technology %q (want ReRAM, STTRAM, PCM)", c.NVM)
			}
			size := c.NVMBytes
			if size == 0 {
				size = 16 << 20
			}
			cfg.NVM = energy.NVMFor(tech, size)
		}
		if c.CapacitanceFarads != 0 {
			cfg.Capacitor.CapacitanceFarads = c.CapacitanceFarads
		}
	}
	// The server's deterministic cycle budget clamps — and therefore enters
	// — the cell's identity, exactly like a sweep's -cell-budget.
	if lim.CellBudget > 0 && (cfg.MaxCycles == 0 || cfg.MaxCycles > lim.CellBudget) {
		cfg.MaxCycles = lim.CellBudget
	}
	if err := cfg.Validate(); err != nil {
		return sp, err
	}
	sp.Config = cfg

	// Declarative requests cannot install factories, so this only fails if
	// the schema above ever grows one — at which point the refusal (HTTP
	// 400, never cached) is exactly what key soundness demands.
	sp.Identity, err = experiments.NewConfigIdentity(cfg)
	if err != nil {
		return sp, err
	}
	return sp, nil
}
