package remote

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ipex/internal/nvp"
	"ipex/internal/trace"
)

// maxResultBody bounds a /v1/run response body read (a cycle-recording
// result can be large, but never this large).
const maxResultBody = 64 << 20

// errAllOpen reports that no server could be routed to: every circuit
// breaker is open and every health probe failed.
var errAllOpen = errors.New("every server's circuit breaker is open")

// Options configures a Client.
type Options struct {
	// Servers are the fleet's base URLs (http://host:port). At least one.
	Servers []string
	// Retries bounds re-attempts per cell beyond the first (default 3 when
	// negative; 0 means a single attempt).
	Retries int
	// Timeout is the per-attempt HTTP deadline (default 15s).
	Timeout time.Duration
	// HedgeAfter races a second replica when an attempt has not answered
	// within this duration (0 disables hedging).
	HedgeAfter time.Duration
	// BackoffBase scales the deterministic key-seeded jittered backoff
	// between retry rounds (default 50ms; the schedule is base<<(round-1),
	// capped at 32x, plus up to 50% jitter seeded by the cell key).
	BackoffBase time.Duration
	// RetryAfterCap bounds an honored server Retry-After (default 2s).
	RetryAfterCap time.Duration
	// NoLocalFallback fails a cell whose remote budget is exhausted instead
	// of degrading it to local execution.
	NoLocalFallback bool
	// BaseContext, when non-nil, bounds every remote interaction — attempts,
	// health probes, and backoff sleeps. Cancelling it (sweep shutdown)
	// aborts in-flight remote work promptly; cells then degrade per the
	// fallback policy. nil means context.Background().
	BaseContext context.Context
	// FailThreshold and Cooldown parameterize the per-server breakers (see
	// newBreaker; 0 takes the defaults).
	FailThreshold int
	Cooldown      int
	// Clock, when non-nil, feeds the attempt-latency histogram; nil keeps
	// it silent.
	Clock trace.Clock
	// Metrics, when non-nil, receives the remote.* counters and histograms;
	// nil uses a private registry (Snapshot and Summary still work).
	Metrics *trace.Registry
	// Logf, when non-nil, receives one line per degradation event.
	Logf func(format string, a ...any)
	// Transport overrides the HTTP transport (tests, chaos rigs).
	Transport http.RoundTripper
}

// serverState is one fleet member: its breaker plus per-server counters
// for the labelled /metrics series.
type serverState struct {
	url      string
	br       *breaker
	attempts *trace.Counter // private registry-free atomics would do, but
	failures *trace.Counter // Counter is exactly that and nil-safe
}

// Client executes cells against an ipexd fleet with the full resilience
// stack. It implements harness.RemoteRunner. Safe for concurrent use by
// every pool worker of a sweep.
type Client struct {
	servers []*serverState
	retries int
	hedge   time.Duration
	backoff time.Duration
	raCap   time.Duration
	noFall  bool

	hc           *http.Client
	probeTimeout time.Duration
	clock        trace.Clock
	logf         func(string, ...any)
	// base bounds every attempt, probe, and backoff sleep (shutdown).
	base context.Context
	// sleepFn is the backoff sleep; tests substitute a recorder.
	sleepFn func(context.Context, time.Duration)

	attempts     *trace.Counter
	okAttempts   *trace.Counter
	statusErrs   *trace.Counter
	netErrs      *trace.Counter
	verifyErrs   *trace.Counter
	cancelledA   *trace.Counter
	hedges       *trace.Counter
	hedgeWins    *trace.Counter
	retried      *trace.Counter
	retryAfterOK *trace.Counter
	brOpens      *trace.Counter
	probesC      *trace.Counter
	probeFails   *trace.Counter
	cellsRemote  *trace.Counter
	cellsFall    *trace.Counter
	cellsUnrt    *trace.Counter
	cellsFailed  *trace.Counter

	attemptSeconds *trace.Histogram
	backoffSeconds *trace.Histogram
}

// NewClient validates o and builds the client.
func NewClient(o Options) (*Client, error) {
	if len(o.Servers) == 0 {
		return nil, errors.New("remote: no servers")
	}
	if o.Retries < 0 {
		o.Retries = 3
	}
	if o.Timeout <= 0 {
		o.Timeout = 15 * time.Second
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.RetryAfterCap <= 0 {
		o.RetryAfterCap = 2 * time.Second
	}
	reg := o.Metrics
	if reg == nil {
		reg = trace.NewRegistry()
	}
	probeTimeout := o.Timeout
	if probeTimeout > 2*time.Second {
		probeTimeout = 2 * time.Second
	}
	base := o.BaseContext
	if base == nil {
		base = context.Background()
	}
	c := &Client{
		retries:      o.Retries,
		hedge:        o.HedgeAfter,
		backoff:      o.BackoffBase,
		raCap:        o.RetryAfterCap,
		noFall:       o.NoLocalFallback,
		hc:           &http.Client{Timeout: o.Timeout, Transport: o.Transport},
		probeTimeout: probeTimeout,
		clock:        o.Clock,
		logf:         o.Logf,
		base:         base,
		sleepFn:      realSleep,

		attempts:     reg.Counter("remote.attempts"),
		okAttempts:   reg.Counter("remote.ok"),
		statusErrs:   reg.Counter("remote.status_errors"),
		netErrs:      reg.Counter("remote.net_errors"),
		verifyErrs:   reg.Counter("remote.verify_errors"),
		cancelledA:   reg.Counter("remote.cancelled"),
		hedges:       reg.Counter("remote.hedges"),
		hedgeWins:    reg.Counter("remote.hedge_wins"),
		retried:      reg.Counter("remote.retries"),
		retryAfterOK: reg.Counter("remote.retry_after_honored"),
		brOpens:      reg.Counter("remote.breaker_opens"),
		probesC:      reg.Counter("remote.probes"),
		probeFails:   reg.Counter("remote.probe_failures"),
		cellsRemote:  reg.Counter("remote.cells_remote"),
		cellsFall:    reg.Counter("remote.cells_local_fallback"),
		cellsUnrt:    reg.Counter("remote.cells_unroutable"),
		cellsFailed:  reg.Counter("remote.cells_failed"),

		attemptSeconds: reg.Histogram("remote.attempt_seconds", nil),
		backoffSeconds: reg.Histogram("remote.backoff_seconds", nil),
	}
	seen := make(map[string]bool, len(o.Servers))
	for _, raw := range o.Servers {
		u := raw
		for len(u) > 0 && u[len(u)-1] == '/' {
			u = u[:len(u)-1]
		}
		if u == "" {
			return nil, fmt.Errorf("remote: empty server URL in %q", raw)
		}
		if len(u) < 8 || (u[:7] != "http://" && u[:8] != "https://") {
			return nil, fmt.Errorf("remote: server %q: want an http:// or https:// base URL", raw)
		}
		if seen[u] {
			return nil, fmt.Errorf("remote: duplicate server %q", u)
		}
		seen[u] = true
		c.servers = append(c.servers, &serverState{
			url:      u,
			br:       newBreaker(o.FailThreshold, o.Cooldown),
			attempts: &trace.Counter{},
			failures: &trace.Counter{},
		})
	}
	return c, nil
}

// target is one routed destination: the server plus whether this admission
// is the breaker's half-open trial.
type target struct {
	s     *serverState
	trial bool
}

// rank orders the fleet by rendezvous hash of (cell key, server URL):
// every client routes a given cell to the same primary, so fleet-wide
// cache dedupe works without coordination, and the ranking degrades
// gracefully when servers die (the cell's order over survivors is stable).
func (c *Client) rank(key string) []*serverState {
	type scored struct {
		s *serverState
		h uint64
	}
	sc := make([]scored, len(c.servers))
	for i, s := range c.servers {
		h := fnv.New64a()
		io.WriteString(h, key)
		h.Write([]byte{0})
		io.WriteString(h, s.url)
		sc[i] = scored{s, h.Sum64()}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].h != sc[j].h {
			return sc[i].h > sc[j].h
		}
		return sc[i].s.url < sc[j].s.url
	})
	out := make([]*serverState, len(sc))
	for i := range sc {
		out[i] = sc[i].s
	}
	return out
}

// route picks the primary (and, when hedging is enabled, a hedge backup)
// for a cell: the first breaker-admitted servers in rendezvous order. An
// open breaker whose cooldown elapsed is health-probed over /healthz first
// — only a 200 earns the half-open trial. With hedging disabled no backup
// is selected at all: admitting one would claim breaker state (possibly a
// half-open trial slot) for a request that never launches.
func (c *Client) route(key string) (primary, backup *target) {
	want := 2
	if c.hedge <= 0 {
		want = 1
	}
	var tgts []*target
	for _, s := range c.rank(key) {
		switch s.br.admit() {
		case admitOK:
			tgts = append(tgts, &target{s: s})
		case admitTrial:
			tgts = append(tgts, &target{s: s, trial: true})
		case admitProbeFirst:
			c.probesC.Inc()
			if !c.probeHealth(s) {
				c.probeFails.Inc()
				continue
			}
			if s.br.probeResult(true) {
				tgts = append(tgts, &target{s: s, trial: true})
			}
		case admitRefused:
		}
		if len(tgts) == want {
			break
		}
	}
	switch len(tgts) {
	case 0:
		return nil, nil
	case 1:
		return tgts[0], nil
	default:
		return tgts[0], tgts[1]
	}
}

// probeHealth asks /healthz whether the server should receive traffic
// again. A draining ipexd answers 503, so a shutting-down server never
// re-enters rotation.
func (c *Client) probeHealth(s *serverState) bool {
	ctx, cancel := context.WithTimeout(c.base, c.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode == http.StatusOK
}

// RunRemote executes one cell against the fleet: up to 1+Retries attempt
// rounds (each possibly hedged), deterministic jittered backoff between
// rounds (a server Retry-After, capped, takes precedence), and graceful
// degradation — handled=false tells the harness to run the cell locally.
// It implements harness.RemoteRunner.
func (c *Client) RunRemote(key, label string, req []byte) (res nvp.Result, handled bool, err error) {
	var lastErr error
	var raHint time.Duration
	var raFrom *serverState
	rounds := 0
	for round := 0; round <= c.retries; round++ {
		if c.base.Err() != nil {
			// Sweep shutdown: stop spending the remote budget and degrade.
			if lastErr == nil {
				lastErr = c.base.Err()
			}
			break
		}
		// Route before the backoff sleep so a Retry-After hint is honored
		// only when this round actually targets the server that sent it —
		// a hint speaks for one server, not the fleet.
		primary, backup := c.route(key)
		if primary == nil {
			break
		}
		if round > 0 {
			c.retried.Inc()
			hint := raHint
			if raFrom != primary.s {
				hint = 0
			}
			c.sleepBackoff(key, round, hint)
		}
		rounds++
		out, hint, hintFrom, aerr := c.attemptHedged(primary, backup, key, req)
		if aerr == nil {
			c.cellsRemote.Inc()
			return out, true, nil
		}
		lastErr, raHint, raFrom = aerr, hint, hintFrom
	}
	if c.noFall {
		c.cellsFailed.Inc()
		if lastErr == nil {
			lastErr = errAllOpen
		}
		return nvp.Result{}, true, fmt.Errorf("remote: %s (%s): budget exhausted with local fallback disabled: %w", label, key, lastErr)
	}
	if rounds == 0 {
		c.cellsUnrt.Inc()
		if c.logf != nil {
			if c.base.Err() != nil {
				c.logf("remote: %s: shutdown in progress; simulating locally", label)
			} else {
				c.logf("remote: %s: no routable server (every breaker open); simulating locally", label)
			}
		}
	} else {
		c.cellsFall.Inc()
		if c.logf != nil {
			c.logf("remote: %s: retry budget exhausted (%v); simulating locally", label, lastErr)
		}
	}
	return nvp.Result{}, false, nil
}

// sleepBackoff waits between retry rounds: an honored Retry-After when the
// server sent one (capped), otherwise the deterministic key-seeded
// jittered exponential schedule. The chosen delay — not the measured sleep
// — feeds the backoff histogram, so the series is as deterministic as the
// schedule itself.
func (c *Client) sleepBackoff(key string, round int, retryAfter time.Duration) {
	var d time.Duration
	if retryAfter > 0 {
		d = retryAfter
		if d > c.raCap {
			d = c.raCap
		}
		c.retryAfterOK.Inc()
	} else {
		d = c.backoff << (round - 1)
		if max := 32 * c.backoff; d > max {
			d = max
		}
		if d > 0 {
			// Key-seeded jitter up to +50%: a fleet of clients retrying the
			// same instant spreads out, but a given cell's schedule is
			// reproducible.
			h := fnv.New64a()
			io.WriteString(h, key)
			var rb [8]byte
			binary.LittleEndian.PutUint64(rb[:], uint64(round))
			h.Write(rb[:])
			d += time.Duration(h.Sum64() % uint64(d/2+1))
		}
	}
	c.backoffSeconds.Observe(d.Seconds())
	c.sleepFn(c.base, d)
}

// attemptOut is one HTTP attempt's conclusion. srv identifies the server
// it ran against, so a Retry-After hint stays scoped to its sender.
type attemptOut struct {
	res        nvp.Result
	err        error
	retryAfter time.Duration
	hedge      bool
	srv        *serverState
}

// attemptHedged races the primary against a delayed hedge on the backup:
// the first verified response wins and the loser is cancelled. It fails
// only when every launched attempt failed; alongside the error it returns
// any Retry-After hint and the server that sent it.
func (c *Client) attemptHedged(primary, backup *target, key string, req []byte) (nvp.Result, time.Duration, *serverState, error) {
	ch := make(chan attemptOut, 2)
	pctx, pcancel := context.WithCancel(c.base)
	defer pcancel()
	go c.attempt(pctx, primary, key, req, false, ch)
	launched := 1
	hcancel := context.CancelFunc(func() {})
	// An admitted backup that never launches must hand its admission — in
	// particular a claimed half-open trial slot — back to its breaker, or
	// that breaker would refuse every future admission and a recovering
	// server would be permanently out of rotation. backup is set to nil at
	// launch, when attempt() takes over the breaker verdict.
	defer func() {
		if backup != nil {
			backup.s.br.release(backup.trial)
		}
	}()

	if backup != nil && c.hedge > 0 {
		t := hedgeTimer(c.hedge)
		select {
		case <-t.C:
			c.hedges.Inc()
			hctx, hc := context.WithCancel(c.base)
			defer hc()
			hcancel = hc
			go c.attempt(hctx, backup, key, req, true, ch)
			backup = nil
			launched = 2
		case out := <-ch:
			t.Stop()
			if out.err == nil {
				return out.res, 0, nil, nil
			}
			return nvp.Result{}, out.retryAfter, out.srv, out.err
		}
	}

	var firstFail attemptOut
	for i := 0; i < launched; i++ {
		out := <-ch
		if out.err == nil {
			if out.hedge {
				c.hedgeWins.Inc()
			}
			// Cancel the straggler; its attempt concludes in the cancelled
			// bucket without a breaker verdict.
			pcancel()
			hcancel()
			return out.res, 0, nil, nil
		}
		if i == 0 || (firstFail.retryAfter == 0 && out.retryAfter > 0) {
			firstFail = out
		}
	}
	return nvp.Result{}, firstFail.retryAfter, firstFail.srv, firstFail.err
}

// outcomeKind buckets one attempt; every attempt lands in exactly one.
type outcomeKind int

const (
	outcomeOK outcomeKind = iota
	outcomeStatus
	outcomeNet
	outcomeVerify
	outcomeCancel
)

// attempt performs one HTTP attempt end to end: request, envelope
// verification, metrics bucketing, and the breaker verdict.
func (c *Client) attempt(ctx context.Context, t *target, key string, body []byte, hedge bool, ch chan<- attemptOut) {
	c.attempts.Inc()
	t.s.attempts.Inc()
	start := c.now()
	res, ra, code, kind, err := c.doOnce(ctx, t.s, key, body)
	switch kind {
	case outcomeOK:
		c.okAttempts.Inc()
		if c.clock != nil {
			c.attemptSeconds.ObserveDuration(c.clock.Now() - start)
		}
		t.s.br.report(true, t.trial)
	case outcomeCancel:
		// Our own hedge-race cancellation says nothing about the server:
		// no breaker verdict, but a claimed trial slot must be released.
		c.cancelledA.Inc()
		t.s.br.release(t.trial)
	case outcomeStatus:
		c.statusErrs.Inc()
		t.s.failures.Inc()
		if code == http.StatusTooManyRequests {
			// Backpressure is a live server protecting itself — honor the
			// Retry-After instead of counting toward opening the breaker.
			t.s.br.release(t.trial)
		} else if t.s.br.report(false, t.trial) {
			c.brOpens.Inc()
		}
	case outcomeNet:
		c.netErrs.Inc()
		t.s.failures.Inc()
		if t.s.br.report(false, t.trial) {
			c.brOpens.Inc()
		}
	case outcomeVerify:
		c.verifyErrs.Inc()
		t.s.failures.Inc()
		if t.s.br.report(false, t.trial) {
			c.brOpens.Inc()
		}
	}
	ch <- attemptOut{res: res, err: err, retryAfter: ra, hedge: hedge, srv: t.s}
}

// doOnce issues one POST /v1/run and verifies the response envelope: HTTP
// 200, X-Ipex-Key equal to the cell key, X-Ipex-Sha256 matching the body,
// and a strict decode. A response failing any check is an attempt failure
// — a corrupted or truncated body is a retry, never a result.
func (c *Client) doOnce(ctx context.Context, s *serverState, key string, body []byte) (nvp.Result, time.Duration, int, outcomeKind, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.url+"/v1/run", bytes.NewReader(body))
	if err != nil {
		return nvp.Result{}, 0, 0, outcomeNet, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nvp.Result{}, 0, 0, outcomeCancel, ctx.Err()
		}
		return nvp.Result{}, 0, 0, outcomeNet, err
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxResultBody))
	if resp.StatusCode != http.StatusOK {
		ra := parseRetryAfter(resp)
		msg := firstLine(data)
		return nvp.Result{}, ra, resp.StatusCode, outcomeStatus,
			fmt.Errorf("%s: HTTP %d: %s", s.url, resp.StatusCode, msg)
	}
	if rerr != nil {
		if ctx.Err() != nil {
			return nvp.Result{}, 0, 0, outcomeCancel, ctx.Err()
		}
		return nvp.Result{}, 0, 0, outcomeNet, fmt.Errorf("%s: reading response: %w", s.url, rerr)
	}
	if got := resp.Header.Get("X-Ipex-Key"); got != key {
		return nvp.Result{}, 0, 0, outcomeVerify,
			fmt.Errorf("%s: key mismatch: want %s, got %q", s.url, key, got)
	}
	sum := sha256.Sum256(data)
	if got := resp.Header.Get("X-Ipex-Sha256"); got != hex.EncodeToString(sum[:]) {
		return nvp.Result{}, 0, 0, outcomeVerify,
			fmt.Errorf("%s: body checksum mismatch (%d bytes)", s.url, len(data))
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var res nvp.Result
	if err := dec.Decode(&res); err != nil {
		return nvp.Result{}, 0, 0, outcomeVerify,
			fmt.Errorf("%s: decoding verified body: %w", s.url, err)
	}
	return res, 0, resp.StatusCode, outcomeOK, nil
}

// now reads the injected clock (0 when none).
func (c *Client) now() time.Duration {
	if c.clock == nil {
		return 0
	}
	return c.clock.Now()
}

// parseRetryAfter reads a whole-seconds Retry-After header (the only form
// ipexd emits; HTTP dates are ignored).
func parseRetryAfter(resp *http.Response) time.Duration {
	if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
		return 0
	}
	n, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || n < 0 {
		return 0
	}
	return time.Duration(n) * time.Second
}

// firstLine trims an error body to its first line for diagnostics.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

// Snapshot is a point-in-time copy of the client's counters, for tests and
// the end-of-sweep summary. Attempts partition exactly:
// Attempts = OK + StatusErrors + NetErrors + VerifyErrors + Cancelled,
// and cells partition exactly:
// CellsRemote + CellsLocalFallback + CellsUnroutable + CellsFailed = calls.
type Snapshot struct {
	Attempts, OK, StatusErrors, NetErrors, VerifyErrors, Cancelled uint64
	Hedges, HedgeWins, Retries, RetryAfterHonored                  uint64
	BreakerOpens, Probes, ProbeFailures                            uint64
	CellsRemote, CellsLocalFallback, CellsUnroutable, CellsFailed  uint64
}

// Snapshot reads every counter (each individually; not a consistent cut).
func (c *Client) Snapshot() Snapshot {
	return Snapshot{
		Attempts:           c.attempts.Load(),
		OK:                 c.okAttempts.Load(),
		StatusErrors:       c.statusErrs.Load(),
		NetErrors:          c.netErrs.Load(),
		VerifyErrors:       c.verifyErrs.Load(),
		Cancelled:          c.cancelledA.Load(),
		Hedges:             c.hedges.Load(),
		HedgeWins:          c.hedgeWins.Load(),
		Retries:            c.retried.Load(),
		RetryAfterHonored:  c.retryAfterOK.Load(),
		BreakerOpens:       c.brOpens.Load(),
		Probes:             c.probesC.Load(),
		ProbeFailures:      c.probeFails.Load(),
		CellsRemote:        c.cellsRemote.Load(),
		CellsLocalFallback: c.cellsFall.Load(),
		CellsUnroutable:    c.cellsUnrt.Load(),
		CellsFailed:        c.cellsFailed.Load(),
	}
}

// Summary renders the end-of-sweep one-liner cmd/experiments prints to
// stderr (stable key=value form; make remote-smoke parses it).
func (c *Client) Summary() string {
	s := c.Snapshot()
	return fmt.Sprintf("remote: cells=%d fallback=%d unroutable=%d failed=%d attempts=%d ok=%d status_errors=%d net_errors=%d verify_errors=%d cancelled=%d retries=%d hedges=%d hedge_wins=%d breaker_opens=%d",
		s.CellsRemote, s.CellsLocalFallback, s.CellsUnroutable, s.CellsFailed,
		s.Attempts, s.OK, s.StatusErrors, s.NetErrors, s.VerifyErrors, s.Cancelled,
		s.Retries, s.Hedges, s.HedgeWins, s.BreakerOpens)
}

// WriteProm renders the per-server series (breaker state, attempts,
// failures) in configured server order — byte-deterministic for a given
// counter state, like every /metrics writer in the tree.
func (c *Client) WriteProm(w io.Writer) error {
	write := func(name, help, typ string, val func(*serverState) string) error {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ); err != nil {
			return err
		}
		for _, s := range c.servers {
			if _, err := fmt.Fprintf(w, "%s{server=%q} %s\n", name, s.url, val(s)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("ipex_remote_breaker_state", "per-server circuit-breaker state (0 closed, 1 half-open, 2 open)", "gauge",
		func(s *serverState) string { return strconv.Itoa(int(s.br.current())) }); err != nil {
		return err
	}
	if err := write("ipex_remote_server_attempts_total", "attempts routed to the server", "counter",
		func(s *serverState) string { return strconv.FormatUint(s.attempts.Load(), 10) }); err != nil {
		return err
	}
	return write("ipex_remote_server_failures_total", "failed attempts routed to the server", "counter",
		func(s *serverState) string { return strconv.FormatUint(s.failures.Load(), 10) })
}
