package remote

import "time"

// This file is the package's only wall-clock touchpoint, mirroring
// internal/dist/clock.go: remote execution needs real time for backoff
// sleeps and hedge timers, but nothing that feeds a simulated result may
// ever observe it. The determinism lint pins wall-clock use in internal/
// to exactly the registered clock corners.

// realSleep is the default Client sleep; tests substitute a recorder so
// the deterministic backoff schedule is asserted, not waited out.
func realSleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// hedgeTimer arms the straggler-detection timer that triggers a hedged
// request. Callers must Stop it.
func hedgeTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}
