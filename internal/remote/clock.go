package remote

import (
	"context"
	"time"
)

// This file is the package's only wall-clock touchpoint, mirroring
// internal/dist/clock.go: remote execution needs real time for backoff
// sleeps and hedge timers, but nothing that feeds a simulated result may
// ever observe it. The determinism lint pins wall-clock use in internal/
// to exactly the registered clock corners.

// realSleep is the default Client sleep; tests substitute a recorder so
// the deterministic backoff schedule is asserted, not waited out. The
// context cuts a backoff short on sweep shutdown — a fleet of dead
// servers must not hold a pool worker in sleeps after the user asked to
// stop.
func realSleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// hedgeTimer arms the straggler-detection timer that triggers a hedged
// request. Callers must Stop it.
func hedgeTimer(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}
