package remote

// FuzzRunRequest fuzzes the /v1/run decode→build path — the exact bytes an
// ipexd accepts from the network. The invariants are the endpoint's safety
// contract: the decoder never panics, never accepts more than
// MaxRequestBody, and anything Build accepts has a well-formed, stable
// content identity (the cell key the result cache files it under).

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func FuzzRunRequest(f *testing.F) {
	// A remotable cell's own encoding is the most interesting seed shape.
	f.Add([]byte(`{"app":"fft","scale":0.1,"trace_seed":1}`))
	f.Add([]byte(`{"app":"gsme","scale":0.5,"source":"solar","trace_seed":9,"config":{"ipex":"both","degree":4}}`))
	f.Add([]byte(`{"app":"qsort","config":{"iprefetch":"markov","dprefetch":"ghb","nvm":"STTRAM","nvm_bytes":33554432}}`))
	f.Add([]byte(`{"app":"fft","config":{"prefetch_to_cache":false,"dup_suppress":false,"max_cycles":5000000}}`))
	// Hostile shapes: unknown fields, wrong types, extremes, junk.
	f.Add([]byte(`{"app":"fft","bogus":1}`))
	f.Add([]byte(`{"app":"fft","scale":1e309}`))
	f.Add([]byte(`{"app":"fft","scale":-1}`))
	f.Add([]byte(`{"app":"fft","config":{"ipex":"sideways"}}`))
	f.Add([]byte(`{"app":"fft","config":{"capacitance_farads":-4.7e-7}}`))
	f.Add([]byte(`{"app":` + strings.Repeat("[", 64) + `}`))
	f.Add([]byte(`nonsense`))
	f.Add([]byte(``))
	f.Add(bytes.Repeat([]byte(`{"app":"fft"}`), 100_000)) // > MaxRequestBody

	f.Fuzz(func(t *testing.T, data []byte) {
		rq, err := DecodeRunRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected bytes are the decoder doing its job
		}
		sp, err := rq.Build(Limits{MaxScale: 10, CellBudget: 1 << 20})
		if err != nil {
			return
		}
		// Accepted requests must have a sane, finite scale...
		if !(sp.Scale > 0) || math.IsInf(sp.Scale, 0) || math.IsNaN(sp.Scale) {
			t.Fatalf("Build accepted a degenerate scale %v from %q", sp.Scale, data)
		}
		// ...a respected cycle budget...
		if sp.Config.MaxCycles == 0 || sp.Config.MaxCycles > 1<<20 {
			t.Fatalf("Build ignored the CellBudget clamp: MaxCycles=%d from %q", sp.Config.MaxCycles, data)
		}
		// ...and a deterministic identity: building the same decoded request
		// twice yields the same cell key.
		sp2, err := rq.Build(Limits{MaxScale: 10, CellBudget: 1 << 20})
		if err != nil {
			t.Fatalf("Build succeeded then failed on identical input: %v", err)
		}
		if k1, k2 := sp.Key("rf_home", 4096), sp2.Key("rf_home", 4096); k1 != k2 || k1 == "" {
			t.Fatalf("cell key unstable across rebuilds: %q vs %q", k1, k2)
		}
	})
}
