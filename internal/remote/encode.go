package remote

import (
	"encoding/json"

	"ipex/internal/nvp"
	"ipex/internal/power"
)

// EncodeCell derives the declarative /v1/run body for one sweep cell, or
// nil when the cell is not expressible remotely. The contract is absolute:
// a non-nil return is a request the server is guaranteed to file under
// wantKey, proven by round-tripping the candidate through Build — the
// server's own builder — and comparing the reconstructed cell identity
// against the sweep's. Anything the wire schema cannot express (injected
// faults, caller-installed prefetcher factories, a non-default capacitor
// beyond its capacitance, a custom trace) fails that comparison and runs
// locally; there is no list of special cases to keep in sync with the
// schema, because the schema itself is the check.
//
// tr must be the cell's power trace, wantKey the key runAll computed for
// the cell (see experiments.CellIdentity). cfg must be the effective
// config — budget clamp and paranoid flag applied, observers excluded —
// exactly what the cell identity was hashed from.
func EncodeCell(app string, scale float64, tr *power.Trace, traceSeed uint64, cfg nvp.Config, wantKey string) []byte {
	if wantKey == "" || tr == nil {
		return nil
	}
	// The server generates its trace from (source, seed) at the default
	// length; a sweep running a custom or foreign-length trace cannot be
	// served by the fleet.
	if len(tr.Samples) != power.DefaultTraceSamples {
		return nil
	}
	if _, err := power.ParseSource(tr.Name); err != nil {
		return nil
	}

	ipexMode := ""
	switch {
	case cfg.IPEXInst && cfg.IPEXData:
		ipexMode = "both"
	case !cfg.IPEXInst && cfg.IPEXData:
		ipexMode = "data"
	case !cfg.IPEXInst && !cfg.IPEXData:
		ipexMode = "off"
	default:
		return nil // instruction-only IPEX has no wire spelling
	}

	ptc, dup := cfg.PrefetchToCache, cfg.DupSuppress
	rq := RunRequest{
		App:       app,
		Scale:     scale,
		Source:    tr.Name,
		TraceSeed: traceSeed,
		Config: &ConfigRequest{
			IPrefetcher:        string(cfg.IPrefetcher),
			DPrefetcher:        string(cfg.DPrefetcher),
			Degree:             cfg.InitialDegree,
			IPEX:               ipexMode,
			PrefetchToCache:    &ptc,
			DupSuppress:        &dup,
			Ideal:              cfg.Ideal,
			ReissueOnExit:      cfg.ReissueOnExit,
			GateAddressGen:     cfg.GateAddressGen,
			RecordCycles:       cfg.RecordCycles,
			Paranoid:           cfg.Paranoid,
			Profile:            cfg.Profile,
			MaxCycles:          cfg.MaxCycles,
			ICacheSize:         cfg.ICacheSize,
			DCacheSize:         cfg.DCacheSize,
			Ways:               cfg.Ways,
			PrefetchBufEntries: cfg.PrefetchBufEntries,
			NVM:                cfg.NVM.Tech.String(),
			NVMBytes:           cfg.NVM.SizeBytes,
			CapacitanceFarads:  cfg.Capacitor.CapacitanceFarads,
		},
	}

	// Round-trip through the server's own builder: remotable iff the server
	// would reconstruct the exact cell identity. Limits{} is the unbounded
	// default — a fleet server running stricter -max-scale/-cell-budget
	// rejects or re-keys the request, which the client's envelope
	// verification catches as a per-attempt failure.
	sp, err := rq.Build(Limits{})
	if err != nil {
		return nil
	}
	if sp.Key(tr.Name, len(tr.Samples)) != wantKey {
		return nil
	}
	body, err := json.Marshal(rq)
	if err != nil {
		return nil
	}
	return body
}

// remotable documents the inverse for callers: EncodeCell never needs a
// list of unsupported features to keep in sync, because anything the wire
// cannot spell (cfg.Faults, prefetcher factories, exotic capacitor or IPEX
// parameters, custom traces) changes the reconstructed identity and fails
// the key comparison above.
var _ func(string, float64, *power.Trace, uint64, nvp.Config, string) []byte = EncodeCell

