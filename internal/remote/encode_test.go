package remote

import (
	"bytes"
	"testing"

	"ipex/internal/energy"
	"ipex/internal/experiments"
	"ipex/internal/fault"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/prefetch"
)

// keyFor computes the cell key runAll would assign the cell — the ground
// truth EncodeCell must round-trip to.
func keyFor(t *testing.T, app string, scale float64, tr *power.Trace, seed uint64, cfg nvp.Config) string {
	t.Helper()
	id, err := experiments.NewConfigIdentity(cfg)
	if err != nil {
		t.Fatalf("NewConfigIdentity: %v", err)
	}
	return experiments.CellIdentity{
		App:       app,
		Scale:     scale,
		TraceSeed: seed,
		TraceName: tr.Name,
		TraceLen:  len(tr.Samples),
		Config:    id,
	}.Key()
}

func defaultTrace() *power.Trace {
	return power.Generate(power.RFHome, power.DefaultTraceSamples, 1)
}

// TestEncodeCellRemotableBattery walks the configurations a sweep actually
// produces and asserts each encodes to a request the server's own builder
// reconstructs under the exact cell key.
func TestEncodeCellRemotableBattery(t *testing.T) {
	tr := defaultTrace()
	solar := power.Generate(power.Solar, power.DefaultTraceSamples, 9)

	sttram := nvp.DefaultConfig()
	sttram.NVM = energy.NVMFor(energy.STTRAM, 32<<20)

	pcm := nvp.DefaultConfig()
	pcm.NVM = energy.NVMFor(energy.PCM, 16<<20)

	bigCap := nvp.DefaultConfig()
	bigCap.Capacitor.CapacitanceFarads = 1e-6

	caches := nvp.DefaultConfig()
	caches.ICacheSize = 8 << 10
	caches.DCacheSize = 16 << 10
	caches.Ways = 4
	caches.PrefetchBufEntries = 32

	budget := nvp.DefaultConfig()
	budget.MaxCycles = 5_000_000

	flags := nvp.DefaultConfig()
	flags.Paranoid = true
	flags.RecordCycles = true
	flags.ReissueOnExit = true
	flags.GateAddressGen = true

	nopf := nvp.DefaultConfig()
	nopf.IPrefetcher = prefetch.Kind("none")
	nopf.DPrefetcher = prefetch.Kind("none")
	nopf.PrefetchToCache = false
	nopf.DupSuppress = false

	markov := nvp.DefaultConfig()
	markov.IPrefetcher = prefetch.Kind("markov")
	markov.DPrefetcher = prefetch.Kind("ghb")
	markov.InitialDegree = 4

	ideal := nvp.DefaultConfig()
	ideal.Ideal = true

	cases := []struct {
		name  string
		app   string
		scale float64
		tr    *power.Trace
		seed  uint64
		cfg   nvp.Config
	}{
		{"default", "fft", 0.1, tr, 1, nvp.DefaultConfig()},
		{"ipex-both", "qsort", 0.1, tr, 1, nvp.DefaultConfig().WithIPEX()},
		{"ipex-data", "gsme", 0.1, tr, 1, nvp.DefaultConfig().WithIPEXData()},
		{"solar-seed9", "fft", 0.5, solar, 9, nvp.DefaultConfig()},
		{"sttram-32mb", "fft", 0.1, tr, 1, sttram},
		{"pcm", "fft", 0.1, tr, 1, pcm},
		{"capacitance", "fft", 0.1, tr, 1, bigCap},
		{"cache-geometry", "fft", 0.1, tr, 1, caches},
		{"cycle-budget", "fft", 0.1, tr, 1, budget},
		{"flag-soup", "fft", 0.1, tr, 1, flags},
		{"no-prefetch", "fft", 0.1, tr, 1, nopf},
		{"markov-ghb-degree4", "fft", 0.1, tr, 1, markov},
		{"ideal", "fft", 0.1, tr, 1, ideal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			key := keyFor(t, tc.app, tc.scale, tc.tr, tc.seed, tc.cfg)
			body := EncodeCell(tc.app, tc.scale, tc.tr, tc.seed, tc.cfg, key)
			if body == nil {
				t.Fatal("EncodeCell declined a remotable cell")
			}
			// The encoded body must decode through the server's own path and
			// rebuild the identical key (the round trip EncodeCell performed,
			// re-done here through the public decoder).
			rq, err := DecodeRunRequest(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("DecodeRunRequest on own encoding: %v", err)
			}
			sp, err := rq.Build(Limits{})
			if err != nil {
				t.Fatalf("Build on own encoding: %v", err)
			}
			if got := sp.Key(tc.tr.Name, len(tc.tr.Samples)); got != key {
				t.Fatalf("server-side key = %s, want %s", got, key)
			}
		})
	}
}

// TestEncodeCellDeclinesInexpressible pins the graceful-degradation side:
// anything the wire schema cannot spell returns nil, so the cell runs
// locally instead of being mis-keyed remotely.
func TestEncodeCellDeclinesInexpressible(t *testing.T) {
	tr := defaultTrace()

	withFaults := nvp.DefaultConfig()
	withFaults.Faults = &fault.Config{Sensor: fault.SensorConfig{NoiseV: 0.01}}

	withFactory := nvp.DefaultConfig()
	withFactory.IPrefetcherFactory = func() prefetch.Prefetcher {
		p, _ := prefetch.New(prefetch.Kind("sequential"))
		return p
	}
	withFactory.IPrefetcherID = "custom-seq"

	ipexInstOnly := nvp.DefaultConfig().WithIPEX()
	ipexInstOnly.IPEXData = false

	tunedIPEX := nvp.DefaultConfig().WithIPEX()
	tunedIPEX.IPEX.StepV += 0.01

	tunedCap := nvp.DefaultConfig()
	tunedCap.Capacitor.Vbackup += 0.05

	customTrace := power.Generate(power.RFHome, power.DefaultTraceSamples, 1)
	customTrace.Name = "bench-recording-3"

	shortTrace := power.Generate(power.RFHome, 1000, 1)

	cases := []struct {
		name string
		tr   *power.Trace
		cfg  nvp.Config
	}{
		{"injected-faults", tr, withFaults},
		{"prefetcher-factory", tr, withFactory},
		{"ipex-inst-only", tr, ipexInstOnly},
		{"tuned-ipex-params", tr, tunedIPEX},
		{"tuned-capacitor-vbackup", tr, tunedCap},
		{"custom-trace-name", customTrace, nvp.DefaultConfig()},
		{"foreign-trace-length", shortTrace, nvp.DefaultConfig()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			key := keyFor(t, "fft", 0.1, tc.tr, 1, tc.cfg)
			if body := EncodeCell("fft", 0.1, tc.tr, 1, tc.cfg, key); body != nil {
				t.Fatalf("EncodeCell encoded an inexpressible cell: %s", body)
			}
		})
	}

	// Degenerate inputs.
	if EncodeCell("fft", 0.1, nil, 1, nvp.DefaultConfig(), "abc") != nil {
		t.Fatal("EncodeCell accepted a nil trace")
	}
	if EncodeCell("fft", 0.1, tr, 1, nvp.DefaultConfig(), "") != nil {
		t.Fatal("EncodeCell accepted an empty key")
	}
	// A wrong wantKey (any mismatch between the sweep's identity and the
	// request) must decline rather than ship a mis-keyed request.
	if EncodeCell("fft", 0.1, tr, 1, nvp.DefaultConfig(), "00000000000000000000000000000000") != nil {
		t.Fatal("EncodeCell accepted a key its round trip cannot reproduce")
	}
}

// TestEncodeCellDeterministic pins that encoding is pure: same inputs, same
// bytes (the request is part of the cell's routing identity — rendezvous
// hashing keys on the cell key, but the body must be stable too for the
// fleet cache to dedupe).
func TestEncodeCellDeterministic(t *testing.T) {
	tr := defaultTrace()
	cfg := nvp.DefaultConfig().WithIPEX()
	key := keyFor(t, "gsme", 0.25, tr, 3, cfg)
	a := EncodeCell("gsme", 0.25, tr, 3, cfg, key)
	b := EncodeCell("gsme", 0.25, tr, 3, cfg, key)
	if a == nil || !bytes.Equal(a, b) {
		t.Fatalf("EncodeCell not deterministic:\n%s\n%s", a, b)
	}
}
