package remote

import "testing"

// fail feeds n non-trial failures.
func fail(b *breaker, n int) {
	for i := 0; i < n; i++ {
		b.report(false, false)
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := newBreaker(3, 8)
	if got := b.current(); got != breakerClosed {
		t.Fatalf("fresh breaker state = %v, want closed", got)
	}
	b.report(false, false)
	b.report(false, false)
	if got := b.current(); got != breakerClosed {
		t.Fatalf("after 2 failures state = %v, want still closed", got)
	}
	if opened := b.report(false, false); !opened {
		t.Fatal("third failure did not report opening the breaker")
	}
	if got := b.current(); got != breakerOpen {
		t.Fatalf("after 3 failures state = %v, want open", got)
	}
	if got := b.admit(); got != admitRefused {
		t.Fatalf("open breaker admit = %v, want refused", got)
	}
}

func TestBreakerSuccessDecaysFailures(t *testing.T) {
	b := newBreaker(3, 8)
	fail(b, 2)
	b.report(true, false) // one success decays one failure
	fail(b, 1)
	if got := b.current(); got != breakerClosed {
		t.Fatalf("2 fails - 1 ok + 1 fail = 2 < threshold, state = %v, want closed", got)
	}
	fail(b, 1)
	if got := b.current(); got != breakerOpen {
		t.Fatalf("one more failure should open; state = %v", got)
	}
}

func TestBreakerCooldownThenProbe(t *testing.T) {
	b := newBreaker(3, 4)
	fail(b, 3)
	// The first cooldown-1 admissions are refused; the cooldown-th asks for
	// a health probe.
	for i := 0; i < 3; i++ {
		if got := b.admit(); got != admitRefused {
			t.Fatalf("admission %d = %v, want refused", i, got)
		}
	}
	if got := b.admit(); got != admitProbeFirst {
		t.Fatalf("cooldown-th admission = %v, want probe-first", got)
	}
	// An unhealthy probe keeps it open for another full cooldown.
	if b.probeResult(false) {
		t.Fatal("unhealthy probe granted the trial")
	}
	for i := 0; i < 3; i++ {
		if got := b.admit(); got != admitRefused {
			t.Fatalf("post-probe admission %d = %v, want refused", i, got)
		}
	}
	if got := b.admit(); got != admitProbeFirst {
		t.Fatal("second cooldown did not re-arm the probe")
	}
	// A healthy probe grants the half-open trial to the prober.
	if !b.probeResult(true) {
		t.Fatal("healthy probe did not grant the trial")
	}
	if got := b.current(); got != breakerHalfOpen {
		t.Fatalf("state after healthy probe = %v, want half-open", got)
	}
	// While the trial is in flight, everyone else is refused.
	if got := b.admit(); got != admitRefused {
		t.Fatalf("admission during trial = %v, want refused", got)
	}
}

func TestBreakerTrialVerdicts(t *testing.T) {
	// Trial success closes and resets.
	b := newBreaker(3, 4)
	fail(b, 3)
	for i := 0; i < 4; i++ {
		b.admit()
	}
	b.probeResult(true)
	b.report(true, true)
	if got := b.current(); got != breakerClosed {
		t.Fatalf("state after verified trial = %v, want closed", got)
	}
	// Closed with fails reset: it takes a full threshold to re-open.
	fail(b, 2)
	if got := b.current(); got != breakerClosed {
		t.Fatal("trial success did not reset the failure counter")
	}

	// Trial failure re-opens.
	b2 := newBreaker(3, 4)
	fail(b2, 3)
	for i := 0; i < 4; i++ {
		b2.admit()
	}
	b2.probeResult(true)
	if opened := b2.report(false, true); !opened {
		t.Fatal("failed trial did not report re-opening")
	}
	if got := b2.current(); got != breakerOpen {
		t.Fatalf("state after failed trial = %v, want open", got)
	}
}

// TestBreakerReleaseFreesTrialSlot pins the deadlock fix: a trial that ends
// without a verdict (cancelled hedge, 429 backpressure) must release the
// slot so the next admission can try again — otherwise a single cancelled
// trial wedges the breaker half-open forever.
func TestBreakerReleaseFreesTrialSlot(t *testing.T) {
	b := newBreaker(3, 4)
	fail(b, 3)
	for i := 0; i < 4; i++ {
		b.admit()
	}
	b.probeResult(true)
	// Trial in flight; admission refused.
	if got := b.admit(); got != admitRefused {
		t.Fatalf("admission during trial = %v, want refused", got)
	}
	b.release(true)
	if got := b.admit(); got != admitTrial {
		t.Fatalf("admission after released trial = %v, want a fresh trial", got)
	}
	// Non-trial release is a no-op.
	b.release(false)
	if got := b.admit(); got != admitRefused {
		t.Fatal("non-trial release cleared the in-flight trial slot")
	}
}

func TestBreakerSaturation(t *testing.T) {
	b := newBreaker(3, 8)
	fail(b, 100) // far past threshold; counter must saturate
	// A recovering server needs real successes: after saturation, exactly
	// threshold successes close the gap back to zero.
	for i := 0; i < 3; i++ {
		b.report(true, false)
	}
	fail(b, 2)
	// 3 fails (saturated) - 3 ok + 2 fails = 2 < threshold → no re-open
	// report from the non-trial path (state is managed by trials once open).
	if b.fails != 2 {
		t.Fatalf("fails = %d, want 2 (saturating, then decayed)", b.fails)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != 3 || b.cooldown != 8 {
		t.Fatalf("defaults = threshold %d cooldown %d, want 3/8", b.threshold, b.cooldown)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if breakerClosed.String() != "closed" || breakerHalfOpen.String() != "half-open" || breakerOpen.String() != "open" {
		t.Fatal("breaker state names drifted")
	}
}
