package remote

import "sync"

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	// breakerClosed: requests flow; consecutive failures accumulate.
	breakerClosed breakerState = iota
	// breakerHalfOpen: exactly one trial request probes the server; its
	// outcome closes or re-opens the breaker.
	breakerHalfOpen
	// breakerOpen: requests are refused without touching the server.
	breakerOpen
)

// String names the state for logs and gauges.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	}
	return "unknown"
}

// breaker is a per-server circuit breaker driven entirely by saturating
// success/failure counters — the same confidence-counter idiom as the
// prefetchers' throttles — never by wall time. Time-based cooldowns would
// make the chaos suite's behaviour depend on scheduling; counting refused
// admissions instead makes the whole state machine a pure function of the
// event sequence, so tests replay it exactly.
//
// closed --[fails reaches threshold]--> open
// open   --[cooldown refused admissions, then a healthy /healthz probe]--> half-open
// half-open --[trial verified]--> closed   --[trial failed]--> open
type breaker struct {
	mu sync.Mutex

	state breakerState
	// fails is the saturating failure counter: +1 per breaker-relevant
	// failure, -1 (floor 0) per success, open at threshold. Saturation at
	// the threshold means a recovering server needs real successes, not one
	// lucky response, to rebuild confidence.
	fails int
	// skips counts refused admissions while open; reaching cooldown permits
	// one health probe.
	skips int
	// probing marks the single half-open trial in flight.
	probing bool

	threshold int // failures to open
	cooldown  int // refused admissions while open before probing again
}

// admission is the verdict of breaker.admit.
type admission int

const (
	// admitOK: send the request (breaker closed).
	admitOK admission = iota
	// admitTrial: send the request as the half-open trial; report its
	// outcome with trial=true.
	admitTrial
	// admitProbeFirst: the open cooldown elapsed; health-probe the server
	// and call probeResult with the verdict before any request.
	admitProbeFirst
	// admitRefused: the breaker is open (or a trial is already in flight).
	admitRefused
)

// newBreaker builds a closed breaker; non-positive parameters take the
// defaults (threshold 3, cooldown 8).
func newBreaker(threshold, cooldown int) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 8
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// admit asks whether a request may be sent to this server now.
func (b *breaker) admit() admission {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return admitOK
	case breakerHalfOpen:
		if b.probing {
			return admitRefused
		}
		b.probing = true
		return admitTrial
	default: // open
		b.skips++
		if b.skips >= b.cooldown {
			b.skips = 0
			return admitProbeFirst
		}
		return admitRefused
	}
}

// probeResult reports a /healthz probe's verdict after admitProbeFirst:
// healthy transitions open → half-open and claims the trial slot (the
// caller's next request is the trial); unhealthy stays open for another
// cooldown. Returns whether the caller holds the trial.
func (b *breaker) probeResult(healthy bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		// A concurrent trial already moved the state; do not regress it.
		return false
	}
	if !healthy {
		return false
	}
	b.state = breakerHalfOpen
	b.probing = true
	return true
}

// report feeds one request outcome back. trial marks the half-open trial
// admitted by admitTrial/probeResult. It returns true when this report
// opened the breaker (for the opens counter).
func (b *breaker) report(ok, trial bool) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if trial {
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.fails = 0
			return false
		}
		opened = b.state != breakerOpen
		b.state = breakerOpen
		b.skips = 0
		b.fails = b.threshold
		return opened
	}
	if ok {
		if b.fails > 0 {
			b.fails--
		}
		return false
	}
	if b.fails < b.threshold {
		b.fails++
	}
	if b.fails >= b.threshold && b.state == breakerClosed {
		b.state = breakerOpen
		b.skips = 0
		return true
	}
	return false
}

// release abandons an admitted request without a verdict — the attempt was
// cancelled (hedge race) or answered with pure backpressure (429), which
// says nothing about the server's health. A held half-open trial slot must
// be released or the breaker would deadlock refusing every admission.
func (b *breaker) release(trial bool) {
	if !trial {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// current returns the state for gauges and routing decisions.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
