package remote

// The client tests drive RunRemote against httptest fakes. The determinism
// lint's net/http rule carves out internal/remote as a whole (the production
// client is the repo's one sanctioned HTTP corner), so httptest is fine
// here. Sleeps go through the sleepFn seam — no test actually waits out a
// backoff schedule.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ipex/internal/trace"
)

// testKey is an arbitrary cell key; routing only needs it to be non-empty
// and stable.
const testKey = "deadbeefdeadbeefdeadbeefdeadbeef"

// testBody is a valid, strictly-decodable nvp.Result body.
const testBody = `{"App":"fft","Cycles":123,"Completed":true}`

// serveVerified writes body under the full response envelope: key header,
// sha256 header, then the bytes.
func serveVerified(w http.ResponseWriter, key, body string) {
	sum := sha256.Sum256([]byte(body))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ipex-Key", key)
	w.Header().Set("X-Ipex-Sha256", hex.EncodeToString(sum[:]))
	fmt.Fprint(w, body)
}

// newTestClient builds a client over the given servers with sleeps recorded
// instead of slept.
func newTestClient(t *testing.T, o Options) (*Client, *[]time.Duration) {
	t.Helper()
	c, err := NewClient(o)
	if err != nil {
		t.Fatal(err)
	}
	slept := &[]time.Duration{}
	c.sleepFn = func(_ context.Context, d time.Duration) { *slept = append(*slept, d) }
	return c, slept
}

// checkPartition asserts the attempt-outcome invariant: every attempt lands
// in exactly one bucket.
func checkPartition(t *testing.T, s Snapshot) {
	t.Helper()
	if got := s.OK + s.StatusErrors + s.NetErrors + s.VerifyErrors + s.Cancelled; got != s.Attempts {
		t.Fatalf("attempt buckets do not partition: ok+status+net+verify+cancelled = %d, attempts = %d (%+v)",
			got, s.Attempts, s)
	}
}

func TestRunRemoteSuccess(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/run" || r.Method != http.MethodPost {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		serveVerified(w, testKey, testBody)
	}))
	defer ts.Close()

	c, slept := newTestClient(t, Options{Servers: []string{ts.URL}})
	res, handled, err := c.RunRemote(testKey, "fft/0.1", []byte(`{"app":"fft"}`))
	if err != nil || !handled {
		t.Fatalf("RunRemote = handled %v, err %v; want handled, nil", handled, err)
	}
	if res.App != "fft" || res.Cycles != 123 || !res.Completed {
		t.Fatalf("decoded result = %+v, want the served body", res)
	}
	if len(*slept) != 0 {
		t.Fatalf("success slept %v, want no backoff", *slept)
	}
	s := c.Snapshot()
	if s.Attempts != 1 || s.OK != 1 || s.CellsRemote != 1 {
		t.Fatalf("snapshot = %+v, want exactly one ok attempt and one remote cell", s)
	}
	checkPartition(t, s)
}

func TestRetryAfterHonoredAndCapped(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
		case 2:
			w.Header().Set("Retry-After", "600")
			http.Error(w, "still busy", http.StatusTooManyRequests)
		default:
			serveVerified(w, testKey, testBody)
		}
	}))
	defer ts.Close()

	c, slept := newTestClient(t, Options{Servers: []string{ts.URL}, Retries: 3})
	_, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`))
	if err != nil || !handled {
		t.Fatalf("RunRemote = handled %v, err %v", handled, err)
	}
	// Round 2 honors the 1s hint verbatim; round 3 caps 600s at the default
	// 2s RetryAfterCap.
	want := []time.Duration{1 * time.Second, 2 * time.Second}
	if len(*slept) != 2 || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("backoff sleeps = %v, want %v", *slept, want)
	}
	s := c.Snapshot()
	if s.RetryAfterHonored != 2 || s.Retries != 2 || s.StatusErrors != 2 || s.OK != 1 {
		t.Fatalf("snapshot = %+v, want 2 honored hints, 2 retries, 2 status errors, 1 ok", s)
	}
	checkPartition(t, s)
	// 429 is breaker-neutral backpressure: the breaker must still be closed.
	if got := c.servers[0].br.current(); got != breakerClosed {
		t.Fatalf("breaker after 429s = %v, want closed", got)
	}
}

func TestBackoffScheduleDeterministic(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	run := func() []time.Duration {
		// A high threshold keeps the breaker closed for the whole budget so
		// every round actually routes and backs off.
		c, slept := newTestClient(t, Options{Servers: []string{ts.URL}, Retries: 3, FailThreshold: 100})
		if _, handled, _ := c.RunRemote(testKey, "cell", []byte(`{}`)); handled {
			t.Fatal("persistent 500s should degrade to local execution")
		}
		s := c.Snapshot()
		if s.CellsLocalFallback != 1 || s.StatusErrors != 4 {
			t.Fatalf("snapshot = %+v, want 1 fallback cell over 4 status errors", s)
		}
		checkPartition(t, s)
		return *slept
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("3 retries slept %d times, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff schedule not deterministic: %v vs %v", a, b)
		}
		base := 50 * time.Millisecond << i
		if a[i] < base || a[i] > base+base/2 {
			t.Fatalf("round %d backoff %v outside [%v, %v]", i+1, a[i], base, base+base/2)
		}
	}
}

func TestHedgeBackupWins(t *testing.T) {
	var aStall, bStall atomic.Bool
	stallable := func(stall *atomic.Bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if stall.Load() {
				// Drain the body so the server's background read can detect
				// the client disconnect, then hold until the hedge race
				// cancels us.
				_, _ = io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				return
			}
			serveVerified(w, testKey, testBody)
		}
	}
	a := httptest.NewServer(stallable(&aStall))
	defer a.Close()
	b := httptest.NewServer(stallable(&bStall))
	defer b.Close()

	c, _ := newTestClient(t, Options{
		Servers:    []string{a.URL, b.URL},
		HedgeAfter: 20 * time.Millisecond,
	})
	// Stall whichever server rendezvous ranks primary for this key, so the
	// delayed hedge on the backup must win the race.
	if c.rank(testKey)[0].url == a.URL {
		aStall.Store(true)
	} else {
		bStall.Store(true)
	}
	res, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`))
	if err != nil || !handled || res.Cycles != 123 {
		t.Fatalf("hedged RunRemote = %+v handled %v err %v", res, handled, err)
	}
	s := c.Snapshot()
	if s.Hedges != 1 || s.HedgeWins != 1 || s.CellsRemote != 1 {
		t.Fatalf("snapshot = %+v, want one winning hedge", s)
	}
	// The cancelled primary concludes asynchronously after the winner
	// returns; wait for its bucket before checking the partition.
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("stalled primary never concluded as cancelled: %+v", c.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	checkPartition(t, c.Snapshot())
	// A hedge-race cancellation says nothing about server health.
	for _, sv := range c.servers {
		if got := sv.br.current(); got != breakerClosed {
			t.Fatalf("breaker on %s = %v after hedge race, want closed", sv.url, got)
		}
	}
}

// forceHalfOpen drives a breaker to half-open with its trial slot free —
// the state a recovering server is in when route() considers it.
func forceHalfOpen(br *breaker) {
	for !br.report(false, false) {
	}
	for br.admit() != admitProbeFirst {
	}
	br.probeResult(true)
	br.release(true)
}

func TestUnlaunchedHedgeBackupReleasesTrial(t *testing.T) {
	// Fast primary, half-open backup, hedge timer far in the future: route()
	// claims the backup's single trial slot, but the primary answers before
	// the hedge fires so the backup never launches. Its slot must be
	// released, or the backup's breaker would refuse every future admission
	// and the recovering server would be permanently out of rotation.
	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			serveVerified(w, testKey, testBody)
		}))
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()

	c, _ := newTestClient(t, Options{Servers: []string{a.URL, b.URL}, HedgeAfter: time.Hour})
	backup := c.rank(testKey)[1]
	forceHalfOpen(backup.br)

	if _, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`)); !handled || err != nil {
		t.Fatalf("RunRemote: handled %v err %v", handled, err)
	}
	if got := backup.br.admit(); got != admitTrial {
		t.Fatalf("backup breaker admission after unlaunched hedge = %v, want admitTrial (slot released)", got)
	}
	s := c.Snapshot()
	if s.Hedges != 0 || s.Attempts != 1 || s.CellsRemote != 1 {
		t.Fatalf("snapshot = %+v, want a single unhedged attempt", s)
	}
	checkPartition(t, s)
}

func TestNoHedgeSelectsNoBackup(t *testing.T) {
	// With hedging disabled a backup can never launch, so route() must not
	// admit one at all — admitting would claim breaker state (here: the
	// half-open trial slot) for a request that never happens.
	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			serveVerified(w, testKey, testBody)
		}))
	}
	a, b := mk(), mk()
	defer a.Close()
	defer b.Close()

	c, _ := newTestClient(t, Options{Servers: []string{a.URL, b.URL}})
	second := c.rank(testKey)[1]
	forceHalfOpen(second.br)

	if _, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`)); !handled || err != nil {
		t.Fatalf("RunRemote: handled %v err %v", handled, err)
	}
	if got := second.br.admit(); got != admitTrial {
		t.Fatalf("second server's breaker after unhedged cell = %v, want its trial slot untouched", got)
	}
	s := c.Snapshot()
	if s.Attempts != 1 {
		t.Fatalf("snapshot = %+v, want the primary attempted alone", s)
	}
	checkPartition(t, s)
}

func TestRetryAfterScopedToSender(t *testing.T) {
	// The primary answers 503 with a Retry-After and opens its breaker
	// (threshold 1); the next round routes to the other server, which never
	// asked for backpressure — the hint must not delay that attempt.
	var aIsPrimary atomic.Bool
	mk := func(isA bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			if aIsPrimary.Load() == isA {
				w.Header().Set("Retry-After", "1")
				http.Error(w, "maintenance", http.StatusServiceUnavailable)
				return
			}
			serveVerified(w, testKey, testBody)
		}))
	}
	a, b := mk(true), mk(false)
	defer a.Close()
	defer b.Close()

	c, slept := newTestClient(t, Options{Servers: []string{a.URL, b.URL}, Retries: 2, FailThreshold: 1})
	aIsPrimary.Store(c.rank(testKey)[0].url == a.URL)

	res, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`))
	if err != nil || !handled || res.Cycles != 123 {
		t.Fatalf("RunRemote = %+v handled %v err %v", res, handled, err)
	}
	// Round 2's backoff is the jittered exponential base, not the stale 1s
	// hint from the server that dropped out of routing.
	base := 50 * time.Millisecond
	if len(*slept) != 1 || (*slept)[0] < base || (*slept)[0] > base+base/2 {
		t.Fatalf("backoff sleeps = %v, want one exponential-schedule sleep in [%v, %v]", *slept, base, base+base/2)
	}
	s := c.Snapshot()
	if s.RetryAfterHonored != 0 || s.BreakerOpens != 1 || s.CellsRemote != 1 {
		t.Fatalf("snapshot = %+v, want the hint dropped with the sender's breaker open", s)
	}
	checkPartition(t, s)
}

func TestBaseContextCancelDegrades(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		serveVerified(w, testKey, testBody)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, slept := newTestClient(t, Options{Servers: []string{ts.URL}, Retries: 3, BaseContext: ctx})
	if _, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`)); handled || err != nil {
		t.Fatalf("cancelled base context must degrade to local: handled %v err %v", handled, err)
	}
	s := c.Snapshot()
	if s.Attempts != 0 || s.CellsUnroutable != 1 {
		t.Fatalf("snapshot = %+v, want no attempts spent after shutdown", s)
	}
	if len(*slept) != 0 {
		t.Fatalf("slept %v after shutdown, want nothing", *slept)
	}
	checkPartition(t, s)
}

func TestRealSleepInterruptible(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	realSleep(ctx, time.Hour)
	if time.Since(start) > 5*time.Second {
		t.Fatal("realSleep ignored context cancellation")
	}
}

func TestVerifyFailures(t *testing.T) {
	sumOf := func(body string) string {
		sum := sha256.Sum256([]byte(body))
		return hex.EncodeToString(sum[:])
	}
	cases := []struct {
		name    string
		handler http.HandlerFunc
	}{
		{"wrong-key", func(w http.ResponseWriter, _ *http.Request) {
			serveVerified(w, "someoneelseskey", testBody)
		}},
		{"wrong-sha256", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("X-Ipex-Key", testKey)
			w.Header().Set("X-Ipex-Sha256", sumOf("different bytes"))
			fmt.Fprint(w, testBody)
		}},
		{"missing-envelope", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprint(w, testBody)
		}},
		{"garbage-json", func(w http.ResponseWriter, _ *http.Request) {
			serveVerified(w, testKey, `{"App": not-json`)
		}},
		{"unknown-field", func(w http.ResponseWriter, _ *http.Request) {
			serveVerified(w, testKey, `{"App":"fft","Bogus":1}`)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(tc.handler)
			defer ts.Close()
			c, _ := newTestClient(t, Options{Servers: []string{ts.URL}, Retries: 1, FailThreshold: 100})
			if _, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`)); handled || err != nil {
				t.Fatalf("unverifiable responses must degrade to local: handled %v err %v", handled, err)
			}
			s := c.Snapshot()
			if s.VerifyErrors != 2 || s.CellsLocalFallback != 1 {
				t.Fatalf("snapshot = %+v, want 2 verify errors then local fallback", s)
			}
			checkPartition(t, s)
		})
	}
}

func TestAllServersDownFallsBack(t *testing.T) {
	// A listener that is closed immediately: connection refused, reliably.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	c, _ := newTestClient(t, Options{Servers: []string{url}, Retries: 2, FailThreshold: 100})
	if _, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`)); handled || err != nil {
		t.Fatalf("dead fleet must degrade to local: handled %v err %v", handled, err)
	}
	s := c.Snapshot()
	if s.NetErrors != 3 || s.CellsLocalFallback != 1 {
		t.Fatalf("snapshot = %+v, want 3 net errors then local fallback", s)
	}
	checkPartition(t, s)
}

func TestBreakerOpensThenUnroutable(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	// Threshold 1: the first net error opens the only server's breaker.
	c, _ := newTestClient(t, Options{Servers: []string{url}, Retries: 0, FailThreshold: 1, Cooldown: 8})
	if _, handled, _ := c.RunRemote(testKey, "a", []byte(`{}`)); handled {
		t.Fatal("first cell should fall back after its net error")
	}
	s := c.Snapshot()
	if s.BreakerOpens != 1 || s.CellsLocalFallback != 1 {
		t.Fatalf("snapshot = %+v, want the breaker opened on the first cell", s)
	}
	// Second cell: the breaker refuses admission, so no attempt is even
	// made — the cell is unroutable and runs locally.
	if _, handled, _ := c.RunRemote(testKey, "b", []byte(`{}`)); handled {
		t.Fatal("unroutable cell should fall back")
	}
	s = c.Snapshot()
	if s.CellsUnroutable != 1 || s.Attempts != 1 {
		t.Fatalf("snapshot = %+v, want 1 unroutable cell and no new attempts", s)
	}
	checkPartition(t, s)
}

func TestProbeGatesReentry(t *testing.T) {
	var healthy atomic.Bool
	var probes atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			probes.Add(1)
			if healthy.Load() {
				fmt.Fprintln(w, "ok")
			} else {
				http.Error(w, "draining", http.StatusServiceUnavailable)
			}
			return
		}
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		serveVerified(w, testKey, testBody)
	}))
	defer ts.Close()

	// Threshold 1 opens on the first failure; cooldown 1 means the very next
	// admission asks for a health probe.
	c, _ := newTestClient(t, Options{Servers: []string{ts.URL}, Retries: 0, FailThreshold: 1, Cooldown: 1})
	if _, handled, _ := c.RunRemote(testKey, "a", []byte(`{}`)); handled {
		t.Fatal("failing server should fall back")
	}
	// Unhealthy probe: refused, still unroutable.
	if _, handled, _ := c.RunRemote(testKey, "b", []byte(`{}`)); handled {
		t.Fatal("unhealthy probe must not re-admit the server")
	}
	s := c.Snapshot()
	if s.Probes != 1 || s.ProbeFailures != 1 || s.CellsUnroutable != 1 {
		t.Fatalf("snapshot = %+v, want one failed probe and an unroutable cell", s)
	}
	// Server recovers: the next probe passes, the half-open trial succeeds,
	// and the breaker closes.
	healthy.Store(true)
	res, handled, err := c.RunRemote(testKey, "c", []byte(`{}`))
	if err != nil || !handled || res.Cycles != 123 {
		t.Fatalf("recovered server: res %+v handled %v err %v", res, handled, err)
	}
	if got := c.servers[0].br.current(); got != breakerClosed {
		t.Fatalf("breaker after verified trial = %v, want closed", got)
	}
	s = c.Snapshot()
	if s.Probes != 2 || s.CellsRemote != 1 {
		t.Fatalf("snapshot = %+v, want a second, passing probe and a remote cell", s)
	}
	checkPartition(t, s)
}

func TestNoLocalFallbackFailsCell(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()

	c, _ := newTestClient(t, Options{Servers: []string{url}, Retries: 1, FailThreshold: 100, NoLocalFallback: true})
	_, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`))
	if !handled || err == nil {
		t.Fatalf("with -no-local-fallback the cell must hard-fail: handled %v err %v", handled, err)
	}
	if !strings.Contains(err.Error(), "local fallback disabled") {
		t.Fatalf("error does not explain the failure mode: %v", err)
	}
	s := c.Snapshot()
	if s.CellsFailed != 1 || s.CellsLocalFallback != 0 {
		t.Fatalf("snapshot = %+v, want one failed cell and no fallback", s)
	}
	checkPartition(t, s)
}

func TestRendezvousRoutingStable(t *testing.T) {
	c, _ := newTestClient(t, Options{Servers: []string{
		"http://127.0.0.1:1", "http://127.0.0.1:2", "http://127.0.0.1:3",
	}})
	// Same key, same order, always.
	a := c.rank("cell-key-1")
	b := c.rank("cell-key-1")
	for i := range a {
		if a[i].url != b[i].url {
			t.Fatal("rendezvous rank not stable for a fixed key")
		}
	}
	// Different keys spread across primaries (with 3 servers and a handful
	// of keys, at least two distinct primaries is effectively certain).
	primaries := map[string]bool{}
	for i := 0; i < 16; i++ {
		primaries[c.rank(fmt.Sprintf("cell-key-%d", i))[0].url] = true
	}
	if len(primaries) < 2 {
		t.Fatalf("16 keys all ranked the same primary: %v", primaries)
	}
}

func TestNewClientValidation(t *testing.T) {
	cases := []struct {
		name    string
		servers []string
	}{
		{"empty", nil},
		{"blank-url", []string{""}},
		{"no-scheme", []string{"localhost:8080"}},
		{"duplicate", []string{"http://a:1", "http://a:1/"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewClient(Options{Servers: tc.servers}); err == nil {
				t.Fatalf("NewClient accepted %v", tc.servers)
			}
		})
	}
	// Trailing slashes are normalized, not rejected.
	c, err := NewClient(Options{Servers: []string{"http://a:1/", "https://b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.servers[0].url != "http://a:1" {
		t.Fatalf("trailing slash not trimmed: %q", c.servers[0].url)
	}
}

func TestSharedRegistryAndWriteProm(t *testing.T) {
	reg := trace.NewRegistry()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		serveVerified(w, testKey, testBody)
	}))
	defer ts.Close()
	c, err := NewClient(Options{Servers: []string{ts.URL}, Metrics: reg, Clock: &trace.FakeClock{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, handled, err := c.RunRemote(testKey, "cell", []byte(`{}`)); !handled || err != nil {
		t.Fatalf("RunRemote: handled %v err %v", handled, err)
	}
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ipex_remote_attempts_total 1") &&
		!strings.Contains(sb.String(), `remote.attempts`) && !strings.Contains(sb.String(), "remote_attempts") {
		t.Fatalf("shared registry did not pick up remote counters:\n%s", sb.String())
	}
	sb.Reset()
	if err := c.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ipex_remote_breaker_state{server=",
		"ipex_remote_server_attempts_total{server=",
		"ipex_remote_server_failures_total{server=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteProm missing %q:\n%s", want, out)
		}
	}
	if !strings.HasPrefix(c.Summary(), "remote: cells=1 fallback=0 unroutable=0 failed=0 attempts=1 ok=1") {
		t.Fatalf("summary format drifted: %s", c.Summary())
	}
}
