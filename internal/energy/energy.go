// Package energy defines the units, constants, and accounting used by the
// NVP simulator's energy model.
//
// All dynamic energies are expressed in nanojoules (nJ) and all leakage
// powers in milliwatts (mW), matching Table 1 of the IPEX paper. Time is
// expressed in CPU cycles of the 200 MHz nonvolatile processor, so one cycle
// is 5 ns and a leakage power of 1 mW costs 0.005 nJ per cycle.
package energy

// Simulator clock. The paper models a single-core in-order NVP clocked at
// 200 MHz (Ma et al., HPCA'15), validated against a real NVP platform.
const (
	ClockHz      = 200e6
	CycleSeconds = 1.0 / ClockHz
	CycleNanos   = 5.0
)

// NJ is an amount of energy in nanojoules.
type NJ = float64

// MW is a power in milliwatts.
type MW = float64

// LeakNJPerCycle converts a leakage power in mW into the energy it drains
// per CPU cycle, in nJ: P[mW] * 5ns = P * 0.005 nJ.
func LeakNJPerCycle(p MW) NJ {
	return p * 1e-3 * CycleSeconds * 1e9
}

// Table 1 defaults (NVSRAMCache baseline and IPEX share them).
const (
	// CacheAccessNJ is the per-access dynamic energy of the default 2 kB
	// 4-way SRAM cache (16 B blocks, 1-cycle hit).
	CacheAccessNJ NJ = 0.015
	// CacheLeakMW is the leakage power of one default 2 kB cache.
	CacheLeakMW MW = 0.205

	// NVMReadNJPerByte / NVMWriteNJPerByte are the Table-1 ReRAM access
	// energies (0.039 nJ read, 0.160 nJ write), interpreted per byte; one
	// 16 B block access costs 16×. This interpretation reproduces the
	// paper's §2.2 calibration: with it, the minimum useful-prefetch
	// probability of Inequality 4 lands at ≈46 % for the default system
	// (the paper reports 46.04 %), whereas a per-block reading would make
	// prefetches energetically near-free (P_min ≈ 3 %), contradicting the
	// paper's own analysis.
	NVMReadNJPerByte  NJ = 0.039
	NVMWriteNJPerByte NJ = 0.160
	// NVMReadNJ / NVMWriteNJ are the per-block (16 B) access energies.
	NVMReadNJ  NJ = NVMReadNJPerByte * 16
	NVMWriteNJ NJ = NVMWriteNJPerByte * 16
	// NVMLeakMW is the ReRAM leakage power at the default 16 MB capacity.
	NVMLeakMW MW = 12.133
)

// Core-side constants. The paper does not tabulate these; they are chosen in
// the same regime as McPAT 45 nm numbers for a tiny in-order embedded core
// and documented here so results are reproducible.
const (
	// ComputeNJPerInst is the core dynamic energy per committed instruction
	// (pipeline, register file, ALU).
	ComputeNJPerInst NJ = 0.012
	// CoreLeakMW is the core leakage power excluding caches and NVM.
	CoreLeakMW MW = 0.9
	// RegisterBackupNJ / RegisterRestoreNJ cover JIT-checkpointing all
	// volatile registers (incl. PC) into nonvolatile flip-flops and back.
	RegisterBackupNJ  NJ = 1.6
	RegisterRestoreNJ NJ = 1.2
)

// Breakdown accumulates consumed energy into the four buckets the paper's
// Figure 14 reports. The zero value is ready to use.
type Breakdown struct {
	Cache   NJ // SRAM cache dynamic + leakage (ICache + DCache + prefetch buffers)
	Memory  NJ // NVM dynamic (reads, writes, prefetch fills) + leakage
	Compute NJ // core dynamic + core leakage
	BkRst   NJ // JIT checkpoint (backup) + restoration
}

// Total returns the sum of all buckets.
func (b Breakdown) Total() NJ {
	return b.Cache + b.Memory + b.Compute + b.BkRst
}

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Cache += o.Cache
	b.Memory += o.Memory
	b.Compute += o.Compute
	b.BkRst += o.BkRst
}

// Scale returns b with every bucket multiplied by f (used to normalize a
// breakdown to a baseline total).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		Cache:   b.Cache * f,
		Memory:  b.Memory * f,
		Compute: b.Compute * f,
		BkRst:   b.BkRst * f,
	}
}
