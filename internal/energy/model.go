package energy

import "fmt"

// NVMTech selects the nonvolatile main-memory technology (Fig. 21 of the
// paper sweeps these three).
type NVMTech int

const (
	ReRAM NVMTech = iota
	STTRAM
	PCM
)

// String implements fmt.Stringer.
func (t NVMTech) String() string {
	switch t {
	case ReRAM:
		return "ReRAM"
	case STTRAM:
		return "STTRAM"
	case PCM:
		return "PCM"
	}
	return fmt.Sprintf("NVMTech(%d)", int(t))
}

// NVMParams describes one NVM configuration: per-block (16 B) access energy
// and latency plus array leakage. ReRAM at 16 MB uses the paper's Table 1
// values verbatim; the other technologies and capacities follow NVSim-style
// scaling documented next to each rule.
type NVMParams struct {
	Tech        NVMTech
	SizeBytes   int64
	ReadNJ      NJ
	WriteNJ     NJ
	LeakMW      MW
	ReadCycles  uint64
	WriteCycles uint64
}

// nvmBase holds each technology's parameters at the reference 16 MB
// capacity. Latencies are for a 200 MHz clock (5 ns cycles): the on-chip
// ReRAM reads in ~55 ns and writes in ~140 ns; STT-RAM is faster, PCM
// markedly slower — the relative ordering NVSim reports for low-power
// embedded arrays. The ReRAM read latency (16 cycles) is calibrated so the
// prefetch-depth/latency tradeoff matches the paper's regime: degree-2
// prefetching is the sensible conventional default, and the §2.2 minimum
// useful-prefetch probability evaluates to ≈37 % for the default system
// (the paper reports 46.04 %; see EXPERIMENTS.md).
var nvmBase = map[NVMTech]NVMParams{
	ReRAM: {
		Tech: ReRAM, SizeBytes: 16 << 20,
		ReadNJ: NVMReadNJ, WriteNJ: NVMWriteNJ, LeakMW: NVMLeakMW,
		ReadCycles: 16, WriteCycles: 40,
	},
	STTRAM: {
		Tech: STTRAM, SizeBytes: 16 << 20,
		ReadNJ: 0.028 * 16, WriteNJ: 0.210 * 16, LeakMW: 13.9,
		ReadCycles: 11, WriteCycles: 30,
	},
	PCM: {
		Tech: PCM, SizeBytes: 16 << 20,
		ReadNJ: 0.055 * 16, WriteNJ: 0.480 * 16, LeakMW: 10.4,
		ReadCycles: 60, WriteCycles: 180,
	},
}

// NVMFor returns the parameters of a memory of the given technology and
// capacity. Scaling vs. the 16 MB reference follows the monotone trends the
// paper leans on in §6.7.6: larger arrays have longer wordlines/bitlines, so
// per-access energy and latency grow roughly with sqrt of capacity, and
// leakage grows linearly with capacity.
func NVMFor(tech NVMTech, sizeBytes int64) NVMParams {
	base, ok := nvmBase[tech]
	if !ok {
		base = nvmBase[ReRAM]
	}
	if sizeBytes <= 0 {
		sizeBytes = base.SizeBytes
	}
	ratio := float64(sizeBytes) / float64(base.SizeBytes)
	sqrt := sqrtApprox(ratio)
	p := base
	p.SizeBytes = sizeBytes
	p.ReadNJ = base.ReadNJ * sqrt
	p.WriteNJ = base.WriteNJ * sqrt
	p.LeakMW = base.LeakMW * ratio
	p.ReadCycles = scaleCycles(base.ReadCycles, sqrt)
	p.WriteCycles = scaleCycles(base.WriteCycles, sqrt)
	return p
}

func scaleCycles(c uint64, f float64) uint64 {
	v := uint64(float64(c)*f + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// sqrtApprox is a Newton-iteration square root; it avoids importing math in
// this hot path and is exact enough for parameter scaling.
func sqrtApprox(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// CacheParams describes one SRAM cache configuration. The 2 kB 4-way point
// uses Table 1 verbatim; other sizes scale dynamic energy with sqrt(capacity)
// and leakage super-linearly with capacity (exponent 2.5), and associativity
// adds a per-way comparator cost.
//
// The leakage exponent is calibrated against the paper's own Figure 1 data:
// at 8 kB per cache the paper measures 54.38 % of total energy going to
// cache leakage, which against the fixed 12.1 mW NVM array requires roughly
// 6–8 mW per 8 kB cache — about 30–40x the 2 kB point, i.e. far steeper
// than linear. That steep growth is what makes performance peak at 2 kB
// (Figure 1's black curve) and motivates small caches for EHSs.
type CacheParams struct {
	SizeBytes int
	Ways      int
	BlockSize int
	AccessNJ  NJ
	LeakMW    MW
	HitCycles uint64
}

// DefaultCacheSize is the paper's per-cache default (2 kB each for ICache
// and DCache).
const DefaultCacheSize = 2048

// DefaultBlockSize is the cache block (and prefetch-buffer entry) size.
const DefaultBlockSize = 16

// CacheFor returns parameters for an SRAM cache of the given geometry.
func CacheFor(sizeBytes, ways int) CacheParams {
	if sizeBytes <= 0 {
		sizeBytes = DefaultCacheSize
	}
	if ways <= 0 {
		ways = 4
	}
	ratio := float64(sizeBytes) / float64(DefaultCacheSize)
	wayFactor := 1 + 0.06*float64(ways-4) // extra tag comparators per way
	if wayFactor < 0.8 {
		wayFactor = 0.8
	}
	// ratio^2.5 == ratio^2 * sqrt(ratio); see the type comment for the
	// Figure-1 calibration behind the exponent.
	leakScale := ratio * ratio * sqrtApprox(ratio)
	return CacheParams{
		SizeBytes: sizeBytes,
		Ways:      ways,
		BlockSize: DefaultBlockSize,
		AccessNJ:  CacheAccessNJ * sqrtApprox(ratio) * wayFactor,
		LeakMW:    CacheLeakMW * leakScale,
		HitCycles: 1,
	}
}

// MinUsefulProbability implements Inequality 4 of the paper: the minimum
// probability P of a prefetch being useful for prefetching to reduce energy
// waste versus no prefetching, P > 1 - Eleak/(Eprefetch + Eleak), where
// Eleak is the system leakage wasted during the stall of the miss the
// prefetch would have hidden, and Eprefetch the cost of fetching the block.
func MinUsefulProbability(ePrefetch, eLeak NJ) float64 {
	if ePrefetch+eLeak == 0 {
		return 0
	}
	return 1 - eLeak/(ePrefetch+eLeak)
}
