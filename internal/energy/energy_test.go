package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLeakNJPerCycle(t *testing.T) {
	// 1 mW over one 5 ns cycle is 5 pJ = 0.005 nJ.
	if got := LeakNJPerCycle(1); math.Abs(got-0.005) > 1e-12 {
		t.Errorf("LeakNJPerCycle(1mW) = %v, want 0.005", got)
	}
	if got := LeakNJPerCycle(0); got != 0 {
		t.Errorf("LeakNJPerCycle(0) = %v", got)
	}
}

func TestClockConstantsConsistent(t *testing.T) {
	if math.Abs(CycleSeconds*ClockHz-1) > 1e-12 {
		t.Errorf("CycleSeconds * ClockHz = %v, want 1", CycleSeconds*ClockHz)
	}
	if math.Abs(CycleNanos-CycleSeconds*1e9) > 1e-12 {
		t.Errorf("CycleNanos inconsistent: %v vs %v", CycleNanos, CycleSeconds*1e9)
	}
}

func TestTable1Values(t *testing.T) {
	// The per-byte Table-1 numbers must be preserved exactly.
	if NVMReadNJPerByte != 0.039 || NVMWriteNJPerByte != 0.160 {
		t.Errorf("Table-1 NVM energies changed: read=%v write=%v", NVMReadNJPerByte, NVMWriteNJPerByte)
	}
	if NVMReadNJ != 0.039*16 || NVMWriteNJ != 0.160*16 {
		t.Errorf("per-block energies inconsistent: read=%v write=%v", NVMReadNJ, NVMWriteNJ)
	}
	if CacheAccessNJ != 0.015 || CacheLeakMW != 0.205 || NVMLeakMW != 12.133 {
		t.Error("Table-1 cache/leak constants changed")
	}
}

func TestBreakdownTotalAndAdd(t *testing.T) {
	a := Breakdown{Cache: 1, Memory: 2, Compute: 3, BkRst: 4}
	if a.Total() != 10 {
		t.Errorf("Total = %v, want 10", a.Total())
	}
	b := Breakdown{Cache: 10, Memory: 20, Compute: 30, BkRst: 40}
	a.Add(b)
	if a.Total() != 110 || a.Cache != 11 || a.BkRst != 44 {
		t.Errorf("Add result wrong: %+v", a)
	}
}

func TestBreakdownScale(t *testing.T) {
	a := Breakdown{Cache: 2, Memory: 4, Compute: 6, BkRst: 8}
	s := a.Scale(0.5)
	if s.Cache != 1 || s.Memory != 2 || s.Compute != 3 || s.BkRst != 4 {
		t.Errorf("Scale(0.5) = %+v", s)
	}
	// Scaling must not mutate the receiver.
	if a.Cache != 2 {
		t.Error("Scale mutated receiver")
	}
}

func TestBreakdownAddCommutes(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	f := func(a, b Breakdown) bool {
		a = Breakdown{clamp(a.Cache), clamp(a.Memory), clamp(a.Compute), clamp(a.BkRst)}
		b = Breakdown{clamp(b.Cache), clamp(b.Memory), clamp(b.Compute), clamp(b.BkRst)}
		x, y := a, b
		x.Add(b)
		y.Add(a)
		return math.Abs(x.Total()-y.Total()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
