package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNVMForReferencePoint(t *testing.T) {
	p := NVMFor(ReRAM, 16<<20)
	if p.ReadNJ != NVMReadNJ || p.WriteNJ != NVMWriteNJ || p.LeakMW != NVMLeakMW {
		t.Errorf("16MB ReRAM must use Table-1 values verbatim, got %+v", p)
	}
	if p.ReadCycles == 0 || p.WriteCycles <= p.ReadCycles {
		t.Errorf("implausible latencies: %+v", p)
	}
}

func TestNVMForScalingMonotone(t *testing.T) {
	for _, tech := range []NVMTech{ReRAM, STTRAM, PCM} {
		small := NVMFor(tech, 2<<20)
		base := NVMFor(tech, 16<<20)
		big := NVMFor(tech, 32<<20)
		if !(small.ReadNJ < base.ReadNJ && base.ReadNJ < big.ReadNJ) {
			t.Errorf("%v: read energy not monotone in size", tech)
		}
		if !(small.LeakMW < base.LeakMW && base.LeakMW < big.LeakMW) {
			t.Errorf("%v: leakage not monotone in size", tech)
		}
		if !(small.ReadCycles <= base.ReadCycles && base.ReadCycles <= big.ReadCycles) {
			t.Errorf("%v: latency not monotone in size", tech)
		}
	}
}

func TestNVMForLeakScalesLinearly(t *testing.T) {
	base := NVMFor(ReRAM, 16<<20)
	double := NVMFor(ReRAM, 32<<20)
	if math.Abs(double.LeakMW-2*base.LeakMW) > 1e-9 {
		t.Errorf("leak at 32MB = %v, want %v", double.LeakMW, 2*base.LeakMW)
	}
}

func TestNVMTechOrdering(t *testing.T) {
	// §6.7.7: PCM is the slowest and most access-hungry; STT-RAM reads
	// fastest. The IPEX speedup ordering in Fig. 21 depends on this.
	st, re, pcm := NVMFor(STTRAM, 0), NVMFor(ReRAM, 0), NVMFor(PCM, 0)
	if !(st.ReadCycles < re.ReadCycles && re.ReadCycles < pcm.ReadCycles) {
		t.Errorf("read latency ordering wrong: %d %d %d", st.ReadCycles, re.ReadCycles, pcm.ReadCycles)
	}
	if !(pcm.WriteNJ > re.WriteNJ) {
		t.Errorf("PCM writes should cost more than ReRAM: %v vs %v", pcm.WriteNJ, re.WriteNJ)
	}
}

func TestNVMForDefaultsOnBadInput(t *testing.T) {
	p := NVMFor(NVMTech(99), 0)
	if p.SizeBytes != 16<<20 {
		t.Errorf("unknown tech should fall back to 16MB ReRAM, got %+v", p)
	}
}

func TestNVMTechString(t *testing.T) {
	if ReRAM.String() != "ReRAM" || STTRAM.String() != "STTRAM" || PCM.String() != "PCM" {
		t.Error("NVMTech String() wrong")
	}
}

func TestCacheForReferencePoint(t *testing.T) {
	p := CacheFor(DefaultCacheSize, 4)
	if math.Abs(p.AccessNJ-CacheAccessNJ) > 1e-9 {
		t.Errorf("2kB 4-way access energy = %v, want Table-1 %v", p.AccessNJ, CacheAccessNJ)
	}
	if math.Abs(p.LeakMW-CacheLeakMW) > 1e-9 {
		t.Errorf("2kB leak = %v, want %v", p.LeakMW, CacheLeakMW)
	}
	if p.HitCycles != 1 || p.BlockSize != 16 {
		t.Errorf("geometry defaults wrong: %+v", p)
	}
}

func TestCacheForLeakDominatesAtLargeSizes(t *testing.T) {
	// The Figure-1 mechanism: leakage grows with capacity^2.5, so an 8kB
	// cache leaks 4^2.5 = 32x the 2kB cache (see the CacheParams comment
	// for the calibration against the paper's 54.38% leakage share).
	small := CacheFor(2048, 4)
	big := CacheFor(8192, 4)
	if math.Abs(big.LeakMW-32*small.LeakMW) > 1e-6 {
		t.Errorf("8kB leak = %v, want %v", big.LeakMW, 32*small.LeakMW)
	}
	if big.AccessNJ <= small.AccessNJ {
		t.Error("access energy should grow with size")
	}
	// Both 8kB caches together must be able to reach the paper's >50%
	// leakage share against the 12.1mW NVM + ~1.3mW core.
	if 2*big.LeakMW < NVMLeakMW+CoreLeakMW {
		t.Errorf("8kB cache leakage (2x %.2f mW) cannot dominate the system", big.LeakMW)
	}
}

func TestCacheForAssociativityCost(t *testing.T) {
	w4 := CacheFor(2048, 4)
	w8 := CacheFor(2048, 8)
	w1 := CacheFor(2048, 1)
	if w8.AccessNJ <= w4.AccessNJ {
		t.Error("8-way access should cost more than 4-way")
	}
	if w1.AccessNJ >= w4.AccessNJ {
		t.Error("direct-mapped access should cost less than 4-way")
	}
}

func TestCacheForDefaults(t *testing.T) {
	p := CacheFor(0, 0)
	if p.SizeBytes != DefaultCacheSize || p.Ways != 4 {
		t.Errorf("defaults wrong: %+v", p)
	}
}

func TestMinUsefulProbability(t *testing.T) {
	// Inequality 4 limiting cases.
	if got := MinUsefulProbability(0, 10); got != 0 {
		t.Errorf("free prefetch should need P=0, got %v", got)
	}
	if got := MinUsefulProbability(10, 0); got != 1 {
		t.Errorf("free leak should need P=1, got %v", got)
	}
	if got := MinUsefulProbability(0, 0); got != 0 {
		t.Errorf("0/0 should be 0, got %v", got)
	}
	if got := MinUsefulProbability(1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("equal costs should need P=0.5, got %v", got)
	}
}

func TestMinUsefulProbabilityMonotone(t *testing.T) {
	// Fig. 4: higher prefetch cost raises the required P; higher leak
	// lowers it.
	f := func(ep, el, dep float64) bool {
		mod := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(math.Abs(v), 1e3) + 0.01
		}
		ep, el, dep = mod(ep), mod(el), mod(dep)
		return MinUsefulProbability(ep+dep, el) >= MinUsefulProbability(ep, el)-1e-12 &&
			MinUsefulProbability(ep, el+dep) <= MinUsefulProbability(ep, el)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinUsefulProbabilityDefaultSystem(t *testing.T) {
	// §2.2: the paper reports a 46.04% minimum for the default system.
	// With this repository's calibration (16-cycle ReRAM read, per-byte
	// Table-1 energies) the value lands in the upper-30s–40s band; this
	// test pins the band so accidental recalibration is caught.
	p := NVMFor(ReRAM, 16<<20)
	leakPerCycle := LeakNJPerCycle(2*CacheLeakMW + NVMLeakMW + CoreLeakMW)
	pm := MinUsefulProbability(p.ReadNJ, float64(p.ReadCycles)*leakPerCycle)
	if pm < 0.30 || pm > 0.50 {
		t.Errorf("default-system minimum useful probability = %.4f, want within [0.30, 0.50] (paper: 0.4604)", pm)
	}
}

func TestSqrtApprox(t *testing.T) {
	f := func(x float64) bool {
		x = math.Abs(x)
		if x > 1e12 {
			return true
		}
		got := sqrtApprox(x)
		want := math.Sqrt(x)
		return math.Abs(got-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if sqrtApprox(0) != 0 || sqrtApprox(-1) != 0 {
		t.Error("sqrtApprox of non-positive should be 0")
	}
}
