package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ipex/internal/nvp"
)

// Pool executes a batch of supervised cells on a bounded worker pool,
// preserving result order. A fixed pool (rather than one goroutine per
// cell gated by a semaphore) keeps the footprint at Workers goroutines
// regardless of sweep size — a headline run enqueues thousands of cells.
//
// Cancellation is a graceful drain: once Ctx is cancelled (or the
// supervisor's StopAfter budget runs out) no further cells are dispatched,
// but in-flight cells run to completion and are journaled — their context
// is deliberately NOT the drain context, so an interrupt never wastes the
// simulation seconds already invested. Run then reports ErrInterrupted
// with a done/failed/remaining summary.
type Pool struct {
	// Workers bounds concurrency (min 1, capped at len(cells)).
	Workers int
	// Ctx, when non-nil, stops dispatch once cancelled.
	Ctx context.Context
	// Sup supervises each cell; nil means bare execution (still
	// panic-isolated via the zero Supervisor).
	Sup *Supervisor
	// OnDone, when non-nil, observes each finished cell (for progress
	// counters); it is called from worker goroutines and must be
	// thread-safe.
	OnDone func(i int, res nvp.Result, err error, replayed bool)
}

// Run executes every cell and returns the per-cell results and errors in
// input order. The third return is nil for a complete batch, or an
// ErrInterrupted-wrapped error naming how many cells were done, failed,
// and remaining when the drain stopped dispatch early; the results of the
// cells that did run are still filled in.
func (p *Pool) Run(cells []Cell) ([]nvp.Result, []error, error) {
	sup := p.Sup
	if sup == nil {
		sup = &Supervisor{}
	}
	results := make([]nvp.Result, len(cells))
	errs := make([]error, len(cells))
	ran := make([]bool, len(cells))

	workers := p.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	// Queue-wait spans: the dispatcher stamps enqueued[i] before sending i,
	// the worker reads it after receiving — the channel send/receive pair
	// provides the happens-before. Only allocated when spans are on.
	obs := sup.obs()
	var enqueued []time.Duration
	if obs != nil {
		enqueued = make([]time.Duration, len(cells))
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One arena per worker: consecutive cells on the same worker
			// recycle their simulation state, so a steady-state sweep cell
			// allocates nothing. Arenas are not concurrency-safe and never
			// cross goroutines.
			arena := nvp.NewArena()
			for i := range idx {
				if obs != nil {
					obs.span(obs.QueueWait, enqueued[i])
				}
				res, err, replayed := sup.RunCell(cells[i], arena)
				results[i], errs[i], ran[i] = res, err, true
				if p.OnDone != nil {
					p.OnDone(i, res, err, replayed)
				}
			}
		}()
	}

	interrupted := false
dispatch:
	for i := range cells {
		if !sup.admit() {
			interrupted = true
			break
		}
		if obs != nil {
			enqueued[i] = obs.now()
		}
		if p.Ctx != nil {
			// Cancellation gets priority: a select with both a ready worker
			// and a done context picks randomly, which would dispatch one
			// extra cell per worker after an interrupt.
			select {
			case <-p.Ctx.Done():
				interrupted = true
				break dispatch
			default:
			}
			select {
			case idx <- i:
			case <-p.Ctx.Done():
				interrupted = true
				break dispatch
			}
		} else {
			idx <- i
		}
	}
	close(idx)
	wg.Wait()

	if !interrupted {
		return results, errs, nil
	}
	done, failed := 0, 0
	for i := range cells {
		if !ran[i] {
			continue
		}
		if errs[i] != nil {
			failed++
		} else {
			done++
		}
	}
	return results, errs, fmt.Errorf("%w: %d cell(s) done, %d failed, %d remaining in this batch",
		ErrInterrupted, done, failed, len(cells)-done-failed)
}
