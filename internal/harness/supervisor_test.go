package harness

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipex/internal/nvp"
)

func okResult(app string) nvp.Result { return nvp.Result{App: app, Completed: true} }

func TestRunCellFirstTrySuccess(t *testing.T) {
	s := &Supervisor{}
	calls := 0
	res, err, replayed := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		return okResult("fft"), nil
	}}, nil)
	if err != nil || replayed || calls != 1 || !res.Completed {
		t.Fatalf("res=%+v err=%v replayed=%v calls=%d", res, err, replayed, calls)
	}
	if cs := s.Counters.Snapshot(); cs.Executed != 1 || cs.Retried != 0 {
		t.Fatalf("counters = %+v", cs)
	}
}

func TestRunCellRetriesTransientThenSucceeds(t *testing.T) {
	s := &Supervisor{MaxRetries: 3}
	calls := 0
	res, err, _ := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		if calls < 3 {
			return nvp.Result{}, Transient(errors.New("flaky"))
		}
		return okResult("fft"), nil
	}}, nil)
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (two transient failures retried)", calls)
	}
	if cs := s.Counters.Snapshot(); cs.Retried != 2 {
		t.Fatalf("Retried = %d, want 2", cs.Retried)
	}
}

func TestRunCellBoundsRetries(t *testing.T) {
	s := &Supervisor{MaxRetries: 2}
	calls := 0
	_, err, _ := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		return nvp.Result{}, Transient(errors.New("always flaky"))
	}}, nil)
	if err == nil {
		t.Fatal("exhausted retries returned success")
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (initial + 2 retries)", calls)
	}
	if cs := s.Counters.Snapshot(); cs.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", cs.Failures)
	}
}

func TestRunCellDoesNotRetryHardErrors(t *testing.T) {
	s := &Supervisor{MaxRetries: 5}
	calls := 0
	_, err, _ := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		return nvp.Result{}, errors.New("deterministic failure")
	}}, nil)
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want hard error after exactly 1 call", err, calls)
	}
}

func TestRunCellRetriesTruncatedRuns(t *testing.T) {
	s := &Supervisor{MaxRetries: 1}
	calls := 0
	res, err, _ := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		if calls == 1 {
			return nvp.Result{App: "fft", Completed: false}, nil
		}
		return okResult("fft"), nil
	}}, nil)
	if err != nil || !res.Completed || calls != 2 {
		t.Fatalf("res=%+v err=%v calls=%d", res, err, calls)
	}
}

func TestRunCellAcceptsTruncationAfterRetries(t *testing.T) {
	// A cell that truncates every time is NOT an error: the result flows to
	// the sweep's skipped-app path.
	s := &Supervisor{MaxRetries: 1}
	calls := 0
	res, err, _ := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		return nvp.Result{App: "fft", Completed: false}, nil
	}}, nil)
	if err != nil || res.Completed || calls != 2 {
		t.Fatalf("res=%+v err=%v calls=%d", res, err, calls)
	}
}

func TestPanicIsolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := CreateJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	s := &Supervisor{Journal: j}
	res, err, _ := s.RunCell(Cell{Key: "cell", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		panic("injected cell panic")
	}}, nil)
	if err != nil {
		t.Fatalf("isolated panic surfaced as error: %v", err)
	}
	if res.Completed || res.App != "fft" {
		t.Fatalf("panic result = %+v, want soft-fail with App label", res)
	}
	if cs := s.Counters.Snapshot(); cs.Panics != 1 || cs.Failures != 1 {
		t.Fatalf("counters = %+v", cs)
	}
	j.Close()
	_, entries, _, err := ResumeJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	e := entries["cell"]
	if e == nil || e.Kind != KindFail {
		t.Fatalf("panic not journaled: %+v", e)
	}
	if !strings.Contains(e.Error, "injected cell panic") {
		t.Errorf("journaled error %q lacks the panic value", e.Error)
	}
	if !strings.Contains(e.Stack, "goroutine") || !strings.Contains(e.Stack, "TestPanicIsolation") {
		t.Errorf("journaled stack does not look like a goroutine stack:\n%s", e.Stack)
	}
}

func TestWallBackstopTimeoutIsTransient(t *testing.T) {
	s := &Supervisor{WallBackstop: 5 * time.Millisecond, MaxRetries: 1}
	calls := 0
	res, err, _ := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(ctx context.Context, _ *nvp.Arena) (nvp.Result, error) {
		calls++
		if calls == 1 {
			// A wedged first attempt: block until the watchdog fires, then
			// stop "at the power-cycle boundary" like nvp.RunContext does.
			<-ctx.Done()
			return nvp.Result{App: "fft", Completed: false}, nil
		}
		return okResult("fft"), nil
	}}, nil)
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (timeout retried)", calls)
	}
	cs := s.Counters.Snapshot()
	if cs.Timeouts != 1 || cs.Retried != 1 {
		t.Fatalf("counters = %+v", cs)
	}
}

func TestReplayShortCircuits(t *testing.T) {
	want := okResult("fft")
	s := &Supervisor{Replay: map[string]*Entry{
		"k": {Kind: KindCell, Key: "k", Result: &want},
	}}
	calls := 0
	res, err, replayed := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		return nvp.Result{}, nil
	}}, nil)
	if err != nil || !replayed || calls != 0 {
		t.Fatalf("err=%v replayed=%v calls=%d", err, replayed, calls)
	}
	if res.App != "fft" || !res.Completed {
		t.Fatalf("replayed result = %+v", res)
	}
	if cs := s.Counters.Snapshot(); cs.Replayed != 1 || cs.Executed != 0 {
		t.Fatalf("counters = %+v", cs)
	}
}

func TestReplayIgnoresFailEntries(t *testing.T) {
	s := &Supervisor{Replay: map[string]*Entry{
		"k": {Kind: KindFail, Key: "k", Error: "old panic"},
	}}
	calls := 0
	res, err, replayed := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		return okResult("fft"), nil
	}}, nil)
	if err != nil || replayed || calls != 1 || !res.Completed {
		t.Fatalf("failed cell was not re-run: err=%v replayed=%v calls=%d", err, replayed, calls)
	}
}

func TestTransientMarkerWraps(t *testing.T) {
	base := fmt.Errorf("inner: %w", ErrCellTimeout)
	err := Transient(base)
	if !IsTransient(err) {
		t.Fatal("Transient lost its mark")
	}
	if !errors.Is(err, ErrCellTimeout) {
		t.Fatal("Transient broke the unwrap chain")
	}
	if IsTransient(base) {
		t.Fatal("unmarked error reported transient")
	}
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) != nil")
	}
}
