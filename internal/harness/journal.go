package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"ipex/internal/nvp"
)

// Schema identifies the journal line layout; bump on incompatible change.
// A journal whose header names a different schema is rejected on resume —
// replaying entries written by a different layout would silently corrupt a
// sweep.
const Schema = "ipex-journal/v1"

// Entry kinds. A header line opens every journal; cell lines carry a
// replayable result; fail lines record a cell that was given up on (panic
// or exhausted retries) and is re-run on resume.
const (
	KindHeader = "header"
	KindCell   = "cell"
	KindFail   = "fail"
)

// Sink receives journal entries. *Journal is the durable file-backed
// implementation; the distributed layer (internal/dist) supplies in-memory
// logs that stream entries to a coordinator instead of (or in addition to)
// a local file. A Supervisor writes through this interface so the two are
// interchangeable.
type Sink interface {
	Append(Entry) error
}

// Entry is one journal line.
type Entry struct {
	Kind string `json:"kind"`
	// Schema and Sweep are set on the header line only: the layout version
	// and the content hash of the sweep definition (scale, trace seed, app
	// list, supervision knobs). A resume against a different sweep hash is
	// rejected — the journaled cells belong to a different experiment.
	Schema string `json:"schema,omitempty"`
	Sweep  string `json:"sweep,omitempty"`

	// Key is the cell's content-hash identity (see Key); App labels it for
	// humans reading the journal.
	Key string `json:"key,omitempty"`
	App string `json:"app,omitempty"`
	// Attempts is how many times the cell ran before this entry was written
	// (1 for a first-try success).
	Attempts int `json:"attempts,omitempty"`
	// Result is the complete simulation result of a KindCell entry. JSON
	// round-trips Go float64s bit-exactly (shortest-representation
	// marshaling), so a replayed result is bit-identical to the simulated
	// one — the property the resume golden tests pin.
	Result *nvp.Result `json:"result,omitempty"`
	// Error and Stack describe a KindFail entry; Stack carries the
	// recovered panic's goroutine stack.
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
}

// Journal is an append-only JSONL record of completed sweep cells. Appends
// are concurrency-safe and atomic at the line level: each entry is written
// with a single O_APPEND write followed by an fsync, so a crash can at
// worst truncate the final line — which resume detects and skips (the cell
// is simply re-run).
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// CreateJournal starts a fresh journal at path for the sweep identified by
// sweepKey. It refuses to overwrite an existing file: a prior journal is
// either resumable (pass it to ResumeJournal) or stale, and destroying it
// silently would discard exactly the progress this package exists to keep.
func CreateJournal(path, sweepKey string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("harness: journal %s already exists; resume it with -resume or remove it to start over", path)
		}
		return nil, fmt.Errorf("harness: %w", err)
	}
	j := &Journal{f: f, path: path}
	if err := j.Append(Entry{Kind: KindHeader, Schema: Schema, Sweep: sweepKey}); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// ParseLine decodes and validates one journal line. It is the single line
// parser behind ResumeJournal and the distributed segment merge
// (internal/dist), and the surface FuzzJournalLine hardens: any input must
// either yield a structurally valid entry or an error, never a panic and
// never a half-valid entry (a KindCell without a key or result, say) that
// replay could mistake for a simulation.
func ParseLine(raw []byte) (Entry, error) {
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return Entry{}, fmt.Errorf("harness: corrupted journal line: %w", err)
	}
	switch e.Kind {
	case KindHeader:
		if e.Schema == "" {
			return Entry{}, fmt.Errorf("harness: header line without a schema")
		}
	case KindCell:
		if e.Key == "" || e.Result == nil {
			return Entry{}, fmt.Errorf("harness: incomplete cell entry")
		}
	case KindFail:
		if e.Key == "" {
			return Entry{}, fmt.Errorf("harness: fail entry without a key")
		}
	default:
		return Entry{}, fmt.Errorf("harness: unknown journal entry kind %q", e.Kind)
	}
	return e, nil
}

// ResumeJournal reopens an existing journal for the sweep identified by
// sweepKey and loads its replayable entries. It returns the journal (opened
// for further appends), the entry map keyed by cell hash (later entries
// win; only KindCell entries carry a result — KindFail cells re-run), and
// human-readable warnings for any corrupted or truncated lines that were
// skipped. A journal whose header is missing, carries a different schema,
// or hashes a different sweep definition is rejected with a clear error.
func ResumeJournal(path, sweepKey string) (*Journal, map[string]*Entry, []string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("harness: resuming journal: %w", err)
	}
	entries := make(map[string]*Entry)
	var warnings []string
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		e, perr := ParseLine(raw)
		if perr != nil {
			warnings = append(warnings, fmt.Sprintf("%s:%d: skipping corrupted journal line (%v); its cell, if any, will be re-run", path, line, perr))
			continue
		}
		switch e.Kind {
		case KindHeader:
			if e.Schema != Schema {
				return nil, nil, nil, fmt.Errorf("harness: journal %s has schema %q, this binary writes %q; re-run without -resume", path, e.Schema, Schema)
			}
			if e.Sweep != sweepKey {
				return nil, nil, nil, fmt.Errorf("harness: journal %s was written for a different sweep (journal %s, current %s): scale, seed, app set, or supervision flags changed — remove the journal or rerun the original command line", path, e.Sweep, sweepKey)
			}
			sawHeader = true
		case KindCell, KindFail:
			ec := e
			entries[e.Key] = &ec
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, fmt.Errorf("harness: reading journal %s: %w", path, err)
	}
	if !sawHeader {
		return nil, nil, nil, fmt.Errorf("harness: journal %s has no valid header line; it is not a resumable journal", path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("harness: reopening journal: %w", err)
	}
	return &Journal{f: f, path: path}, entries, warnings, nil
}

// Append durably writes one entry as a single JSON line. Nil-receiver safe:
// an unjournaled sweep pays one nil compare per cell.
func (j *Journal) Append(e Entry) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("harness: encoding journal entry: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	// One write call per line: O_APPEND makes concurrent appends land
	// whole, and a crash mid-write can only truncate the final line.
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("harness: appending to journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("harness: syncing journal: %w", err)
	}
	return nil
}

// Path returns the journal's file path ("" for a nil journal).
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close flushes and closes the journal file. Nil-receiver safe.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
