package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"ipex/internal/nvp"
)

// ErrInterrupted is wrapped by Pool.Run's error when the sweep stopped
// dispatching before every cell ran — a context cancellation (SIGINT/
// SIGTERM graceful drain) or an exhausted StopAfter budget. The journal
// written so far is resumable.
var ErrInterrupted = errors.New("sweep interrupted before all cells ran")

// ErrCellTimeout is wrapped by a cell error when the wall-clock backstop
// watchdog cancelled the run. It is transient: a timeout says more about
// the machine than the cell, so the cell is retried up to MaxRetries. The
// deterministic per-cell deadline is the cycle budget (Cell configuration
// clamps nvp.Config.MaxCycles), which truncates inside simulated time;
// this backstop exists only for a harness-level hang and never appears in
// results.
var ErrCellTimeout = errors.New("cell exceeded the wall-clock backstop")

// transientErr marks an error worth retrying.
type transientErr struct{ err error }

func (t *transientErr) Error() string { return t.err.Error() }
func (t *transientErr) Unwrap() error { return t.err }

// Transient marks err as retryable: the supervisor re-runs the cell with
// deterministic exponential backoff up to MaxRetries before giving up.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// Transient.
func IsTransient(err error) bool {
	var t *transientErr
	return errors.As(err, &t)
}

// PanicError carries a recovered cell panic and its goroutine stack. The
// supervisor never returns it to the sweep: the panic is journaled and the
// cell soft-fails (Completed=false), so one poisoned cell costs one skipped
// app, not hours of completed sweep.
type PanicError struct {
	Value string
	Stack string
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("cell panicked: %s", p.Value)
}

// Counters tracks supervision outcomes for live telemetry; all fields are
// atomics, safe to read while a sweep runs.
type Counters struct {
	// Executed counts cells that ran in this process; Replayed counts
	// cells answered from the journal without simulating.
	Executed atomic.Uint64
	Replayed atomic.Uint64
	// Retried counts re-runs after a transient failure or truncation;
	// Timeouts counts wall-clock backstop expiries (a subset of the
	// retries until MaxRetries is exhausted).
	Retried  atomic.Uint64
	Timeouts atomic.Uint64
	// Panics counts isolated cell panics (journaled, soft-failed);
	// Failures counts cells journaled as KindFail (panics + errors that
	// survived retrying).
	Panics   atomic.Uint64
	Failures atomic.Uint64
	// Skipped counts cells short-circuited by the Skip filter (outside a
	// distributed worker's shard assignment): never simulated, never
	// journaled.
	Skipped atomic.Uint64
	// Remote counts cells answered by a RemoteRunner (executed on an ipexd
	// fleet, verified, and journaled without simulating locally).
	Remote atomic.Uint64
}

// CounterSnapshot is a point-in-time copy of Counters.
type CounterSnapshot struct {
	Executed, Replayed, Retried, Timeouts, Panics, Failures, Skipped, Remote uint64
}

// Snapshot reads every counter atomically (each individually; the set is
// not a consistent cut, which telemetry does not need). Nil-safe.
func (c *Counters) Snapshot() CounterSnapshot {
	if c == nil {
		return CounterSnapshot{}
	}
	return CounterSnapshot{
		Executed: c.Executed.Load(),
		Replayed: c.Replayed.Load(),
		Retried:  c.Retried.Load(),
		Timeouts: c.Timeouts.Load(),
		Panics:   c.Panics.Load(),
		Failures: c.Failures.Load(),
		Skipped:  c.Skipped.Load(),
		Remote:   c.Remote.Load(),
	}
}

// RemoteRunner executes a cell somewhere other than this process — the
// resilient fleet client in internal/remote implements it. RunRemote
// returns handled=false to decline the cell (not remotable, fleet down,
// retry budget exhausted with local fallback enabled); the supervisor then
// runs the cell locally as if no runner were installed. handled=true with a
// non-nil error is a hard cell failure (journaled as KindFail). The
// returned result must already be verified — the supervisor journals it
// exactly as it would a local simulation.
type RemoteRunner interface {
	RunRemote(key, label string, req []byte) (res nvp.Result, handled bool, err error)
}

// Cell is one supervised unit of sweep work: a content-hash identity and
// the closure that simulates it. Run receives a context that is non-nil
// only when the wall-clock backstop is armed; implementations should thread
// it into nvp.RunContext so the backstop can stop a wedged run at the next
// power-cycle boundary. The arena is the worker's reusable simulation
// state (never nil); implementations should run through it so steady-state
// cells allocate nothing.
type Cell struct {
	// Key is the content-hash identity (see Key). Empty disables journal
	// and replay for this cell (it always runs).
	Key string
	// Label names the cell in journal entries and diagnostics (the app).
	Label string
	// Run executes the cell. A nil-Completed result feeds the sweep's
	// soft-fail (skipped app) path downstream.
	Run func(ctx context.Context, a *nvp.Arena) (nvp.Result, error)
	// RemoteReq, when non-empty, is the cell's declarative /v1/run body
	// (remote.EncodeCell): proof that a fleet server would reconstruct this
	// exact cell identity. Empty means the cell is not expressible remotely
	// and always runs locally, RemoteRunner or not.
	RemoteReq []byte
}

// Supervisor wraps every cell of a sweep in the crash-safety envelope:
// journal replay, bounded retries with deterministic exponential backoff,
// an optional wall-clock watchdog, and panic isolation. One Supervisor is
// shared by all of a sweep's experiment calls, so its StopAfter budget and
// counters span the whole command invocation. The zero value supervises
// with everything off (no journal, no retries, no backstop).
type Supervisor struct {
	// Journal receives one entry per finished cell; nil disables
	// journaling. A *Journal writes a durable file; the distributed layer
	// installs in-memory sinks that stream entries to a coordinator.
	Journal Sink
	// Replay holds journaled entries from a resumed run, keyed by cell
	// hash. Cells whose key maps to a KindCell entry return the journaled
	// result without simulating; KindFail entries re-run.
	Replay map[string]*Entry
	// MaxRetries bounds re-runs after a transient failure (wall-clock
	// timeout, paranoid-flagged run) or a truncated (Completed=false) run.
	// 0 disables retrying.
	MaxRetries int
	// BackoffBase scales the deterministic exponential backoff between
	// retries: attempt n sleeps BackoffBase << n (capped at 32×). The
	// delay depends only on the attempt number — no jitter — so retry
	// schedules are reproducible. 0 retries immediately.
	BackoffBase time.Duration
	// WallBackstop, when > 0, arms a wall-clock watchdog per cell run: the
	// cell's context is cancelled after this duration and the run reports
	// ErrCellTimeout (transient). Wall time never enters results — the
	// deterministic deadline is the cycle budget — so the backstop only
	// trades a hung harness for a retried cell.
	WallBackstop time.Duration
	// StopAfter, when > 0, interrupts the sweep after that many cells have
	// been admitted for execution — the same graceful-drain path a SIGINT
	// takes, but deterministic. It exists for the resume round-trip tests
	// and `make resume-smoke`.
	StopAfter uint64
	// Skip, when non-nil, short-circuits cells this process is not
	// responsible for: a cell whose key is empty or for which Skip reports
	// true returns a synthetic completed placeholder (see SkippedResult)
	// without simulating, journaling, or replaying. Distributed workers
	// (internal/dist) install it so a worker executes only its shard of a
	// sweep while the sweep's own control flow still sees a result for
	// every cell. The placeholder is deliberately worthless: anything
	// rendered from a filtered sweep is discarded by the worker driver.
	Skip func(key string) bool
	// Remote, when non-nil, is offered every journaled cell that carries a
	// RemoteReq before local execution. A handled cell is journaled from the
	// remote result; a declined one falls through to the local retry loop
	// unchanged (graceful degradation).
	Remote RemoteRunner
	// PropagatePanics returns an isolated cell panic to the caller as its
	// *PanicError instead of soft-failing the cell into a zero result. A
	// sweep wants the soft-fail (one poisoned cell costs one skipped app,
	// not the whole run); a server wants the error (a 500 response), since
	// a zero result must never be mistaken for — or cached as — a
	// simulation. The panic is still recovered, counted, and journaled
	// either way.
	PropagatePanics bool

	// Counters tracks supervision outcomes for telemetry.
	Counters Counters

	// Obs, when non-nil, records cell-lifecycle spans (attempt duration,
	// backoff, journal-append latency; the Pool adds queue wait) into the
	// metrics registry it was built over. Spans never touch the journal or
	// results — see NewObs.
	Obs *Obs

	admitted atomic.Uint64
}

// admit consumes one slot of the StopAfter budget; it reports false once
// the budget is exhausted (the pool then drains as if cancelled).
func (s *Supervisor) admit() bool {
	if s == nil || s.StopAfter == 0 {
		return true
	}
	return s.admitted.Add(1) <= s.StopAfter
}

// replay looks up a journaled result for the cell.
func (s *Supervisor) replay(c Cell) (nvp.Result, bool) {
	if s == nil || c.Key == "" {
		return nvp.Result{}, false
	}
	e := s.Replay[c.Key]
	if e == nil || e.Kind != KindCell || e.Result == nil {
		return nvp.Result{}, false
	}
	s.Counters.Replayed.Add(1)
	return *e.Result, true
}

// RunCell executes one cell under the full supervision envelope and
// reports whether the result came from the journal instead of a
// simulation. The error is non-nil only for a non-recoverable failure the
// sweep should abort on; isolated panics return a zero, not-Completed
// result and a nil error so the sweep's existing skipped-app path absorbs
// them.
//
// The arena is handed to the cell body for state reuse; nil gets a private
// one. Reusing an arena across retries — and even across a recovered panic
// — is safe because every recycled component is reset from scratch at the
// next run's construction.
func (s *Supervisor) RunCell(c Cell, a *nvp.Arena) (nvp.Result, error, bool) {
	if s != nil && s.Skip != nil && (c.Key == "" || s.Skip(c.Key)) {
		s.Counters.Skipped.Add(1)
		return SkippedResult(c.Label), nil, false
	}
	if res, ok := s.replay(c); ok {
		return res, nil, true
	}
	if s != nil && s.Remote != nil && c.Key != "" && len(c.RemoteReq) > 0 {
		res, handled, err := s.Remote.RunRemote(c.Key, c.Label, c.RemoteReq)
		if handled {
			if err != nil {
				s.count(func(cs *Counters) { cs.Failures.Add(1) })
				s.journal(Entry{Kind: KindFail, Key: c.Key, App: c.Label,
					Attempts: 1, Error: err.Error()})
				return nvp.Result{App: c.Label}, err, false
			}
			s.count(func(cs *Counters) { cs.Remote.Add(1) })
			s.journal(Entry{Kind: KindCell, Key: c.Key, App: c.Label,
				Attempts: 1, Result: &res})
			return res, nil, false
		}
		// Declined: degrade to local execution below.
	}
	if a == nil {
		a = nvp.NewArena()
	}
	var res nvp.Result
	var err error
	attempts := 0
	for {
		attempts++
		res, err = s.runOnce(c, a)
		var pe *PanicError
		if errors.As(err, &pe) {
			s.count(func(cs *Counters) { cs.Panics.Add(1); cs.Failures.Add(1) })
			s.journal(Entry{Kind: KindFail, Key: c.Key, App: c.Label,
				Attempts: attempts, Error: pe.Error(), Stack: pe.Stack})
			if s != nil && s.PropagatePanics {
				return nvp.Result{App: c.Label}, pe, false
			}
			// Isolate: fail only this cell. A zero result with
			// Completed=false feeds the sweep's soft-fail path, so the
			// surviving cells still render (with a skipped note).
			return nvp.Result{App: c.Label}, nil, false
		}
		retryable := (err != nil && IsTransient(err)) || (err == nil && !res.Completed)
		if retryable && attempts <= s.maxRetries() {
			s.count(func(cs *Counters) { cs.Retried.Add(1) })
			s.backoff(attempts)
			continue
		}
		break
	}
	s.count(func(cs *Counters) { cs.Executed.Add(1) })
	if err != nil {
		s.count(func(cs *Counters) { cs.Failures.Add(1) })
		s.journal(Entry{Kind: KindFail, Key: c.Key, App: c.Label,
			Attempts: attempts, Error: err.Error()})
		return res, err, false
	}
	s.journal(Entry{Kind: KindCell, Key: c.Key, App: c.Label,
		Attempts: attempts, Result: &res})
	return res, nil, false
}

// SkippedResult is the placeholder a Skip-filtered cell returns: marked
// Completed with unit cycle/instruction counts so downstream sweep
// arithmetic (speedup ratios, completeness filters) neither aborts the
// sweep nor divides by zero. It carries no simulation content whatsoever —
// a worker's rendered experiment output is garbage by construction and is
// discarded; only the journaled entries of the cells it did run matter.
func SkippedResult(label string) nvp.Result {
	return nvp.Result{App: label, Completed: true, Cycles: 1, Insts: 1}
}

func (s *Supervisor) maxRetries() int {
	if s == nil {
		return 0
	}
	return s.MaxRetries
}

// obs returns the span recorder (nil when off or on a nil supervisor).
func (s *Supervisor) obs() *Obs {
	if s == nil {
		return nil
	}
	return s.Obs
}

func (s *Supervisor) count(f func(*Counters)) {
	if s != nil {
		f(&s.Counters)
	}
}

// journal appends an entry, best-effort: a journal write failure must not
// take down the sweep the journal exists to protect, so it is recorded on
// the entryless side (the cell result is still returned; resume will
// simply re-run it).
func (s *Supervisor) journal(e Entry) {
	if s == nil || s.Journal == nil || e.Key == "" {
		return
	}
	start := s.Obs.now()
	// The append error is intentionally not fatal; see above.
	_ = s.Journal.Append(e)
	if o := s.Obs; o != nil {
		o.span(o.JournalAppend, start)
	}
}

// runOnce performs a single recover()-isolated attempt, arming the
// wall-clock watchdog when configured.
func (s *Supervisor) runOnce(c Cell, a *nvp.Arena) (res nvp.Result, err error) {
	var ctx context.Context
	cancel := func() {}
	if s != nil && s.WallBackstop > 0 {
		ctx, cancel = backstopContext(s.WallBackstop)
	}
	defer cancel()
	start := s.obs().now()
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
		// Inside the recover defer so a panicking attempt is still timed.
		if o := s.obs(); o != nil {
			o.span(o.Attempt, start)
		}
	}()
	res, err = c.Run(ctx, a)
	if err == nil && ctx != nil && ctx.Err() != nil {
		// The watchdog fired and the run stopped at a power-cycle
		// boundary: classify as a transient timeout rather than a
		// truncated result.
		s.count(func(cs *Counters) { cs.Timeouts.Add(1) })
		err = Transient(fmt.Errorf("%s (%s): %w", c.Label, c.Key, ErrCellTimeout))
	}
	return res, err
}
