package harness

import (
	"encoding/json"
	"testing"

	"ipex/internal/nvp"
)

// FuzzJournalLine hardens the single journal line parser shared by -resume
// and the distributed segment merge: arbitrary bytes must either decode to
// a structurally complete entry or an error — never a panic, and never a
// half-valid entry (a cell without a key or result) that replay could
// mistake for a simulation.
func FuzzJournalLine(f *testing.F) {
	hdr, _ := json.Marshal(Entry{Kind: KindHeader, Schema: Schema, Sweep: Key("sweep")})
	cell, _ := json.Marshal(Entry{Kind: KindCell, Key: Key("cell"), App: "fft",
		Result: &nvp.Result{App: "fft", Completed: true, Insts: 10, Cycles: 20}})
	fail, _ := json.Marshal(Entry{Kind: KindFail, Key: Key("cell"), App: "fft", Error: "boom", Attempts: 2})
	for _, seed := range [][]byte{
		hdr, cell, fail,
		[]byte(`{"kind":"cell","key":"beef"}`),             // cell without result
		[]byte(`{"kind":"header"}`),                        // header without schema
		[]byte(`{"kind":"fail"}`),                          // fail without key
		[]byte(`{"kind":"cell","key":"be`),                 // torn tail
		[]byte(`{"kind":"wat","key":"beef"}`),              // unknown kind
		[]byte(`null`), []byte(``), []byte(`[]`), []byte(`"x"`),
		[]byte("{\"kind\":\"cell\",\"key\":\"\xff\xfe\"}"), // invalid UTF-8
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		e, err := ParseLine(raw)
		if err != nil {
			return
		}
		switch e.Kind {
		case KindHeader:
			if e.Schema == "" {
				t.Fatalf("accepted header without schema: %q", raw)
			}
		case KindCell:
			if e.Key == "" || e.Result == nil {
				t.Fatalf("accepted incomplete cell entry: %q", raw)
			}
		case KindFail:
			if e.Key == "" {
				t.Fatalf("accepted fail entry without key: %q", raw)
			}
		default:
			t.Fatalf("accepted unknown kind %q: %q", e.Kind, raw)
		}
		// A valid entry must survive a marshal/parse round trip unchanged in
		// the fields replay depends on.
		re, _ := json.Marshal(e)
		e2, err := ParseLine(re)
		if err != nil {
			t.Fatalf("re-encoded entry failed to parse: %v (from %q)", err, raw)
		}
		if e2.Kind != e.Kind || e2.Key != e.Key || e2.Schema != e.Schema || e2.Sweep != e.Sweep {
			t.Fatalf("round trip changed entry identity: %+v vs %+v", e, e2)
		}
	})
}
