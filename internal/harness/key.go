// Package harness is the crash-safe execution layer under the experiment
// sweeps: it journals every completed sweep cell to disk so an interrupted
// run can resume without re-simulating, supervises each cell with bounded
// retries, a deterministic cycle-budget deadline (plus an optional
// wall-clock backstop), and recover()-based panic isolation, and drains a
// worker pool gracefully on cancellation. The simulator itself survives
// power failure by checkpointing and replaying idempotent work; this
// package applies the same discipline one level up, to the harness that
// sweeps it.
package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Key derives the content-hash identity of a value: the canonical JSON of v
// hashed with SHA-256, truncated to 32 hex digits. Sweep cells are keyed by
// the hash of everything that determines their result (app, configuration,
// trace seed, scale), so a journal written for one experiment definition
// can never be replayed into a changed one — a stale entry's key simply no
// longer matches, and a stale sweep header is rejected outright.
//
// v must marshal deterministically: structs of scalars, slices, and nested
// structs (Go's encoding/json emits struct fields in declaration order and
// floats in their shortest round-trip form). Maps would iterate in random
// order and must not appear in key material. A value that fails to marshal
// panics: keys are built from code-defined identity structs, so a failure
// is a programming error, not an input error.
func Key(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("harness: unhashable key material: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}
