package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"ipex/internal/nvp"
)

func makeCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		app := fmt.Sprintf("app%02d", i)
		cells[i] = Cell{Key: Key(app), Label: app, Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
			return nvp.Result{App: app, Completed: true}, nil
		}}
	}
	return cells
}

func TestPoolPreservesOrder(t *testing.T) {
	cells := makeCells(20)
	p := &Pool{Workers: 4}
	results, errs, interrupted := p.Run(cells)
	if interrupted != nil {
		t.Fatal(interrupted)
	}
	for i, res := range results {
		if errs[i] != nil {
			t.Fatalf("cell %d: %v", i, errs[i])
		}
		if want := fmt.Sprintf("app%02d", i); res.App != want {
			t.Fatalf("results[%d].App = %q, want %q", i, res.App, want)
		}
	}
}

func TestPoolStopAfterDrains(t *testing.T) {
	const stop = 3
	cells := makeCells(10)
	sup := &Supervisor{StopAfter: stop}
	p := &Pool{Workers: 2, Sup: sup}
	results, _, interrupted := p.Run(cells)
	if !errors.Is(interrupted, ErrInterrupted) {
		t.Fatalf("interrupted = %v, want ErrInterrupted", interrupted)
	}
	ran := 0
	for _, res := range results {
		if res.App != "" {
			ran++
		}
	}
	if ran != stop {
		t.Fatalf("%d cells ran, want exactly %d (StopAfter budget)", ran, stop)
	}
	if !strings.Contains(interrupted.Error(), "3 cell(s) done") ||
		!strings.Contains(interrupted.Error(), "7 remaining") {
		t.Fatalf("summary = %q", interrupted)
	}
}

func TestPoolContextCancelStopsDispatch(t *testing.T) {
	// A context cancelled before dispatch (or mid-sweep) stops every
	// not-yet-dispatched cell deterministically: cancellation has priority
	// over a ready worker in the dispatch select.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Uint64
	cells := makeCells(4)
	for i := range cells {
		cells[i].Run = func(context.Context, *nvp.Arena) (nvp.Result, error) {
			ran.Add(1)
			return nvp.Result{Completed: true}, nil
		}
	}
	p := &Pool{Workers: 2, Ctx: ctx}
	_, _, interrupted := p.Run(cells)
	if !errors.Is(interrupted, ErrInterrupted) {
		t.Fatalf("interrupted = %v", interrupted)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d cells dispatched after cancellation", ran.Load())
	}
	if !strings.Contains(interrupted.Error(), "4 remaining") {
		t.Fatalf("summary = %q", interrupted)
	}
}

func TestPoolCancelMidSweepKeepsInFlightResults(t *testing.T) {
	// A cell that triggers the cancellation itself still completes and has
	// its result recorded — the drain context never reaches running cells.
	ctx, cancel := context.WithCancel(context.Background())
	cells := []Cell{
		{Key: "a", Label: "a", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
			cancel()
			return nvp.Result{App: "a", Completed: true}, nil
		}},
		{Key: "b", Label: "b", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
			return nvp.Result{App: "b", Completed: true}, nil
		}},
	}
	p := &Pool{Workers: 1, Ctx: ctx}
	results, errs, interrupted := p.Run(cells)
	if results[0].App != "a" || errs[0] != nil {
		t.Fatalf("in-flight cell lost: res=%+v err=%v", results[0], errs[0])
	}
	// Whether cell b was already dispatched when the cancel landed is a
	// scheduling race either way is correct; but if the run reports a clean
	// finish, every cell must have run.
	if interrupted == nil && results[1].App != "b" {
		t.Fatalf("clean finish with missing result: %+v", results[1])
	}
}

func TestPoolOnDoneObservesEveryCell(t *testing.T) {
	cells := makeCells(8)
	var done atomic.Uint64
	p := &Pool{Workers: 3, OnDone: func(i int, res nvp.Result, err error, replayed bool) {
		done.Add(1)
	}}
	if _, _, interrupted := p.Run(cells); interrupted != nil {
		t.Fatal(interrupted)
	}
	if done.Load() != 8 {
		t.Fatalf("OnDone ran %d times, want 8", done.Load())
	}
}

func TestPoolPanicFailsOnlyThatCell(t *testing.T) {
	cells := makeCells(5)
	cells[2].Run = func(context.Context, *nvp.Arena) (nvp.Result, error) { panic("poisoned cell") }
	sup := &Supervisor{}
	p := &Pool{Workers: 2, Sup: sup}
	results, errs, interrupted := p.Run(cells)
	if interrupted != nil {
		t.Fatal(interrupted)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v (panic must soft-fail, not error)", i, err)
		}
	}
	if results[2].Completed {
		t.Fatal("panicked cell reported Completed")
	}
	for _, i := range []int{0, 1, 3, 4} {
		if !results[i].Completed {
			t.Fatalf("healthy cell %d lost to a neighbour's panic", i)
		}
	}
	if cs := sup.Counters.Snapshot(); cs.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", cs.Panics)
	}
}

func TestPoolEmptyBatch(t *testing.T) {
	p := &Pool{Workers: 4}
	results, errs, interrupted := p.Run(nil)
	if interrupted != nil || len(results) != 0 || len(errs) != 0 {
		t.Fatalf("empty batch: results=%v errs=%v interrupted=%v", results, errs, interrupted)
	}
}
