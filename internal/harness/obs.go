package harness

import (
	"time"

	"ipex/internal/trace"
)

// Obs records cell-lifecycle spans — where a cell's wall time goes between
// entering the pool and landing in the journal. Spans live only in the
// metrics registry (and whatever scrapes it); they never enter the journal
// or a result, which must stay byte-deterministic. The Supervisor and Pool
// treat a nil *Obs as "off": every method is nil-receiver safe and the
// instrumented paths pay one nil compare plus, when enabled, two Clock
// reads per span.
//
// The four spans:
//
//	harness.queue_wait_seconds     dispatch→pickup wait in the Pool
//	harness.attempt_seconds        one supervised run attempt (per attempt,
//	                               not per cell — retries observe again)
//	harness.backoff_seconds        the deterministic retry delay slept
//	harness.journal_append_seconds one journal Append (write + fsync)
type Obs struct {
	Clock trace.Clock

	QueueWait     *trace.Histogram
	Attempt       *trace.Histogram
	Backoff       *trace.Histogram
	JournalAppend *trace.Histogram
}

// NewObs builds the span recorder over an injected clock, registering the
// lifecycle histograms in reg. A nil clock or registry returns nil (spans
// off), so call sites can pass through whatever they were configured with.
func NewObs(clock trace.Clock, reg *trace.Registry) *Obs {
	if clock == nil || reg == nil {
		return nil
	}
	return &Obs{
		Clock:         clock,
		QueueWait:     reg.Histogram("harness.queue_wait_seconds", nil),
		Attempt:       reg.Histogram("harness.attempt_seconds", nil),
		Backoff:       reg.Histogram("harness.backoff_seconds", nil),
		JournalAppend: reg.Histogram("harness.journal_append_seconds", nil),
	}
}

// now reads the clock; 0 when spans are off.
func (o *Obs) now() time.Duration {
	if o == nil || o.Clock == nil {
		return 0
	}
	return o.Clock.Now()
}

// observeBackoff records a deterministic retry delay; a no-op when spans
// are off.
func (o *Obs) observeBackoff(d time.Duration) {
	if o == nil {
		return
	}
	o.Backoff.ObserveDuration(d)
}

// span records now-start into h; a no-op when spans are off.
func (o *Obs) span(h *trace.Histogram, start time.Duration) {
	if o == nil || o.Clock == nil {
		return
	}
	h.ObserveDuration(o.Clock.Now() - start)
}
