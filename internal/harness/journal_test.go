package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipex/internal/energy"
	"ipex/internal/nvp"
)

func TestKeyDeterministicAndDistinct(t *testing.T) {
	type id struct {
		App   string
		Scale float64
	}
	a := Key(id{App: "fft", Scale: 0.5})
	b := Key(id{App: "fft", Scale: 0.5})
	if a != b {
		t.Fatalf("same material hashed differently: %s vs %s", a, b)
	}
	if len(a) != 32 {
		t.Fatalf("key length = %d, want 32 hex digits", len(a))
	}
	if c := Key(id{App: "fft", Scale: 0.25}); c == a {
		t.Fatalf("distinct material collided on %s", c)
	}
}

func TestKeyPanicsOnUnmarshalable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Key(func) did not panic")
		}
	}()
	Key(struct{ F func() }{F: func() {}})
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := CreateJournal(path, "sweepkey")
	if err != nil {
		t.Fatal(err)
	}
	res := nvp.Result{App: "fft", Completed: true, Insts: 123, Cycles: 456, Energy: energy.Breakdown{Compute: 1.0625}}
	if err := j.Append(Entry{Kind: KindCell, Key: "k1", App: "fft", Attempts: 1, Result: &res}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Kind: KindFail, Key: "k2", App: "gsme", Attempts: 3, Error: "boom", Stack: "goroutine 1..."}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, entries, warns, err := ResumeJournal(path, "sweepkey")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(warns) != 0 {
		t.Fatalf("clean journal produced warnings: %v", warns)
	}
	e1 := entries["k1"]
	if e1 == nil || e1.Kind != KindCell || e1.Result == nil {
		t.Fatalf("k1 entry = %+v", e1)
	}
	got, _ := json.Marshal(*e1.Result)
	want, _ := json.Marshal(res)
	if string(got) != string(want) {
		t.Fatalf("journaled result round-trip mismatch:\n got %s\nwant %s", got, want)
	}
	e2 := entries["k2"]
	if e2 == nil || e2.Kind != KindFail || e2.Error != "boom" || !strings.Contains(e2.Stack, "goroutine") {
		t.Fatalf("k2 entry = %+v", e2)
	}
}

func TestJournalRefusesOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := CreateJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := CreateJournal(path, "k"); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("overwriting an existing journal: err = %v, want a -resume hint", err)
	}
}

func TestJournalLaterEntryWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := CreateJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Entry{Kind: KindFail, Key: "cell", App: "fft", Error: "first try failed"})
	res := nvp.Result{App: "fft", Completed: true}
	j.Append(Entry{Kind: KindCell, Key: "cell", App: "fft", Result: &res})
	j.Close()

	j2, entries, _, err := ResumeJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if e := entries["cell"]; e == nil || e.Kind != KindCell {
		t.Fatalf("later cell entry did not win: %+v", e)
	}
}

func TestResumeSkipsCorruptedAndTruncatedLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := CreateJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	res := nvp.Result{App: "fft", Completed: true}
	j.Append(Entry{Kind: KindCell, Key: "good", App: "fft", Result: &res})
	j.Close()
	// A corrupted middle line and a crash-truncated final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{\"kind\":\"cell\",THIS IS NOT JSON}\n")
	f.WriteString("{\"kind\":\"cell\",\"key\":\"trunc\",\"result\":{\"App\"")
	f.Close()

	j2, entries, warns, err := ResumeJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(warns) != 2 {
		t.Fatalf("warnings = %v, want exactly 2 (corrupted + truncated)", warns)
	}
	for _, w := range warns {
		if !strings.Contains(w, "re-run") {
			t.Errorf("warning %q does not say the cell will re-run", w)
		}
	}
	if entries["good"] == nil {
		t.Fatal("valid entry lost alongside corrupted ones")
	}
	if entries["trunc"] != nil {
		t.Fatal("truncated entry survived")
	}
}

func TestResumeRejectsWrongSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := CreateJournal(path, "old-sweep")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, _, _, err := ResumeJournal(path, "new-sweep"); err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("resume with changed sweep hash: err = %v", err)
	}
}

func TestResumeRejectsWrongSchemaAndMissingHeader(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "badschema.jsonl")
	os.WriteFile(bad, []byte("{\"kind\":\"header\",\"schema\":\"ipex-journal/v0\",\"sweep\":\"k\"}\n"), 0o644)
	if _, _, _, err := ResumeJournal(bad, "k"); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema: err = %v", err)
	}
	headless := filepath.Join(dir, "headless.jsonl")
	os.WriteFile(headless, []byte("{\"kind\":\"cell\",\"key\":\"x\",\"result\":{}}\n"), 0o644)
	if _, _, _, err := ResumeJournal(headless, "k"); err == nil || !strings.Contains(err.Error(), "header") {
		t.Fatalf("missing header: err = %v", err)
	}
}

func TestResumeJournalAppendable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := CreateJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, _, _, err := ResumeJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	res := nvp.Result{App: "late", Completed: true}
	if err := j2.Append(Entry{Kind: KindCell, Key: "late", Result: &res}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, entries, _, err := ResumeJournal(path, "k")
	if err != nil {
		t.Fatal(err)
	}
	if entries["late"] == nil {
		t.Fatal("entry appended after resume was lost")
	}
}
