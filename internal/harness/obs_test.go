package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipex/internal/nvp"
	"ipex/internal/trace"
)

// TestObsSpansExact drives the lifecycle spans with a FakeClock so every
// histogram value is exact: the cell body advances the clock a known
// amount, so attempt_seconds must record precisely that.
func TestObsSpansExact(t *testing.T) {
	clk := &trace.FakeClock{}
	reg := trace.NewRegistry()
	s := &Supervisor{Obs: NewObs(clk, reg)}

	res, err, _ := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		clk.Advance(30 * time.Millisecond)
		return okResult("fft"), nil
	}}, nil)
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	hs := s.Obs.Attempt.Snapshot()
	if hs.N != 1 || hs.Sum != 0.03 {
		t.Fatalf("attempt span n=%d sum=%g, want 1 observation of exactly 0.03s", hs.N, hs.Sum)
	}
}

// TestObsBackoffSpans verifies retries observe the deterministic backoff
// schedule: two retries at base 1ms record 1ms + 2ms.
func TestObsBackoffSpans(t *testing.T) {
	clk := &trace.FakeClock{}
	reg := trace.NewRegistry()
	s := &Supervisor{MaxRetries: 3, BackoffBase: time.Millisecond, Obs: NewObs(clk, reg)}
	calls := 0
	_, err, _ := s.RunCell(Cell{Key: "k", Label: "fft", Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
		calls++
		if calls < 3 {
			return nvp.Result{}, Transient(errors.New("flaky"))
		}
		return okResult("fft"), nil
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hs := s.Obs.Backoff.Snapshot()
	if hs.N != 2 || hs.Sum != 0.003 {
		t.Fatalf("backoff span n=%d sum=%g, want 2 observations summing 3ms", hs.N, hs.Sum)
	}
	if s.Obs.Attempt.Count() != 3 {
		t.Fatalf("attempt spans = %d, want 3 (one per attempt)", s.Obs.Attempt.Count())
	}
}

// TestObsJournalAndQueueSpans runs a journaled batch through the Pool and
// checks journal-append and queue-wait spans fire once per cell — and that
// the journal bytes are identical to an unobserved run (spans must never
// leak into the journal).
func TestObsJournalAndQueueSpans(t *testing.T) {
	run := func(obs bool) (string, *Supervisor) {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal.jsonl")
		j, err := CreateJournal(path, "sweep-obs")
		if err != nil {
			t.Fatal(err)
		}
		s := &Supervisor{Journal: j}
		if obs {
			s.Obs = NewObs(&trace.FakeClock{}, trace.NewRegistry())
		}
		cells := make([]Cell, 4)
		for i := range cells {
			label := string(rune('a' + i))
			cells[i] = Cell{Key: "k" + label, Label: label,
				Run: func(context.Context, *nvp.Arena) (nvp.Result, error) {
					return okResult(label), nil
				}}
		}
		p := &Pool{Workers: 2, Sup: s}
		if _, _, err := p.Run(cells); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return path, s
	}

	path, s := run(true)
	if got := s.Obs.JournalAppend.Count(); got != 4 {
		t.Errorf("journal-append spans = %d, want 4", got)
	}
	if got := s.Obs.QueueWait.Count(); got != 4 {
		t.Errorf("queue-wait spans = %d, want 4", got)
	}

	// Byte-determinism: the journal must not know observation happened.
	// Entries may interleave differently across pool runs, so compare the
	// sorted line sets.
	plain, _ := run(false)
	a, b := readSortedLines(t, path), readSortedLines(t, plain)
	if a != b {
		t.Errorf("journal differs with observation enabled:\n%s\nvs\n%s", a, b)
	}
}

func readSortedLines(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			if lines[j] < lines[i] {
				lines[i], lines[j] = lines[j], lines[i]
			}
		}
	}
	return strings.Join(lines, "\n")
}
