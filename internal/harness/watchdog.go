package harness

// This file is the harness's only wall-clock corner, and the determinism
// lint (make lint) pins it that way: time.Now/time.After/time.Sleep in
// internal/ are forbidden everywhere except internal/benchio and this
// file. Nothing here feeds a simulated result — the watchdog merely
// cancels a wedged cell (which then stops at a power-cycle boundary), and
// the backoff sleep only spaces retries out; both are invisible in
// journals and output.

import (
	"context"
	"time"
)

// backstopContext returns a context the wall-clock watchdog cancels after
// d.
func backstopContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// BackoffDelay is the deterministic exponential delay before retry number
// `attempt` (1-based): base << (attempt-1), capped at 32× the base. No
// jitter: the schedule depends only on the attempt count, so retry
// behaviour is reproducible run to run. Exported because the distributed
// coordinator (internal/dist) spaces its worker health-check retries on
// the same curve.
func BackoffDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 5 {
		shift = 5
	}
	return base << shift
}

// backoff sleeps the deterministic retry delay (see BackoffDelay).
func (s *Supervisor) backoff(attempt int) {
	if s == nil || s.BackoffBase <= 0 {
		return
	}
	d := BackoffDelay(s.BackoffBase, attempt)
	// The span observes the deterministic delay itself (not a clock
	// measurement of the sleep): the schedule is exact by construction, and
	// recording the schedule keeps the backoff histogram reproducible.
	s.obs().observeBackoff(d)
	time.Sleep(d)
}
