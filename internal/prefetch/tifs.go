package prefetch

// TIFS implements Temporal Instruction Fetch Streaming (Ferdman et al.,
// MICRO'08), the most aggressive instruction prefetcher the paper evaluates
// (Table 3). Instruction-cache misses are appended to a circular Instruction
// Miss Log (IML); an index maps a block to its most recent log position. On
// a miss, TIFS looks the block up in the IML and streams out the blocks that
// followed it last time. Hits in the prefetch buffer advance the stream,
// keeping it ahead of the fetch unit.
type TIFS struct {
	log    []uint64 // circular IML of miss block addresses
	head   int      // next write position
	filled bool
	index  []tifsIndexEntry
	mask   uint64
	stream int  // IML position of the active stream's next block
	live   bool // whether a stream is active
}

type tifsIndexEntry struct {
	block uint64
	pos   int
	valid bool
}

// NewTIFS returns a TIFS prefetcher with an IML of n entries (rounded up to
// a power of two, minimum 256) and an index of the same size.
func NewTIFS(n int) *TIFS {
	size := 256
	for size < n {
		size <<= 1
	}
	return &TIFS{
		log:   make([]uint64, size),
		index: make([]tifsIndexEntry, size),
		mask:  uint64(size - 1),
	}
}

// Name implements Prefetcher.
func (t *TIFS) Name() string { return "tifs" }

func (t *TIFS) idxEntry(block uint64) *tifsIndexEntry {
	h := (block * 0x9e3779b97f4a7c15) >> 40
	return &t.index[h&t.mask]
}

// logLen returns the number of valid IML entries.
func (t *TIFS) logLen() int {
	if t.filled {
		return len(t.log)
	}
	return t.head
}

// OnAccess implements Prefetcher.
func (t *TIFS) OnAccess(dst []uint64, ev Event) []uint64 {
	switch {
	case ev.Miss && !ev.BufHit:
		// Record the miss in the IML and (re)locate the stream.
		e := t.idxEntry(ev.Block)
		t.live = false
		if e.valid && e.block == ev.Block && e.pos < t.logLen() && t.log[e.pos] == ev.Block {
			t.stream = e.pos + 1
			t.live = true
		}
		*e = tifsIndexEntry{block: ev.Block, pos: t.head, valid: true}
		t.log[t.head] = ev.Block
		t.head++
		if t.head == len(t.log) {
			t.head = 0
			t.filled = true
		}
	case ev.BufHit:
		// The stream delivered a useful block: keep streaming.
	default:
		return dst
	}
	if !t.live {
		return dst
	}
	n := t.logLen()
	for k := 0; k < MaxDegree; k++ {
		pos := t.stream + k
		if t.filled {
			pos &= len(t.log) - 1
		} else if pos >= n {
			break
		}
		if pos == t.head { // do not read past the log's write point
			break
		}
		dst = append(dst, t.log[pos])
	}
	t.stream++
	if t.filled {
		t.stream &= len(t.log) - 1
	} else if t.stream >= n {
		t.live = false
	}
	return dst
}

// AddressGenNJ implements prefetch address-generation costing (§5.2):
// an IML index probe plus a log-window read.
func (t *TIFS) AddressGenNJ() float64 { return 0.008 }

// Reset implements Prefetcher.
func (t *TIFS) Reset() {
	for i := range t.index {
		t.index[i] = tifsIndexEntry{}
	}
	t.head = 0
	t.filled = false
	t.live = false
	t.stream = 0
}
