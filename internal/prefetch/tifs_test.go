package prefetch

import "testing"

func missEv(b uint64) Event {
	return Event{PC: b, Addr: b, Block: b, Miss: true, BlockSize: 16}
}

func TestTIFSReplaysMissStream(t *testing.T) {
	tf := NewTIFS(256)
	stream := []uint64{0x100, 0x200, 0x300, 0x400, 0x500}
	for _, b := range stream {
		tf.OnAccess(nil, missEv(b))
	}
	// A repeated miss at the head of the logged stream should replay the
	// blocks that followed it.
	got := tf.OnAccess(nil, missEv(0x100))
	if len(got) == 0 {
		t.Fatal("repeat miss replayed nothing")
	}
	want := []uint64{0x200, 0x300, 0x400, 0x500}
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			t.Errorf("replay[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestTIFSStreamsOnBufHits(t *testing.T) {
	tf := NewTIFS(256)
	stream := []uint64{0x100, 0x200, 0x300, 0x400, 0x500, 0x600, 0x700}
	for _, b := range stream {
		tf.OnAccess(nil, missEv(b))
	}
	tf.OnAccess(nil, missEv(0x100)) // locate stream
	// Buffer hit advances the stream further.
	got := tf.OnAccess(nil, Event{PC: 0x200, Addr: 0x200, Block: 0x200, Miss: true, BufHit: true, BlockSize: 16})
	if len(got) == 0 {
		t.Fatal("buffer hit did not continue the stream")
	}
	if got[0] != 0x300 {
		t.Errorf("stream continuation starts at %#x, want 0x300", got[0])
	}
}

func TestTIFSColdMissesSilent(t *testing.T) {
	tf := NewTIFS(256)
	for i, b := range []uint64{0x100, 0x200, 0x300} {
		if got := tf.OnAccess(nil, missEv(b)); len(got) != 0 {
			t.Errorf("cold miss %d replayed %v", i, got)
		}
	}
}

func TestTIFSHitsIgnored(t *testing.T) {
	tf := NewTIFS(256)
	got := tf.OnAccess(nil, Event{PC: 0x100, Addr: 0x100, Block: 0x100, BlockSize: 16})
	if len(got) != 0 {
		t.Errorf("cache hit produced candidates: %v", got)
	}
}

func TestTIFSDegreeCap(t *testing.T) {
	tf := NewTIFS(256)
	for i := uint64(0); i < 10; i++ {
		tf.OnAccess(nil, missEv(0x100+i*0x100))
	}
	got := tf.OnAccess(nil, missEv(0x100))
	if len(got) > MaxDegree {
		t.Errorf("replay emitted %d, cap %d", len(got), MaxDegree)
	}
}

func TestTIFSLogWraparound(t *testing.T) {
	tf := NewTIFS(256) // log size 256
	// Overflow the log; old entries must be safely dropped.
	for i := uint64(0); i < 600; i++ {
		tf.OnAccess(nil, missEv(0x1000+i*16))
	}
	// A very old block's index entry points at an overwritten slot; the
	// lookup must not replay garbage.
	got := tf.OnAccess(nil, missEv(0x1000))
	for _, c := range got {
		if c < 0x1000 {
			t.Errorf("garbage candidate %#x after wraparound", c)
		}
	}
}

func TestTIFSRecentStreamAfterWraparound(t *testing.T) {
	tf := NewTIFS(256)
	for i := uint64(0); i < 300; i++ {
		tf.OnAccess(nil, missEv(0x1000+(i%280)*16))
	}
	// A block missed ~40 misses ago is still in the wrapped log and must
	// replay its recorded successors.
	got := tf.OnAccess(nil, missEv(0x1000+260*16))
	if len(got) == 0 {
		t.Fatal("recent stream lost after wraparound")
	}
	if got[0] != 0x1000+261*16 {
		t.Errorf("replay head = %#x, want %#x", got[0], uint64(0x1000+261*16))
	}
}

func TestTIFSCandidateWalkWrapsFilledLog(t *testing.T) {
	tf := NewTIFS(256)
	// Exactly fill the IML: head wraps to 0 and filled flips.
	for i := uint64(0); i < 256; i++ {
		tf.OnAccess(nil, missEv(0x1000+i*16))
	}
	if !tf.filled || tf.head != 0 {
		t.Fatalf("log not exactly filled: head=%d filled=%v", tf.head, tf.filled)
	}
	// Re-miss the block at position 254 (its index entry survives the feed's
	// hash collisions — pinned by the fixed hash constant). The candidate
	// walk starts at position 255 and must wrap through position 0, which by
	// now holds the re-missed block itself, then stop at the write head.
	got := tf.OnAccess(nil, missEv(0x1000+254*16))
	want := []uint64{0x1000 + 255*16, 0x1000 + 254*16}
	if len(got) != len(want) {
		t.Fatalf("wrapped replay = %#x, want %#x", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("wrapped replay[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	// The stream pointer itself must have wrapped back into range.
	if tf.stream >= len(tf.log) {
		t.Errorf("stream pointer %d not wrapped (log size %d)", tf.stream, len(tf.log))
	}
}

func TestTIFSIndexCollisionSuppressesReplay(t *testing.T) {
	// 0x1000 and 0x1330 hash to the same index bucket under the fixed
	// Fibonacci constant; verify that, then the collision semantics.
	tf := NewTIFS(256)
	if tf.idxEntry(0x1000) != tf.idxEntry(0x1330) {
		t.Fatal("test constants no longer collide; recompute the pair")
	}
	tf.OnAccess(nil, missEv(0x1000))
	tf.OnAccess(nil, missEv(0x5000))
	tf.OnAccess(nil, missEv(0x6000))
	// The colliding block steals the shared bucket.
	tf.OnAccess(nil, missEv(0x1330))
	tf.OnAccess(nil, missEv(0x7000))
	// The thief's stream is intact: its repeat miss replays its successor.
	if got := tf.OnAccess(nil, missEv(0x1330)); len(got) == 0 || got[0] != 0x7000 {
		t.Errorf("colliding block's own stream lost: %#x", got)
	}
	// A repeat miss of the evicted block finds the thief's tag and must not
	// replay the thief's successors as its own stream. (This miss steals
	// the bucket back — one entry per bucket is the hardware's behaviour.)
	if got := tf.OnAccess(nil, missEv(0x1000)); len(got) != 0 {
		t.Errorf("replay after index collision: %#x", got)
	}
}

func TestTIFSStaleIndexAfterOverwrite(t *testing.T) {
	tf := NewTIFS(256)
	tf.OnAccess(nil, missEv(0x1000))
	// 255 more misses leave the index entry for 0x1000 pointing at a log
	// slot that still holds it; one more overwrites slot 0.
	for i := uint64(1); i <= 256; i++ {
		tf.OnAccess(nil, missEv(0x100000+i*16))
	}
	// The index entry (if it survived) now disagrees with the log slot; the
	// guard `log[pos] == block` must reject it rather than replay garbage.
	got := tf.OnAccess(nil, missEv(0x1000))
	for _, c := range got {
		if c < 0x100000 && c != 0x1000 {
			t.Errorf("stale-index replay produced %#x", c)
		}
	}
}

func TestTIFSReset(t *testing.T) {
	tf := NewTIFS(256)
	for _, b := range []uint64{0x100, 0x200, 0x300} {
		tf.OnAccess(nil, missEv(b))
	}
	tf.Reset()
	if got := tf.OnAccess(nil, missEv(0x100)); len(got) != 0 {
		t.Errorf("reset did not clear the IML: %v", got)
	}
}

func TestTIFSName(t *testing.T) {
	if NewTIFS(1).Name() != "tifs" {
		t.Error("wrong name")
	}
}
