package prefetch

import "testing"

func missEv(b uint64) Event {
	return Event{PC: b, Addr: b, Block: b, Miss: true, BlockSize: 16}
}

func TestTIFSReplaysMissStream(t *testing.T) {
	tf := NewTIFS(256)
	stream := []uint64{0x100, 0x200, 0x300, 0x400, 0x500}
	for _, b := range stream {
		tf.OnAccess(nil, missEv(b))
	}
	// A repeated miss at the head of the logged stream should replay the
	// blocks that followed it.
	got := tf.OnAccess(nil, missEv(0x100))
	if len(got) == 0 {
		t.Fatal("repeat miss replayed nothing")
	}
	want := []uint64{0x200, 0x300, 0x400, 0x500}
	for i := 0; i < len(got) && i < len(want); i++ {
		if got[i] != want[i] {
			t.Errorf("replay[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestTIFSStreamsOnBufHits(t *testing.T) {
	tf := NewTIFS(256)
	stream := []uint64{0x100, 0x200, 0x300, 0x400, 0x500, 0x600, 0x700}
	for _, b := range stream {
		tf.OnAccess(nil, missEv(b))
	}
	tf.OnAccess(nil, missEv(0x100)) // locate stream
	// Buffer hit advances the stream further.
	got := tf.OnAccess(nil, Event{PC: 0x200, Addr: 0x200, Block: 0x200, Miss: true, BufHit: true, BlockSize: 16})
	if len(got) == 0 {
		t.Fatal("buffer hit did not continue the stream")
	}
	if got[0] != 0x300 {
		t.Errorf("stream continuation starts at %#x, want 0x300", got[0])
	}
}

func TestTIFSColdMissesSilent(t *testing.T) {
	tf := NewTIFS(256)
	for i, b := range []uint64{0x100, 0x200, 0x300} {
		if got := tf.OnAccess(nil, missEv(b)); len(got) != 0 {
			t.Errorf("cold miss %d replayed %v", i, got)
		}
	}
}

func TestTIFSHitsIgnored(t *testing.T) {
	tf := NewTIFS(256)
	got := tf.OnAccess(nil, Event{PC: 0x100, Addr: 0x100, Block: 0x100, BlockSize: 16})
	if len(got) != 0 {
		t.Errorf("cache hit produced candidates: %v", got)
	}
}

func TestTIFSDegreeCap(t *testing.T) {
	tf := NewTIFS(256)
	for i := uint64(0); i < 10; i++ {
		tf.OnAccess(nil, missEv(0x100+i*0x100))
	}
	got := tf.OnAccess(nil, missEv(0x100))
	if len(got) > MaxDegree {
		t.Errorf("replay emitted %d, cap %d", len(got), MaxDegree)
	}
}

func TestTIFSLogWraparound(t *testing.T) {
	tf := NewTIFS(256) // log size 256
	// Overflow the log; old entries must be safely dropped.
	for i := uint64(0); i < 600; i++ {
		tf.OnAccess(nil, missEv(0x1000+i*16))
	}
	// A very old block's index entry points at an overwritten slot; the
	// lookup must not replay garbage.
	got := tf.OnAccess(nil, missEv(0x1000))
	for _, c := range got {
		if c < 0x1000 {
			t.Errorf("garbage candidate %#x after wraparound", c)
		}
	}
}

func TestTIFSRecentStreamAfterWraparound(t *testing.T) {
	tf := NewTIFS(256)
	for i := uint64(0); i < 300; i++ {
		tf.OnAccess(nil, missEv(0x1000+(i%280)*16))
	}
	// A block missed ~40 misses ago is still in the wrapped log and must
	// replay its recorded successors.
	got := tf.OnAccess(nil, missEv(0x1000+260*16))
	if len(got) == 0 {
		t.Fatal("recent stream lost after wraparound")
	}
	if got[0] != 0x1000+261*16 {
		t.Errorf("replay head = %#x, want %#x", got[0], uint64(0x1000+261*16))
	}
}

func TestTIFSReset(t *testing.T) {
	tf := NewTIFS(256)
	for _, b := range []uint64{0x100, 0x200, 0x300} {
		tf.OnAccess(nil, missEv(b))
	}
	tf.Reset()
	if got := tf.OnAccess(nil, missEv(0x100)); len(got) != 0 {
		t.Errorf("reset did not clear the IML: %v", got)
	}
}

func TestTIFSName(t *testing.T) {
	if NewTIFS(1).Name() != "tifs" {
		t.Error("wrong name")
	}
}
