package prefetch

import (
	"testing"
	"testing/quick"
)

func TestNewAllKinds(t *testing.T) {
	for _, kind := range append(append([]Kind{}, InstructionKinds...), DataKinds...) {
		pf, err := New(kind)
		if err != nil {
			t.Errorf("New(%q): %v", kind, err)
			continue
		}
		if pf == nil {
			t.Errorf("New(%q) returned nil prefetcher", kind)
			continue
		}
		if Kind(pf.Name()) != kind {
			t.Errorf("New(%q).Name() = %q", kind, pf.Name())
		}
	}
}

func TestNewNone(t *testing.T) {
	pf, err := New(KindNone)
	if err != nil || pf != nil {
		t.Errorf("New(none) = %v, %v", pf, err)
	}
	pf, err = New("")
	if err != nil || pf != nil {
		t.Errorf("New(\"\") = %v, %v", pf, err)
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("warpdrive"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindLists(t *testing.T) {
	if InstructionKinds[0] != KindSequential {
		t.Error("Table 3 default must be sequential")
	}
	if DataKinds[0] != KindStride {
		t.Error("Table 4 default must be stride")
	}
	if len(InstructionKinds) != 3 || len(DataKinds) != 3 {
		t.Error("the paper evaluates 3 instruction and 3 data prefetchers")
	}
}

// Property: no prefetcher ever proposes the block it was triggered on as a
// candidate when fed a random miss stream, and candidates never exceed a
// sane count per event.
func TestPrefetchersWellBehavedOnRandomStreams(t *testing.T) {
	kinds := append(append([]Kind{}, InstructionKinds...), DataKinds...)
	f := func(raw []uint32, pcRaw []uint8) bool {
		for _, kind := range kinds {
			pf, err := New(kind)
			if err != nil {
				return false
			}
			var dst []uint64
			for i, r := range raw {
				addr := uint64(r % (1 << 21))
				pc := uint64(0x100)
				if len(pcRaw) > 0 {
					pc += uint64(pcRaw[i%len(pcRaw)]) * 4
				}
				dst = pf.OnAccess(dst[:0], Event{
					PC: pc, Addr: addr, Block: addr &^ 15,
					Miss: r%3 != 0, BufHit: r%7 == 0, BlockSize: 16,
				})
				if len(dst) > 2*MaxDegree {
					return false
				}
			}
			pf.Reset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: prefetchers are deterministic — the same event stream yields
// the same candidate stream.
func TestPrefetchersDeterministic(t *testing.T) {
	kinds := append(append([]Kind{}, InstructionKinds...), DataKinds...)
	stream := make([]Event, 500)
	for i := range stream {
		a := uint64((i * 7919) % (1 << 18))
		stream[i] = Event{PC: uint64(0x100 + (i%37)*4), Addr: a, Block: a &^ 15, Miss: i%2 == 0, BlockSize: 16}
	}
	for _, kind := range kinds {
		a, _ := New(kind)
		b, _ := New(kind)
		for i, ev := range stream {
			ca := a.OnAccess(nil, ev)
			cb := b.OnAccess(nil, ev)
			if len(ca) != len(cb) {
				t.Fatalf("%s: diverged at event %d", kind, i)
			}
			for j := range ca {
				if ca[j] != cb[j] {
					t.Fatalf("%s: candidate %d differs at event %d", kind, j, i)
				}
			}
		}
	}
}
