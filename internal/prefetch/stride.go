package prefetch

// Stride is the PC-indexed reference prediction table (RPT) data prefetcher
// of Chen & Baer — the paper's default data prefetcher. Each table entry
// tracks the last address and last stride observed for one load/store PC;
// after the same stride repeats (confidence reaches the steady state) the
// prefetcher proposes addr + k*stride for k = 1..MaxDegree.
type Stride struct {
	entries []strideEntry
	mask    uint64
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     uint8 // 2-bit saturating confidence
	valid    bool
}

// confThreshold is the confidence at which predictions are emitted.
const confThreshold = 2

// NewStride returns a stride prefetcher with a table of n entries (rounded
// up to a power of two, minimum 16). The paper-scale embedded configuration
// uses a 64-entry table.
func NewStride(n int) *Stride {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Stride{entries: make([]strideEntry, size), mask: uint64(size - 1)}
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return "stride" }

// OnAccess implements Prefetcher. Every access trains the table (the raw
// byte address is used: block-aligning first would quantize away strides
// smaller than a block), but candidates are only emitted on a miss or on
// the first use of a prefetched block — the classic RPT issue policy, which
// bounds the prefetch rate by the miss rate and keeps a small prefetch
// buffer from thrashing. The lookahead skips predictions that stay within
// the current block so each candidate names a new block.
func (s *Stride) OnAccess(dst []uint64, ev Event) []uint64 {
	e := &s.entries[(ev.PC>>2)&s.mask]
	if !e.valid || e.pc != ev.PC {
		*e = strideEntry{pc: ev.PC, lastAddr: ev.Addr, valid: true}
		return dst
	}
	stride := int64(ev.Addr) - int64(e.lastAddr)
	if stride == 0 {
		// Same address again; keep state, nothing to learn or predict.
		return dst
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = stride
		}
	}
	e.lastAddr = ev.Addr
	if !ev.Miss && !ev.BufHit {
		return dst
	}
	if e.conf >= confThreshold && e.stride != 0 {
		addr := int64(ev.Addr)
		prevBlock := ev.Block
		emitted := 0
		// Look ahead far enough to cover MaxDegree *new* blocks even when
		// several strides land in one block.
		for step := 0; step < 64 && emitted < MaxDegree; step++ {
			addr += e.stride
			if addr < 0 {
				break
			}
			blk := uint64(addr) &^ (ev.BlockSize - 1)
			if blk == prevBlock {
				continue
			}
			prevBlock = blk
			dst = append(dst, blk)
			emitted++
		}
	}
	return dst
}

// Reset implements Prefetcher.
func (s *Stride) Reset() {
	for i := range s.entries {
		s.entries[i] = strideEntry{}
	}
}
