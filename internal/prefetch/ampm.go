package prefetch

// AMPM implements Access Map Pattern Matching (Ishii, Inaba & Hiraki,
// ICS'09/JILP'11), the bitmap-based data prefetcher the paper's related
// work highlights for delivering high coverage with minimal hardware.
//
// Memory is divided into fixed-size zones; each tracked zone keeps a
// bitmap of recently accessed blocks. On a cache miss the prefetcher tests,
// for each candidate offset d, whether the two blocks "behind" the current
// one at stride d (i.e. block−d and block−2d) were accessed; if so the
// access map extends in that direction and block+d, block+2d, … are
// proposed. This pattern test is direction- and stride-agnostic within the
// zone, which lets AMPM pick up forward, backward, and strided sweeps from
// a single structure.
type AMPM struct {
	zones []ampmZone
	order []int // FIFO of zone slots for replacement
	free  []int
	index map[uint64]int
}

// ampmZoneBlocks is the number of blocks tracked per zone (64 blocks =
// 1 kB zones with 16 B blocks).
const ampmZoneBlocks = 64

// ampmOffsets are the strides (in blocks) the pattern matcher tests.
var ampmOffsets = []int64{1, 2, 3, 4, -1, -2}

type ampmZone struct {
	base   uint64
	bitmap uint64
	valid  bool
}

// NewAMPM returns an AMPM prefetcher tracking up to n zones (minimum 8).
func NewAMPM(n int) *AMPM {
	if n < 8 {
		n = 8
	}
	a := &AMPM{
		zones: make([]ampmZone, n),
		index: make(map[uint64]int, n),
	}
	for i := n - 1; i >= 0; i-- {
		a.free = append(a.free, i)
	}
	// Zone size depends on the block size, which arrives per event, so
	// zones are keyed directly by their base address.
	return a
}

// Name implements Prefetcher.
func (a *AMPM) Name() string { return "ampm" }

// zoneFor returns the zone tracking base, allocating (FIFO-evicting) if
// needed.
func (a *AMPM) zoneFor(base uint64) *ampmZone {
	if i, ok := a.index[base]; ok {
		return &a.zones[i]
	}
	var slot int
	if len(a.free) > 0 {
		slot = a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
	} else {
		slot = a.order[0]
		a.order = a.order[1:]
		delete(a.index, a.zones[slot].base)
	}
	a.zones[slot] = ampmZone{base: base, valid: true}
	a.index[base] = slot
	a.order = append(a.order, slot)
	return &a.zones[slot]
}

// peek returns the zone for base without allocating, or nil.
func (a *AMPM) peek(base uint64) *ampmZone {
	if i, ok := a.index[base]; ok {
		return &a.zones[i]
	}
	return nil
}

// bit reports whether the block at absolute index (zone-relative) is set,
// looking into neighbour zones for out-of-range indices.
func (a *AMPM) bit(zoneBase uint64, zoneBytes uint64, idx int64) bool {
	for idx < 0 {
		if zoneBase < zoneBytes {
			return false
		}
		zoneBase -= zoneBytes
		idx += ampmZoneBlocks
	}
	for idx >= ampmZoneBlocks {
		zoneBase += zoneBytes
		idx -= ampmZoneBlocks
	}
	z := a.peek(zoneBase)
	return z != nil && z.bitmap&(1<<uint(idx)) != 0
}

// OnAccess implements Prefetcher. Every access trains the map; candidates
// are proposed on misses and prefetch-buffer hits, as with the other
// miss-driven prefetchers.
func (a *AMPM) OnAccess(dst []uint64, ev Event) []uint64 {
	zoneBytes := ev.BlockSize * ampmZoneBlocks
	base := ev.Block &^ (zoneBytes - 1)
	idx := int64((ev.Block - base) / ev.BlockSize)

	z := a.zoneFor(base)
	z.bitmap |= 1 << uint(idx)

	if !ev.Miss && !ev.BufHit {
		return dst
	}

	emitted := 0
	for _, d := range ampmOffsets {
		if emitted >= MaxDegree {
			break
		}
		// Pattern test: the two blocks behind the access at stride d.
		if !a.bit(base, zoneBytes, idx-d) || !a.bit(base, zoneBytes, idx-2*d) {
			continue
		}
		// The map extends in direction d: propose the blocks ahead.
		for k := int64(1); k <= 2 && emitted < MaxDegree; k++ {
			t := int64(ev.Block) + d*k*int64(ev.BlockSize)
			if t < 0 {
				break
			}
			if a.bit(base, zoneBytes, idx+d*k) {
				continue // already accessed recently
			}
			dst = append(dst, uint64(t))
			emitted++
		}
	}
	return dst
}

// AddressGenNJ implements prefetch address-generation costing (§5.2):
// a zone-bitmap read and the pattern-match network.
func (a *AMPM) AddressGenNJ() float64 { return 0.004 }

// Reset implements Prefetcher.
func (a *AMPM) Reset() {
	for i := range a.zones {
		a.zones[i] = ampmZone{}
	}
	a.index = make(map[uint64]int, len(a.zones))
	a.order = a.order[:0]
	a.free = a.free[:0]
	for i := len(a.zones) - 1; i >= 0; i-- {
		a.free = append(a.free, i)
	}
}
