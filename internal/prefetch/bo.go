package prefetch

// BO implements a compact Best-Offset data prefetcher (Michaud,
// HPCA'16-style), evaluated by the paper in Table 4. The prefetcher learns
// the block offset O that most often satisfies "the line X−O was requested
// recently when X misses" — i.e. an offset that would have been timely — by
// scoring a fixed candidate list against a small recent-requests table. At
// the end of each learning round the best-scoring offset becomes the active
// prefetch offset; prefetch candidates are X+O, X+2·O, ….
type BO struct {
	offsets []int64
	scores  []int
	current int64 // active offset in blocks (0 = no prefetching yet)

	rr     []uint64 // recent-requests table of block addresses
	rrMask uint64

	probe      int // which candidate offset the current miss tests
	round      int // misses seen in the current learning round
	roundLen   int
	blockBytes uint64
}

// boDefaultOffsets is the candidate list: small offsets suited to a 16 B
// block embedded memory system.
var boDefaultOffsets = []int64{1, 2, 3, 4, 5, 6, 8, -1, -2}

// NewBO returns a best-offset prefetcher with a recent-requests table of n
// entries (rounded up to a power of two, minimum 32) and a learning round
// of 64 misses.
func NewBO(n int) *BO {
	size := 32
	for size < n {
		size <<= 1
	}
	return &BO{
		offsets:  append([]int64(nil), boDefaultOffsets...),
		scores:   make([]int, len(boDefaultOffsets)),
		rr:       make([]uint64, size),
		rrMask:   uint64(size - 1),
		roundLen: 64,
		current:  1, // start as next-line until the first round completes
	}
}

// Name implements Prefetcher.
func (b *BO) Name() string { return "bo" }

func (b *BO) rrInsert(block uint64) {
	h := (block * 0x9e3779b97f4a7c15) >> 32
	b.rr[h&b.rrMask] = block
}

func (b *BO) rrHit(block uint64) bool {
	h := (block * 0x9e3779b97f4a7c15) >> 32
	return b.rr[h&b.rrMask] == block && block != 0
}

// OnAccess implements Prefetcher.
func (b *BO) OnAccess(dst []uint64, ev Event) []uint64 {
	if !ev.Miss && !ev.BufHit {
		return dst
	}
	b.blockBytes = ev.BlockSize
	b.rrInsert(ev.Block)

	// Learning: test one candidate offset per miss (round-robin).
	off := b.offsets[b.probe]
	test := int64(ev.Block) - off*int64(ev.BlockSize)
	if test >= 0 && b.rrHit(uint64(test)) {
		b.scores[b.probe]++
	}
	b.probe = (b.probe + 1) % len(b.offsets)
	b.round++
	if b.round >= b.roundLen {
		best := 0
		for i := 1; i < len(b.scores); i++ {
			if b.scores[i] > b.scores[best] {
				best = i
			}
		}
		if b.scores[best] > 0 {
			b.current = b.offsets[best]
		}
		for i := range b.scores {
			b.scores[i] = 0
		}
		b.round = 0
	}

	if b.current == 0 {
		return dst
	}
	addr := int64(ev.Block)
	step := b.current * int64(ev.BlockSize)
	for k := 0; k < MaxDegree; k++ {
		addr += step
		if addr < 0 {
			break
		}
		dst = append(dst, uint64(addr))
	}
	return dst
}

// AddressGenNJ implements prefetch address-generation costing (§5.2):
// a recent-requests probe and one score update.
func (b *BO) AddressGenNJ() float64 { return 0.002 }

// Reset implements Prefetcher.
func (b *BO) Reset() {
	for i := range b.rr {
		b.rr[i] = 0
	}
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.probe = 0
	b.round = 0
	b.current = 1
}
