package prefetch

import "testing"

// replayMisses feeds a block-address miss sequence (instruction-side PCs
// equal the addresses) and returns the candidates of the final event.
func replayMisses(m *Markov, blocks []uint64) []uint64 {
	var got []uint64
	for _, b := range blocks {
		got = m.OnAccess(nil, Event{PC: b, Addr: b, Block: b, Miss: true, BlockSize: 16})
	}
	return got
}

func TestMarkovLearnsSuccessor(t *testing.T) {
	m := NewMarkov(256)
	// A->B repeatedly, then a miss at A should predict B.
	seq := []uint64{0x100, 0x200, 0x100, 0x200, 0x100}
	got := replayMisses(m, seq)
	if len(got) == 0 || got[0] != 0x200 {
		t.Fatalf("prediction after A = %v, want [0x200 ...]", got)
	}
}

func TestMarkovRanksByFrequency(t *testing.T) {
	m := NewMarkov(256)
	// A->B twice, A->C once; best successor of A is B.
	seq := []uint64{0x100, 0x200, 0x100, 0x300, 0x100, 0x200, 0x100}
	got := replayMisses(m, seq)
	if len(got) < 2 {
		t.Fatalf("expected two successors, got %v", got)
	}
	if got[0] != 0x200 || got[1] != 0x300 {
		t.Errorf("ranking = %#x,%#x, want 0x200,0x300", got[0], got[1])
	}
}

func TestMarkovIgnoresHits(t *testing.T) {
	m := NewMarkov(256)
	got := m.OnAccess(nil, Event{PC: 0x100, Addr: 0x100, Block: 0x100, BlockSize: 16})
	if len(got) != 0 {
		t.Errorf("hit produced candidates: %v", got)
	}
}

func TestMarkovColdMissSilent(t *testing.T) {
	m := NewMarkov(256)
	if got := replayMisses(m, []uint64{0x100}); len(got) != 0 {
		t.Errorf("cold miss predicted %v", got)
	}
}

func TestMarkovSuccessorReplacement(t *testing.T) {
	m := NewMarkov(256)
	// Fill A's successor slots with 4 entries, then add a 5th repeatedly;
	// it must displace the weakest and become predictable.
	var seq []uint64
	for _, b := range []uint64{0x200, 0x300, 0x400, 0x500} {
		seq = append(seq, 0x100, b)
	}
	for i := 0; i < 3; i++ {
		seq = append(seq, 0x100, 0x600)
	}
	seq = append(seq, 0x100)
	got := replayMisses(m, seq)
	found := false
	for _, c := range got {
		if c == 0x600 {
			found = true
		}
	}
	if !found {
		t.Errorf("new frequent successor not adopted: %v", got)
	}
}

func TestMarkovDegreeCap(t *testing.T) {
	m := NewMarkov(256)
	var seq []uint64
	for _, b := range []uint64{0x200, 0x300, 0x400, 0x500} {
		seq = append(seq, 0x100, b)
	}
	seq = append(seq, 0x100)
	got := replayMisses(m, seq)
	if len(got) > MaxDegree {
		t.Errorf("emitted %d candidates, cap is %d", len(got), MaxDegree)
	}
}

func TestMarkovBufHitTrains(t *testing.T) {
	m := NewMarkov(256)
	var got []uint64
	stream := []Event{
		{PC: 0x100, Addr: 0x100, Block: 0x100, Miss: true, BlockSize: 16},
		{PC: 0x200, Addr: 0x200, Block: 0x200, BufHit: true, Miss: true, BlockSize: 16},
		{PC: 0x100, Addr: 0x100, Block: 0x100, Miss: true, BlockSize: 16},
	}
	for _, ev := range stream {
		got = m.OnAccess(nil, ev)
	}
	if len(got) == 0 || got[0] != 0x200 {
		t.Errorf("buffer-hit transitions not learned: %v", got)
	}
}

func TestMarkovReset(t *testing.T) {
	m := NewMarkov(256)
	replayMisses(m, []uint64{0x100, 0x200, 0x100, 0x200})
	m.Reset()
	if got := replayMisses(m, []uint64{0x100}); len(got) != 0 {
		t.Errorf("reset did not clear table: %v", got)
	}
}

func TestMarkovName(t *testing.T) {
	if NewMarkov(1).Name() != "markov" {
		t.Error("wrong name")
	}
}
