package prefetch

import "ipex/internal/trace"

// Instrument wraps a Prefetcher with metrics-registry counters: how often it
// was consulted, how many candidates it proposed, and how many power-failure
// resets it absorbed. The engine installs the wrapper only when a registry is
// configured, so an uninstrumented run pays nothing; with one installed, each
// observation costs two atomic adds.
//
// The wrapper deliberately does NOT forward the optional AddressGenCoster /
// HitIndifferent interfaces — the engine inspects the inner prefetcher for
// those before wrapping, so the energy model and hit-skip fast path are
// unchanged by instrumentation.
type Instrument struct {
	inner    Prefetcher
	observes *trace.Counter
	proposed *trace.Counter
	resets   *trace.Counter
}

// NewInstrument wraps p, registering its counters under
// "<prefix>.<name>.{observes,proposed,resets}" (prefix is typically the
// cache side, e.g. "icache"). A nil registry yields discarding handles.
func NewInstrument(p Prefetcher, reg *trace.Registry, prefix string) *Instrument {
	base := prefix + "." + p.Name() + "."
	return &Instrument{
		inner:    p,
		observes: reg.Counter(base + "observes"),
		proposed: reg.Counter(base + "proposed"),
		resets:   reg.Counter(base + "resets"),
	}
}

// Unwrap returns the wrapped prefetcher.
func (in *Instrument) Unwrap() Prefetcher { return in.inner }

// Name identifies the wrapped prefetcher.
func (in *Instrument) Name() string { return in.inner.Name() }

// OnAccess forwards to the wrapped prefetcher, counting the observation and
// the candidates it produced.
func (in *Instrument) OnAccess(dst []uint64, ev Event) []uint64 {
	base := len(dst)
	out := in.inner.OnAccess(dst, ev)
	in.observes.Inc()
	in.proposed.Add(uint64(len(out) - base))
	return out
}

// Reset forwards the power-failure reset, counting it.
func (in *Instrument) Reset() {
	in.resets.Inc()
	in.inner.Reset()
}
