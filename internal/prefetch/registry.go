package prefetch

import "fmt"

// Kind names a prefetcher implementation for configuration purposes.
type Kind string

// The recognized prefetcher kinds. KindNone disables prefetching for a
// cache.
const (
	KindNone       Kind = "none"
	KindSequential Kind = "sequential"
	KindStride     Kind = "stride"
	KindMarkov     Kind = "markov"
	KindTIFS       Kind = "tifs"
	KindGHB        Kind = "ghb"
	KindBO         Kind = "bo"
	// KindAMPM is beyond the paper's evaluated set (Tables 3/4) but is
	// discussed in its related work; it is available for experiments.
	KindAMPM Kind = "ampm"
)

// InstructionKinds lists the instruction prefetchers the paper evaluates
// (Table 3), default first.
var InstructionKinds = []Kind{KindSequential, KindMarkov, KindTIFS}

// DataKinds lists the data prefetchers the paper evaluates (Table 4),
// default first.
var DataKinds = []Kind{KindStride, KindGHB, KindBO}

// New instantiates a prefetcher of the given kind with paper-scale embedded
// table sizes. It returns (nil, nil) for KindNone.
func New(kind Kind) (Prefetcher, error) {
	switch kind {
	case KindNone, "":
		return nil, nil
	case KindSequential:
		return NewSequential(), nil
	case KindStride:
		return NewStride(512), nil
	case KindMarkov:
		return NewMarkov(256), nil
	case KindTIFS:
		return NewTIFS(1024), nil
	case KindGHB:
		return NewGHB(512), nil
	case KindBO:
		return NewBO(64), nil
	case KindAMPM:
		return NewAMPM(32), nil
	}
	return nil, fmt.Errorf("prefetch: unknown kind %q", kind)
}
