package prefetch

// Markov is the correlation-based prefetcher of Joseph & Grunwald: a table
// maps a miss address to the addresses that historically followed it, with
// per-successor counts approximating transition probabilities. On a miss at
// B it records the transition prev→B and proposes B's most probable
// successors, best first. The paper evaluates it as an instruction
// prefetcher (Table 3).
type Markov struct {
	table    []markovEntry
	mask     uint64
	prev     uint64
	havePrev bool
}

// markovSuccessors is the number of successor slots per entry (4, as in the
// original design's first-order table).
const markovSuccessors = 4

type markovEntry struct {
	key   uint64
	valid bool
	succ  [markovSuccessors]uint64
	count [markovSuccessors]uint16
}

// NewMarkov returns a Markov prefetcher with a correlation table of n
// entries (rounded up to a power of two, minimum 64).
func NewMarkov(n int) *Markov {
	size := 64
	for size < n {
		size <<= 1
	}
	return &Markov{table: make([]markovEntry, size), mask: uint64(size - 1)}
}

// Name implements Prefetcher.
func (m *Markov) Name() string { return "markov" }

func (m *Markov) entry(block uint64) *markovEntry {
	// Fibonacci hashing spreads block addresses across the table.
	h := (block * 0x9e3779b97f4a7c15) >> 40
	return &m.table[h&m.mask]
}

// OnAccess implements Prefetcher. Only the miss stream trains and triggers
// the table, as in the original design.
func (m *Markov) OnAccess(dst []uint64, ev Event) []uint64 {
	if !ev.Miss && !ev.BufHit {
		return dst
	}
	if m.havePrev && m.prev != ev.Block {
		m.train(m.prev, ev.Block)
	}
	m.prev = ev.Block
	m.havePrev = true

	e := m.entry(ev.Block)
	if !e.valid || e.key != ev.Block {
		return dst
	}
	// Emit successors in decreasing count order (insertion sort over 4).
	type cand struct {
		addr  uint64
		count uint16
	}
	var cands [markovSuccessors]cand
	n := 0
	for i := 0; i < markovSuccessors; i++ {
		if e.count[i] == 0 {
			continue
		}
		cands[n] = cand{e.succ[i], e.count[i]}
		n++
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && cands[j].count > cands[j-1].count; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for i := 0; i < n && i < MaxDegree; i++ {
		dst = append(dst, cands[i].addr)
	}
	return dst
}

func (m *Markov) train(from, to uint64) {
	e := m.entry(from)
	if !e.valid || e.key != from {
		*e = markovEntry{key: from, valid: true}
	}
	// Existing successor: bump its count (saturating).
	minIdx := 0
	for i := 0; i < markovSuccessors; i++ {
		if e.count[i] > 0 && e.succ[i] == to {
			if e.count[i] < 1<<15 {
				e.count[i]++
			}
			return
		}
		if e.count[i] < e.count[minIdx] {
			minIdx = i
		}
	}
	// Replace the weakest successor.
	e.succ[minIdx] = to
	e.count[minIdx] = 1
}

// AddressGenNJ implements prefetch address-generation costing (§5.2):
// one correlation-table lookup (4-successor entry read).
func (m *Markov) AddressGenNJ() float64 { return 0.006 }

// Reset implements Prefetcher.
func (m *Markov) Reset() {
	for i := range m.table {
		m.table[i] = markovEntry{}
	}
	m.prev = 0
	m.havePrev = false
}
