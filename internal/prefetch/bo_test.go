package prefetch

import "testing"

func TestBOStartsAsNextLine(t *testing.T) {
	b := NewBO(64)
	got := b.OnAccess(nil, evt(0x40, 0x1000, true, false))
	if len(got) == 0 {
		t.Fatal("fresh BO emitted nothing")
	}
	if got[0] != 0x1010 {
		t.Errorf("initial offset should be next line: got %#x", got[0])
	}
}

func TestBOLearnsDominantOffset(t *testing.T) {
	b := NewBO(64)
	// Stream with offset +2 blocks between consecutive misses; after a
	// learning round the active offset should be 2.
	addr := uint64(0x1000)
	for i := 0; i < 200; i++ {
		b.OnAccess(nil, evt(0x40, addr, true, false))
		addr += 32
	}
	if b.current != 2 {
		t.Errorf("learned offset = %d, want 2", b.current)
	}
	got := b.OnAccess(nil, evt(0x40, addr, true, false))
	if len(got) == 0 || got[0] != addr+32 {
		t.Errorf("prediction with offset 2 = %v, want first %#x", got, addr+32)
	}
}

func TestBOEmitsMultiplesOfOffset(t *testing.T) {
	b := NewBO(64)
	got := b.OnAccess(nil, evt(0x40, 0x1000, true, false))
	if len(got) != MaxDegree {
		t.Fatalf("candidates = %d, want %d", len(got), MaxDegree)
	}
	for i, c := range got {
		want := uint64(0x1000 + 16*(i+1))
		if c != want {
			t.Errorf("candidate %d = %#x, want %#x", i, c, want)
		}
	}
}

func TestBOHitsIgnored(t *testing.T) {
	b := NewBO(64)
	if got := b.OnAccess(nil, evt(0x40, 0x1000, false, false)); len(got) != 0 {
		t.Errorf("hit produced candidates: %v", got)
	}
}

func TestBONegativeOffsetLearnable(t *testing.T) {
	b := NewBO(64)
	addr := uint64(0x100000)
	for i := 0; i < 200; i++ {
		b.OnAccess(nil, evt(0x40, addr, true, false))
		addr -= 16
	}
	if b.current != -1 {
		t.Errorf("learned offset = %d, want -1 for a descending stream", b.current)
	}
}

func TestBOReset(t *testing.T) {
	b := NewBO(64)
	addr := uint64(0x1000)
	for i := 0; i < 200; i++ {
		b.OnAccess(nil, evt(0x40, addr, true, false))
		addr += 32
	}
	b.Reset()
	if b.current != 1 {
		t.Errorf("reset offset = %d, want 1", b.current)
	}
	got := b.OnAccess(nil, evt(0x40, 0x2000, true, false))
	if len(got) == 0 || got[0] != 0x2010 {
		t.Errorf("post-reset prediction = %v", got)
	}
}

func TestBOName(t *testing.T) {
	if NewBO(1).Name() != "bo" {
		t.Error("wrong name")
	}
}
