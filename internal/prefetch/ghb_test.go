package prefetch

import "testing"

// feedGHB replays a miss address stream for one PC.
func feedGHB(g *GHB, pc uint64, addrs []uint64) []uint64 {
	var got []uint64
	for _, a := range addrs {
		got = g.OnAccess(nil, evt(pc, a, true, false))
	}
	return got
}

func TestGHBConstantStrideFallback(t *testing.T) {
	g := NewGHB(256)
	addrs := []uint64{0x1000, 0x1040, 0x1080, 0x10c0, 0x1100}
	got := feedGHB(g, 0x40, addrs)
	if len(got) == 0 {
		t.Fatal("constant stride not predicted")
	}
	if got[0] != 0x1140 {
		t.Errorf("first candidate = %#x, want 0x1140", got[0])
	}
}

func TestGHBDeltaCorrelation(t *testing.T) {
	g := NewGHB(256)
	// Repeating delta pattern +0x40, +0x40, +0x100: after two periods the
	// correlator should find the pair and replay what followed.
	var addrs []uint64
	a := uint64(0x1000)
	for i := 0; i < 4; i++ {
		addrs = append(addrs, a, a+0x40, a+0x80)
		a += 0x180
	}
	got := feedGHB(g, 0x40, addrs)
	if len(got) == 0 {
		t.Fatal("periodic delta pattern not predicted")
	}
}

func TestGHBNeedsHistory(t *testing.T) {
	g := NewGHB(256)
	if got := feedGHB(g, 0x40, []uint64{0x1000, 0x1040}); len(got) != 0 {
		t.Errorf("two-access history predicted %v", got)
	}
}

func TestGHBHitsIgnored(t *testing.T) {
	g := NewGHB(256)
	got := g.OnAccess(nil, evt(0x40, 0x1000, false, false))
	if len(got) != 0 {
		t.Errorf("hit produced candidates: %v", got)
	}
}

func TestGHBPerPCChains(t *testing.T) {
	g := NewGHB(256)
	// Interleave two PCs with different strides; each must predict its own.
	for i := 0; i < 6; i++ {
		g.OnAccess(nil, evt(0x40, uint64(0x1000+i*0x40), true, false))
		g.OnAccess(nil, evt(0x80, uint64(0x8000+i*0x20), true, false))
	}
	gotA := g.OnAccess(nil, evt(0x40, 0x1000+6*0x40, true, false))
	gotB := g.OnAccess(nil, evt(0x80, 0x8000+6*0x20, true, false))
	if len(gotA) == 0 || len(gotB) == 0 {
		t.Fatal("interleaved chains failed")
	}
	if gotA[0] != 0x1000+7*0x40 {
		t.Errorf("PC A candidate %#x", gotA[0])
	}
	if gotB[0] != 0x8000+7*0x20 {
		t.Errorf("PC B candidate %#x", gotB[0])
	}
}

func TestGHBDegreeCap(t *testing.T) {
	g := NewGHB(256)
	var addrs []uint64
	for i := 0; i < 12; i++ {
		addrs = append(addrs, uint64(0x1000+i*0x40))
	}
	got := feedGHB(g, 0x40, addrs)
	if len(got) > MaxDegree {
		t.Errorf("emitted %d candidates, cap %d", len(got), MaxDegree)
	}
}

func TestGHBBufferOverwriteSafe(t *testing.T) {
	g := NewGHB(128) // buffer 128 entries
	// Flood with many PCs so old chain nodes are overwritten, then use a
	// stale chain; must not panic or emit garbage below the region.
	for i := 0; i < 64; i++ {
		feedGHB(g, uint64(0x40+i*4), []uint64{0x1000, 0x1040, 0x1080})
	}
	got := feedGHB(g, 0x40, []uint64{0x10c0})
	for _, c := range got {
		if int64(c) < 0 {
			t.Errorf("negative candidate %d", int64(c))
		}
	}
}

func TestGHBReset(t *testing.T) {
	g := NewGHB(256)
	feedGHB(g, 0x40, []uint64{0x1000, 0x1040, 0x1080, 0x10c0, 0x1100})
	g.Reset()
	if got := feedGHB(g, 0x40, []uint64{0x1140}); len(got) != 0 {
		t.Errorf("reset did not clear history: %v", got)
	}
}

func TestGHBName(t *testing.T) {
	if NewGHB(1).Name() != "ghb" {
		t.Error("wrong name")
	}
}
