package prefetch

import "testing"

// feed replays a constant-stride access stream by one PC and returns the
// candidates emitted at the final (miss) access.
func feedStride(s *Stride, pc uint64, start uint64, stride int64, n int) []uint64 {
	var got []uint64
	addr := int64(start)
	for i := 0; i < n; i++ {
		got = s.OnAccess(nil, evt(pc, uint64(addr), true, false))
		addr += stride
	}
	return got
}

func TestStrideLearnsConstantStride(t *testing.T) {
	s := NewStride(64)
	got := feedStride(s, 0x40, 0x1000, 32, 5)
	if len(got) == 0 {
		t.Fatal("trained stride emitted nothing")
	}
	// Last access was at 0x1000+4*32 = 0x1080; predictions are new blocks
	// along +32: first candidate block is 0x10a0 (0x1080+32 block-aligned).
	if got[0] != 0x10a0 {
		t.Errorf("first candidate = %#x, want 0x10a0", got[0])
	}
	// Candidates must be distinct blocks.
	seen := map[uint64]bool{}
	for _, c := range got {
		b := c &^ 15
		if seen[b] {
			t.Errorf("duplicate block candidate %#x", b)
		}
		seen[b] = true
	}
}

func TestStrideSubBlockStrideSkipsCurrentBlock(t *testing.T) {
	s := NewStride(64)
	got := feedStride(s, 0x40, 0x1000, 4, 6)
	if len(got) == 0 {
		t.Fatal("no candidates for 4B stride")
	}
	last := uint64(0x1000 + 5*4)
	for _, c := range got {
		if c&^15 == last&^15 {
			t.Errorf("candidate %#x stays in the current block", c)
		}
	}
}

func TestStrideRequiresConfidence(t *testing.T) {
	s := NewStride(64)
	// Two accesses only: stride observed once, confidence below threshold.
	if got := feedStride(s, 0x40, 0x1000, 32, 2); len(got) != 0 {
		t.Errorf("low-confidence prediction emitted: %v", got)
	}
}

func TestStrideRandomDeltasStaySilent(t *testing.T) {
	s := NewStride(64)
	addrs := []uint64{0x1000, 0x5008, 0x2010, 0x9004, 0x3020, 0x800c}
	var got []uint64
	for _, a := range addrs {
		got = s.OnAccess(nil, evt(0x40, a, true, false))
	}
	if len(got) != 0 {
		t.Errorf("random deltas produced predictions: %v", got)
	}
}

func TestStrideOnlyEmitsOnMissOrBufHit(t *testing.T) {
	s := NewStride(64)
	addr := uint64(0x1000)
	var got []uint64
	for i := 0; i < 6; i++ {
		got = s.OnAccess(nil, evt(0x40, addr, false, false)) // hits train silently
		addr += 32
	}
	if len(got) != 0 {
		t.Errorf("hit emitted predictions: %v", got)
	}
	// The next miss emits immediately (table is already trained).
	got = s.OnAccess(nil, evt(0x40, addr, true, false))
	if len(got) == 0 {
		t.Error("post-training miss emitted nothing")
	}
}

func TestStrideNegativeStride(t *testing.T) {
	s := NewStride(64)
	got := feedStride(s, 0x40, 0x10000, -32, 6)
	if len(got) == 0 {
		t.Fatal("negative stride not learned")
	}
	last := uint64(0x10000 - 5*32)
	if got[0] >= last {
		t.Errorf("candidate %#x not below %#x for negative stride", got[0], last)
	}
}

func TestStrideNeverPredictsNegativeAddresses(t *testing.T) {
	s := NewStride(64)
	got := feedStride(s, 0x40, 96, -32, 4)
	for _, c := range got {
		if int64(c) < 0 {
			t.Errorf("negative address predicted: %d", int64(c))
		}
	}
}

func TestStridePerPCIsolation(t *testing.T) {
	s := NewStride(64)
	// Two PCs with different strides; both should learn independently.
	for i := 0; i < 6; i++ {
		s.OnAccess(nil, evt(0x40, uint64(0x1000+i*32), true, false))
		s.OnAccess(nil, evt(0x44, uint64(0x9000+i*64), true, false))
	}
	gotA := s.OnAccess(nil, evt(0x40, 0x1000+6*32, true, false))
	gotB := s.OnAccess(nil, evt(0x44, 0x9000+6*64, true, false))
	if len(gotA) == 0 || len(gotB) == 0 {
		t.Fatal("interleaved PCs failed to train")
	}
	if gotA[0] == gotB[0] {
		t.Error("PCs share prediction state")
	}
}

func TestStrideReset(t *testing.T) {
	s := NewStride(64)
	feedStride(s, 0x40, 0x1000, 32, 6)
	s.Reset()
	if got := s.OnAccess(nil, evt(0x40, 0x1000+7*32, true, false)); len(got) != 0 {
		t.Errorf("reset did not clear table: %v", got)
	}
}

func TestStrideTableSizeRounding(t *testing.T) {
	s := NewStride(100)
	if len(s.entries) != 128 {
		t.Errorf("table size = %d, want rounded to 128", len(s.entries))
	}
	s = NewStride(0)
	if len(s.entries) != 16 {
		t.Errorf("minimum table size = %d, want 16", len(s.entries))
	}
}

func TestStrideName(t *testing.T) {
	if NewStride(64).Name() != "stride" {
		t.Error("wrong name")
	}
}
