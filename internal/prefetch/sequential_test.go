package prefetch

import "testing"

func evt(pc, addr uint64, miss, bufHit bool) Event {
	return Event{
		PC:        pc,
		Addr:      addr,
		Block:     addr &^ 15,
		Miss:      miss,
		BufHit:    bufHit,
		BlockSize: 16,
	}
}

func TestSequentialProposesNextBlocksOnMiss(t *testing.T) {
	s := NewSequential()
	got := s.OnAccess(nil, evt(0x100, 0x100, true, false))
	if len(got) != MaxDegree {
		t.Fatalf("candidates = %d, want %d", len(got), MaxDegree)
	}
	for i, c := range got {
		want := uint64(0x100 + 16*(i+1))
		if c != want {
			t.Errorf("candidate %d = %#x, want %#x", i, c, want)
		}
	}
}

func TestSequentialSilentOnHit(t *testing.T) {
	s := NewSequential()
	if got := s.OnAccess(nil, evt(0x100, 0x100, false, false)); len(got) != 0 {
		t.Errorf("hit produced candidates: %v", got)
	}
}

func TestSequentialTriggersOnBufHit(t *testing.T) {
	s := NewSequential()
	got := s.OnAccess(nil, evt(0x100, 0x100, true, true))
	if len(got) == 0 {
		t.Error("buffer hit should continue the stream")
	}
}

func TestSequentialDedupesSameBlock(t *testing.T) {
	s := NewSequential()
	s.OnAccess(nil, evt(0x100, 0x100, true, false))
	// Another miss in the same block (e.g. different word) must not
	// re-trigger.
	if got := s.OnAccess(nil, evt(0x104, 0x104, true, false)); len(got) != 0 {
		t.Errorf("same-block retrigger: %v", got)
	}
	// A different block triggers again.
	if got := s.OnAccess(nil, evt(0x110, 0x110, true, false)); len(got) == 0 {
		t.Error("new block did not trigger")
	}
}

func TestSequentialReset(t *testing.T) {
	s := NewSequential()
	s.OnAccess(nil, evt(0x100, 0x100, true, false))
	s.Reset()
	// After reset the same block triggers again (state was volatile).
	if got := s.OnAccess(nil, evt(0x100, 0x100, true, false)); len(got) == 0 {
		t.Error("reset did not clear last-block state")
	}
}

func TestSequentialAppendsToDst(t *testing.T) {
	s := NewSequential()
	dst := []uint64{0xdead}
	got := s.OnAccess(dst, evt(0x100, 0x100, true, false))
	if got[0] != 0xdead || len(got) != 1+MaxDegree {
		t.Errorf("OnAccess must append to dst: %v", got)
	}
}

func TestSequentialName(t *testing.T) {
	if NewSequential().Name() != "sequential" {
		t.Error("wrong name")
	}
}
