// Package prefetch implements the hardware prefetchers of the NVP and the
// degree-controlled interface IPEX throttles.
//
// A Prefetcher observes the demand-access stream of one cache and, on each
// access, proposes an ordered list of candidate blocks to fetch. The engine
// (internal/nvp) decides how many of those candidates are actually issued:
// the current prefetch degree R_cpd — normally the configured initial degree
// R_ipd, dynamically lowered/raised by IPEX — caps the issue count, and the
// difference between what the prefetcher wanted at its natural degree and
// what was issued is counted as throttled (the statistic IPEX's adaptive
// threshold tuning feeds on).
//
// Six prefetchers are provided, matching the paper's Tables 1, 3 and 4:
//
//	instruction: Sequential (next-line), Markov, TIFS
//	data:        Stride (PC-indexed RPT), GHB (PC/DC), BO (best-offset)
//
// All prefetcher state is volatile hardware: a power failure resets it.
package prefetch

// Event describes one demand access as seen by a prefetcher. Addresses are
// block-aligned; BlockSize is the block size in bytes so prefetchers can
// form neighbouring block addresses.
type Event struct {
	// PC is the program counter of the access (for an instruction fetch it
	// equals the fetched address).
	PC uint64
	// Addr is the raw byte address accessed. Address-correlating
	// prefetchers (stride, GHB) must train on it: block-aligning first
	// quantizes away strides that are not multiples of the block size.
	Addr uint64
	// Block is the block-aligned address accessed.
	Block uint64
	// Miss reports whether the access missed in the cache (before the
	// prefetch buffer was consulted); BufHit whether the prefetch buffer
	// served it.
	Miss   bool
	BufHit bool
	// BlockSize is the cache block size in bytes.
	BlockSize uint64
}

// Prefetcher proposes prefetch candidates from the demand stream.
type Prefetcher interface {
	// Name identifies the prefetcher (e.g. "stride").
	Name() string
	// OnAccess observes one demand access and appends candidate block
	// addresses (best first) to dst, returning the extended slice. The
	// engine truncates the list to the active prefetch degree; prefetchers
	// should propose up to MaxDegree candidates when they have them.
	OnAccess(dst []uint64, ev Event) []uint64
	// Reset clears all volatile state (power failure).
	Reset()
}

// MaxDegree is the architectural cap on the prefetch degree (the paper's
// R_ipd register is 3 bits; IPEX allows a maximal degree of 4).
const MaxDegree = 4

// AddressGenCoster is implemented by prefetchers whose address generation
// involves an energy-consuming table lookup (§5.2 of the paper: Markov's
// correlation table, TIFS's miss log, GHB's history buffer, …). The
// simulator charges the returned energy (nJ) per triggering access, and
// IPEX's energy-saving mode can gate the whole lookup when the degree is
// throttled to zero. Prefetchers without this method (sequential, stride)
// generate addresses from a couple of registers and are treated as free.
type AddressGenCoster interface {
	AddressGenNJ() float64
}

// HitIndifferent is implemented by prefetchers whose OnAccess is a no-op —
// no training, no candidates — when the event is neither a miss nor a
// prefetch-buffer hit. The simulator may then skip the call entirely on
// plain demand hits, which dominate the instruction stream. Prefetchers
// that train on every access (stride's RPT, AMPM's map) must NOT implement
// this.
type HitIndifferent interface {
	HitIndifferent() bool
}
