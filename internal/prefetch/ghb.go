package prefetch

// GHB implements Global History Buffer prefetching (Nesbit & Smith,
// HPCA'04) in its PC/DC (delta-correlation) flavour, evaluated by the paper
// as a data prefetcher (Table 4). Cache misses enter a circular global
// history buffer; an index table links the misses of each PC into a chain.
// On a miss, the prefetcher walks the PC's chain to extract the recent
// delta stream, looks for the most recent earlier occurrence of the last
// delta pair, and replays the deltas that followed it.
type GHB struct {
	buf   []ghbNode
	head  int
	count int // total insertions (monotonic)
	it    []ghbIndexEntry
	mask  uint64
}

type ghbNode struct {
	addr uint64
	prev int // absolute insertion number of previous miss by same PC, -1 none
	seq  int // absolute insertion number of this node
}

type ghbIndexEntry struct {
	pc    uint64
	last  int // absolute insertion number of the PC's most recent miss
	valid bool
}

// ghbChainMax bounds how much of a PC's delta history is reconstructed.
const ghbChainMax = 16

// NewGHB returns a GHB prefetcher with a history buffer of n entries
// (rounded up to a power of two, minimum 128) and an index table of n/4.
func NewGHB(n int) *GHB {
	size := 128
	for size < n {
		size <<= 1
	}
	its := size / 4
	return &GHB{
		buf:  make([]ghbNode, size),
		it:   make([]ghbIndexEntry, its),
		mask: uint64(its - 1),
	}
}

// Name implements Prefetcher.
func (g *GHB) Name() string { return "ghb" }

func (g *GHB) itEntry(pc uint64) *ghbIndexEntry {
	return &g.it[(pc>>2)&g.mask]
}

// node returns the buffer node with absolute insertion number seq, or nil
// if it has been overwritten.
func (g *GHB) node(seq int) *ghbNode {
	if seq < 0 || seq <= g.count-len(g.buf)-1 || seq >= g.count {
		return nil
	}
	n := &g.buf[seq%len(g.buf)]
	if n.seq != seq {
		return nil
	}
	return n
}

// OnAccess implements Prefetcher. Only misses (including prefetch-buffer
// hits, which are misses of the cache proper) train the GHB, as in the
// original design's L2-miss stream.
func (g *GHB) OnAccess(dst []uint64, ev Event) []uint64 {
	if !ev.Miss && !ev.BufHit {
		return dst
	}
	// Insert the miss.
	e := g.itEntry(ev.PC)
	prev := -1
	if e.valid && e.pc == ev.PC {
		prev = e.last
	}
	seq := g.count
	g.buf[g.head] = ghbNode{addr: ev.Addr, prev: prev, seq: seq}
	g.head = (g.head + 1) % len(g.buf)
	g.count++
	*e = ghbIndexEntry{pc: ev.PC, last: seq, valid: true}

	// Reconstruct the PC's recent address chain (most recent first).
	var chain [ghbChainMax]uint64
	n := 0
	for s := seq; n < ghbChainMax; {
		nd := g.node(s)
		if nd == nil {
			break
		}
		chain[n] = nd.addr
		n++
		s = nd.prev
	}
	if n < 4 {
		return dst
	}
	// Delta stream, oldest first: d[i] = a[i+1] - a[i].
	var deltas [ghbChainMax - 1]int64
	nd := 0
	for i := n - 1; i > 0; i-- {
		deltas[nd] = int64(chain[i-1]) - int64(chain[i])
		nd++
	}
	// Correlate on the last delta pair.
	l1, l2 := deltas[nd-2], deltas[nd-1]
	for i := nd - 3; i >= 1; i-- {
		if deltas[i-1] == l1 && deltas[i] == l2 {
			// Replay deltas that followed the match.
			addr := int64(ev.Addr)
			emitted := 0
			for j := i + 1; j < nd && emitted < MaxDegree; j++ {
				addr += deltas[j]
				if addr < 0 {
					break
				}
				dst = append(dst, uint64(addr))
				emitted++
			}
			// Wrap the replay around the delta window if short.
			for j := 1; j < nd && emitted < MaxDegree; j++ {
				addr += deltas[j]
				if addr < 0 {
					break
				}
				dst = append(dst, uint64(addr))
				emitted++
			}
			return dst
		}
	}
	// No correlation found: fall back to repeating the last delta (the
	// constant-stride case PC/CS would catch).
	if l2 != 0 && l1 == l2 {
		addr := int64(ev.Addr)
		for k := 0; k < MaxDegree; k++ {
			addr += l2
			if addr < 0 {
				break
			}
			dst = append(dst, uint64(addr))
		}
	}
	return dst
}

// AddressGenNJ implements prefetch address-generation costing (§5.2):
// an index-table probe plus a history-chain walk.
func (g *GHB) AddressGenNJ() float64 { return 0.006 }

// Reset implements Prefetcher.
func (g *GHB) Reset() {
	for i := range g.buf {
		g.buf[i] = ghbNode{}
	}
	for i := range g.it {
		g.it[i] = ghbIndexEntry{}
	}
	g.head = 0
	g.count = 0
}
