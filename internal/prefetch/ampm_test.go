package prefetch

import "testing"

// feedAMPM replays a block-address miss stream.
func feedAMPM(a *AMPM, blocks []uint64) []uint64 {
	var got []uint64
	for _, b := range blocks {
		got = a.OnAccess(nil, Event{PC: 0x40, Addr: b, Block: b &^ 15, Miss: true, BlockSize: 16})
	}
	return got
}

func TestAMPMForwardSweep(t *testing.T) {
	a := NewAMPM(32)
	got := feedAMPM(a, []uint64{0x1000, 0x1010, 0x1020})
	if len(got) == 0 {
		t.Fatal("forward sweep not detected")
	}
	if got[0] != 0x1030 {
		t.Errorf("first candidate = %#x, want 0x1030", got[0])
	}
}

func TestAMPMBackwardSweep(t *testing.T) {
	a := NewAMPM(32)
	got := feedAMPM(a, []uint64{0x1040, 0x1030, 0x1020})
	if len(got) == 0 {
		t.Fatal("backward sweep not detected")
	}
	found := false
	for _, c := range got {
		if c == 0x1010 {
			found = true
		}
	}
	if !found {
		t.Errorf("backward candidate missing: %#x", got)
	}
}

func TestAMPMStridedSweep(t *testing.T) {
	a := NewAMPM(32)
	// Stride of 2 blocks (32 B).
	got := feedAMPM(a, []uint64{0x1000, 0x1020, 0x1040})
	want := uint64(0x1060)
	found := false
	for _, c := range got {
		if c == want {
			found = true
		}
	}
	if !found {
		t.Errorf("stride-2 candidate %#x missing from %#x", want, got)
	}
}

func TestAMPMNoPatternStaysSilent(t *testing.T) {
	a := NewAMPM(32)
	got := feedAMPM(a, []uint64{0x1000, 0x5430, 0x2980})
	if len(got) != 0 {
		t.Errorf("random accesses produced candidates: %#x", got)
	}
}

func TestAMPMSkipsAlreadyAccessed(t *testing.T) {
	a := NewAMPM(32)
	// Sweep up, then revisit the middle: the +1/+2 blocks are already in
	// the map and must not be re-proposed.
	feedAMPM(a, []uint64{0x1000, 0x1010, 0x1020, 0x1030, 0x1040})
	got := feedAMPM(a, []uint64{0x1020})
	for _, c := range got {
		if c == 0x1030 || c == 0x1040 {
			t.Errorf("re-proposed already-mapped block %#x", c)
		}
	}
}

func TestAMPMCrossesZoneBoundary(t *testing.T) {
	a := NewAMPM(32)
	// Zone size is 64 blocks = 1 kB; sweep across 0x1400 (a 1 kB boundary).
	got := feedAMPM(a, []uint64{0x13d0, 0x13e0, 0x13f0})
	if len(got) == 0 {
		t.Fatal("sweep near boundary not detected")
	}
	if got[0] != 0x1400 {
		t.Errorf("cross-zone candidate = %#x, want 0x1400", got[0])
	}
}

func TestAMPMHitsTrainSilently(t *testing.T) {
	a := NewAMPM(32)
	var got []uint64
	for _, b := range []uint64{0x1000, 0x1010, 0x1020} {
		got = a.OnAccess(nil, Event{PC: 0x40, Addr: b, Block: b, Miss: false, BlockSize: 16})
	}
	if len(got) != 0 {
		t.Errorf("hits emitted candidates: %#x", got)
	}
	// But the map was trained: the next miss fires immediately.
	got = feedAMPM(a, []uint64{0x1030})
	if len(got) == 0 {
		t.Error("hit-trained map did not fire on miss")
	}
}

func TestAMPMZoneEviction(t *testing.T) {
	a := NewAMPM(8)
	// Touch 20 distinct zones; the table holds 8 and must recycle without
	// losing consistency.
	for i := uint64(0); i < 20; i++ {
		feedAMPM(a, []uint64{0x1000 + i*1024})
	}
	if len(a.index) > 8 {
		t.Errorf("index grew past capacity: %d", len(a.index))
	}
	// The most recent zones must still work.
	got := feedAMPM(a, []uint64{0x1000 + 19*1024 + 16, 0x1000 + 19*1024 + 32})
	if len(got) == 0 {
		t.Error("recent zone lost after eviction churn")
	}
}

func TestAMPMDegreeCap(t *testing.T) {
	a := NewAMPM(32)
	// Dense map triggers multiple offsets; output stays capped.
	got := feedAMPM(a, []uint64{0x1000, 0x1010, 0x1020, 0x1030, 0x1040, 0x1050, 0x1020})
	if len(got) > MaxDegree {
		t.Errorf("emitted %d > MaxDegree", len(got))
	}
}

func TestAMPMReset(t *testing.T) {
	a := NewAMPM(32)
	feedAMPM(a, []uint64{0x1000, 0x1010, 0x1020})
	a.Reset()
	if got := feedAMPM(a, []uint64{0x1030}); len(got) != 0 {
		t.Errorf("reset did not clear zones: %#x", got)
	}
}

func TestAMPMRegistry(t *testing.T) {
	pf, err := New(KindAMPM)
	if err != nil || pf == nil || pf.Name() != "ampm" {
		t.Fatalf("registry: %v, %v", pf, err)
	}
}
