package prefetch

// Sequential is the classic next-line instruction prefetcher (IBM
// System/360 Model 91 lineage): when the fetch stream enters a new block,
// it proposes the following MaxDegree sequential blocks. It is the paper's
// default instruction prefetcher.
type Sequential struct {
	lastBlock uint64
	haveLast  bool
}

// NewSequential returns a sequential (next-line) prefetcher.
func NewSequential() *Sequential { return &Sequential{} }

// Name implements Prefetcher.
func (s *Sequential) Name() string { return "sequential" }

// OnAccess implements Prefetcher. The prefetcher is tagged: it triggers on
// a demand miss and on the first use of a prefetched block (the buffer
// hit), proposing the next sequential blocks. Miss/tag triggering keeps a
// stream running ahead of the fetch unit without spraying prefetches while
// a cache-resident loop is hitting.
func (s *Sequential) OnAccess(dst []uint64, ev Event) []uint64 {
	if !ev.Miss && !ev.BufHit {
		return dst
	}
	if s.haveLast && s.lastBlock == ev.Block {
		return dst
	}
	s.lastBlock = ev.Block
	s.haveLast = true
	for i := uint64(1); i <= MaxDegree; i++ {
		dst = append(dst, ev.Block+i*ev.BlockSize)
	}
	return dst
}

// HitIndifferent implements the engine's hit-skip contract: OnAccess
// returns immediately for events that are neither misses nor buffer hits.
func (s *Sequential) HitIndifferent() bool { return true }

// Reset implements Prefetcher.
func (s *Sequential) Reset() {
	s.lastBlock = 0
	s.haveLast = false
}
