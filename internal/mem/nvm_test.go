package mem

import (
	"testing"

	"ipex/internal/energy"
)

func defaultNVM() *NVM {
	return New(energy.NVMFor(energy.ReRAM, 16<<20))
}

func TestReadReturnsParams(t *testing.T) {
	m := defaultNVM()
	cycles, nj := m.Read(DemandRead)
	if cycles != m.Params().ReadCycles || nj != m.Params().ReadNJ {
		t.Errorf("Read returned (%d, %v), want (%d, %v)",
			cycles, nj, m.Params().ReadCycles, m.Params().ReadNJ)
	}
}

func TestWriteReturnsParams(t *testing.T) {
	m := defaultNVM()
	cycles, nj := m.Write(WritebackWrite)
	if cycles != m.Params().WriteCycles || nj != m.Params().WriteNJ {
		t.Errorf("Write returned (%d, %v)", cycles, nj)
	}
}

func TestStatsClassification(t *testing.T) {
	m := defaultNVM()
	m.Read(DemandRead)
	m.Read(DemandRead)
	m.Read(PrefetchRead)
	m.Read(RestoreRead)
	m.Write(WritebackWrite)
	m.Write(CheckpointWrite)
	m.Write(CheckpointWrite)

	s := m.Stats()
	if s.DemandReads != 2 || s.PrefetchReads != 1 || s.RestoreReads != 1 {
		t.Errorf("read stats wrong: %+v", s)
	}
	if s.WritebackWrites != 1 || s.CheckpointWrites != 2 {
		t.Errorf("write stats wrong: %+v", s)
	}
	if s.TotalAccesses() != 7 {
		t.Errorf("TotalAccesses = %d, want 7", s.TotalAccesses())
	}
	// Traffic (Fig. 13's metric) excludes checkpoint/restore.
	if s.TrafficAccesses() != 4 {
		t.Errorf("TrafficAccesses = %d, want 4", s.TrafficAccesses())
	}
}

func TestUnknownKindsDefaultSafely(t *testing.T) {
	m := defaultNVM()
	m.Read(AccessKind(99))
	m.Write(AccessKind(99))
	s := m.Stats()
	if s.DemandReads != 1 || s.WritebackWrites != 1 {
		t.Errorf("unknown kinds misclassified: %+v", s)
	}
}

func TestLeakPerCycle(t *testing.T) {
	m := defaultNVM()
	want := energy.LeakNJPerCycle(m.Params().LeakMW)
	if got := m.LeakNJPerCycle(); got != want {
		t.Errorf("LeakNJPerCycle = %v, want %v", got, want)
	}
}

func TestTechnologiesDiffer(t *testing.T) {
	re := New(energy.NVMFor(energy.ReRAM, 16<<20))
	pcm := New(energy.NVMFor(energy.PCM, 16<<20))
	rc, _ := re.Read(DemandRead)
	pc, _ := pcm.Read(DemandRead)
	if pc <= rc {
		t.Errorf("PCM read (%d) should be slower than ReRAM (%d)", pc, rc)
	}
}
