// Package mem models the on-chip nonvolatile main memory (NVM) of the NVP:
// a single bank reached over a short, ultra-low-power bus, with per-block
// access latency/energy taken from the technology tables in internal/energy.
//
// The NVM is the persistence root of the system: it survives power failure,
// so JIT checkpoints write into it and program state restores read from it.
package mem

import "ipex/internal/energy"

// AccessKind distinguishes the traffic classes the statistics track.
type AccessKind int

const (
	// DemandRead is a cache-miss fill read.
	DemandRead AccessKind = iota
	// PrefetchRead is a prefetcher-issued block read.
	PrefetchRead
	// WritebackWrite is a dirty-block eviction write.
	WritebackWrite
	// CheckpointWrite is a JIT-backup write of a dirty block or registers.
	CheckpointWrite
	// RestoreRead is a reboot-time read of checkpointed state.
	RestoreRead
)

// Stats counts NVM traffic in block-sized accesses.
type Stats struct {
	DemandReads      uint64
	PrefetchReads    uint64
	WritebackWrites  uint64
	CheckpointWrites uint64
	RestoreReads     uint64
}

// TotalAccesses returns all block accesses regardless of class.
func (s Stats) TotalAccesses() uint64 {
	return s.DemandReads + s.PrefetchReads + s.WritebackWrites + s.CheckpointWrites + s.RestoreReads
}

// TrafficAccesses returns the main-memory traffic the paper's Figure 13
// reports: demand + prefetch reads + writebacks (checkpoint traffic is
// reported separately as Bk+Rst).
func (s Stats) TrafficAccesses() uint64 {
	return s.DemandReads + s.PrefetchReads + s.WritebackWrites
}

// NVM is one nonvolatile main-memory instance.
type NVM struct {
	params energy.NVMParams
	stats  Stats
}

// New returns an NVM with the given parameters.
func New(params energy.NVMParams) *NVM {
	return &NVM{params: params}
}

// Params returns the technology parameters in use.
func (m *NVM) Params() energy.NVMParams { return m.params }

// Stats returns a copy of the traffic counters.
func (m *NVM) Stats() Stats { return m.stats }

// Read performs one block read of the given kind and returns its latency in
// cycles and energy in nJ.
func (m *NVM) Read(kind AccessKind) (cycles uint64, nj energy.NJ) {
	switch kind {
	case DemandRead:
		m.stats.DemandReads++
	case PrefetchRead:
		m.stats.PrefetchReads++
	case RestoreRead:
		m.stats.RestoreReads++
	default:
		m.stats.DemandReads++
	}
	return m.params.ReadCycles, m.params.ReadNJ
}

// Write performs one block write of the given kind and returns its latency
// in cycles and energy in nJ.
func (m *NVM) Write(kind AccessKind) (cycles uint64, nj energy.NJ) {
	switch kind {
	case WritebackWrite:
		m.stats.WritebackWrites++
	case CheckpointWrite:
		m.stats.CheckpointWrites++
	default:
		m.stats.WritebackWrites++
	}
	return m.params.WriteCycles, m.params.WriteNJ
}

// ReadDemand is Read(DemandRead) without the kind dispatch — small enough
// to inline into the simulator's specialized miss paths.
func (m *NVM) ReadDemand() (cycles uint64, nj energy.NJ) {
	m.stats.DemandReads++
	return m.params.ReadCycles, m.params.ReadNJ
}

// ReadPrefetch is Read(PrefetchRead) without the kind dispatch (inlinable).
func (m *NVM) ReadPrefetch() (cycles uint64, nj energy.NJ) {
	m.stats.PrefetchReads++
	return m.params.ReadCycles, m.params.ReadNJ
}

// WriteWriteback is Write(WritebackWrite) without the kind dispatch
// (inlinable).
func (m *NVM) WriteWriteback() (cycles uint64, nj energy.NJ) {
	m.stats.WritebackWrites++
	return m.params.WriteCycles, m.params.WriteNJ
}

// Reset clears the traffic counters and switches to the given parameters,
// restoring the just-constructed state in place; the run arena recycles one
// NVM instance across runs with it (the parameters are plain values, so a
// technology change needs no reallocation).
func (m *NVM) Reset(params energy.NVMParams) {
	m.params = params
	m.stats = Stats{}
}

// LeakNJPerCycle returns the array's leakage energy per CPU cycle.
func (m *NVM) LeakNJPerCycle() energy.NJ {
	return energy.LeakNJPerCycle(m.params.LeakMW)
}
