package stats

import (
	"strings"
	"testing"
)

func TestTableRendersHeaderAndRows(t *testing.T) {
	var tb Table
	tb.Header("app", "speedup")
	tb.Row("fft", "1.09")
	tb.Row("gsme", "1.23")
	out := tb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines (header, rule, 2 rows), got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "app") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "fft") || !strings.Contains(lines[2], "1.09") {
		t.Errorf("row line = %q", lines[2])
	}
}

func TestTableColumnAlignment(t *testing.T) {
	var tb Table
	tb.Header("a", "b")
	tb.Row("longer-cell", "x")
	tb.Row("s", "y")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	// Second column should start at the same offset in both data rows.
	x := strings.Index(lines[2], "x")
	y := strings.Index(lines[3], "y")
	if x != y {
		t.Errorf("column 2 misaligned: %d vs %d\n%s", x, y, tb.String())
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	var tb Table
	tb.Header("a", "b", "c")
	tb.Row("1")                // short row: padded
	tb.Row("1", "2", "3", "4") // long row: extra cell still rendered
	out := tb.String()
	if !strings.Contains(out, "4") {
		t.Errorf("extra cell dropped:\n%s", out)
	}
}

func TestTableRowf(t *testing.T) {
	var tb Table
	tb.Header("app", "v")
	tb.Rowf("fft\t%.2f", 1.2345)
	if !strings.Contains(tb.String(), "1.23") {
		t.Errorf("Rowf formatting lost:\n%s", tb.String())
	}
}

func TestTableNoHeader(t *testing.T) {
	var tb Table
	tb.Row("only", "rows")
	out := tb.String()
	if strings.Contains(out, "---") {
		t.Errorf("rule rendered without header:\n%s", out)
	}
	if !strings.Contains(out, "only") {
		t.Errorf("row missing:\n%s", out)
	}
}
