package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-12 || math.Abs(a-b) < 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); !almostEqual(got, 4) {
		t.Errorf("Geomean(2,8) = %v, want 4", got)
	}
	if got := Geomean([]float64{1, 1, 1}); !almostEqual(got, 1) {
		t.Errorf("Geomean(1,1,1) = %v, want 1", got)
	}
	if got := Geomean(nil); got != 0 {
		t.Errorf("Geomean(nil) = %v, want 0", got)
	}
	if got := Geomean([]float64{-1, 2}); !math.IsNaN(got) {
		t.Errorf("Geomean with negative input = %v, want NaN", got)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-6 && x < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty slice should be 0")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 2); !almostEqual(got, 0.5) {
		t.Errorf("Ratio(1,2) = %v", got)
	}
	if got := Ratio(1, 0); got != 0 {
		t.Errorf("Ratio(1,0) = %v, want 0", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.0786); got != "7.86%" {
		t.Errorf("Pct(0.0786) = %q", got)
	}
	if got := Pct(1); got != "100.00%" {
		t.Errorf("Pct(1) = %q", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); !almostEqual(got, 2) {
		t.Errorf("Speedup(200,100) = %v, want 2", got)
	}
	if got := Speedup(100, 0); got != 0 {
		t.Errorf("Speedup with zero variant time = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); !almostEqual(got, 2.5) {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v, want 0", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}
