package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram. The bucket boundaries are frozen at
// construction, so two histograms fed the same values — in any order — render
// byte-identical output; the offline trace analyzer depends on that for its
// golden-fixture tests. Bucket i covers [Bounds[i], Bounds[i+1]); values below
// Bounds[0] land in an underflow bucket, values at or above the last bound in
// an overflow bucket.
type Histogram struct {
	// Bounds are the ascending bucket boundaries (len >= 2).
	Bounds []float64
	// Counts has len(Bounds)+1 entries: Counts[0] is underflow,
	// Counts[i] for 1 <= i < len(Bounds) is bucket [Bounds[i-1], Bounds[i]),
	// and Counts[len(Bounds)] is overflow.
	Counts []uint64
	// N, Sum, MinV, MaxV summarize every added value (including those in
	// the under/overflow buckets).
	N    uint64
	Sum  float64
	MinV float64
	MaxV float64
}

// NewHistogram builds a histogram over the given ascending bounds. It panics
// on fewer than two bounds or a non-ascending sequence: bucket layout is a
// programming decision, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) < 2 {
		panic("stats: histogram needs at least two bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]uint64, len(bounds)+1),
	}
}

// LinearBounds returns n+1 evenly spaced bounds covering [lo, hi], i.e. n
// equal-width buckets. It panics when n < 1 or hi <= lo.
func LinearBounds(lo, hi float64, n int) []float64 {
	if n < 1 || !(hi > lo) {
		panic("stats: LinearBounds needs n >= 1 and hi > lo")
	}
	out := make([]float64, n+1)
	step := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		out[i] = lo + float64(i)*step
	}
	out[n] = hi // exact upper bound regardless of rounding
	return out
}

// ExpBounds returns bounds lo, lo*f, lo*f², … up to the first bound >= hi —
// geometric buckets for heavy-tailed quantities such as issue-to-use
// latencies. It panics when lo <= 0, f <= 1, or hi <= lo.
func ExpBounds(lo, hi, f float64) []float64 {
	if !(lo > 0) || !(f > 1) || !(hi > lo) {
		panic("stats: ExpBounds needs lo > 0, f > 1, hi > lo")
	}
	out := []float64{lo}
	for b := lo; b < hi; {
		b *= f
		out = append(out, b)
	}
	return out
}

// Add records one value. NaN values are dropped (a NaN would poison Sum and
// compare false against every bound).
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if h.N == 0 || x < h.MinV {
		h.MinV = x
	}
	if h.N == 0 || x > h.MaxV {
		h.MaxV = x
	}
	h.N++
	h.Sum += x
	switch {
	case x < h.Bounds[0]:
		h.Counts[0]++
	case x >= h.Bounds[len(h.Bounds)-1]:
		h.Counts[len(h.Counts)-1]++
	default:
		// Binary search for the bucket with Bounds[i] <= x < Bounds[i+1].
		lo, hi := 0, len(h.Bounds)-1
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if x >= h.Bounds[mid] {
				lo = mid
			} else {
				hi = mid
			}
		}
		h.Counts[lo+1]++
	}
}

// Mean returns Sum/N, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// String renders the histogram as an ASCII table: one row per non-empty
// bucket with a proportional bar, plus a summary line. Output depends only on
// the bucket layout and counts, never on insertion order.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f min=%.1f max=%.1f\n", h.N, h.Mean(), h.MinV, h.MaxV)
	if h.N == 0 {
		return b.String()
	}
	var peak uint64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	const barWidth = 40
	row := func(label string, c uint64) {
		if c == 0 {
			return
		}
		bar := int(math.Round(float64(c) / float64(peak) * barWidth))
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  %-22s %8d %s\n", label, c, strings.Repeat("#", bar))
	}
	row(fmt.Sprintf("< %g", h.Bounds[0]), h.Counts[0])
	for i := 1; i < len(h.Counts)-1; i++ {
		row(fmt.Sprintf("[%g, %g)", h.Bounds[i-1], h.Bounds[i]), h.Counts[i])
	}
	row(fmt.Sprintf(">= %g", h.Bounds[len(h.Bounds)-1]), h.Counts[len(h.Counts)-1])
	return b.String()
}
