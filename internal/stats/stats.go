// Package stats provides small numeric helpers shared by the simulator and
// the experiment harness: means, geometric means, ratios, and percentage
// formatting that matches the way the IPEX paper reports its results.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Geomean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries are invalid for a geometric mean; they yield NaN so
// the error is visible rather than silently absorbed.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Ratio returns num/den, or 0 when den == 0. Cache miss rates, throttling
// rates, and normalized energies all use it so a zero denominator (e.g. an
// app that never prefetches) reads as 0 rather than NaN.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Pct formats a fraction as a percentage with two decimals, e.g. 0.0786 ->
// "7.86%".
func Pct(frac float64) string {
	return fmt.Sprintf("%.2f%%", frac*100)
}

// Speedup returns baseline/variant: how many times faster the variant
// completed than the baseline, given their total execution times.
func Speedup(baselineTime, variantTime float64) float64 {
	return Ratio(baselineTime, variantTime)
}

// Median returns the median of xs (average of the two central elements for
// even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
