package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLinearBounds(t *testing.T) {
	b := LinearBounds(0, 10, 5)
	want := []float64{0, 2, 4, 6, 8, 10}
	if len(b) != len(want) {
		t.Fatalf("LinearBounds = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("LinearBounds = %v, want %v", b, want)
		}
	}
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(1, 100, 10)
	want := []float64{1, 10, 100}
	if len(b) != len(want) {
		t.Fatalf("ExpBounds = %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBounds = %v, want %v", b, want)
		}
	}
	// The last bound always reaches hi.
	b = ExpBounds(1, 50, 10)
	if b[len(b)-1] < 50 {
		t.Errorf("ExpBounds(1, 50, 10) last bound %g < 50", b[len(b)-1])
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{0, 10, 20, 30})
	for _, x := range []float64{-5, 0, 9.99, 10, 15, 25, 30, 100} {
		h.Add(x)
	}
	wantCounts := []uint64{1, 2, 2, 1, 2} // under, [0,10), [10,20), [20,30), over
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.N != 8 {
		t.Errorf("N = %d, want 8", h.N)
	}
	if h.MinV != -5 || h.MaxV != 100 {
		t.Errorf("min/max = %g/%g, want -5/100", h.MinV, h.MaxV)
	}
	if got := h.Mean(); math.Abs(got-(-5+0+9.99+10+15+25+30+100)/8) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	h := NewHistogram([]float64{0, 1})
	h.Add(math.NaN())
	if h.N != 0 {
		t.Error("NaN was counted")
	}
}

func TestHistogramOrderIndependentRender(t *testing.T) {
	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	a := NewHistogram(LinearBounds(0, 10, 10))
	bh := NewHistogram(LinearBounds(0, 10, 10))
	for _, v := range vals {
		a.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		bh.Add(vals[i])
	}
	if a.String() != bh.String() {
		t.Errorf("render depends on insertion order:\n%s\nvs\n%s", a, bh)
	}
	if !strings.Contains(a.String(), "n=11") {
		t.Errorf("summary line missing: %s", a)
	}
	// Empty buckets are omitted; a populated one is present with a bar.
	if !strings.Contains(a.String(), "[5, 6)") || !strings.Contains(a.String(), "#") {
		t.Errorf("bucket rows malformed:\n%s", a)
	}
}

func TestHistogramEmptyRender(t *testing.T) {
	h := NewHistogram([]float64{0, 1})
	if got := h.String(); !strings.HasPrefix(got, "n=0") || strings.Contains(got, "#") {
		t.Errorf("empty render = %q", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"one bound":     func() { NewHistogram([]float64{1}) },
		"descending":    func() { NewHistogram([]float64{2, 1}) },
		"equal":         func() { NewHistogram([]float64{1, 1}) },
		"linear n=0":    func() { LinearBounds(0, 1, 0) },
		"linear lo>=hi": func() { LinearBounds(1, 1, 4) },
		"exp lo<=0":     func() { ExpBounds(0, 10, 2) },
		"exp factor<=1": func() { ExpBounds(1, 10, 1) },
		"exp hi<=lo":    func() { ExpBounds(10, 10, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
