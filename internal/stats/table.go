package stats

import (
	"fmt"
	"strings"
)

// Table renders fixed-width text tables in the style the experiment harness
// uses to print paper figures and tables. Columns are sized to their widest
// cell; the first row added with Header is separated by a rule.
type Table struct {
	header []string
	rows   [][]string
}

// Header sets the column titles.
func (t *Table) Header(cols ...string) {
	t.header = cols
}

// Row appends a data row. Cells beyond the header width are still rendered;
// short rows are padded with empty cells.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rowf appends a row built from Sprintf-formatted values.
func (t *Table) Rowf(format string, args ...any) {
	t.rows = append(t.rows, strings.Split(fmt.Sprintf(format, args...), "\t"))
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
		b.WriteString("\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
