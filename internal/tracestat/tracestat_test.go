package tracestat

import (
	"flag"
	"os"
	"strings"
	"testing"

	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/trace"
	"ipex/internal/workload"
)

var update = flag.Bool("update", false, "rewrite testdata golden files from current behaviour")

// capture runs the simulator with a tracer attached and returns the Result
// alongside the raw JSONL stream.
func capture(t *testing.T, app string, scale float64, mut func(*nvp.Config)) (nvp.Result, string) {
	t.Helper()
	cfg := nvp.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	var sb strings.Builder
	cfg.Tracer = trace.NewJSONL(&sb)
	tr := power.Generate(power.RFHome, 20000, 1)
	r, err := nvp.Run(workload.MustNew(app, scale), tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	return r, sb.String()
}

// TestAnalyzeMatchesResult is the analyzer's exactness contract: every count
// it reconstructs from the event stream alone must equal the simulator's
// end-of-run aggregates — most importantly the wiped-prefetch counts per
// location, the paper's headline waste statistic.
func TestAnalyzeMatchesResult(t *testing.T) {
	for _, tc := range []struct {
		name string
		app  string
		mut  func(*nvp.Config)
	}{
		{"conventional", "gsme", nil},
		{"ipex", "fft", func(c *nvp.Config) { *c = c.WithIPEX() }},
		{"buffer", "qsort", func(c *nvp.Config) { *c = c.WithIPEX(); c.PrefetchToCache = false }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, stream := capture(t, tc.app, 0.1, tc.mut)
			if r.Outages == 0 {
				t.Fatal("run saw no outages; nothing to reconstruct")
			}
			rep, err := Analyze(strings.NewReader(stream), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Runs) != 1 {
				t.Fatalf("reconstructed %d runs, want 1", len(rep.Runs))
			}
			run := rep.Runs[0]
			if run.Name != tc.app || run.EndDetail != "completed" {
				t.Errorf("run header = %s/%s, want %s/completed", run.Name, run.EndDetail, tc.app)
			}
			if run.Insts != r.Insts {
				t.Errorf("insts = %d, want %d", run.Insts, r.Insts)
			}
			if got := run.Outages(); got != r.Outages {
				t.Errorf("outages = %d, want %d", got, r.Outages)
			}
			if got := uint64(len(run.Cycles)); got != r.Outages+1 {
				t.Errorf("power cycles = %d, want %d", got, r.Outages+1)
			}

			type sideWant struct {
				name string
				got  SideTally
				want nvp.SideStats
			}
			for _, s := range []sideWant{
				{"icache", run.Inst, r.Inst},
				{"dcache", run.Data, r.Data},
			} {
				if s.got.WipedCache != s.want.Cache.PrefetchedWiped {
					t.Errorf("%s wiped(cache) = %d, want %d", s.name, s.got.WipedCache, s.want.Cache.PrefetchedWiped)
				}
				if s.got.WipedBuffer != s.want.Buffer.WipedUnused {
					t.Errorf("%s wiped(buffer) = %d, want %d", s.name, s.got.WipedBuffer, s.want.Buffer.WipedUnused)
				}
				if s.got.WipedInflight != s.want.InflightWiped {
					t.Errorf("%s wiped(inflight) = %d, want %d", s.name, s.got.WipedInflight, s.want.InflightWiped)
				}
				if s.got.Issued != s.want.PrefetchIssued {
					t.Errorf("%s issued = %d, want %d", s.name, s.got.Issued, s.want.PrefetchIssued)
				}
				if s.got.Reissued != s.want.PrefetchReissued {
					t.Errorf("%s reissued = %d, want %d", s.name, s.got.Reissued, s.want.PrefetchReissued)
				}
				if s.got.Throttle != s.want.PrefetchThrottled {
					t.Errorf("%s throttled = %d, want %d", s.name, s.got.Throttle, s.want.PrefetchThrottled)
				}
				if s.got.Accesses != s.want.Cache.Accesses || s.got.Misses != s.want.Cache.Misses {
					t.Errorf("%s demand stream = %d/%d, want %d/%d",
						s.name, s.got.Accesses, s.got.Misses, s.want.Cache.Accesses, s.want.Cache.Misses)
				}
			}

			// Per-cycle decompositions re-sum to the run totals.
			var insts, wiped, issued, imiss, dmiss uint64
			for _, c := range run.Cycles {
				insts += c.Insts
				wiped += c.Wiped
				issued += c.Issued
				imiss += c.IMisses
				dmiss += c.DMisses
			}
			if insts != r.Insts {
				t.Errorf("per-cycle insts sum to %d, want %d", insts, r.Insts)
			}
			if wiped != run.Wiped() {
				t.Errorf("per-cycle wipes sum to %d, want %d", wiped, run.Wiped())
			}
			if issued != r.PrefetchesIssued() {
				t.Errorf("per-cycle issues sum to %d, want %d", issued, r.PrefetchesIssued())
			}
			if imiss != r.Inst.Cache.Misses || dmiss != r.Data.Cache.Misses {
				t.Errorf("per-cycle misses sum to %d/%d, want %d/%d",
					imiss, dmiss, r.Inst.Cache.Misses, r.Data.Cache.Misses)
			}
			if run.Cycles[len(run.Cycles)-1].Final != true {
				t.Error("last cycle not marked final")
			}
		})
	}
}

// TestTimelinessPopulated checks the issue-to-first-use histogram sees every
// first use that had a recorded issue.
func TestTimelinessPopulated(t *testing.T) {
	_, stream := capture(t, "gsme", 0.1, nil)
	rep, err := Analyze(strings.NewReader(stream), Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := rep.Runs[0]
	if run.Inst.FirstUses()+run.Data.FirstUses() == 0 {
		t.Fatal("no first uses in trace")
	}
	if run.Timeliness.N != run.Inst.FirstUses()+run.Data.FirstUses() {
		t.Errorf("timeliness samples = %d, want one per first use (%d)",
			run.Timeliness.N, run.Inst.FirstUses()+run.Data.FirstUses())
	}
	if run.Timeliness.MinV < 0 {
		t.Errorf("negative issue-to-use latency %g", run.Timeliness.MinV)
	}
}

// TestMultiRunStreamWithMarks reconstructs a stream the experiment harness
// shape: mark, run, run, mark, run.
func TestMultiRunStreamWithMarks(t *testing.T) {
	var sb strings.Builder
	tr := trace.NewJSONL(&sb)
	tr.Emit(trace.Event{Kind: trace.KindMark, Detail: "fig10"})
	emitRun := func(name string) {
		tr.Begin(name, func() (uint64, uint64) { return 0, 0 })
		tr.Emit(trace.Event{Kind: trace.KindCycleStart})
		tr.Emit(trace.Event{Kind: trace.KindRunEnd, N: 7, Detail: "completed"})
	}
	emitRun("fft")
	emitRun("gsme")
	tr.Emit(trace.Event{Kind: trace.KindMark, Detail: "table2"})
	emitRun("qsort")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(strings.NewReader(sb.String()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(rep.Runs))
	}
	wantMarks := []string{"fig10", "fig10", "table2"}
	wantNames := []string{"fft", "gsme", "qsort"}
	for i, run := range rep.Runs {
		if run.Mark != wantMarks[i] || run.Name != wantNames[i] {
			t.Errorf("run %d = %s (%s), want %s (%s)", i, run.Name, run.Mark, wantNames[i], wantMarks[i])
		}
		if run.Insts != 7 {
			t.Errorf("run %d insts = %d, want 7", i, run.Insts)
		}
	}
}

// TestTruncatedStream: cutting a stream mid-run still yields the partial run
// with EndDetail empty.
func TestTruncatedStream(t *testing.T) {
	_, stream := capture(t, "fft", 0.1, nil)
	lines := strings.Split(strings.TrimRight(stream, "\n"), "\n")
	half := strings.Join(lines[:len(lines)/2], "\n") + "\n"
	rep, err := Analyze(strings.NewReader(half), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1 partial run", len(rep.Runs))
	}
	if rep.Runs[0].EndDetail != "" {
		t.Errorf("truncated run has EndDetail %q", rep.Runs[0].EndDetail)
	}
	if !strings.Contains(rep.String(), "[truncated]") {
		t.Error("render does not flag the truncated run")
	}
}

func TestMalformedLine(t *testing.T) {
	if _, err := Analyze(strings.NewReader("{\"ev\":\"run_start\"}\nnot json\n"), Options{}); err == nil {
		t.Error("malformed line accepted")
	}
	rep, err := Analyze(strings.NewReader(""), Options{})
	if err != nil || len(rep.Runs) != 0 || rep.Events != 0 {
		t.Errorf("empty stream: rep=%+v err=%v", rep, err)
	}
}

const goldenPath = "testdata/report_gsme_ipex.txt"

// TestGoldenReport pins the rendered report for a deterministic pinned run:
// same simulator, same trace, same analyzer ⇒ byte-identical output.
// Regenerate with `go test ./internal/tracestat -run TestGoldenReport -update`
// after an intentional format or simulator change.
func TestGoldenReport(t *testing.T) {
	_, stream := capture(t, "gsme", 0.1, func(c *nvp.Config) { *c = c.WithIPEX() })
	rep, err := Analyze(strings.NewReader(stream), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Render(8)

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden report (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from golden fixture %s (regenerate with -update if intentional)\ngot:\n%s", goldenPath, got)
	}
}
