package tracestat

import (
	"fmt"
	"strings"

	"ipex/internal/stats"
)

// String renders the full report: every run, all power cycles.
func (r *Report) String() string { return r.Render(0) }

// Render renders the report, capping each run's per-power-cycle table at n
// rows (n <= 0 means all).
func (r *Report) Render(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, %d run(s)\n", r.Events, len(r.Runs))
	for i, run := range r.Runs {
		b.WriteString("\n")
		b.WriteString(run.render(i, n))
	}
	return b.String()
}

func (r *RunStat) render(idx, n int) string {
	var b strings.Builder
	label := r.Name
	if r.Mark != "" {
		label += " (" + r.Mark + ")"
	}
	end := r.EndDetail
	if end == "" {
		end = "truncated"
	}
	fmt.Fprintf(&b, "run %d: %s [%s]\n", idx, label, end)
	fmt.Fprintf(&b, "  insts %d  end cycle %d  power cycles %d (%d outages)\n",
		r.Insts, r.EndCycle, len(r.Cycles), r.Outages())

	var t stats.Table
	t.Header("side", "accesses", "misses", "missrate", "pf_issued", "reissued",
		"throttled", "first_use", "wiped(c/b/i)", "accuracy", "coverage~")
	for _, s := range []struct {
		name string
		st   SideTally
	}{{"icache", r.Inst}, {"dcache", r.Data}} {
		t.Rowf("%s\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%d/%d/%d\t%s\t%s",
			s.name, s.st.Accesses, s.st.Misses, stats.Pct(s.st.MissRate()),
			s.st.Issued, s.st.Reissued, s.st.Throttle, s.st.FirstUses(),
			s.st.WipedCache, s.st.WipedBuffer, s.st.WipedInflight,
			stats.Pct(s.st.Accuracy()), stats.Pct(s.st.Coverage()))
	}
	b.WriteString(indent(t.String()))

	fmt.Fprintf(&b, "  wasted: %d wiped prefetch read(s) x %.3f nJ = %.1f nJ; throttling avoided %d read(s) (%.1f nJ)\n",
		r.Wiped(), r.PrefetchReadNJ, r.WastedNJ(),
		r.Inst.Throttle+r.Data.Throttle, r.AvoidedNJ())

	if r.Timeliness != nil && r.Timeliness.N > 0 {
		b.WriteString("  prefetch timeliness (cycles, issue -> first use):\n")
		b.WriteString(indent(r.Timeliness.String()))
	}

	if len(r.Degrees) > 0 || len(r.Crossings) > 0 {
		b.WriteString("  " + r.ipexLine() + "\n")
	}

	if len(r.Cycles) > 0 {
		b.WriteString("  per-power-cycle timeline:\n")
		b.WriteString(indent(r.CycleTable(n)))
	}
	return b.String()
}

// ipexLine summarizes the degree/voltage trajectory in one line.
func (r *RunStat) ipexLine() string {
	causes := map[string]uint64{}
	minD, maxD := int64(0), int64(0)
	for i, d := range r.Degrees {
		causes[d.Cause]++
		if i == 0 || d.Degree < minD {
			minD = d.Degree
		}
		if i == 0 || d.Degree > maxD {
			maxD = d.Degree
		}
	}
	up, down := uint64(0), uint64(0)
	for _, c := range r.Crossings {
		if c.Dir > 0 {
			up++
		} else {
			down++
		}
	}
	return fmt.Sprintf("ipex: %d degree change(s) (%d halve, %d double, %d reboot_reset), degree [%d, %d]; crossings %d up / %d down; threshold adapts %d up / %d down",
		len(r.Degrees), causes["halve"], causes["double"], causes["reboot_reset"],
		minD, maxD, up, down, r.AdaptUp, r.AdaptDown)
}

// CycleTable renders the per-power-cycle timeline, capped at n rows (n <= 0
// means all).
func (r *RunStat) CycleTable(n int) string {
	var t stats.Table
	t.Header("pc", "start", "end", "insts", "imiss", "dmiss", "pf_issued",
		"throttled", "first_use", "wiped", "ckpt_dirty", "ckpt_nj")
	rows := r.Cycles
	truncated := false
	if n > 0 && len(rows) > n {
		rows = rows[:n]
		truncated = true
	}
	for _, c := range rows {
		mark := ""
		if c.Final {
			mark = "*"
		}
		t.Rowf("%d%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f",
			c.Index, mark, c.StartCycle, c.EndCycle, c.Insts, c.IMisses, c.DMisses,
			c.Issued, c.Throttled, c.FirstUses, c.Wiped, c.CkptDirty, c.CkptNJ)
	}
	out := t.String()
	if truncated {
		out += fmt.Sprintf("(%d of %d power cycles shown)\n", n, len(r.Cycles))
	}
	return out
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
