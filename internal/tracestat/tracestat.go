// Package tracestat is the offline analyzer for the simulator's JSONL event
// traces (internal/trace). It re-derives from the event stream alone what the
// simulator reports as end-of-run aggregates — per-power-cycle timelines,
// prefetch coverage/accuracy/timeliness, wiped-prefetch waste, IPEX degree
// trajectories — so a trace can be audited (do the events really sum to the
// published numbers?) and mined for distributions the aggregates flatten.
//
// The analyzer is deliberately decoupled from the simulator: it sees only
// what the trace records. Counts it reconstructs (issues, throttles, wipes
// per location, demand accesses/misses) match the Result aggregates exactly;
// derived rates that need unrecorded state (inflight-served demand hits) are
// labelled as approximations.
package tracestat

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ipex/internal/energy"
	"ipex/internal/stats"
	"ipex/internal/trace"
)

// Options tunes the analysis.
type Options struct {
	// PrefetchReadNJ prices one prefetch NVM read for the wasted-energy
	// numbers; <= 0 means the default ReRAM per-block read energy
	// (energy.NVMReadNJ). The trace does not record the simulated NVM
	// configuration, so a non-default sweep must pass its own value.
	PrefetchReadNJ float64
	// TimelinessBounds are the histogram bucket boundaries (in cycles) for
	// the issue-to-first-use latency; nil means geometric buckets
	// 16, 64, 256, … 2^20.
	TimelinessBounds []float64
}

func (o Options) norm() Options {
	if o.PrefetchReadNJ <= 0 {
		o.PrefetchReadNJ = float64(energy.NVMReadNJ)
	}
	if o.TimelinessBounds == nil {
		o.TimelinessBounds = stats.ExpBounds(16, 1<<20, 4)
	}
	return o
}

// SideTally aggregates one cache side (icache or dcache) over a run.
type SideTally struct {
	Accesses uint64
	Misses   uint64
	Issued   uint64
	Reissued uint64
	Throttle uint64
	// FirstUseCache / FirstUseBuffer count pf_first_use events by the
	// location that served the hit.
	FirstUseCache  uint64
	FirstUseBuffer uint64
	// WipedCache / WipedBuffer / WipedInflight count pf_wipe events by the
	// location the block died in.
	WipedCache    uint64
	WipedBuffer   uint64
	WipedInflight uint64
}

// FirstUses returns prefetched blocks that served a demand access.
func (s SideTally) FirstUses() uint64 { return s.FirstUseCache + s.FirstUseBuffer }

// Wiped returns prefetched blocks destroyed unused, in any location.
func (s SideTally) Wiped() uint64 { return s.WipedCache + s.WipedBuffer + s.WipedInflight }

// MissRate returns Misses/Accesses.
func (s SideTally) MissRate() float64 {
	return stats.Ratio(float64(s.Misses), float64(s.Accesses))
}

// Accuracy returns first-uses per issued prefetch (the fraction of issues
// that ever served a demand access before being lost).
func (s SideTally) Accuracy() float64 {
	return stats.Ratio(float64(s.FirstUses()), float64(s.Issued))
}

// Coverage approximates the fraction of would-be misses a prefetch absorbed:
// first-uses over first-uses plus residual demand misses. It is approximate
// because inflight-served hits leave no first-use event.
func (s SideTally) Coverage() float64 {
	return stats.Ratio(float64(s.FirstUses()), float64(s.FirstUses()+s.Misses))
}

// CycleStat is one reconstructed power cycle of a run.
type CycleStat struct {
	Index uint64
	// StartCycle / EndCycle bracket the cycle's events: StartCycle is the
	// cycle_start stamp (restore walk already charged), EndCycle the
	// cycle_end stamp (or the run_end stamp for the final partial cycle).
	StartCycle uint64
	EndCycle   uint64
	// Insts is the cycle's committed instructions (cycle_end's payload;
	// derived from the run total for the final partial cycle).
	Insts     uint64
	Issued    uint64
	Throttled uint64
	Wiped     uint64
	FirstUses uint64
	// IAccesses/IMisses and DAccesses/DMisses are the per-side
	// demand-stream deltas carried by the cycle's cycle_stats events.
	IAccesses uint64
	IMisses   uint64
	DAccesses uint64
	DMisses   uint64
	// CkptDirty / CkptNJ describe the terminating JIT checkpoint; absent
	// (zero) on the final partial cycle.
	CkptDirty int64
	CkptNJ    float64
	// Final marks the run-terminating partial cycle (no outage).
	Final bool
}

// DegreePoint is one sample of the IPEX degree trajectory.
type DegreePoint struct {
	Cycle      uint64
	PowerCycle uint64
	Degree     int64
	// Cause is the degree_change detail: "halve", "double", or
	// "reboot_reset".
	Cause string
}

// VoltPoint is one IPEX voltage-threshold crossing.
type VoltPoint struct {
	Cycle      uint64
	PowerCycle uint64
	Volts      float64
	// Dir is +1 for an upward crossing, -1 for downward.
	Dir int64
}

// RunStat is everything reconstructed for one run in the stream.
type RunStat struct {
	// Name is the workload name; Mark the experiment label (cmd/experiments
	// mark event) active when the run started, if any.
	Name string
	Mark string `json:",omitempty"`
	// EndDetail is "completed" or "budget"; empty if the stream was
	// truncated before the run's run_end.
	EndDetail string
	Insts     uint64
	EndCycle  uint64
	Cycles    []CycleStat
	Inst      SideTally
	Data      SideTally
	// Timeliness is the distribution of cycles between a block's (last)
	// pf_issue and its pf_first_use.
	Timeliness *stats.Histogram
	// Degrees is the IPEX degree trajectory; Crossings the
	// threshold-crossing samples (degree vs voltage over time).
	Degrees   []DegreePoint `json:",omitempty"`
	Crossings []VoltPoint   `json:",omitempty"`
	// AdaptUp / AdaptDown count reboot-time adaptive threshold moves.
	AdaptUp   uint64
	AdaptDown uint64
	// PrefetchReadNJ is the per-read energy the waste numbers used.
	PrefetchReadNJ float64
}

// Outages returns the number of power failures the run survived.
func (r *RunStat) Outages() uint64 {
	n := uint64(0)
	for _, c := range r.Cycles {
		if !c.Final {
			n++
		}
	}
	return n
}

// Wiped returns prefetched blocks destroyed unused, both sides.
func (r *RunStat) Wiped() uint64 { return r.Inst.Wiped() + r.Data.Wiped() }

// WastedNJ returns the energy of wiped prefetch reads: every wiped block
// paid one NVM read that served nobody.
func (r *RunStat) WastedNJ() float64 {
	return float64(r.Wiped()) * r.PrefetchReadNJ
}

// AvoidedNJ returns the read energy IPEX throttling declined to spend.
func (r *RunStat) AvoidedNJ() float64 {
	return float64(r.Inst.Throttle+r.Data.Throttle) * r.PrefetchReadNJ
}

// Report is the analysis of one trace stream.
type Report struct {
	Events uint64
	Runs   []*RunStat
}

// analysis carries the per-run scratch state of one Analyze pass.
type analysis struct {
	opt  Options
	rep  *Report
	mark string
	run  *RunStat
	// issue maps side name → block → last pf_issue cycle, for timeliness.
	issue map[string]map[uint64]uint64
	// instsSeen sums cycle_end payloads to derive the final partial
	// cycle's instruction count from the run total.
	instsSeen uint64
}

// Analyze reads a JSONL event stream and reconstructs its runs. Unknown
// event kinds are ignored (newer traces stay readable); a malformed line is
// an error. A stream truncated mid-run still yields that run's partial
// statistics (EndDetail stays empty).
func Analyze(r io.Reader, opt Options) (*Report, error) {
	a := &analysis{opt: opt.norm(), rep: &Report{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e trace.Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("tracestat: line %d: %w", line, err)
		}
		a.rep.Events++
		a.event(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tracestat: reading stream: %w", err)
	}
	a.flushRun()
	return a.rep, nil
}

// side returns the tally for an event's Side label (nil for unknown labels,
// which are then ignored rather than misattributed).
func (a *analysis) side(name string) *SideTally {
	switch name {
	case "icache":
		return &a.run.Inst
	case "dcache":
		return &a.run.Data
	}
	return nil
}

// cycle returns the CycleStat for power-cycle index pc, materializing
// records up to it. Stamps are monotone within a run, so this only appends.
func (a *analysis) cycle(pc uint64) *CycleStat {
	for uint64(len(a.run.Cycles)) <= pc {
		a.run.Cycles = append(a.run.Cycles, CycleStat{Index: uint64(len(a.run.Cycles))})
	}
	return &a.run.Cycles[pc]
}

func (a *analysis) flushRun() {
	if a.run == nil {
		return
	}
	a.rep.Runs = append(a.rep.Runs, a.run)
	a.run = nil
}

func (a *analysis) event(e trace.Event) {
	if e.Kind == trace.KindMark {
		a.flushRun()
		a.mark = e.Detail
		return
	}
	if e.Kind == trace.KindRunStart {
		a.flushRun()
		a.run = &RunStat{
			Name:           e.Run,
			Mark:           a.mark,
			Timeliness:     stats.NewHistogram(a.opt.TimelinessBounds),
			PrefetchReadNJ: a.opt.PrefetchReadNJ,
		}
		a.issue = map[string]map[uint64]uint64{
			"icache": make(map[uint64]uint64),
			"dcache": make(map[uint64]uint64),
		}
		a.instsSeen = 0
		return
	}
	if a.run == nil {
		// Events before any run_start (or after a truncated stream's last
		// run) have nothing to attach to.
		return
	}
	switch e.Kind {
	case trace.KindRunEnd:
		a.run.EndDetail = e.Detail
		a.run.Insts = uint64(e.N)
		a.run.EndCycle = e.Cycle
		if len(a.run.Cycles) > 0 {
			c := &a.run.Cycles[len(a.run.Cycles)-1]
			c.Final = true
			c.EndCycle = e.Cycle
			c.Insts = a.run.Insts - a.instsSeen
		}
		a.flushRun()
	case trace.KindCycleStart:
		a.cycle(e.PowerCycle).StartCycle = e.Cycle
	case trace.KindCycleEnd:
		c := a.cycle(e.PowerCycle)
		c.EndCycle = e.Cycle
		c.Insts = uint64(e.N)
		a.instsSeen += uint64(e.N)
	case trace.KindCycleStats:
		c := a.cycle(e.PowerCycle)
		switch e.Side {
		case "icache":
			c.IAccesses, c.IMisses = e.Accesses, e.Misses
		case "dcache":
			c.DAccesses, c.DMisses = e.Accesses, e.Misses
		}
		if sd := a.side(e.Side); sd != nil {
			sd.Accesses += e.Accesses
			sd.Misses += e.Misses
		}
	case trace.KindCheckpoint:
		c := a.cycle(e.PowerCycle)
		c.CkptDirty = e.N
		c.CkptNJ = e.Value
	case trace.KindPrefetchIssue:
		if sd := a.side(e.Side); sd != nil {
			sd.Issued++
			if e.Detail == "reissue" {
				sd.Reissued++
			}
		}
		a.cycle(e.PowerCycle).Issued++
		if m := a.issue[e.Side]; m != nil {
			m[e.Block] = e.Cycle
		}
	case trace.KindPrefetchThrottle:
		if sd := a.side(e.Side); sd != nil {
			sd.Throttle++
		}
		a.cycle(e.PowerCycle).Throttled++
	case trace.KindPrefetchWipe:
		if sd := a.side(e.Side); sd != nil {
			switch e.Detail {
			case "cache":
				sd.WipedCache++
			case "buffer":
				sd.WipedBuffer++
			case "inflight":
				sd.WipedInflight++
			}
		}
		a.cycle(e.PowerCycle).Wiped++
		if m := a.issue[e.Side]; m != nil {
			delete(m, e.Block)
		}
	case trace.KindPrefetchFirstUse:
		if sd := a.side(e.Side); sd != nil {
			switch e.Detail {
			case "buffer":
				sd.FirstUseBuffer++
			default:
				sd.FirstUseCache++
			}
		}
		a.cycle(e.PowerCycle).FirstUses++
		if m := a.issue[e.Side]; m != nil {
			if at, ok := m[e.Block]; ok {
				a.run.Timeliness.Add(float64(e.Cycle - at))
				delete(m, e.Block)
			}
		}
	case trace.KindDegreeChange:
		a.run.Degrees = append(a.run.Degrees, DegreePoint{
			Cycle: e.Cycle, PowerCycle: e.PowerCycle, Degree: e.N, Cause: e.Detail,
		})
	case trace.KindThresholdCross:
		a.run.Crossings = append(a.run.Crossings, VoltPoint{
			Cycle: e.Cycle, PowerCycle: e.PowerCycle, Volts: e.Value, Dir: e.N,
		})
	case trace.KindThresholdAdapt:
		if e.N > 0 {
			a.run.AdaptUp++
		} else {
			a.run.AdaptDown++
		}
	}
}
