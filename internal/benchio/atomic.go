package benchio

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicFile writes an artifact via the write-temp-then-rename discipline:
// bytes stream into a hidden temporary in the destination's directory, and
// the destination path only ever changes in one atomic rename at Commit.
// An interrupt (or a Discard after a failed producer) therefore never
// leaves a torn trace, metrics, profile, or result file — the destination
// either keeps its previous content or receives the complete new one.
//
// The zero value is not usable; start from NewAtomicFile. Exactly one of
// Commit or Discard should be called; both are idempotent afterwards.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// NewAtomicFile opens a temporary file next to path (same filesystem, so
// the final rename is atomic). The temporary is named after the target so
// a crash leaves an identifiable ".tmp" orphan rather than a torn target.
func NewAtomicFile(path string) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("benchio: %w", err)
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write streams bytes into the temporary.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Name returns the destination path the Commit rename will install.
func (a *AtomicFile) Name() string { return a.path }

// Commit syncs and closes the temporary, then renames it over the
// destination. After a successful Commit the destination holds the complete
// content; on any error the temporary is removed and the destination is
// left untouched.
func (a *AtomicFile) Commit() error {
	if a.done {
		return nil
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return fmt.Errorf("benchio: syncing %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return fmt.Errorf("benchio: closing %s: %w", a.path, err)
	}
	if err := os.Rename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name())
		return fmt.Errorf("benchio: installing %s: %w", a.path, err)
	}
	// Make the new directory entry durable too; a failed directory sync is
	// not worth failing the artifact over, so the error is dropped.
	if dir, err := os.Open(filepath.Dir(a.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// Discard closes and removes the temporary, leaving the destination as it
// was. Safe to defer alongside a Commit on the success path.
func (a *AtomicFile) Discard() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()
	os.Remove(a.f.Name())
}

// WriteFileAtomic writes data to path with the temp-then-rename discipline.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	a, err := NewAtomicFile(path)
	if err != nil {
		return err
	}
	if _, err := a.Write(data); err != nil {
		a.Discard()
		return fmt.Errorf("benchio: writing %s: %w", path, err)
	}
	if err := a.f.Chmod(perm); err != nil {
		a.Discard()
		return fmt.Errorf("benchio: chmod %s: %w", path, err)
	}
	return a.Commit()
}
