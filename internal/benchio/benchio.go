// Package benchio defines the BENCH_hotloop.json schema shared by the
// benchmark suite (bench_test.go) and cmd/experiments' -benchjson flag: a
// small machine-readable record of simulator hot-loop throughput and
// experiment wall-clock, committed alongside the code so performance
// regressions show up in review like test regressions do.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// Schema identifies the record layout; bump on incompatible change.
// v2 added Hotloop.FastPaths: per-loop-variant throughput and allocation
// figures for the specialized hot loops.
const Schema = "ipex-bench-hotloop/v2"

// FastPath is the measurement of one loop variant: the generic interpreter
// loop or one of the specialized fast paths, all run through a warmed
// arena so the figures isolate the loop itself.
type FastPath struct {
	// Name is the variant: "generic", "fast" (default configuration through
	// the specialized loop), or "fast-nopf" (the no-prefetch loop).
	Name string `json:"name"`
	// InstsPerSec is simulated instructions per wall second.
	InstsPerSec float64 `json:"insts_per_sec"`
	// NsPerInst is wall nanoseconds per simulated instruction.
	NsPerInst float64 `json:"ns_per_inst"`
	// AllocsPerRun is heap allocations per steady-state arena run.
	AllocsPerRun int64 `json:"allocs_per_run"`
}

// Hotloop measures the simulator core: one full nvp.Run of a memoized
// workload, normalized per simulated instruction.
type Hotloop struct {
	// App and Scale identify the probed workload.
	App   string  `json:"app"`
	Scale float64 `json:"scale"`
	// Insts is the simulated instruction count of one run.
	Insts uint64 `json:"insts"`
	// NsPerInst is wall nanoseconds per simulated instruction.
	NsPerInst float64 `json:"ns_per_inst"`
	// InstsPerSec is the reciprocal throughput (simulated insts / wall s).
	InstsPerSec float64 `json:"insts_per_sec"`
	// AllocsPerRun and BytesPerRun are heap allocations per nvp.Run.
	AllocsPerRun int64 `json:"allocs_per_run"`
	BytesPerRun  int64 `json:"bytes_per_run"`
	// FastPaths breaks throughput down per loop variant (schema v2).
	FastPaths []FastPath `json:"fast_paths,omitempty"`
}

// Experiment is the wall-clock of one cmd/experiments entry.
type Experiment struct {
	ID          string  `json:"id"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Record is the full BENCH_hotloop.json document.
type Record struct {
	Schema        string       `json:"schema"`
	GeneratedUnix int64        `json:"generated_unix"`
	GoVersion     string       `json:"go_version"`
	Scale         float64      `json:"scale,omitempty"`
	Hotloop       *Hotloop     `json:"hotloop,omitempty"`
	Experiments   []Experiment `json:"experiments,omitempty"`
	// Notes carries free-form context (e.g. the pre-optimization baseline
	// numbers the current figures should be compared against).
	Notes []string `json:"notes,omitempty"`
}

// NewRecord returns a Record stamped with the current time and toolchain.
func NewRecord() Record {
	return Record{
		Schema:        Schema,
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
	}
}

// Write marshals the record (indented, trailing newline) to path, via the
// temp-then-rename discipline so an interrupt never leaves a torn record.
func Write(path string, r Record) error {
	if r.Schema == "" {
		r.Schema = Schema
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchio: %w", err)
	}
	return WriteFileAtomic(path, append(b, '\n'), 0o644)
}

// Read loads a record written by Write.
func Read(path string) (Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Record{}, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return Record{}, fmt.Errorf("benchio: %s: %w", path, err)
	}
	return r, nil
}
