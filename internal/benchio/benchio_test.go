package benchio

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := NewRecord()
	want.Scale = 0.1
	want.Hotloop = &Hotloop{
		App: "gsme", Scale: 1, Insts: 123456,
		NsPerInst: 42.5, InstsPerSec: 2.35e7,
		AllocsPerRun: 46, BytesPerRun: 69939,
	}
	want.Experiments = []Experiment{{ID: "fig10", WallSeconds: 0.02}}
	want.Notes = []string{"seed baseline: 100 ns/inst"}

	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestWriteFillsSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := Write(path, Record{}); err != nil {
		t.Fatal(err)
	}
	r, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != Schema {
		t.Errorf("schema = %q, want %q", r.Schema, Schema)
	}
}
