package trace

import (
	"sync"
	"time"

	"ipex/internal/stats"
)

// DefaultLatencyBounds is the bucket layout latency histograms get when the
// registration site passes nil bounds: geometric buckets from 1µs to ~16s
// (factor 4), covering everything from a journal fsync to a straggling
// sweep cell. Values are seconds, the Prometheus convention for durations.
var DefaultLatencyBounds = stats.ExpBounds(1e-6, 10, 4)

// Histogram is a concurrency-safe fixed-bucket histogram handle, the third
// instrument kind of the Registry next to Counter and Gauge. It wraps the
// deterministic stats.Histogram under a mutex: bucket layout is frozen at
// registration, observation is a binary search plus a few adds under the
// lock, and rendering is byte-deterministic for a given set of observed
// values. All methods are nil-receiver safe (a nil handle discards
// observations), so an uninstrumented path pays one nil compare.
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// newHistogram builds a handle over the given bounds (nil =
// DefaultLatencyBounds).
func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{h: stats.NewHistogram(bounds)}
}

// Observe records one value. Nil-receiver safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// ObserveDuration records a span length in seconds (the Prometheus unit
// convention for latency series). Nil-receiver safe.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns how many values have been observed. Nil-receiver safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.N
}

// Snapshot returns a deep copy of the underlying histogram, safe to read
// while observation continues. A nil handle returns an empty histogram over
// the default bounds.
func (h *Histogram) Snapshot() stats.Histogram {
	if h == nil {
		return stats.Histogram{Bounds: append([]float64(nil), DefaultLatencyBounds...),
			Counts: make([]uint64, len(DefaultLatencyBounds)+1)}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cp := *h.h
	cp.Bounds = append([]float64(nil), h.h.Bounds...)
	cp.Counts = append([]uint64(nil), h.h.Counts...)
	return cp
}
