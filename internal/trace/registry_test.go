package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter retained a value")
	}
	g := r.Gauge("y")
	g.Add(1.5)
	if g.Load() != 0 {
		t.Error("nil gauge retained a value")
	}
	if len(r.Snapshot()) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("icache.pf_issued")
	c.Inc()
	c.Add(9)
	if got := r.Counter("icache.pf_issued").Load(); got != 10 {
		t.Errorf("counter = %d, want 10 (same handle by name)", got)
	}
	g := r.Gauge("energy.cache_nj")
	g.Add(1.25)
	g.Add(2.5)
	if got := g.Load(); got != 3.75 {
		t.Errorf("gauge = %g, want 3.75", got)
	}

	snap := r.Snapshot()
	if snap["icache.pf_issued"] != uint64(10) {
		t.Errorf("snapshot counter = %v", snap["icache.pf_issued"])
	}
	if snap["energy.cache_nj"] != 3.75 {
		t.Errorf("snapshot gauge = %v", snap["energy.cache_nj"])
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Gauge("f").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Load(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("f").Load(); got != 8000 {
		t.Errorf("gauge = %g, want 8000", got)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("c").Add(0.5)
	var s1, s2 strings.Builder
	if err := r.WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Error("two dumps of the same registry differ")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(s1.String()), &m); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(m) != 3 {
		t.Errorf("dump has %d keys, want 3", len(m))
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"run.insts":        "ipex_run_insts",
		"icache.pf_wiped":  "ipex_icache_pf_wiped",
		"energy.total_nj":  "ipex_energy_total_nj",
		"weird metric/1$x": "ipex_weird_metric_1_x",
		"0starts.digit":    "ipex_0starts_digit",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("run.outages").Add(3)
	r.Counter("icache.misses").Add(7)
	r.Gauge("energy.total_nj").Add(12.5)
	var s1, s2 strings.Builder
	if err := r.WriteProm(&s1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Error("two Prometheus dumps of the same registry differ")
	}
	out := s1.String()
	for _, want := range []string{
		"# TYPE ipex_run_outages counter",
		"ipex_run_outages 3",
		"# TYPE ipex_icache_misses counter",
		"# TYPE ipex_energy_total_nj gauge",
		"ipex_energy_total_nj 12.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Prometheus dump missing %q:\n%s", want, out)
		}
	}
	// Counters come before gauges, each group name-sorted.
	if strings.Index(out, "ipex_icache_misses") > strings.Index(out, "ipex_run_outages") {
		t.Error("counters not name-sorted")
	}
	// Nil registry writes nothing and does not panic.
	var empty strings.Builder
	if err := (*Registry)(nil).WriteProm(&empty); err != nil || empty.Len() != 0 {
		t.Errorf("nil registry: err=%v out=%q", err, empty.String())
	}
}
