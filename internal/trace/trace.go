// Package trace is the simulator's observability layer: a per-power-cycle
// event tracer and a named-counter metrics registry.
//
// The paper's entire analysis (Figs. 8–15) is built from per-power-cycle
// evidence — wiped-before-use prefetches, throttling rates, checkpoint
// energy — but a Result only carries end-of-run aggregates. The tracer
// streams the underlying events (power-cycle start/end, outage checkpoints,
// prefetch issue/throttle/wipe/first-use, IPEX threshold crossings and
// degree changes) as JSON Lines, so every aggregate number is decomposable
// into the event history that produced it.
//
// Both facilities are strictly opt-in and zero-overhead when disabled: the
// simulator holds nil pointers and every emission site is guarded by a
// single nil compare, so the hot loop's golden byte-identical behaviour and
// throughput are untouched when tracing is off.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind names an event type. The values are stable strings (they appear in
// JSONL output and downstream tooling greps for them).
type Kind string

// The event vocabulary. One simulated run emits exactly one KindRunStart /
// KindRunEnd pair bracketing its power cycles.
const (
	// KindRunStart opens a run; Run carries the workload name.
	KindRunStart Kind = "run_start"
	// KindRunEnd closes a run; N is the committed instruction count and
	// Detail is "completed" or "budget" (MaxCycles hit).
	KindRunEnd Kind = "run_end"
	// KindCycleStart marks a reboot (or initial boot); PowerCycle is the
	// 0-based index of the cycle that begins here.
	KindCycleStart Kind = "cycle_start"
	// KindCycleEnd marks a power failure terminating PowerCycle; N is the
	// number of instructions the cycle committed.
	KindCycleEnd Kind = "cycle_end"
	// KindCheckpoint is the JIT checkpoint at an outage: N dirty DCache
	// blocks persisted, Value the backup energy in nJ (0 in ideal mode).
	KindCheckpoint Kind = "checkpoint"
	// KindPrefetchIssue is one prefetch read put on the NVM bus; Detail is
	// "reissue" when the ReissueOnExit extension replayed it.
	KindPrefetchIssue Kind = "pf_issue"
	// KindPrefetchThrottle is one candidate IPEX suppressed below the
	// conventional degree.
	KindPrefetchThrottle Kind = "pf_throttle"
	// KindPrefetchWipe is one prefetched-but-unused block destroyed by the
	// power failure; Detail names where it died: "cache" (resident line),
	// "buffer" (prefetch-buffer entry), or "inflight" (read still on the
	// bus).
	KindPrefetchWipe Kind = "pf_wipe"
	// KindPrefetchFirstUse is a prefetched block serving its first demand
	// access — the moment it becomes "useful" in the paper's accounting.
	// Detail is "cache" or "buffer".
	KindPrefetchFirstUse Kind = "pf_first_use"
	// KindThresholdCross is an IPEX voltage-threshold crossing; Value is
	// the threshold (volts), N is +1 (upward) or -1 (downward).
	KindThresholdCross Kind = "threshold_cross"
	// KindThresholdAdapt is the reboot-time adaptive threshold move; N is
	// +1 (up, more saving) or -1 (down, more prefetching).
	KindThresholdAdapt Kind = "threshold_adapt"
	// KindDegreeChange reports R_cpd after a change; N is the new degree
	// and Detail is "halve", "double", or "reboot_reset".
	KindDegreeChange Kind = "degree_change"
	// KindCycleStats carries one cache side's demand-stream deltas for the
	// power cycle ending here (Side, Accesses, Misses). Emitted once per
	// side right before KindCycleEnd, and again before KindRunEnd for the
	// final partial cycle, so the offline analyzer can reconstruct
	// per-cycle miss rates and prefetch coverage from the trace alone.
	KindCycleStats Kind = "cycle_stats"
	// KindMark is a free-form stream marker (cmd/experiments separates
	// experiments with it); Detail carries the label.
	KindMark Kind = "mark"
	// KindFaultSensor is an injected voltage-monitor sample failure; Detail
	// is "dropout" (conversion lost, previous reading repeated) or "stuck"
	// (output register frozen; N is the window length in samples), Value the
	// reading reported in its place.
	KindFaultSensor Kind = "fault_sensor"
	// KindFaultCkpt is an injected checkpoint-write fault; Detail is "retry"
	// (one re-issued block write, Value its energy in nJ) or "rollback"
	// (full dirty-set re-walk, N the block writes discarded).
	KindFaultCkpt Kind = "fault_ckpt"
	// KindFaultHarvest is an injected power-trace anomaly; Detail is
	// "dropout", "spike" (Value the boosted power in watts), or "storm";
	// Block carries the absolute 10 µs sample index.
	KindFaultHarvest Kind = "fault_harvest"
)

// Event is one JSONL record. Cycle and PowerCycle are stamped by the
// tracer's clock at emission; emitters fill the rest.
type Event struct {
	Kind       Kind    `json:"ev"`
	Cycle      uint64  `json:"cycle"`
	PowerCycle uint64  `json:"pcycle"`
	// Run labels KindRunStart events with the workload name.
	Run string `json:"run,omitempty"`
	// Side is "icache" or "dcache" for per-cache-side events.
	Side string `json:"side,omitempty"`
	// Block is the block address for prefetch events.
	Block uint64 `json:"block,omitempty"`
	// N is a small integer payload (count, degree, crossing direction).
	N int64 `json:"n,omitempty"`
	// Value is a float payload (volts or nanojoules).
	Value float64 `json:"value,omitempty"`
	// Detail disambiguates within a kind (see the Kind constants).
	Detail string `json:"detail,omitempty"`
	// Accesses / Misses are the per-side demand-stream deltas carried by
	// KindCycleStats events; zero (and omitted) on every other kind.
	Accesses uint64 `json:"accesses,omitempty"`
	Misses   uint64 `json:"misses,omitempty"`
}

// Tracer streams events as JSON Lines. The zero value is not usable; build
// with NewJSONL. All methods are nil-receiver safe, so components hold a
// possibly-nil *Tracer and emission costs one pointer compare when tracing
// is off.
//
// A Tracer is safe for use by one run at a time: the simulator installs its
// clock with Begin and emits from a single goroutine. Sharing one Tracer
// across concurrent runs would interleave clocks; the experiment harness
// therefore serializes sweeps while tracing.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	clock  func() (cycle, powerCycle uint64)
	events uint64
	err    error
}

// NewJSONL returns a tracer writing one JSON object per line to w.
func NewJSONL(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriterSize(w, 64<<10)}
}

// Begin binds the tracer to a new run: the clock supplies (cycle,
// power-cycle) stamps for every subsequent event, and a KindRunStart event
// labelled with name is emitted. Call once per simulated run.
func (t *Tracer) Begin(name string, clock func() (cycle, powerCycle uint64)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
	t.Emit(Event{Kind: KindRunStart, Run: name})
}

// Emit stamps e with the current clock and writes it. Errors are sticky:
// the first write failure is retained (see Err) and later emissions are
// dropped.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if t.clock != nil {
		e.Cycle, e.PowerCycle = t.clock()
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.err = fmt.Errorf("trace: encoding event: %w", err)
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = fmt.Errorf("trace: writing event: %w", err)
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = fmt.Errorf("trace: writing event: %w", err)
		return
	}
	t.events++
}

// Events returns how many events have been written.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Flush drains the buffered writer and returns the first error the tracer
// has seen (write failures are sticky).
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	if err := t.w.Flush(); err != nil {
		t.err = fmt.Errorf("trace: flushing: %w", err)
	}
	return t.err
}

// Err returns the sticky error, if any, without flushing.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
