package trace

import (
	"sync/atomic"
	"time"
)

// This file is the observability layer's only wall-clock touchpoint, and
// the determinism lint (make lint) pins it that way: every latency
// measurement in the repository flows through an injected Clock, so
// simulator internals never read real time directly and tests substitute a
// FakeClock to make span values exact. Nothing a Clock reads may ever feed
// a simulated result — latencies live in metrics and trace streams only.

// Clock is a monotonic time source: Now returns the elapsed duration since
// an arbitrary fixed epoch (process start for the wall implementation). Two
// reads subtract to a span length; absolute values are meaningless across
// processes.
type Clock interface {
	Now() time.Duration
}

// wallClock reads the process monotonic clock. time.Since carries Go's
// monotonic reading, so spans are immune to wall-clock steps (NTP, DST).
type wallClock struct{ base time.Time }

// NewWallClock returns the real monotonic clock, epoch'd at construction.
func NewWallClock() Clock { return &wallClock{base: time.Now()} }

func (c *wallClock) Now() time.Duration { return time.Since(c.base) }

// FakeClock is the test implementation: a manually advanced monotonic
// clock, safe for concurrent use. The zero value starts at 0.
type FakeClock struct{ ns atomic.Int64 }

// Now returns the fake clock's current reading.
func (f *FakeClock) Now() time.Duration { return time.Duration(f.ns.Load()) }

// Advance moves the clock forward by d (negative d moves it back; tests
// only).
func (f *FakeClock) Advance(d time.Duration) { f.ns.Add(int64(d)) }
