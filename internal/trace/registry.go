package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a named-counter metrics registry. Components obtain handles
// once (Counter/Gauge) and bump them on their fast paths; a handle bump is
// a single atomic add, and a component that was never given a registry
// pays nothing (handles are only installed when metrics are requested).
//
// Counter values accumulate across runs sharing the registry, which is what
// an experiment sweep wants: the dump decomposes the whole sweep.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
// All methods are nil-receiver safe (a nil handle discards updates).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 accumulator (energy totals), safe for concurrent use.
// All methods are nil-receiver safe.
type Gauge struct{ bits atomic.Uint64 }

// Add accumulates f.
func (g *Gauge) Add(f float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + f)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Set replaces the value (for level-style gauges — in-flight requests,
// queue depth — where the current level, not an accumulated sum, is the
// measurement). Nil-receiver safe.
func (g *Gauge) Set(f float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(f))
}

// Load returns the accumulated value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (discarding) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns a nil (discarding) handle.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns every metric as a flat name→value map (counters as
// uint64, gauges as float64). The map is a copy; mutating it does not
// affect the registry.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with deterministically
// sorted keys (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// sortedCounters / sortedGauges return name-sorted snapshots so every dump
// format iterates the registry in one deterministic order.
func (r *Registry) sortedCounters() ([]string, map[string]uint64) {
	vals := make(map[string]uint64)
	if r == nil {
		return nil, vals
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name, c := range r.counters {
		names = append(names, name)
		vals[name] = c.Load()
	}
	sort.Strings(names)
	return names, vals
}

func (r *Registry) sortedGauges() ([]string, map[string]float64) {
	vals := make(map[string]float64)
	if r == nil {
		return nil, vals
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for name, g := range r.gauges {
		names = append(names, name)
		vals[name] = g.Load()
	}
	sort.Strings(names)
	return names, vals
}

// PromName converts a registry metric name into a legal Prometheus metric
// name: every character outside [a-zA-Z0-9_] becomes '_' and the "ipex_"
// namespace prefix is prepended (so "icache.pf_wiped" → "ipex_icache_pf_wiped").
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("ipex_")
	// The fixed prefix means a leading digit in name is never a leading
	// digit in the metric name, so digits are legal everywhere here.
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm writes the snapshot in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE pair and one sample per metric, counters
// typed counter and gauges typed gauge, names sorted so the output is
// byte-deterministic for a given registry state. It serves both scrapers
// (cmd/experiments -listen) and flat-file dumps (ipexsim -metrics-format
// prom).
func (r *Registry) WriteProm(w io.Writer) error {
	cn, cv := r.sortedCounters()
	for _, name := range cn {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s simulator counter %q\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, cv[name]); err != nil {
			return err
		}
	}
	gn, gv := r.sortedGauges()
	for _, name := range gn {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s simulator gauge %q\n# TYPE %s gauge\n%s %g\n",
			pn, name, pn, pn, gv[name]); err != nil {
			return err
		}
	}
	return nil
}
