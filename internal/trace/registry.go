package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ipex/internal/stats"
)

// Registry is a named-instrument metrics registry holding three kinds:
// Counter, Gauge, and Histogram. Components obtain handles once and bump
// them on their fast paths; a counter bump is a single atomic add, and a
// component that was never given a registry pays nothing (handles are only
// installed when metrics are requested).
//
// A name identifies exactly one instrument of one kind. Re-registering a
// name with the same kind returns the existing handle; re-registering it as
// a different kind is an error (see CounterErr and friends) — the
// convenience accessors then return a nil, discarding handle rather than
// silently aliasing two meanings onto one exported series.
//
// Counter values accumulate across runs sharing the registry, which is what
// an experiment sweep wants: the dump decomposes the whole sweep.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// kindOf names the kind already registered under name, or "" when the name
// is free. Caller holds r.mu.
func (r *Registry) kindOf(name string) string {
	if _, ok := r.counters[name]; ok {
		return "counter"
	}
	if _, ok := r.gauges[name]; ok {
		return "gauge"
	}
	if _, ok := r.histograms[name]; ok {
		return "histogram"
	}
	return ""
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
// All methods are nil-receiver safe (a nil handle discards updates).
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 accumulator (energy totals), safe for concurrent use.
// All methods are nil-receiver safe.
type Gauge struct{ bits atomic.Uint64 }

// Add accumulates f.
func (g *Gauge) Add(f float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + f)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Set replaces the value (for level-style gauges — in-flight requests,
// queue depth — where the current level, not an accumulated sum, is the
// measurement). Nil-receiver safe.
func (g *Gauge) Set(f float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(f))
}

// Load returns the accumulated value.
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// CounterErr returns the named counter, creating it on first use. A name
// already registered as another kind is an error — never an aliased handle,
// never a panic. A nil registry returns a nil (discarding) handle.
func (r *Registry) CounterErr(name string) (*Counter, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c, nil
	}
	if k := r.kindOf(name); k != "" {
		return nil, fmt.Errorf("trace: metric %q is already registered as a %s, not a counter", name, k)
	}
	c := &Counter{}
	r.counters[name] = c
	return c, nil
}

// Counter is the convenience form of CounterErr: a kind mismatch returns
// the nil (discarding) handle, so instrumented fast paths need no error
// plumbing while the name can never alias an instrument of another kind.
func (r *Registry) Counter(name string) *Counter {
	c, _ := r.CounterErr(name)
	return c
}

// GaugeErr returns the named gauge, creating it on first use; a name held
// by another kind is an error. A nil registry returns a nil handle.
func (r *Registry) GaugeErr(name string) (*Gauge, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g, nil
	}
	if k := r.kindOf(name); k != "" {
		return nil, fmt.Errorf("trace: metric %q is already registered as a %s, not a gauge", name, k)
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g, nil
}

// Gauge is the convenience form of GaugeErr (nil handle on kind mismatch).
func (r *Registry) Gauge(name string) *Gauge {
	g, _ := r.GaugeErr(name)
	return g
}

// HistogramErr returns the named histogram, creating it over bounds on
// first use (nil bounds = DefaultLatencyBounds; the first registration
// freezes the layout, later calls return the existing instrument
// regardless of their bounds argument). A name held by another kind is an
// error. A nil registry returns a nil handle.
func (r *Registry) HistogramErr(name string, bounds []float64) (*Histogram, error) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h, nil
	}
	if k := r.kindOf(name); k != "" {
		return nil, fmt.Errorf("trace: metric %q is already registered as a %s, not a histogram", name, k)
	}
	h := newHistogram(bounds)
	r.histograms[name] = h
	return h, nil
}

// Histogram is the convenience form of HistogramErr (nil handle on kind
// mismatch).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	h, _ := r.HistogramErr(name, bounds)
	return h
}

// Snapshot returns every metric as a flat name→value map (counters as
// uint64, gauges as float64, histograms as a {count,sum,min,max,mean}
// summary map). The map is a copy; mutating it does not affect the
// registry.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	hs := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hs[name] = h
	}
	for name, c := range r.counters {
		out[name] = c.Load()
	}
	for name, g := range r.gauges {
		out[name] = g.Load()
	}
	r.mu.Unlock()
	// Histogram snapshots take the instrument's own lock; never while
	// holding the registry lock (an observer holding neither could then
	// interleave into an ordering deadlock with a concurrent registration).
	for name, h := range hs {
		s := h.Snapshot()
		out[name] = map[string]any{
			"count": s.N, "sum": s.Sum, "min": s.MinV, "max": s.MaxV, "mean": s.Mean(),
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with deterministically
// sorted keys (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// sortedCounters / sortedGauges return name-sorted snapshots so every dump
// format iterates the registry in one deterministic order.
func (r *Registry) sortedCounters() ([]string, map[string]uint64) {
	vals := make(map[string]uint64)
	if r == nil {
		return nil, vals
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name, c := range r.counters {
		names = append(names, name)
		vals[name] = c.Load()
	}
	sort.Strings(names)
	return names, vals
}

func (r *Registry) sortedGauges() ([]string, map[string]float64) {
	vals := make(map[string]float64)
	if r == nil {
		return nil, vals
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for name, g := range r.gauges {
		names = append(names, name)
		vals[name] = g.Load()
	}
	sort.Strings(names)
	return names, vals
}

func (r *Registry) sortedHistograms() ([]string, map[string]stats.Histogram) {
	vals := make(map[string]stats.Histogram)
	if r == nil {
		return nil, vals
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.histograms))
	hs := make([]*Histogram, 0, len(r.histograms))
	for name, h := range r.histograms {
		names = append(names, name)
		hs = append(hs, h)
	}
	r.mu.Unlock()
	for i, name := range names {
		vals[name] = hs[i].Snapshot()
	}
	sort.Strings(names)
	return names, vals
}

// PromName converts a registry metric name into a legal Prometheus metric
// name: every character outside [a-zA-Z0-9_] becomes '_' and the "ipex_"
// namespace prefix is prepended (so "icache.pf_wiped" → "ipex_icache_pf_wiped").
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("ipex_")
	// The fixed prefix means a leading digit in name is never a leading
	// digit in the metric name, so digits are legal everywhere here.
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm writes the snapshot in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE pair per metric, counters typed counter,
// gauges typed gauge, and histograms typed histogram with the standard
// cumulative `_bucket{le=...}` / `_sum` / `_count` series, names sorted so
// the output is byte-deterministic for a given registry state. It serves
// both scrapers (cmd/experiments -listen, ipexd) and flat-file dumps
// (ipexsim -metrics-format prom).
func (r *Registry) WriteProm(w io.Writer) error {
	cn, cv := r.sortedCounters()
	for _, name := range cn {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s simulator counter %q\n# TYPE %s counter\n%s %d\n",
			pn, name, pn, pn, cv[name]); err != nil {
			return err
		}
	}
	gn, gv := r.sortedGauges()
	for _, name := range gn {
		pn := PromName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s simulator gauge %q\n# TYPE %s gauge\n%s %g\n",
			pn, name, pn, pn, gv[name]); err != nil {
			return err
		}
	}
	hn, hv := r.sortedHistograms()
	for _, name := range hn {
		if err := writePromHistogram(w, name, hv[name]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram in the Prometheus convention:
// cumulative buckets keyed by inclusive upper bound. The stats.Histogram's
// half-open buckets [lo, hi) map onto `le` bounds directly — a value
// exactly on a boundary lands one bucket higher than a strict `le` would
// put it, an off-by-one of zero consequence for latency observation and
// irrelevant to _sum/_count, which are exact.
func writePromHistogram(w io.Writer, name string, h stats.Histogram) error {
	pn := PromName(name)
	if _, err := fmt.Fprintf(w, "# HELP %s simulator histogram %q\n# TYPE %s histogram\n", pn, name, pn); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i] // Counts[0] is underflow; Counts[i] covers [Bounds[i-1], Bounds[i])
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, strconv.FormatFloat(b, 'g', -1, 64), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		pn, h.N, pn, strconv.FormatFloat(h.Sum, 'g', -1, 64), pn, h.N)
	return err
}
