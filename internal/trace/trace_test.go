package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Begin("x", nil)
	tr.Emit(Event{Kind: KindPrefetchIssue})
	if tr.Events() != 0 {
		t.Error("nil tracer counted events")
	}
	if err := tr.Flush(); err != nil {
		t.Errorf("nil tracer flush: %v", err)
	}
	if err := tr.Err(); err != nil {
		t.Errorf("nil tracer err: %v", err)
	}
}

func TestJSONLStream(t *testing.T) {
	var sb strings.Builder
	tr := NewJSONL(&sb)
	cycle, pcycle := uint64(0), uint64(0)
	tr.Begin("fft", func() (uint64, uint64) { return cycle, pcycle })

	cycle, pcycle = 100, 1
	tr.Emit(Event{Kind: KindPrefetchWipe, Side: "dcache", Block: 0x1000, Detail: "cache"})
	cycle = 250
	tr.Emit(Event{Kind: KindRunEnd, N: 42, Detail: "completed"})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Events(); got != 3 {
		t.Fatalf("events = %d, want 3 (run_start + 2)", got)
	}

	var evs []Event
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d lines, want 3", len(evs))
	}
	if evs[0].Kind != KindRunStart || evs[0].Run != "fft" || evs[0].Cycle != 0 {
		t.Errorf("run_start wrong: %+v", evs[0])
	}
	if evs[1].Kind != KindPrefetchWipe || evs[1].Cycle != 100 || evs[1].PowerCycle != 1 ||
		evs[1].Block != 0x1000 || evs[1].Detail != "cache" {
		t.Errorf("wipe event wrong: %+v", evs[1])
	}
	if evs[2].Cycle != 250 || evs[2].N != 42 {
		t.Errorf("run_end wrong: %+v", evs[2])
	}
}

// failWriter fails after n successful writes.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestStickyWriteError(t *testing.T) {
	tr := NewJSONL(&failWriter{n: 0})
	for i := 0; i < 100_000; i++ { // overflow the 64k buffer to force a write
		tr.Emit(Event{Kind: KindPrefetchIssue, Block: uint64(i)})
	}
	if tr.Err() == nil {
		t.Fatal("write failure not surfaced")
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("flush after failure returned nil")
	}
}
