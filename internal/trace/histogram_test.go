package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ipex/internal/stats"
)

func TestRegistryKindMismatch(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dup")
	c.Inc()

	// Same kind: the existing instrument comes back, never a fresh one.
	if c2, err := r.CounterErr("dup"); err != nil || c2 != c {
		t.Fatalf("CounterErr(dup) = %p, %v; want the original handle %p", c2, err, c)
	}

	// Kind mismatch: an error, not a panic, and not an aliased instrument.
	if g, err := r.GaugeErr("dup"); err == nil || g != nil {
		t.Fatalf("GaugeErr over a counter name = %v, %v; want nil handle + error", g, err)
	}
	if h, err := r.HistogramErr("dup", nil); err == nil || h != nil {
		t.Fatalf("HistogramErr over a counter name = %v, %v; want nil handle + error", h, err)
	}
	// The convenience accessors degrade to a discarding handle.
	g := r.Gauge("dup")
	g.Add(4)
	if g != nil {
		t.Fatalf("Gauge over a counter name = %p, want nil discarding handle", g)
	}

	// The reverse directions too: gauge and histogram names are equally
	// protected.
	r.Gauge("lvl")
	if _, err := r.CounterErr("lvl"); err == nil {
		t.Error("CounterErr over a gauge name did not error")
	}
	r.Histogram("lat", nil)
	if _, err := r.GaugeErr("lat"); err == nil {
		t.Error("GaugeErr over a histogram name did not error")
	}
	if _, err := r.HistogramErr("lvl", nil); err == nil {
		t.Error("HistogramErr over a gauge name did not error")
	}

	// The mismatch never disturbed the original: exactly one series per
	// name in the exposition, with its original kind.
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if got := strings.Count(out, "# TYPE ipex_dup "); got != 1 {
		t.Errorf("dup has %d TYPE lines, want exactly 1:\n%s", got, out)
	}
	if !strings.Contains(out, "# TYPE ipex_dup counter") {
		t.Errorf("dup lost its counter kind:\n%s", out)
	}
	if r.Counter("dup").Load() != 1 {
		t.Error("original counter value disturbed by the mismatched registrations")
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", stats.LinearBounds(0, 10, 5))
	for _, v := range []float64{1, 3, 3, 9, 42} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.N != 5 || s.Sum != 58 || s.MinV != 1 || s.MaxV != 42 {
		t.Fatalf("snapshot n=%d sum=%g min=%g max=%g", s.N, s.Sum, s.MinV, s.MaxV)
	}
	// Snapshot is a deep copy: mutating it must not touch the live series.
	s.Counts[1] = 999
	if h.Snapshot().Counts[1] == 999 {
		t.Error("snapshot shares Counts with the live histogram")
	}
	// Same handle by name.
	r.Histogram("lat", nil).Observe(2)
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6 (same handle by name)", h.Count())
	}
}

func TestNilHistogramDiscards(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Count() != 0 {
		t.Error("nil histogram retained a value")
	}
	s := h.Snapshot()
	if s.N != 0 || len(s.Bounds) == 0 {
		t.Error("nil histogram snapshot not an empty default-bounds histogram")
	}
	var r *Registry
	if r.Histogram("x", nil) != nil {
		t.Error("nil registry returned a live histogram")
	}
}

// TestConcurrentHistogramObservation is the -race coverage of concurrent
// observation: N goroutines interleave Observe with scrapes (Snapshot and
// WriteProm), and the final count and sum must be exact.
func TestConcurrentHistogramObservation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) * 1e-4)
				if i%100 == 0 {
					_ = h.Snapshot()
					_ = r.WriteProm(&strings.Builder{})
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.N != workers*per {
		t.Fatalf("observed %d values, want %d", s.N, workers*per)
	}
	want := float64(per) * (0 + 1 + 2 + 3) * 1e-4 * float64(workers/4)
	if diff := s.Sum - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
}

func TestWritePromHistogramFormat(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0001, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ipex_lat_seconds histogram",
		`ipex_lat_seconds_bucket{le="0.001"} 1`,  // underflow folds into the first bound
		`ipex_lat_seconds_bucket{le="0.01"} 3`,   // cumulative
		`ipex_lat_seconds_bucket{le="0.1"} 4`,    // cumulative
		`ipex_lat_seconds_bucket{le="+Inf"} 5`,   // total
		"ipex_lat_seconds_sum 5.0601",
		"ipex_lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
}

func TestFakeClock(t *testing.T) {
	var c FakeClock
	if c.Now() != 0 {
		t.Fatal("fake clock does not start at zero")
	}
	c.Advance(250 * time.Millisecond)
	c.Advance(time.Second)
	if got := c.Now(); got != 1250*time.Millisecond {
		t.Fatalf("Now = %v, want 1.25s", got)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}
