package experiments

import (
	"fmt"

	"ipex/internal/energy"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/stats"
)

// headlineRuns bundles the per-app runs that Figures 10 and 12–15 plus
// Table 2 all share, so the sweep executes once.
type headlineRuns struct {
	apps     []string
	noPf     []nvp.Result
	base     []nvp.Result // NVSRAMCache + default prefetchers, degree 2
	ipexData []nvp.Result
	ipexBoth []nvp.Result
	// skipped lists apps dropped because some configuration exhausted its
	// cycle budget; the derived figures carry it into their output.
	skipped []string
}

func runHeadline(o Options, src power.Source) (*headlineRuns, error) {
	o = o.norm()
	tr := o.trace(src)
	cfg := nvp.DefaultConfig()
	h := &headlineRuns{apps: o.Apps}
	var err error
	if h.noPf, err = runPerApp(o, cfg.WithoutPrefetch(), tr); err != nil {
		return nil, err
	}
	if h.base, err = runPerApp(o, cfg, tr); err != nil {
		return nil, err
	}
	if h.ipexData, err = runPerApp(o, cfg.WithIPEXData(), tr); err != nil {
		return nil, err
	}
	if h.ipexBoth, err = runPerApp(o, cfg.WithIPEX(), tr); err != nil {
		return nil, err
	}
	apps, sets, skipped, err := filterComplete(h.apps, h.noPf, h.base, h.ipexData, h.ipexBoth)
	if err != nil {
		return nil, err
	}
	h.apps, h.skipped = apps, skipped
	h.noPf, h.base, h.ipexData, h.ipexBoth = sets[0], sets[1], sets[2], sets[3]
	return h, nil
}

// Fig10Row is one app of Figure 10: normalized performance vs. the
// NVSRAMCache baseline with default prefetchers.
type Fig10Row struct {
	App      string
	NoPf     float64 // NVSRAMCache (No Prefetcher)
	IPEXData float64 // + IPEX for default data prefetcher
	IPEXBoth float64 // + IPEX for both default prefetchers
}

// Fig10Result is Figure 10.
type Fig10Result struct {
	Rows []Fig10Row
	// Gmean* are the suite geometric means of the three series.
	GmeanNoPf, GmeanIPEXData, GmeanIPEXBoth float64
	// PrefetchGain is the baseline's gain over no-prefetching (the 4.96%
	// the paper quotes in §6.2).
	PrefetchGain float64
	// Skipped lists apps excluded because a configuration exhausted its
	// cycle budget.
	Skipped []string
}

// Fig10 reproduces Figure 10 with the RFHome trace.
func Fig10(o Options) (*Fig10Result, error) {
	h, err := runHeadline(o, power.RFHome)
	if err != nil {
		return nil, err
	}
	return fig10From(h), nil
}

func fig10From(h *headlineRuns) *Fig10Result {
	res := &Fig10Result{Skipped: h.skipped}
	sNo := speedups(h.base, h.noPf)
	sD := speedups(h.base, h.ipexData)
	sB := speedups(h.base, h.ipexBoth)
	for i, app := range h.apps {
		res.Rows = append(res.Rows, Fig10Row{App: app, NoPf: sNo[i], IPEXData: sD[i], IPEXBoth: sB[i]})
	}
	res.GmeanNoPf = stats.Geomean(sNo)
	res.GmeanIPEXData = stats.Geomean(sD)
	res.GmeanIPEXBoth = stats.Geomean(sB)
	res.PrefetchGain = 1/res.GmeanNoPf - 1
	return res
}

// String renders the figure.
func (r *Fig10Result) String() string {
	var t stats.Table
	t.Header("App", "NoPrefetcher", "+IPEX(Data)", "+IPEX(Both)")
	for _, row := range r.Rows {
		t.Row(row.App, fmt.Sprintf("%.3f", row.NoPf), fmt.Sprintf("%.3f", row.IPEXData), fmt.Sprintf("%.3f", row.IPEXBoth))
	}
	t.Row("gmean", fmt.Sprintf("%.3f", r.GmeanNoPf), fmt.Sprintf("%.3f", r.GmeanIPEXData), fmt.Sprintf("%.3f", r.GmeanIPEXBoth))
	return fmt.Sprintf("Figure 10: speedup vs. NVSRAMCache baseline, RFHome (prefetching itself gains %s over no-prefetch)\n%s",
		stats.Pct(r.PrefetchGain), t.String()) + skippedNote(r.Skipped)
}

// Fig11Result is Figure 11: the same comparison against the ideal
// (zero-cost checkpoint/restore) NVSRAMCache.
type Fig11Result struct {
	Rows                                    []Fig10Row
	GmeanNoPf, GmeanIPEXData, GmeanIPEXBoth float64
	// Skipped lists apps excluded because a configuration exhausted its
	// cycle budget.
	Skipped []string
}

// Fig11 reproduces Figure 11 with the RFHome trace: every configuration
// runs with Ideal backup/restore, and speedups are normalized to the ideal
// baseline with prefetchers.
func Fig11(o Options) (*Fig11Result, error) {
	o = o.norm()
	tr := o.trace(power.RFHome)
	ideal := nvp.DefaultConfig()
	ideal.Ideal = true

	noPf, err := runPerApp(o, ideal.WithoutPrefetch(), tr)
	if err != nil {
		return nil, err
	}
	base, err := runPerApp(o, ideal, tr)
	if err != nil {
		return nil, err
	}
	ipexD, err := runPerApp(o, ideal.WithIPEXData(), tr)
	if err != nil {
		return nil, err
	}
	ipexB, err := runPerApp(o, ideal.WithIPEX(), tr)
	if err != nil {
		return nil, err
	}
	apps, sets, skipped, err := filterComplete(o.Apps, noPf, base, ipexD, ipexB)
	if err != nil {
		return nil, err
	}
	noPf, base, ipexD, ipexB = sets[0], sets[1], sets[2], sets[3]
	res := &Fig11Result{Skipped: skipped}
	sNo, sD, sB := speedups(base, noPf), speedups(base, ipexD), speedups(base, ipexB)
	for i, app := range apps {
		res.Rows = append(res.Rows, Fig10Row{App: app, NoPf: sNo[i], IPEXData: sD[i], IPEXBoth: sB[i]})
	}
	res.GmeanNoPf = stats.Geomean(sNo)
	res.GmeanIPEXData = stats.Geomean(sD)
	res.GmeanIPEXBoth = stats.Geomean(sB)
	return res, nil
}

// String renders the figure.
func (r *Fig11Result) String() string {
	var t stats.Table
	t.Header("App", "NoPrefetcher", "+IPEX(Data)", "+IPEX(Both)")
	for _, row := range r.Rows {
		t.Row(row.App, fmt.Sprintf("%.3f", row.NoPf), fmt.Sprintf("%.3f", row.IPEXData), fmt.Sprintf("%.3f", row.IPEXBoth))
	}
	t.Row("gmean", fmt.Sprintf("%.3f", r.GmeanNoPf), fmt.Sprintf("%.3f", r.GmeanIPEXData), fmt.Sprintf("%.3f", r.GmeanIPEXBoth))
	return "Figure 11: speedup vs. NVSRAMCache (ideal) baseline, RFHome\n" + t.String() + skippedNote(r.Skipped)
}

// Fig12Row is one app of Figure 12: the prefetch-operation reduction from
// attaching IPEX to both prefetchers.
type Fig12Row struct {
	App          string
	ReductionPct float64
}

// Fig12Result is Figure 12.
type Fig12Result struct {
	Rows    []Fig12Row
	Mean    float64
	Skipped []string
}

// Fig12 reproduces Figure 12.
func Fig12(o Options) (*Fig12Result, error) {
	h, err := runHeadline(o, power.RFHome)
	if err != nil {
		return nil, err
	}
	return fig12From(h), nil
}

func fig12From(h *headlineRuns) *Fig12Result {
	res := &Fig12Result{Skipped: h.skipped}
	var all []float64
	for i, app := range h.apps {
		b := float64(h.base[i].PrefetchesIssued())
		x := float64(h.ipexBoth[i].PrefetchesIssued())
		red := stats.Ratio(b-x, b)
		res.Rows = append(res.Rows, Fig12Row{App: app, ReductionPct: red})
		all = append(all, red)
	}
	res.Mean = stats.Mean(all)
	return res
}

// String renders the figure.
func (r *Fig12Result) String() string {
	var t stats.Table
	t.Header("App", "PrefetchOpReduction%")
	for _, row := range r.Rows {
		t.Row(row.App, stats.Pct(row.ReductionPct))
	}
	t.Row("mean", stats.Pct(r.Mean))
	return "Figure 12: prefetch-operation reduction with IPEX on both prefetchers\n" + t.String() + skippedNote(r.Skipped)
}

// Fig13Row is one app of Figure 13.
type Fig13Row struct {
	App                 string
	TrafficReductionPct float64
	NormalizedEnergy    float64 // IPEX total energy / baseline total energy
}

// Fig13Result is Figure 13.
type Fig13Result struct {
	Rows        []Fig13Row
	MeanTraffic float64
	MeanEnergy  float64
	Skipped     []string
}

// Fig13 reproduces Figure 13.
func Fig13(o Options) (*Fig13Result, error) {
	h, err := runHeadline(o, power.RFHome)
	if err != nil {
		return nil, err
	}
	return fig13From(h), nil
}

func fig13From(h *headlineRuns) *Fig13Result {
	res := &Fig13Result{Skipped: h.skipped}
	var traffics, energies []float64
	for i, app := range h.apps {
		b := float64(h.base[i].NVM.TrafficAccesses())
		x := float64(h.ipexBoth[i].NVM.TrafficAccesses())
		red := stats.Ratio(b-x, b)
		ne := stats.Ratio(h.ipexBoth[i].Energy.Total(), h.base[i].Energy.Total())
		res.Rows = append(res.Rows, Fig13Row{App: app, TrafficReductionPct: red, NormalizedEnergy: ne})
		traffics = append(traffics, red)
		energies = append(energies, ne)
	}
	res.MeanTraffic = stats.Mean(traffics)
	res.MeanEnergy = stats.Mean(energies)
	return res
}

// String renders the figure.
func (r *Fig13Result) String() string {
	var t stats.Table
	t.Header("App", "TrafficReduction%", "NormEnergy")
	for _, row := range r.Rows {
		t.Row(row.App, stats.Pct(row.TrafficReductionPct), fmt.Sprintf("%.3f", row.NormalizedEnergy))
	}
	t.Row("mean", stats.Pct(r.MeanTraffic), fmt.Sprintf("%.3f", r.MeanEnergy))
	return "Figure 13: memory-traffic reduction and normalized energy (IPEX both)\n" + t.String() + skippedNote(r.Skipped)
}

// Fig14Row is one app of Figure 14: normalized energy breakdowns for the
// three configurations (baseline, +IPEX data, +IPEX both), each normalized
// to the baseline's total.
type Fig14Row struct {
	App      string
	Base     energy.Breakdown
	IPEXData energy.Breakdown
	IPEXBoth energy.Breakdown
}

// Fig14Result is Figure 14.
type Fig14Result struct {
	Rows []Fig14Row
	// MemoryReduction and TotalReduction are the suite means for the
	// IPEX-both bars (paper: 13.24% and 7.86%).
	MemoryReduction float64
	TotalReduction  float64
	Skipped         []string
}

// Fig14 reproduces Figure 14.
func Fig14(o Options) (*Fig14Result, error) {
	h, err := runHeadline(o, power.RFHome)
	if err != nil {
		return nil, err
	}
	return fig14From(h), nil
}

func fig14From(h *headlineRuns) *Fig14Result {
	res := &Fig14Result{Skipped: h.skipped}
	var memRed, totRed []float64
	for i, app := range h.apps {
		bt := h.base[i].Energy.Total()
		row := Fig14Row{
			App:      app,
			Base:     h.base[i].Energy.Scale(1 / bt),
			IPEXData: h.ipexData[i].Energy.Scale(1 / bt),
			IPEXBoth: h.ipexBoth[i].Energy.Scale(1 / bt),
		}
		res.Rows = append(res.Rows, row)
		memRed = append(memRed, stats.Ratio(h.base[i].Energy.Memory-h.ipexBoth[i].Energy.Memory, h.base[i].Energy.Memory))
		totRed = append(totRed, 1-h.ipexBoth[i].Energy.Total()/bt)
	}
	res.MemoryReduction = stats.Mean(memRed)
	res.TotalReduction = stats.Mean(totRed)
	return res
}

// String renders the figure (three bars per app).
func (r *Fig14Result) String() string {
	var t stats.Table
	t.Header("App", "Config", "Cache", "Memory", "Compute", "Bk+Rst", "Total")
	add := func(app, cfg string, b energy.Breakdown) {
		t.Row(app, cfg,
			fmt.Sprintf("%.3f", b.Cache), fmt.Sprintf("%.3f", b.Memory),
			fmt.Sprintf("%.3f", b.Compute), fmt.Sprintf("%.3f", b.BkRst),
			fmt.Sprintf("%.3f", b.Total()))
	}
	for _, row := range r.Rows {
		add(row.App, "base", row.Base)
		add("", "+IPEX(D)", row.IPEXData)
		add("", "+IPEX(I+D)", row.IPEXBoth)
	}
	return fmt.Sprintf("Figure 14: normalized energy breakdown (mean memory reduction %s, total %s)\n%s",
		stats.Pct(r.MemoryReduction), stats.Pct(r.TotalReduction), t.String()) + skippedNote(r.Skipped)
}

// Fig15Row is one app of Figure 15: miss rates with and without IPEX.
type Fig15Row struct {
	App                  string
	IMiss, DMiss         float64 // baseline
	IMissIPEX, DMissIPEX float64 // IPEX on both prefetchers
}

// Fig15Result is Figure 15.
type Fig15Result struct {
	Rows []Fig15Row
	// Deltas are the mean absolute miss-rate increases (paper: +0.08%
	// ICache, +0.02% DCache).
	IDelta, DDelta float64
	Skipped        []string
}

// Fig15 reproduces Figure 15.
func Fig15(o Options) (*Fig15Result, error) {
	h, err := runHeadline(o, power.RFHome)
	if err != nil {
		return nil, err
	}
	return fig15From(h), nil
}

func fig15From(h *headlineRuns) *Fig15Result {
	res := &Fig15Result{Skipped: h.skipped}
	var di, dd []float64
	for i, app := range h.apps {
		row := Fig15Row{
			App:       app,
			IMiss:     h.base[i].Inst.Cache.MissRate(),
			DMiss:     h.base[i].Data.Cache.MissRate(),
			IMissIPEX: h.ipexBoth[i].Inst.Cache.MissRate(),
			DMissIPEX: h.ipexBoth[i].Data.Cache.MissRate(),
		}
		res.Rows = append(res.Rows, row)
		di = append(di, row.IMissIPEX-row.IMiss)
		dd = append(dd, row.DMissIPEX-row.DMiss)
	}
	res.IDelta = stats.Mean(di)
	res.DDelta = stats.Mean(dd)
	return res
}

// String renders the figure.
func (r *Fig15Result) String() string {
	var t stats.Table
	t.Header("App", "IMiss%", "IMiss%+IPEX", "DMiss%", "DMiss%+IPEX")
	for _, row := range r.Rows {
		t.Row(row.App, stats.Pct(row.IMiss), stats.Pct(row.IMissIPEX), stats.Pct(row.DMiss), stats.Pct(row.DMissIPEX))
	}
	return fmt.Sprintf("Figure 15: cache miss rates (mean delta: ICache %+.3f%%, DCache %+.3f%%)\n%s",
		100*r.IDelta, 100*r.DDelta, t.String()) + skippedNote(r.Skipped)
}

// Table2Result reproduces Table 2: suite-mean prefetch accuracy and
// coverage, with and without IPEX.
type Table2Result struct {
	BaseAccI, BaseAccD, BaseCovI, BaseCovD float64
	IPEXAccI, IPEXAccD, IPEXCovI, IPEXCovD float64
	Skipped                                []string
}

// Table2 reproduces Table 2.
func Table2(o Options) (*Table2Result, error) {
	h, err := runHeadline(o, power.RFHome)
	if err != nil {
		return nil, err
	}
	return table2From(h), nil
}

func table2From(h *headlineRuns) *Table2Result {
	mean := func(rs []nvp.Result, f func(nvp.Result) float64) float64 {
		var xs []float64
		for _, r := range rs {
			xs = append(xs, f(r))
		}
		return stats.Mean(xs)
	}
	return &Table2Result{
		Skipped:  h.skipped,
		BaseAccI: mean(h.base, func(r nvp.Result) float64 { return r.Inst.Accuracy() }),
		BaseAccD: mean(h.base, func(r nvp.Result) float64 { return r.Data.Accuracy() }),
		BaseCovI: mean(h.base, func(r nvp.Result) float64 { return r.Inst.Coverage() }),
		BaseCovD: mean(h.base, func(r nvp.Result) float64 { return r.Data.Coverage() }),
		IPEXAccI: mean(h.ipexBoth, func(r nvp.Result) float64 { return r.Inst.Accuracy() }),
		IPEXAccD: mean(h.ipexBoth, func(r nvp.Result) float64 { return r.Data.Accuracy() }),
		IPEXCovI: mean(h.ipexBoth, func(r nvp.Result) float64 { return r.Inst.Coverage() }),
		IPEXCovD: mean(h.ipexBoth, func(r nvp.Result) float64 { return r.Data.Coverage() }),
	}
}

// String renders the table in the paper's layout.
func (r *Table2Result) String() string {
	var t stats.Table
	t.Header("Config", "Acc.(Inst.)", "Acc.(Data)", "Cov.(Inst.)", "Cov.(Data)")
	t.Row("NVSRAMCache", stats.Pct(r.BaseAccI), stats.Pct(r.BaseAccD), stats.Pct(r.BaseCovI), stats.Pct(r.BaseCovD))
	t.Row("IPEX", stats.Pct(r.IPEXAccI), stats.Pct(r.IPEXAccD), stats.Pct(r.IPEXCovI), stats.Pct(r.IPEXCovD))
	return "Table 2: prefetch accuracy and coverage\n" + t.String() + skippedNote(r.Skipped)
}

// HeadlineResult bundles Figures 10 and 12–15 plus Table 2 from a single
// shared sweep (what cmd/experiments -all uses).
type HeadlineResult struct {
	Fig10  *Fig10Result
	Fig12  *Fig12Result
	Fig13  *Fig13Result
	Fig14  *Fig14Result
	Fig15  *Fig15Result
	Table2 *Table2Result
}

// Headline runs the shared sweep once and derives all six results.
func Headline(o Options) (*HeadlineResult, error) {
	h, err := runHeadline(o, power.RFHome)
	if err != nil {
		return nil, err
	}
	return &HeadlineResult{
		Fig10:  fig10From(h),
		Fig12:  fig12From(h),
		Fig13:  fig13From(h),
		Fig14:  fig14From(h),
		Fig15:  fig15From(h),
		Table2: table2From(h),
	}, nil
}
