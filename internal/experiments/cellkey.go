package experiments

import (
	"errors"
	"fmt"

	"ipex/internal/capacitor"
	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/fault"
	"ipex/internal/harness"
	"ipex/internal/nvp"
	"ipex/internal/prefetch"
)

// ConfigIdentity is the content identity of an nvp.Config: every field that
// can change a simulation result, and nothing else. It exists because
// nvp.Config itself cannot be hashed — the prefetcher factory fields are
// funcs — and because observer attachments (Tracer, Metrics) must not
// change a cell's identity: a re-run with tracing on replays the same
// journaled result, and a cached result serves a request whether or not it
// was produced under observation.
//
// Factory-built prefetchers are identified by their declared name
// (nvp.Config.IPrefetcherID/DPrefetcherID), never by mere presence: two
// different factories under a presence bit would collide to one key and
// replay each other's results. A factory installed without an ID has no
// identity at all — NewConfigIdentity refuses it, and the journal and
// result cache treat such cells as unkeyable (they always simulate).
type ConfigIdentity struct {
	ICacheSize         int
	DCacheSize         int
	Ways               int
	PrefetchBufEntries int
	PrefetchToCache    bool
	IPrefetcher        prefetch.Kind
	DPrefetcher        prefetch.Kind
	// IFactory/DFactory carry the declared factory IDs ("" = no factory).
	IFactory           string
	DFactory           string
	InitialDegree      int
	IPEXInst           bool
	IPEXData           bool
	IPEX               core.Config
	NVM                energy.NVMParams
	Capacitor          capacitor.Config
	Ideal              bool
	DupSuppress        bool
	ReissueOnExit      bool
	GateAddressGen     bool
	RecordCycles       bool
	MaxCycles          uint64
	Faults             *fault.Config
	Paranoid           bool
	Profile            bool
}

// ErrUnnamedFactory reports a config whose prefetcher factory carries no
// IPrefetcherID/DPrefetcherID: such a config has no stable content identity
// and must never be journaled or served from a result cache.
var ErrUnnamedFactory = errors.New("prefetcher factory installed without a PrefetcherID; the config has no stable content identity")

// NewConfigIdentity derives the content identity of cfg. It fails with
// ErrUnnamedFactory when a prefetcher factory is installed without its
// identifying nvp.Config.IPrefetcherID/DPrefetcherID.
func NewConfigIdentity(cfg nvp.Config) (ConfigIdentity, error) {
	if cfg.IPrefetcherFactory != nil && cfg.IPrefetcherID == "" {
		return ConfigIdentity{}, fmt.Errorf("experiments: instruction %w", ErrUnnamedFactory)
	}
	if cfg.DPrefetcherFactory != nil && cfg.DPrefetcherID == "" {
		return ConfigIdentity{}, fmt.Errorf("experiments: data %w", ErrUnnamedFactory)
	}
	return ConfigIdentity{
		ICacheSize:         cfg.ICacheSize,
		DCacheSize:         cfg.DCacheSize,
		Ways:               cfg.Ways,
		PrefetchBufEntries: cfg.PrefetchBufEntries,
		PrefetchToCache:    cfg.PrefetchToCache,
		IPrefetcher:        cfg.IPrefetcher,
		DPrefetcher:        cfg.DPrefetcher,
		IFactory:           cfg.IPrefetcherID,
		DFactory:           cfg.DPrefetcherID,
		InitialDegree:      cfg.InitialDegree,
		IPEXInst:           cfg.IPEXInst,
		IPEXData:           cfg.IPEXData,
		IPEX:               cfg.IPEX,
		NVM:                cfg.NVM,
		Capacitor:          cfg.Capacitor,
		Ideal:              cfg.Ideal,
		DupSuppress:        cfg.DupSuppress,
		ReissueOnExit:      cfg.ReissueOnExit,
		GateAddressGen:     cfg.GateAddressGen,
		RecordCycles:       cfg.RecordCycles,
		MaxCycles:          cfg.MaxCycles,
		Faults:             cfg.Faults,
		Paranoid:           cfg.Paranoid,
		Profile:            cfg.Profile,
	}, nil
}

// CellIdentity is the complete content identity of one simulation: what is
// simulated (app at a scale), under which power trace, with which effective
// configuration. Two cells with equal identities produce bit-identical
// results, so a journaled or cached result can stand in for a simulation.
// It is the shared key schema of the sweep journal (cmd/experiments) and
// the result cache (cmd/ipexd).
type CellIdentity struct {
	App       string
	Scale     float64
	TraceSeed uint64
	TraceName string
	TraceLen  int
	Config    ConfigIdentity
}

// Key hashes the identity into the 32-hex-digit content key used by the
// journal and the result store.
func (id CellIdentity) Key() string { return harness.Key(id) }

// cellKey hashes the content identity of one job under the normalized
// options. cfg must be the effective config (cell budget clamp and paranoid
// flag already applied), minus observer attachments. A config with no
// stable identity (unnamed prefetcher factory) returns "", which the
// harness treats as unkeyable: the cell always simulates and is never
// journaled or replayed.
func cellKey(o Options, j job, cfg nvp.Config) string {
	ci, err := NewConfigIdentity(cfg)
	if err != nil {
		return ""
	}
	name, n := "", 0
	if j.tr != nil {
		name, n = j.tr.Name, len(j.tr.Samples)
	}
	return CellIdentity{
		App:       j.app,
		Scale:     o.Scale,
		TraceSeed: o.TraceSeed,
		TraceName: name,
		TraceLen:  n,
		Config:    ci,
	}.Key()
}

// SweepIdentity describes a whole sweep invocation for the journal header:
// the experiment set and every option that changes any cell's identity.
// cmd/experiments hashes it with harness.Key; a -resume against a journal
// whose sweep hash differs is rejected before any cell runs.
type SweepIdentity struct {
	Experiments []string
	Scale       float64
	Apps        []string
	TraceSeed   uint64
	Paranoid    bool
	// CellBudget is the per-cell deterministic cycle deadline (0 = none);
	// it clamps MaxCycles and therefore changes truncation behaviour.
	CellBudget uint64
}
