package experiments

import (
	"ipex/internal/capacitor"
	"ipex/internal/core"
	"ipex/internal/energy"
	"ipex/internal/fault"
	"ipex/internal/harness"
	"ipex/internal/nvp"
	"ipex/internal/prefetch"
)

// cfgIdentity is the journaling identity of an nvp.Config: every field that
// can change a simulation result, and nothing else. It exists because
// nvp.Config itself cannot be hashed — the prefetcher factory fields are
// funcs — and because observer attachments (Tracer, Metrics) must not
// change a cell's identity: a re-run with tracing on replays the same
// journaled result.
//
// Factories are recorded as presence booleans: a custom prefetcher has no
// stable serializable identity, so two sweeps using different factories
// under the same flag would collide. cmd/experiments never installs
// factories, and library callers who do are told (Options.Sup docs) that
// journaling custom-prefetcher sweeps is on them.
type cfgIdentity struct {
	ICacheSize         int
	DCacheSize         int
	Ways               int
	PrefetchBufEntries int
	PrefetchToCache    bool
	IPrefetcher        prefetch.Kind
	DPrefetcher        prefetch.Kind
	IFactory           bool
	DFactory           bool
	InitialDegree      int
	IPEXInst           bool
	IPEXData           bool
	IPEX               core.Config
	NVM                energy.NVMParams
	Capacitor          capacitor.Config
	Ideal              bool
	DupSuppress        bool
	ReissueOnExit      bool
	GateAddressGen     bool
	RecordCycles       bool
	MaxCycles          uint64
	Faults             *fault.Config
	Paranoid           bool
	Profile            bool
}

func identityOf(cfg nvp.Config) cfgIdentity {
	return cfgIdentity{
		ICacheSize:         cfg.ICacheSize,
		DCacheSize:         cfg.DCacheSize,
		Ways:               cfg.Ways,
		PrefetchBufEntries: cfg.PrefetchBufEntries,
		PrefetchToCache:    cfg.PrefetchToCache,
		IPrefetcher:        cfg.IPrefetcher,
		DPrefetcher:        cfg.DPrefetcher,
		IFactory:           cfg.IPrefetcherFactory != nil,
		DFactory:           cfg.DPrefetcherFactory != nil,
		InitialDegree:      cfg.InitialDegree,
		IPEXInst:           cfg.IPEXInst,
		IPEXData:           cfg.IPEXData,
		IPEX:               cfg.IPEX,
		NVM:                cfg.NVM,
		Capacitor:          cfg.Capacitor,
		Ideal:              cfg.Ideal,
		DupSuppress:        cfg.DupSuppress,
		ReissueOnExit:      cfg.ReissueOnExit,
		GateAddressGen:     cfg.GateAddressGen,
		RecordCycles:       cfg.RecordCycles,
		MaxCycles:          cfg.MaxCycles,
		Faults:             cfg.Faults,
		Paranoid:           cfg.Paranoid,
		Profile:            cfg.Profile,
	}
}

// cellIdentity is the complete content identity of one sweep cell: what is
// simulated (app at a scale), under which power trace, with which effective
// configuration. Two cells with equal identities produce bit-identical
// results, so a journaled result can stand in for a simulation.
type cellIdentity struct {
	App       string
	Scale     float64
	TraceSeed uint64
	TraceName string
	TraceLen  int
	Config    cfgIdentity
}

// cellKey hashes the content identity of one job under the normalized
// options. cfg must be the effective config (cell budget clamp and paranoid
// flag already applied), minus observer attachments.
func cellKey(o Options, j job, cfg nvp.Config) string {
	name, n := "", 0
	if j.tr != nil {
		name, n = j.tr.Name, len(j.tr.Samples)
	}
	return harness.Key(cellIdentity{
		App:       j.app,
		Scale:     o.Scale,
		TraceSeed: o.TraceSeed,
		TraceName: name,
		TraceLen:  n,
		Config:    identityOf(cfg),
	})
}

// SweepIdentity describes a whole sweep invocation for the journal header:
// the experiment set and every option that changes any cell's identity.
// cmd/experiments hashes it with harness.Key; a -resume against a journal
// whose sweep hash differs is rejected before any cell runs.
type SweepIdentity struct {
	Experiments []string
	Scale       float64
	Apps        []string
	TraceSeed   uint64
	Paranoid    bool
	// CellBudget is the per-cell deterministic cycle deadline (0 = none);
	// it clamps MaxCycles and therefore changes truncation behaviour.
	CellBudget uint64
}
