package experiments

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
)

// CellTracing streams every simulation of a sweep into its own JSONL trace
// file — one file per sweep cell, with a deterministic name — instead of one
// shared stream. A shared Tracer carries one run's cycle clock and therefore
// forces Parallelism to 1; per-cell tracers have independent clocks, so cell
// tracing composes with a parallel sweep.
//
// File names are "<seq>_<label>_<app>.jsonl": seq is a zero-padded global
// sequence number assigned in job-enqueue order (which is deterministic for
// a given command line, regardless of worker scheduling), label the current
// experiment id (SetLabel), app the workload. Analyze the files individually
// or concatenated — cmd/tracestat handles both.
type CellTracing struct {
	dir string

	mu    sync.Mutex
	label string
	seq   uint64
	files uint64
}

// NewCellTracing writes cell traces into dir (which must already exist).
func NewCellTracing(dir string) *CellTracing {
	return &CellTracing{dir: dir}
}

// SetLabel names the experiment whose cells follow; the label is embedded in
// subsequent file names (sanitized to keep names portable).
func (c *CellTracing) SetLabel(label string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.label = sanitizeLabel(label)
}

// reserve assigns the deterministic path for the next sweep cell. Called in
// job-enqueue order, before workers race.
func (c *CellTracing) reserve(app string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	label := c.label
	if label == "" {
		label = "run"
	}
	return filepath.Join(c.dir, fmt.Sprintf("%06d_%s_%s.jsonl", c.seq, label, sanitizeLabel(app)))
}

// wrote records one completed trace file.
func (c *CellTracing) wrote() {
	c.mu.Lock()
	c.files++
	c.mu.Unlock()
}

// Files returns how many cell trace files have been written.
func (c *CellTracing) Files() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.files
}

// sanitizeLabel keeps file-name components to [a-zA-Z0-9._-].
func sanitizeLabel(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch ch := s[i]; {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z',
			ch >= '0' && ch <= '9', ch == '.', ch == '_', ch == '-':
			b.WriteByte(ch)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
