package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"ipex/internal/workload"
)

// TestFig10DeterministicAcrossParallelism asserts the worker pool does not
// leak scheduling into results: a serial sweep and a NumCPU-wide sweep over
// the same store must produce identical Fig10 rows, bit for bit.
func TestFig10DeterministicAcrossParallelism(t *testing.T) {
	opts := func(par int) Options {
		return Options{
			Scale:       0.02,
			Apps:        []string{"gsme", "pegwitd", "jpegd", "fft"},
			Parallelism: par,
			Workloads:   workload.NewStore(),
		}
	}
	serial, err := Fig10(opts(1))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Fig10(opts(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Errorf("Fig10 differs between Parallelism=1 and Parallelism=%d:\nserial: %+v\nwide:   %+v",
			runtime.NumCPU(), serial, wide)
	}
}

// TestRunAllSharesOneStream checks that every job of a sweep replays the
// memoized stream rather than regenerating: after a multi-config sweep the
// store holds exactly one entry per (app, scale).
func TestRunAllSharesOneStream(t *testing.T) {
	st := workload.NewStore()
	o := Options{
		Scale:     0.02,
		Apps:      []string{"gsme", "fft"},
		Workloads: st,
	}
	if _, err := Fig10(o); err != nil {
		t.Fatal(err)
	}
	if got, want := st.Len(), len(o.Apps); got != want {
		t.Errorf("store holds %d streams after sweep, want %d (one per app)", got, want)
	}
}
