package experiments

import (
	"fmt"

	"ipex/internal/energy"
	"ipex/internal/nvp"
	"ipex/internal/power"
	"ipex/internal/stats"
)

// Fig01Row is one cache-size point of Figure 1: speedup over the 2 kB
// baseline and the share of total energy spent on cache leakage, with
// hardware prefetchers disabled.
type Fig01Row struct {
	CacheSize int     // bytes per cache (ICache and DCache each)
	Speedup   float64 // gmean speedup over the 2 kB configuration
	LeakPct   float64 // ICache+DCache leakage / total energy
}

// Fig01Result is Figure 1.
type Fig01Result struct {
	Rows []Fig01Row
	// Skipped lists apps excluded because some cache size exhausted the
	// cycle budget.
	Skipped []string
}

// Fig01CacheSizes are the swept sizes.
var Fig01CacheSizes = []int{256, 512, 1024, 2048, 4096, 8192}

// Fig01 reproduces Figure 1: the cache-size sweep that motivates the 2 kB
// default — beyond it, leakage growth cancels the miss-rate benefit.
func Fig01(o Options) (*Fig01Result, error) {
	o = o.norm()
	tr := o.trace(power.RFHome)

	sets := make([][]nvp.Result, 0, len(Fig01CacheSizes))
	for _, size := range Fig01CacheSizes {
		cfg := nvp.DefaultConfig().WithoutPrefetch()
		cfg.ICacheSize = size
		cfg.DCacheSize = size
		rs, err := runPerApp(o, cfg, tr)
		if err != nil {
			return nil, err
		}
		sets = append(sets, rs)
	}
	// Filter jointly across every size so the speedup series compares the
	// same app set at each point.
	_, filtered, skipped, err := filterComplete(o.Apps, sets...)
	if err != nil {
		return nil, err
	}
	perSize := make(map[int][]nvp.Result)
	for i, size := range Fig01CacheSizes {
		perSize[size] = filtered[i]
	}

	base := perSize[energy.DefaultCacheSize]
	res := &Fig01Result{Skipped: skipped}
	for _, size := range Fig01CacheSizes {
		rs := perSize[size]
		leakPct := 0.0
		totalE, cacheLeakE := 0.0, 0.0
		leakPerCycle := 2 * energy.LeakNJPerCycle(energy.CacheFor(size, 4).LeakMW)
		for _, r := range rs {
			totalE += r.Energy.Total()
			cacheLeakE += leakPerCycle * float64(r.OnCycles)
		}
		leakPct = stats.Ratio(cacheLeakE, totalE)
		res.Rows = append(res.Rows, Fig01Row{
			CacheSize: size,
			Speedup:   stats.Geomean(speedups(base, rs)),
			LeakPct:   leakPct,
		})
	}
	return res, nil
}

// String renders the figure's series.
func (r *Fig01Result) String() string {
	var t stats.Table
	t.Header("CacheSize", "Speedup", "CacheLeak%")
	for _, row := range r.Rows {
		t.Row(sizeLabel(row.CacheSize), fmt.Sprintf("%.3f", row.Speedup), stats.Pct(row.LeakPct))
	}
	return "Figure 1: speedup and cache leakage vs. cache size (prefetchers off)\n" + t.String() + skippedNote(r.Skipped)
}

func sizeLabel(bytes int) string {
	if bytes >= 1024 {
		return fmt.Sprintf("%dkB", bytes/1024)
	}
	return fmt.Sprintf("%dB", bytes)
}

// Fig02Row is one app of Figure 2: pipeline-stall shares by cache.
type Fig02Row struct {
	App    string
	IStall float64 // ICache-miss stall cycles / on-cycles
	DStall float64
}

// Fig02Result is Figure 2.
type Fig02Result struct {
	Rows    []Fig02Row
	IGmean  float64
	DGmean  float64
	Skipped []string
}

// Fig02 reproduces Figure 2: the stall-time motivation (default 2 kB
// caches, prefetchers off).
func Fig02(o Options) (*Fig02Result, error) {
	o = o.norm()
	rs, err := runPerApp(o, nvp.DefaultConfig().WithoutPrefetch(), o.trace(power.RFHome))
	if err != nil {
		return nil, err
	}
	apps, sets, skipped, err := filterComplete(o.Apps, rs)
	if err != nil {
		return nil, err
	}
	rs = sets[0]
	res := &Fig02Result{Skipped: skipped}
	var is, ds []float64
	for i, r := range rs {
		row := Fig02Row{
			App:    apps[i],
			IStall: stats.Ratio(float64(r.Inst.StallCycles), float64(r.OnCycles)),
			DStall: stats.Ratio(float64(r.Data.StallCycles), float64(r.OnCycles)),
		}
		res.Rows = append(res.Rows, row)
		// Geomean over stall fractions needs positive values; floor at a
		// tiny epsilon like the paper's log-scale plots do.
		is = append(is, max(row.IStall, 1e-4))
		ds = append(ds, max(row.DStall, 1e-4))
	}
	res.IGmean = stats.Geomean(is)
	res.DGmean = stats.Geomean(ds)
	return res, nil
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders the figure.
func (r *Fig02Result) String() string {
	var t stats.Table
	t.Header("App", "ICacheStall%", "DCacheStall%")
	for _, row := range r.Rows {
		t.Row(row.App, stats.Pct(row.IStall), stats.Pct(row.DStall))
	}
	t.Row("gmean", stats.Pct(r.IGmean), stats.Pct(r.DGmean))
	return "Figure 2: pipeline stall share from cache misses (no prefetchers)\n" + t.String() + skippedNote(r.Skipped)
}

// Fig04Point is one point of Figure 4's analytic curves.
type Fig04Point struct {
	EPrefetchPJ float64
	ELeakPJ     float64
	MinP        float64
}

// Fig04Result is Figure 4 plus the §2.2 operating point of the default
// system.
type Fig04Result struct {
	Points []Fig04Point
	// DefaultSystemMinP is the minimum useful-prefetch probability of the
	// default configuration (paper: 46.04%).
	DefaultSystemMinP float64
}

// Fig04 reproduces Figure 4: the minimum probability P required for
// prefetching to be beneficial (Inequality 4), over E_prefetch 0–100 pJ for
// E_leak 10–50 pJ.
func Fig04(Options) (*Fig04Result, error) {
	res := &Fig04Result{}
	for _, leakPJ := range []float64{10, 20, 30, 40, 50} {
		for ep := 0.0; ep <= 100; ep += 5 {
			res.Points = append(res.Points, Fig04Point{
				EPrefetchPJ: ep,
				ELeakPJ:     leakPJ,
				MinP:        energy.MinUsefulProbability(ep/1000, leakPJ/1000),
			})
		}
	}
	p := energy.NVMFor(energy.ReRAM, 16<<20)
	leakPerCycle := energy.LeakNJPerCycle(2*energy.CacheLeakMW + energy.NVMLeakMW + energy.CoreLeakMW)
	res.DefaultSystemMinP = energy.MinUsefulProbability(p.ReadNJ, float64(p.ReadCycles)*leakPerCycle)
	return res, nil
}

// String renders a compact view of the curves.
func (r *Fig04Result) String() string {
	var t stats.Table
	t.Header("ELeak(pJ)", "P@Ep=20pJ", "P@Ep=50pJ", "P@Ep=100pJ")
	byLeak := map[float64]map[float64]float64{}
	for _, p := range r.Points {
		if byLeak[p.ELeakPJ] == nil {
			byLeak[p.ELeakPJ] = map[float64]float64{}
		}
		byLeak[p.ELeakPJ][p.EPrefetchPJ] = p.MinP
	}
	for _, leak := range []float64{10, 20, 30, 40, 50} {
		m := byLeak[leak]
		t.Row(fmt.Sprintf("%.0f", leak), stats.Pct(m[20]), stats.Pct(m[50]), stats.Pct(m[100]))
	}
	return fmt.Sprintf("Figure 4: minimum useful-prefetch probability (default system: %s; paper 46.04%%)\n%s",
		stats.Pct(r.DefaultSystemMinP), t.String())
}
