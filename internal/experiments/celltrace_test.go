package experiments

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ipex/internal/tracestat"
)

// TestCellTracingParallelSweep runs one experiment with per-cell tracing and
// full parallelism: every sweep cell must land in its own deterministically
// named JSONL file, each individually analyzable, and the sweep result must
// be unaffected by the tracing.
func TestCellTracingParallelSweep(t *testing.T) {
	dir := t.TempDir()
	o := tiny()
	o.Parallelism = 4
	o.Cells = NewCellTracing(dir)
	o.Cells.SetLabel("fig11")
	o.Progress = &Progress{}

	traced, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if traced.String() != plain.String() {
		t.Error("cell tracing changed the experiment result")
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(ents)) != o.Cells.Files() || len(ents) == 0 {
		t.Fatalf("wrote %d files, Files() = %d", len(ents), o.Cells.Files())
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if !strings.HasPrefix(names[0], "000001_fig11_") || !strings.HasSuffix(names[0], ".jsonl") {
		t.Errorf("unexpected first cell name %q", names[0])
	}

	// Every cell file is a complete, analyzable single-run stream.
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := tracestat.Analyze(f, tracestat.Options{})
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Runs) != 1 || rep.Runs[0].EndDetail == "" {
			t.Errorf("%s: reconstructed %d run(s), EndDetail %q",
				name, len(rep.Runs), rep.Runs[0].EndDetail)
		}
	}

	// Progress saw every cell.
	done, total, insts := o.Progress.Snapshot()
	if done != total || done != uint64(len(ents)) || insts == 0 {
		t.Errorf("progress = %d/%d insts=%d, want %d/%d", done, total, insts, len(ents), len(ents))
	}
}

// TestCellNamesDeterministic: the same command line reserves the same names
// regardless of Parallelism.
func TestCellNamesDeterministic(t *testing.T) {
	runNames := func(par int) []string {
		dir := t.TempDir()
		o := tiny()
		o.Parallelism = par
		o.Cells = NewCellTracing(dir)
		o.Cells.SetLabel("fig11")
		if _, err := Fig11(o); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		sort.Strings(names)
		return names
	}
	a, b := runNames(1), runNames(8)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("cell names depend on parallelism:\n%v\nvs\n%v", a, b)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.addTotal(3)
	p.jobDone(10)
	if d, tot, i := p.Snapshot(); d != 0 || tot != 0 || i != 0 {
		t.Error("nil Progress retained values")
	}
	var c *CellTracing
	c.SetLabel("x")
	if c.Files() != 0 {
		t.Error("nil CellTracing retained values")
	}
}
